// Package fixwal is the vfsonly fixture: a storage-pathed package
// mixing direct os calls (flagged) with seam-routed ones (clean).
package fixwal

import (
	"io/ioutil" // want `io/ioutil import in internal/storage`
	"os"

	"repro/internal/storage/vfs"
)

var discard = ioutil.Discard

// openRaw is the seeded violation class: WAL code opening files with
// the os package directly instead of the injected seam.
func openRaw(path string) error {
	f, err := os.Create(path) // want `direct os\.Create in internal/storage`
	if err != nil {
		return err
	}
	return f.Close()
}

// statRaw has a mechanical fix (os.Stat -> vfs.OS.Stat); the test
// asserts the suggested edit text.
func statRaw(path string) error {
	_, err := os.Stat(path) // want `direct os\.Stat in internal/storage`
	return err
}

func removeRaw(path string) error {
	return os.Remove(path) // want `direct os\.Remove in internal/storage`
}

// openSeam is the conforming shape: the same operation through vfs.OS.
// os-package constants stay fine — only file operations are fenced.
func openSeam(path string) (vfs.File, error) {
	return vfs.OS.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
}
