package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Locksafe guards the rdf.Store locking protocol. The store has one
// RWMutex (`mu`) and a documented discipline: the read lock is held for
// an entire plan run (emit and filter callbacks execute under it), the
// write lock covers short index mutations, and journal.Record runs
// under the write lock by design. What must never happen while either
// lock is held:
//
//   - calling another Store method that acquires s.mu (directly or
//     transitively) — self-deadlock with a write lock, and a latent one
//     with read locks once a writer queues between them;
//   - a channel send or receive — unbounded blocking while readers or
//     writers are barred.
//
// Additionally, under the *write* lock:
//
//   - calling a function-typed value (callbacks are only contracted to
//     run under the read lock; an arbitrary func under the write lock
//     can call back into the store);
//   - launching a goroutine (go + write lock is a hand-off smell; the
//     parallel executor launches workers under the read lock only).
//
// Function literals are not scanned as part of the locked region: their
// bodies execute when called, typically on worker goroutines that do
// not hold the caller's lock. Interface method calls (journal, sink)
// are part of the locked contract and exempt.
var Locksafe = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "no blocking or re-entrant operations while holding rdf.Store's\n" +
		"lock in executor run paths",
	Run: runLocksafe,
}

// lockState tracks which of the Store's locks are held at a statement.
type lockState struct {
	read, write bool
}

func (st lockState) held() bool { return st.read || st.write }

func runLocksafe(pass *analysis.Pass) error {
	if !pathHasDir(pass.PkgPath, "internal/rdf") {
		return nil
	}
	storeType := lookupNamed(pass.Pkg, "Store")
	if storeType == nil {
		return nil
	}
	acquirers := storeLockAcquirers(pass, storeType)
	for _, f := range pass.Files {
		if pass.TestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			scanLockedStmts(pass, storeType, acquirers, fn.Body.List, lockState{})
		}
	}
	return nil
}

// lookupNamed finds the package-level named type with the given name.
func lookupNamed(pkg *types.Package, name string) *types.Named {
	if pkg == nil {
		return nil
	}
	obj, ok := pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	named, _ := obj.Type().(*types.Named)
	return named
}

// storeLockAcquirers computes the set of Store methods that acquire
// s.mu, directly or through other Store methods (Add → AddEncoded →
// mu.Lock). The fixpoint runs over the package's own declarations.
func storeLockAcquirers(pass *analysis.Pass, store *types.Named) map[string]bool {
	methods := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isStoreMethod(pass, store, fn) {
				continue
			}
			methods[fn.Name.Name] = fn
		}
	}
	acq := map[string]bool{}
	for name, fn := range methods {
		found := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if op, _ := storeMuOp(pass, store, call); op == "Lock" || op == "RLock" {
					found = true
				}
			}
			return !found
		})
		if found {
			acq[name] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for name, fn := range methods {
			if acq[name] {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if acq[name] {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if m := storeMethodCall(pass, store, call); m != "" && acq[m] {
						acq[name] = true
						changed = true
					}
				}
				return true
			})
		}
	}
	return acq
}

func isStoreMethod(pass *analysis.Pass, store *types.Named, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fn.Recv.List[0].Type]
	return ok && isStoreType(store, tv.Type)
}

func isStoreType(store *types.Named, t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj() == store.Obj()
}

// storeMuOp matches calls of the form <storeExpr>.mu.Lock() (and
// RLock/Unlock/RUnlock), returning the operation name and receiver
// expression text position; op is "" for anything else.
func storeMuOp(pass *analysis.Pass, store *types.Named, call *ast.CallExpr) (op string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", false
	}
	mu, isSel := unparen(sel.X).(*ast.SelectorExpr)
	if !isSel || mu.Sel.Name != "mu" {
		return "", false
	}
	tv, okT := pass.TypesInfo.Types[mu.X]
	if !okT || !isStoreType(store, tv.Type) {
		return "", false
	}
	return sel.Sel.Name, true
}

// storeMethodCall returns the method name when call invokes a method
// whose receiver is the Store type, "" otherwise.
func storeMethodCall(pass *analysis.Pass, store *types.Named, call *ast.CallExpr) string {
	obj := calleeObj(pass.TypesInfo, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isStoreType(store, sig.Recv().Type()) {
		return ""
	}
	return fn.Name()
}

// scanLockedStmts walks a statement list tracking the Store lock state,
// reporting protocol violations inside locked regions. Nested blocks
// are scanned with the current state; lock transitions inside them
// (CommitJournal's error branch) stay local to the nesting.
func scanLockedStmts(pass *analysis.Pass, store *types.Named, acquirers map[string]bool, stmts []ast.Stmt, st lockState) lockState {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if op, ok := storeMuOp(pass, store, call); ok {
					switch op {
					case "Lock":
						st.write = true
					case "RLock":
						st.read = true
					case "Unlock":
						st.write = false
					case "RUnlock":
						st.read = false
					}
					continue
				}
			}
		case *ast.DeferStmt:
			// defer s.mu.Unlock() keeps the lock held to function end;
			// the state simply stays set for the remaining statements.
			if _, ok := storeMuOp(pass, store, s.Call); ok {
				continue
			}
		}
		if st.held() {
			checkLockedStmt(pass, store, acquirers, stmt, st)
		}
		st = scanNested(pass, store, acquirers, stmt, st)
	}
	return st
}

// scanNested recurses into the block structure of stmt, threading the
// lock state through sequential composition.
func scanNested(pass *analysis.Pass, store *types.Named, acquirers map[string]bool, stmt ast.Stmt, st lockState) lockState {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		return scanLockedStmts(pass, store, acquirers, s.List, st)
	case *ast.IfStmt:
		scanLockedStmts(pass, store, acquirers, s.Body.List, st)
		if s.Else != nil {
			scanNested(pass, store, acquirers, s.Else, st)
		}
	case *ast.ForStmt:
		scanLockedStmts(pass, store, acquirers, s.Body.List, st)
	case *ast.RangeStmt:
		scanLockedStmts(pass, store, acquirers, s.Body.List, st)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanLockedStmts(pass, store, acquirers, cc.Body, st)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanLockedStmts(pass, store, acquirers, cc.Body, st)
			}
		}
	case *ast.LabeledStmt:
		return scanNested(pass, store, acquirers, s.Stmt, st)
	}
	return st
}

// checkLockedStmt reports violations in the expressions of one
// statement executed under the lock. FuncLit bodies are pruned: they
// run when invoked, not here.
func checkLockedStmt(pass *analysis.Pass, store *types.Named, acquirers map[string]bool, stmt ast.Stmt, st lockState) {
	if g, ok := stmt.(*ast.GoStmt); ok && st.write {
		pass.Reportf(g.Pos(), "goroutine launched while holding the Store write lock")
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			return false // nested statements get their own visit
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while holding the Store lock can block all %s", blockedParties(st))
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive while holding the Store lock can block all %s", blockedParties(st))
			}
		case *ast.CallExpr:
			if m := storeMethodCall(pass, store, n); m != "" && acquirers[m] {
				pass.Reportf(n.Pos(), "%s re-acquires the Store lock already held here: deadlock", m)
				return true
			}
			if st.write && isFuncValueCall(pass, n) {
				pass.Reportf(n.Pos(), "function-value call under the Store write lock: callbacks are only contracted to run under the read lock")
			}
		}
		return true
	})
}

func blockedParties(st lockState) string {
	if st.write {
		return "readers and writers"
	}
	return "writers"
}

// isFuncValueCall reports calls of function-typed values: not a
// declared function or method, not a builtin, not a conversion, not an
// interface method (those are part of the locked contract).
func isFuncValueCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return false
	}
	fun := unparen(call.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return false // concrete or interface method
		}
	}
	return calleeObj(pass.TypesInfo, call) == nil
}
