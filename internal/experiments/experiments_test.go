package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllQuick runs every experiment at quick scale and validates the
// table structure; this is the integration test of the whole repository.
func TestAllQuick(t *testing.T) {
	tables := All(Config{Quick: true})
	if len(tables) != 15 {
		t.Fatalf("experiments = %d, want 15", len(tables))
	}
	seen := map[string]bool{}
	for _, tbl := range tables {
		if tbl.ID == "" || tbl.Title == "" {
			t.Errorf("table missing metadata: %+v", tbl)
		}
		if seen[tbl.ID] {
			t.Errorf("duplicate experiment ID %s", tbl.ID)
		}
		seen[tbl.ID] = true
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: no rows", tbl.ID)
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Header) {
				t.Errorf("%s: row width %d != header width %d", tbl.ID, len(row), len(tbl.Header))
			}
		}
		var sb strings.Builder
		tbl.Fprint(&sb)
		if !strings.Contains(sb.String(), tbl.ID) {
			t.Errorf("%s: Fprint missing ID", tbl.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E4"); !ok {
		t.Error("E4 not found")
	}
	if _, ok := ByID("e11"); !ok {
		t.Error("lowercase ID not accepted")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("unknown ID accepted")
	}
}

// TestE1ShapeHolds asserts the headline claim of E1: the indexed store
// answers selections faster than the naive scan at the largest quick
// size.
func TestE1ShapeHolds(t *testing.T) {
	tbl := E1(Config{Quick: true})
	var naive, indexed float64
	wantPoints := "2000"
	for _, row := range tbl.Rows {
		if row[0] != wantPoints {
			continue
		}
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		switch row[1] {
		case "naive":
			naive = v
		case "indexed":
			indexed = v
		}
	}
	if naive == 0 || indexed == 0 {
		t.Fatalf("missing rows: %v", tbl.Rows)
	}
	if indexed >= naive {
		t.Errorf("indexed (%v ms) not faster than naive (%v ms)", indexed, naive)
	}
	// Result counts must agree between modes.
	counts := map[string]string{}
	for _, row := range tbl.Rows {
		if row[0] == wantPoints {
			counts[row[1]] = row[3]
		}
	}
	if counts["naive"] != counts["indexed"] || counts["naive"] != counts["partitioned-4"] {
		t.Errorf("modes disagree on result counts: %v", counts)
	}
}

// TestE8ShapeHolds asserts meta-blocking's contract: fewer comparisons,
// full recall.
func TestE8ShapeHolds(t *testing.T) {
	tbl := E8(Config{Quick: true})
	comp := map[string]float64{}
	recall := map[string]string{}
	for _, row := range tbl.Rows {
		v, _ := strconv.ParseFloat(row[2], 64)
		comp[row[0]] = v
		recall[row[0]] = row[4]
	}
	if comp["meta-blocked-8core"] >= comp["naive"] {
		t.Errorf("meta-blocking did not reduce comparisons: %v", comp)
	}
	if recall["grid-blocked"] != "1.00" || recall["meta-blocked-8core"] != "1.00" {
		t.Errorf("blocking lost recall: %v", recall)
	}
}

// TestE12ShapeHolds asserts A1's claim: crop-specific maps beat the
// crop-agnostic baseline.
func TestE12ShapeHolds(t *testing.T) {
	tbl := E12(Config{Quick: true})
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	dlErr, _ := strconv.ParseFloat(tbl.Rows[0][2], 64)
	baseErr, _ := strconv.ParseFloat(tbl.Rows[1][2], 64)
	if dlErr >= baseErr {
		t.Errorf("DL crop map error (%v) not below baseline (%v)", dlErr, baseErr)
	}
}

// TestE3RatioNearPaper asserts the Variety ratio lands near the paper's
// implied 0.45.
func TestE3RatioNearPaper(t *testing.T) {
	tbl := E3(Config{Quick: true})
	ratio, err := strconv.ParseFloat(tbl.Rows[0][3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("knowledge/data ratio = %v, want ~0.48", ratio)
	}
}
