package rdf

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// escapeLiteral renders a literal lexical form as an N-Triples
// STRING_LITERAL_QUOTE, including the surrounding quotes. The W3C grammar
// allows only ECHAR ('\' [tbnrf"'\]) and UCHAR (\uXXXX / \UXXXXXXXX)
// escapes; printable characters (including non-ASCII) are emitted raw and
// remaining control characters as \u escapes.
func escapeLiteral(lex string) string {
	var b strings.Builder
	b.Grow(len(lex) + 2)
	b.WriteByte('"')
	for _, r := range lex {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		case '\b':
			b.WriteString(`\b`)
		case '\f':
			b.WriteString(`\f`)
		default:
			if r < 0x20 || r == 0x7f {
				fmt.Fprintf(&b, `\u%04X`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}

// unescapeLiteral decodes a quoted STRING_LITERAL_QUOTE (surrounding
// quotes included) back to its lexical form. It accepts the ECHAR and
// UCHAR escapes of the N-Triples grammar and rejects anything else, so
// Term.String output and files from standards-conforming tools both
// round-trip.
func unescapeLiteral(q string) (string, error) {
	if len(q) < 2 || q[0] != '"' || q[len(q)-1] != '"' {
		return "", fmt.Errorf("literal %q is not quoted", q)
	}
	body := q[1 : len(q)-1]
	if !strings.ContainsRune(body, '\\') {
		return body, nil
	}
	var b strings.Builder
	b.Grow(len(body))
	for i := 0; i < len(body); {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			i++
			continue
		}
		if i+1 >= len(body) {
			return "", fmt.Errorf("literal ends with bare backslash")
		}
		switch e := body[i+1]; e {
		case 't':
			b.WriteByte('\t')
			i += 2
		case 'b':
			b.WriteByte('\b')
			i += 2
		case 'n':
			b.WriteByte('\n')
			i += 2
		case 'r':
			b.WriteByte('\r')
			i += 2
		case 'f':
			b.WriteByte('\f')
			i += 2
		case '"':
			b.WriteByte('"')
			i += 2
		case '\'':
			b.WriteByte('\'')
			i += 2
		case '\\':
			b.WriteByte('\\')
			i += 2
		case 'u', 'U':
			digits := 4
			if e == 'U' {
				digits = 8
			}
			if i+2+digits > len(body) {
				return "", fmt.Errorf("truncated \\%c escape", e)
			}
			var r rune
			for _, d := range []byte(body[i+2 : i+2+digits]) {
				v := hexVal(d)
				if v < 0 {
					return "", fmt.Errorf("bad hex digit %q in \\%c escape", d, e)
				}
				r = r<<4 | rune(v)
			}
			if !utf8.ValidRune(r) {
				return "", fmt.Errorf("escape \\%c%s is not a valid code point", e, body[i+2:i+2+digits])
			}
			b.WriteRune(r)
			i += 2 + digits
		default:
			return "", fmt.Errorf("unknown escape \\%c", e)
		}
	}
	return b.String(), nil
}

func hexVal(d byte) int {
	switch {
	case d >= '0' && d <= '9':
		return int(d - '0')
	case d >= 'a' && d <= 'f':
		return int(d-'a') + 10
	case d >= 'A' && d <= 'F':
		return int(d-'A') + 10
	default:
		return -1
	}
}
