package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/federate"
	"repro/internal/geom"
	"repro/internal/geostore"
	"repro/internal/geotriples"
	"repro/internal/interlink"
	"repro/internal/sparql"
)

// E7 — GeoTriples transformation throughput and parallel scaling (C3).
func E7(cfg Config) *Table {
	rows := cfg.scale(50000, 2000)
	t := &Table{
		ID:     "E7",
		Title:  "GeoTriples: tabular geodata -> RDF throughput vs mappers (C3)",
		Header: []string{"records", "mappers", "triples", "wall_ms", "records/s"},
	}
	src := syntheticFieldSource(rows, 51)
	m := &geotriples.Mapping{
		SubjectTemplate: "http://extremeearth.eu/field/{id}",
		Class:           "http://extremeearth.eu/ontology#Field",
		POMs: []geotriples.PredicateObjectMap{
			{Predicate: "http://extremeearth.eu/ontology#crop",
				Kind: geotriples.ObjectIRI, Template: "http://extremeearth.eu/crop/{crop}"},
			{Predicate: "http://extremeearth.eu/ontology#areaHa",
				Kind: geotriples.ObjectTyped, Column: "area_ha",
				Datatype: "http://www.w3.org/2001/XMLSchema#double"},
		},
		GeometryColumn: "wkt",
	}
	for _, workers := range []int{1, 2, 4, 8} {
		start := time.Now()
		_, stats, err := geotriples.TransformParallel(src, m, workers)
		elapsed := time.Since(start)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			i0(stats.Records), i0(workers), i0(stats.Triples), ms(elapsed),
			f1(float64(stats.Records) / elapsed.Seconds()),
		})
	}
	return t
}

func syntheticFieldSource(n int, seed int64) *geotriples.Source {
	rng := rand.New(rand.NewSource(seed))
	crops := []string{"wheat", "maize", "barley", "rapeseed", "potato"}
	src := &geotriples.Source{
		Name:    "fields",
		Columns: []string{"id", "crop", "area_ha", "wkt"},
	}
	for i := 0; i < n; i++ {
		x := rng.Float64() * 10000
		y := rng.Float64() * 10000
		s := 20 + rng.Float64()*200
		wkt := geom.NewRect(x, y, x+s, y+s).WKT()
		src.Records = append(src.Records, geotriples.Record{
			"id":      fmt.Sprintf("%d", i),
			"crop":    crops[rng.Intn(len(crops))],
			"area_ha": fmt.Sprintf("%.2f", s*s/10_000),
			"wkt":     wkt,
		})
	}
	return src
}

// E8 — geospatial link discovery (C3): naive cross product vs grid
// blocking vs multi-core meta-blocking.
func E8(cfg Config) *Table {
	n := cfg.scale(3000, 300)
	t := &Table{
		ID:     "E8",
		Title:  "Geospatial interlinking: comparisons and recall by strategy (C3)",
		Header: []string{"strategy", "entities", "comparisons", "links", "recall", "wall_ms"},
		Notes:  "recall measured against the naive cross-product ground truth",
	}
	a := linkEntities(n, 61, "a")
	b := linkEntities(n, 62, "b")
	lcfg := interlink.Config{Relation: interlink.RelIntersects, Workers: 8}

	start := time.Now()
	truth, stN := interlink.DiscoverNaive(a, b, lcfg)
	naiveT := time.Since(start)
	t.Rows = append(t.Rows, []string{"naive", i0(2 * n), i0(stN.Comparisons),
		i0(stN.Links), "1.00", ms(naiveT)})

	start = time.Now()
	blocked, stB := interlink.DiscoverBlocked(a, b, lcfg)
	blockedT := time.Since(start)
	t.Rows = append(t.Rows, []string{"grid-blocked", i0(2 * n), i0(stB.Comparisons),
		i0(stB.Links), f2(interlink.Recall(blocked, truth)), ms(blockedT)})

	start = time.Now()
	meta, stM := interlink.DiscoverMetaBlocked(a, b, lcfg)
	metaT := time.Since(start)
	t.Rows = append(t.Rows, []string{"meta-blocked-8core", i0(2 * n), i0(stM.Comparisons),
		i0(stM.Links), f2(interlink.Recall(meta, truth)), ms(metaT)})

	// The R-tree index join shared with the store's SPARQL spatial-join
	// operator (geom.IndexJoin).
	start = time.Now()
	idx, stI := interlink.DiscoverIndexed(a, b, lcfg)
	idxT := time.Since(start)
	t.Rows = append(t.Rows, []string{"rtree-join", i0(2 * n), i0(stI.Comparisons),
		i0(stI.Links), f2(interlink.Recall(idx, truth)), ms(idxT)})
	return t
}

func linkEntities(n int, seed int64, prefix string) []interlink.Entity {
	rng := rand.New(rand.NewSource(seed))
	out := make([]interlink.Entity, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 10000
		y := rng.Float64() * 10000
		s := 50 + rng.Float64()*200
		out[i] = interlink.Entity{
			IRI:      fmt.Sprintf("http://extremeearth.eu/%s/%d", prefix, i),
			Geometry: geom.NewRect(x, y, x+s, y+s),
		}
	}
	return out
}

// E9 — federated querying (C3): latency vs federation size with and
// without source selection.
func E9(cfg Config) *Table {
	sizes := []int{2, 4, 8, 16}
	perEndpoint := cfg.scale(2000, 200)
	if cfg.Quick {
		sizes = []int{2, 4}
	}
	t := &Table{
		ID:     "E9",
		Title:  "Semagrow federation: query latency vs endpoints, selection on/off (C3)",
		Header: []string{"endpoints", "selection", "queried", "rows", "wall_ms"},
		Notes:  "endpoints tile the extent; each adds 2 ms simulated network latency; window hits one tile",
	}
	for _, k := range sizes {
		fed := federate.New()
		// Tile the extent into k vertical strips.
		stripW := extent.Width() / float64(k)
		for i := 0; i < k; i++ {
			region := geom.NewRect(extent.Min.X+float64(i)*stripW, extent.Min.Y,
				extent.Min.X+float64(i+1)*stripW, extent.Max.Y)
			st := geostore.New(geostore.ModeIndexed)
			for _, f := range geostore.GeneratePointFeatures(perEndpoint, int64(100+i), region) {
				mustAdd(st.AddFeature(f))
			}
			st.Build()
			fed.Register(federate.NewStoreEndpoint(fmt.Sprintf("ep%d", i), st, 2*time.Millisecond))
		}
		window := geom.NewRect(extent.Min.X+stripW*0.2, extent.Min.Y+1000,
			extent.Min.X+stripW*0.8, extent.Min.Y+3000)
		q := geostore.SelectionQuery(window)

		for _, sel := range []bool{true, false} {
			parsed, stats, err := runFederated(fed, q, !sel)
			if err != nil {
				panic(err)
			}
			label := "on"
			if !sel {
				label = "off"
			}
			t.Rows = append(t.Rows, []string{
				i0(k), label, i0(stats.Queried), i0(parsed.rows), ms(parsed.wall),
			})
		}
	}
	return t
}

type fedRun struct {
	rows int
	wall time.Duration
}

func runFederated(fed *federate.Federation, q string, disableSelection bool) (fedRun, federate.Stats, error) {
	parsed, err := sparql.Parse(q)
	if err != nil {
		return fedRun{}, federate.Stats{}, err
	}
	start := time.Now()
	res, stats, err := fed.Query(parsed, federate.Options{DisableSourceSelection: disableSelection})
	wall := time.Since(start)
	if err != nil {
		return fedRun{}, stats, err
	}
	return fedRun{rows: res.Len(), wall: wall}, stats, nil
}
