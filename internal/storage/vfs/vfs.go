// Package vfs is the filesystem seam under the storage engine: an FS /
// File interface pair covering exactly the operations WAL, snapshot,
// lock, and inspection code perform, with two implementations — OS, a
// thin delegation to the os package (the production default, zero
// allocation beyond the handle), and ErrFS, a deterministic
// fault-injecting in-memory filesystem for crash-simulation tests (fail
// the Nth operation, return ENOSPC, tear a write at an arbitrary byte,
// fail fsync or rename, simulate a power cut that discards every
// un-fsynced byte).
//
// The durability model ErrFS simulates is the conservative POSIX one:
// written bytes are volatile until File.Sync; a renamed, removed, or
// newly created directory entry is volatile until FS.SyncDir — with the
// single journal-filesystem concession that Sync on a freshly created
// file also makes its own directory entry durable (ext4/xfs ordered
// journaling behaves this way, and the WAL relies on it).
package vfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the handle capability the storage engine needs: sequential
// and seeked reads/writes, truncation, fsync, and an advisory lock.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file's written bytes to stable storage.
	Sync() error
	// Truncate changes the file size.
	Truncate(size int64) error
	// Stat describes the open file.
	Stat() (fs.FileInfo, error)
	// Name returns the path the file was opened with.
	Name() string
	// Lock takes a non-blocking exclusive advisory lock on the file,
	// released when the file is closed (or the process dies). It fails if
	// another holder has the lock.
	Lock() error
}

// FS is the filesystem capability the storage engine needs. All paths
// are interpreted like os package paths.
type FS interface {
	// OpenFile opens name with os.OpenFile-style flags.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// ReadFile reads the whole of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath. Durable only
	// after SyncDir on the containing directory.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// Stat describes name.
	Stat(name string) (fs.FileInfo, error)
	// Glob lists paths matching pattern (filepath.Glob semantics).
	Glob(pattern string) ([]string, error)
	// MkdirAll creates dir and its parents.
	MkdirAll(path string, perm fs.FileMode) error
	// SyncDir fsyncs a directory, making renamed/created/removed entries
	// in it durable.
	SyncDir(dir string) error
}

// OS is the production filesystem: direct delegation to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &osFile{f}, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return &osFile{f}, nil
}

func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (osFS) Glob(pattern string) ([]string, error)        { return filepath.Glob(pattern) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// SyncDir fsyncs the directory so directory-entry mutations (renames,
// creations, removals) are durable. A rename is not crash-safe until
// this returns.
func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// osFile wraps *os.File with the File lock capability (flock on unix, a
// no-op elsewhere — see lock_unix.go / lock_other.go).
type osFile struct {
	*os.File
}
