package dl

import "math/rand"

// Dataset is a labelled sample matrix: one row per sample.
type Dataset struct {
	X Matrix
	Y []int
	// Classes is the number of distinct labels.
	Classes int
}

// Len returns the sample count.
func (d *Dataset) Len() int { return d.X.Rows }

// Shuffle permutes samples in place.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	for i := d.X.Rows - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		ri, rj := d.X.Row(i), d.X.Row(j)
		for k := range ri {
			ri[k], rj[k] = rj[k], ri[k]
		}
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	}
}

// Batch returns the mini-batch starting at sample lo (exclusive upper
// bound clamped to the dataset end). The matrix shares storage with the
// dataset.
func (d *Dataset) Batch(lo, size int) (Matrix, []int) {
	hi := lo + size
	if hi > d.X.Rows {
		hi = d.X.Rows
	}
	return Matrix{
		Rows: hi - lo,
		Cols: d.X.Cols,
		Data: d.X.Data[lo*d.X.Cols : hi*d.X.Cols],
	}, d.Y[lo:hi]
}

// Split partitions the dataset into a training prefix and test suffix;
// trainFrac is clamped to (0, 1).
func (d *Dataset) Split(trainFrac float64) (train, test *Dataset) {
	if trainFrac <= 0 {
		trainFrac = 0.5
	}
	if trainFrac >= 1 {
		trainFrac = 0.9
	}
	n := int(float64(d.X.Rows) * trainFrac)
	train = &Dataset{
		X:       Matrix{Rows: n, Cols: d.X.Cols, Data: d.X.Data[:n*d.X.Cols]},
		Y:       d.Y[:n],
		Classes: d.Classes,
	}
	test = &Dataset{
		X:       Matrix{Rows: d.X.Rows - n, Cols: d.X.Cols, Data: d.X.Data[n*d.X.Cols:]},
		Y:       d.Y[n:],
		Classes: d.Classes,
	}
	return train, test
}

// Shard returns worker w's horizontal slice out of n shards (for
// data-parallel training).
func (d *Dataset) Shard(w, n int) *Dataset {
	per := (d.X.Rows + n - 1) / n
	lo := w * per
	hi := lo + per
	if lo > d.X.Rows {
		lo = d.X.Rows
	}
	if hi > d.X.Rows {
		hi = d.X.Rows
	}
	return &Dataset{
		X:       Matrix{Rows: hi - lo, Cols: d.X.Cols, Data: d.X.Data[lo*d.X.Cols : hi*d.X.Cols]},
		Y:       d.Y[lo:hi],
		Classes: d.Classes,
	}
}

// NearestCentroid is the classical baseline classifier of experiment E5:
// class means in feature space, prediction by minimum Euclidean distance.
type NearestCentroid struct {
	Centroids Matrix
}

// FitNearestCentroid computes per-class centroids.
func FitNearestCentroid(d *Dataset) *NearestCentroid {
	nc := &NearestCentroid{Centroids: NewMatrix(d.Classes, d.X.Cols)}
	counts := make([]int, d.Classes)
	for r := 0; r < d.X.Rows; r++ {
		c := d.Y[r]
		counts[c]++
		row := d.X.Row(r)
		crow := nc.Centroids.Row(c)
		for i, v := range row {
			crow[i] += v
		}
	}
	for c := 0; c < d.Classes; c++ {
		if counts[c] == 0 {
			continue
		}
		crow := nc.Centroids.Row(c)
		inv := 1 / float32(counts[c])
		for i := range crow {
			crow[i] *= inv
		}
	}
	return nc
}

// Predict returns the nearest centroid class per sample.
func (nc *NearestCentroid) Predict(x Matrix) []int {
	out := make([]int, x.Rows)
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		best, bestD := 0, float32(1e38)
		for c := 0; c < nc.Centroids.Rows; c++ {
			crow := nc.Centroids.Row(c)
			var d float32
			for i := range row {
				diff := row[i] - crow[i]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		out[r] = best
	}
	return out
}

// Accuracy evaluates the baseline on a dataset.
func (nc *NearestCentroid) Accuracy(d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	pred := nc.Predict(d.X)
	hit := 0
	for i, p := range pred {
		if p == d.Y[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pred))
}
