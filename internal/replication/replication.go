// Package replication implements WAL shipping between an eeserve
// primary and streaming read replicas.
//
// The primary side (Feed) serves two authenticated HTTP routes:
//
//	GET /replication/snapshot          newest snapshot file + resume cursor
//	GET /replication/wal?cursor=S:O    endless stream of CRC-framed records
//
// The WAL stream is backed by storage's SegmentReader, which only ever
// exposes the fsynced prefix of the log — a replica can never apply a
// record the primary itself could lose — and each batch is re-encoded
// self-contained (storage.EncodeBatch) so any durable (segment, offset)
// cursor is a valid resume point. The replica side (Replica) bootstraps
// from the snapshot route, applies batches through the store's normal
// journal path into its own WAL, persists its applied cursor, and
// reconnects with exponential backoff on retryable failures.
//
// Fencing: every frame carries the primary's epoch, a monotonically
// increasing token persisted in the data directory's MANIFEST
// (storage.BumpEpoch at primary boot). A replica rejects frames whose
// epoch is below the highest it has durably observed, so a demoted
// primary coming back from the dead cannot rewind a replica that has
// already followed its successor. Failures split sticky vs retryable
// exactly like the storage layer: connection loss and primary restarts
// reconnect and resume; CRC damage, epoch regressions, pruned cursors,
// and local storage failures park the replica degraded (serving stale
// reads, reporting the cause on /healthz) until an operator intervenes.
package replication

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/storage"
)

// Frame types. Batch carries one self-contained record; Heartbeat
// carries the primary-computed lag so an idle caught-up replica keeps
// fresh lag numbers; Sealed announces a graceful feed shutdown (the
// replica persists its cursor and reconnects later); Gone tells a
// resuming replica its cursor was pruned by compaction (sticky:
// re-bootstrap required).
const (
	FrameBatch     byte = 1
	FrameHeartbeat byte = 2
	FrameSealed    byte = 3
	FrameGone      byte = 4
)

// Frame is one unit of the replication stream. Cursor is the position
// just past the frame's batch (the replica's resume point once it has
// durably applied the frame); for non-batch frames it is simply the
// stream position at send time.
type Frame struct {
	Type   byte
	Epoch  uint64
	Cursor storage.Cursor
	Body   []byte
}

// maxFrameLen mirrors the WAL's record limit plus framing headroom; a
// length prefix beyond it means the stream is corrupt, not that a
// giant frame is coming.
const maxFrameLen = 1 << 28

// ErrFrameCorrupt reports a frame whose CRC or structure failed to
// verify. It is sticky on the replica: the transport (TCP) should have
// caught random damage, so a mismatch means something rewrote the
// stream and nothing downstream of it can be trusted.
var ErrFrameCorrupt = errors.New("replication: frame fails checksum or decode")

// appendFrame encodes f onto buf in the wire format:
// u32 payload length, u32 CRC32(payload), payload =
// (u8 type, uvarint epoch, uvarint seq, uvarint offset, body).
func appendFrame(buf []byte, f Frame) []byte {
	payload := make([]byte, 0, 32+len(f.Body))
	payload = append(payload, f.Type)
	payload = binary.AppendUvarint(payload, f.Epoch)
	payload = binary.AppendUvarint(payload, uint64(f.Cursor.Seq))
	payload = binary.AppendUvarint(payload, uint64(f.Cursor.Offset))
	payload = append(payload, f.Body...)

	var header [8]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, header[:]...)
	return append(buf, payload...)
}

// readFrame reads one frame off r. io.EOF (clean close between frames)
// passes through for the caller's reconnect logic; a mid-frame cut
// surfaces as io.ErrUnexpectedEOF (also retryable); CRC or structure
// damage is ErrFrameCorrupt.
func readFrame(r *bufio.Reader) (Frame, error) {
	var header [8]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return Frame{}, err
	}
	plen := binary.LittleEndian.Uint32(header[0:4])
	want := binary.LittleEndian.Uint32(header[4:8])
	if plen == 0 || plen > maxFrameLen {
		return Frame{}, fmt.Errorf("%w: length prefix %d", ErrFrameCorrupt, plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if crc32.ChecksumIEEE(payload) != want {
		return Frame{}, ErrFrameCorrupt
	}
	f := Frame{Type: payload[0]}
	rest := payload[1:]
	var fields [3]uint64
	for i := range fields {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return Frame{}, fmt.Errorf("%w: truncated header varint", ErrFrameCorrupt)
		}
		fields[i] = v
		rest = rest[n:]
	}
	f.Epoch = fields[0]
	f.Cursor = storage.Cursor{Seq: int(fields[1]), Offset: int64(fields[2])}
	f.Body = rest
	return f, nil
}
