package experiments

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/rdf"
	"repro/internal/storage"
	"repro/internal/storage/vfs"
)

// This file implements the fault-seam overhead group behind
// `eebench -bench-group fault -bench-out BENCH_fault.json`: since the
// storage engine now performs every filesystem operation through the
// vfs seam (so crash-simulation tests can substitute a fault-injecting
// implementation), this group proves the seam costs nothing measurable
// on the production path. Each workload runs twice over a real temp
// directory — once against the os package directly, once through
// vfs.OS — and reports the delta, mirroring the telemetry
// disabled/enabled discipline of BENCH_analyze.json.

// FaultBenchResult is one measured (workload, mode) cell.
type FaultBenchResult struct {
	Name    string `json:"name"` // workload name
	Mode    string `json:"mode"` // "os" (direct) or "vfs" (through the seam)
	Ops     int    `json:"ops"`  // records written / snapshots captured
	Iters   int    `json:"iters"`
	NsPerOp int64  `json:"ns_per_op"`
	// OverheadPct is the vfs-vs-os slowdown in percent (vfs rows only).
	OverheadPct float64 `json:"overhead_pct,omitempty"`
}

// FaultBenchReport is the BENCH_fault.json schema.
type FaultBenchReport struct {
	Group     string             `json:"group"`
	Generated string             `json:"generated"`
	CPUs      int                `json:"cpus"`
	Results   []FaultBenchResult `json:"results"`
}

// streamWriter is the subset of vfs.File both modes share; *os.File
// satisfies it directly, so the "os" rows dispatch no interface beyond
// what bufio itself costs.
type streamWriter interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// writeWALStream writes n framed 64-byte records through w with a
// flush every 100 — the WAL commit loop's I/O shape without its
// encoding work, so the measured delta is dispatch, not CPU.
func writeWALStream(w streamWriter, n int) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var rec [64]byte
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(rec[:8], uint64(i))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		if i%100 == 99 {
			if err := bw.Flush(); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return w.Close()
}

// FaultBench runs the vfs-seam overhead group and returns a printable
// table plus the JSON report.
func FaultBench(cfg Config) (*Table, *FaultBenchReport) {
	records := cfg.scale(400000, 40000)
	snapFeatures := cfg.scale(20000, 2000)
	iters := cfg.scale(12, 6)

	t := &Table{
		ID:     "FAULT",
		Title:  "vfs seam overhead: direct os calls vs the storage filesystem interface",
		Header: []string{"workload", "mode", "ops", "wall_ms", "overhead_pct"},
		Notes:  "os = *os.File directly; vfs = the same operations through vfs.OS (the production default under WAL and snapshots)",
	}
	rep := &FaultBenchReport{
		Group:     "fault",
		Generated: time.Now().UTC().Format(time.RFC3339),
		CPUs:      runtime.NumCPU(),
	}

	// The seam arms run through the injected filesystem (vfs.OS when
	// unset); the "os" arms stay raw os calls on purpose — they are the
	// baseline the seam's overhead is measured against.
	fsys := cfg.FS
	if fsys == nil {
		fsys = vfs.OS
	}

	dir, err := os.MkdirTemp("", "eebench-fault-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	record := func(name, mode string, ops int, dur time.Duration, base time.Duration) {
		overhead := 0.0
		cell := ""
		if mode == "vfs" && base > 0 {
			overhead = (float64(dur)/float64(base) - 1) * 100
			cell = f2(overhead)
		}
		t.Rows = append(t.Rows, []string{name, mode, i0(ops), ms(dur), cell})
		rep.Results = append(rep.Results, FaultBenchResult{
			Name: name, Mode: mode, Ops: ops, Iters: iters,
			NsPerOp: dur.Nanoseconds() / int64(max(ops, 1)), OverheadPct: overhead,
		})
	}

	// WAL-shaped buffered stream: open, framed writes, flush cadence.
	streamVia := func(open func(path string) (streamWriter, error)) func() {
		return func() {
			w, err := open(filepath.Join(dir, "stream.log"))
			if err != nil {
				panic(err)
			}
			if err := writeWALStream(w, records); err != nil {
				panic(err)
			}
		}
	}
	osStream, vfsStream := measurePair(iters,
		streamVia(func(path string) (streamWriter, error) {
			return os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		}),
		streamVia(func(path string) (streamWriter, error) {
			return fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		}))
	record("wal_stream", "os", records, osStream, 0)
	record("wal_stream", "vfs", records, vfsStream, osStream)

	// Snapshot capture: the full create → stream → fsync → rename →
	// dirsync sequence. The os mode hand-codes what writeSnapshotData
	// did before the seam existed; the vfs mode is the production path.
	st := rdf.NewStore()
	for i := 0; i < snapFeatures; i++ {
		st.Add(
			rdf.NewIRI(fmt.Sprintf("http://extremeearth.eu/feature/%d", i)),
			rdf.NewIRI("http://extremeearth.eu/ontology#value"),
			rdf.NewIntLiteral(int64(i)))
	}
	terms, triples, version := st.SnapshotData()
	snapPath := filepath.Join(dir, "bench.snap")

	osSnap, vfsSnap := measurePair(iters, func() {
		tmp := snapPath + ".tmp"
		f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			panic(err)
		}
		w := bufio.NewWriterSize(f, 1<<16)
		if err := storage.WriteSnapshotTo(w, terms, triples, version); err != nil {
			panic(err)
		}
		if err := f.Sync(); err != nil {
			panic(err)
		}
		if err := f.Close(); err != nil {
			panic(err)
		}
		if err := os.Rename(tmp, snapPath); err != nil {
			panic(err)
		}
		if d, err := os.Open(dir); err == nil {
			d.Sync()
			d.Close()
		}
	}, func() {
		if err := writeSnapshotThroughVFS(fsys, snapPath, terms, triples, version); err != nil {
			panic(err)
		}
	})
	record("snapshot_write", "os", len(triples), osSnap, 0)
	record("snapshot_write", "vfs", len(triples), vfsSnap, osSnap)

	return t, rep
}

// writeSnapshotThroughVFS is the production snapshot write shape over
// the injected filesystem (same sequence writeSnapshotData performs
// inside storage).
func writeSnapshotThroughVFS(fsys vfs.FS, path string, terms []rdf.Term, triples []rdf.EncTriple, version uint64) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if err := storage.WriteSnapshotTo(w, terms, triples, version); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// measurePair times two implementations of the same workload in
// interleaved rounds after an untimed warm-up of each, so neither mode
// pays first-run costs (page-cache population, allocator warm-up) that
// would masquerade as seam overhead. It returns each mode's best round:
// both modes issue the same syscalls, so the minimum is the run least
// disturbed by scheduling and writeback noise and the fairest basis
// for the overhead ratio.
func measurePair(iters int, a, b func()) (da, db time.Duration) {
	a()
	b()
	for i := 0; i < iters; i++ {
		start := time.Now()
		a()
		ta := time.Since(start)
		start = time.Now()
		b()
		tb := time.Since(start)
		if i == 0 || ta < da {
			da = ta
		}
		if i == 0 || tb < db {
			db = tb
		}
	}
	return da, db
}

// WriteFaultBenchJSON writes the report to path (the conventional name
// is BENCH_fault.json).
func WriteFaultBenchJSON(path string, rep *FaultBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
