package endpoint

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/sparql"
)

// This file is the endpoint's observability surface: request-ID
// assignment and propagation (X-Request-ID in, through context, out),
// the slog access log, the bounded slow-query ring behind
// GET /debug/queries, and the registry of currently running queries.

// AnalyzeEngine is the optional EXPLAIN ANALYZE capability of an
// Engine: evaluation with executor stats collection, returning the
// per-step profile alongside the results. Both geostore store flavours
// implement it. Engines without it still serve ?analyze=1 requests,
// with a null profile.
type AnalyzeEngine interface {
	QueryAnalyze(ctx context.Context, q *sparql.Query) (*sparql.Results, *sparql.Profile, error)
}

// newRequestID returns a fresh 16-hex-char trace ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// fixed marker rather than panicking in the serving path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the response status and size for the access
// log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// ServeHTTP implements http.Handler: every request gets (or keeps) an
// X-Request-ID, echoed on the response and carried through the request
// context into the engine, and — when a logger is configured — one
// structured access-log line records the outcome under that ID.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get("X-Request-ID")
	if id == "" {
		id = newRequestID()
	}
	w.Header().Set("X-Request-ID", id)
	r = r.WithContext(sparql.WithRequestID(r.Context(), id))
	if s.logger == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("request_id", id),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", rec.status),
		slog.Int64("bytes", rec.bytes),
		slog.Duration("duration", time.Since(start)))
}

// slowQuery is one captured slow (or timed-out) query.
type slowQuery struct {
	RequestID   string          `json:"request_id,omitempty"`
	Fingerprint string          `json:"fingerprint"`
	Query       string          `json:"query"`
	Status      string          `json:"status"` // "slow" or "timeout"
	StartedAt   time.Time       `json:"started_at"`
	DurationMs  float64         `json:"duration_ms"`
	Rows        int             `json:"rows"`
	Profile     *sparql.Profile `json:"profile,omitempty"`
}

// queryRing is the bounded in-memory buffer of recent slow queries.
type queryRing struct {
	mu      sync.Mutex
	entries []slowQuery
	next    int
	filled  bool
}

func newQueryRing(n int) *queryRing {
	if n < 1 {
		n = 1
	}
	return &queryRing{entries: make([]slowQuery, n)}
}

func (r *queryRing) record(e slowQuery) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[r.next] = e
	r.next++
	if r.next == len(r.entries) {
		r.next, r.filled = 0, true
	}
}

// snapshot returns the captured queries, newest first.
func (r *queryRing) snapshot() []slowQuery {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.filled {
		n = len(r.entries)
	}
	out := make([]slowQuery, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.entries[(r.next-i+len(r.entries))%len(r.entries)])
	}
	return out
}

// runningQuery is one query currently evaluating.
type runningQuery struct {
	ID          uint64    `json:"id"`
	RequestID   string    `json:"request_id,omitempty"`
	Fingerprint string    `json:"fingerprint"`
	Query       string    `json:"query"`
	StartedAt   time.Time `json:"started_at"`
}

// runningSet tracks in-flight evaluations (including ones whose client
// already timed out but whose executor is still draining).
type runningSet struct {
	mu  sync.Mutex
	seq uint64
	m   map[uint64]runningQuery
}

func newRunningSet() *runningSet {
	return &runningSet{m: make(map[uint64]runningQuery)}
}

func (s *runningSet) add(requestID string, q *sparql.Query) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	s.m[s.seq] = runningQuery{
		ID:          s.seq,
		RequestID:   requestID,
		Fingerprint: q.Fingerprint(),
		Query:       q.Canonical(),
		StartedAt:   time.Now(),
	}
	return s.seq
}

func (s *runningSet) remove(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, id)
}

// snapshot returns the running queries, oldest first.
func (s *runningSet) snapshot() []runningQuery {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]runningQuery, 0, len(s.m))
	for _, q := range s.m {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// handleDebugQueries serves the slow-query ring and the currently
// running queries as JSON.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	out := struct {
		SlowThresholdMs float64        `json:"slow_query_threshold_ms"`
		Running         []runningQuery `json:"running"`
		Recent          []slowQuery    `json:"recent"`
	}{
		SlowThresholdMs: float64(s.cfg.SlowQueryThreshold) / float64(time.Millisecond),
		Running:         s.running.snapshot(),
		Recent:          s.slow.snapshot(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// recordSlow captures a completed (or timed-out) query into the ring
// when slow-query capture is enabled and the evaluation exceeded the
// threshold.
func (s *Server) recordSlow(ctx context.Context, q *sparql.Query, status string, started time.Time, elapsed time.Duration, rows int, prof *sparql.Profile) {
	if s.cfg.SlowQueryThreshold <= 0 || elapsed < s.cfg.SlowQueryThreshold {
		return
	}
	s.metrics.slowQueries.Add(1)
	s.slow.record(slowQuery{
		RequestID:   sparql.RequestIDFrom(ctx),
		Fingerprint: q.Fingerprint(),
		Query:       q.Canonical(),
		Status:      status,
		StartedAt:   started,
		DurationMs:  float64(elapsed) / float64(time.Millisecond),
		Rows:        rows,
		Profile:     prof,
	})
}
