package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/geom"
	"repro/internal/geostore"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// This file implements the query-executor benchmark group behind
// `eebench -bench-out BENCH_query.json`: the perf trajectory of the
// compiled slot-based executor against the legacy map-based evaluator,
// recorded as machine-readable JSON so successive PRs can compare runs.

// QueryBenchResult is one measured (workload, engine) cell.
type QueryBenchResult struct {
	Name    string `json:"name"`    // workload name
	Engine  string `json:"engine"`  // "legacy", "slot" or "slot-planned"
	Triples int    `json:"triples"` // dataset size
	Rows    int    `json:"rows"`    // result rows per evaluation
	Iters   int    `json:"iters"`
	NsPerOp int64  `json:"ns_per_op"`
}

// QueryBenchReport is the BENCH_query.json schema.
type QueryBenchReport struct {
	Group     string             `json:"group"`
	Generated string             `json:"generated"`
	Triples   int                `json:"triples"`
	Results   []QueryBenchResult `json:"results"`
}

// QueryWorkload is one workload of the query-executor benchmark group.
// The list is the single source of truth shared with the
// repository-root BenchmarkQuery_* benchmarks.
type QueryWorkload struct {
	Name  string
	Query string
	// MinRows guards against a silently empty (and therefore
	// meaningless) measurement at the 10k-feature dataset scale.
	MinRows int
}

// QueryWorkloads are multi-pattern joins with filters over the
// band-observation dataset.
var QueryWorkloads = []QueryWorkload{
	{"join_filter", `
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f ?v0 ?v1 WHERE {
			?f a ee:Feature .
			?f ee:band0 ?v0 .
			?f ee:band1 ?v1 .
			FILTER(?v0 > 200 && ?v1 < 64)
		}`, 100},
	{"distinct", `
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT DISTINCT ?v0 WHERE {
			?f ee:band0 ?v0 .
			?f ee:band1 ?v1 .
			FILTER(?v1 >= 128)
		}`, 100},
	{"order_by_limit", `
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f ?v0 WHERE {
			?f a ee:Feature .
			?f ee:band0 ?v0 .
		} ORDER BY DESC ?v0 LIMIT 10`, 10},
	{"count_group", `
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?v0 (COUNT(*) AS ?n) WHERE {
			?f ee:band0 ?v0 .
			?f ee:band1 ?v1 .
			FILTER(?v1 < 32)
		} GROUP BY ?v0`, 100},
}

// queryBenchDataset builds the band-observation corpus: point features
// with six integer band properties (10 triples per feature).
func queryBenchDataset(features int) *rdf.Store {
	gst := geostore.New(geostore.ModeIndexed)
	rng := rand.New(rand.NewSource(43))
	extent := geom.NewRect(0, 0, 10000, 10000)
	for _, f := range geostore.GeneratePointFeatures(features, 42, extent) {
		for band := 0; band < 6; band++ {
			f.Props[fmt.Sprintf("http://extremeearth.eu/ontology#band%d", band)] =
				rdf.NewIntLiteral(int64(rng.Intn(256)))
		}
		if err := gst.AddFeature(f); err != nil {
			panic(err)
		}
	}
	return gst.RDF()
}

// QueryBench runs the query-executor group and returns a printable table
// plus the JSON report.
func QueryBench(cfg Config) (*Table, *QueryBenchReport) {
	features := cfg.scale(10000, 1000)
	iters := cfg.scale(5, 2)
	st := queryBenchDataset(features)

	t := &Table{
		ID:     "QUERY",
		Title:  "Query executor: compiled slot pipeline vs legacy evaluator",
		Header: []string{"workload", "engine", "rows", "wall_ms", "speedup"},
		Notes:  "uncached path; slot-planned reuses one compiled plan (the serving-path steady state)",
	}
	rep := &QueryBenchReport{
		Group:     "query",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Triples:   st.Len(),
	}

	measure := func(eval func() (*sparql.Results, error)) (int, time.Duration) {
		rows := 0
		// Warm indexes, statistics and allocator before timing.
		if res, err := eval(); err != nil {
			panic(err)
		} else {
			rows = res.Len()
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := eval(); err != nil {
				panic(err)
			}
		}
		return rows, time.Since(start) / time.Duration(iters)
	}

	for _, w := range QueryWorkloads {
		q := sparql.MustParse(w.Query)
		plan, err := sparql.CompilePlan(st, q, sparql.PlanOpts{})
		if err != nil {
			panic(err)
		}
		engines := []struct {
			name string
			eval func() (*sparql.Results, error)
		}{
			{"legacy", func() (*sparql.Results, error) { return sparql.EvalLegacy(st, q) }},
			{"slot", func() (*sparql.Results, error) { return sparql.Eval(st, q) }},
			{"slot-planned", func() (*sparql.Results, error) { return plan.Execute() }},
		}
		var legacyNs int64
		for _, e := range engines {
			rows, d := measure(e.eval)
			if e.name == "legacy" {
				legacyNs = d.Nanoseconds()
			}
			speedup := "1.00"
			if d > 0 && e.name != "legacy" {
				speedup = f2(float64(legacyNs) / float64(d.Nanoseconds()))
			}
			t.Rows = append(t.Rows, []string{w.Name, e.name, i0(rows), ms(d), speedup})
			rep.Results = append(rep.Results, QueryBenchResult{
				Name: w.Name, Engine: e.name, Triples: st.Len(),
				Rows: rows, Iters: iters, NsPerOp: d.Nanoseconds(),
			})
		}
	}
	return t, rep
}

// WriteQueryBenchJSON writes the report to path (the conventional name
// is BENCH_query.json).
func WriteQueryBenchJSON(path string, rep *QueryBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
