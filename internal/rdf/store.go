package rdf

import (
	"sort"
	"sync"
)

// EncTriple is a dictionary-encoded triple.
type EncTriple struct {
	S, P, O ID
}

// Store is an in-memory triple store with dictionary encoding and three
// sorted index orderings (SPO, POS, OSP) so every triple-pattern shape has
// a matching range-scan access path.
//
// Writes (Add/AddTriple) buffer into a pending log; the indexes are
// rebuilt lazily on first read after a write. This favours the bulk-load
// then query-many pattern of the experiments while still allowing
// interleaved updates. All methods are safe for concurrent use.
type Store struct {
	dict *Dict

	mu      sync.RWMutex
	spo     []EncTriple
	pos     []EncTriple
	osp     []EncTriple
	pending []EncTriple
	seen    map[EncTriple]struct{}
	version uint64
}

// NewStore returns an empty store with its own dictionary.
func NewStore() *Store {
	return &Store{dict: NewDict(), seen: make(map[EncTriple]struct{})}
}

// Dict exposes the store's term dictionary.
func (s *Store) Dict() *Dict { return s.dict }

// Add inserts the triple (s, p, o) given as Terms. Duplicate triples are
// ignored.
func (s *Store) Add(sub, pred, obj Term) {
	s.AddEncoded(EncTriple{s.dict.Encode(sub), s.dict.Encode(pred), s.dict.Encode(obj)})
}

// AddTriple inserts a Triple value.
func (s *Store) AddTriple(t Triple) { s.Add(t.S, t.P, t.O) }

// AddEncoded inserts an already-encoded triple; the IDs must come from this
// store's dictionary.
func (s *Store) AddEncoded(t EncTriple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.seen[t]; dup {
		return
	}
	s.seen[t] = struct{}{}
	s.pending = append(s.pending, t)
	s.version++
}

// Version returns a monotonic counter that advances on every mutation
// (each distinct triple inserted). Consumers such as query-result caches
// use it to detect that cached results are stale.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Len returns the number of distinct triples in the store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.seen)
}

// flushLocked merges pending triples into the three sorted indexes. Caller
// must hold the write lock.
func (s *Store) flushLocked() {
	if len(s.pending) == 0 {
		return
	}
	s.spo = append(s.spo, s.pending...)
	s.pos = append(s.pos, s.pending...)
	s.osp = append(s.osp, s.pending...)
	s.pending = s.pending[:0]
	sort.Slice(s.spo, func(i, j int) bool { return lessSPO(s.spo[i], s.spo[j]) })
	sort.Slice(s.pos, func(i, j int) bool { return lessPOS(s.pos[i], s.pos[j]) })
	sort.Slice(s.osp, func(i, j int) bool { return lessOSP(s.osp[i], s.osp[j]) })
}

// ensureIndexed flushes pending writes if any, upgrading the lock.
func (s *Store) ensureIndexed() {
	s.mu.RLock()
	dirty := len(s.pending) > 0
	s.mu.RUnlock()
	if !dirty {
		return
	}
	s.mu.Lock()
	s.flushLocked()
	s.mu.Unlock()
}

func lessSPO(a, b EncTriple) bool {
	if a.S != b.S {
		return a.S < b.S
	}
	if a.P != b.P {
		return a.P < b.P
	}
	return a.O < b.O
}

func lessPOS(a, b EncTriple) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	if a.O != b.O {
		return a.O < b.O
	}
	return a.S < b.S
}

func lessOSP(a, b EncTriple) bool {
	if a.O != b.O {
		return a.O < b.O
	}
	if a.S != b.S {
		return a.S < b.S
	}
	return a.P < b.P
}

// Match calls fn for every triple matching the pattern, where NoID acts as
// a wildcard in any position. Iteration stops early when fn returns false.
func (s *Store) Match(sub, pred, obj ID, fn func(EncTriple) bool) {
	s.ensureIndexed()
	s.mu.RLock()
	defer s.mu.RUnlock()

	// Choose the index whose sort order puts the bound components first.
	switch {
	case sub != NoID:
		s.scanSPO(sub, pred, obj, fn)
	case pred != NoID:
		s.scanPOS(pred, obj, fn)
	case obj != NoID:
		s.scanOSP(obj, fn)
	default:
		for _, t := range s.spo {
			if !fn(t) {
				return
			}
		}
	}
}

// scanSPO handles patterns with S bound (P and O optionally bound).
func (s *Store) scanSPO(sub, pred, obj ID, fn func(EncTriple) bool) {
	q := EncTriple{S: sub, P: pred, O: obj}
	lo := sort.Search(len(s.spo), func(i int) bool { return !lessSPO(s.spo[i], q) })
	for i := lo; i < len(s.spo); i++ {
		t := s.spo[i]
		if t.S != sub {
			return // past the S range
		}
		if pred != NoID {
			if t.P > pred {
				return // past the (S,P) range
			}
			if t.P != pred {
				continue
			}
			if obj != NoID && t.O > obj {
				return // past the exact (S,P,O) position
			}
		}
		if obj != NoID && t.O != obj {
			continue
		}
		if !fn(t) {
			return
		}
	}
}

// scanPOS handles patterns with P bound and S unbound (O optionally bound).
func (s *Store) scanPOS(pred, obj ID, fn func(EncTriple) bool) {
	q := EncTriple{P: pred, O: obj}
	lo := sort.Search(len(s.pos), func(i int) bool { return !lessPOS(s.pos[i], q) })
	for i := lo; i < len(s.pos); i++ {
		t := s.pos[i]
		if t.P != pred {
			return
		}
		if obj != NoID {
			if t.O > obj {
				return
			}
			if t.O != obj {
				continue
			}
		}
		if !fn(t) {
			return
		}
	}
}

// scanOSP handles patterns with only O bound.
func (s *Store) scanOSP(obj ID, fn func(EncTriple) bool) {
	q := EncTriple{O: obj}
	lo := sort.Search(len(s.osp), func(i int) bool { return !lessOSP(s.osp[i], q) })
	for i := lo; i < len(s.osp); i++ {
		t := s.osp[i]
		if t.O != obj {
			return
		}
		if !fn(t) {
			return
		}
	}
}

// MatchTerms is Match with Term arguments and decoded Triple results. A
// zero Term (Kind == IRI, Value == "") acts as a wildcard.
func (s *Store) MatchTerms(sub, pred, obj Term, fn func(Triple) bool) {
	enc := func(t Term) ID {
		if t == (Term{}) {
			return NoID
		}
		id, ok := s.dict.Lookup(t)
		if !ok {
			return ID(-1) // term not in dictionary: no matches possible
		}
		return id
	}
	es, ep, eo := enc(sub), enc(pred), enc(obj)
	if es < 0 || ep < 0 || eo < 0 {
		return
	}
	s.Match(es, ep, eo, func(t EncTriple) bool {
		return fn(Triple{
			S: s.dict.MustDecode(t.S),
			P: s.dict.MustDecode(t.P),
			O: s.dict.MustDecode(t.O),
		})
	})
}

// Count returns the number of triples matching the pattern.
func (s *Store) Count(sub, pred, obj ID) int {
	n := 0
	s.Match(sub, pred, obj, func(EncTriple) bool { n++; return true })
	return n
}

// Triples returns all triples in unspecified order (decoded). Intended for
// tests and small exports.
func (s *Store) Triples() []Triple {
	s.ensureIndexed()
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Triple, 0, len(s.spo))
	for _, t := range s.spo {
		out = append(out, Triple{
			S: s.dict.MustDecode(t.S),
			P: s.dict.MustDecode(t.P),
			O: s.dict.MustDecode(t.O),
		})
	}
	return out
}
