package endpoint

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the query latency
// histogram, chosen to straddle in-memory query times through slow
// analytic queries.
var latencyBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

// metrics aggregates the endpoint's operational counters. All fields are
// manipulated atomically; the zero value is ready to use.
type metrics struct {
	queries     atomic.Uint64 // completed queries (any outcome)
	errors      atomic.Uint64 // parse or evaluation failures
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	rejected    atomic.Uint64 // admission-control 503s
	timeouts    atomic.Uint64 // per-query deadline expirations

	loads         atomic.Uint64 // successful POST /load requests
	loadErrors    atomic.Uint64 // failed POST /load requests
	loadedTriples atomic.Uint64 // triples read by POST /load (incl. partial loads)

	bucketCounts [11]atomic.Uint64 // len(latencyBuckets)+1, last = +Inf
	latencySumNs atomic.Uint64
}

// observe records one query latency in the histogram.
func (m *metrics) observe(d time.Duration) {
	m.latencySumNs.Add(uint64(d.Nanoseconds()))
	sec := d.Seconds()
	for i, ub := range latencyBuckets {
		if sec <= ub {
			m.bucketCounts[i].Add(1)
			return
		}
	}
	m.bucketCounts[len(latencyBuckets)].Add(1)
}

// CacheHits returns the number of queries answered from the result cache.
func (s *Server) CacheHits() uint64 { return s.metrics.cacheHits.Load() }

// PlanCacheStatser is the optional engine capability behind the plan
// cache metrics: engines that compile and cache slot-based query plans
// (geostore single-node and partitioned stores) report their counters.
type PlanCacheStatser interface {
	PlanCacheStats() (hits, misses uint64)
}

// SpatialJoinStatser is the optional engine capability behind the
// spatial-join metric: engines that answer variable-variable spatial
// predicates with R-tree index joins report how many probes they issued.
type SpatialJoinStatser interface {
	SpatialJoinStats() (probes uint64)
}

// ExecStatser is the optional engine capability behind the parallel
// executor metric: engines running morsel-driven execution report how
// many morsels they dispatched (sparql_exec_morsels_total).
type ExecStatser interface {
	ExecStats() (morsels uint64)
}

// handleMetrics serves the counters in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := &s.metrics
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeCounter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	writeCounter("sparql_queries_total", "Completed SPARQL protocol requests.", m.queries.Load())
	writeCounter("sparql_query_errors_total", "Requests that failed to parse or evaluate.", m.errors.Load())
	writeCounter("sparql_cache_hits_total", "Requests served from the result cache.", m.cacheHits.Load())
	writeCounter("sparql_cache_misses_total", "Requests that missed the result cache.", m.cacheMisses.Load())
	writeCounter("sparql_rejected_total", "Requests rejected by admission control.", m.rejected.Load())
	writeCounter("sparql_timeouts_total", "Requests cancelled by the per-query timeout.", m.timeouts.Load())
	writeCounter("sparql_loads_total", "Successful POST /load ingestions.", m.loads.Load())
	writeCounter("sparql_load_errors_total", "Failed POST /load ingestions.", m.loadErrors.Load())
	writeCounter("sparql_loaded_triples_total", "Triples read by POST /load.", m.loadedTriples.Load())
	if pc, ok := s.engine.(PlanCacheStatser); ok {
		hits, misses := pc.PlanCacheStats()
		writeCounter("sparql_plan_cache_hits_total", "Queries evaluated with a cached compiled plan.", hits)
		writeCounter("sparql_plan_cache_misses_total", "Queries that compiled a fresh plan.", misses)
	}
	if sj, ok := s.engine.(SpatialJoinStatser); ok {
		writeCounter("sparql_spatial_join_probes_total", "R-tree probes issued by index spatial joins.", sj.SpatialJoinStats())
	}
	if es, ok := s.engine.(ExecStatser); ok {
		writeCounter("sparql_exec_morsels_total", "Morsels dispatched by the parallel query executor.", es.ExecStats())
	}
	if s.cfg.Workers != nil {
		fmt.Fprintf(w, "# HELP sparql_exec_workers_busy Executor worker slots currently in use.\n# TYPE sparql_exec_workers_busy gauge\nsparql_exec_workers_busy %d\n", s.cfg.Workers.Busy())
	}
	fmt.Fprintf(w, "# HELP sparql_cache_entries Live result cache entries.\n# TYPE sparql_cache_entries gauge\nsparql_cache_entries %d\n", s.cache.len())

	fmt.Fprintf(w, "# HELP sparql_query_duration_seconds Query latency histogram.\n# TYPE sparql_query_duration_seconds histogram\n")
	cum := uint64(0)
	for i, ub := range latencyBuckets {
		cum += m.bucketCounts[i].Load()
		fmt.Fprintf(w, "sparql_query_duration_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.bucketCounts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "sparql_query_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "sparql_query_duration_seconds_sum %g\n", float64(m.latencySumNs.Load())/1e9)
	fmt.Fprintf(w, "sparql_query_duration_seconds_count %d\n", cum)
}

// handleHealthz reports liveness plus basic store facts, so load balancers
// and Sextant deployments can gate traffic on it.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"triples\":%d,\"store_version\":%d}\n",
		s.engine.Len(), s.engine.Version())
}
