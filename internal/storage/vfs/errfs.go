package vfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Op classifies one mutating filesystem operation for fault injection.
// Read-side operations are never injected: recovery code must be able
// to read back whatever the simulated crash left behind.
type Op string

const (
	OpCreate   Op = "create"   // OpenFile with a writable flag set
	OpWrite    Op = "write"    // File.Write
	OpSync     Op = "fsync"    // File.Sync
	OpTruncate Op = "truncate" // File.Truncate
	OpRename   Op = "rename"   // FS.Rename
	OpRemove   Op = "remove"   // FS.Remove
	OpSyncDir  Op = "dirsync"  // FS.SyncDir
)

// FaultFunc decides the fate of mutating operation seq (0-based, in
// execution order): return nil to let it through, or an error to fail
// it. Returning an error wrapping ErrPowerCut kills the filesystem —
// every later operation fails until PowerCut resets it. Wrapping the
// error in TornWrite (write ops only) applies a prefix of the write
// before failing, simulating a torn sector.
type FaultFunc func(seq int, op Op, path string) error

var (
	// ErrPowerCut marks a simulated machine death: the op (beyond any
	// torn prefix) did not happen, and the filesystem is dead until
	// PowerCut rolls volatile state back.
	ErrPowerCut = errors.New("errfs: simulated power cut")
	// ErrNoSpace simulates ENOSPC.
	ErrNoSpace = errors.New("errfs: no space left on device")
	// ErrInjected is a generic injected I/O failure (EIO-like).
	ErrInjected = errors.New("errfs: injected I/O error")
)

// TornWrite wraps a write fault so that Keep bytes of the attempted
// write are applied before Err is returned — a torn sector.
type TornWrite struct {
	Keep int
	Err  error
}

func (e *TornWrite) Error() string {
	return fmt.Sprintf("torn write after %d bytes: %v", e.Keep, e.Err)
}
func (e *TornWrite) Unwrap() error { return e.Err }

// ErrFS is a deterministic in-memory filesystem with fault injection
// and power-cut simulation. Every file tracks its durable (fsynced)
// content separately from its current content, and the namespace tracks
// durable directory entries separately from current ones; PowerCut
// discards everything volatile, modeling the conservative POSIX
// contract (see the package comment for the one journaling concession).
// All methods are safe for concurrent use.
type ErrFS struct {
	mu    sync.Mutex
	cur   map[string]*memInode // current namespace
	dur   map[string]*memInode // namespace that survives a power cut
	dirs  map[string]bool
	fault FaultFunc
	seq   int // mutating ops performed (incl. failed ones)
	dead  bool
	gen   int // bumped by PowerCut; stale handles error
}

type memInode struct {
	data   []byte
	synced []byte // content as of the last successful Sync
	mtime  time.Time
	locked bool
}

// NewErrFS returns an empty filesystem with no faults armed.
func NewErrFS() *ErrFS {
	return &ErrFS{
		cur:  make(map[string]*memInode),
		dur:  make(map[string]*memInode),
		dirs: make(map[string]bool),
	}
}

// SetFault arms (or, with nil, disarms) the fault hook and resets the
// operation counter, so seq 0 is the next mutating operation.
func (f *ErrFS) SetFault(fn FaultFunc) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fault = fn
	f.seq = 0
}

// Ops returns how many mutating operations have run (including failed
// ones) since the last SetFault or PowerCut. A counting pass with a nil
// fault hook gives the injection-point space for a workload.
func (f *ErrFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// PowerCut simulates pulling the plug: every un-fsynced byte and every
// un-synced directory entry is discarded, open handles become stale,
// advisory locks are released, and any armed fault is cleared. The
// filesystem is then alive again, holding exactly the durable state.
func (f *ErrFS) PowerCut() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gen++
	f.dead = false
	f.fault = nil
	f.seq = 0
	cur := make(map[string]*memInode, len(f.dur))
	for name, ino := range f.dur {
		ino.data = append([]byte(nil), ino.synced...)
		ino.locked = false
		cur[name] = ino
	}
	f.cur = cur
}

// injectLocked counts the op and consults the fault hook. Caller holds
// f.mu.
func (f *ErrFS) injectLocked(op Op, path string) error {
	if f.dead {
		return fmt.Errorf("errfs: %s %s: %w", op, path, ErrPowerCut)
	}
	seq := f.seq
	f.seq++
	if f.fault == nil {
		return nil
	}
	err := f.fault(seq, op, path)
	if err != nil && errors.Is(err, ErrPowerCut) {
		f.dead = true
	}
	return err
}

func (f *ErrFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	writable := flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE|os.O_TRUNC|os.O_APPEND) != 0
	if writable {
		if err := f.injectLocked(OpCreate, name); err != nil {
			return nil, fmt.Errorf("errfs: open %s: %w", name, err)
		}
	} else if f.dead {
		return nil, fmt.Errorf("errfs: open %s: %w", name, ErrPowerCut)
	}
	ino := f.cur[name]
	if ino == nil {
		if flag&os.O_CREATE == 0 {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		ino = &memInode{mtime: time.Now()}
		f.cur[name] = ino
	} else if flag&os.O_TRUNC != 0 {
		// Truncation-at-open is volatile like any write: the old synced
		// content still comes back after a power cut.
		ino.data = nil
		ino.mtime = time.Now()
	}
	h := &errFile{fs: f, name: name, ino: ino, gen: f.gen, rdonly: !writable}
	if flag&os.O_APPEND != 0 {
		h.off = int64(len(ino.data))
	}
	return h, nil
}

func (f *ErrFS) Open(name string) (File, error) {
	return f.OpenFile(name, os.O_RDONLY, 0)
}

func (f *ErrFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return nil, fmt.Errorf("errfs: read %s: %w", name, ErrPowerCut)
	}
	ino := f.cur[name]
	if ino == nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), ino.data...), nil
}

func (f *ErrFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.injectLocked(OpRename, oldpath); err != nil {
		return fmt.Errorf("errfs: rename %s: %w", oldpath, err)
	}
	ino := f.cur[oldpath]
	if ino == nil {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(f.cur, oldpath)
	f.cur[newpath] = ino
	ino.mtime = time.Now()
	return nil
}

func (f *ErrFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.injectLocked(OpRemove, name); err != nil {
		return fmt.Errorf("errfs: remove %s: %w", name, err)
	}
	if _, ok := f.cur[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(f.cur, name)
	return nil
}

func (f *ErrFS) Stat(name string) (fs.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return nil, fmt.Errorf("errfs: stat %s: %w", name, ErrPowerCut)
	}
	if f.dirs[name] {
		return memFileInfo{name: filepath.Base(name), dir: true, mtime: time.Now()}, nil
	}
	ino := f.cur[name]
	if ino == nil {
		return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
	}
	return memFileInfo{name: filepath.Base(name), size: int64(len(ino.data)), mtime: ino.mtime}, nil
}

func (f *ErrFS) Glob(pattern string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for name := range f.cur {
		ok, err := filepath.Match(pattern, name)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

func (f *ErrFS) MkdirAll(path string, perm fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return fmt.Errorf("errfs: mkdir %s: %w", path, ErrPowerCut)
	}
	for p := path; p != "." && p != string(filepath.Separator) && p != ""; p = filepath.Dir(p) {
		f.dirs[p] = true
	}
	return nil
}

// SyncDir makes dir's current entries durable: created and renamed
// names now survive a power cut, and removed names stay gone.
func (f *ErrFS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.injectLocked(OpSyncDir, dir); err != nil {
		return fmt.Errorf("errfs: sync dir %s: %w", dir, err)
	}
	for name, ino := range f.cur {
		if filepath.Dir(name) == dir {
			f.dur[name] = ino
		}
	}
	for name := range f.dur {
		if filepath.Dir(name) == dir {
			if _, ok := f.cur[name]; !ok {
				delete(f.dur, name)
			}
		}
	}
	return nil
}

// DurableLen reports the size name would have after a power cut (-1 if
// the name itself would not survive). Test helper.
func (f *ErrFS) DurableLen(name string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	ino := f.dur[name]
	if ino == nil {
		return -1
	}
	return len(ino.synced)
}

// errFile is an open handle on an ErrFS inode.
type errFile struct {
	fs     *ErrFS
	name   string
	ino    *memInode
	off    int64
	gen    int
	rdonly bool
	closed bool
}

// checkLocked validates the handle under fs.mu.
func (h *errFile) checkLocked() error {
	if h.closed {
		return fs.ErrClosed
	}
	if h.gen != h.fs.gen {
		return fmt.Errorf("errfs: %s: stale handle (crashed filesystem): %w", h.name, fs.ErrClosed)
	}
	return nil
}

func (h *errFile) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.checkLocked(); err != nil {
		return 0, err
	}
	if h.fs.dead {
		return 0, fmt.Errorf("errfs: read %s: %w", h.name, ErrPowerCut)
	}
	if h.off >= int64(len(h.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.ino.data[h.off:])
	h.off += int64(n)
	return n, nil
}

func (h *errFile) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.checkLocked(); err != nil {
		return 0, err
	}
	if h.rdonly {
		return 0, &fs.PathError{Op: "write", Path: h.name, Err: fs.ErrPermission}
	}
	err := h.fs.injectLocked(OpWrite, h.name)
	keep := len(p)
	if err != nil {
		keep = 0
		var torn *TornWrite
		if errors.As(err, &torn) {
			keep = min(max(torn.Keep, 0), len(p))
		}
	}
	if keep > 0 {
		end := h.off + int64(keep)
		if grow := end - int64(len(h.ino.data)); grow > 0 {
			h.ino.data = append(h.ino.data, make([]byte, grow)...)
		}
		copy(h.ino.data[h.off:end], p[:keep])
		h.off = end
		h.ino.mtime = time.Now()
	}
	if err != nil {
		return keep, fmt.Errorf("errfs: write %s: %w", h.name, err)
	}
	return len(p), nil
}

func (h *errFile) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.checkLocked(); err != nil {
		return 0, err
	}
	switch whence {
	case io.SeekStart:
		h.off = offset
	case io.SeekCurrent:
		h.off += offset
	case io.SeekEnd:
		h.off = int64(len(h.ino.data)) + offset
	default:
		return 0, fmt.Errorf("errfs: seek %s: bad whence %d", h.name, whence)
	}
	if h.off < 0 {
		return 0, fmt.Errorf("errfs: seek %s: negative offset", h.name)
	}
	return h.off, nil
}

// Sync makes the file's current content durable. Per the journaling
// concession in the package comment, it also makes the file's own
// directory entry durable.
func (h *errFile) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.checkLocked(); err != nil {
		return err
	}
	if err := h.fs.injectLocked(OpSync, h.name); err != nil {
		return fmt.Errorf("errfs: sync %s: %w", h.name, err)
	}
	h.ino.synced = append([]byte(nil), h.ino.data...)
	if h.fs.cur[h.name] == h.ino {
		h.fs.dur[h.name] = h.ino
	}
	return nil
}

func (h *errFile) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.checkLocked(); err != nil {
		return err
	}
	if err := h.fs.injectLocked(OpTruncate, h.name); err != nil {
		return fmt.Errorf("errfs: truncate %s: %w", h.name, err)
	}
	if size < 0 {
		return fmt.Errorf("errfs: truncate %s: negative size", h.name)
	}
	if int64(len(h.ino.data)) > size {
		h.ino.data = h.ino.data[:size]
	} else {
		h.ino.data = append(h.ino.data, make([]byte, size-int64(len(h.ino.data)))...)
	}
	h.ino.mtime = time.Now()
	return nil
}

func (h *errFile) Stat() (fs.FileInfo, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.checkLocked(); err != nil {
		return nil, err
	}
	return memFileInfo{name: filepath.Base(h.name), size: int64(len(h.ino.data)), mtime: h.ino.mtime}, nil
}

func (h *errFile) Name() string { return h.name }

func (h *errFile) Lock() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.checkLocked(); err != nil {
		return err
	}
	if h.ino.locked {
		return fmt.Errorf("errfs: %s: already locked", h.name)
	}
	h.ino.locked = true
	return nil
}

func (h *errFile) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.closed = true
	if h.gen == h.fs.gen {
		h.ino.locked = false
	}
	return nil
}

// memFileInfo implements fs.FileInfo for ErrFS entries.
type memFileInfo struct {
	name  string
	size  int64
	mtime time.Time
	dir   bool
}

func (i memFileInfo) Name() string { return i.name }
func (i memFileInfo) Size() int64  { return i.size }
func (i memFileInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i memFileInfo) ModTime() time.Time { return i.mtime }
func (i memFileInfo) IsDir() bool        { return i.dir }
func (i memFileInfo) Sys() any           { return nil }
