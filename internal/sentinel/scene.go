// Package sentinel simulates the Copernicus data substrate: Sentinel-1
// (SAR) and Sentinel-2 (multispectral) products, synthetic scene
// generation with class-conditional statistics, and an archive with
// ingestion/dissemination accounting that reproduces the paper's 5V
// figures (experiments E3 and E15).
//
// Substitution note (DESIGN.md): real Sentinel archives are petabytes
// behind ESA infrastructure. The generator produces procedural scenes
// whose per-class band statistics give learnable structure, exercising
// the same ingestion, classification and information-extraction code
// paths as real data would.
package sentinel

import (
	"math"
	"math/rand"

	"repro/internal/raster"
)

// Land-cover classes mirroring the ten EuroSAT classes [11].
const (
	ClassAnnualCrop uint8 = iota
	ClassForest
	ClassHerbVegetation
	ClassHighway
	ClassIndustrial
	ClassPasture
	ClassPermanentCrop
	ClassResidential
	ClassRiver
	ClassSeaLake
	NumLandCoverClasses = 10
)

// LandCoverName returns the EuroSAT-style class name.
func LandCoverName(c uint8) string {
	names := [...]string{
		"AnnualCrop", "Forest", "HerbaceousVegetation", "Highway",
		"Industrial", "Pasture", "PermanentCrop", "Residential",
		"River", "SeaLake",
	}
	if int(c) < len(names) {
		return names[c]
	}
	return "Unknown"
}

// S2Bands are the 13 Sentinel-2 MSI spectral bands.
var S2Bands = []string{
	"B01", "B02", "B03", "B04", "B05", "B06", "B07",
	"B08", "B8A", "B09", "B10", "B11", "B12",
}

// s2Spectra holds mean top-of-atmosphere reflectance per class per band.
// The values are stylized but structured: vegetation classes have the
// red-edge/NIR rise (bands B05-B8A), water classes absorb NIR/SWIR,
// built-up classes are spectrally flat and bright, so classifiers must
// exploit the same band relationships as on real imagery.
var s2Spectra = [NumLandCoverClasses][13]float32{
	ClassAnnualCrop:     {0.12, 0.10, 0.09, 0.08, 0.15, 0.30, 0.35, 0.38, 0.40, 0.18, 0.05, 0.22, 0.15},
	ClassForest:         {0.08, 0.06, 0.05, 0.04, 0.10, 0.25, 0.32, 0.35, 0.37, 0.15, 0.03, 0.15, 0.08},
	ClassHerbVegetation: {0.10, 0.09, 0.08, 0.07, 0.13, 0.26, 0.30, 0.32, 0.34, 0.16, 0.04, 0.20, 0.12},
	ClassHighway:        {0.18, 0.17, 0.16, 0.16, 0.17, 0.18, 0.19, 0.20, 0.20, 0.15, 0.06, 0.22, 0.20},
	ClassIndustrial:     {0.25, 0.24, 0.23, 0.23, 0.24, 0.25, 0.26, 0.27, 0.27, 0.20, 0.08, 0.28, 0.26},
	ClassPasture:        {0.11, 0.10, 0.10, 0.09, 0.14, 0.24, 0.27, 0.28, 0.30, 0.15, 0.04, 0.21, 0.13},
	ClassPermanentCrop:  {0.11, 0.09, 0.08, 0.07, 0.13, 0.27, 0.31, 0.33, 0.35, 0.16, 0.04, 0.19, 0.11},
	ClassResidential:    {0.21, 0.20, 0.19, 0.19, 0.20, 0.22, 0.23, 0.24, 0.24, 0.17, 0.07, 0.25, 0.23},
	ClassRiver:          {0.10, 0.09, 0.08, 0.06, 0.06, 0.05, 0.04, 0.03, 0.03, 0.02, 0.01, 0.02, 0.01},
	ClassSeaLake:        {0.09, 0.08, 0.07, 0.05, 0.04, 0.03, 0.02, 0.02, 0.02, 0.01, 0.01, 0.01, 0.01},
}

// s2Noise is the per-class within-class standard deviation; classes with
// heterogeneous texture (residential, industrial) are noisier, making
// them genuinely harder to separate.
var s2Noise = [NumLandCoverClasses]float32{
	0.02, 0.015, 0.02, 0.03, 0.04, 0.02, 0.02, 0.045, 0.015, 0.01,
}

// GenerateLandCover produces a patchy class map: k Voronoi seeds with
// random classes, each cell labelled by its nearest seed. The patch
// structure mimics agricultural parcels and land-cover regions.
func GenerateLandCover(grid raster.Grid, numPatches int, seed int64) *raster.ClassMap {
	rng := rand.New(rand.NewSource(seed))
	if numPatches < 1 {
		numPatches = 1
	}
	type site struct {
		x, y  float64
		class uint8
	}
	sites := make([]site, numPatches)
	for i := range sites {
		sites[i] = site{
			x:     rng.Float64() * float64(grid.Width),
			y:     rng.Float64() * float64(grid.Height),
			class: uint8(rng.Intn(NumLandCoverClasses)),
		}
	}
	cm := raster.NewClassMap(grid)
	for row := 0; row < grid.Height; row++ {
		for col := 0; col < grid.Width; col++ {
			best := 0
			bestD := math.Inf(1)
			for i, s := range sites {
				dx, dy := float64(col)-s.x, float64(row)-s.y
				d := dx*dx + dy*dy
				if d < bestD {
					best, bestD = i, d
				}
			}
			cm.Set(col, row, sites[best].class)
		}
	}
	return cm
}

// GenerateS2Scene renders a 13-band Sentinel-2 style image from a class
// map: per-pixel reflectance is the class mean plus Gaussian noise.
func GenerateS2Scene(cm *raster.ClassMap, seed int64) *raster.Image {
	rng := rand.New(rand.NewSource(seed))
	img := raster.NewImage(cm.Grid, S2Bands...)
	w := cm.Grid.Width
	for row := 0; row < cm.Grid.Height; row++ {
		for col := 0; col < w; col++ {
			class := cm.At(col, row)
			sigma := s2Noise[class]
			for b := 0; b < 13; b++ {
				v := s2Spectra[class][b] + float32(rng.NormFloat64())*sigma
				if v < 0 {
					v = 0
				}
				img.Set(b, col, row, v)
			}
		}
	}
	return img
}

// SampleS2Pixel draws one 13-band reflectance vector for the class (the
// per-pixel generative model of GenerateS2Scene), used by the training
// dataset builders to synthesize samples without rendering full scenes.
func SampleS2Pixel(class uint8, rng *rand.Rand) []float32 {
	out := make([]float32, 13)
	sigma := s2Noise[class]
	for b := 0; b < 13; b++ {
		v := s2Spectra[class][b] + float32(rng.NormFloat64())*sigma
		if v < 0 {
			v = 0
		}
		out[b] = v
	}
	return out
}

// SampleS1Pixel draws one dual-pol backscatter vector for the ice class
// with L-look speckle.
func SampleS1Pixel(class uint8, looks int, rng *rand.Rand) []float32 {
	if looks < 1 {
		looks = 1
	}
	out := make([]float32, 2)
	for p := 0; p < 2; p++ {
		speckle := gammaSample(rng, float64(looks)) / float64(looks)
		out[p] = s1Backscatter[class][p] * float32(speckle)
	}
	return out
}

// Sea-ice classes following the WMO stage-of-development nomenclature
// (the A2 application's target legend).
const (
	IceOpenWater uint8 = iota
	IceNew
	IceYoung
	IceFirstYear
	IceMultiYear
	IceBerg
	NumIceClasses = 6
)

// IceClassName returns the WMO-style name of an ice class.
func IceClassName(c uint8) string {
	names := [...]string{
		"OpenWater", "NewIce", "YoungIce", "FirstYearIce", "MultiYearIce", "Iceberg",
	}
	if int(c) < len(names) {
		return names[c]
	}
	return "Unknown"
}

// S1Bands are the two Sentinel-1 IW GRD polarizations.
var S1Bands = []string{"HH", "HV"}

// s1Backscatter holds mean backscatter intensity (linear scale) per ice
// class per polarization: open water is dark in HV, multi-year ice and
// icebergs are bright due to volume scattering.
var s1Backscatter = [NumIceClasses][2]float32{
	IceOpenWater: {0.05, 0.005},
	IceNew:       {0.10, 0.02},
	IceYoung:     {0.18, 0.05},
	IceFirstYear: {0.28, 0.10},
	IceMultiYear: {0.45, 0.22},
	IceBerg:      {0.70, 0.40},
}

// GenerateIceChart produces a synthetic sea-ice situation: open water
// background, patchy ice of increasing age toward one side (an ice edge),
// plus nBergs small iceberg blobs. It returns the ground-truth map.
func GenerateIceChart(grid raster.Grid, nBergs int, seed int64) *raster.ClassMap {
	rng := rand.New(rand.NewSource(seed))
	cm := raster.NewClassMap(grid)
	// Ice concentration gradient: the top of the grid is ice-covered,
	// the bottom open water, with a noisy edge.
	for row := 0; row < grid.Height; row++ {
		frac := float64(row) / float64(grid.Height)
		for col := 0; col < grid.Width; col++ {
			noise := rng.NormFloat64() * 0.08
			v := frac + noise
			switch {
			case v < 0.35:
				cm.Set(col, row, IceOpenWater)
			case v < 0.5:
				cm.Set(col, row, IceNew)
			case v < 0.65:
				cm.Set(col, row, IceYoung)
			case v < 0.85:
				cm.Set(col, row, IceFirstYear)
			default:
				cm.Set(col, row, IceMultiYear)
			}
		}
	}
	// Icebergs: small square-ish blobs placed anywhere (clipped to the
	// grid for tiny charts).
	for b := 0; b < nBergs; b++ {
		size := 1 + rng.Intn(3)
		col := rng.Intn(maxInt(1, grid.Width-size))
		row := rng.Intn(maxInt(1, grid.Height-size))
		for dr := 0; dr < size && row+dr < grid.Height; dr++ {
			for dc := 0; dc < size && col+dc < grid.Width; dc++ {
				cm.Set(col+dc, row+dr, IceBerg)
			}
		}
	}
	return cm
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// GenerateS1Scene renders a dual-pol SAR image from an ice chart with
// multiplicative speckle: intensity = classMean * gamma(L)/L with L
// equivalent looks, the standard SAR statistics model.
func GenerateS1Scene(cm *raster.ClassMap, looks int, seed int64) *raster.Image {
	if looks < 1 {
		looks = 1
	}
	rng := rand.New(rand.NewSource(seed))
	img := raster.NewImage(cm.Grid, S1Bands...)
	w := cm.Grid.Width
	for row := 0; row < cm.Grid.Height; row++ {
		for col := 0; col < w; col++ {
			class := cm.At(col, row)
			for p := 0; p < 2; p++ {
				speckle := gammaSample(rng, float64(looks)) / float64(looks)
				img.Set(p, col, row, s1Backscatter[class][p]*float32(speckle))
			}
		}
	}
	return img
}

// gammaSample draws from Gamma(shape=k, scale=1) using the
// Marsaglia-Tsang method (k >= 1 for multi-look speckle).
func gammaSample(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		// boost: Gamma(k) = Gamma(k+1) * U^(1/k)
		u := rng.Float64()
		return gammaSample(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// IceConcentration computes the ice fraction (non-open-water classes)
// over the whole chart, the headline sea-ice product metric.
func IceConcentration(cm *raster.ClassMap) float64 {
	if len(cm.Classes) == 0 {
		return 0
	}
	ice := 0
	for _, c := range cm.Classes {
		if c != IceOpenWater {
			ice++
		}
	}
	return float64(ice) / float64(len(cm.Classes))
}
