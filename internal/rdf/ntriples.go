package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadNTriples parses a stream of N-Triples lines (the serialization
// Term.String/Triple.String produce and GeoTriples exports). Comment
// lines (#...) and blank lines are skipped. It returns the parsed triples
// and the number of lines read.
func ReadNTriples(r io.Reader) ([]Triple, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Triple
	lines := 0
	for sc.Scan() {
		lines++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseNTripleLine(line)
		if err != nil {
			return nil, lines, fmt.Errorf("rdf: line %d: %w", lines, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, lines, fmt.Errorf("rdf: reading N-Triples: %w", err)
	}
	return out, lines, nil
}

// parseNTripleLine parses one "S P O ." statement.
func parseNTripleLine(line string) (Triple, error) {
	if !strings.HasSuffix(line, ".") {
		return Triple{}, fmt.Errorf("missing terminating '.'")
	}
	body := strings.TrimSpace(line[:len(line)-1])

	s, rest, err := takeTerm(body)
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	p, rest, err := takeTerm(rest)
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	o, rest, err := takeTerm(rest)
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	if strings.TrimSpace(rest) != "" {
		return Triple{}, fmt.Errorf("trailing content %q", rest)
	}
	return Triple{S: s, P: p, O: o}, nil
}

// takeTerm consumes one term from the front of s, returning it and the
// remainder.
func takeTerm(s string) (Term, string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Term{}, "", fmt.Errorf("unexpected end of statement")
	}
	switch s[0] {
	case '<':
		end := strings.IndexByte(s, '>')
		if end < 0 {
			return Term{}, "", fmt.Errorf("unterminated IRI")
		}
		return NewIRI(s[1:end]), s[end+1:], nil
	case '_':
		if !strings.HasPrefix(s, "_:") {
			return Term{}, "", fmt.Errorf("bad blank node")
		}
		end := 2
		for end < len(s) && s[end] != ' ' && s[end] != '\t' {
			end++
		}
		return NewBlank(s[2:end]), s[end:], nil
	case '"':
		// find the closing quote, honouring backslash escapes
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return Term{}, "", fmt.Errorf("unterminated literal")
		}
		// delimit the full literal including any @lang or ^^<dt> suffix
		rest := s[end+1:]
		suffixEnd := 0
		if strings.HasPrefix(rest, "@") {
			for suffixEnd < len(rest) && rest[suffixEnd] != ' ' && rest[suffixEnd] != '\t' {
				suffixEnd++
			}
		} else if strings.HasPrefix(rest, "^^<") {
			close := strings.IndexByte(rest, '>')
			if close < 0 {
				return Term{}, "", fmt.Errorf("unterminated datatype IRI")
			}
			suffixEnd = close + 1
		}
		t, err := ParseTerm(s[:end+1] + rest[:suffixEnd])
		if err != nil {
			return Term{}, "", err
		}
		return t, rest[suffixEnd:], nil
	default:
		return Term{}, "", fmt.Errorf("cannot parse term starting at %q", truncateStr(s, 20))
	}
}

func truncateStr(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// LoadNTriples reads N-Triples from r straight into the store, returning
// the number of triples added.
func (s *Store) LoadNTriples(r io.Reader) (int, error) {
	triples, _, err := ReadNTriples(r)
	if err != nil {
		return 0, err
	}
	for _, t := range triples {
		s.AddTriple(t)
	}
	return len(triples), nil
}
