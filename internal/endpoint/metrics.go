package endpoint

import (
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the query latency
// histogram, chosen to straddle in-memory query times through slow
// analytic queries.
var latencyBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

// metrics aggregates the endpoint's operational counters. All fields are
// manipulated atomically; the zero value is ready to use.
type metrics struct {
	queries     atomic.Uint64 // completed queries (any outcome)
	errors      atomic.Uint64 // parse, evaluation, or serialize failures
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	rejected    atomic.Uint64 // admission-control 503s
	timeouts    atomic.Uint64 // per-query deadline expirations

	// Per-kind breakdown of errors; timeouts above is the fourth kind.
	errParse     atomic.Uint64
	errEval      atomic.Uint64
	errSerialize atomic.Uint64

	slowQueries atomic.Uint64 // queries captured by the slow-query ring
	execRows    atomic.Uint64 // result rows produced by evaluations
	filterDrops atomic.Uint64 // rows dropped by pushed filters (profiled runs)

	loads         atomic.Uint64 // successful POST /load requests
	loadErrors    atomic.Uint64 // failed POST /load requests
	loadedTriples atomic.Uint64 // triples read by POST /load (incl. partial loads)

	bucketCounts [11]atomic.Uint64 // len(latencyBuckets)+1, last = +Inf
	latencySumNs atomic.Uint64
}

// errKind labels the per-kind error counters.
type errKind int

const (
	errKindParse errKind = iota
	errKindEval
	errKindSerialize
)

// countError bumps the unlabeled error total plus the matching kind
// counter, so sparql_query_errors_total stays the sum dashboards built
// on the unlabeled series expect.
func (m *metrics) countError(k errKind) {
	m.errors.Add(1)
	switch k {
	case errKindParse:
		m.errParse.Add(1)
	case errKindEval:
		m.errEval.Add(1)
	case errKindSerialize:
		m.errSerialize.Add(1)
	}
}

// observe records one query latency in the histogram.
func (m *metrics) observe(d time.Duration) {
	m.latencySumNs.Add(uint64(d.Nanoseconds()))
	sec := d.Seconds()
	for i, ub := range latencyBuckets {
		if sec <= ub {
			m.bucketCounts[i].Add(1)
			return
		}
	}
	m.bucketCounts[len(latencyBuckets)].Add(1)
}

// CacheHits returns the number of queries answered from the result cache.
func (s *Server) CacheHits() uint64 { return s.metrics.cacheHits.Load() }

// PlanCacheStatser is the optional engine capability behind the plan
// cache metrics: engines that compile and cache slot-based query plans
// (geostore single-node and partitioned stores) report their counters.
type PlanCacheStatser interface {
	PlanCacheStats() (hits, misses uint64)
}

// SpatialJoinStatser is the optional engine capability behind the
// spatial-join metric: engines that answer variable-variable spatial
// predicates with R-tree index joins report how many probes they issued.
type SpatialJoinStatser interface {
	SpatialJoinStats() (probes uint64)
}

// ExecStatser is the optional engine capability behind the parallel
// executor metric: engines running morsel-driven execution report how
// many morsels they dispatched (sparql_exec_morsels_total).
type ExecStatser interface {
	ExecStats() (morsels uint64)
}

// handleMetrics serves the counters in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := &s.metrics
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeCounter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	writeCounter("sparql_queries_total", "Completed SPARQL protocol requests.", m.queries.Load())
	// One family, five samples: the unlabeled total (kept for dashboards
	// predating the split) plus the per-kind breakdown. The timeout kind
	// mirrors sparql_timeouts_total.
	fmt.Fprintf(w, "# HELP sparql_query_errors_total Requests that failed to parse, evaluate, or serialize.\n# TYPE sparql_query_errors_total counter\n")
	fmt.Fprintf(w, "sparql_query_errors_total %d\n", m.errors.Load())
	fmt.Fprintf(w, "sparql_query_errors_total{kind=\"parse\"} %d\n", m.errParse.Load())
	fmt.Fprintf(w, "sparql_query_errors_total{kind=\"eval\"} %d\n", m.errEval.Load())
	fmt.Fprintf(w, "sparql_query_errors_total{kind=\"serialize\"} %d\n", m.errSerialize.Load())
	fmt.Fprintf(w, "sparql_query_errors_total{kind=\"timeout\"} %d\n", m.timeouts.Load())
	writeCounter("sparql_cache_hits_total", "Requests served from the result cache.", m.cacheHits.Load())
	writeCounter("sparql_cache_misses_total", "Requests that missed the result cache.", m.cacheMisses.Load())
	writeCounter("sparql_rejected_total", "Requests rejected by admission control.", m.rejected.Load())
	writeCounter("sparql_timeouts_total", "Requests cancelled by the per-query timeout.", m.timeouts.Load())
	writeCounter("sparql_loads_total", "Successful POST /load ingestions.", m.loads.Load())
	writeCounter("sparql_load_errors_total", "Failed POST /load ingestions.", m.loadErrors.Load())
	writeCounter("sparql_loaded_triples_total", "Triples read by POST /load.", m.loadedTriples.Load())
	writeCounter("sparql_slow_queries_total", "Queries captured by the slow-query ring.", m.slowQueries.Load())
	writeCounter("sparql_exec_rows_total", "Result rows produced by query evaluations.", m.execRows.Load())
	writeCounter("sparql_filter_drops_total", "Rows dropped by pushed filters in profiled evaluations.", m.filterDrops.Load())
	if pc, ok := s.engine.(PlanCacheStatser); ok {
		hits, misses := pc.PlanCacheStats()
		writeCounter("sparql_plan_cache_hits_total", "Queries evaluated with a cached compiled plan.", hits)
		writeCounter("sparql_plan_cache_misses_total", "Queries that compiled a fresh plan.", misses)
	}
	if sj, ok := s.engine.(SpatialJoinStatser); ok {
		writeCounter("sparql_spatial_join_probes_total", "R-tree probes issued by index spatial joins.", sj.SpatialJoinStats())
	}
	if es, ok := s.engine.(ExecStatser); ok {
		writeCounter("sparql_exec_morsels_total", "Morsels dispatched by the parallel query executor.", es.ExecStats())
	}
	if s.cfg.Workers != nil {
		fmt.Fprintf(w, "# HELP sparql_exec_workers_busy Executor worker slots currently in use.\n# TYPE sparql_exec_workers_busy gauge\nsparql_exec_workers_busy %d\n", s.cfg.Workers.Busy())
	}
	fmt.Fprintf(w, "# HELP sparql_cache_entries Live result cache entries.\n# TYPE sparql_cache_entries gauge\nsparql_cache_entries %d\n", s.cache.len())

	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	fmt.Fprintf(w, "# HELP sparql_build_info Build metadata; the value is always 1.\n# TYPE sparql_build_info gauge\nsparql_build_info{go_version=%q,version=%q} 1\n",
		runtime.Version(), version)
	fmt.Fprintf(w, "# HELP sparql_uptime_seconds Seconds since the server started.\n# TYPE sparql_uptime_seconds gauge\nsparql_uptime_seconds %g\n",
		time.Since(s.started).Seconds())
	fmt.Fprintf(w, "# HELP sparql_goroutines Current goroutine count.\n# TYPE sparql_goroutines gauge\nsparql_goroutines %d\n", runtime.NumGoroutine())
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP sparql_heap_bytes Bytes of allocated heap objects.\n# TYPE sparql_heap_bytes gauge\nsparql_heap_bytes %d\n", ms.HeapAlloc)

	fmt.Fprintf(w, "# HELP sparql_query_duration_seconds Query latency histogram.\n# TYPE sparql_query_duration_seconds histogram\n")
	cum := uint64(0)
	for i, ub := range latencyBuckets {
		cum += m.bucketCounts[i].Load()
		fmt.Fprintf(w, "sparql_query_duration_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.bucketCounts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "sparql_query_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "sparql_query_duration_seconds_sum %g\n", float64(m.latencySumNs.Load())/1e9)
	fmt.Fprintf(w, "sparql_query_duration_seconds_count %d\n", cum)
}

// handleHealthz reports liveness plus basic store facts, so load balancers
// and Sextant deployments can gate traffic on it. When admission control
// is saturated it answers 503 "overloaded", letting balancers drain
// traffic away before requests start bouncing off the semaphore.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	status := "ok"
	if cap(s.sem) > 0 && len(s.sem) >= cap(s.sem) {
		status = "overloaded"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintf(w, "{\"status\":%q,\"triples\":%d,\"store_version\":%d}\n",
		status, s.engine.Len(), s.engine.Version())
}
