// Package telemetry is the dependency-free metrics registry shared by
// the serving layer and the storage engine: atomic counters, gauges and
// (optionally labeled) histograms registered into a Registry that
// renders the Prometheus text exposition format and a structured
// Snapshot for JSON introspection endpoints.
//
// Design constraints, in order:
//
//  1. Hot-path cost. A Counter is one atomic add; a Histogram
//     observation is one atomic add plus a short bounds scan. Nothing
//     on the update path takes a lock, formats a string, or allocates.
//     Code paths that may run without telemetry hold a nil *Counter or
//     nil *Metrics and pay exactly one pointer test.
//  2. Exposition stability. Rendering is deterministic: families print
//     in registration order, samples in creation order, and the line
//     formats byte-match what the endpoint's hand-rolled exposition
//     used to produce (integers via strconv.FormatUint, floats via the
//     %g spelling, histogram buckets cumulative with le inclusive and
//     a final +Inf).
//  3. No dependencies. Scrape-time derived values (runtime gauges,
//     store memory walks) plug in as read callbacks or registry-level
//     prepare hooks, so the registry itself imports only the standard
//     library.
package telemetry

import (
	"fmt"
	"io"
	"regexp"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; NewCounter exists for detached counters that are attached to
// one or more families later (e.g. a counter exposed both as its own
// family and as a labeled sample of another).
type Counter struct{ v atomic.Uint64 }

// NewCounter returns a counter not yet attached to any family.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable int64.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram counts observations into cumulative-on-render buckets.
// Create via the Registry (DurationHistogram/ValueHistogram or a
// HistogramFamily); the two flavours differ only in how the sum is
// accumulated and exposed:
//
//   - duration histograms bucket by seconds, accumulate the sum in
//     integer nanoseconds (exact — no float rounding under concurrent
//     adds) and expose it divided by 1e9;
//   - value histograms bucket and sum the observed integer directly.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last = +Inf
	sum     atomic.Uint64   // raw units: ns for durations, the value itself otherwise
	perUnit float64         // raw units per exposed unit (1e9 or 1)
}

func newHistogram(bounds []float64, perUnit float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not strictly increasing at %g", bounds[i]))
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		counts:  make([]atomic.Uint64, len(bounds)+1),
		perUnit: perUnit,
	}
}

// ObserveDuration records one duration sample. Only meaningful on
// histograms created with second-valued bounds (DurationHistogram).
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.sum.Add(uint64(d.Nanoseconds()))
	h.bucket(d.Seconds())
}

// ObserveValue records one integer sample (ValueHistogram flavour).
func (h *Histogram) ObserveValue(v uint64) {
	h.sum.Add(v)
	h.bucket(float64(v))
}

func (h *Histogram) bucket(v float64) {
	for i, ub := range h.bounds {
		if v <= ub { // le is inclusive, the Prometheus convention
			h.counts[i].Add(1)
			return
		}
	}
	h.counts[len(h.bounds)].Add(1)
}

// BucketCounts returns the per-bucket (non-cumulative) counts, the last
// entry being the +Inf bucket. For tests.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Sum returns the observation sum in exposed units (seconds for
// duration histograms).
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) / h.perUnit }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// value is one rendered sample: the exact exposition text plus the
// float64 for Snapshot consumers.
type value struct {
	text string
	f    float64
}

func uintValue(v uint64) value { return value{strconv.FormatUint(v, 10), float64(v)} }
func intValue(v int64) value   { return value{strconv.FormatInt(v, 10), float64(v)} }
func floatValue(v float64) value {
	// 'g' with the shortest precision is what fmt's %g prints, which is
	// what the pre-registry exposition used.
	return value{strconv.FormatFloat(v, 'g', -1, 64), v}
}

// sample is one counter/gauge time series within a family.
type sample struct {
	labels string // rendered label set incl. braces, or ""
	read   func() value
}

// histSample is one histogram series within a family.
type histSample struct {
	inner string // rendered label pairs without braces, or ""
	h     *Histogram
}

type family struct {
	name, help, kind string
	samples          []sample
	hists            []histSample
}

// Registry holds registered metric families. Registration happens at
// startup (methods panic on invalid or duplicate names — programming
// errors, like the prometheus client's MustRegister); updates and
// rendering are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	prepare  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

func (r *Registry) newFamily(name, help, kind string) *family {
	if !metricNameRe.MatchString(name) {
		panic("telemetry: invalid metric name " + name)
	}
	if help == "" {
		panic("telemetry: metric " + name + " needs help text")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("telemetry: duplicate metric " + name)
	}
	f := &family{name: name, help: help, kind: kind}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// AddPrepare registers a hook run once per WritePrometheus/Snapshot
// call, before any sample is read. Use it to refresh derived values
// that are too expensive to recompute per-gauge (e.g. one store memory
// walk feeding several gauges).
func (r *Registry) AddPrepare(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prepare = append(r.prepare, fn)
}

// renderLabels turns alternating key, value strings into
// `key="value",...` (no braces). Values are %q-escaped.
func renderLabels(labels []string) string {
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be alternating key, value pairs")
	}
	out := ""
	for i := 0; i < len(labels); i += 2 {
		if !labelNameRe.MatchString(labels[i]) {
			panic("telemetry: invalid label name " + labels[i])
		}
		if i > 0 {
			out += ","
		}
		out += labels[i] + "=" + strconv.Quote(labels[i+1])
	}
	return out
}

func braced(inner string) string {
	if inner == "" {
		return ""
	}
	return "{" + inner + "}"
}

// Counter registers a single-series counter family and returns its
// counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := NewCounter()
	f := r.newFamily(name, help, "counter")
	f.samples = append(f.samples, sample{read: func() value { return uintValue(c.Load()) }})
	return c
}

// CounterFunc registers a single-series counter family whose value is
// read from fn at render time (for counters owned elsewhere, e.g. an
// engine's atomic).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	f := r.newFamily(name, help, "counter")
	f.samples = append(f.samples, sample{read: func() value { return uintValue(fn()) }})
}

// CounterFamily is a counter family that carries labeled (and
// optionally one unlabeled) series.
type CounterFamily struct{ f *family }

// CounterFamily registers an empty labeled counter family.
func (r *Registry) CounterFamily(name, help string) *CounterFamily {
	return &CounterFamily{f: r.newFamily(name, help, "counter")}
}

// Counter adds a series with the given label pairs and returns its
// counter.
func (cf *CounterFamily) Counter(labels ...string) *Counter {
	c := NewCounter()
	cf.Attach(c, labels...)
	return c
}

// Attach adds a series backed by an existing counter. The same counter
// may back series in several families (e.g. a timeout counter exposed
// both as its own family and as the kind="timeout" series of the error
// family).
func (cf *CounterFamily) Attach(c *Counter, labels ...string) {
	cf.f.samples = append(cf.f.samples, sample{
		labels: braced(renderLabels(labels)),
		read:   func() value { return uintValue(c.Load()) },
	})
}

// AttachFunc adds a series read from fn at render time.
func (cf *CounterFamily) AttachFunc(fn func() uint64, labels ...string) {
	cf.f.samples = append(cf.f.samples, sample{
		labels: braced(renderLabels(labels)),
		read:   func() value { return uintValue(fn()) },
	})
}

// Gauge registers a single-series int gauge family and returns its
// gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	f := r.newFamily(name, help, "gauge")
	f.samples = append(f.samples, sample{read: func() value { return intValue(g.Load()) }})
	return g
}

// GaugeFunc registers a float gauge read from fn at render time,
// printed in %g notation (uptime-style values).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.newFamily(name, help, "gauge")
	f.samples = append(f.samples, sample{read: func() value { return floatValue(fn()) }})
}

// IntGaugeFunc registers an integer gauge read from fn at render time,
// printed as a plain integer (%g would flip large byte counts into
// exponent notation).
func (r *Registry) IntGaugeFunc(name, help string, fn func() int64) {
	f := r.newFamily(name, help, "gauge")
	f.samples = append(f.samples, sample{read: func() value { return intValue(fn()) }})
}

// GaugeFamily is a gauge family carrying labeled series.
type GaugeFamily struct{ f *family }

// GaugeFamily registers an empty labeled gauge family.
func (r *Registry) GaugeFamily(name, help string) *GaugeFamily {
	return &GaugeFamily{f: r.newFamily(name, help, "gauge")}
}

// Const adds a series pinned to a constant value (build_info-style).
func (gf *GaugeFamily) Const(v int64, labels ...string) {
	val := intValue(v)
	gf.f.samples = append(gf.f.samples, sample{
		labels: braced(renderLabels(labels)),
		read:   func() value { return val },
	})
}

// IntFunc adds an integer series read from fn at render time.
func (gf *GaugeFamily) IntFunc(fn func() int64, labels ...string) {
	gf.f.samples = append(gf.f.samples, sample{
		labels: braced(renderLabels(labels)),
		read:   func() value { return intValue(fn()) },
	})
}

// DurationHistogram registers a single-series histogram over
// second-valued bucket bounds; feed it with ObserveDuration.
func (r *Registry) DurationHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds, 1e9)
	f := r.newFamily(name, help, "histogram")
	f.hists = append(f.hists, histSample{h: h})
	return h
}

// ValueHistogram registers a single-series histogram over plain integer
// observations (batch sizes, byte counts); feed it with ObserveValue.
func (r *Registry) ValueHistogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds, 1)
	f := r.newFamily(name, help, "histogram")
	f.hists = append(f.hists, histSample{h: h})
	return h
}

// HistogramFamily is a histogram family carrying labeled series.
type HistogramFamily struct {
	f       *family
	bounds  []float64
	perUnit float64
}

// DurationHistogramFamily registers an empty labeled duration-histogram
// family; all series share the bucket bounds.
func (r *Registry) DurationHistogramFamily(name, help string, bounds []float64) *HistogramFamily {
	return &HistogramFamily{f: r.newFamily(name, help, "histogram"), bounds: bounds, perUnit: 1e9}
}

// Histogram adds a series with the given label pairs.
func (hf *HistogramFamily) Histogram(labels ...string) *Histogram {
	h := newHistogram(hf.bounds, hf.perUnit)
	hf.f.hists = append(hf.f.hists, histSample{inner: renderLabels(labels), h: h})
	return h
}

// WritePrometheus renders every family in registration order in the
// Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, f := range r.snapshotFamilies() {
		f.write(w)
	}
}

// snapshotFamilies runs the prepare hooks and returns a stable view of
// the family list.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	prepare := append(make([]func(), 0, len(r.prepare)), r.prepare...)
	r.mu.Unlock()
	for _, fn := range prepare {
		fn()
	}
	return fams
}

func (f *family) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
	for _, s := range f.samples {
		fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, s.read().text)
	}
	for _, hs := range f.hists {
		prefix := hs.inner
		if prefix != "" {
			prefix += ","
		}
		cum := uint64(0)
		for i, ub := range hs.h.bounds {
			cum += hs.h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket{%sle=\"%s\"} %d\n", f.name, prefix, strconv.FormatFloat(ub, 'g', -1, 64), cum)
		}
		cum += hs.h.counts[len(hs.h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", f.name, prefix, cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braced(hs.inner), floatValue(hs.h.Sum()).text)
		fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced(hs.inner), cum)
	}
}

// Snapshot is a structured point-in-time read of the registry, for JSON
// introspection endpoints and tests.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one metric family's snapshot.
type FamilySnapshot struct {
	Name   string   `json:"name"`
	Kind   string   `json:"kind"`
	Help   string   `json:"help"`
	Series []Series `json:"series"`
}

// Series is one sample: the rendered label set (empty for unlabeled)
// and the value. Histogram families expand into their cumulative
// bucket, sum and count series, mirroring the text exposition.
type Series struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Snapshot reads every family. Values observed concurrently with
// updates are each individually consistent (atomic loads), like a
// scrape.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for _, f := range r.snapshotFamilies() {
		fs := FamilySnapshot{Name: f.name, Kind: f.kind, Help: f.help}
		for _, s := range f.samples {
			fs.Series = append(fs.Series, Series{Name: f.name, Labels: s.labels, Value: s.read().f})
		}
		for _, hs := range f.hists {
			prefix := hs.inner
			if prefix != "" {
				prefix += ","
			}
			cum := uint64(0)
			for i, ub := range hs.h.bounds {
				cum += hs.h.counts[i].Load()
				fs.Series = append(fs.Series, Series{
					Name:   f.name + "_bucket",
					Labels: "{" + prefix + `le="` + strconv.FormatFloat(ub, 'g', -1, 64) + `"}`,
					Value:  float64(cum),
				})
			}
			cum += hs.h.counts[len(hs.h.bounds)].Load()
			fs.Series = append(fs.Series,
				Series{Name: f.name + "_bucket", Labels: "{" + prefix + `le="+Inf"}`, Value: float64(cum)},
				Series{Name: f.name + "_sum", Labels: braced(hs.inner), Value: hs.h.Sum()},
				Series{Name: f.name + "_count", Labels: braced(hs.inner), Value: float64(cum)})
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}
