// Package seaice implements the Polar application (A2): sea-ice mapping
// from SAR imagery. A classifier (trained per Challenge C1 on sea-ice
// backscatter samples, or the built-in maximum-likelihood fallback)
// labels every pixel with a WMO stage-of-development class; the labelled
// map is aggregated to the 1 km product resolution the paper targets,
// with ice concentration, per-stage fractions and iceberg detection
// (experiments E13 and the E10 knowledge layer).
package seaice

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dl"
	"repro/internal/raster"
	"repro/internal/sentinel"
)

// Classifier labels dual-pol SAR pixels with ice classes.
type Classifier interface {
	// ClassifyPixel labels one [HH, HV] backscatter vector.
	ClassifyPixel(x []float32) uint8
}

// NetClassifier adapts a trained dl.Network.
type NetClassifier struct{ Net *dl.Network }

// ClassifyPixel implements Classifier.
func (nc NetClassifier) ClassifyPixel(x []float32) uint8 {
	m := dl.Matrix{Rows: 1, Cols: len(x), Data: x}
	return uint8(nc.Net.Predict(m)[0])
}

// TrainClassifier trains the C1 sea-ice network on synthetic backscatter
// samples and returns it with its held-out accuracy.
func TrainClassifier(samples, looks, epochs int, seed int64) (NetClassifier, float64) {
	ds := seaIceDataset(samples, looks, seed)
	train, test := ds.Split(0.8)
	spec := dl.ModelSpec{Arch: dl.ArchMLP, In: 2, Hidden: 32, Classes: sentinel.NumIceClasses, Seed: seed}
	net, _ := dl.SingleWorker{}.Train(spec, train, dl.TrainConfig{
		Epochs: epochs, BatchSize: 64, LR: 0.2, Momentum: 0.9, Seed: seed,
	})
	return NetClassifier{Net: net}, net.Accuracy(test.X, test.Y)
}

// seaIceDataset mirrors datasets.SeaIceVectors locally to avoid an import
// cycle risk and keep the package self-contained for its tests.
func seaIceDataset(n, looks int, seed int64) *dl.Dataset {
	rng := newRand(seed)
	ds := &dl.Dataset{X: dl.NewMatrix(n, 2), Y: make([]int, n), Classes: sentinel.NumIceClasses}
	for i := 0; i < n; i++ {
		class := uint8(i % sentinel.NumIceClasses)
		copy(ds.X.Row(i), sentinel.SampleS1Pixel(class, looks, rng))
		ds.Y[i] = int(class)
	}
	ds.Shuffle(rng)
	return ds
}

// ClassifyScene labels every pixel of a dual-pol SAR image. A Lee speckle
// filter pass precedes classification (radius 1), matching operational
// ice-charting preprocessing.
func ClassifyScene(img *raster.Image, c Classifier) *raster.ClassMap {
	hh := raster.LeeFilter(img, 0, 1, 0.01)
	hv := raster.LeeFilter(img, 1, 1, 0.005)
	cm := raster.NewClassMap(img.Grid)
	px := make([]float32, 2)
	for i := range cm.Classes {
		px[0] = hh.Data[i]
		px[1] = hv.Data[i]
		cm.Classes[i] = c.ClassifyPixel(px)
	}
	// Majority post-filter suppresses isolated speckle labels (and with
	// them spurious one-pixel "icebergs").
	return raster.ModeFilter(cm, 1)
}

// IceChart is the distributable product: WMO stage-of-development
// fractions at product resolution.
type IceChart struct {
	Map *raster.ClassMap
	// Concentration is the total ice fraction.
	Concentration float64
	// StageFractions maps each WMO class to its areal fraction.
	StageFractions map[uint8]float64
	// Icebergs is the detected iceberg count.
	Icebergs int
}

// MakeChart aggregates a pixel classification to the target product cell
// size (1 km in the paper) by majority vote and derives the chart
// statistics.
func MakeChart(cm *raster.ClassMap, productCellSize float64) (*IceChart, error) {
	if productCellSize < cm.Grid.CellSize {
		return nil, fmt.Errorf("seaice: product cell %v finer than source %v",
			productCellSize, cm.Grid.CellSize)
	}
	factor := int(productCellSize / cm.Grid.CellSize)
	if factor < 1 {
		factor = 1
	}
	outW := (cm.Grid.Width + factor - 1) / factor
	outH := (cm.Grid.Height + factor - 1) / factor
	outGrid := raster.NewGrid(cm.Grid.Origin, productCellSize, outW, outH)
	out := raster.NewClassMap(outGrid)
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			counts := map[uint8]int{}
			for dy := 0; dy < factor; dy++ {
				for dx := 0; dx < factor; dx++ {
					sy, sx := oy*factor+dy, ox*factor+dx
					if sy >= cm.Grid.Height || sx >= cm.Grid.Width {
						continue
					}
					counts[cm.At(sx, sy)]++
				}
			}
			out.Set(ox, oy, majority(counts))
		}
	}

	chart := &IceChart{
		Map:            out,
		Concentration:  sentinel.IceConcentration(out),
		StageFractions: make(map[uint8]float64),
	}
	hist := out.Histogram()
	total := float64(len(out.Classes))
	for class, n := range hist {
		chart.StageFractions[class] = float64(n) / total
	}
	// Icebergs are detected at source resolution (they vanish under
	// majority aggregation, as in real charts where bergs are point
	// features overlaid on the concentration field).
	chart.Icebergs, _ = raster.ConnectedComponents(cm, sentinel.IceBerg)
	return chart, nil
}

func majority(counts map[uint8]int) uint8 {
	type kv struct {
		class uint8
		n     int
	}
	var all []kv
	for c, n := range counts {
		all = append(all, kv{c, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].class < all[j].class
	})
	if len(all) == 0 {
		return 0
	}
	return all[0].class
}

// IcebergLocations returns the centroid cell centre of every detected
// iceberg component, for publication into the semantic catalogue (the
// C4 "icebergs embedded in the barrier" knowledge).
func IcebergLocations(cm *raster.ClassMap) []IcebergObs {
	w, h := cm.Grid.Width, cm.Grid.Height
	visited := make([]bool, len(cm.Classes))
	var out []IcebergObs
	var stack []int
	for start := range cm.Classes {
		if visited[start] || cm.Classes[start] != sentinel.IceBerg {
			continue
		}
		stack = stack[:0]
		stack = append(stack, start)
		visited[start] = true
		var sumX, sumY float64
		size := 0
		for len(stack) > 0 {
			idx := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			row, col := idx/w, idx%w
			ctr := cm.Grid.CellCenter(col, row)
			sumX += ctr.X
			sumY += ctr.Y
			size++
			for _, d := range [4][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}} {
				nr, nc := row+d[0], col+d[1]
				if nr < 0 || nr >= h || nc < 0 || nc >= w {
					continue
				}
				nidx := nr*w + nc
				if !visited[nidx] && cm.Classes[nidx] == sentinel.IceBerg {
					visited[nidx] = true
					stack = append(stack, nidx)
				}
			}
		}
		out = append(out, IcebergObs{
			X: sumX / float64(size), Y: sumY / float64(size), Cells: size,
		})
	}
	return out
}

// IcebergObs is one detected iceberg.
type IcebergObs struct {
	X, Y  float64
	Cells int
}

// newRand returns a seeded PRNG.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
