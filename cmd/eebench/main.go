// Command eebench runs the ExtremeEarth experiment suite (E1–E15 of
// EXPERIMENTS.md) and prints each experiment's result table.
//
// Usage:
//
//	eebench                               # run everything at full scale
//	eebench -quick                        # reduced workloads (~seconds)
//	eebench -exp E4,E11                   # selected experiments only
//	eebench -bench-out BENCH_query.json   # query-executor group + JSON report
//	eebench -bench-group spatial -bench-out BENCH_spatial.json
//	                                      # spatial-join group + JSON report
//	eebench -bench-group parallel -bench-out BENCH_parallel.json
//	                                      # morsel-executor group + JSON report
//	eebench -bench-group analyze -bench-out BENCH_analyze.json
//	                                      # EXPLAIN ANALYZE overhead group
//	eebench -bench-group fault -bench-out BENCH_fault.json
//	                                      # vfs seam overhead group
//	eebench -bench-group repl -bench-out BENCH_repl.json
//	                                      # WAL-shipping replication group
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	quick := flag.Bool("quick", false, "run reduced workloads")
	exp := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	benchOut := flag.String("bench-out", "",
		"run a benchmark group and write its JSON report to this path (e.g. BENCH_query.json)")
	benchGroup := flag.String("bench-group", "query",
		"benchmark group for -bench-out: query (slot executor), spatial (index spatial join), parallel (morsel-driven executor), analyze (EXPLAIN ANALYZE overhead), fault (vfs seam overhead) or repl (WAL-shipping replication)")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick}
	start := time.Now()
	if *benchOut != "" {
		switch *benchGroup {
		case "query":
			table, rep := experiments.QueryBench(cfg)
			table.Fprint(os.Stdout)
			if err := experiments.WriteQueryBenchJSON(*benchOut, rep); err != nil {
				log.Fatalf("eebench: write %s: %v", *benchOut, err)
			}
		case "spatial":
			table, rep := experiments.SpatialJoinBench(cfg)
			table.Fprint(os.Stdout)
			if err := experiments.WriteSpatialBenchJSON(*benchOut, rep); err != nil {
				log.Fatalf("eebench: write %s: %v", *benchOut, err)
			}
		case "parallel":
			table, rep := experiments.ParallelBench(cfg)
			table.Fprint(os.Stdout)
			if err := experiments.WriteParallelBenchJSON(*benchOut, rep); err != nil {
				log.Fatalf("eebench: write %s: %v", *benchOut, err)
			}
		case "analyze":
			table, rep := experiments.AnalyzeBench(cfg)
			table.Fprint(os.Stdout)
			if err := experiments.WriteAnalyzeBenchJSON(*benchOut, rep); err != nil {
				log.Fatalf("eebench: write %s: %v", *benchOut, err)
			}
		case "fault":
			table, rep := experiments.FaultBench(cfg)
			table.Fprint(os.Stdout)
			if err := experiments.WriteFaultBenchJSON(*benchOut, rep); err != nil {
				log.Fatalf("eebench: write %s: %v", *benchOut, err)
			}
		case "repl":
			table, rep := experiments.ReplBench(cfg)
			table.Fprint(os.Stdout)
			if err := experiments.WriteReplBenchJSON(*benchOut, rep); err != nil {
				log.Fatalf("eebench: write %s: %v", *benchOut, err)
			}
		default:
			log.Fatalf("eebench: unknown bench group %q (use query, spatial, parallel, analyze, fault or repl)", *benchGroup)
		}
		fmt.Printf("\nwrote %s (%v)\n", *benchOut, time.Since(start).Round(time.Millisecond))
		return
	}
	if *exp == "" {
		for _, t := range experiments.All(cfg) {
			t.Fprint(os.Stdout)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			run, ok := experiments.ByID(id)
			if !ok {
				log.Fatalf("eebench: unknown experiment %q (use E1..E15)", id)
			}
			run(cfg).Fprint(os.Stdout)
		}
	}
	fmt.Printf("\ntotal: %v\n", time.Since(start).Round(time.Millisecond))
}
