package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/dl/datasets"
	"repro/internal/pcdss"
	"repro/internal/raster"
	"repro/internal/sentinel"
)

// E3 — information extraction at archive scale (the paper's Variety
// figure: 1 PB ≈ 750 000 datasets -> ≈450 TB of information and
// knowledge, a 0.45 ratio).
func E3(cfg Config) *Table {
	products := cfg.scale(16, 4)
	size := cfg.scale(64, 32)
	t := &Table{
		ID:     "E3",
		Title:  "Information extraction: data volume vs knowledge volume (§1 Variety)",
		Header: []string{"products", "data_MB", "knowledge_MB", "ratio", "mean_acc", "wall_ms"},
		Notes:  "knowledge = class map (1B/px) + 10-class uint16 confidence (20B/px) + NDVI (4B/px) over 52B/px of data; paper implies 0.45",
	}
	platform := core.NewPlatform(8, 8)
	train := datasets.EuroSATVectors(cfg.scale(12000, 2000), 71)
	net, _ := core.TrainLandCoverClassifier(dl.SingleWorker{}, train, cfg.scale(15, 4), 1, 71)
	scenes := core.GenerateSceneProducts(products, size, 72, extent)

	start := time.Now()
	res := platform.ExtractInformation(scenes, net)
	elapsed := time.Since(start)
	t.Rows = append(t.Rows, []string{
		i0(res.Products),
		f2(float64(res.DataBytes) / 1e6),
		f2(float64(res.KnowledgeBytes) / 1e6),
		f2(res.Ratio),
		f2(res.MeanAccuracy),
		ms(elapsed),
	})
	return t
}

// E14 — PCDSS delivery over restricted links (A2): chart payloads per
// codec and transfer times over representative link classes.
func E14(cfg Config) *Table {
	size := cfg.scale(256, 64)
	t := &Table{
		ID:     "E14",
		Title:  "PCDSS: ice-chart delivery over restricted links (A2)",
		Header: []string{"codec", "bytes", "64kbps", "256kbps", "2Mbps"},
		Notes:  "chart is the 1km-aggregated WMO product; links include 700 ms RTT",
	}
	grid := raster.NewGrid(extent.Min, 1000, size, size)
	chart := sentinel.GenerateIceChart(grid, 10, 81)
	links := []pcdss.Link{
		{BitsPerSecond: 64_000, RTT: 700 * time.Millisecond},
		{BitsPerSecond: 256_000, RTT: 700 * time.Millisecond},
		{BitsPerSecond: 2_000_000, RTT: 700 * time.Millisecond},
	}
	codecs := []struct {
		name string
		data []byte
	}{
		{"raw", pcdss.EncodeRaw(chart)},
		{"RLE", pcdss.EncodeRLE(chart)},
		{"quadtree", pcdss.EncodeQuadtree(chart)},
	}
	for _, c := range codecs {
		row := []string{c.name, i0(len(c.data))}
		for _, l := range links {
			row = append(row, l.TransferTime(len(c.data)).Round(time.Millisecond).String())
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// E15 — archive velocity (§1: 6 TB/day generated, 100 TB/day
// disseminated): sustained ingest and dissemination rates of the archive
// simulator, scaled against the paper's daily targets.
func E15(cfg Config) *Table {
	n := cfg.scale(100000, 5000)
	t := &Table{
		ID:     "E15",
		Title:  "Archive velocity: ingest and dissemination throughput (§1 Velocity)",
		Header: []string{"operation", "products", "volume_TB", "wall_ms", "products/s", "TB/day-equivalent"},
		Notes:  "paper: ~6 TB/day generated, ~100 TB/day disseminated by end of 2016",
	}
	products := sentinel.GenerateProducts(n, 91, extent)
	arch := sentinel.NewArchive()

	start := time.Now()
	for _, p := range products {
		mustAdd(arch.Ingest(p))
	}
	ingestT := time.Since(start)
	ingestTB := float64(arch.BytesIngested()) / 1e12
	t.Rows = append(t.Rows, []string{
		"ingest", i0(n), f2(ingestTB), ms(ingestT),
		f1(float64(n) / ingestT.Seconds()),
		fmt.Sprintf("%.0f", ingestTB/ingestT.Seconds()*86400),
	})

	// Dissemination: every product downloaded ~2x on average (the hub
	// disseminates ~17x more than it generates per the paper's ratio;
	// we model 2 passes and report the rate).
	start = time.Now()
	for pass := 0; pass < 2; pass++ {
		for _, p := range products {
			if _, err := arch.Download(p.ID); err != nil {
				panic(err)
			}
		}
	}
	dissT := time.Since(start)
	dissTB := float64(arch.BytesDisseminated()) / 1e12
	t.Rows = append(t.Rows, []string{
		"disseminate", i0(2 * n), f2(dissTB), ms(dissT),
		f1(float64(2*n) / dissT.Seconds()),
		fmt.Sprintf("%.0f", dissTB/dissT.Seconds()*86400),
	})
	return t
}
