package geom

import (
	"math/rand"
	"testing"
)

func joinTestGeoms(n int, seed int64) []Geometry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Geometry, n)
	for i := range out {
		x := rng.Float64() * 500
		y := rng.Float64() * 500
		s := 5 + rng.Float64()*40
		out[i] = NewRect(x, y, x+s, y+s)
	}
	return out
}

// TestIndexJoinMatchesCrossProduct checks the index join against the
// exhaustive cross product for every relation.
func TestIndexJoinMatchesCrossProduct(t *testing.T) {
	left := joinTestGeoms(60, 1)
	right := joinTestGeoms(60, 2)
	for _, rel := range []JoinRelation{JoinIntersects, JoinContains, JoinWithin, JoinNearer, JoinNearerEq} {
		const d = 25.0
		want := map[[2]int]bool{}
		for i, a := range left {
			for j, b := range right {
				if JoinHolds(rel, a, b, d) {
					want[[2]int{i, j}] = true
				}
			}
		}
		got := map[[2]int]bool{}
		comparisons := IndexJoin(left, right, rel, d, func(i, j int) {
			got[[2]int{i, j}] = true
		})
		if len(got) != len(want) {
			t.Fatalf("%v: %d pairs, want %d", rel, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("%v: missing pair %v", rel, p)
			}
		}
		if comparisons >= len(left)*len(right) {
			t.Errorf("%v: index join did no pruning (%d comparisons)", rel, comparisons)
		}
	}
}

// TestJoinWindowCompleteness: any pair satisfying the relation must have
// the right geometry's bounds intersect the left geometry's JoinWindow
// (the MBR probe is a superset filter).
func TestJoinWindowCompleteness(t *testing.T) {
	left := joinTestGeoms(40, 3)
	right := joinTestGeoms(40, 4)
	for _, rel := range []JoinRelation{JoinIntersects, JoinContains, JoinWithin, JoinNearer, JoinNearerEq} {
		const d = 30.0
		for _, a := range left {
			w := JoinWindow(rel, a, d)
			for _, b := range right {
				if JoinHolds(rel, a, b, d) && !w.Intersects(b.Bounds()) {
					t.Fatalf("%v: satisfied pair escapes the probe window", rel)
				}
			}
		}
	}
}

func TestIndexJoinEmptySides(t *testing.T) {
	gs := joinTestGeoms(5, 5)
	if n := IndexJoin(nil, gs, JoinIntersects, 0, func(int, int) { t.Fatal("emit on empty left") }); n != 0 {
		t.Fatalf("comparisons = %d", n)
	}
	if n := IndexJoin(gs, nil, JoinIntersects, 0, func(int, int) { t.Fatal("emit on empty right") }); n != 0 {
		t.Fatalf("comparisons = %d", n)
	}
}
