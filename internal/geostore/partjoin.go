package geostore

import (
	"context"
	"sync"

	"repro/internal/geom"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// This file implements cross-partition spatial joins. Features are
// hash-partitioned by IRI, so the two sides of a variable-variable
// spatial join usually live in different partitions and per-partition
// BGP evaluation cannot see the pair. The broadcast strategy:
//
//  1. Split the query's BGP into the two pattern components connected
//     only by the join (probe side = the component of the join's first
//     variable, build side = the other).
//  2. Evaluate the probe component on every partition in parallel.
//  3. Broadcast the probe rows' geometry windows to every partition:
//     each partition's R-tree prunes its build-side geometry candidates,
//     which seed the build-component evaluation locally.
//  4. Pair probe and build rows globally through one R-tree over the
//     build rows, refining the join predicate exactly.
//  5. Apply projection, aggregates, DISTINCT, ORDER BY, OFFSET and
//     LIMIT globally on the joined rows.
//
// Queries that do not decompose (several joins, a non-exclusive join
// conjunction, or a filter spanning both sides) fall back to evaluating
// against a transient merged single-node store: slower, never wrong.

// joinSplit is a query decomposed around one exclusive spatial join.
type joinSplit struct {
	join        sparql.SpatialJoin
	left, right *sparql.Query // component subqueries projecting all their vars
}

// querySpatialJoin evaluates a query containing variable-variable
// spatial joins across all partitions without losing cross-partition
// pairs.
func (ps *PartitionedStore) querySpatialJoin(ctx context.Context, q *sparql.Query, joins []sparql.SpatialJoin) (*sparql.Results, error) {
	sp, ok := splitSpatialJoin(q, joins)
	if !ok {
		return ps.queryMerged(ctx, q)
	}
	j := sp.join
	rel := j.Relation()

	// 1+2. Probe side on every partition.
	leftRes, err := ps.queryAllParts(ctx, sp.left)
	if err != nil {
		return nil, err
	}
	parse := newWKTCache()
	var leftRows []map[string]rdf.Term
	var leftGeoms []geom.Geometry
	for _, row := range leftRes {
		g, ok := parse.geometry(row[j.VarA])
		if !ok {
			// Missing or unparseable geometry: the predicate errors on
			// this row, which rejects it in SPARQL semantics.
			continue
		}
		leftRows = append(leftRows, row)
		leftGeoms = append(leftGeoms, g)
	}

	var joined []map[string]rdf.Term
	if len(leftRows) > 0 {
		// 3. Broadcast the probe windows; evaluate the build side seeded
		// on each partition's R-tree candidates.
		windows := make([]geom.Rect, len(leftGeoms))
		for i, g := range leftGeoms {
			windows[i] = geom.JoinWindow(rel, g, j.Distance)
		}
		rightRes, err := ps.queryBuildSide(sp.right, j.VarB, windows)
		if err != nil {
			return nil, err
		}
		var rightRows []map[string]rdf.Term
		var rightGeoms []geom.Geometry
		for _, row := range rightRes {
			g, ok := parse.geometry(row[j.VarB])
			if !ok {
				continue
			}
			rightRows = append(rightRows, row)
			rightGeoms = append(rightGeoms, g)
		}

		// 4. Global pairing through one R-tree over the build rows.
		if len(rightRows) > 0 {
			tree := geom.NewRTree()
			bounds := make([]geom.Rect, len(rightGeoms))
			data := make([]int64, len(rightGeoms))
			for i, g := range rightGeoms {
				bounds[i] = g.Bounds()
				data[i] = int64(i)
			}
			tree.BulkLoad(bounds, data)
			for li, lg := range leftGeoms {
				ps.joinProbes.Add(1)
				tree.Search(windows[li], func(_ geom.Rect, d int64) bool {
					ri := int(d)
					if !geom.JoinHolds(rel, lg, rightGeoms[ri], j.Distance) {
						return true
					}
					row := make(map[string]rdf.Term, len(leftRows[li])+len(rightRows[ri]))
					for k, v := range leftRows[li] {
						row[k] = v
					}
					for k, v := range rightRows[ri] {
						row[k] = v
					}
					joined = append(joined, row)
					return true
				})
			}
		}
	}

	// 5. Global solution modifiers over the joined rows.
	return projectJoined(q, joined), nil
}

// splitSpatialJoin decomposes q around a single exclusive
// variable-variable join: the BGP's patterns must form exactly two
// variable-connected components, one per join side, and every other
// filter must stay within one component. ok is false when the query does
// not have that shape.
func splitSpatialJoin(q *sparql.Query, joins []sparql.SpatialJoin) (*joinSplit, bool) {
	if len(joins) != 1 || !joins[0].Exclusive {
		return nil, false
	}
	j := joins[0]

	// Union-find over variables, joined through shared patterns.
	parent := map[string]string{}
	var find func(v string) string
	find = func(v string) string {
		p, ok := parent[v]
		if !ok {
			parent[v] = v
			return v
		}
		if p != v {
			p = find(p)
			parent[v] = p
		}
		return p
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	for _, tp := range q.Patterns {
		vars := tp.Vars()
		for i := 1; i < len(vars); i++ {
			union(vars[0], vars[i])
		}
	}
	if _, ok := parent[j.VarA]; !ok {
		return nil, false
	}
	if _, ok := parent[j.VarB]; !ok {
		return nil, false
	}
	compA, compB := find(j.VarA), find(j.VarB)
	if compA == compB {
		return nil, false
	}

	left := &sparql.Query{}
	right := &sparql.Query{}
	addVars := func(dst *sparql.Query, vars []string) {
		for _, v := range vars {
			dup := false
			for _, u := range dst.Vars {
				if u == v {
					dup = true
					break
				}
			}
			if !dup {
				dst.Vars = append(dst.Vars, v)
			}
		}
	}
	for _, tp := range q.Patterns {
		vars := tp.Vars()
		if len(vars) == 0 {
			// A fully constant pattern is a boolean guard; either side
			// enforces it for the whole query.
			left.Patterns = append(left.Patterns, tp)
			continue
		}
		switch find(vars[0]) {
		case compA:
			left.Patterns = append(left.Patterns, tp)
			addVars(left, vars)
		case compB:
			right.Patterns = append(right.Patterns, tp)
			addVars(right, vars)
		default:
			// A third disconnected component means the query is a triple
			// cross product; the merged fallback handles it.
			return nil, false
		}
	}
	for i, f := range q.Filters {
		if i == j.FilterIndex {
			continue // the join itself: enforced by the pairing stage
		}
		inA, inB := false, false
		for _, v := range sparql.ExprVars(f) {
			if _, known := parent[v]; !known {
				// A variable outside the BGP rejects every row wherever
				// the filter runs; assignment below keeps that semantic.
				continue
			}
			switch find(v) {
			case compA:
				inA = true
			case compB:
				inB = true
			}
		}
		if inA && inB {
			return nil, false // spans both sides: needs the joined row
		}
		if inB {
			right.Filters = append(right.Filters, f)
		} else {
			left.Filters = append(left.Filters, f)
		}
	}
	return &joinSplit{join: j, left: left, right: right}, true
}

// queryAllParts evaluates a component subquery on every partition in
// parallel and concatenates the rows (features are co-located, so
// component solutions never span partitions).
func (ps *PartitionedStore) queryAllParts(ctx context.Context, q *sparql.Query) ([]map[string]rdf.Term, error) {
	type partRes struct {
		res *sparql.Results
		err error
	}
	out := make([]partRes, len(ps.parts))
	var wg sync.WaitGroup
	for i, p := range ps.parts {
		wg.Add(1)
		go func(i int, p *Store) {
			defer wg.Done()
			r, err := p.QueryContext(ctx, q)
			out[i] = partRes{r, err}
		}(i, p)
	}
	wg.Wait()
	var rows []map[string]rdf.Term
	for _, pr := range out {
		if pr.err != nil {
			return nil, pr.err
		}
		rows = append(rows, pr.res.Rows...)
	}
	return rows, nil
}

// queryBuildSide evaluates the build component on every partition,
// seeded by the geometry IDs whose bounds intersect any broadcast
// window (the partition-local R-tree prunes; exact refinement happens at
// the global pairing stage).
func (ps *PartitionedStore) queryBuildSide(q *sparql.Query, geomVar string, windows []geom.Rect) ([]map[string]rdf.Term, error) {
	type partRes struct {
		res *sparql.Results
		err error
	}
	out := make([]partRes, len(ps.parts))
	var wg sync.WaitGroup
	for i, p := range ps.parts {
		wg.Add(1)
		go func(i int, p *Store) {
			defer wg.Done()
			out[i].res, out[i].err = p.queryWindowSeeded(q, geomVar, windows)
		}(i, p)
	}
	wg.Wait()
	var rows []map[string]rdf.Term
	for _, pr := range out {
		if pr.err != nil {
			return nil, pr.err
		}
		if pr.res != nil {
			rows = append(rows, pr.res.Rows...)
		}
	}
	return rows, nil
}

// queryWindowSeeded evaluates q on one partition seeded by the local
// geometry IDs whose bounds intersect any of the windows.
func (s *Store) queryWindowSeeded(q *sparql.Query, geomVar string, windows []geom.Rect) (*sparql.Results, error) {
	s.mu.Lock()
	s.buildLocked()
	s.mu.Unlock()

	candidates := map[rdf.ID]bool{}
	s.mu.RLock()
	for _, w := range windows {
		s.joinProbes.Add(1)
		s.rtree.Search(w, func(_ geom.Rect, data int64) bool {
			candidates[rdf.ID(data)] = true
			return true
		})
	}
	s.mu.RUnlock()
	if len(candidates) == 0 {
		return nil, nil
	}
	ids := make([]rdf.ID, 0, len(candidates))
	for id := range candidates {
		ids = append(ids, id)
	}
	plan, err := sparql.CompilePlan(s.rdfStore, q, sparql.PlanOpts{
		SeedVar: geomVar, SeedsSorted: true,
	})
	if err != nil {
		return nil, err
	}
	return plan.ExecuteSeeded(plan.SeedRows(ids))
}

// queryMerged evaluates q against a single-node store holding every
// partition's triples: the correctness fallback for spatial-join
// queries that do not decompose into two broadcastable components. The
// merged store is cached and rebuilt only when a partition mutates, so
// repeated fallback queries pay the merge once per store version.
func (ps *PartitionedStore) queryMerged(ctx context.Context, q *sparql.Query) (*sparql.Results, error) {
	st, err := ps.mergedStore()
	if err != nil {
		return nil, err
	}
	return st.QueryContext(ctx, q)
}

// mergedStore returns the cached merged store, rebuilding it when any
// partition has mutated since the last merge.
func (ps *PartitionedStore) mergedStore() (*Store, error) {
	version := ps.Version()
	ps.mergedMu.Lock()
	defer ps.mergedMu.Unlock()
	if ps.merged != nil && ps.mergedVersion == version {
		return ps.merged, nil
	}
	st := New(ModeIndexed)
	st.SetParallel(ps.parallel, ps.gate)
	st.SetLogger(ps.logger)
	for _, p := range ps.parts {
		for _, t := range p.rdfStore.Triples() {
			if err := st.Add(t.S, t.P, t.O); err != nil {
				return nil, err
			}
		}
	}
	st.Build()
	if ps.merged != nil {
		// Keep SpatialJoinStats monotonic across rebuilds: fold the
		// retired store's probe count into the global counter.
		ps.joinProbes.Add(ps.merged.SpatialJoinStats())
	}
	ps.merged, ps.mergedVersion = st, version
	return st, nil
}

// wktCache parses each distinct WKT literal once per join evaluation.
type wktCache struct {
	geoms map[string]geom.Geometry
}

func newWKTCache() *wktCache { return &wktCache{geoms: map[string]geom.Geometry{}} }

// geometry returns the parsed geometry of a WKT literal term; ok is
// false for missing terms, non-literals and invalid WKT.
func (c *wktCache) geometry(t rdf.Term) (geom.Geometry, bool) {
	if t.Kind != rdf.Literal || t.Value == "" {
		return nil, false
	}
	if g, ok := c.geoms[t.Value]; ok {
		return g, g != nil
	}
	g, err := geom.ParseWKT(t.Value)
	if err != nil {
		c.geoms[t.Value] = nil
		return nil, false
	}
	c.geoms[t.Value] = g
	return g, true
}

// projectJoined applies the full solution-modifier pipeline to joined
// rows: projection (or aggregates), DISTINCT, ORDER BY, OFFSET, LIMIT.
func projectJoined(q *sparql.Query, rows []map[string]rdf.Term) *sparql.Results {
	if len(q.Aggregates) > 0 {
		return aggregateJoined(q, rows)
	}
	vars := append([]string(nil), q.Vars...)
	if q.Star {
		seen := map[string]bool{}
		for _, tp := range q.Patterns {
			for _, v := range tp.Vars() {
				if !seen[v] {
					seen[v] = true
					vars = append(vars, v)
				}
			}
		}
	}
	res := &sparql.Results{Vars: vars}
	for _, row := range rows {
		proj := make(map[string]rdf.Term, len(vars))
		for _, v := range vars {
			if t, ok := row[v]; ok {
				proj[v] = t
			}
		}
		res.Rows = append(res.Rows, proj)
	}
	if q.Distinct {
		dedupRows(res)
	}
	if q.OrderBy != "" {
		sparql.SortRows(res.Rows, q.OrderBy, q.OrderDesc)
	}
	sparql.ApplyOffsetLimit(res, q)
	return res
}

// aggregateJoined folds joined rows into COUNT groups (the decoded-row
// analogue of the legacy evaluator's projectAggregates).
func aggregateJoined(q *sparql.Query, rows []map[string]rdf.Term) *sparql.Results {
	var vars []string
	if q.GroupBy != "" {
		vars = append(vars, q.GroupBy)
	}
	for _, a := range q.Aggregates {
		vars = append(vars, a.As)
	}
	res := &sparql.Results{Vars: vars}

	type group struct {
		key    rdf.Term
		counts []int64
	}
	groups := map[string]*group{}
	var order []string
	for _, row := range rows {
		key := ""
		var keyTerm rdf.Term
		if q.GroupBy != "" {
			t, ok := row[q.GroupBy]
			if !ok {
				continue
			}
			key, keyTerm = t.String(), t
		}
		g := groups[key]
		if g == nil {
			g = &group{key: keyTerm, counts: make([]int64, len(q.Aggregates))}
			groups[key] = g
			order = append(order, key)
		}
		for i, a := range q.Aggregates {
			if a.Var == "" {
				g.counts[i]++
				continue
			}
			if _, bound := row[a.Var]; bound {
				g.counts[i]++
			}
		}
	}
	if q.GroupBy == "" && len(groups) == 0 {
		groups[""] = &group{counts: make([]int64, len(q.Aggregates))}
		order = append(order, "")
	}
	for _, key := range order {
		g := groups[key]
		row := make(map[string]rdf.Term, len(vars))
		if q.GroupBy != "" {
			row[q.GroupBy] = g.key
		}
		for i, a := range q.Aggregates {
			row[a.As] = rdf.NewIntLiteral(g.counts[i])
		}
		res.Rows = append(res.Rows, row)
	}
	if q.OrderBy != "" {
		sparql.SortRows(res.Rows, q.OrderBy, q.OrderDesc)
	}
	sparql.ApplyOffsetLimit(res, q)
	return res
}
