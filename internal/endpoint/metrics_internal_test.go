package endpoint

import (
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestObserveBucketBoundaries pins the histogram's bucket edges:
// latencies exactly on an upper bound land in that bucket (le is
// inclusive, the Prometheus convention), just above it in the next, and
// anything beyond the last bound in +Inf.
func TestObserveBucketBoundaries(t *testing.T) {
	for i, ub := range latencyBuckets {
		exact := time.Duration(ub * float64(time.Second))
		// Durations are integer nanoseconds, so every bucket bound (down
		// to 0.0001s) is exactly representable.
		if exact.Seconds() != ub {
			t.Fatalf("bucket bound %g not representable as a duration", ub)
		}
		m := newMetrics(telemetry.NewRegistry())
		m.observe(exact)
		if got := m.latency.BucketCounts(); got[i] != 1 {
			t.Errorf("observe(%v) landed in %v, want bucket %d (le=%g)", exact, got, i, ub)
		}
		m2 := newMetrics(telemetry.NewRegistry())
		m2.observe(exact + time.Nanosecond)
		want := i + 1
		if got := m2.latency.BucketCounts(); got[want] != 1 {
			t.Errorf("observe(%v+1ns) landed in %v, want bucket %d", exact, got, want)
		}
	}

	m := newMetrics(telemetry.NewRegistry())
	over := time.Duration(latencyBuckets[len(latencyBuckets)-1]*float64(time.Second)) + time.Second
	m.observe(over)
	if got := m.latency.BucketCounts(); got[len(latencyBuckets)] != 1 {
		t.Errorf("observe(%v) landed in %v, want the +Inf bucket", over, got)
	}
	if got := m.latency.Sum(); got != over.Seconds() {
		t.Errorf("latency sum = %g, want %g", got, over.Seconds())
	}
}

// TestObserveConcurrent hammers observe from many goroutines (run under
// -race) and checks no samples are lost from the count or the sum (the
// histogram accumulates integer nanoseconds, so the sum is exact).
func TestObserveConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 1000
		d          = time.Millisecond
	)
	m := newMetrics(telemetry.NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.observe(d)
			}
		}()
	}
	wg.Wait()
	if got := m.latency.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	wantNs := uint64(goroutines * perG * d.Nanoseconds())
	if got, want := m.latency.Sum(), float64(wantNs)/1e9; got != want {
		t.Errorf("latency sum = %g, want %g", got, want)
	}
}

// TestCountError checks the per-kind split stays consistent with the
// unlabeled total.
func TestCountError(t *testing.T) {
	m := newMetrics(telemetry.NewRegistry())
	m.countError(errKindParse)
	m.countError(errKindParse)
	m.countError(errKindEval)
	m.countError(errKindSerialize)
	if got := m.errors.Load(); got != 4 {
		t.Errorf("errors = %d, want 4", got)
	}
	if p, e, s := m.errParse.Load(), m.errEval.Load(), m.errSerialize.Load(); p != 2 || e != 1 || s != 1 {
		t.Errorf("kind counters = parse %d, eval %d, serialize %d; want 2, 1, 1", p, e, s)
	}
}

// TestTimeoutCounterShared proves the timeout series cannot drift: one
// counter is attached to both sparql_timeouts_total and
// sparql_query_errors_total{kind="timeout"}.
func TestTimeoutCounterShared(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := newMetrics(reg)
	m.timeouts.Inc()
	m.timeouts.Inc()
	for _, fam := range reg.Snapshot().Families {
		switch fam.Name {
		case "sparql_timeouts_total":
			if len(fam.Series) != 1 || fam.Series[0].Value != 2 {
				t.Errorf("sparql_timeouts_total series = %+v, want one sample of 2", fam.Series)
			}
		case "sparql_query_errors_total":
			found := false
			for _, s := range fam.Series {
				if s.Labels == `{kind="timeout"}` {
					found = true
					if s.Value != 2 {
						t.Errorf("errors{kind=timeout} = %g, want 2", s.Value)
					}
				}
			}
			if !found {
				t.Errorf("no kind=timeout series in %+v", fam.Series)
			}
		}
	}
}
