package endpoint

import (
	"container/list"
	"sync"
	"time"
)

// cacheKey identifies one cached response: the canonical (normalized)
// query text, the store version it was computed against, and the
// serialization format. A store mutation advances the version, so stale
// entries simply stop being addressable and age out of the LRU.
type cacheKey struct {
	query   string
	version uint64
	format  Format
}

// cacheEntry holds one serialized response body.
type cacheEntry struct {
	key  cacheKey
	body []byte
	rows int
	at   time.Time // when the body was cached (GET /debug/cache ages)
}

// resultCache is a size-bounded LRU over serialized query results. All
// methods are safe for concurrent use.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	entries map[cacheKey]*list.Element
	order   *list.List // front = most recently used
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		entries: make(map[cacheKey]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached entry and marks it most recently used.
func (c *resultCache) get(k cacheKey) (*cacheEntry, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put stores an entry, evicting the least recently used beyond capacity.
func (c *resultCache) put(k cacheKey, body []byte, rows int) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.order.MoveToFront(el)
		el.Value = &cacheEntry{key: k, body: body, rows: rows, at: time.Now()}
		return
	}
	el := c.order.PushFront(&cacheEntry{key: k, body: body, rows: rows, at: time.Now()})
	c.entries[k] = el
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// len returns the number of live entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// items returns a point-in-time copy of the entries, most recently
// used first (GET /debug/cache).
func (c *resultCache) items() []cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cacheEntry, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, *el.Value.(*cacheEntry))
	}
	return out
}
