package dl

import (
	"math"
	"math/rand"
	"testing"
)

func TestMatMul(t *testing.T) {
	a := Matrix{Rows: 2, Cols: 3, Data: []float32{1, 2, 3, 4, 5, 6}}
	b := Matrix{Rows: 3, Cols: 2, Data: []float32{7, 8, 9, 10, 11, 12}}
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestMatMulTransposeVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(4, 3)
	b := NewMatrix(4, 5)
	for i := range a.Data {
		a.Data[i] = rng.Float32()
	}
	for i := range b.Data {
		b.Data[i] = rng.Float32()
	}
	// aᵀ*b via explicit transpose
	at := NewMatrix(3, 4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 3; c++ {
			at.Set(c, r, a.At(r, c))
		}
	}
	want := MatMul(at, b)
	got := MatMulTransA(a, b)
	for i := range want.Data {
		if math.Abs(float64(want.Data[i]-got.Data[i])) > 1e-5 {
			t.Fatalf("MatMulTransA[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
	// a*bᵀ with compatible shapes
	c := NewMatrix(2, 3)
	d := NewMatrix(5, 3)
	for i := range c.Data {
		c.Data[i] = rng.Float32()
	}
	for i := range d.Data {
		d.Data[i] = rng.Float32()
	}
	dt := NewMatrix(3, 5)
	for r := 0; r < 5; r++ {
		for cc := 0; cc < 3; cc++ {
			dt.Set(cc, r, d.At(r, cc))
		}
	}
	want2 := MatMul(c, dt)
	got2 := MatMulTransB(c, d)
	for i := range want2.Data {
		if math.Abs(float64(want2.Data[i]-got2.Data[i])) > 1e-5 {
			t.Fatalf("MatMulTransB[%d] = %v, want %v", i, got2.Data[i], want2.Data[i])
		}
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	logits := Matrix{Rows: 2, Cols: 3, Data: []float32{1, 2, 3, 1000, 1000, 1000}}
	p := Softmax(logits)
	for r := 0; r < 2; r++ {
		var sum float64
		for _, v := range p.Row(r) {
			sum += float64(v)
			if v < 0 || v > 1 {
				t.Fatalf("probability out of range: %v", v)
			}
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
	// large logits must not produce NaN (max-subtraction stability)
	for _, v := range p.Row(1) {
		if math.IsNaN(float64(v)) {
			t.Fatal("softmax NaN on large logits")
		}
	}
}

func TestLossDecreasesOnSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Two Gaussian blobs.
	n := 200
	x := NewMatrix(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		cx := float32(cls*4 - 2)
		x.Set(i, 0, cx+float32(rng.NormFloat64())*0.5)
		x.Set(i, 1, cx+float32(rng.NormFloat64())*0.5)
		y[i] = cls
	}
	net := NewNetwork(NewDense(2, 8, rng), &ReLU{}, NewDense(8, 2, rng))
	opt := NewSGD(0.1, 0.9)
	first := net.TrainStep(x, y)
	opt.Step(net.Params(), net.Grads())
	var last float64
	for i := 0; i < 50; i++ {
		last = net.TrainStep(x, y)
		opt.Step(net.Params(), net.Grads())
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	if acc := net.Accuracy(x, y); acc < 0.95 {
		t.Errorf("accuracy on separable blobs = %v", acc)
	}
}

// numericalGradCheck verifies analytic gradients of a network on a tiny
// batch against central finite differences.
func numericalGradCheck(t *testing.T, net *Network, x Matrix, y []int, tol float64) {
	t.Helper()
	net.TrainStep(x, y)
	params := net.Params()
	grads := net.Grads()
	// Copy analytic grads (subsequent TrainSteps overwrite them).
	analytic := make([][]float32, len(grads))
	for i, g := range grads {
		analytic[i] = append([]float32(nil), g.Data...)
	}
	const eps = 1e-3
	for pi, p := range params {
		// Check a sample of entries to keep the test fast.
		step := len(p.Data)/7 + 1
		for j := 0; j < len(p.Data); j += step {
			orig := p.Data[j]
			p.Data[j] = orig + eps
			lossPlus, _ := LossAndGrad(net.Forward(x), y)
			p.Data[j] = orig - eps
			lossMinus, _ := LossAndGrad(net.Forward(x), y)
			p.Data[j] = orig
			numeric := (lossPlus - lossMinus) / (2 * eps)
			a := float64(analytic[pi][j])
			if math.Abs(numeric-a) > tol*(1+math.Abs(numeric)+math.Abs(a)) {
				t.Errorf("param %d[%d]: analytic %v vs numeric %v", pi, j, a, numeric)
			}
		}
	}
}

func TestGradientCheckMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork(NewDense(4, 6, rng), &ReLU{}, NewDense(6, 3, rng))
	x := NewMatrix(5, 4)
	for i := range x.Data {
		x.Data[i] = rng.Float32()*2 - 1
	}
	y := []int{0, 1, 2, 1, 0}
	numericalGradCheck(t, net, x, y, 2e-2)
}

func TestGradientCheckCNN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	conv := NewConv2D(2, 6, 6, 3, 3, rng)
	pool := NewMaxPool2D(3, conv.OutH(), conv.OutW(), 2)
	net := NewNetwork(conv, &ReLU{}, pool, NewDense(pool.OutSize(), 3, rng))
	x := NewMatrix(3, 2*6*6)
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	y := []int{0, 1, 2}
	numericalGradCheck(t, net, x, y, 3e-2)
}

func TestModelSpecBuild(t *testing.T) {
	mlp := ModelSpec{Arch: ArchMLP, In: 13, Hidden: 16, Classes: 10, Seed: 1}.Build()
	if got := len(mlp.Layers); got != 3 {
		t.Errorf("MLP layers = %d", got)
	}
	cnn := ModelSpec{Arch: ArchCNN, In: 13, PatchH: 8, PatchW: 8, Hidden: 16, Classes: 10, Seed: 1}.Build()
	if got := len(cnn.Layers); got != 6 {
		t.Errorf("CNN layers = %d", got)
	}
	// forward shape sanity
	x := NewMatrix(2, 13*8*8)
	out := cnn.Forward(x)
	if out.Rows != 2 || out.Cols != 10 {
		t.Errorf("CNN output shape = %dx%d", out.Rows, out.Cols)
	}
	if mlp.NumParams() == 0 || cnn.NumParams() == 0 {
		t.Error("NumParams = 0")
	}
}

func TestBuildDeterministic(t *testing.T) {
	spec := ModelSpec{Arch: ArchMLP, In: 5, Hidden: 7, Classes: 3, Seed: 42}
	a, b := spec.Build(), spec.Build()
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Data {
			if pa[i].Data[j] != pb[i].Data[j] {
				t.Fatal("same seed produced different weights")
			}
		}
	}
}

func makeBlobs(n, dim, classes int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{X: NewMatrix(n, dim), Y: make([]int, n), Classes: classes}
	for i := 0; i < n; i++ {
		cls := i % classes
		for d := 0; d < dim; d++ {
			center := float32(cls) * 2
			ds.X.Set(i, d, center+float32(rng.NormFloat64())*0.3)
		}
		ds.Y[i] = cls
	}
	ds.Shuffle(rng)
	return ds
}

func TestDatasetSplitShard(t *testing.T) {
	ds := makeBlobs(100, 3, 4, 5)
	train, test := ds.Split(0.8)
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split = %d/%d", train.Len(), test.Len())
	}
	total := 0
	for w := 0; w < 3; w++ {
		total += ds.Shard(w, 3).Len()
	}
	if total != 100 {
		t.Errorf("shards cover %d samples", total)
	}
}

func TestStrategiesReachSimilarAccuracy(t *testing.T) {
	ds := makeBlobs(600, 4, 3, 6)
	spec := ModelSpec{Arch: ArchMLP, In: 4, Hidden: 16, Classes: 3, Seed: 7}
	cfg := TrainConfig{Epochs: 5, BatchSize: 32, LR: 0.05, Momentum: 0.9, Workers: 4, Seed: 7}

	strategies := []Strategy{SingleWorker{}, AllReduce{}, ParameterServer{}}
	for _, s := range strategies {
		dsCopy := &Dataset{X: ds.X.Clone(), Y: append([]int(nil), ds.Y...), Classes: ds.Classes}
		net, stats := s.Train(spec, dsCopy, cfg)
		acc := net.Accuracy(ds.X, ds.Y)
		if acc < 0.9 {
			t.Errorf("%s accuracy = %v, want >= 0.9", s.Name(), acc)
		}
		if stats.Steps == 0 || stats.WallTime <= 0 {
			t.Errorf("%s stats = %+v", s.Name(), stats)
		}
		if s.Name() != "single" && stats.CommBytes == 0 {
			t.Errorf("%s CommBytes = 0", s.Name())
		}
	}
}

func TestAllReduceGradEqualsSingleBatchGrad(t *testing.T) {
	// One allreduce step over W workers must produce the same summed
	// gradient as one full-batch step (synchronous data parallelism is
	// mathematically equivalent).
	rng := rand.New(rand.NewSource(8))
	spec := ModelSpec{Arch: ArchMLP, In: 3, Hidden: 5, Classes: 2, Seed: 11}
	x := NewMatrix(8, 3)
	for i := range x.Data {
		x.Data[i] = rng.Float32()
	}
	y := []int{0, 1, 0, 1, 1, 0, 1, 0}

	// Reference: full batch on one model.
	ref := spec.Build()
	ref.TrainStep(x, y)
	refGrads := ref.Grads()

	// Manual 2-worker split and averaged gradients.
	w1, w2 := spec.Build(), spec.Build()
	x1 := Matrix{Rows: 4, Cols: 3, Data: x.Data[:12]}
	x2 := Matrix{Rows: 4, Cols: 3, Data: x.Data[12:]}
	w1.TrainStep(x1, y[:4])
	w2.TrainStep(x2, y[4:])
	g1, g2 := w1.Grads(), w2.Grads()
	for i := range refGrads {
		for j := range refGrads[i].Data {
			combined := 0.5*g1[i].Data[j] + 0.5*g2[i].Data[j]
			if math.Abs(float64(combined-refGrads[i].Data[j])) > 1e-4 {
				t.Fatalf("grad %d[%d]: combined %v vs full-batch %v",
					i, j, combined, refGrads[i].Data[j])
			}
		}
	}
}

func TestNearestCentroidBaseline(t *testing.T) {
	ds := makeBlobs(300, 4, 3, 9)
	train, test := ds.Split(0.8)
	nc := FitNearestCentroid(train)
	if acc := nc.Accuracy(test); acc < 0.95 {
		t.Errorf("centroid accuracy on blobs = %v", acc)
	}
}

func TestHyperparameterSearch(t *testing.T) {
	ds := makeBlobs(300, 4, 3, 10)
	train, test := ds.Split(0.8)
	space := SearchSpace{
		LRs:       []float32{0.001, 0.05},
		Hiddens:   []int{4, 16},
		Momentums: []float32{0.0, 0.9},
	}
	grid := space.GridTrials()
	if len(grid) != 8 {
		t.Fatalf("grid = %d trials", len(grid))
	}
	spec := ModelSpec{Arch: ArchMLP, In: 4, Classes: 3, Seed: 3}
	results := RunSearch(spec, train, test, grid, 3, 4)
	if len(results) != 8 {
		t.Fatalf("results = %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].TestAccuracy > results[i-1].TestAccuracy {
			t.Fatal("results not sorted best-first")
		}
	}
	if results[0].TestAccuracy < 0.9 {
		t.Errorf("best trial accuracy = %v", results[0].TestAccuracy)
	}
	rnd := space.RandomTrials(5, 1)
	if len(rnd) != 5 {
		t.Errorf("random trials = %d", len(rnd))
	}
}

func TestSGDMomentumMoves(t *testing.T) {
	p := NewMatrix(1, 1)
	g := NewMatrix(1, 1)
	g.Data[0] = 1
	opt := NewSGD(0.1, 0.9)
	opt.Step([]*Matrix{&p}, []*Matrix{&g})
	if p.Data[0] != -0.1 {
		t.Fatalf("first step = %v", p.Data[0])
	}
	opt.Step([]*Matrix{&p}, []*Matrix{&g})
	// velocity: -0.1*0.9 - 0.1 = -0.19; param: -0.29
	if math.Abs(float64(p.Data[0]+0.29)) > 1e-6 {
		t.Fatalf("second step = %v", p.Data[0])
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float32{1, 5, 3}) != 1 {
		t.Error("Argmax")
	}
	if Argmax([]float32{-1}) != 0 {
		t.Error("Argmax single")
	}
}
