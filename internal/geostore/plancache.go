package geostore

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/sparql"
)

// planCacheSize bounds the number of compiled plans kept per store.
const planCacheSize = 128

// planEntry is one cached compilation: the slot-based plan plus the
// spatial filters and variable-variable spatial joins extracted
// alongside it (the seed filter drives R-tree seeding at execution
// time; the joins mark plans whose probe steps need the R-tree built).
type planEntry struct {
	key     string
	version uint64
	plan    *sparql.Plan
	spatial []sparql.SpatialFilter
	joins   []sparql.SpatialJoin
}

// planCache is an LRU over compiled query plans keyed on canonical query
// text. Entries embed dictionary IDs and cardinality estimates, so they
// are valid only for the store version they were compiled against; a
// version mismatch recompiles in place. Safe for concurrent use.
type planCache struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits   atomic.Uint64
	misses atomic.Uint64
}

func newPlanCache() *planCache {
	return &planCache{entries: make(map[string]*list.Element), order: list.New()}
}

// get returns the cached entry when present and compiled at version.
func (c *planCache) get(key string, version uint64) (*planEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok || el.Value.(*planEntry).version != version {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*planEntry), true
}

// put stores an entry, evicting the least recently used beyond capacity.
func (c *planCache) put(e *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok {
		c.order.MoveToFront(el)
		el.Value = e
		return
	}
	el := c.order.PushFront(e)
	c.entries[e.key] = el
	for c.order.Len() > planCacheSize {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*planEntry).key)
	}
}

// stats returns the hit/miss counters.
func (c *planCache) stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// len returns the number of cached plans.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
