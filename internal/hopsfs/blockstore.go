package hopsfs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultBlockAccessCost is the simulated per-access cost of the block
// layer. In HDFS/HopsFS, reading a small file stored in DataNode blocks
// costs an extra network round trip versus serving it from the metadata
// layer; the "Size Matters" paper measures exactly this gap. We model the
// round trip as a fixed delay so the E11 inline-vs-block comparison has
// the same shape without real DataNodes (substitution documented in
// DESIGN.md).
const DefaultBlockAccessCost = 200 * time.Microsecond

// BlockStore simulates the DataNode block layer: content-addressed block
// storage with a fixed per-access latency.
type BlockStore struct {
	cost time.Duration

	mu     sync.RWMutex
	blocks map[uint64][]byte
	nextID uint64
	gets   atomic.Uint64
	puts   atomic.Uint64
}

// NewBlockStore returns a block store with the given per-access cost.
func NewBlockStore(cost time.Duration) *BlockStore {
	return &BlockStore{cost: cost, blocks: make(map[uint64][]byte), nextID: 1}
}

// Put stores data and returns its block ID.
func (b *BlockStore) Put(data []byte) uint64 {
	if b.cost > 0 {
		time.Sleep(b.cost)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextID
	b.nextID++
	b.blocks[id] = append([]byte(nil), data...)
	b.puts.Add(1)
	return id
}

// Get retrieves a block.
func (b *BlockStore) Get(id uint64) ([]byte, bool) {
	if b.cost > 0 {
		time.Sleep(b.cost)
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	data, ok := b.blocks[id]
	if !ok {
		return nil, false
	}
	b.gets.Add(1)
	return append([]byte(nil), data...), true
}

// Delete removes a block.
func (b *BlockStore) Delete(id uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.blocks, id)
}

// Len returns the number of stored blocks.
func (b *BlockStore) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.blocks)
}

// Accesses returns (gets, puts) counters.
func (b *BlockStore) Accesses() (gets, puts uint64) {
	return b.gets.Load(), b.puts.Load()
}
