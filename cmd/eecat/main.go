// Command eecat builds a synthetic Copernicus archive, mirrors it into
// the semantic catalogue, and answers both a conventional area+year
// search and the paper's flagship iceberg query from the command line.
//
// Usage:
//
//	eecat -products 5000 -bergs 500 -year 2017
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/catalogue"
	"repro/internal/geom"
	"repro/internal/sentinel"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eecat:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eecat", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	nProducts := fs.Int("products", 5000, "synthetic products to catalogue")
	nBergs := fs.Int("bergs", 500, "synthetic iceberg observations")
	year := fs.Int("year", 2017, "observation year for the iceberg query")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return fmt.Errorf("usage: %w", err)
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	extent := geom.NewRect(0, 0, 10000, 10000)
	cat := catalogue.New()

	start := time.Now()
	for _, p := range sentinel.GenerateProducts(*nProducts, 1, extent) {
		if err := cat.AddProduct(p); err != nil {
			return err
		}
	}
	barrier := geom.Polygon{Shell: geom.Ring{
		{X: 2000, Y: 2000}, {X: 6000, Y: 2200}, {X: 6200, Y: 5800}, {X: 1900, Y: 5600},
	}}
	if err := cat.AddIceBarrier("NorskeOer", *year, barrier); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < *nBergs; i++ {
		p := geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		if err := cat.AddIceberg(fmt.Sprintf("b%d", i), *year-1+rng.Intn(3), p); err != nil {
			return err
		}
	}
	cat.Build()
	fmt.Printf("catalogued %d products, %d iceberg observations, 1 barrier (%d triples) in %v\n",
		*nProducts, *nBergs, cat.Len(), time.Since(start).Round(time.Millisecond))

	window := geom.NewRect(1000, 1000, 4000, 4000)
	start = time.Now()
	count, err := cat.ProductsInYearOverArea(2018, window)
	if err != nil {
		return err
	}
	fmt.Printf("conventional search: %d products over the window in 2018 (%v)\n",
		count, time.Since(start).Round(time.Microsecond))

	start = time.Now()
	bergs, err := cat.IcebergsEmbedded("NorskeOer", *year)
	if err != nil {
		return err
	}
	fmt.Printf("semantic search: %d icebergs embedded in the Norske Oer Ice Barrier "+
		"at its maximum extent in %d (%v)\n",
		bergs, *year, time.Since(start).Round(time.Microsecond))
	return nil
}
