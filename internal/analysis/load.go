package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked analysis unit: a package of the module,
// with in-package _test.go files folded in (the go command's "test
// variant"), or an external _test package.
type Package struct {
	PkgPath   string // import path (test variants keep the base path)
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	testFiles map[*token.File]bool
}

// IsTestFile reports whether pos lies in a _test.go file of the unit.
func (p *Package) IsTestFile(pos token.Pos) bool {
	return p.testFiles[p.Fset.File(pos)]
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	Export       string
	Standard     bool
	ForTest      string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	Module       *struct{ Path string }
	Error        *struct{ Err string }
}

// Load type-checks the module packages matching patterns (relative to
// dir), including their test files, and returns them ready for
// analysis. It shells out to `go list` — offline and build-cache
// backed — for package metadata and export data, then parses and
// type-checks each module package from source so analyzers see full
// syntax with types.Info.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-test", "-deps", "-export",
		"-json=Dir,ImportPath,Name,Export,Standard,ForTest,GoFiles,TestGoFiles,XTestGoFiles,Imports,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	byPath := make(map[string]*listPackage)
	var order []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		byPath[lp.ImportPath] = lp
		order = append(order, lp)
	}

	// Pick the analysis units: module packages, preferring the test
	// variant "pkg [pkg.test]" (it folds the in-package test files in)
	// over the plain entry, plus external _test packages. Synthesized
	// test mains ("pkg.test") are skipped.
	variantOf := make(map[string]bool) // base paths that have a test variant
	for _, lp := range order {
		if lp.ForTest != "" && strings.HasPrefix(lp.ImportPath, lp.ForTest+" [") {
			variantOf[lp.ForTest] = true
		}
	}
	var units []*listPackage
	for _, lp := range order {
		switch {
		case lp.Standard || lp.Module == nil:
			continue
		case lp.Error != nil:
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		case strings.HasSuffix(lp.ImportPath, ".test"):
			continue // synthesized test main
		case lp.ForTest != "" && strings.HasSuffix(lp.Name, "_test"):
			units = append(units, lp) // external _test package
		case lp.ForTest != "":
			units = append(units, lp) // in-package test variant
		case variantOf[lp.ImportPath]:
			continue // superseded by its test variant
		default:
			units = append(units, lp)
		}
	}
	sort.Slice(units, func(i, j int) bool { return units[i].ImportPath < units[j].ImportPath })

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, lp := range units {
		p, err := typeCheckUnit(fset, lp, byPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// typeCheckUnit parses a unit's files and type-checks them against the
// export data of its dependencies.
func typeCheckUnit(fset *token.FileSet, lp *listPackage, byPath map[string]*listPackage) (*Package, error) {
	// The go list entry's GoFiles is already the unit's complete file
	// list: test variants fold their in-package _test.go files in, and
	// external _test packages list exactly their own files.
	names := lp.GoFiles

	pkg := &Package{
		PkgPath:   basePath(lp.ImportPath),
		Dir:       lp.Dir,
		Fset:      fset,
		testFiles: make(map[*token.File]bool),
	}
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %v", path, err)
		}
		pkg.Files = append(pkg.Files, f)
		if strings.HasSuffix(name, "_test.go") {
			pkg.testFiles[fset.File(f.Pos())] = true
		}
	}

	// Bracketed import spellings in go list output ("p [q.test]") name
	// the test variants this unit must link against; source files spell
	// the plain path, so map plain → variant for the importer.
	redirect := make(map[string]string)
	for _, imp := range lp.Imports {
		if base := basePath(imp); base != imp {
			redirect[base] = imp
		}
	}
	imp, err := newExportImporter(fset, byPath, redirect)
	if err != nil {
		return nil, err
	}

	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.PkgPath, fset, pkg.Files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %v", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return pkg, nil
}

// newInfo allocates every types.Info map analyzers may consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// basePath strips the " [pkg.test]" variant suffix go list appends.
func basePath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// exportImporter resolves imports from the export data files the go
// command wrote (build-cache paths from `go list -export`).
type exportImporter struct {
	inner    types.Importer
	byPath   map[string]*listPackage
	redirect map[string]string
}

func newExportImporter(fset *token.FileSet, byPath map[string]*listPackage, redirect map[string]string) (*exportImporter, error) {
	ei := &exportImporter{byPath: byPath, redirect: redirect}
	lookup := func(path string) (io.ReadCloser, error) {
		if v, ok := ei.redirect[path]; ok {
			path = v
		}
		lp := ei.byPath[path]
		if lp == nil || lp.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(lp.Export)
	}
	ei.inner = importer.ForCompiler(fset, "gc", lookup)
	return ei, nil
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ei.inner.Import(path)
}
