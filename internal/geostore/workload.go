package geostore

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/rdf"
)

// The E1/E2 workload generators produce the synthetic feature datasets the
// paper's Strabon discussion implies: uniformly distributed point features
// (E1) and multi-polygon features of configurable vertex complexity (E2)
// over a planar extent, queried with rectangular selections.

// FeatureClass is the rdf:type used by generated features.
const FeatureClass = "http://extremeearth.eu/ontology#Feature"

// GeneratePointFeatures returns n point features uniformly distributed
// over extent, with a small integer payload property each.
func GeneratePointFeatures(n int, seed int64, extent geom.Rect) []Feature {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Feature, n)
	for i := 0; i < n; i++ {
		p := geom.Point{
			X: extent.Min.X + rng.Float64()*extent.Width(),
			Y: extent.Min.Y + rng.Float64()*extent.Height(),
		}
		out[i] = Feature{
			IRI:      fmt.Sprintf("http://extremeearth.eu/feature/pt%d", i),
			Class:    FeatureClass,
			Geometry: p,
			Props: map[string]rdf.Term{
				"http://extremeearth.eu/ontology#value": rdf.NewIntLiteral(int64(rng.Intn(1000))),
			},
		}
	}
	return out
}

// GenerateMultiPolygonFeatures returns n multi-polygon features, each with
// `parts` member polygons of `vertices` vertices, scattered over extent.
// Total vertex count per feature is parts*vertices, the complexity axis of
// experiment E2.
func GenerateMultiPolygonFeatures(n, parts, vertices int, seed int64, extent geom.Rect) []Feature {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Feature, n)
	radius := extent.Width() / 500
	if radius <= 0 {
		radius = 1
	}
	for i := 0; i < n; i++ {
		mp := geom.MultiPolygon{Polygons: make([]geom.Polygon, parts)}
		cx := extent.Min.X + rng.Float64()*extent.Width()
		cy := extent.Min.Y + rng.Float64()*extent.Height()
		for p := 0; p < parts; p++ {
			center := geom.Point{
				X: cx + rng.Float64()*radius*4,
				Y: cy + rng.Float64()*radius*4,
			}
			mp.Polygons[p] = jitteredPolygon(rng, center, radius, vertices)
		}
		out[i] = Feature{
			IRI:      fmt.Sprintf("http://extremeearth.eu/feature/mp%d", i),
			Class:    FeatureClass,
			Geometry: mp,
			Props: map[string]rdf.Term{
				"http://extremeearth.eu/ontology#value": rdf.NewIntLiteral(int64(rng.Intn(1000))),
			},
		}
	}
	return out
}

// jitteredPolygon builds an irregular star-convex polygon: a regular
// polygon with per-vertex radial noise, which keeps rings simple
// (non-self-intersecting) while defeating trivial convexity shortcuts.
func jitteredPolygon(rng *rand.Rand, center geom.Point, radius float64, vertices int) geom.Polygon {
	base := geom.RegularPolygon(center, radius, vertices)
	for i := range base.Shell {
		dx := base.Shell[i].X - center.X
		dy := base.Shell[i].Y - center.Y
		f := 0.7 + rng.Float64()*0.6
		base.Shell[i] = geom.Point{X: center.X + dx*f, Y: center.Y + dy*f}
	}
	return base
}

// SelectionQuery formats the E1/E2 rectangular-selection query over the
// given window: "return features whose geometry intersects the window".
func SelectionQuery(window geom.Rect) string {
	return fmt.Sprintf(`
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f WHERE {
			?f a ee:Feature .
			?f geo:hasGeometry ?g .
			?g geo:asWKT ?wkt .
			FILTER(geof:sfIntersects(?wkt, "%s"^^geo:wktLiteral))
		}`, window.WKT())
}

// RandomWindow returns a selection window covering roughly frac of the
// extent's area, placed uniformly at random.
func RandomWindow(rng *rand.Rand, extent geom.Rect, frac float64) geom.Rect {
	w := extent.Width() * math.Sqrt(frac)
	h := extent.Height() * math.Sqrt(frac)
	x := extent.Min.X + rng.Float64()*(extent.Width()-w)
	y := extent.Min.Y + rng.Float64()*(extent.Height()-h)
	return geom.NewRect(x, y, x+w, y+h)
}
