package sparql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/geom"
	"repro/internal/rdf"
)

// Plan is a query compiled against one store: variables resolved to
// integer slots, constants to dictionary IDs, filters to slot-addressed
// closures pushed down to the earliest pattern that binds them, and the
// basic graph pattern to a streaming rdf.BGPPlan with a cardinality-
// estimated join order. Compile once (plans are cheap but not free — the
// planner probes index range sizes), execute many: a Plan is immutable
// and safe for concurrent Execute calls. Plans embed dictionary IDs, so
// a plan compiled before a store mutation stays correct but may mark
// newly inserted constants as absent; cache plans keyed on the store
// version (see geostore's plan cache).
type Plan struct {
	st *rdf.Store
	q  *Query

	slots    map[string]int
	width    int
	seedSlot int // slot of opt.SeedVar, -1 when unseeded
	bgp      *rdf.BGPPlan

	vars      []string // effective projection (copied, never aliases q.Vars)
	projSlots []int    // slot per projection var, -1 when not in the BGP
	orderSlot int      // slot ordering applies to, -1 = no reordering needed

	// aggregate compilation
	groupSlot int   // slot of GROUP BY var, -1 when ungrouped or unbound
	aggSlots  []int // per aggregate: countStar, countNever, or a slot
	aggregate bool

	parallel int   // intended execution degree (Explain annotation)
	skipped  []int // filter indexes enforced outside the plan (for Explain)
}

const (
	countStar  = -2 // COUNT(*): every row counts
	countNever = -1 // COUNT(?v) with ?v outside the BGP: never bound
)

// Refiner is a pushed-down predicate over a single variable's dictionary
// ID, used by spatially indexed stores to refine R-tree candidates inside
// the pipeline instead of after it.
type Refiner struct {
	Var   string
	Label string
	Pred  func(rdf.ID) bool
}

// JoinProbe wires one variable-variable spatial join into the plan: an
// index-backed candidate generator between two geometry variables. The
// planner inserts a probe step as soon as one side's slot is bound; the
// executor then enumerates exact candidates for the other side instead
// of the cartesian product a plain filter would force.
type JoinProbe struct {
	// VarA and VarB are the two joined variables.
	VarA, VarB string
	// Candidates streams the IDs for the unbound side that satisfy the
	// join predicate exactly, given the bound side's ID (aBound reports
	// whether VarA is the bound side). It must stop when yield returns
	// false.
	Candidates func(bound rdf.ID, aBound bool, yield func(rdf.ID) bool)
	// Check tests the predicate when both sides are already bound.
	Check func(a, b rdf.ID) bool
	// Label names the join in Explain output.
	Label string
}

// PlanOpts tunes compilation for seeded (spatially accelerated)
// evaluation. The zero value compiles a plain plan.
type PlanOpts struct {
	// SeedVar names a variable pre-bound by every seed row.
	SeedVar string
	// SeedsSorted promises seed rows sorted ascending by SeedVar's ID,
	// enabling merge joins against the seed stream.
	SeedsSorted bool
	// SkipFilters marks filter indexes fully enforced by the caller
	// (e.g. exclusive spatial filters answered by the R-tree seed, or
	// exclusive spatial joins answered by an index probe).
	SkipFilters map[int]bool
	// Refiners are extra per-variable predicates pushed into the
	// pipeline at the variable's binding step.
	Refiners []Refiner
	// Probes are index spatial joins between two variables.
	Probes []JoinProbe
	// Parallel is the morsel-driven execution degree the plan's owner
	// intends to run it at (annotated by Explain as workers=N). It does
	// not change the compiled plan — parallelism is an execution-time
	// property (see ExecuteParallelSeeded) — so plan caches keyed on
	// query text and store version stay valid.
	Parallel int
}

// CompilePlan compiles q against st.
func CompilePlan(st *rdf.Store, q *Query, opt PlanOpts) (*Plan, error) {
	p := &Plan{st: st, q: q, slots: map[string]int{}, seedSlot: -1, orderSlot: -1, groupSlot: -1}

	slotOf := func(v string) int {
		if sl, ok := p.slots[v]; ok {
			return sl
		}
		sl := p.width
		p.slots[v] = sl
		p.width++
		return sl
	}
	if opt.SeedVar != "" {
		p.seedSlot = slotOf(opt.SeedVar)
	}
	for _, tp := range q.Patterns {
		for _, v := range tp.Vars() {
			slotOf(v)
		}
	}

	// Compile filters to slot closures. A filter referencing a variable
	// outside the BGP can never evaluate (unbound-variable error rejects
	// the row in SPARQL semantics), which the planner models as an
	// always-false predicate on the last step.
	var filters []rdf.PlanFilter
	for i, f := range q.Filters {
		if opt.SkipFilters[i] {
			p.skipped = append(p.skipped, i)
			continue
		}
		filters = append(filters, p.compileFilter(f))
	}
	for _, r := range opt.Refiners {
		sl, ok := p.slots[r.Var]
		if !ok {
			// The refined variable is outside the BGP: like the legacy
			// path's missing-binding check, nothing survives.
			pred := func(rdf.Row) bool { return false }
			filters = append(filters, rdf.PlanFilter{Pred: pred, Label: r.Label + " (unbound)"})
			continue
		}
		pred, slot := r.Pred, sl
		filters = append(filters, rdf.PlanFilter{
			Slots: []int{slot},
			//eevet:hotpath
			Pred:  func(row rdf.Row) bool { return pred(row[slot]) },
			Label: r.Label,
		})
	}

	bgpOpt := rdf.BGPOptions{SortedSlot: -1, Filters: filters}
	for _, jp := range opt.Probes {
		slA, okA := p.slots[jp.VarA]
		slB, okB := p.slots[jp.VarB]
		if !okA || !okB {
			// A join variable outside the BGP can never bind: legacy
			// evaluation errors (and rejects) on every row.
			missing := jp.VarA
			if okA {
				missing = jp.VarB
			}
			bgpOpt.Filters = append(bgpOpt.Filters, rdf.PlanFilter{
				Pred:  func(rdf.Row) bool { return false },
				Label: jp.Label + " (?" + missing + " unbound: rejects all)",
			})
			continue
		}
		bgpOpt.Probes = append(bgpOpt.Probes, rdf.PlanProbe{
			SlotA: slA, SlotB: slB,
			Candidates: jp.Candidates,
			Check:      jp.Check,
			Label:      jp.Label,
		})
	}
	if p.seedSlot >= 0 {
		bgpOpt.SeedSlots = []int{p.seedSlot}
		if opt.SeedsSorted {
			bgpOpt.SortedSlot = p.seedSlot
		}
	}
	p.bgp = st.PlanBGP(q.Patterns, p.slots, p.width, bgpOpt)
	p.parallel = opt.Parallel

	p.compileProjection()
	return p, nil
}

// compileProjection resolves the effective projection, aggregates and
// ORDER BY against the slot table.
func (p *Plan) compileProjection() {
	q := p.q
	if len(q.Aggregates) > 0 {
		p.aggregate = true
		if q.GroupBy != "" {
			p.vars = append(p.vars, q.GroupBy)
			if sl, ok := p.slots[q.GroupBy]; ok {
				p.groupSlot = sl
			}
		}
		for _, a := range q.Aggregates {
			p.vars = append(p.vars, a.As)
			switch {
			case a.Var == "":
				p.aggSlots = append(p.aggSlots, countStar)
			default:
				if sl, ok := p.slots[a.Var]; ok {
					p.aggSlots = append(p.aggSlots, sl)
				} else {
					p.aggSlots = append(p.aggSlots, countNever)
				}
			}
		}
		return
	}
	// Defensive copy: q may be shared (parsed once, cached); appending to
	// q.Vars in the SELECT * path could otherwise scribble on it.
	p.vars = append([]string(nil), q.Vars...)
	if q.Star {
		seen := map[string]bool{}
		for _, tp := range q.Patterns {
			for _, v := range tp.Vars() {
				if !seen[v] {
					seen[v] = true
					p.vars = append(p.vars, v)
				}
			}
		}
	}
	p.projSlots = make([]int, len(p.vars))
	inProj := false
	for i, v := range p.vars {
		if sl, ok := p.slots[v]; ok {
			p.projSlots[i] = sl
		} else {
			p.projSlots[i] = -1
		}
		if v == q.OrderBy {
			inProj = true
		}
	}
	// ORDER BY on a variable outside the projection (or outside the BGP)
	// compares empty keys everywhere: a stable no-op the executor skips,
	// which also re-enables the LIMIT short-circuit.
	if q.OrderBy != "" && inProj {
		if sl, ok := p.slots[q.OrderBy]; ok {
			p.orderSlot = sl
		}
	}
}

// SlotOf returns the slot of a variable and whether it exists in the
// plan.
func (p *Plan) SlotOf(v string) (int, bool) {
	sl, ok := p.slots[v]
	return sl, ok
}

// SeedRows builds sorted seed rows binding the plan's SeedVar slot to
// each ID. The ids slice is sorted in place (ascending), satisfying the
// SeedsSorted promise; rows share one backing allocation.
func (p *Plan) SeedRows(ids []rdf.ID) []rdf.Row {
	if p.seedSlot < 0 || len(ids) == 0 {
		return nil
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	backing := make([]rdf.ID, p.width*len(ids))
	rows := make([]rdf.Row, len(ids))
	for i, id := range ids {
		row := backing[i*p.width : (i+1)*p.width : (i+1)*p.width]
		row[p.seedSlot] = id
		rows[i] = row
	}
	return rows
}

// Execute evaluates the plan from the single empty row.
func (p *Plan) Execute() (*Results, error) { return p.ExecuteSeeded(nil) }

// ExecuteSeeded evaluates the plan from the given seed rows (see
// SeedRows). Execution streams: DISTINCT deduplicates on encoded slot
// tuples, LIMIT without ORDER BY stops the pipeline early, aggregates
// fold rows into group counters without materializing solutions, and
// ORDER BY sorts on keys computed once per row.
func (p *Plan) ExecuteSeeded(seeds []rdf.Row) (*Results, error) {
	return p.executeSeededStats(seeds, nil)
}

// executeSeededStats is ExecuteSeeded with an optional executor stats
// sink (the EXPLAIN ANALYZE path; see ExecuteAnalyzed).
func (p *Plan) executeSeededStats(seeds []rdf.Row, stats *rdf.RunStats) (*Results, error) {
	if p.aggregate {
		return p.executeAggregates(seeds, stats)
	}
	q := p.q
	res := &Results{Vars: p.vars}

	var (
		arena    = rdf.NewRowArena(p.width)
		rows     []rdf.Row
		keys     []sortKey
		dedup    map[string]bool
		keyBuf   []byte
		needSort = p.orderSlot >= 0 && q.OrderBy != ""
	)
	if q.Distinct {
		dedup = make(map[string]bool)
		keyBuf = make([]byte, 0, 8*len(p.projSlots))
	}
	limit := q.Limit
	skip := q.Offset

	p.bgp.RunProfiled(p.st, seeds, stats, func(row rdf.Row) bool {
		if q.Distinct {
			keyBuf = p.projKey(keyBuf, row)
			k := string(keyBuf)
			if dedup[k] {
				return true
			}
			dedup[k] = true
		}
		if !needSort && skip > 0 {
			// Streaming OFFSET: skipped (distinct) rows are never
			// materialized, and the LIMIT short-circuit below only counts
			// rows past the offset.
			skip--
			return true
		}
		rows = append(rows, arena.Copy(row))
		if needSort {
			var t rdf.Term
			if id := row[p.orderSlot]; id != rdf.NoID {
				t = p.st.Dict().MustDecode(id)
			}
			keys = append(keys, makeSortKey(t))
		}
		// Without a global sort the limit short-circuits the pipeline.
		return needSort || limit <= 0 || len(rows) < limit
	})

	if needSort {
		perm := make([]int, len(rows))
		for i := range perm {
			perm[i] = i
		}
		sort.SliceStable(perm, func(i, j int) bool {
			if q.OrderDesc {
				return sortKeyLess(keys[perm[j]], keys[perm[i]])
			}
			return sortKeyLess(keys[perm[i]], keys[perm[j]])
		})
		ordered := make([]rdf.Row, len(rows))
		for i, pi := range perm {
			ordered[i] = rows[pi]
		}
		rows = ordered
		// Under ORDER BY the offset can only apply after the global sort.
		if q.Offset > 0 {
			if q.Offset >= len(rows) {
				rows = rows[:0]
			} else {
				rows = rows[q.Offset:]
			}
		}
	}
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}

	dict := p.st.Dict()
	res.Rows = make([]map[string]rdf.Term, 0, len(rows))
	for _, row := range rows {
		m := make(map[string]rdf.Term, len(p.vars))
		for i, v := range p.vars {
			if sl := p.projSlots[i]; sl >= 0 && row[sl] != rdf.NoID {
				m[v] = dict.MustDecode(row[sl])
			}
		}
		res.Rows = append(res.Rows, m)
	}
	return res, nil
}

// executeAggregates folds the solution stream into COUNT groups without
// materializing rows.
func (p *Plan) executeAggregates(seeds []rdf.Row, stats *rdf.RunStats) (*Results, error) {
	q := p.q
	grouped := q.GroupBy != ""
	type group struct{ counts []int }
	groups := map[rdf.ID]*group{}
	var order []rdf.ID

	// A GROUP BY variable outside the BGP never binds; the legacy
	// evaluator skips every row, so no groups form.
	if !grouped || p.groupSlot >= 0 {
		p.bgp.RunProfiled(p.st, seeds, stats, func(row rdf.Row) bool {
			var key rdf.ID
			if grouped {
				key = row[p.groupSlot]
				if key == rdf.NoID {
					return true
				}
			}
			g := groups[key]
			if g == nil {
				g = &group{counts: make([]int, len(q.Aggregates))}
				groups[key] = g
				order = append(order, key)
			}
			for i, sl := range p.aggSlots {
				switch {
				case sl == countStar:
					g.counts[i]++
				case sl == countNever:
					// COUNT(?v) with ?v never bound: contributes nothing.
				case row[sl] != rdf.NoID:
					g.counts[i]++
				}
			}
			return true
		})
	}
	return p.renderAggregates(order, func(k rdf.ID) []int { return groups[k].counts })
}

// renderAggregates builds the decoded aggregate result from per-group
// counters in first-seen order, applying the empty-COUNT zero row,
// ORDER BY and OFFSET/LIMIT. It is shared by the sequential and
// parallel executors so their aggregate output can never diverge.
func (p *Plan) renderAggregates(order []rdf.ID, counts func(rdf.ID) []int) (*Results, error) {
	q := p.q
	grouped := q.GroupBy != ""
	if !grouped && len(order) == 0 {
		// COUNT over the empty solution set is a single zero row.
		zero := make([]int, len(q.Aggregates))
		order = []rdf.ID{rdf.NoID}
		counts = func(rdf.ID) []int { return zero }
	}
	res := &Results{Vars: p.vars}
	dict := p.st.Dict()
	for _, key := range order {
		row := make(map[string]rdf.Term, len(p.vars))
		for i, n := range counts(key) {
			row[q.Aggregates[i].As] = rdf.NewIntLiteral(int64(n))
		}
		if grouped {
			row[q.GroupBy] = dict.MustDecode(key)
		}
		res.Rows = append(res.Rows, row)
	}
	if q.OrderBy != "" {
		SortRows(res.Rows, q.OrderBy, q.OrderDesc)
	}
	ApplyOffsetLimit(res, q)
	return res, nil
}

// compileFilter compiles a filter expression to a pushed-down row
// predicate. Evaluation errors reject the row (SPARQL semantics).
func (p *Plan) compileFilter(f Expr) rdf.PlanFilter {
	eval, slots, unbound := p.compileExpr(f)
	if unbound != "" {
		return rdf.PlanFilter{
			Pred:  func(rdf.Row) bool { return false },
			Label: f.String() + " (?" + unbound + " unbound: rejects all)",
		}
	}
	return rdf.PlanFilter{
		Slots: slots,
		// The expression tree behind eval may allocate on its error
		// paths, but the per-row dispatch itself must not.
		//eevet:hotpath
		Pred: func(row rdf.Row) bool {
			v, err := eval(row)
			return err == nil && v.Bool()
		},
		Label: f.String(),
	}
}

// exprFn evaluates a compiled expression against a slot row.
type exprFn func(rdf.Row) (Value, error)

// compileExpr lowers an expression to a closure over slot rows,
// resolving variables to slots and pre-evaluating constants (including
// parsing constant WKT geometry arguments once instead of per row). It
// returns the distinct slots the expression reads; unbound names the
// first variable without a slot, which makes the filter unsatisfiable.
func (p *Plan) compileExpr(e Expr) (fn exprFn, slots []int, unbound string) {
	seen := map[int]bool{}
	var walk func(Expr) exprFn
	var missing string
	addSlot := func(sl int) {
		if !seen[sl] {
			seen[sl] = true
			slots = append(slots, sl)
		}
	}
	dict := p.st.Dict()
	walk = func(e Expr) exprFn {
		switch ex := e.(type) {
		case VarExpr:
			sl, ok := p.slots[ex.Name]
			if !ok {
				if missing == "" {
					missing = ex.Name
				}
				return nil
			}
			addSlot(sl)
			return func(row rdf.Row) (Value, error) {
				id := row[sl]
				if id == rdf.NoID {
					return Value{}, fmt.Errorf("unbound variable ?%s in FILTER", ex.Name)
				}
				return termValue(dict.MustDecode(id)), nil
			}
		case ConstExpr:
			v := termValue(ex.Term)
			return func(rdf.Row) (Value, error) { return v, nil }
		case NotExpr:
			inner := walk(ex.E)
			if inner == nil {
				return nil
			}
			return func(row rdf.Row) (Value, error) {
				v, err := inner(row)
				if err != nil {
					return Value{}, err
				}
				return boolValue(!v.Bool()), nil
			}
		case AndExpr:
			l, r := walk(ex.L), walk(ex.R)
			if l == nil || r == nil {
				return nil
			}
			return func(row rdf.Row) (Value, error) {
				lv, err := l(row)
				if err != nil {
					return Value{}, err
				}
				if !lv.Bool() {
					return boolValue(false), nil
				}
				rv, err := r(row)
				if err != nil {
					return Value{}, err
				}
				return boolValue(rv.Bool()), nil
			}
		case OrExpr:
			l, r := walk(ex.L), walk(ex.R)
			if l == nil || r == nil {
				return nil
			}
			return func(row rdf.Row) (Value, error) {
				lv, err := l(row)
				if err != nil {
					return Value{}, err
				}
				if lv.Bool() {
					return boolValue(true), nil
				}
				rv, err := r(row)
				if err != nil {
					return Value{}, err
				}
				return boolValue(rv.Bool()), nil
			}
		case CmpExpr:
			l, r := walk(ex.L), walk(ex.R)
			if l == nil || r == nil {
				return nil
			}
			op := ex.Op
			return func(row rdf.Row) (Value, error) {
				lv, err := l(row)
				if err != nil {
					return Value{}, err
				}
				rv, err := r(row)
				if err != nil {
					return Value{}, err
				}
				return compare(op, lv, rv)
			}
		case FuncExpr:
			return p.compileFunc(ex, walk)
		default:
			err := fmt.Errorf("unsupported expression %T", e)
			return func(rdf.Row) (Value, error) { return Value{}, err }
		}
	}
	fn = walk(e)
	if missing != "" {
		return nil, nil, missing
	}
	return fn, slots, ""
}

// compileFunc lowers a GeoSPARQL function call. Constant geometry
// arguments are parsed from WKT once at compile time instead of once per
// candidate row.
func (p *Plan) compileFunc(ex FuncExpr, walk func(Expr) exprFn) exprFn {
	fail := func(err error) exprFn {
		return func(rdf.Row) (Value, error) { return Value{}, err }
	}
	switch ex.Name {
	case FnSfIntersects, FnSfContains, FnSfWithin, FnDistance:
	default:
		return fail(fmt.Errorf("unknown function <%s>", ex.Name))
	}
	if len(ex.Args) != 2 {
		return fail(fmt.Errorf("%s needs 2 arguments, got %d", ex.Name, len(ex.Args)))
	}
	type geomFn func(rdf.Row) (geom.Geometry, error)
	compileGeom := func(e Expr, idx int) geomFn {
		if c, ok := e.(ConstExpr); ok && c.Term.Kind == rdf.Literal {
			g, err := geom.ParseWKT(c.Term.Value)
			if err != nil {
				return func(rdf.Row) (geom.Geometry, error) { return nil, err }
			}
			return func(rdf.Row) (geom.Geometry, error) { return g, nil }
		}
		inner := walk(e)
		if inner == nil {
			return nil
		}
		name := ex.Name
		return func(row rdf.Row) (geom.Geometry, error) {
			v, err := inner(row)
			if err != nil {
				return nil, err
			}
			if v.Term.Kind != rdf.Literal {
				return nil, fmt.Errorf("%s: argument %d is not a geometry literal", name, idx)
			}
			return geom.ParseWKT(v.Term.Value)
		}
	}
	g1, g2 := compileGeom(ex.Args[0], 0), compileGeom(ex.Args[1], 1)
	if g1 == nil || g2 == nil {
		return nil
	}
	name := ex.Name
	return func(row rdf.Row) (Value, error) {
		a, err := g1(row)
		if err != nil {
			return Value{}, err
		}
		b, err := g2(row)
		if err != nil {
			return Value{}, err
		}
		switch name {
		case FnSfIntersects:
			return boolValue(geom.Intersects(a, b)), nil
		case FnSfContains:
			return boolValue(geom.Contains(a, b)), nil
		case FnSfWithin:
			return boolValue(geom.Within(a, b)), nil
		default:
			return numValue(geom.Distance(a, b)), nil
		}
	}
}

// Explain renders the plan for humans: slot table, seeding, join order
// with access paths and estimates, pushed filters, and the projection
// pipeline. It backs the eequery -explain flag.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", p.q.Canonical())
	names := make([]string, p.width)
	for v, sl := range p.slots {
		names[sl] = "?" + v + "=" + fmt.Sprint(sl)
	}
	fmt.Fprintf(&b, "slots: %s\n", strings.Join(names, " "))
	if p.seedSlot >= 0 {
		fmt.Fprintf(&b, "seed: slot %d (spatial index candidates, sorted)\n", p.seedSlot)
	}
	for _, line := range p.bgp.Explain() {
		b.WriteString(line + "\n")
	}
	for _, i := range p.skipped {
		fmt.Fprintf(&b, "filter #%d enforced by spatial index (skipped)\n", i)
	}
	var mods []string
	if p.q.Distinct {
		mods = append(mods, "DISTINCT on encoded slot tuples")
	}
	if p.aggregate {
		mods = append(mods, "streamed COUNT aggregation")
	}
	if p.q.OrderBy != "" {
		if p.orderSlot >= 0 {
			mods = append(mods, "ORDER BY ?"+p.q.OrderBy+" (precomputed keys)")
		} else {
			mods = append(mods, "ORDER BY ?"+p.q.OrderBy+" (no-op: not projected)")
		}
	}
	if p.q.Offset > 0 {
		if p.orderSlot < 0 && !p.aggregate {
			mods = append(mods, fmt.Sprintf("OFFSET %d (streaming skip)", p.q.Offset))
		} else {
			mods = append(mods, fmt.Sprintf("OFFSET %d", p.q.Offset))
		}
	}
	if p.q.Limit > 0 {
		if p.orderSlot < 0 && !p.aggregate {
			mods = append(mods, fmt.Sprintf("LIMIT %d (streaming short-circuit)", p.q.Limit))
		} else {
			mods = append(mods, fmt.Sprintf("LIMIT %d", p.q.Limit))
		}
	}
	if len(mods) > 0 {
		fmt.Fprintf(&b, "project: %s\n", strings.Join(mods, "; "))
	}
	if p.parallel > 1 {
		fmt.Fprintf(&b, "parallel: workers=%d, split=%s\n",
			p.parallel, p.bgp.ParallelSplit(p.seedSlot >= 0))
	}
	return b.String()
}

// --- sort keys (satellite fix: ORDER BY used to re-parse numeric
// literals on every comparison) ---

// sortKey is the per-row ORDER BY key, computed once: the numeric value
// when the term parses as a number, else its lexical value.
type sortKey struct {
	num   float64
	isNum bool
	str   string
}

func makeSortKey(t rdf.Term) sortKey {
	if f, err := t.Float(); err == nil {
		return sortKey{num: f, isNum: true, str: t.Value}
	}
	return sortKey{str: t.Value}
}

// sortKeyLess mirrors termLess: numeric when both sides are numeric,
// lexical otherwise.
func sortKeyLess(a, b sortKey) bool {
	if a.isNum && b.isNum {
		return a.num < b.num
	}
	return a.str < b.str
}

// SortRows stably sorts decoded result rows by the named variable with
// one key computation per row. Shared by the projection paths and the
// partitioned store's global merge.
func SortRows(rows []map[string]rdf.Term, by string, desc bool) {
	keys := make([]sortKey, len(rows))
	for i, r := range rows {
		keys[i] = makeSortKey(r[by])
	}
	perm := make([]int, len(rows))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(i, j int) bool {
		if desc {
			return sortKeyLess(keys[perm[j]], keys[perm[i]])
		}
		return sortKeyLess(keys[perm[i]], keys[perm[j]])
	})
	out := make([]map[string]rdf.Term, len(rows))
	for i, pi := range perm {
		out[i] = rows[pi]
	}
	copy(rows, out)
}
