package storage

import (
	"errors"
	"os"
	"testing"

	"repro/internal/rdf"
	"repro/internal/storage/vfs"
)

// openTestDB opens a DB over an in-memory filesystem, recovers it into
// a fresh store, and attaches the journal.
func openTestDB(t *testing.T, fsys vfs.FS, dir string) (*DB, *rdf.Store) {
	t.Helper()
	db, err := Open(dir, Options{SyncEvery: 1, FS: fsys})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st := rdf.NewStore()
	if _, err := db.Recover(st); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	st.SetJournal(db.Log())
	return db, st
}

// drain reads every available batch from a fresh reader at from.
func drain(t *testing.T, db *DB, from Cursor) (batches [][]rdf.Triple, end Cursor) {
	t.Helper()
	sr, err := db.OpenSegmentReader(from)
	if err != nil {
		t.Fatalf("OpenSegmentReader(%v): %v", from, err)
	}
	defer sr.Close()
	for {
		batch, next, err := sr.Next()
		if errors.Is(err, ErrCaughtUp) {
			return batches, sr.Cursor()
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		batches = append(batches, batch)
		end = next
	}
}

func TestCursorStringRoundTrip(t *testing.T) {
	c := Cursor{Seq: 12, Offset: 34567}
	got, err := ParseCursor(c.String())
	if err != nil || got != c {
		t.Fatalf("ParseCursor(%q) = %v, %v; want %v", c.String(), got, err, c)
	}
	for _, bad := range []string{"", "x", "1:", "1:-2", "-1:0", "nope:3"} {
		if _, err := ParseCursor(bad); err == nil {
			t.Errorf("ParseCursor(%q) accepted", bad)
		}
	}
	if !(Cursor{Seq: 1, Offset: 5}).Before(Cursor{Seq: 2}) {
		t.Fatal("1:5 should be before 2:0")
	}
	if (Cursor{Seq: 2}).Before(Cursor{Seq: 2}) {
		t.Fatal("cursor is not before itself")
	}
}

// TestSegmentReaderStreamsAcrossRotation checks a reader delivers every
// committed batch in order across a Snapshot's segment rotation, and
// that resuming from a mid-stream cursor re-delivers exactly the rest.
func TestSegmentReaderStreamsAcrossRotation(t *testing.T) {
	fsys := vfs.NewErrFS()
	db, st := openTestDB(t, fsys, "db")
	defer db.Close()

	var want []rdf.Triple
	addBatch := func(lo, hi int) {
		var batch []rdf.Triple
		for i := lo; i < hi; i++ {
			batch = append(batch, tr(i))
		}
		if err := st.AddBatch(batch); err != nil {
			t.Fatalf("AddBatch: %v", err)
		}
		want = append(want, batch...)
	}

	addBatch(0, 3)
	addBatch(3, 5)
	start, err := db.StartCursor()
	if err != nil {
		t.Fatalf("StartCursor: %v", err)
	}
	batches, mid := drain(t, db, start)
	if len(batches) != 2 {
		t.Fatalf("got %d batches before rotation, want 2", len(batches))
	}

	if _, err := db.Snapshot(st); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	addBatch(5, 9)

	// Resume from the pre-rotation cursor: only the new batch arrives.
	tail, end := drain(t, db, mid)
	if len(tail) != 1 || len(tail[0]) != 4 {
		t.Fatalf("resumed batches = %v, want one batch of 4", tail)
	}
	if end != db.EndCursor() {
		t.Fatalf("drained cursor %v != EndCursor %v", end, db.EndCursor())
	}

	// A full drain from the start re-delivers everything still on disk.
	all, _ := drain(t, db, start)
	var got []rdf.Triple
	for _, b := range all {
		got = append(got, b...)
	}
	if len(got) != len(want) {
		t.Fatalf("full drain = %d triples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("triple %d = %v, want %v", i, got[i], want[i])
		}
	}

	lag, err := db.LagBytes(mid)
	if err != nil || lag <= 0 {
		t.Fatalf("LagBytes(mid) = %d, %v; want > 0", lag, err)
	}
	caught, err := db.LagBytes(db.EndCursor())
	if err != nil || caught != 0 {
		t.Fatalf("LagBytes(end) = %d, %v; want 0", caught, err)
	}
}

// TestSegmentReaderStopsAtDurableBoundary checks the reader never ships
// bytes past the fsynced prefix: with group commit deferring the sync,
// a flushed-but-unsynced record stays invisible until Sync.
func TestSegmentReaderStopsAtDurableBoundary(t *testing.T) {
	fsys := vfs.NewErrFS()
	db, err := Open("db", Options{SyncEvery: 100, FS: fsys})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	st := rdf.NewStore()
	if _, err := db.Recover(st); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	st.SetJournal(db.Log())

	if err := st.AddBatch([]rdf.Triple{tr(1), tr(2)}); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	start, _ := db.StartCursor()
	if batches, _ := drain(t, db, start); len(batches) != 0 {
		t.Fatalf("unsynced record visible to reader: %d batches", len(batches))
	}
	if err := db.Log().Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if batches, _ := drain(t, db, start); len(batches) != 1 {
		t.Fatalf("synced record not visible: got %d batches, want 1", len(batches))
	}
}

// TestSegmentReaderTruncatedCursor checks that a cursor whose segment
// was pruned by compaction reports ErrCursorTruncated instead of
// silently skipping records.
func TestSegmentReaderTruncatedCursor(t *testing.T) {
	fsys := vfs.NewErrFS()
	db, st := openTestDB(t, fsys, "db")
	defer db.Close()

	if err := st.AddBatch([]rdf.Triple{tr(1)}); err != nil {
		t.Fatal(err)
	}
	stale, _ := db.StartCursor()
	// Two snapshots: the second prunes every segment up to the first
	// snapshot's rotation boundary, including the stale cursor's.
	for i := 0; i < 2; i++ {
		if err := st.AddBatch([]rdf.Triple{tr(10 + i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Snapshot(st); err != nil {
			t.Fatalf("Snapshot %d: %v", i, err)
		}
	}
	if _, err := db.OpenSegmentReader(stale); !errors.Is(err, ErrCursorTruncated) {
		t.Fatalf("OpenSegmentReader(stale) = %v, want ErrCursorTruncated", err)
	}
}

func TestEpochManifest(t *testing.T) {
	fsys := vfs.NewErrFS()
	db, _ := openTestDB(t, fsys, "db")
	if db.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d, want 0", db.Epoch())
	}
	if e, err := db.BumpEpoch(); err != nil || e != 1 {
		t.Fatalf("BumpEpoch = %d, %v; want 1", e, err)
	}
	if err := db.EnsureEpoch(5); err != nil {
		t.Fatalf("EnsureEpoch(5): %v", err)
	}
	if err := db.EnsureEpoch(3); err != nil { // raise-only: no-op
		t.Fatalf("EnsureEpoch(3): %v", err)
	}
	if db.Epoch() != 5 {
		t.Fatalf("epoch = %d, want 5", db.Epoch())
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The epoch survives reopen, and a corrupt manifest refuses to boot.
	db2, _ := openTestDB(t, fsys, "db")
	if db2.Epoch() != 5 {
		t.Fatalf("reopened epoch = %d, want 5", db2.Epoch())
	}
	if err := db2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	f, err := fsys.OpenFile("db/MANIFEST", os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatalf("corrupt manifest: %v", err)
	}
	if _, err := f.Write([]byte("garbage")); err != nil {
		t.Fatalf("corrupt manifest: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("corrupt manifest: %v", err)
	}
	if _, err := Open("db", Options{FS: fsys}); err == nil {
		t.Fatal("Open accepted a corrupt MANIFEST")
	}
}

func TestEncodeBatchRoundTrip(t *testing.T) {
	batch := []rdf.Triple{tr(1), tr(2), tr(1)} // duplicate shares dict IDs
	got, err := DecodeBatch(EncodeBatch(batch))
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(got) != len(batch) {
		t.Fatalf("round trip = %d triples, want %d", len(got), len(batch))
	}
	for i := range got {
		if got[i] != batch[i] {
			t.Fatalf("triple %d = %v, want %v", i, got[i], batch[i])
		}
	}
	if _, err := DecodeBatch([]byte{0x00, 0x01, 0x01, 0x01, 0x01}); err == nil {
		t.Fatal("DecodeBatch accepted a payload referencing undefined terms")
	}
}
