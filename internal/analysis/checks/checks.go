// Package checks holds the eevet analyzer suite: six project-specific
// static checks that turn the engine's comment-and-test invariants into
// machine-enforced ones (see README "Static analysis").
//
//	vfsonly       storage I/O must route through the vfs.FS seam
//	nodroppederr  vfs / journal / WAL error results may not be discarded
//	hotpathalloc  //eevet:hotpath bodies stay allocation- and clock-free
//	ctxthread     query/load paths thread context.Context, no Background
//	metricsreg    metric names are package-level consts, labels closed
//	locksafe      nothing blocking or re-entrant under rdf.Store's lock
package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// All returns the full suite in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Vfsonly,
		Nodroppederr,
		Hotpathalloc,
		Ctxthread,
		Metricsreg,
		Locksafe,
	}
}

// pathHasDir reports whether the slash-separated import path contains
// dir as a complete segment sequence ("internal/storage" matches
// "repro/internal/storage/x" but not "repro/internal/storagex").
func pathHasDir(path, dir string) bool {
	for i := 0; i+len(dir) <= len(path); i++ {
		if path[i:i+len(dir)] != dir {
			continue
		}
		startOK := i == 0 || path[i-1] == '/'
		end := i + len(dir)
		endOK := end == len(path) || path[end] == '/'
		if startOK && endOK {
			return true
		}
	}
	return false
}

// unparen strips parentheses (ast.Unparen needs go1.22; the module
// still declares go1.21).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeObj resolves the function or method a call invokes, nil for
// calls of function-typed values and type conversions.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := info.Uses[fun]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
			if _, ok := obj.(*types.Builtin); ok {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified function: os.Create, fmt.Sprintf.
		if obj := info.Uses[fun.Sel]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	}
	return nil
}

// objPkgPath returns the import path of the package declaring obj, ""
// for builtins and universe objects.
func objPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// errorResultIndexes returns the positions of error-typed results in a
// call's result tuple (empty when none).
func errorResultIndexes(info *types.Info, call *ast.CallExpr) []int {
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	var idx []int
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				idx = append(idx, i)
			}
		}
	default:
		if isErrorType(tv.Type) {
			idx = append(idx, 0)
		}
	}
	return idx
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}

// enclosingFuncs returns the stack of FuncDecl/FuncLit nodes containing
// pos, outermost first.
func enclosingFuncs(files []*ast.File, pos ast.Node) []ast.Node {
	var stack []ast.Node
	for _, f := range files {
		if f.Pos() <= pos.Pos() && pos.Pos() < f.End() {
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					return false
				}
				if n.Pos() > pos.Pos() || pos.End() > n.End() {
					return n.Pos() <= pos.Pos() // prune subtrees left of pos
				}
				switch n.(type) {
				case *ast.FuncDecl, *ast.FuncLit:
					stack = append(stack, n)
				}
				return true
			})
		}
	}
	return stack
}
