// Package storage is the durability subsystem of the re-engineered
// store: a binary, dictionary-encoded append-only write-ahead log plus
// compacted snapshot files, with crash recovery that loads the latest
// valid snapshot and replays the WAL tail.
//
// On-disk formats (all integers little-endian or unsigned varints):
//
//	WAL record   := u32 payloadLen | u32 crc32(payload) | payload
//	WAL payload  := uvarint nDefs   | nDefs × term
//	                uvarint nTriples| nTriples × (uvarint s, p, o)
//	term         := u8 kind | str value [| str datatype | str lang]
//	str          := uvarint len | bytes
//
// WAL term IDs are log-local: the first novel term in a segment gets ID
// 1, and definitions always precede use, so a reader reconstructs the
// dictionary incrementally. Snapshot files carry an 8-byte magic, a
// payload of the same term/triple encodings (IDs are the store
// dictionary's), and a trailer holding the triple-segment offset plus a
// CRC32 over payload and offset (see snapshotMagic in snapshot.go):
//
//	snapshot := "EESNAP02"
//	          | payload := uvarint version
//	                     | uvarint nTerms  | nTerms × term
//	                     | uvarint nTriples| nTriples × (uvarint s, p, o)
//	          | u64 tripleOff | u32 crc32(payload + tripleOff)
//
// tripleOff (the payload offset of the nTriples field) lets recovery
// decode the dictionary and triple segments on separate cores. A record
// or snapshot whose length or CRC does not check out is treated as
// torn: the WAL reader stops at the last valid record (and the writer
// truncates the tail), and snapshot recovery falls back to the previous
// snapshot generation.
package storage

import (
	"encoding/binary"
	"fmt"

	"repro/internal/rdf"
)

// maxRecordLen bounds a single WAL record payload, so a corrupt length
// prefix cannot provoke a giant allocation before the CRC check runs.
const maxRecordLen = 1 << 28

const (
	termIRI     = 0
	termLiteral = 1
	termBlank   = 2
)

// appendString appends a length-prefixed string.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendTerm appends the binary encoding of t.
func appendTerm(buf []byte, t rdf.Term) []byte {
	switch t.Kind {
	case rdf.IRI:
		buf = append(buf, termIRI)
		return appendString(buf, t.Value)
	case rdf.Blank:
		buf = append(buf, termBlank)
		return appendString(buf, t.Value)
	default: // rdf.Literal
		buf = append(buf, termLiteral)
		buf = appendString(buf, t.Value)
		buf = appendString(buf, t.Datatype)
		return appendString(buf, t.Lang)
	}
}

// decoder is a cursor over an in-memory encoded payload. It works on a
// string so decoded term values are zero-copy substrings sharing the
// payload's backing array — the dominant cost of a cold snapshot load
// would otherwise be one allocation per term component.
type decoder struct {
	buf string
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	var x uint64
	var shift uint
	for i := d.off; i < len(d.buf); i++ {
		b := d.buf[i]
		if b < 0x80 {
			if i-d.off > 9 || (i-d.off == 9 && b > 1) {
				return 0, fmt.Errorf("storage: varint overflow at offset %d", d.off)
			}
			d.off = i + 1
			return x | uint64(b)<<shift, nil
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, fmt.Errorf("storage: truncated varint at offset %d", d.off)
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.buf)-d.off) {
		return "", fmt.Errorf("storage: string of %d bytes overruns payload at offset %d", n, d.off)
	}
	s := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return s, nil
}

func (d *decoder) term() (rdf.Term, error) {
	if d.off >= len(d.buf) {
		return rdf.Term{}, fmt.Errorf("storage: truncated term at offset %d", d.off)
	}
	kind := d.buf[d.off]
	d.off++
	value, err := d.str()
	if err != nil {
		return rdf.Term{}, err
	}
	switch kind {
	case termIRI:
		return rdf.NewIRI(value), nil
	case termBlank:
		return rdf.NewBlank(value), nil
	case termLiteral:
		dt, err := d.str()
		if err != nil {
			return rdf.Term{}, err
		}
		lang, err := d.str()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.Term{Kind: rdf.Literal, Value: value, Datatype: dt, Lang: lang}, nil
	default:
		return rdf.Term{}, fmt.Errorf("storage: unknown term kind %d", kind)
	}
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

// EncodeBatch encodes batch as one self-contained record payload: the
// same wire format as a WAL record, but with every term defined inline
// (no segment-local dictionary context needed to decode it). The
// replication feed re-encodes each shipped record this way, so a
// replica can resume mid-segment without replaying the definitions
// that preceded the cursor.
func EncodeBatch(batch []rdf.Triple) []byte {
	dict := make(map[rdf.Term]uint64, len(batch))
	var defs []byte
	ids := make([]uint64, 0, 3*len(batch))
	for _, t := range batch {
		for _, term := range [3]rdf.Term{t.S, t.P, t.O} {
			id, ok := dict[term]
			if !ok {
				id = uint64(len(dict) + 1)
				dict[term] = id
				defs = appendTerm(defs, term)
			}
			ids = append(ids, id)
		}
	}
	payload := make([]byte, 0, 16+len(defs)+2*len(ids))
	payload = binary.AppendUvarint(payload, uint64(len(dict)))
	payload = append(payload, defs...)
	payload = binary.AppendUvarint(payload, uint64(len(batch)))
	for _, id := range ids {
		payload = binary.AppendUvarint(payload, id)
	}
	return payload
}

// DecodeBatch decodes a payload produced by EncodeBatch. It rejects
// payloads that reference terms they do not define — such a frame was
// encoded against context the receiver does not have.
func DecodeBatch(payload []byte) ([]rdf.Triple, error) {
	_, batch, err := decodeRecord(payload, nil)
	return batch, err
}
