package compute

import (
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizeAndCollect(t *testing.T) {
	e := NewEngine(4)
	d := Parallelize(e, ints(100))
	got := d.Collect()
	if len(got) != 100 {
		t.Fatalf("Collect len = %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order not preserved at %d: %d", i, v)
		}
	}
	if d.Count() != 100 {
		t.Errorf("Count = %d", d.Count())
	}
	if d.NumPartitions() < 1 || d.NumPartitions() > 4 {
		t.Errorf("NumPartitions = %d", d.NumPartitions())
	}
}

func TestEmptyDataset(t *testing.T) {
	e := NewEngine(4)
	d := Parallelize(e, []int{})
	if d.Count() != 0 {
		t.Errorf("Count = %d", d.Count())
	}
	if _, ok := Reduce(d, func(a, b int) int { return a + b }); ok {
		t.Error("Reduce on empty dataset reported ok")
	}
}

func TestMapFilter(t *testing.T) {
	e := NewEngine(4)
	d := Parallelize(e, ints(1000))
	squares := Map(d, func(x int) int { return x * x })
	evens := Filter(squares, func(x int) bool { return x%2 == 0 })
	got := evens.Collect()
	want := 0
	for i := 0; i < 1000; i++ {
		if (i*i)%2 == 0 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("filtered = %d, want %d", len(got), want)
	}
}

func TestFlatMap(t *testing.T) {
	e := NewEngine(2)
	d := Parallelize(e, []string{"a b", "c", "d e f"})
	words := FlatMap(d, func(s string) []string {
		var out []string
		start := 0
		for i := 0; i <= len(s); i++ {
			if i == len(s) || s[i] == ' ' {
				if i > start {
					out = append(out, s[start:i])
				}
				start = i + 1
			}
		}
		return out
	})
	if words.Count() != 6 {
		t.Fatalf("words = %v", words.Collect())
	}
}

func TestReduce(t *testing.T) {
	e := NewEngine(8)
	d := Parallelize(e, ints(101)) // sum 0..100 = 5050
	sum, ok := Reduce(d, func(a, b int) int { return a + b })
	if !ok || sum != 5050 {
		t.Fatalf("Reduce = %d, %v", sum, ok)
	}
}

func TestReduceByKey(t *testing.T) {
	e := NewEngine(4)
	var pairs []KV[string, int]
	for i := 0; i < 300; i++ {
		pairs = append(pairs, KV[string, int]{K: []string{"a", "b", "c"}[i%3], V: 1})
	}
	d := Parallelize(e, pairs)
	counts := ReduceByKey(d, func(a, b int) int { return a + b }).Collect()
	if len(counts) != 3 {
		t.Fatalf("keys = %d: %v", len(counts), counts)
	}
	for _, kv := range counts {
		if kv.V != 100 {
			t.Errorf("count[%s] = %d, want 100", kv.K, kv.V)
		}
	}
}

func TestWordCountPipeline(t *testing.T) {
	// The canonical Spark example end to end.
	e := NewEngine(4)
	docs := []string{"the cat", "the dog", "the cat and the dog"}
	d := Parallelize(e, docs)
	words := FlatMap(d, func(s string) []string {
		var out []string
		start := 0
		for i := 0; i <= len(s); i++ {
			if i == len(s) || s[i] == ' ' {
				if i > start {
					out = append(out, s[start:i])
				}
				start = i + 1
			}
		}
		return out
	})
	pairs := Map(words, func(w string) KV[string, int] { return KV[string, int]{w, 1} })
	counts := ReduceByKey(pairs, func(a, b int) int { return a + b }).Collect()
	got := map[string]int{}
	for _, kv := range counts {
		got[kv.K] = kv.V
	}
	want := map[string]int{"the": 4, "cat": 2, "dog": 2, "and": 1}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("count[%s] = %d, want %d", k, got[k], v)
		}
	}
}

func TestForeach(t *testing.T) {
	e := NewEngine(4)
	d := Parallelize(e, ints(500))
	var total atomic.Int64
	d.Foreach(func(x int) { total.Add(int64(x)) })
	if total.Load() != 124750 {
		t.Errorf("Foreach sum = %d", total.Load())
	}
}

func TestLaziness(t *testing.T) {
	e := NewEngine(2)
	var calls atomic.Int32
	d := Parallelize(e, ints(10))
	mapped := Map(d, func(x int) int {
		calls.Add(1)
		return x
	})
	if calls.Load() != 0 {
		t.Fatal("Map executed eagerly")
	}
	mapped.Collect()
	if calls.Load() != 10 {
		t.Fatalf("calls = %d", calls.Load())
	}
}

func TestFromPartitions(t *testing.T) {
	e := NewEngine(2)
	d := FromPartitions(e, [][]int{{1, 2}, {3}, {}})
	if d.NumPartitions() != 3 {
		t.Errorf("NumPartitions = %d", d.NumPartitions())
	}
	if d.Count() != 3 {
		t.Errorf("Count = %d", d.Count())
	}
}

func TestReduceByKeyQuickProperty(t *testing.T) {
	// Property: ReduceByKey(+) over KV{k mod m, 1} gives per-key counts
	// that sum to n regardless of worker count.
	f := func(n uint16, workers uint8) bool {
		nn := int(n%500) + 1
		w := int(workers%8) + 1
		e := NewEngine(w)
		pairs := make([]KV[int, int], nn)
		for i := range pairs {
			pairs[i] = KV[int, int]{i % 7, 1}
		}
		counts := ReduceByKey(Parallelize(e, pairs), func(a, b int) int { return a + b }).Collect()
		total := 0
		for _, kv := range counts {
			total += kv.V
		}
		return total == nn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicCollectOrder(t *testing.T) {
	e := NewEngine(8)
	d := Map(Parallelize(e, ints(1000)), func(x int) int { return x * 2 })
	a := d.Collect()
	b := d.Collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Collect order not deterministic for narrow pipelines")
		}
	}
	if !sort.IntsAreSorted(a) {
		t.Error("narrow pipeline should preserve input order")
	}
}
