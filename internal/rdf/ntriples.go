package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// NewNTriplesScanner returns a line scanner over r with buffer limits
// sized for long WKT literals (16 MiB max line). ScanNTriples and the
// sharded bulk loader (internal/storage) both read through it, so the
// two paths accept exactly the same inputs.
func NewNTriplesScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return sc
}

// SkippableNTriplesLine reports whether a trimmed line carries no
// statement (blank or #-comment).
func SkippableNTriplesLine(line string) bool {
	return line == "" || strings.HasPrefix(line, "#")
}

// ScanNTriples parses a stream of N-Triples lines (the serialization
// Term.String/Triple.String produce and GeoTriples exports), calling fn
// for every parsed triple without materializing the whole set. Comment
// lines (#...) and blank lines are skipped. It returns the number of
// lines read; an error from fn aborts the scan and is returned verbatim.
func ScanNTriples(r io.Reader, fn func(Triple) error) (int, error) {
	sc := NewNTriplesScanner(r)
	lines := 0
	for sc.Scan() {
		lines++
		line := strings.TrimSpace(sc.Text())
		if SkippableNTriplesLine(line) {
			continue
		}
		t, err := parseNTripleLine(line)
		if err != nil {
			return lines, fmt.Errorf("rdf: line %d: %w", lines, err)
		}
		if err := fn(t); err != nil {
			return lines, err
		}
	}
	if err := sc.Err(); err != nil {
		return lines, fmt.Errorf("rdf: reading N-Triples: %w", err)
	}
	return lines, nil
}

// ReadNTriples is ScanNTriples materialized into a slice, returning the
// parsed triples and the number of lines read. Prefer ScanNTriples for
// large inputs.
func ReadNTriples(r io.Reader) ([]Triple, int, error) {
	var out []Triple
	lines, err := ScanNTriples(r, func(t Triple) error {
		out = append(out, t)
		return nil
	})
	if err != nil {
		return nil, lines, err
	}
	return out, lines, nil
}

// ParseTripleLine parses a single N-Triples statement. It is the
// per-line kernel of ScanNTriples, exported so sharded loaders
// (internal/storage's bulk loader) can parse line batches in parallel.
func ParseTripleLine(line string) (Triple, error) {
	return parseNTripleLine(strings.TrimSpace(line))
}

// parseNTripleLine parses one "S P O ." statement.
func parseNTripleLine(line string) (Triple, error) {
	if !strings.HasSuffix(line, ".") {
		return Triple{}, fmt.Errorf("missing terminating '.'")
	}
	body := strings.TrimSpace(line[:len(line)-1])

	s, rest, err := takeTerm(body)
	if err != nil {
		return Triple{}, fmt.Errorf("subject: %w", err)
	}
	p, rest, err := takeTerm(rest)
	if err != nil {
		return Triple{}, fmt.Errorf("predicate: %w", err)
	}
	o, rest, err := takeTerm(rest)
	if err != nil {
		return Triple{}, fmt.Errorf("object: %w", err)
	}
	if strings.TrimSpace(rest) != "" {
		return Triple{}, fmt.Errorf("trailing content %q", rest)
	}
	return Triple{S: s, P: p, O: o}, nil
}

// takeTerm consumes one term from the front of s, returning it and the
// remainder.
func takeTerm(s string) (Term, string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Term{}, "", fmt.Errorf("unexpected end of statement")
	}
	switch s[0] {
	case '<':
		end := strings.IndexByte(s, '>')
		if end < 0 {
			return Term{}, "", fmt.Errorf("unterminated IRI")
		}
		return NewIRI(s[1:end]), s[end+1:], nil
	case '_':
		if !strings.HasPrefix(s, "_:") {
			return Term{}, "", fmt.Errorf("bad blank node")
		}
		end := 2
		for end < len(s) && s[end] != ' ' && s[end] != '\t' {
			end++
		}
		return NewBlank(s[2:end]), s[end:], nil
	case '"':
		// find the closing quote, honouring backslash escapes
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return Term{}, "", fmt.Errorf("unterminated literal")
		}
		// delimit the full literal including any @lang or ^^<dt> suffix
		rest := s[end+1:]
		suffixEnd := 0
		if strings.HasPrefix(rest, "@") {
			for suffixEnd < len(rest) && rest[suffixEnd] != ' ' && rest[suffixEnd] != '\t' {
				suffixEnd++
			}
		} else if strings.HasPrefix(rest, "^^<") {
			close := strings.IndexByte(rest, '>')
			if close < 0 {
				return Term{}, "", fmt.Errorf("unterminated datatype IRI")
			}
			suffixEnd = close + 1
		}
		t, err := ParseTerm(s[:end+1] + rest[:suffixEnd])
		if err != nil {
			return Term{}, "", err
		}
		return t, rest[suffixEnd:], nil
	default:
		return Term{}, "", fmt.Errorf("cannot parse term starting at %q", truncateStr(s, 20))
	}
}

func truncateStr(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// LoadNTriples streams N-Triples from r straight into the store,
// returning the number of triples read. If a journal is attached, a
// batch is sealed every 4096 triples and at the end, so the load is
// durable when the call returns. On error, triples parsed before the
// offending line remain in the store (and journaled).
func (s *Store) LoadNTriples(r io.Reader) (int, error) {
	const loadBatch = 4096
	n := 0
	_, err := ScanNTriples(r, func(t Triple) error {
		s.AddTriple(t)
		n++
		if n%loadBatch == 0 {
			return s.CommitJournal()
		}
		return nil
	})
	if cerr := s.CommitJournal(); err == nil {
		err = cerr
	}
	return n, err
}
