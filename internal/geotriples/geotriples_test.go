package geotriples

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/rdf"
)

const fieldsCSV = `id,crop,area_ha,wkt
1,wheat,12.5,"POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))"
2,maize,7.25,"POLYGON ((2 2, 3 2, 3 3, 2 3, 2 2))"
3,barley,3.1,"POINT (5 5)"
`

func fieldMapping() *Mapping {
	return &Mapping{
		SubjectTemplate: "http://extremeearth.eu/field/{id}",
		Class:           "http://extremeearth.eu/ontology#Field",
		POMs: []PredicateObjectMap{
			{Predicate: "http://extremeearth.eu/ontology#crop", Kind: ObjectIRI,
				Template: "http://extremeearth.eu/crop/{crop}"},
			{Predicate: "http://extremeearth.eu/ontology#areaHa", Kind: ObjectTyped,
				Column: "area_ha", Datatype: rdf.XSDDouble},
		},
		GeometryColumn: "wkt",
	}
}

func TestParseCSV(t *testing.T) {
	src, err := ParseCSV(strings.NewReader(fieldsCSV), "fields")
	if err != nil {
		t.Fatal(err)
	}
	if len(src.Columns) != 4 {
		t.Errorf("columns = %v", src.Columns)
	}
	if len(src.Records) != 3 {
		t.Fatalf("records = %d", len(src.Records))
	}
	if src.Records[0]["crop"] != "wheat" {
		t.Errorf("record[0][crop] = %q", src.Records[0]["crop"])
	}
}

func TestParseCSVBadHeader(t *testing.T) {
	if _, err := ParseCSV(strings.NewReader(""), "empty"); err == nil {
		t.Error("empty CSV accepted")
	}
}

func TestApplyMapping(t *testing.T) {
	src, err := ParseCSV(strings.NewReader(fieldsCSV), "fields")
	if err != nil {
		t.Fatal(err)
	}
	m := fieldMapping()
	triples, err := m.Apply(src.Records[0])
	if err != nil {
		t.Fatal(err)
	}
	// type + crop + area + hasGeometry + asWKT = 5
	if len(triples) != 5 {
		t.Fatalf("triples = %d, want 5: %v", len(triples), triples)
	}
	var sawType, sawWKT, sawCrop bool
	for _, tr := range triples {
		if tr.P.Value == rdf.RDFType && tr.O.Value == "http://extremeearth.eu/ontology#Field" {
			sawType = true
		}
		if tr.P.Value == rdf.GeoAsWKT && tr.O.IsGeometry() {
			sawWKT = true
		}
		if tr.P.Value == "http://extremeearth.eu/ontology#crop" &&
			tr.O == rdf.NewIRI("http://extremeearth.eu/crop/wheat") {
			sawCrop = true
		}
		if tr.S.Value != "http://extremeearth.eu/field/1" &&
			!strings.HasPrefix(tr.S.Value, "http://extremeearth.eu/field/1/") {
			t.Errorf("unexpected subject %s", tr.S)
		}
	}
	if !sawType || !sawWKT || !sawCrop {
		t.Errorf("missing expected triples: type=%v wkt=%v crop=%v", sawType, sawWKT, sawCrop)
	}
}

func TestTransformAll(t *testing.T) {
	src, _ := ParseCSV(strings.NewReader(fieldsCSV), "fields")
	triples, stats, err := Transform(src, fieldMapping())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 3 || stats.Errors != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if len(triples) != 15 {
		t.Errorf("triples = %d, want 15", len(triples))
	}
}

func TestTransformParallelMatchesSerial(t *testing.T) {
	// Build a larger synthetic source.
	var b strings.Builder
	b.WriteString("id,crop,area_ha,wkt\n")
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&b, "%d,crop%d,%d.5,\"POINT (%d %d)\"\n", i, i%7, i%40, i%100, i/100)
	}
	src, err := ParseCSV(strings.NewReader(b.String()), "big")
	if err != nil {
		t.Fatal(err)
	}
	m := fieldMapping()
	serial, s1, _ := TransformParallel(src, m, 1)
	parallel, s8, _ := TransformParallel(src, m, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("serial %d triples, parallel %d", len(serial), len(parallel))
	}
	if s1 != s8 {
		t.Errorf("stats differ: %+v vs %+v", s1, s8)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("triple %d differs: %v vs %v", i, serial[i], parallel[i])
		}
	}
}

func TestTransformRowErrorTolerance(t *testing.T) {
	src, _ := ParseCSV(strings.NewReader(
		"id,crop,area_ha,wkt\n1,wheat,1.0,\"POINT (0 0)\"\n2,maize,2.0,\"BROKEN\"\n"), "x")
	triples, stats, err := Transform(src, fieldMapping())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 1 {
		t.Errorf("Errors = %d, want 1", stats.Errors)
	}
	for _, tr := range triples {
		if strings.Contains(tr.S.Value, "/field/2") {
			t.Error("failed record leaked triples")
		}
	}
}

func TestTemplateErrors(t *testing.T) {
	m := &Mapping{SubjectTemplate: "http://x/{missing}"}
	if _, err := m.Apply(Record{"id": "1"}); err == nil {
		t.Error("missing column accepted")
	}
	m2 := &Mapping{SubjectTemplate: "http://x/{unterminated"}
	if _, err := m2.Apply(Record{}); err == nil {
		t.Error("unterminated placeholder accepted")
	}
}

func TestTemplateEscaping(t *testing.T) {
	m := &Mapping{SubjectTemplate: "http://x/{name}"}
	triples, err := m.Apply(Record{"name": "two words <x>"})
	if err != nil {
		t.Fatal(err)
	}
	_ = triples
	got, err := expandTemplate("http://x/{name}", Record{"name": "two words <x>"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "http://x/two%20words%20%3Cx%3E" {
		t.Errorf("escaped = %q", got)
	}
}

func TestMissingGeometryColumn(t *testing.T) {
	m := fieldMapping()
	_, err := m.Apply(Record{"id": "1", "crop": "wheat", "area_ha": "2"})
	if err == nil {
		t.Error("record without geometry accepted")
	}
}

func TestOptionalAttributeColumns(t *testing.T) {
	m := &Mapping{
		SubjectTemplate: "http://x/{id}",
		POMs: []PredicateObjectMap{
			{Predicate: "http://x/p", Kind: ObjectLiteral, Column: "absent"},
		},
	}
	triples, err := m.Apply(Record{"id": "1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 0 {
		t.Errorf("absent optional column emitted %v", triples)
	}
}

func TestLoadInto(t *testing.T) {
	src, _ := ParseCSV(strings.NewReader(fieldsCSV), "fields")
	st := rdf.NewStore()
	stats, err := LoadInto(st, src, fieldMapping(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != stats.Triples {
		t.Errorf("store has %d triples, stats say %d", st.Len(), stats.Triples)
	}
	// Query the loaded graph.
	res := st.Solve([]rdf.TriplePattern{
		{S: rdf.V("f"), P: rdf.T(rdf.NewIRI(rdf.RDFType)),
			O: rdf.T(rdf.NewIRI("http://extremeearth.eu/ontology#Field"))},
	})
	if len(res) != 3 {
		t.Errorf("loaded fields = %d, want 3", len(res))
	}
}

func TestWriteNTriples(t *testing.T) {
	src, _ := ParseCSV(strings.NewReader(fieldsCSV), "fields")
	triples, _, _ := Transform(src, fieldMapping())
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, triples); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(triples) {
		t.Errorf("lines = %d, triples = %d", len(lines), len(triples))
	}
	for _, l := range lines {
		if !strings.HasSuffix(l, " .") {
			t.Errorf("line missing terminator: %q", l)
		}
	}
}
