package storage

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"repro/internal/geom"
	"repro/internal/geostore"
	"repro/internal/rdf"
)

// BulkLoad streams N-Triples from r into st using a parallel pipeline:
// a producer shards raw lines into chunks, a worker pool parses each
// chunk (N-Triples grammar plus WKT geometry parsing, the two CPU-heavy
// stages), and a single writer applies the parsed chunks to the store —
// so dictionary encoding and index mutation stay single-threaded while
// parsing saturates the CPUs. If a journal is attached to the store the
// writer seals one WAL batch per chunk. It returns the number of
// triples loaded; the first parse error aborts the pipeline (triples
// from chunks already applied remain in the store).
func BulkLoad(r io.Reader, st *geostore.Store, workers int) (int, error) {
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	const chunkLines = 1024

	type rawChunk struct {
		base  int // line number of lines[0], for error messages
		lines []string
	}
	type parsedEntry struct {
		t    rdf.Triple
		g    geom.Geometry
		hasG bool
	}

	raws := make(chan rawChunk, workers)
	parsed := make(chan []parsedEntry, workers)
	stop := make(chan struct{})
	var stopOnce sync.Once
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stopOnce.Do(func() { close(stop) })
	}

	// Producer: shard input lines into chunks.
	go func() {
		defer close(raws)
		sc := rdf.NewNTriplesScanner(r)
		lines := make([]string, 0, chunkLines)
		base := 1
		lineNo := 0
		flush := func() bool {
			if len(lines) == 0 {
				return true
			}
			chunk := rawChunk{base: base, lines: lines}
			select {
			case raws <- chunk:
				lines = make([]string, 0, chunkLines)
				return true
			case <-stop:
				return false
			}
		}
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if rdf.SkippableNTriplesLine(line) {
				continue
			}
			if len(lines) == 0 {
				base = lineNo
			}
			lines = append(lines, line)
			if len(lines) == chunkLines {
				if !flush() {
					return
				}
			}
		}
		if err := sc.Err(); err != nil {
			fail(fmt.Errorf("storage: bulk load read: %w", err))
			return
		}
		flush()
	}()

	// Workers: parse line chunks (triples + WKT) in parallel.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chunk := range raws {
				entries := make([]parsedEntry, 0, len(chunk.lines))
				for i, line := range chunk.lines {
					t, err := rdf.ParseTripleLine(line)
					if err != nil {
						fail(fmt.Errorf("storage: bulk load: near line %d: %w", chunk.base+i, err))
						return
					}
					e := parsedEntry{t: t}
					if t.O.IsGeometry() {
						g, err := geom.ParseWKT(t.O.Value)
						if err != nil {
							fail(fmt.Errorf("storage: bulk load: near line %d: %w", chunk.base+i, err))
							return
						}
						e.g, e.hasG = g, true
					}
					entries = append(entries, e)
				}
				select {
				case parsed <- entries:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(parsed)
	}()

	// Single writer: register geometries, apply triples, seal batches.
	n := 0
	for entries := range parsed {
		errMu.Lock()
		aborted := firstErr != nil
		errMu.Unlock()
		if aborted {
			continue // drain
		}
		for _, e := range entries {
			if e.hasG {
				st.RegisterGeometry(e.t.O, e.g)
			}
			if err := st.Add(e.t.S, e.t.P, e.t.O); err != nil {
				fail(err)
				break
			}
			n++
		}
		if err := st.RDF().CommitJournal(); err != nil {
			fail(err)
		}
	}
	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	return n, err
}
