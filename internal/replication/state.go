package replication

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/storage"
	"repro/internal/storage/vfs"
)

// The REPLICA file in a replica's data directory persists its applied
// cursor and the highest epoch it has observed, via tmp + rename +
// dirsync like every other durable state in the system. A stale cursor
// is safe — resuming earlier just re-delivers batches the store
// deduplicates (the MANIFEST separately double-books the epoch fence).
// A missing or corrupt file is not: the WAL's beginning moves as the
// primary compacts, so "restart from the beginning" can silently skip
// the pruned prefix. NewReplica therefore refuses to run without a
// loadable state file and demands a re-bootstrap instead.
const (
	stateName  = "REPLICA"
	stateMagic = "EEREPL01"
)

// State is the replica's durable stream position.
type State struct {
	Epoch  uint64
	Cursor storage.Cursor
}

// loadState reads dir's REPLICA file. A missing file returns ok=false,
// and so does a corrupt one: trusting a damaged cursor could skip
// records, so the caller treats both as "no position" and requires a
// re-bootstrap.
func loadState(fsys vfs.FS, dir string) (State, bool, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, stateName))
	if err != nil {
		if os.IsNotExist(err) {
			return State{}, false, nil
		}
		return State{}, false, fmt.Errorf("replication: read state: %w", err)
	}
	if len(data) < len(stateMagic)+4 || string(data[:len(stateMagic)]) != stateMagic {
		return State{}, false, nil
	}
	body := data[len(stateMagic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return State{}, false, nil
	}
	var s State
	var fields [3]uint64
	rest := body
	for i := range fields {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return State{}, false, nil
		}
		fields[i] = v
		rest = rest[n:]
	}
	s.Epoch = fields[0]
	s.Cursor = storage.Cursor{Seq: int(fields[1]), Offset: int64(fields[2])}
	return s, true, nil
}

// saveState durably persists s into dir's REPLICA file.
func saveState(fsys vfs.FS, dir string, s State) error {
	body := binary.AppendUvarint(nil, s.Epoch)
	body = binary.AppendUvarint(body, uint64(s.Cursor.Seq))
	body = binary.AppendUvarint(body, uint64(s.Cursor.Offset))
	buf := make([]byte, 0, len(stateMagic)+len(body)+4)
	buf = append(buf, stateMagic...)
	buf = append(buf, body...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))

	path := filepath.Join(dir, stateName)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("replication: write state: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		closeRemove(fsys, f, tmp)
		return fmt.Errorf("replication: write state: %w", err)
	}
	if err := f.Sync(); err != nil {
		closeRemove(fsys, f, tmp)
		return fmt.Errorf("replication: sync state: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("replication: close state: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("replication: publish state: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("replication: sync state directory: %w", err)
	}
	return nil
}

// closeRemove abandons a temp file on an error path; the original
// error stays primary.
func closeRemove(fsys vfs.FS, f vfs.File, tmp string) {
	if err := f.Close(); err != nil {
		return // the rename never happens; the .tmp is inert either way
	}
	if err := fsys.Remove(tmp); err != nil {
		return
	}
}
