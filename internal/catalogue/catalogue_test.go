package catalogue

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/sentinel"
)

func TestAddProductAndSearch(t *testing.T) {
	c := New()
	extent := geom.NewRect(0, 0, 1000, 1000)
	products := sentinel.GenerateProducts(100, 1, extent)
	for _, p := range products {
		if err := c.AddProduct(p); err != nil {
			t.Fatal(err)
		}
	}
	c.Build()
	if c.Len() == 0 {
		t.Fatal("catalogue empty")
	}
	window := geom.NewRect(0, 0, 400, 400)
	year := 2018
	got, err := c.ProductsInYearOverArea(year, window)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, p := range products {
		if p.SensingTime.Year() == year && p.Footprint.Intersects(window) {
			want++
		}
	}
	if got != want {
		t.Fatalf("ProductsInYearOverArea = %d, want %d", got, want)
	}
}

// TestIcebergFlagshipQuery reproduces the paper's C4 example: "How many
// icebergs were embedded in the Norske Øer Ice Barrier at its maximum
// extent in 2017?"
func TestIcebergFlagshipQuery(t *testing.T) {
	c := New()
	barrier := geom.Polygon{Shell: geom.Ring{
		{X: 100, Y: 100}, {X: 500, Y: 120}, {X: 520, Y: 480}, {X: 90, Y: 460},
	}}
	if err := c.AddIceBarrier("NorskeOer", 2017, barrier); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	inside, outside, wrongYear := 0, 0, 0
	for i := 0; i < 200; i++ {
		p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		year := 2016 + rng.Intn(3) // 2016..2018
		if err := c.AddIceberg(fmt.Sprintf("b%d", i), year, p); err != nil {
			t.Fatal(err)
		}
		if geom.Contains(barrier, p) {
			if year == 2017 {
				inside++
			} else {
				wrongYear++
			}
		} else {
			outside++
		}
	}
	c.Build()
	got, err := c.IcebergsEmbedded("NorskeOer", 2017)
	if err != nil {
		t.Fatal(err)
	}
	if got != inside {
		t.Fatalf("IcebergsEmbedded = %d, want %d (outside=%d wrongYear=%d)",
			got, inside, outside, wrongYear)
	}
}

func TestIcebergQueryUnknownBarrier(t *testing.T) {
	c := New()
	if _, err := c.IcebergsEmbedded("Nowhere", 2017); err == nil {
		t.Fatal("unknown barrier should error")
	}
}

func TestCropFieldKnowledge(t *testing.T) {
	c := New()
	if err := c.AddCropField("f1", "wheat", 12.5, geom.NewRect(0, 0, 100, 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddCropField("f2", "maize", 8.0, geom.NewRect(200, 200, 300, 300)); err != nil {
		t.Fatal(err)
	}
	c.Build()
	res, err := c.Query(fmt.Sprintf(`
		PREFIX ee: <%s>
		SELECT ?f ?crop WHERE {
			?f a ee:CropField .
			?f ee:cropType ?crop .
			FILTER(?crop = "wheat")
		}`, NS))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("wheat fields = %d", res.Len())
	}
}

func TestSemanticVsConventionalParity(t *testing.T) {
	// The semantic catalogue must agree with the conventional archive on
	// the classic area+date search.
	arch := sentinel.NewArchive()
	cat := New()
	extent := geom.NewRect(0, 0, 1000, 1000)
	products := sentinel.GenerateProducts(150, 5, extent)
	for _, p := range products {
		if err := arch.Ingest(p); err != nil {
			t.Fatal(err)
		}
		if err := cat.AddProduct(p); err != nil {
			t.Fatal(err)
		}
	}
	cat.Build()
	window := geom.NewRect(200, 200, 700, 700)
	from := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	to := time.Date(2018, 12, 31, 23, 59, 59, 0, time.UTC)
	conventional := arch.Query(window, from, to)
	semantic, err := cat.ProductsInYearOverArea(2018, window)
	if err != nil {
		t.Fatal(err)
	}
	if len(conventional) != semantic {
		t.Fatalf("conventional = %d, semantic = %d", len(conventional), semantic)
	}
}

func TestLookupLatencyGrowsSublinearly(t *testing.T) {
	// E10 sanity: query over 4x more records should cost far less than 4x
	// (indexed). We assert only correctness of counts here; timing is the
	// bench's job.
	for _, n := range []int{200, 800} {
		c := New()
		for _, p := range sentinel.GenerateProducts(n, 7, geom.NewRect(0, 0, 1000, 1000)) {
			if err := c.AddProduct(p); err != nil {
				t.Fatal(err)
			}
		}
		c.Build()
		got, err := c.ProductsInYearOverArea(2018, geom.NewRect(0, 0, 100, 100))
		if err != nil {
			t.Fatal(err)
		}
		if got < 0 || got > n {
			t.Fatalf("count out of range: %d", got)
		}
	}
}
