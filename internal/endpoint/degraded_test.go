package endpoint_test

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/endpoint"
	"repro/internal/sparql"
)

// panicEngine is a deliberately broken engine: every evaluation
// panics, standing in for a query that trips a bug deep in the
// executor. The endpoint must answer 500 and keep running — the panic
// happens on the evaluation goroutine, where an unrecovered panic
// would kill the whole process, not just the request.
type panicEngine struct{}

func (panicEngine) Query(q *sparql.Query) (*sparql.Results, error) {
	panic("executor bug: nil morsel")
}
func (panicEngine) Version() uint64 { return 0 }
func (panicEngine) Len() int        { return 0 }

func TestQueryPanicRecovered(t *testing.T) {
	srv := endpoint.New(panicEngine{}, endpoint.Config{})

	for i := 0; i < 2; i++ { // twice: the first panic must not wedge anything
		rec := get(t, srv, sparqlURL("SELECT ?s WHERE { ?s ?p ?o }", ""), nil)
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("panicking engine: status = %d, want 500", rec.Code)
		}
		rid := rec.Header().Get("X-Request-ID")
		if rid == "" {
			t.Fatal("500 response carries no request ID")
		}
		if body := rec.Body.String(); !strings.Contains(body, rid) {
			t.Fatalf("body %q does not reference request ID %q", body, rid)
		}
		if body := rec.Body.String(); strings.Contains(body, "morsel") {
			t.Fatalf("panic value leaked to the client: %q", body)
		}
	}

	// The process-level surfaces still work after the panics.
	if rec := get(t, srv, "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz after panic: status = %d", rec.Code)
	}
	rec := get(t, srv, "/metrics", nil)
	if !strings.Contains(rec.Body.String(), `sparql_query_errors_total{kind="panic"} 2`) {
		t.Fatalf("panic counter missing from metrics:\n%s", rec.Body.String())
	}
}

// panicLoader covers the handler-level recovery middleware: the panic
// fires on the request goroutine itself, inside handleLoad.
type panicLoader struct{}

func (panicLoader) LoadNTriples(r io.Reader) (int, error) { panic("loader bug") }

func TestLoadPanicRecovered(t *testing.T) {
	srv := endpoint.New(testStore(t), endpoint.Config{Loader: panicLoader{}, LoadToken: "s3cret"})
	rec := postLoad(srv, ntFeature(0, 1, 1), map[string]string{"Authorization": "Bearer s3cret"})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking loader: status = %d, want 500", rec.Code)
	}
	if body := rec.Body.String(); strings.Contains(body, "loader bug") {
		t.Fatalf("panic value leaked to the client: %q", body)
	}
	if rec := get(t, srv, "/metrics", nil); !strings.Contains(rec.Body.String(), `sparql_query_errors_total{kind="panic"} 1`) {
		t.Fatal("handler panic not counted")
	}
}

// TestDegradedServing pins the degraded-mode contract: queries keep
// answering 200, POST /load refuses with 503 + Retry-After, and
// /healthz reports the degraded status with its cause while staying
// 200 (reads still serve; draining them would widen the outage).
func TestDegradedServing(t *testing.T) {
	st := testStore(t)
	cause := errors.New("storage: WAL fsync failed: injected fault")
	srv := endpoint.New(st, endpoint.Config{
		Loader:    st,
		LoadToken: "s3cret",
		Degraded:  func() error { return cause },
	})

	rec := get(t, srv, sparqlURL(spatialQuery, ""), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("query on degraded store: status = %d, want 200", rec.Code)
	}

	rec = postLoad(srv, ntFeature(0, 1, 1), map[string]string{"Authorization": "Bearer s3cret"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("load on degraded store: status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("degraded 503 carries no Retry-After")
	}
	if !strings.Contains(rec.Body.String(), "read-only") {
		t.Fatalf("degraded 503 body does not explain: %q", rec.Body.String())
	}
	// Auth still gates before the degraded answer: no token, no detail.
	if rec := postLoad(srv, ntFeature(0, 1, 1), nil); rec.Code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated load on degraded store: status = %d, want 401", rec.Code)
	}

	rec = get(t, srv, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz on degraded store: status = %d, want 200", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"status":"degraded"`) || !strings.Contains(body, "fsync failed") {
		t.Fatalf("healthz = %q, want degraded status with cause", body)
	}
}
