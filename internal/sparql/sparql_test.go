package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func TestParseBasicSelect(t *testing.T) {
	q, err := Parse(`SELECT ?x ?y WHERE { ?x <http://example.org/knows> ?y . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Vars) != 2 || q.Vars[0] != "x" || q.Vars[1] != "y" {
		t.Errorf("Vars = %v", q.Vars)
	}
	if len(q.Patterns) != 1 {
		t.Fatalf("Patterns = %d", len(q.Patterns))
	}
	p := q.Patterns[0]
	if !p.S.IsVar() || p.S.Var != "x" {
		t.Errorf("S = %v", p.S)
	}
	if p.P.IsVar() || p.P.Term.Value != "http://example.org/knows" {
		t.Errorf("P = %v", p.P)
	}
}

func TestParsePrefixes(t *testing.T) {
	q, err := Parse(`
		PREFIX ex: <http://example.org/>
		SELECT ?x WHERE { ?x a ex:Person . }`)
	if err != nil {
		t.Fatal(err)
	}
	p := q.Patterns[0]
	if p.P.Term.Value != rdf.RDFType {
		t.Errorf("'a' should expand to rdf:type, got %v", p.P.Term)
	}
	if p.O.Term.Value != "http://example.org/Person" {
		t.Errorf("prefixed name expansion: %v", p.O.Term)
	}
}

func TestParseBuiltinPrefixes(t *testing.T) {
	q, err := Parse(`SELECT ?g WHERE { ?x geo:asWKT ?g . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0].P.Term.Value != rdf.GeoAsWKT {
		t.Errorf("geo: prefix = %v", q.Patterns[0].P.Term)
	}
}

func TestParseLiteralsAndModifiers(t *testing.T) {
	q, err := Parse(`
		PREFIX ex: <http://example.org/>
		SELECT DISTINCT ?x WHERE {
			?x ex:age ?age .
			?x ex:name "Alice" .
			FILTER(?age >= 21 && ?age < 65)
		}
		ORDER BY DESC ?age
		LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct {
		t.Error("DISTINCT not parsed")
	}
	if q.Limit != 5 {
		t.Errorf("Limit = %d", q.Limit)
	}
	if q.OrderBy != "age" || !q.OrderDesc {
		t.Errorf("OrderBy = %q desc=%v", q.OrderBy, q.OrderDesc)
	}
	if len(q.Filters) != 1 {
		t.Fatalf("Filters = %d", len(q.Filters))
	}
	if _, ok := q.Filters[0].(AndExpr); !ok {
		t.Errorf("filter type = %T", q.Filters[0])
	}
}

func TestParseTypedLiteral(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE { ?x geo:asWKT "POINT (1 2)"^^geo:wktLiteral . }`)
	if err != nil {
		t.Fatal(err)
	}
	o := q.Patterns[0].O.Term
	if o.Datatype != rdf.WKTLiteral || o.Value != "POINT (1 2)" {
		t.Errorf("typed literal = %v", o)
	}
}

func TestParseGeoFunction(t *testing.T) {
	q, err := Parse(`
		SELECT ?x WHERE {
			?x geo:asWKT ?wkt .
			FILTER(geof:sfIntersects(?wkt, "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))"^^geo:wktLiteral))
		}`)
	if err != nil {
		t.Fatal(err)
	}
	f, ok := q.Filters[0].(FuncExpr)
	if !ok {
		t.Fatalf("filter = %T", q.Filters[0])
	}
	if f.Name != FnSfIntersects {
		t.Errorf("function = %s", f.Name)
	}
	if len(f.Args) != 2 {
		t.Errorf("args = %d", len(f.Args))
	}
}

func TestParseSelectStar(t *testing.T) {
	q, err := Parse(`SELECT * WHERE { ?s ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Star {
		t.Error("Star not set")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT WHERE { ?s ?p ?o . }`,
		`SELECT ?x { ?s ?p ?o . }`,
		`SELECT ?x WHERE { ?s ?p }`,
		`SELECT ?x WHERE { ?s ?p ?o . `,
		`SELECT ?x WHERE { ?s unknownprefix:foo ?o . }`,
		`SELECT ?x WHERE { ?s ?p ?o . } LIMIT abc`,
		`SELECT ?x WHERE { ?s ?p ?o . FILTER( }`,
		`SELECT ?x WHERE { ?s ?p ?o . } trailing`,
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseComments(t *testing.T) {
	q, err := Parse(`
		# find everything
		SELECT ?s WHERE {
			?s ?p ?o . # triple pattern
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 1 {
		t.Errorf("patterns = %d", len(q.Patterns))
	}
}

func testStore() *rdf.Store {
	st := rdf.NewStore()
	ex := func(n string) rdf.Term { return rdf.NewIRI("http://example.org/" + n) }
	st.Add(ex("alice"), ex("age"), rdf.NewIntLiteral(30))
	st.Add(ex("bob"), ex("age"), rdf.NewIntLiteral(17))
	st.Add(ex("carol"), ex("age"), rdf.NewIntLiteral(45))
	st.Add(ex("alice"), ex("name"), rdf.NewLiteral("Alice"))

	// Geometries: alice at (0,0), bob at (10,10), carol at (100,100)
	st.Add(ex("alice"), rdf.NewIRI(rdf.GeoAsWKT), rdf.NewWKTLiteral("POINT (0 0)"))
	st.Add(ex("bob"), rdf.NewIRI(rdf.GeoAsWKT), rdf.NewWKTLiteral("POINT (10 10)"))
	st.Add(ex("carol"), rdf.NewIRI(rdf.GeoAsWKT), rdf.NewWKTLiteral("POINT (100 100)"))
	return st
}

func TestEvalNumericFilter(t *testing.T) {
	st := testStore()
	q := MustParse(`
		PREFIX ex: <http://example.org/>
		SELECT ?x WHERE { ?x ex:age ?age . FILTER(?age > 18) }`)
	res, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2 (alice, carol): %s", res.Len(), res)
	}
}

func TestEvalSpatialFilter(t *testing.T) {
	st := testStore()
	q := MustParse(`
		SELECT ?x WHERE {
			?x geo:asWKT ?g .
			FILTER(geof:sfIntersects(?g, "POLYGON ((-5 -5, 15 -5, 15 15, -5 15, -5 -5))"^^geo:wktLiteral))
		}`)
	res, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2 (alice, bob)", res.Len())
	}
	for _, row := range res.Rows {
		if strings.Contains(row["x"].Value, "carol") {
			t.Error("carol should be outside the window")
		}
	}
}

func TestEvalDistanceFilter(t *testing.T) {
	st := testStore()
	q := MustParse(`
		SELECT ?x WHERE {
			?x geo:asWKT ?g .
			FILTER(geof:distance(?g, "POINT (0 0)"^^geo:wktLiteral) < 20)
		}`)
	res, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Len())
	}
}

func TestEvalOrderLimit(t *testing.T) {
	st := testStore()
	q := MustParse(`
		PREFIX ex: <http://example.org/>
		SELECT ?x ?age WHERE { ?x ex:age ?age . } ORDER BY DESC ?age LIMIT 2`)
	res, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2", res.Len())
	}
	if v, _ := res.Rows[0]["age"].Int(); v != 45 {
		t.Errorf("first age = %d, want 45", v)
	}
	if v, _ := res.Rows[1]["age"].Int(); v != 30 {
		t.Errorf("second age = %d, want 30", v)
	}
}

func TestEvalOrderAscending(t *testing.T) {
	st := testStore()
	q := MustParse(`
		PREFIX ex: <http://example.org/>
		SELECT ?age WHERE { ?x ex:age ?age . } ORDER BY ?age`)
	res, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	var prev int64 = -1
	for _, row := range res.Rows {
		v, _ := row["age"].Int()
		if v < prev {
			t.Fatalf("rows not ascending: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestEvalDistinct(t *testing.T) {
	st := rdf.NewStore()
	ex := func(n string) rdf.Term { return rdf.NewIRI("http://example.org/" + n) }
	st.Add(ex("a"), ex("p"), ex("x"))
	st.Add(ex("b"), ex("p"), ex("x"))
	q := MustParse(`PREFIX ex: <http://example.org/> SELECT DISTINCT ?o WHERE { ?s ex:p ?o . }`)
	res, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("distinct rows = %d, want 1", res.Len())
	}
}

func TestEvalBooleanOps(t *testing.T) {
	st := testStore()
	q := MustParse(`
		PREFIX ex: <http://example.org/>
		SELECT ?x WHERE { ?x ex:age ?age . FILTER(?age < 20 || ?age > 40) }`)
	res, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2 (bob, carol)", res.Len())
	}
	qNot := MustParse(`
		PREFIX ex: <http://example.org/>
		SELECT ?x WHERE { ?x ex:age ?age . FILTER(!(?age < 20)) }`)
	res, err = Eval(st, qNot)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("NOT rows = %d, want 2", res.Len())
	}
}

func TestEvalStringEquality(t *testing.T) {
	st := testStore()
	q := MustParse(`
		PREFIX ex: <http://example.org/>
		SELECT ?x WHERE { ?x ex:name ?n . FILTER(?n = "Alice") }`)
	res, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d, want 1", res.Len())
	}
}

func TestExtractSpatialFilters(t *testing.T) {
	q := MustParse(`
		SELECT ?x WHERE {
			?x geo:asWKT ?g .
			FILTER(geof:sfIntersects(?g, "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"^^geo:wktLiteral))
		}`)
	sf := ExtractSpatialFilters(q)
	if len(sf) != 1 {
		t.Fatalf("filters = %d, want 1", len(sf))
	}
	if sf[0].Var != "g" || sf[0].Fn != FnSfIntersects {
		t.Errorf("filter = %+v", sf[0])
	}
	if sf[0].Window.Max.X != 10 {
		t.Errorf("window = %v", sf[0].Window)
	}
}

func TestExtractSpatialFiltersSwappedArgs(t *testing.T) {
	q := MustParse(`
		SELECT ?x WHERE {
			?x geo:asWKT ?g .
			FILTER(geof:sfContains("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"^^geo:wktLiteral, ?g))
		}`)
	sf := ExtractSpatialFilters(q)
	if len(sf) != 1 {
		t.Fatalf("filters = %d, want 1", len(sf))
	}
	// contains(const, ?g) means ?g within const
	if sf[0].Fn != FnSfWithin {
		t.Errorf("Fn = %s, want sfWithin", sf[0].Fn)
	}
}

func TestExtractIgnoresDisjunctions(t *testing.T) {
	q := MustParse(`
		SELECT ?x WHERE {
			?x geo:asWKT ?g .
			FILTER(geof:sfIntersects(?g, "POINT (0 0)"^^geo:wktLiteral) || ?x = ?g)
		}`)
	if sf := ExtractSpatialFilters(q); len(sf) != 0 {
		t.Errorf("spatial filter extracted from OR branch: %v", sf)
	}
}

func TestEvalUnknownFunction(t *testing.T) {
	st := testStore()
	q := MustParse(`
		SELECT ?x WHERE { ?x geo:asWKT ?g . FILTER(geof:sfCrosses(?g, ?g)) }`)
	res, err := Eval(st, q)
	// Unknown functions reject all rows (SPARQL error semantics).
	if err != nil {
		t.Fatalf("Eval returned hard error: %v", err)
	}
	if res.Len() != 0 {
		t.Errorf("rows = %d, want 0", res.Len())
	}
}

func TestQueryString(t *testing.T) {
	q := MustParse(`SELECT DISTINCT ?x WHERE { ?x ?p ?o . FILTER(?x = ?o) } LIMIT 3`)
	s := q.String()
	for _, want := range []string{"SELECT", "DISTINCT", "?x", "FILTER", "LIMIT 3"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

func TestResultsHelpers(t *testing.T) {
	st := testStore()
	q := MustParse(`PREFIX ex: <http://example.org/> SELECT ?x ?age WHERE { ?x ex:age ?age . }`)
	res, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	col := res.Column("age")
	if len(col) != 3 {
		t.Errorf("Column len = %d", len(col))
	}
	if !strings.Contains(res.String(), "age") {
		t.Error("String() missing header")
	}
}

func TestParseCountAggregate(t *testing.T) {
	q, err := Parse(`SELECT (COUNT(?x) AS ?n) WHERE { ?x ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggregates) != 1 {
		t.Fatalf("aggregates = %d", len(q.Aggregates))
	}
	a := q.Aggregates[0]
	if a.Fn != "COUNT" || a.Var != "x" || a.As != "n" {
		t.Errorf("aggregate = %+v", a)
	}
	qs, err := Parse(`SELECT (COUNT(*) AS ?total) WHERE { ?s ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Aggregates[0].Var != "" {
		t.Errorf("COUNT(*) Var = %q", qs.Aggregates[0].Var)
	}
}

func TestParseAggregateErrors(t *testing.T) {
	bad := []string{
		`SELECT (SUM(?x) AS ?n) WHERE { ?x ?p ?o . }`,
		`SELECT (COUNT ?x AS ?n) WHERE { ?x ?p ?o . }`,
		`SELECT (COUNT(?x) ?n) WHERE { ?x ?p ?o . }`,
		`SELECT (COUNT(?x) AS ?n WHERE { ?x ?p ?o . }`,
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestEvalCount(t *testing.T) {
	st := testStore()
	q := MustParse(`
		PREFIX ex: <http://example.org/>
		SELECT (COUNT(?x) AS ?n) WHERE { ?x ex:age ?age . FILTER(?age > 18) }`)
	res, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d", res.Len())
	}
	n, err := res.Rows[0]["n"].Int()
	if err != nil || n != 2 {
		t.Errorf("count = %d, %v", n, err)
	}
}

func TestEvalCountEmpty(t *testing.T) {
	st := testStore()
	q := MustParse(`
		PREFIX ex: <http://example.org/>
		SELECT (COUNT(?x) AS ?n) WHERE { ?x ex:age ?age . FILTER(?age > 1000) }`)
	res, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("rows = %d (COUNT of empty set must be one zero row)", res.Len())
	}
	if n, _ := res.Rows[0]["n"].Int(); n != 0 {
		t.Errorf("count = %d, want 0", n)
	}
}

func TestEvalCountGroupBy(t *testing.T) {
	st := rdf.NewStore()
	ex := func(n string) rdf.Term { return rdf.NewIRI("http://example.org/" + n) }
	st.Add(ex("a"), ex("type"), ex("T1"))
	st.Add(ex("b"), ex("type"), ex("T1"))
	st.Add(ex("c"), ex("type"), ex("T2"))
	q := MustParse(`
		PREFIX ex: <http://example.org/>
		SELECT ?t (COUNT(?x) AS ?n) WHERE { ?x ex:type ?t . }
		GROUP BY ?t ORDER BY DESC ?n`)
	res, err := Eval(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("groups = %d", res.Len())
	}
	if n, _ := res.Rows[0]["n"].Int(); n != 2 {
		t.Errorf("largest group count = %d", n)
	}
	if res.Rows[0]["t"].Value != "http://example.org/T1" {
		t.Errorf("largest group = %v", res.Rows[0]["t"])
	}
}
