package sparql

import (
	"fmt"
	"strings"

	"repro/internal/geom"
	"repro/internal/rdf"
)

// Results holds the solutions of a SELECT query.
type Results struct {
	// Vars is the projection in declaration order.
	Vars []string
	// Rows maps variable name to bound term, one map per solution.
	Rows []map[string]rdf.Term
}

// Len returns the number of result rows.
func (r *Results) Len() int { return len(r.Rows) }

// Column returns the terms bound to the named variable across all rows.
func (r *Results) Column(name string) []rdf.Term {
	out := make([]rdf.Term, 0, len(r.Rows))
	for _, row := range r.Rows {
		out = append(out, row[name])
	}
	return out
}

// String renders a compact table for logs and the example programs.
func (r *Results) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Vars, "\t") + "\n")
	for _, row := range r.Rows {
		for i, v := range r.Vars {
			if i > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(row[v].String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Eval evaluates the query against the store with the compiled
// slot-based streaming executor: one planning pass resolves variables to
// slots and constants to dictionary IDs, pushes filters down to the
// earliest pattern that binds them, and streams flat slot rows through
// the join pipeline. Stores that maintain spatial indexes use their own
// accelerated seeding (see internal/geostore) on top of the same
// executor; callers that evaluate one query repeatedly should compile
// once with CompilePlan and reuse the plan.
func Eval(st *rdf.Store, q *Query) (*Results, error) {
	p, err := CompilePlan(st, q, PlanOpts{})
	if err != nil {
		return nil, err
	}
	return p.Execute()
}

// EvalLegacy is the original map-based nested-loop evaluator, retained
// as the reference oracle for differential testing of the slot executor
// and as the ModeNaive baseline of the E1/E2 experiments. Filters are
// evaluated by the generic expression evaluator over full bindings, after
// the complete join has been built.
func EvalLegacy(st *rdf.Store, q *Query) (*Results, error) {
	filter := func(s *rdf.Store, b rdf.Binding) bool {
		for _, f := range q.Filters {
			v, err := evalExpr(s, f, b)
			if err != nil {
				// Errors in FILTER mean "solution rejected" in SPARQL
				// semantics.
				return false
			}
			if !v.Bool() {
				return false
			}
		}
		return true
	}
	bindings := st.Solve(q.Patterns, filter)
	res, err := Project(st, q, bindings)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Project applies SELECT projection, DISTINCT, ORDER BY and LIMIT to raw
// bindings, producing decoded result rows.
func Project(st *rdf.Store, q *Query, bindings []rdf.Binding) (*Results, error) {
	if len(q.Aggregates) > 0 {
		return projectAggregates(st, q, bindings)
	}
	// Copy: appending into q.Vars' spare capacity in the SELECT * path
	// could mutate a Query shared across goroutines or cached by text.
	vars := append([]string(nil), q.Vars...)
	if q.Star {
		seen := map[string]bool{}
		for _, p := range q.Patterns {
			for _, v := range p.Vars() {
				if !seen[v] {
					seen[v] = true
					vars = append(vars, v)
				}
			}
		}
	}
	res := &Results{Vars: vars}
	dedup := map[string]bool{}
	for _, b := range bindings {
		row := make(map[string]rdf.Term, len(vars))
		var key strings.Builder
		for _, v := range vars {
			if id, ok := b[v]; ok {
				row[v] = st.Dict().MustDecode(id)
			}
			if q.Distinct {
				key.WriteString(row[v].String())
				key.WriteByte('\x00')
			}
		}
		if q.Distinct {
			k := key.String()
			if dedup[k] {
				continue
			}
			dedup[k] = true
		}
		res.Rows = append(res.Rows, row)
	}
	if q.OrderBy != "" {
		// SortRows precomputes one key per row instead of re-parsing
		// numeric literals on every comparison.
		SortRows(res.Rows, q.OrderBy, q.OrderDesc)
	}
	ApplyOffsetLimit(res, q)
	return res, nil
}

// ApplyOffsetLimit drops the first Offset rows and truncates to Limit
// (solution-modifier order: OFFSET before LIMIT). It is shared by the
// evaluators here and by stores that merge partial results themselves
// (the partitioned geostore).
func ApplyOffsetLimit(res *Results, q *Query) {
	if q.Offset > 0 {
		if q.Offset >= len(res.Rows) {
			res.Rows = res.Rows[:0]
		} else {
			res.Rows = res.Rows[q.Offset:]
		}
	}
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
}

// projectAggregates evaluates COUNT aggregates, grouped by GroupBy when
// set, otherwise over one global group.
func projectAggregates(st *rdf.Store, q *Query, bindings []rdf.Binding) (*Results, error) {
	type group struct {
		key    rdf.ID
		counts []int
	}
	var vars []string
	if q.GroupBy != "" {
		vars = append(vars, q.GroupBy)
	}
	for _, a := range q.Aggregates {
		vars = append(vars, a.As)
	}
	res := &Results{Vars: vars}

	groups := map[rdf.ID]*group{}
	var order []rdf.ID
	for _, b := range bindings {
		var key rdf.ID
		if q.GroupBy != "" {
			id, ok := b[q.GroupBy]
			if !ok {
				continue
			}
			key = id
		}
		g, ok := groups[key]
		if !ok {
			g = &group{key: key, counts: make([]int, len(q.Aggregates))}
			groups[key] = g
			order = append(order, key)
		}
		for i, a := range q.Aggregates {
			if a.Var == "" {
				g.counts[i]++
				continue
			}
			if _, bound := b[a.Var]; bound {
				g.counts[i]++
			}
		}
	}
	if q.GroupBy == "" && len(groups) == 0 {
		// COUNT over the empty solution set is a single zero row.
		groups[0] = &group{counts: make([]int, len(q.Aggregates))}
		order = append(order, 0)
	}
	for _, key := range order {
		g := groups[key]
		row := make(map[string]rdf.Term, len(vars))
		if q.GroupBy != "" {
			row[q.GroupBy] = st.Dict().MustDecode(g.key)
		}
		for i, a := range q.Aggregates {
			row[a.As] = rdf.NewIntLiteral(int64(g.counts[i]))
		}
		res.Rows = append(res.Rows, row)
	}
	if q.OrderBy != "" {
		SortRows(res.Rows, q.OrderBy, q.OrderDesc)
	}
	ApplyOffsetLimit(res, q)
	return res, nil
}

// EvalFilter evaluates a single filter expression to its effective boolean
// value under the binding. It is the hook used by spatially indexed stores
// that plan filters themselves. Errors follow SPARQL semantics: the caller
// should treat an error as "solution rejected".
func EvalFilter(st *rdf.Store, e Expr, b rdf.Binding) (bool, error) {
	v, err := evalExpr(st, e, b)
	if err != nil {
		return false, err
	}
	return v.Bool(), nil
}

// Value is the result of evaluating a filter expression: a term, a number,
// or a boolean.
type Value struct {
	Term  rdf.Term
	Num   float64
	IsNum bool
	B     bool
	IsB   bool
}

// Bool coerces the value to boolean (SPARQL effective boolean value).
func (v Value) Bool() bool {
	switch {
	case v.IsB:
		return v.B
	case v.IsNum:
		return v.Num != 0
	default:
		return v.Term.Value != ""
	}
}

func boolValue(b bool) Value   { return Value{B: b, IsB: true} }
func numValue(f float64) Value { return Value{Num: f, IsNum: true} }

// evalExpr evaluates a filter expression under a binding.
func evalExpr(st *rdf.Store, e Expr, b rdf.Binding) (Value, error) {
	switch ex := e.(type) {
	case VarExpr:
		id, ok := b[ex.Name]
		if !ok {
			return Value{}, fmt.Errorf("unbound variable ?%s in FILTER", ex.Name)
		}
		t := st.Dict().MustDecode(id)
		return termValue(t), nil
	case ConstExpr:
		return termValue(ex.Term), nil
	case NotExpr:
		v, err := evalExpr(st, ex.E, b)
		if err != nil {
			return Value{}, err
		}
		return boolValue(!v.Bool()), nil
	case AndExpr:
		l, err := evalExpr(st, ex.L, b)
		if err != nil {
			return Value{}, err
		}
		if !l.Bool() {
			return boolValue(false), nil
		}
		r, err := evalExpr(st, ex.R, b)
		if err != nil {
			return Value{}, err
		}
		return boolValue(r.Bool()), nil
	case OrExpr:
		l, err := evalExpr(st, ex.L, b)
		if err != nil {
			return Value{}, err
		}
		if l.Bool() {
			return boolValue(true), nil
		}
		r, err := evalExpr(st, ex.R, b)
		if err != nil {
			return Value{}, err
		}
		return boolValue(r.Bool()), nil
	case CmpExpr:
		l, err := evalExpr(st, ex.L, b)
		if err != nil {
			return Value{}, err
		}
		r, err := evalExpr(st, ex.R, b)
		if err != nil {
			return Value{}, err
		}
		return compare(ex.Op, l, r)
	case FuncExpr:
		return evalFunc(st, ex, b)
	default:
		return Value{}, fmt.Errorf("unsupported expression %T", e)
	}
}

func termValue(t rdf.Term) Value {
	if f, err := t.Float(); err == nil && t.Kind == rdf.Literal && t.Datatype != "" && t.Datatype != rdf.WKTLiteral {
		return Value{Term: t, Num: f, IsNum: true}
	}
	if t.Kind == rdf.Literal && t.Datatype == rdf.XSDBoolean {
		return Value{Term: t, B: t.Value == "true", IsB: true}
	}
	return Value{Term: t}
}

func compare(op CmpOp, l, r Value) (Value, error) {
	if l.IsNum && r.IsNum {
		switch op {
		case OpEq:
			return boolValue(l.Num == r.Num), nil
		case OpNe:
			return boolValue(l.Num != r.Num), nil
		case OpLt:
			return boolValue(l.Num < r.Num), nil
		case OpLe:
			return boolValue(l.Num <= r.Num), nil
		case OpGt:
			return boolValue(l.Num > r.Num), nil
		case OpGe:
			return boolValue(l.Num >= r.Num), nil
		}
	}
	ls, rs := l.Term.Value, r.Term.Value
	switch op {
	case OpEq:
		return boolValue(l.Term == r.Term), nil
	case OpNe:
		return boolValue(l.Term != r.Term), nil
	case OpLt:
		return boolValue(ls < rs), nil
	case OpLe:
		return boolValue(ls <= rs), nil
	case OpGt:
		return boolValue(ls > rs), nil
	case OpGe:
		return boolValue(ls >= rs), nil
	}
	return Value{}, fmt.Errorf("unknown comparison operator %v", op)
}

// evalFunc evaluates a function call. GeoSPARQL simple-feature predicates
// decode WKT geometry literals from their arguments.
func evalFunc(st *rdf.Store, f FuncExpr, b rdf.Binding) (Value, error) {
	geomArg := func(i int) (geom.Geometry, error) {
		v, err := evalExpr(st, f.Args[i], b)
		if err != nil {
			return nil, err
		}
		if v.Term.Kind != rdf.Literal {
			return nil, fmt.Errorf("%s: argument %d is not a geometry literal", f.Name, i)
		}
		return geom.ParseWKT(v.Term.Value)
	}
	switch f.Name {
	case FnSfIntersects, FnSfContains, FnSfWithin:
		if len(f.Args) != 2 {
			return Value{}, fmt.Errorf("%s needs 2 arguments, got %d", f.Name, len(f.Args))
		}
		g1, err := geomArg(0)
		if err != nil {
			return Value{}, err
		}
		g2, err := geomArg(1)
		if err != nil {
			return Value{}, err
		}
		switch f.Name {
		case FnSfIntersects:
			return boolValue(geom.Intersects(g1, g2)), nil
		case FnSfContains:
			return boolValue(geom.Contains(g1, g2)), nil
		default:
			return boolValue(geom.Within(g1, g2)), nil
		}
	case FnDistance:
		if len(f.Args) != 2 {
			return Value{}, fmt.Errorf("geof:distance needs 2 arguments, got %d", len(f.Args))
		}
		g1, err := geomArg(0)
		if err != nil {
			return Value{}, err
		}
		g2, err := geomArg(1)
		if err != nil {
			return Value{}, err
		}
		return numValue(geom.Distance(g1, g2)), nil
	default:
		return Value{}, fmt.Errorf("unknown function <%s>", f.Name)
	}
}

// SpatialFilter describes a recognised spatial restriction extracted from
// a query's FILTER expressions: a geof predicate between a geometry
// variable and a constant geometry. Spatially indexed stores use it to
// prune candidates with an R-tree before exact evaluation.
type SpatialFilter struct {
	// Var is the geometry variable name.
	Var string
	// Fn is the GeoSPARQL function IRI.
	Fn string
	// Window is the constant geometry's bounding rectangle.
	Window geom.Rect
	// Geometry is the constant geometry for exact refinement.
	Geometry geom.Geometry
	// FilterIndex is the index into Query.Filters this was extracted from.
	FilterIndex int
	// Exclusive reports that the top-level filter consists solely of this
	// call, so a store that enforces it during index scanning may skip the
	// generic evaluation of that filter entirely.
	Exclusive bool
}

// ExtractSpatialFilters scans the query's filters for accelerable
// geof:sfIntersects/sfWithin/sfContains(?var, constantWKT) calls (either
// argument order). Only top-level and AND-combined conjuncts are
// considered; anything under OR/NOT stays with the generic evaluator.
func ExtractSpatialFilters(q *Query) []SpatialFilter {
	var out []SpatialFilter
	var visit func(e Expr, idx int, exclusive bool)
	visit = func(e Expr, idx int, exclusive bool) {
		switch ex := e.(type) {
		case AndExpr:
			visit(ex.L, idx, false)
			visit(ex.R, idx, false)
		case FuncExpr:
			if ex.Name != FnSfIntersects && ex.Name != FnSfContains && ex.Name != FnSfWithin {
				return
			}
			if len(ex.Args) != 2 {
				return
			}
			v, c, swapped := splitVarConst(ex.Args[0], ex.Args[1])
			if v == "" {
				return
			}
			g, err := geom.ParseWKT(c.Value)
			if err != nil {
				return
			}
			fn := ex.Name
			if swapped {
				// sfContains(const, ?v) is sfWithin(?v, const) and vice
				// versa; sfIntersects is symmetric.
				switch fn {
				case FnSfContains:
					fn = FnSfWithin
				case FnSfWithin:
					fn = FnSfContains
				}
			}
			out = append(out, SpatialFilter{
				Var: v, Fn: fn,
				Window: g.Bounds(), Geometry: g,
				FilterIndex: idx, Exclusive: exclusive,
			})
		}
	}
	for i, f := range q.Filters {
		visit(f, i, true)
	}
	return out
}

// ExprVars returns the distinct variable names referenced anywhere in
// the expression, in first-use order.
func ExprVars(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch ex := e.(type) {
		case VarExpr:
			if !seen[ex.Name] {
				seen[ex.Name] = true
				out = append(out, ex.Name)
			}
		case NotExpr:
			walk(ex.E)
		case AndExpr:
			walk(ex.L)
			walk(ex.R)
		case OrExpr:
			walk(ex.L)
			walk(ex.R)
		case CmpExpr:
			walk(ex.L)
			walk(ex.R)
		case FuncExpr:
			for _, a := range ex.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

// SpatialJoin describes a recognised variable-variable spatial
// restriction: a geof simple-feature predicate between two geometry
// variables, or a distance join geof:distance(?a, ?b) < d. Spatially
// indexed stores accelerate it with an R-tree index spatial join (probe
// with the bound side's MBR, refine exactly) instead of degrading to a
// cartesian scan with per-pair geometry tests.
type SpatialJoin struct {
	// VarA and VarB are the two geometry variables in argument order.
	VarA, VarB string
	// Fn is the GeoSPARQL function IRI (FnDistance for distance joins).
	Fn string
	// Distance is the window-expansion threshold for FnDistance joins.
	Distance float64
	// StrictLess reports a strict (<) distance comparison; false means <=.
	StrictLess bool
	// FilterIndex is the index into Query.Filters this was extracted from.
	FilterIndex int
	// Exclusive reports that the top-level filter consists solely of this
	// join, so an index join that refines exactly fully enforces it.
	Exclusive bool
}

// Relation maps the join onto the shared geom join core.
func (j SpatialJoin) Relation() geom.JoinRelation {
	switch j.Fn {
	case FnSfContains:
		return geom.JoinContains
	case FnSfWithin:
		return geom.JoinWithin
	case FnDistance:
		if j.StrictLess {
			return geom.JoinNearer
		}
		return geom.JoinNearerEq
	default:
		return geom.JoinIntersects
	}
}

// String renders the join predicate compactly for plans and logs.
func (j SpatialJoin) String() string {
	if j.Fn == FnDistance {
		op := "<="
		if j.StrictLess {
			op = "<"
		}
		return fmt.Sprintf("geof:distance(?%s, ?%s) %s %g", j.VarA, j.VarB, op, j.Distance)
	}
	return fmt.Sprintf("%s(?%s, ?%s)", geofShortName(j.Fn), j.VarA, j.VarB)
}

// geofShortName compacts a geof: function IRI for display.
func geofShortName(iri string) string {
	const ns = "http://www.opengis.net/def/function/geosparql/"
	if strings.HasPrefix(iri, ns) {
		return "geof:" + iri[len(ns):]
	}
	return "<" + iri + ">"
}

// ExtractSpatialJoins scans the query's filters for accelerable
// variable-variable spatial joins: geof:sfIntersects/sfContains/sfWithin
// between two distinct variables, and distance joins of the forms
// geof:distance(?a, ?b) < d, geof:distance(?a, ?b) <= d, d >
// geof:distance(?a, ?b) and d >= geof:distance(?a, ?b). Only top-level
// and AND-combined conjuncts are considered; anything under OR/NOT stays
// with the generic evaluator.
func ExtractSpatialJoins(q *Query) []SpatialJoin {
	var out []SpatialJoin
	var visit func(e Expr, idx int, exclusive bool)
	visit = func(e Expr, idx int, exclusive bool) {
		switch ex := e.(type) {
		case AndExpr:
			visit(ex.L, idx, false)
			visit(ex.R, idx, false)
		case FuncExpr:
			if ex.Name != FnSfIntersects && ex.Name != FnSfContains && ex.Name != FnSfWithin {
				return
			}
			a, b, ok := splitVarVar(ex)
			if !ok {
				return
			}
			out = append(out, SpatialJoin{
				VarA: a, VarB: b, Fn: ex.Name,
				FilterIndex: idx, Exclusive: exclusive,
			})
		case CmpExpr:
			j, ok := distanceJoin(ex)
			if !ok {
				return
			}
			j.FilterIndex = idx
			j.Exclusive = exclusive
			out = append(out, j)
		}
	}
	for i, f := range q.Filters {
		visit(f, i, true)
	}
	return out
}

// splitVarVar matches a two-argument call whose arguments are two
// distinct variables.
func splitVarVar(ex FuncExpr) (a, b string, ok bool) {
	if len(ex.Args) != 2 {
		return "", "", false
	}
	va, okA := ex.Args[0].(VarExpr)
	vb, okB := ex.Args[1].(VarExpr)
	if !okA || !okB || va.Name == vb.Name {
		return "", "", false
	}
	return va.Name, vb.Name, true
}

// distanceJoin matches the distance-join comparison shapes. The
// threshold must be a non-negative numeric constant.
func distanceJoin(ex CmpExpr) (SpatialJoin, bool) {
	match := func(fe Expr, ce Expr, strict bool) (SpatialJoin, bool) {
		f, ok := fe.(FuncExpr)
		if !ok || f.Name != FnDistance {
			return SpatialJoin{}, false
		}
		a, b, ok := splitVarVar(f)
		if !ok {
			return SpatialJoin{}, false
		}
		c, ok := ce.(ConstExpr)
		if !ok || c.Term.Kind != rdf.Literal {
			return SpatialJoin{}, false
		}
		d, err := c.Term.Float()
		if err != nil || d < 0 {
			return SpatialJoin{}, false
		}
		return SpatialJoin{VarA: a, VarB: b, Fn: FnDistance, Distance: d, StrictLess: strict}, true
	}
	switch ex.Op {
	case OpLt:
		return match(ex.L, ex.R, true)
	case OpLe:
		return match(ex.L, ex.R, false)
	case OpGt:
		return match(ex.R, ex.L, true)
	case OpGe:
		return match(ex.R, ex.L, false)
	}
	return SpatialJoin{}, false
}

// SpatialReport classifies every geof call in the query's filters and
// returns one strategy line per call: index filter-and-refine for
// accelerable variable-constant predicates, R-tree index spatial join
// for accelerable variable-variable predicates, an unbound-variable
// rejection for predicates over variables outside the pattern group,
// and an explicit per-row/cartesian warning for everything else — so an
// unaccelerable spatial predicate can never degrade silently. The
// classification mirrors ExtractSpatialFilters, ExtractSpatialJoins and
// the planner's unbound-variable handling.
func SpatialReport(q *Query) []string {
	inBGP := map[string]bool{}
	for _, tp := range q.Patterns {
		for _, v := range tp.Vars() {
			inBGP[v] = true
		}
	}
	unboundOf := func(vars ...string) string {
		for _, v := range vars {
			if !inBGP[v] {
				return v
			}
		}
		return ""
	}
	var out []string
	report := func(idx int, desc, verdict string) {
		out = append(out, fmt.Sprintf("spatial: %s — %s (filter #%d)", desc, verdict, idx))
	}
	var visit func(e Expr, idx int, conjunct bool)
	visit = func(e Expr, idx int, conjunct bool) {
		switch ex := e.(type) {
		case AndExpr:
			visit(ex.L, idx, conjunct)
			visit(ex.R, idx, conjunct)
		case OrExpr:
			visit(ex.L, idx, false)
			visit(ex.R, idx, false)
		case NotExpr:
			visit(ex.E, idx, false)
		case CmpExpr:
			if conjunct {
				if j, ok := distanceJoin(ex); ok {
					if u := unboundOf(j.VarA, j.VarB); u != "" {
						report(idx, j.String(), "rejects every row (?"+u+" is outside the pattern group)")
					} else {
						report(idx, j.String(), "R-tree index distance join")
					}
					return
				}
			}
			visit(ex.L, idx, false)
			visit(ex.R, idx, false)
		case FuncExpr:
			switch ex.Name {
			case FnSfIntersects, FnSfContains, FnSfWithin, FnDistance:
			default:
				for _, a := range ex.Args {
					visit(a, idx, false)
				}
				return
			}
			desc := geofShortName(ex.Name) + renderArgs(ex.Args)
			if len(ex.Args) != 2 {
				report(idx, desc, "NOT index-accelerated: evaluated per row")
				return
			}
			if a, b, varVar := splitVarVar(ex); ex.Name != FnDistance && conjunct && varVar {
				if u := unboundOf(a, b); u != "" {
					report(idx, desc, "rejects every row (?"+u+" is outside the pattern group)")
				} else {
					report(idx, desc, "R-tree index spatial join")
				}
				return
			}
			if ex.Name != FnDistance && conjunct {
				if v, c, _ := splitVarConst(ex.Args[0], ex.Args[1]); v != "" {
					if _, err := geom.ParseWKT(c.Value); err == nil {
						if !inBGP[v] {
							report(idx, desc, "rejects every row (?"+v+" is outside the pattern group)")
						} else {
							report(idx, desc, "index filter-and-refine")
						}
						return
					}
				}
			}
			if _, _, varVar := splitVarVar(ex); varVar {
				report(idx, desc, "NOT index-accelerated: cartesian scan with per-pair exact tests")
				return
			}
			report(idx, desc, "NOT index-accelerated: evaluated per row")
		}
	}
	for i, f := range q.Filters {
		visit(f, i, true)
	}
	return out
}

// renderArgs renders a call argument list compactly, eliding long
// constants (WKT literals run to kilobytes).
func renderArgs(args []Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		s := a.String()
		if len(s) > 24 {
			s = s[:21] + "..."
		}
		parts[i] = s
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func splitVarConst(a, b Expr) (varName string, c rdf.Term, swapped bool) {
	if va, ok := a.(VarExpr); ok {
		if cb, ok := b.(ConstExpr); ok && cb.Term.Kind == rdf.Literal {
			return va.Name, cb.Term, false
		}
	}
	if vb, ok := b.(VarExpr); ok {
		if ca, ok := a.(ConstExpr); ok && ca.Term.Kind == rdf.Literal {
			return vb.Name, ca.Term, true
		}
	}
	return "", rdf.Term{}, false
}
