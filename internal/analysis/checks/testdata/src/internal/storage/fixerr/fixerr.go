// Package fixerr is the nodroppederr fixture: durability error
// results discarded (flagged) and consumed or deferred (clean).
package fixerr

import (
	"fmt"
	"io"

	"repro/internal/storage/vfs"
)

// persist mimics the WAL commit path; because this package is
// storage-pathed, bare calls to it are durability discards too.
func persist(f vfs.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// dropSync is the seeded violation class: the fsync that acknowledged
// a commit, silently discarded.
func dropSync(f vfs.File) {
	f.Sync()   // want `result of Sync is a durability error and is silently discarded`
	f.Close()  // want `result of Close is a durability error and is silently discarded`
	persist(f) // want `result of persist is a durability error and is silently discarded`
}

func blankErr(fsys vfs.FS, f vfs.File, path string) {
	_ = f.Sync()                     // want `error result of Sync assigned to _`
	_, _ = fsys.OpenFile(path, 0, 0) // want `error result of OpenFile assigned to _`
}

// consume is the conforming shape: every durability error is checked
// or deliberately deferred (read-path defer Close cannot propagate and
// is exempt).
func consume(f vfs.File) error {
	defer f.Close()
	if err := f.Sync(); err != nil {
		return err
	}
	return nil
}

// untracked: error results outside the durability surface stay the
// developer's call.
func untracked() {
	fmt.Fprintln(io.Discard, "telemetry only")
}
