package trainingset

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/raster"
	"repro/internal/sentinel"
)

func TestGenerateCartography(t *testing.T) {
	extent := geom.NewRect(0, 0, 1000, 1000)
	layers := GenerateCartography(extent, 50, 1)
	if len(layers) != 5 {
		t.Fatalf("layers = %d", len(layers))
	}
	total := 0
	for _, l := range layers {
		total += len(l.Features)
		for _, f := range l.Features {
			if !extent.ContainsRect(f.Bounds()) {
				t.Errorf("feature outside extent: %v", f.Bounds())
			}
		}
	}
	if total != 50 {
		t.Errorf("features = %d, want 50", total)
	}
}

func TestRasterize(t *testing.T) {
	grid := raster.NewGrid(geom.Point{}, 10, 50, 50)
	layers := []VectorLayer{
		{Name: "water", Class: sentinel.ClassSeaLake,
			Features: []geom.Geometry{geom.NewRect(100, 100, 200, 200)}},
	}
	cm := Rasterize(layers, grid)
	// cell at (150,150) is inside the water rect
	col, row, _ := grid.CellAt(geom.Point{X: 150, Y: 150})
	if cm.At(col, row) != sentinel.ClassSeaLake {
		t.Error("water cell not burned")
	}
	// far corner keeps background
	if cm.At(49, 49) != sentinel.ClassHerbVegetation {
		t.Error("background class wrong")
	}
}

func TestHarvestLabelsMatchLayers(t *testing.T) {
	extent := geom.NewRect(0, 0, 1000, 1000)
	grid := raster.NewGrid(geom.Point{}, 10, 100, 100)
	layers := GenerateCartography(extent, 30, 2)
	truth := Rasterize(layers, grid)
	scene := sentinel.GenerateS2Scene(truth, 3)

	ds, stats := Harvest(layers, scene, HarvestConfig{SamplesPerFeature: 10, Workers: 4, Seed: 4})
	if stats.Features != 30 {
		t.Fatalf("features = %d", stats.Features)
	}
	if ds.Len() == 0 || ds.Len() > 300 {
		t.Fatalf("samples = %d", ds.Len())
	}
	if ds.X.Cols != 13 {
		t.Errorf("cols = %d", ds.X.Cols)
	}
	// Labels must be in the layer class set.
	valid := map[int]bool{}
	for _, l := range layers {
		valid[int(l.Class)] = true
	}
	for _, y := range ds.Y {
		if !valid[y] {
			t.Fatalf("label %d not from any layer", y)
		}
	}
}

func TestHarvestDeterministic(t *testing.T) {
	extent := geom.NewRect(0, 0, 500, 500)
	grid := raster.NewGrid(geom.Point{}, 10, 50, 50)
	layers := GenerateCartography(extent, 10, 5)
	truth := Rasterize(layers, grid)
	scene := sentinel.GenerateS2Scene(truth, 6)
	cfg := HarvestConfig{SamplesPerFeature: 5, Workers: 3, Seed: 7}
	a, _ := Harvest(layers, scene, cfg)
	b, _ := Harvest(layers, scene, cfg)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("harvest not deterministic under parallelism")
		}
	}
}

func TestAugment(t *testing.T) {
	extent := geom.NewRect(0, 0, 500, 500)
	grid := raster.NewGrid(geom.Point{}, 10, 50, 50)
	layers := GenerateCartography(extent, 10, 8)
	truth := Rasterize(layers, grid)
	scene := sentinel.GenerateS2Scene(truth, 9)
	ds, _ := Harvest(layers, scene, HarvestConfig{SamplesPerFeature: 4, Seed: 9})

	big := Augment(ds, 10, 0.01, 11)
	if big.Len() != ds.Len()*10 {
		t.Fatalf("augmented = %d, want %d", big.Len(), ds.Len()*10)
	}
	// Class balance preserved.
	origCounts := map[int]int{}
	for _, y := range ds.Y {
		origCounts[y]++
	}
	bigCounts := map[int]int{}
	for _, y := range big.Y {
		bigCounts[y]++
	}
	for c, n := range origCounts {
		if bigCounts[c] != n*10 {
			t.Errorf("class %d: %d -> %d, want %d", c, n, bigCounts[c], n*10)
		}
	}
	// factor 1 is identity in size
	same := Augment(ds, 1, 0.01, 1)
	if same.Len() != ds.Len() {
		t.Errorf("factor 1 changed size: %d", same.Len())
	}
}

func TestMillionSampleScaling(t *testing.T) {
	// E6 smoke test: augmentation reaches the paper's "millions of
	// samples" target from a modest harvest.
	extent := geom.NewRect(0, 0, 1000, 1000)
	grid := raster.NewGrid(geom.Point{}, 10, 100, 100)
	layers := GenerateCartography(extent, 100, 13)
	truth := Rasterize(layers, grid)
	scene := sentinel.GenerateS2Scene(truth, 14)
	ds, _ := Harvest(layers, scene, HarvestConfig{SamplesPerFeature: 100, Workers: 8, Seed: 15})
	if ds.Len() < 5000 {
		t.Fatalf("harvest = %d samples", ds.Len())
	}
	big := Augment(ds, 1_000_000/ds.Len()+1, 0.01, 16)
	if big.Len() < 1_000_000 {
		t.Fatalf("augmented = %d, want >= 1M", big.Len())
	}
}
