package telemetry

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// This file is a promtool-style lint for the text exposition format,
// shared by the telemetry package's own tests and the endpoint's
// /metrics tests, so format regressions fail in the ordinary Go test
// matrix without external tooling.

var (
	lintHelpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.+)$`)
	lintTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	lintSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (\S+)$`)
	lintLeRe     = regexp.MustCompile(`(?:\{|,)le="([^"]*)"`)
)

// histSeries accumulates one histogram labelset's buckets while
// linting.
type lintHist struct {
	les     []string
	counts  []float64
	hasInf  bool
	inf     float64
	sumSeen bool
	count   float64
	hasCnt  bool
}

// LintExposition checks text against the Prometheus text-format rules
// promtool check metrics enforces: HELP and TYPE lines present and
// preceding their samples, no duplicate series, valid sample syntax,
// counters named *_total, histogram le buckets cumulative and ending in
// +Inf with a matching _count and a _sum. It returns one finding per
// problem; an empty slice means the exposition is clean.
func LintExposition(text string) []string {
	var findings []string
	addf := func(format string, args ...any) {
		findings = append(findings, fmt.Sprintf(format, args...))
	}

	types := map[string]string{}
	helps := map[string]bool{}
	seen := map[string]bool{}
	hists := map[string]map[string]*lintHist{} // family -> non-le labels -> state

	// baseFamily resolves a sample name to its TYPE-declared family,
	// unwrapping histogram suffixes.
	baseFamily := func(name string) (string, string, bool) {
		if t, ok := types[name]; ok {
			return name, t, true
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && types[base] == "histogram" {
				return base, "histogram", true
			}
		}
		return "", "", false
	}

	for i, line := range strings.Split(text, "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := lintHelpRe.FindStringSubmatch(line); m != nil {
				if helps[m[1]] {
					addf("line %d: duplicate HELP for %s", lineNo, m[1])
				}
				helps[m[1]] = true
				continue
			}
			if m := lintTypeRe.FindStringSubmatch(line); m != nil {
				if _, dup := types[m[1]]; dup {
					addf("line %d: duplicate TYPE for %s", lineNo, m[1])
				}
				types[m[1]] = m[2]
				if m[2] == "counter" && !strings.HasSuffix(m[1], "_total") {
					addf("line %d: counter %s should end in _total", lineNo, m[1])
				}
				continue
			}
			addf("line %d: malformed comment line %q", lineNo, line)
			continue
		}

		m := lintSampleRe.FindStringSubmatch(line)
		if m == nil {
			addf("line %d: malformed sample line %q", lineNo, line)
			continue
		}
		name, labels, valText := m[1], m[2], m[3]
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			addf("line %d: sample %s value %q is not a number", lineNo, name, valText)
			continue
		}
		series := name + labels
		if seen[series] {
			addf("line %d: duplicate series %s", lineNo, series)
		}
		seen[series] = true

		fam, kind, ok := baseFamily(name)
		if !ok {
			addf("line %d: sample %s has no preceding # TYPE", lineNo, name)
			continue
		}
		if !helps[fam] {
			addf("line %d: family %s has no # HELP", lineNo, fam)
		}

		if kind != "histogram" {
			continue
		}
		// Histogram bookkeeping, keyed by the labelset minus le.
		rest := lintLeRe.ReplaceAllString(labels, "")
		rest = strings.Trim(strings.TrimPrefix(rest, "{"), "}")
		byLabels := hists[fam]
		if byLabels == nil {
			byLabels = map[string]*lintHist{}
			hists[fam] = byLabels
		}
		h := byLabels[rest]
		if h == nil {
			h = &lintHist{}
			byLabels[rest] = h
		}
		switch {
		case name == fam+"_bucket":
			le := lintLeRe.FindStringSubmatch(labels)
			if le == nil {
				addf("line %d: %s bucket without an le label", lineNo, fam)
				continue
			}
			if le[1] == "+Inf" {
				h.hasInf, h.inf = true, val
			} else {
				if _, err := strconv.ParseFloat(le[1], 64); err != nil {
					addf("line %d: %s bucket le=%q is not a number", lineNo, fam, le[1])
				}
				if h.hasInf {
					addf("line %d: %s bucket le=%q after the +Inf bucket", lineNo, fam, le[1])
				}
			}
			h.les = append(h.les, le[1])
			h.counts = append(h.counts, val)
		case name == fam+"_sum":
			h.sumSeen = true
		case name == fam+"_count":
			h.hasCnt, h.count = true, val
		}
	}

	for fam, byLabels := range hists {
		for labels, h := range byLabels {
			where := fam
			if labels != "" {
				where = fam + "{" + labels + "}"
			}
			if !h.hasInf {
				addf("histogram %s: buckets do not end in le=\"+Inf\"", where)
			}
			for i := 1; i < len(h.counts); i++ {
				if h.counts[i] < h.counts[i-1] {
					addf("histogram %s: bucket le=%q count %g below previous %g (buckets must be cumulative)",
						where, h.les[i], h.counts[i], h.counts[i-1])
				}
			}
			if !h.sumSeen {
				addf("histogram %s: missing _sum", where)
			}
			if !h.hasCnt {
				addf("histogram %s: missing _count", where)
			} else if h.hasInf && h.count != h.inf {
				addf("histogram %s: _count %g != +Inf bucket %g", where, h.count, h.inf)
			}
		}
	}
	return findings
}
