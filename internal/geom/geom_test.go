package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(3, 4, 1, 2) // corners in any order
	if r.Min != (Point{1, 2}) || r.Max != (Point{3, 4}) {
		t.Fatalf("NewRect normalization failed: %+v", r)
	}
	if got := r.Width(); got != 2 {
		t.Errorf("Width = %v, want 2", got)
	}
	if got := r.Height(); got != 2 {
		t.Errorf("Height = %v, want 2", got)
	}
	if got := r.Area(); got != 4 {
		t.Errorf("Area = %v, want 4", got)
	}
	if got := r.Center(); got != (Point{2, 3}) {
		t.Errorf("Center = %v, want (2,3)", got)
	}
}

func TestRectContainsPoint(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},   // corner (closed rect)
		{Point{10, 10}, true}, // far corner
		{Point{10, 5}, true},  // edge
		{Point{-0.001, 5}, false},
		{Point{5, 10.001}, false},
	}
	for _, c := range cases {
		if got := r.ContainsPoint(c.p); got != c.want {
			t.Errorf("ContainsPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	cases := []struct {
		b    Rect
		want bool
	}{
		{NewRect(5, 5, 15, 15), true},
		{NewRect(10, 10, 20, 20), true}, // corner touch counts
		{NewRect(11, 11, 20, 20), false},
		{NewRect(2, 2, 3, 3), true}, // contained
		{NewRect(-5, 4, -1, 6), false},
		{NewRect(-5, 4, 0, 6), true}, // edge touch
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects symmetric (%v) = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestRectIntersection(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(5, 5, 15, 15)
	got, ok := a.Intersection(b)
	if !ok || got != NewRect(5, 5, 10, 10) {
		t.Fatalf("Intersection = %v, %v", got, ok)
	}
	if _, ok := a.Intersection(NewRect(20, 20, 30, 30)); ok {
		t.Fatal("disjoint rects reported intersection")
	}
}

func TestRectUnionProperty(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 float64) bool {
		a := NewRect(clamp(x1), clamp(y1), clamp(x2), clamp(y2))
		b := NewRect(clamp(x3), clamp(y3), clamp(x4), clamp(y4))
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clamp(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return math.Mod(f, 1e6)
}

func TestPolygonArea(t *testing.T) {
	sq := Polygon{Shell: Ring{{0, 0}, {4, 0}, {4, 4}, {0, 4}}}
	if got := sq.Area(); got != 16 {
		t.Errorf("square area = %v, want 16", got)
	}
	withHole := Polygon{
		Shell: Ring{{0, 0}, {4, 0}, {4, 4}, {0, 4}},
		Holes: []Ring{{{1, 1}, {2, 1}, {2, 2}, {1, 2}}},
	}
	if got := withHole.Area(); got != 15 {
		t.Errorf("area with hole = %v, want 15", got)
	}
}

func TestPolygonContainsPoint(t *testing.T) {
	poly := Polygon{
		Shell: Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}},
		Holes: []Ring{{{4, 4}, {6, 4}, {6, 6}, {4, 6}}},
	}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{1, 1}, true},
		{Point{5, 5}, false}, // in the hole
		{Point{4, 4}, true},  // hole boundary belongs to polygon
		{Point{0, 0}, true},  // shell boundary
		{Point{11, 5}, false},
		{Point{5, 0}, true}, // on shell edge
	}
	for _, c := range cases {
		if got := polygonContainsPoint(poly, c.p); got != c.want {
			t.Errorf("polygonContainsPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestIntersectsPolygonPolygon(t *testing.T) {
	a := Polygon{Shell: Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}}}
	b := Polygon{Shell: Ring{{5, 5}, {15, 5}, {15, 15}, {5, 15}}}
	c := Polygon{Shell: Ring{{20, 20}, {30, 20}, {30, 30}, {20, 30}}}
	inner := Polygon{Shell: Ring{{2, 2}, {3, 2}, {3, 3}, {2, 3}}}

	if !Intersects(a, b) {
		t.Error("overlapping polygons should intersect")
	}
	if Intersects(a, c) {
		t.Error("disjoint polygons should not intersect")
	}
	if !Intersects(a, inner) {
		t.Error("contained polygon should intersect container")
	}
	// cross shape: boundaries cross but no vertex inside the other
	horiz := Polygon{Shell: Ring{{-1, 4}, {11, 4}, {11, 6}, {-1, 6}}}
	vert := Polygon{Shell: Ring{{4, -1}, {6, -1}, {6, 11}, {4, 11}}}
	if !Intersects(horiz, vert) {
		t.Error("crossing polygons should intersect")
	}
}

func TestContains(t *testing.T) {
	outer := Polygon{Shell: Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}}}
	inner := Polygon{Shell: Ring{{2, 2}, {3, 2}, {3, 3}, {2, 3}}}
	overlap := Polygon{Shell: Ring{{5, 5}, {15, 5}, {15, 15}, {5, 15}}}

	if !Contains(outer, inner) {
		t.Error("outer should contain inner")
	}
	if Contains(outer, overlap) {
		t.Error("outer should not contain overlapping polygon")
	}
	if Contains(inner, outer) {
		t.Error("inner cannot contain outer")
	}
	if !Within(inner, outer) {
		t.Error("Within should mirror Contains")
	}
	r := NewRect(0, 0, 10, 10)
	if !Contains(r, Point{5, 5}) {
		t.Error("rect should contain interior point")
	}
	if !Contains(r, NewRect(1, 1, 2, 2)) {
		t.Error("rect should contain inner rect")
	}
	if Contains(r, NewRect(5, 5, 15, 15)) {
		t.Error("rect should not contain overlapping rect")
	}
}

func TestContainsPolygonWithHole(t *testing.T) {
	donut := Polygon{
		Shell: Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}},
		Holes: []Ring{{{4, 4}, {6, 4}, {6, 6}, {4, 6}}},
	}
	inHole := Point{5, 5}
	if Contains(donut, inHole) {
		t.Error("point in hole should not be contained")
	}
	if !Contains(donut, Point{1, 1}) {
		t.Error("point in annulus should be contained")
	}
}

func TestDistance(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if got := Distance(a, b); got != 5 {
		t.Errorf("point distance = %v, want 5", got)
	}
	r := NewRect(10, 0, 20, 10)
	if got := Distance(a, r); got != 10 {
		t.Errorf("point-rect distance = %v, want 10", got)
	}
	if got := Distance(Point{15, 5}, r); got != 0 {
		t.Errorf("inside point distance = %v, want 0", got)
	}
	p1 := Polygon{Shell: Ring{{0, 0}, {1, 0}, {1, 1}, {0, 1}}}
	p2 := Polygon{Shell: Ring{{3, 0}, {4, 0}, {4, 1}, {3, 1}}}
	if got := Distance(p1, p2); math.Abs(got-2) > 1e-9 {
		t.Errorf("polygon distance = %v, want 2", got)
	}
}

func TestSegmentsIntersect(t *testing.T) {
	cases := []struct {
		a, b, c, d Point
		want       bool
	}{
		{Point{0, 0}, Point{10, 10}, Point{0, 10}, Point{10, 0}, true}, // X cross
		{Point{0, 0}, Point{10, 0}, Point{5, 0}, Point{15, 0}, true},   // collinear overlap
		{Point{0, 0}, Point{10, 0}, Point{10, 0}, Point{20, 10}, true}, // endpoint touch
		{Point{0, 0}, Point{10, 0}, Point{0, 1}, Point{10, 1}, false},  // parallel
		{Point{0, 0}, Point{1, 1}, Point{2, 2}, Point{3, 3}, false},    // collinear disjoint
		{Point{0, 0}, Point{10, 0}, Point{5, 0.001}, Point{5, 5}, false} /* near miss */}
	for i, c := range cases {
		if got := segmentsIntersect(c.a, c.b, c.c, c.d); got != c.want {
			t.Errorf("case %d: segmentsIntersect = %v, want %v", i, got, c.want)
		}
	}
}

func TestWKTRoundTrip(t *testing.T) {
	cases := []string{
		"POINT (1.5 -2.5)",
		"LINESTRING (0 0, 1 1, 2 0)",
		"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
		"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))",
		"MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 5)))",
	}
	for _, in := range cases {
		g, err := ParseWKT(in)
		if err != nil {
			t.Fatalf("ParseWKT(%q): %v", in, err)
		}
		out := g.WKT()
		g2, err := ParseWKT(out)
		if err != nil {
			t.Fatalf("re-parse %q: %v", out, err)
		}
		if g.WKT() != g2.WKT() {
			t.Errorf("round trip mismatch: %q -> %q -> %q", in, out, g2.WKT())
		}
	}
}

func TestWKTEnvelope(t *testing.T) {
	g, err := ParseWKT("ENVELOPE(0, 10, 20, 5)")
	if err != nil {
		t.Fatal(err)
	}
	r, ok := g.(Rect)
	if !ok {
		t.Fatalf("ENVELOPE parsed to %T", g)
	}
	want := NewRect(0, 5, 10, 20)
	if r != want {
		t.Errorf("ENVELOPE = %v, want %v", r, want)
	}
}

func TestWKTErrors(t *testing.T) {
	bad := []string{
		"",
		"CIRCLE (0 0, 5)",
		"POINT (1)",
		"POINT (1 2",
		"POLYGON ((0 0, 1 1))",
		"POINT (1 2) trailing",
		"LINESTRING (0 0)",
	}
	for _, in := range bad {
		if _, err := ParseWKT(in); err == nil {
			t.Errorf("ParseWKT(%q) succeeded, want error", in)
		}
	}
}

func TestRegularPolygon(t *testing.T) {
	p := RegularPolygon(Point{0, 0}, 10, 64)
	if len(p.Shell) != 64 {
		t.Fatalf("vertex count = %d, want 64", len(p.Shell))
	}
	// area should approach pi*r^2
	want := math.Pi * 100
	if got := p.Area(); math.Abs(got-want)/want > 0.01 {
		t.Errorf("area = %v, want about %v", got, want)
	}
	if !polygonContainsPoint(p, Point{0, 0}) {
		t.Error("center should be inside")
	}
}

func TestRTreeInsertSearch(t *testing.T) {
	tr := NewRTree()
	rng := rand.New(rand.NewSource(1))
	type item struct {
		r  Rect
		id int64
	}
	var items []item
	for i := 0; i < 500; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		r := NewRect(x, y, x+rng.Float64()*10, y+rng.Float64()*10)
		tr.Insert(r, int64(i))
		items = append(items, item{r, int64(i)})
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tr.Len())
	}
	window := NewRect(100, 100, 300, 300)
	want := map[int64]bool{}
	for _, it := range items {
		if it.r.Intersects(window) {
			want[it.id] = true
		}
	}
	got := map[int64]bool{}
	tr.Search(window, func(_ Rect, id int64) bool {
		got[id] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Search found %d, want %d", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Errorf("missing id %d", id)
		}
	}
}

func TestRTreeBulkLoadMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 2000
	bounds := make([]Rect, n)
	data := make([]int64, n)
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		bounds[i] = NewRect(x, y, x+rng.Float64()*5, y+rng.Float64()*5)
		data[i] = int64(i)
	}
	tr := NewRTree()
	tr.BulkLoad(bounds, data)
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for trial := 0; trial < 20; trial++ {
		x, y := rng.Float64()*900, rng.Float64()*900
		window := NewRect(x, y, x+100, y+100)
		want := map[int64]bool{}
		for i := range bounds {
			if bounds[i].Intersects(window) {
				want[data[i]] = true
			}
		}
		got := map[int64]bool{}
		tr.Search(window, func(_ Rect, id int64) bool {
			got[id] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
	}
}

func TestRTreeSearchContained(t *testing.T) {
	tr := NewRTree()
	tr.Insert(NewRect(1, 1, 2, 2), 1)
	tr.Insert(NewRect(5, 5, 20, 20), 2) // intersects window but not contained
	tr.Insert(NewRect(6, 6, 7, 7), 3)
	window := NewRect(0, 0, 10, 10)
	var ids []int64
	tr.SearchContained(window, func(_ Rect, id int64) bool {
		ids = append(ids, id)
		return true
	})
	if len(ids) != 2 {
		t.Fatalf("contained results = %v, want ids 1 and 3", ids)
	}
}

func TestRTreeEarlyStop(t *testing.T) {
	tr := NewRTree()
	for i := 0; i < 100; i++ {
		tr.Insert(NewRect(float64(i), 0, float64(i)+0.5, 1), int64(i))
	}
	count := 0
	tr.Search(NewRect(0, 0, 100, 1), func(_ Rect, _ int64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d, want 5", count)
	}
}

func TestRTreeNearest(t *testing.T) {
	tr := NewRTree()
	for i := 0; i < 10; i++ {
		p := Point{float64(i * 10), 0}
		tr.Insert(p.Bounds(), int64(i))
	}
	got := tr.Nearest(Point{42, 0}, 2)
	if len(got) != 2 {
		t.Fatalf("Nearest returned %d results", len(got))
	}
	if got[0] != 4 {
		t.Errorf("nearest = %d, want 4", got[0])
	}
	if got[1] != 5 {
		t.Errorf("second nearest = %d, want 5", got[1])
	}
}

func TestRTreeEmpty(t *testing.T) {
	tr := NewRTree()
	tr.Search(NewRect(0, 0, 1, 1), func(_ Rect, _ int64) bool {
		t.Fatal("empty tree returned a result")
		return false
	})
	if got := tr.Nearest(Point{0, 0}, 3); got != nil {
		t.Errorf("Nearest on empty tree = %v", got)
	}
	tr.BulkLoad(nil, nil)
	if tr.Len() != 0 {
		t.Errorf("bulk load empty: Len = %d", tr.Len())
	}
}

func TestRTreeQuickProperty(t *testing.T) {
	// Property: every inserted rectangle is findable via a window equal to
	// itself.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewRTree()
		var rects []Rect
		for i := 0; i < 100; i++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			r := NewRect(x, y, x+rng.Float64(), y+rng.Float64())
			tr.Insert(r, int64(i))
			rects = append(rects, r)
		}
		for i, r := range rects {
			found := false
			tr.Search(r, func(_ Rect, id int64) bool {
				if id == int64(i) {
					found = true
					return false
				}
				return true
			})
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestMultiPolygon(t *testing.T) {
	mp := MultiPolygon{Polygons: []Polygon{
		{Shell: Ring{{0, 0}, {1, 0}, {1, 1}, {0, 1}}},
		{Shell: Ring{{5, 5}, {7, 5}, {7, 7}, {5, 7}}},
	}}
	if got := mp.Area(); got != 5 {
		t.Errorf("multipolygon area = %v, want 5", got)
	}
	if got := mp.NumVertices(); got != 8 {
		t.Errorf("NumVertices = %d, want 8", got)
	}
	b := mp.Bounds()
	if b != NewRect(0, 0, 7, 7) {
		t.Errorf("Bounds = %v", b)
	}
	if !Intersects(mp, Point{6, 6}) {
		t.Error("point in second member should intersect")
	}
	if Intersects(mp, Point{3, 3}) {
		t.Error("point between members should not intersect")
	}
	if !Contains(mp, Point{0.5, 0.5}) {
		t.Error("Contains should find point in first member")
	}
}

func TestLineString(t *testing.T) {
	l := LineString{Points: []Point{{0, 0}, {3, 4}, {3, 8}}}
	if got := l.Length(); got != 9 {
		t.Errorf("Length = %v, want 9", got)
	}
	if !Intersects(l, NewRect(2, 2, 4, 5)) {
		t.Error("line should intersect rect it passes through")
	}
	poly := Polygon{Shell: Ring{{2, 2}, {10, 2}, {10, 10}, {2, 10}}}
	if !Intersects(l, poly) {
		t.Error("line should intersect polygon")
	}
	far := LineString{Points: []Point{{100, 100}, {101, 101}}}
	if Intersects(l, far) {
		t.Error("distant lines should not intersect")
	}
}
