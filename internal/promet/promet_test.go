package promet

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/raster"
	"repro/internal/sentinel"
)

func TestGenerateWeather(t *testing.T) {
	w := GenerateWeather(120, 1)
	if w.Days() != 120 {
		t.Fatalf("days = %d", w.Days())
	}
	var totalP, totalET float64
	for d := 0; d < 120; d++ {
		if w.ET0MM[d] < 0 || w.PrecipMM[d] < 0 {
			t.Fatal("negative weather values")
		}
		totalP += w.PrecipMM[d]
		totalET += w.ET0MM[d]
	}
	if totalET <= totalP {
		t.Errorf("growing season should be water-limited: ET %v <= P %v", totalET, totalP)
	}
}

func TestRunBasics(t *testing.T) {
	grid := raster.NewGrid(geom.Point{}, 10, 20, 20)
	cm := raster.NewClassMap(grid)
	for i := range cm.Classes {
		cm.Classes[i] = sentinel.ClassAnnualCrop
	}
	weather := GenerateWeather(120, 2)
	res, err := Run(cm, weather, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AvailableWater.Data) != 400 {
		t.Fatalf("output cells = %d", len(res.AvailableWater.Data))
	}
	for i, v := range res.AvailableWater.Data {
		if v < 0 {
			t.Fatalf("negative available water at %d: %v", i, v)
		}
		if res.IrrigationNeed.Data[i] < 0 {
			t.Fatalf("negative irrigation at %d", i)
		}
	}
	// A uniform map must produce a uniform result.
	for i := 1; i < len(res.AvailableWater.Data); i++ {
		if res.AvailableWater.Data[i] != res.AvailableWater.Data[0] {
			t.Fatal("uniform crop map produced non-uniform water")
		}
	}
}

func TestCropTypeChangesWaterBalance(t *testing.T) {
	// The core A1 claim: different crop parameters at the same weather
	// produce different water availability and irrigation need.
	grid := raster.NewGrid(geom.Point{}, 10, 4, 4)
	weather := GenerateWeather(120, 3)
	cfg := DefaultConfig()

	results := map[uint8]*Result{}
	for _, class := range []uint8{sentinel.ClassAnnualCrop, sentinel.ClassForest, sentinel.ClassPasture} {
		cm := raster.NewClassMap(grid)
		for i := range cm.Classes {
			cm.Classes[i] = class
		}
		res, err := Run(cm, weather, cfg)
		if err != nil {
			t.Fatal(err)
		}
		results[class] = res
	}
	aw := func(c uint8) float64 { return float64(results[c].AvailableWater.Data[0]) }
	if aw(sentinel.ClassForest) == aw(sentinel.ClassAnnualCrop) {
		t.Error("forest and annual crop have identical water availability")
	}
	if aw(sentinel.ClassPasture) == aw(sentinel.ClassAnnualCrop) {
		t.Error("pasture and annual crop have identical water availability")
	}
	// Deeper roots (forest) mean more total available water.
	if aw(sentinel.ClassForest) <= aw(sentinel.ClassPasture) {
		t.Errorf("forest TAW (%v) should exceed pasture (%v)",
			aw(sentinel.ClassForest), aw(sentinel.ClassPasture))
	}
}

func TestDLVsUniformCropMap(t *testing.T) {
	// E12's shape: running the model with the true (DL-derived) crop map
	// reproduces the reference exactly; the crop-agnostic baseline has
	// nonzero per-field error.
	grid := raster.NewGrid(geom.Point{}, 10, 64, 64)
	truth := sentinel.GenerateLandCover(grid, 15, 4)
	weather := GenerateWeather(120, 5)
	cfg := DefaultConfig()

	ref, err := Run(truth, weather, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect crop map: zero error.
	perfect := CompareByField(truth, ref, ref)
	if perfect.MeanAbs != 0 {
		t.Errorf("self-comparison error = %v", perfect.MeanAbs)
	}
	// Uniform baseline: strip crop knowledge.
	uniformCfg := cfg
	uniformCfg.Params = nil
	baseRes, err := Run(truth, weather, uniformCfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline := CompareByField(truth, baseRes, ref)
	if baseline.Fields == 0 {
		t.Fatal("no coherent fields found")
	}
	if baseline.MeanAbs <= 0 {
		t.Errorf("uniform baseline error = %v, want > 0", baseline.MeanAbs)
	}
}

func TestRunErrors(t *testing.T) {
	grid := raster.NewGrid(geom.Point{}, 10, 2, 2)
	cm := raster.NewClassMap(grid)
	if _, err := Run(cm, Weather{}, DefaultConfig()); err == nil {
		t.Error("empty weather accepted")
	}
	cfg := DefaultConfig()
	cfg.AWCPerMetre = 0
	if _, err := Run(cm, GenerateWeather(10, 1), cfg); err == nil {
		t.Error("zero AWC accepted")
	}
}

func TestIrrigationRespondsToDryness(t *testing.T) {
	grid := raster.NewGrid(geom.Point{}, 10, 2, 2)
	cm := raster.NewClassMap(grid)
	for i := range cm.Classes {
		cm.Classes[i] = sentinel.ClassAnnualCrop
	}
	dry := Weather{PrecipMM: make([]float64, 90), ET0MM: make([]float64, 90)}
	wet := Weather{PrecipMM: make([]float64, 90), ET0MM: make([]float64, 90)}
	for d := 0; d < 90; d++ {
		dry.ET0MM[d] = 6
		wet.ET0MM[d] = 6
		wet.PrecipMM[d] = 8
	}
	cfg := DefaultConfig()
	dryRes, _ := Run(cm, dry, cfg)
	wetRes, _ := Run(cm, wet, cfg)
	if dryRes.IrrigationNeed.Data[0] <= wetRes.IrrigationNeed.Data[0] {
		t.Errorf("dry season irrigation (%v) should exceed wet (%v)",
			dryRes.IrrigationNeed.Data[0], wetRes.IrrigationNeed.Data[0])
	}
	if math.IsNaN(float64(dryRes.AvailableWater.Data[0])) {
		t.Error("NaN water availability")
	}
}
