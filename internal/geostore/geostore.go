// Package geostore implements the geospatial RDF store of Challenge C3:
// Strabon re-engineered for scale. It layers geometry awareness over
// internal/rdf: WKT literals are parsed once at load time, indexed in an
// R-tree, and stSPARQL spatial filters are answered by filter-and-refine
// over the index instead of per-row WKT parsing.
//
// Three execution modes reproduce the E1/E2 experiment axes:
//
//   - ModeNaive mirrors the 2012-era Strabon evaluation strategy the paper
//     cites as insufficient: full scan of candidate bindings with exact
//     geometry tests (including WKT parsing) per row.
//   - ModeIndexed is the re-engineered single-node store: pre-parsed
//     geometries, R-tree pruning, exact refinement only on survivors.
//   - Partitioned (see PartitionedStore) adds scale-out: features are
//     hash-partitioned across k indexed stores queried in parallel.
package geostore

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/geom"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Mode selects the execution strategy of a single-node store.
type Mode int

const (
	// ModeIndexed uses the R-tree filter-and-refine pipeline.
	ModeIndexed Mode = iota
	// ModeNaive evaluates spatial filters row-at-a-time with WKT parsing,
	// the "Strabon 2012" baseline of experiments E1/E2.
	ModeNaive
)

func (m Mode) String() string {
	switch m {
	case ModeIndexed:
		return "indexed"
	case ModeNaive:
		return "naive"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Feature is a geospatial entity: the unit of loading for the experiment
// workloads and the applications (fields, ice floes, icebergs, products).
type Feature struct {
	// IRI identifies the feature.
	IRI string
	// Class is the rdf:type IRI ("" for untyped features).
	Class string
	// Geometry is the feature geometry.
	Geometry geom.Geometry
	// Props holds additional predicate IRI -> object term attributes.
	Props map[string]rdf.Term
}

// Store is a single-node geospatial RDF store.
type Store struct {
	rdfStore *rdf.Store
	mode     Mode

	mu sync.RWMutex
	// geoms maps the dictionary ID of a WKT literal to its parsed
	// geometry; parsed once at insert.
	geoms map[rdf.ID]geom.Geometry
	// rtree indexes geometry bounds by WKT literal dictionary ID.
	rtree *geom.RTree
	dirty bool
}

// New returns an empty store in the given mode.
func New(mode Mode) *Store {
	return &Store{
		rdfStore: rdf.NewStore(),
		mode:     mode,
		geoms:    make(map[rdf.ID]geom.Geometry),
		rtree:    geom.NewRTree(),
	}
}

// Mode returns the store's execution mode.
func (s *Store) Mode() Mode { return s.mode }

// RDF exposes the underlying triple store.
func (s *Store) RDF() *rdf.Store { return s.rdfStore }

// Len returns the number of triples.
func (s *Store) Len() int { return s.rdfStore.Len() }

// Version returns the store's monotonic mutation counter (see
// rdf.Store.Version); query-result caches key on it for invalidation.
func (s *Store) Version() uint64 { return s.rdfStore.Version() }

// JournalErr surfaces the first durability-journal failure, if any (see
// rdf.Store.JournalErr). Serving layers report it as a server fault.
func (s *Store) JournalErr() error { return s.rdfStore.JournalErr() }

// NumGeometries returns the number of distinct indexed geometries.
func (s *Store) NumGeometries() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.geoms)
}

// Add inserts a triple, registering the object if it is a geometry
// literal. Invalid WKT in a geometry literal is an error.
func (s *Store) Add(sub, pred, obj rdf.Term) error {
	if obj.IsGeometry() {
		id := s.rdfStore.Dict().Encode(obj)
		s.mu.Lock()
		if _, ok := s.geoms[id]; !ok {
			g, err := geom.ParseWKT(obj.Value)
			if err != nil {
				s.mu.Unlock()
				return fmt.Errorf("geostore: %w", err)
			}
			s.geoms[id] = g
			s.dirty = true
		}
		s.mu.Unlock()
	}
	s.rdfStore.Add(sub, pred, obj)
	return nil
}

// RegisterGeometry associates a pre-parsed geometry with a WKT literal
// term, so a subsequent Add of that literal skips WKT parsing. Sharded
// bulk loaders (internal/storage.BulkLoad) parse WKT in parallel workers
// and register here from the single writer.
func (s *Store) RegisterGeometry(obj rdf.Term, g geom.Geometry) {
	id := s.rdfStore.Dict().Encode(obj)
	s.mu.Lock()
	if _, ok := s.geoms[id]; !ok {
		s.geoms[id] = g
		s.dirty = true
	}
	s.mu.Unlock()
}

// RestoreGeometries scans the dictionary for geo:wktLiteral terms and
// (re-)parses any that are not yet registered, sharding the WKT parsing
// across CPUs. Call it after snapshot/WAL recovery populated the
// underlying RDF store directly.
func (s *Store) RestoreGeometries() error {
	type pending struct {
		id rdf.ID
		t  rdf.Term
	}
	var todo []pending
	s.mu.RLock()
	s.rdfStore.Dict().Range(func(id rdf.ID, t rdf.Term) bool {
		if t.IsGeometry() {
			if _, ok := s.geoms[id]; !ok {
				todo = append(todo, pending{id, t})
			}
		}
		return true
	})
	s.mu.RUnlock()
	if len(todo) == 0 {
		return nil
	}

	workers := runtime.NumCPU()
	if workers > len(todo) {
		workers = len(todo)
	}
	parsed := make([]geom.Geometry, len(todo))
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(todo); i += workers {
				g, err := geom.ParseWKT(todo[i].t.Value)
				if err != nil {
					errs[w] = fmt.Errorf("geostore: restore %q: %w", todo[i].t.Value, err)
					return
				}
				parsed[i] = g
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	s.mu.Lock()
	for i, p := range todo {
		if _, ok := s.geoms[p.id]; !ok {
			s.geoms[p.id] = parsed[i]
			s.dirty = true
		}
	}
	s.mu.Unlock()
	return nil
}

// LoadNTriples streams N-Triples into the store, registering geometry
// literals and sealing a journal batch every loadBatch triples, so an
// attached WAL sees bounded batches instead of one giant record. It
// returns the number of triples read; on error, triples before the
// offending line remain loaded (and journaled).
func (s *Store) LoadNTriples(r io.Reader) (int, error) {
	const loadBatch = 4096
	n := 0
	_, err := rdf.ScanNTriples(r, func(t rdf.Triple) error {
		if err := s.Add(t.S, t.P, t.O); err != nil {
			return err
		}
		n++
		if n%loadBatch == 0 {
			return s.rdfStore.CommitJournal()
		}
		return nil
	})
	if cerr := s.rdfStore.CommitJournal(); err == nil {
		err = cerr
	}
	return n, err
}

// AddFeature inserts the standard GeoSPARQL triple shape for a feature:
//
//	<iri> rdf:type <class> .
//	<iri> geo:hasGeometry <iri/geom> .
//	<iri/geom> geo:asWKT "..."^^geo:wktLiteral .
//	<iri> <prop> <value> .   (for each property)
func (s *Store) AddFeature(f Feature) error {
	subj := rdf.NewIRI(f.IRI)
	if f.Class != "" {
		s.rdfStore.Add(subj, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(f.Class))
	}
	geomNode := rdf.NewIRI(f.IRI + "/geom")
	s.rdfStore.Add(subj, rdf.NewIRI(rdf.GeoHasGeometry), geomNode)
	if err := s.Add(geomNode, rdf.NewIRI(rdf.GeoAsWKT), rdf.NewWKTLiteral(f.Geometry.WKT())); err != nil {
		return err
	}
	for p, o := range f.Props {
		s.rdfStore.Add(subj, rdf.NewIRI(p), o)
	}
	return nil
}

// Build bulk-loads the R-tree from the registered geometries. Queries call
// it implicitly when the index is stale, but bulk loaders should call it
// once after ingest for deterministic timing.
func (s *Store) Build() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buildLocked()
}

func (s *Store) buildLocked() {
	if !s.dirty {
		return
	}
	bounds := make([]geom.Rect, 0, len(s.geoms))
	data := make([]int64, 0, len(s.geoms))
	for id, g := range s.geoms {
		bounds = append(bounds, g.Bounds())
		data = append(data, int64(id))
	}
	s.rtree = geom.NewRTree()
	s.rtree.BulkLoad(bounds, data)
	s.dirty = false
}

// QueryString parses and evaluates an stSPARQL query.
func (s *Store) QueryString(qs string) (*sparql.Results, error) {
	q, err := sparql.Parse(qs)
	if err != nil {
		return nil, err
	}
	return s.Query(q)
}

// Query evaluates a parsed query according to the store mode.
func (s *Store) Query(q *sparql.Query) (*sparql.Results, error) {
	if s.mode == ModeNaive {
		return sparql.Eval(s.rdfStore, q)
	}
	return s.queryIndexed(q)
}

// queryIndexed is the filter-and-refine pipeline of the re-engineered
// store: the most selective accelerable spatial filter seeds BGP
// evaluation with R-tree survivors, remaining spatial filters refine
// against pre-parsed geometries, and non-spatial filters run through the
// generic evaluator.
func (s *Store) queryIndexed(q *sparql.Query) (*sparql.Results, error) {
	spatial := sparql.ExtractSpatialFilters(q)
	if len(spatial) == 0 {
		return sparql.Eval(s.rdfStore, q)
	}
	s.mu.Lock()
	s.buildLocked()
	s.mu.Unlock()

	// Seed from the first spatial filter; enforce the others (and any
	// non-exclusive or non-spatial filters) during refinement.
	seedFilter := spatial[0]
	seeds := s.seedBindings(seedFilter)
	if len(seeds) == 0 {
		return &sparql.Results{Vars: q.Vars}, nil
	}

	// Filters fully enforced by index+refinement need no generic pass.
	skip := make(map[int]bool)
	if seedFilter.Exclusive {
		skip[seedFilter.FilterIndex] = true
	}
	refiners := spatial[1:]
	for _, sf := range refiners {
		if sf.Exclusive {
			skip[sf.FilterIndex] = true
		}
	}

	var evalErr error
	filter := func(st *rdf.Store, b rdf.Binding) bool {
		for _, sf := range refiners {
			id, ok := b[sf.Var]
			if !ok {
				return false
			}
			if !s.refine(sf, id) {
				return false
			}
		}
		for i, f := range q.Filters {
			if skip[i] {
				continue
			}
			ok, err := sparql.EvalFilter(st, f, b)
			if err != nil {
				if evalErr == nil {
					evalErr = err
				}
				return false
			}
			if !ok {
				return false
			}
		}
		return true
	}
	bindings := s.rdfStore.SolveSeeded(seeds, q.Patterns, filter)
	return sparql.Project(s.rdfStore, q, bindings)
}

// seedBindings runs the R-tree window query for the filter and refines
// survivors exactly, returning one binding per passing geometry.
func (s *Store) seedBindings(sf sparql.SpatialFilter) []rdf.Binding {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var seeds []rdf.Binding
	s.rtree.Search(sf.Window, func(_ geom.Rect, data int64) bool {
		id := rdf.ID(data)
		if s.refineLocked(sf, id) {
			seeds = append(seeds, rdf.Binding{sf.Var: id})
		}
		return true
	})
	return seeds
}

// refine tests the exact spatial predicate between the stored geometry and
// the filter geometry.
func (s *Store) refine(sf sparql.SpatialFilter, id rdf.ID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.refineLocked(sf, id)
}

func (s *Store) refineLocked(sf sparql.SpatialFilter, id rdf.ID) bool {
	g, ok := s.geoms[id]
	if !ok {
		return false
	}
	switch sf.Fn {
	case sparql.FnSfIntersects:
		return geom.Intersects(g, sf.Geometry)
	case sparql.FnSfWithin:
		return geom.Within(g, sf.Geometry)
	case sparql.FnSfContains:
		return geom.Contains(g, sf.Geometry)
	default:
		return false
	}
}

// PartitionedStore is the scale-out variant: features are hash-partitioned
// across k indexed stores and queries fan out in parallel. Because a
// feature's triples are co-located in one partition, BGP solutions never
// span partitions, so merging is concatenation.
type PartitionedStore struct {
	parts []*Store
}

// NewPartitioned returns a store with k indexed partitions.
func NewPartitioned(k int) *PartitionedStore {
	if k < 1 {
		k = 1
	}
	ps := &PartitionedStore{parts: make([]*Store, k)}
	for i := range ps.parts {
		ps.parts[i] = New(ModeIndexed)
	}
	return ps
}

// NumPartitions returns the partition count.
func (ps *PartitionedStore) NumPartitions() int { return len(ps.parts) }

// Len returns the total triple count.
func (ps *PartitionedStore) Len() int {
	n := 0
	for _, p := range ps.parts {
		n += p.Len()
	}
	return n
}

// Version sums the partition version counters; it advances whenever any
// partition is mutated.
func (ps *PartitionedStore) Version() uint64 {
	var v uint64
	for _, p := range ps.parts {
		v += p.Version()
	}
	return v
}

// AddFeature routes a feature to a partition by IRI hash.
func (ps *PartitionedStore) AddFeature(f Feature) error {
	return ps.parts[fnvHash(f.IRI)%uint32(len(ps.parts))].AddFeature(f)
}

// Build bulk-loads all partition indexes in parallel.
func (ps *PartitionedStore) Build() {
	var wg sync.WaitGroup
	for _, p := range ps.parts {
		wg.Add(1)
		go func(p *Store) {
			defer wg.Done()
			p.Build()
		}(p)
	}
	wg.Wait()
}

// QueryString parses and evaluates a query across all partitions.
func (ps *PartitionedStore) QueryString(qs string) (*sparql.Results, error) {
	q, err := sparql.Parse(qs)
	if err != nil {
		return nil, err
	}
	return ps.Query(q)
}

// Query fans the query out to every partition in parallel and merges the
// result rows, re-applying ORDER BY and LIMIT globally.
func (ps *PartitionedStore) Query(q *sparql.Query) (*sparql.Results, error) {
	type partRes struct {
		res *sparql.Results
		err error
	}
	out := make([]partRes, len(ps.parts))
	var wg sync.WaitGroup
	for i, p := range ps.parts {
		wg.Add(1)
		go func(i int, p *Store) {
			defer wg.Done()
			// Partitions compute unlimited results; the merge applies the
			// global modifiers.
			local := *q
			local.Limit = 0
			r, err := p.Query(&local)
			out[i] = partRes{r, err}
		}(i, p)
	}
	wg.Wait()
	var merged *sparql.Results
	for _, pr := range out {
		if pr.err != nil {
			return nil, pr.err
		}
		if merged == nil {
			merged = pr.res
			continue
		}
		merged.Rows = append(merged.Rows, pr.res.Rows...)
	}
	if merged == nil {
		merged = &sparql.Results{Vars: q.Vars}
	}
	// Re-apply global ORDER BY / LIMIT on the merged rows via a projection
	// pass with pre-decoded rows: simplest is local sort + cut.
	if q.OrderBy != "" {
		sortResults(merged, q.OrderBy, q.OrderDesc)
	}
	if q.Limit > 0 && len(merged.Rows) > q.Limit {
		merged.Rows = merged.Rows[:q.Limit]
	}
	return merged, nil
}

func sortResults(r *sparql.Results, by string, desc bool) {
	sort.SliceStable(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i][by], r.Rows[j][by]
		fa, errA := a.Float()
		fb, errB := b.Float()
		if errA == nil && errB == nil {
			if desc {
				return fa > fb
			}
			return fa < fb
		}
		if desc {
			return a.Value > b.Value
		}
		return a.Value < b.Value
	})
}

func fnvHash(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}
