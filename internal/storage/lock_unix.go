//go:build unix

package storage

import (
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive advisory lock on f. The
// kernel releases it automatically when the process exits, so a crash
// never leaves a stale lock behind.
func flockExclusive(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
