package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/catalogue"
	"repro/internal/geom"
	"repro/internal/geostore"
	"repro/internal/hopsfs"
	"repro/internal/kvstore"
	"repro/internal/sentinel"
)

// extent is the shared planar workload extent.
var extent = geom.NewRect(0, 0, 10000, 10000)

// E1 — point-selection scaling (the paper's Strabon 100 GB claim):
// rectangular selections over point datasets of growing size under the
// naive full-scan baseline, the indexed store and the 4-way partitioned
// store.
func E1(cfg Config) *Table {
	sizes := []int{1000, 10000, 100000}
	if cfg.Quick {
		sizes = []int{500, 2000}
	}
	t := &Table{
		ID:     "E1",
		Title:  "Rectangular selections over point features (Strabon claim, §1)",
		Header: []string{"points", "mode", "query_ms", "results"},
		Notes:  "naive = Strabon-2012 full scan with per-row WKT parsing; window = 1% of extent",
	}
	for _, n := range sizes {
		feats := geostore.GeneratePointFeatures(n, 42, extent)
		rng := rand.New(rand.NewSource(7))
		window := geostore.RandomWindow(rng, extent, 0.01)
		q := geostore.SelectionQuery(window)

		naive := geostore.New(geostore.ModeNaive)
		indexed := geostore.New(geostore.ModeIndexed)
		parted := geostore.NewPartitioned(4)
		for _, f := range feats {
			mustAdd(naive.AddFeature(f))
			mustAdd(indexed.AddFeature(f))
			mustAdd(parted.AddFeature(f))
		}
		indexed.Build()
		parted.Build()

		for _, run := range []struct {
			mode  string
			query func() (int, error)
		}{
			{"naive", func() (int, error) { r, err := naive.QueryString(q); return count(r, err) }},
			{"indexed", func() (int, error) { r, err := indexed.QueryString(q); return count(r, err) }},
			{"partitioned-4", func() (int, error) { r, err := parted.QueryString(q); return count(r, err) }},
		} {
			results, elapsed := timeQuery(run.query)
			t.Rows = append(t.Rows, []string{i0(n), run.mode, ms(elapsed), i0(results)})
		}
	}
	return t
}

// E2 — multi-polygon complexity (the paper's "not even that performance
// with multi-polygons" claim): the same selection with growing vertex
// counts per feature.
func E2(cfg Config) *Table {
	vertices := []int{16, 64, 256, 1024}
	n := cfg.scale(2000, 200)
	if cfg.Quick {
		vertices = []int{16, 128}
	}
	t := &Table{
		ID:     "E2",
		Title:  "Selections over multi-polygons of growing vertex complexity (§1)",
		Header: []string{"features", "vertices/feature", "mode", "query_ms"},
		Notes:  "2 member polygons per feature; naive re-parses every WKT per query",
	}
	for _, v := range vertices {
		feats := geostore.GenerateMultiPolygonFeatures(n, 2, v/2, 11, extent)
		rng := rand.New(rand.NewSource(5))
		window := geostore.RandomWindow(rng, extent, 0.01)
		q := geostore.SelectionQuery(window)

		naive := geostore.New(geostore.ModeNaive)
		indexed := geostore.New(geostore.ModeIndexed)
		for _, f := range feats {
			mustAdd(naive.AddFeature(f))
			mustAdd(indexed.AddFeature(f))
		}
		indexed.Build()

		_, naiveT := timeQuery(func() (int, error) { r, err := naive.QueryString(q); return count(r, err) })
		_, idxT := timeQuery(func() (int, error) { r, err := indexed.QueryString(q); return count(r, err) })
		t.Rows = append(t.Rows,
			[]string{i0(n), i0(v), "naive", ms(naiveT)},
			[]string{i0(n), i0(v), "indexed", ms(idxT)},
		)
	}
	return t
}

// E10 — semantic catalogue scaling and the flagship iceberg query (C4).
func E10(cfg Config) *Table {
	sizes := []int{1000, 10000, 100000}
	if cfg.Quick {
		sizes = []int{500, 2000}
	}
	t := &Table{
		ID:     "E10",
		Title:  "Semantic catalogue: search latency vs catalogue size + iceberg query (C4)",
		Header: []string{"records", "area+year query_ms", "results", "iceberg query_ms", "icebergs"},
		Notes:  "catalogue answers both conventional and content queries from the same RDF store",
	}
	for _, n := range sizes {
		cat := newIcebergCatalogue(n, 200)
		window := geom.NewRect(1000, 1000, 3000, 3000)

		results, areaT := timeQuery(func() (int, error) {
			return cat.ProductsInYearOverArea(2018, window)
		})
		bergs, bergT := timeQuery(func() (int, error) {
			return cat.IcebergsEmbedded("NorskeOer", 2017)
		})
		t.Rows = append(t.Rows, []string{
			i0(n), ms(areaT), i0(results), ms(bergT), i0(bergs),
		})
	}
	return t
}

// E11 — HopsFS metadata throughput vs shard count, plus the small-file
// inline-vs-block comparison ("Size Matters").
func E11(cfg Config) *Table {
	shards := []int{1, 2, 4, 8, 16}
	files := cfg.scale(4000, 400)
	if cfg.Quick {
		shards = []int{1, 4}
	}
	t := &Table{
		ID:     "E11",
		Title:  "HopsFS metadata ops/s vs NewSQL shards; small-file inline vs block store (C5)",
		Header: []string{"config", "workload", "ops/s", "p50_us"},
		Notes:  "mixed workload: create+stat+list over 16 directories; block store models a 200us DataNode round trip",
	}
	for _, s := range shards {
		opsPerSec, p50 := hopsfsMixedWorkload(s, files, hopsfs.DefaultInlineThreshold, 0)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d shards", s), "metadata-mixed",
			f1(opsPerSec), f1(p50),
		})
	}
	// Small-file reads: inline vs block-store.
	for _, mode := range []struct {
		name      string
		threshold int
		blockCost time.Duration
	}{
		{"inline (Size Matters)", 4096, hopsfs.DefaultBlockAccessCost},
		{"block-store baseline", 0, hopsfs.DefaultBlockAccessCost},
	} {
		opsPerSec, p50 := smallFileReadWorkload(8, cfg.scale(1000, 100), mode.threshold, mode.blockCost)
		t.Rows = append(t.Rows, []string{
			mode.name, "small-file-read", f1(opsPerSec), f1(p50),
		})
	}
	return t
}

// hopsfsMixedWorkload creates files across directories from 8 concurrent
// clients and measures metadata throughput.
func hopsfsMixedWorkload(shards, files, inlineThreshold int, blockCost time.Duration) (opsPerSec, p50us float64) {
	fs := hopsfs.New(kvstore.New(shards),
		hopsfs.WithInlineThreshold(inlineThreshold),
		hopsfs.WithBlockStore(hopsfs.NewBlockStore(blockCost)))
	const dirs = 16
	for d := 0; d < dirs; d++ {
		if err := fs.MkdirAll(fmt.Sprintf("/data/d%02d", d)); err != nil {
			panic(err)
		}
	}
	payload := []byte("metadata-only")
	type op func(i int) error
	ops := []op{
		func(i int) error {
			return fs.Create(fmt.Sprintf("/data/d%02d/f%d", i%dirs, i), payload)
		},
		func(i int) error {
			_, err := fs.Stat(fmt.Sprintf("/data/d%02d", i%dirs))
			return err
		},
		func(i int) error {
			_, err := fs.List(fmt.Sprintf("/data/d%02d", i%dirs))
			return err
		},
	}
	totalOps := files * len(ops)
	start := time.Now()
	runConcurrent(8, files, func(i int) {
		for _, o := range ops {
			if err := o(i); err != nil {
				panic(err)
			}
		}
	})
	elapsed := time.Since(start)
	opsPerSec = float64(totalOps) / elapsed.Seconds()
	p50us = float64(elapsed.Microseconds()) / float64(totalOps)
	return opsPerSec, p50us
}

// smallFileReadWorkload measures small-file read latency with or without
// inlining.
func smallFileReadWorkload(shards, files, inlineThreshold int, blockCost time.Duration) (opsPerSec, p50us float64) {
	fs := hopsfs.New(kvstore.New(shards),
		hopsfs.WithInlineThreshold(inlineThreshold),
		hopsfs.WithBlockStore(hopsfs.NewBlockStore(blockCost)))
	if err := fs.MkdirAll("/small"); err != nil {
		panic(err)
	}
	payload := make([]byte, 1024) // 1 KiB files: "small" per the paper
	for i := 0; i < files; i++ {
		if err := fs.Create(fmt.Sprintf("/small/f%d", i), payload); err != nil {
			panic(err)
		}
	}
	start := time.Now()
	runConcurrent(8, files, func(i int) {
		if _, err := fs.Read(fmt.Sprintf("/small/f%d", i)); err != nil {
			panic(err)
		}
	})
	elapsed := time.Since(start)
	return float64(files) / elapsed.Seconds(), float64(elapsed.Microseconds()) / float64(files)
}

func runConcurrent(workers, n int, fn func(i int)) {
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := w; i < n; i += workers {
				fn(i)
			}
			done <- struct{}{}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
}

// timeQuery runs the query once untimed (warming lazily built indexes),
// then returns the result count and the mean latency of three timed runs.
func timeQuery(q func() (int, error)) (int, time.Duration) {
	results, err := q()
	if err != nil {
		panic(err)
	}
	const reps = 3
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := q(); err != nil {
			panic(err)
		}
	}
	return results, time.Since(start) / reps
}

func mustAdd(err error) {
	if err != nil {
		panic(err)
	}
}

func count(r interface{ Len() int }, err error) (int, error) {
	if err != nil {
		return 0, err
	}
	return r.Len(), nil
}

// newIcebergCatalogue builds a catalogue with n products and bergs
// iceberg observations plus the Norske Øer barrier.
func newIcebergCatalogue(n, bergs int) *catalogue.Catalogue {
	c := catalogue.New()
	for _, p := range sentinel.GenerateProducts(n, 3, extent) {
		mustAdd(c.AddProduct(p))
	}
	barrier := geom.Polygon{Shell: geom.Ring{
		{X: 2000, Y: 2000}, {X: 6000, Y: 2200}, {X: 6200, Y: 5800}, {X: 1900, Y: 5600},
	}}
	mustAdd(c.AddIceBarrier("NorskeOer", 2017, barrier))
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < bergs; i++ {
		p := geom.Point{
			X: extent.Min.X + rng.Float64()*extent.Width(),
			Y: extent.Min.Y + rng.Float64()*extent.Height(),
		}
		mustAdd(c.AddIceberg(fmt.Sprintf("b%d", i), 2016+rng.Intn(3), p))
	}
	c.Build()
	return c
}
