// Package analysis is a dependency-free static-analysis framework in
// the shape of golang.org/x/tools/go/analysis, built so the engine's
// concurrency, durability, and telemetry invariants can be
// machine-checked on every change without adding a module dependency
// (the container builds offline; see README "Static analysis").
//
// The API mirrors x/tools deliberately — Analyzer, Pass, Diagnostic,
// SuggestedFix — so the suite can migrate to the real framework by
// swapping imports if the module ever grows the dependency. Packages
// are loaded through `go list -test -deps -export -json` (offline,
// build-cache backed) and type-checked from source against the go
// command's export data, giving every analyzer full types.Info.
//
// Two marker comments steer the suite:
//
//	//eevet:hotpath            marks a function (or function literal)
//	                           as a per-row hot path; the hotpathalloc
//	                           analyzer checks only marked bodies.
//	//eevet:ignore [names] why suppresses diagnostics reported on the
//	                           same or next line, either from every
//	                           analyzer (bare) or the comma-separated
//	                           list; the trailing text documents why.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single package and
// reports findings through pass.Report; returning an error aborts the
// whole run (reserved for internal failures, not findings).
type Analyzer struct {
	Name string // short lower-case identifier, e.g. "vfsonly"
	Doc  string // one-paragraph description, shown by eevet -list
	Run  func(*Pass) error
}

// Pass carries one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the import path analyzers scope on. For testdata
	// packages it is synthesized from the directory layout, so
	// path-scoped analyzers behave identically under analysistest.
	PkgPath string
	// TestFile reports whether the file containing pos is a _test.go
	// file (analyzers that exempt tests call this per diagnostic site).
	TestFile func(pos token.Pos) bool
	Report   func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos            token.Pos
	End            token.Pos // zero when the finding has no extent
	Message        string
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is a mechanical rewrite that resolves the diagnostic;
// eevet -fix applies every fix of every finding it reports.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// Finding pairs a diagnostic with the analyzer that produced it and its
// resolved position, ready for printing or fixing.
type Finding struct {
	Analyzer string
	Position token.Position
	Diagnostic
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Position, f.Message, f.Analyzer)
}

// sortFindings orders findings by file, line, column, then analyzer so
// output is deterministic across runs and map iteration orders.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// --- marker comments ---

const (
	ignoreMarker  = "eevet:ignore"
	hotpathMarker = "eevet:hotpath"
)

// Markers indexes a package's eevet marker comments by file and line.
// The runner builds one per package for ignore suppression; analyzers
// that honor //eevet:hotpath build their own via CollectMarkers.
type Markers struct {
	fset *token.FileSet
	// ignore maps filename → line → analyzer names ("" = all).
	ignore map[string]map[int][]string
	// hotpath maps filename → set of lines carrying the hotpath marker.
	hotpath map[string]map[int]bool
}

// CollectMarkers scans every comment of every file once.
func CollectMarkers(fset *token.FileSet, files []*ast.File) *Markers {
	m := &Markers{
		fset:    fset,
		ignore:  make(map[string]map[int][]string),
		hotpath: make(map[string]map[int]bool),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				pos := fset.Position(c.Pos())
				switch {
				case strings.HasPrefix(text, ignoreMarker):
					rest := strings.TrimPrefix(text, ignoreMarker)
					names := parseIgnoreNames(rest)
					byLine := m.ignore[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]string)
						m.ignore[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], names...)
				case strings.HasPrefix(text, hotpathMarker):
					byLine := m.hotpath[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]bool)
						m.hotpath[pos.Filename] = byLine
					}
					byLine[pos.Line] = true
				}
			}
		}
	}
	return m
}

// parseIgnoreNames extracts the analyzer list from the text following
// "eevet:ignore". The first field, when it looks like a lower-case
// comma-separated identifier list, selects analyzers; everything else
// is free-text justification. A bare marker yields [""], matching all.
func parseIgnoreNames(rest string) []string {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return []string{""}
	}
	first := strings.Fields(rest)[0]
	if !isAnalyzerList(first) {
		return []string{""}
	}
	return strings.Split(first, ",")
}

func isAnalyzerList(s string) bool {
	for _, r := range s {
		if (r < 'a' || r > 'z') && r != ',' {
			return false
		}
	}
	return s != ""
}

// Suppressed reports whether a diagnostic from analyzer name at pos is
// covered by an ignore marker on the same line or the line above.
func (m *Markers) Suppressed(name string, pos token.Position) bool {
	byLine := m.ignore[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, n := range byLine[line] {
			if n == "" || n == name {
				return true
			}
		}
	}
	return false
}

// HotpathMarked reports whether fn (a *ast.FuncDecl or *ast.FuncLit)
// carries the //eevet:hotpath marker: in the FuncDecl doc comment, on
// the func line itself, or on the line immediately above it.
func (m *Markers) HotpathMarked(fn ast.Node) bool {
	if d, ok := fn.(*ast.FuncDecl); ok && d.Doc != nil {
		for _, c := range d.Doc.List {
			if strings.Contains(c.Text, hotpathMarker) {
				return true
			}
		}
	}
	pos := m.fset.Position(fn.Pos())
	byLine := m.hotpath[pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[pos.Line] || byLine[pos.Line-1]
}
