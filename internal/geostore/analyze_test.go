package geostore

import (
	"context"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/sparql"
)

// TestQueryAnalyzeIndexed checks the single-store analyze path: results
// identical to the plain query, with per-step counters populated.
func TestQueryAnalyzeIndexed(t *testing.T) {
	st := New(ModeIndexed)
	loadPoints(t, st, 300)
	st.Build()
	q := sparql.MustParse(SelectionQuery(geom.NewRect(100, 100, 700, 700)))

	plain, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	res, prof, err := st.QueryAnalyze(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != plain.Len() {
		t.Fatalf("analyzed rows = %d, plain = %d", res.Len(), plain.Len())
	}
	if prof == nil || len(prof.Steps) == 0 {
		t.Fatalf("profile = %+v, want per-step counters", prof)
	}
	if prof.Rows != res.Len() {
		t.Errorf("profile Rows = %d, want %d", prof.Rows, res.Len())
	}
	var elapsed int64
	for _, sp := range prof.Steps {
		elapsed += sp.SelfNs
	}
	if elapsed <= 0 {
		t.Error("profile has no per-step timing")
	}
}

// TestQueryAnalyzeParallel checks morsel-parallel runs report worker
// detail through the geostore path.
func TestQueryAnalyzeParallel(t *testing.T) {
	st := New(ModeIndexed)
	loadPoints(t, st, 300)
	st.Build()
	st.SetParallel(2, nil)
	defer st.SetParallel(1, nil)
	q := sparql.MustParse(SelectionQuery(geom.NewRect(100, 100, 700, 700)))

	res, prof, err := st.QueryAnalyze(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("expected rows")
	}
	if len(prof.Workers) == 0 {
		t.Fatalf("parallel profile has no worker detail: %+v", prof)
	}
}

// TestQueryAnalyzeNaive checks the legacy evaluator reports an honest
// timing-only profile instead of fabricated step stats.
func TestQueryAnalyzeNaive(t *testing.T) {
	st := New(ModeNaive)
	loadPoints(t, st, 100)
	st.Build()
	q := sparql.MustParse(SelectionQuery(geom.NewRect(0, 0, 1000, 1000)))

	res, prof, err := st.QueryAnalyze(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("expected rows")
	}
	if len(prof.Steps) != 0 {
		t.Errorf("naive profile has %d steps, want 0 (not instrumented)", len(prof.Steps))
	}
	if !strings.Contains(prof.Note, "naive") {
		t.Errorf("naive profile note = %q, want a naive-mode remark", prof.Note)
	}
}

// TestQueryAnalyzePartitioned checks the fan-out path attaches one
// sub-profile per partition that produced work and agrees with the
// plain query.
func TestQueryAnalyzePartitioned(t *testing.T) {
	ps := NewPartitioned(3)
	loadPoints(t, ps, 400)
	ps.Build()
	q := sparql.MustParse(SelectionQuery(geom.NewRect(100, 100, 900, 900)))

	plain, err := ps.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	res, prof, err := ps.QueryAnalyze(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != plain.Len() {
		t.Fatalf("analyzed rows = %d, plain = %d", res.Len(), plain.Len())
	}
	if prof == nil || len(prof.Partitions) == 0 {
		t.Fatalf("partitioned profile = %+v, want per-partition sub-profiles", prof)
	}
	var emitted int64
	for _, sub := range prof.Partitions {
		emitted += sub.Emitted
	}
	if emitted != prof.Emitted {
		t.Errorf("sum of partition emitted = %d, parent = %d", emitted, prof.Emitted)
	}
	if rendered := prof.Render(); !strings.Contains(rendered, "partition 0:") {
		t.Errorf("rendered profile missing partition sections:\n%s", rendered)
	}
}
