package endpoint_test

import (
	"os"
	"regexp"
	"testing"

	"repro/internal/endpoint"
	"repro/internal/rdf"
)

// TestMetricsDocumentedInReadme guards the README metrics table against
// drift: every metric family handleMetrics can emit must be named in
// README.md. The server is configured so all optional families render
// (worker pool attached, geostore engine for the plan-cache, spatial
// and morsel stats).
func TestMetricsDocumentedInReadme(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	srv := endpoint.New(testStore(t), endpoint.Config{Workers: rdf.NewWorkerPool(2)})
	body := get(t, srv, "/metrics", nil).Body.String()
	names := regexp.MustCompile(`(?m)^# TYPE (\S+) `).FindAllStringSubmatch(body, -1)
	if len(names) < 15 {
		t.Fatalf("only %d metric families in /metrics; exposition broken?\n%s", len(names), body)
	}
	// A replica registers one more family (the lag-gate rejection
	// counter); scrape that shape too so its row can't drift.
	replica := replicaServer(t, endpoint.ReplicaStatus{Connected: true}, endpoint.Config{})
	replicaBody := get(t, replica, "/metrics", nil).Body.String()
	names = append(names,
		regexp.MustCompile(`(?m)^# TYPE (\S+) `).FindAllStringSubmatch(replicaBody, -1)...)
	doc := string(readme)
	for _, m := range names {
		if !regexp.MustCompile(`\b` + regexp.QuoteMeta(m[1]) + `\b`).MatchString(doc) {
			t.Errorf("metric %s served by /metrics but not documented in README.md", m[1])
		}
	}
}
