// Package fixscope holds the same shapes the scoped analyzers flag,
// in a package outside their directories: every analyzer must report
// zero findings here.
package fixscope

import (
	"context"
	"os"
	"sync"
)

// Store shadows the engine's store name; locksafe only engages inside
// internal/rdf.
type Store struct {
	mu sync.RWMutex
	n  int
}

func (s *Store) Add(v int) {
	s.mu.Lock()
	s.n += v
	s.mu.Unlock()
}

func (s *Store) reenter(v int) {
	s.mu.Lock()
	s.Add(v) // locksafe: out of scope
	s.mu.Unlock()
}

func touch(path string) error {
	f, err := os.Create(path) // vfsonly: out of scope
	if err != nil {
		return err
	}
	return f.Close()
}

func root() context.Context {
	return context.Background() // ctxthread: out of scope
}
