package replication

import (
	"errors"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/storage/vfs"
	"repro/internal/telemetry"
)

// Split-brain pins: a demoted primary must never feed a replica that
// has followed a newer epoch, no matter how plausible its stream
// position looks.

// TestStaleEpochFrameRejected is the direct unit pin on the fence:
// applyFrame refuses any frame below the durable epoch, counts it, and
// the rejection is sticky.
func TestStaleEpochFrameRejected(t *testing.T) {
	rn := mustOpenNode(t, vfs.NewErrFS())
	defer rn.close()
	if err := saveState(rn.fsys, "db", State{Epoch: 5, Cursor: storage.Cursor{Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	rep, err := NewReplica(fastReplicaConfig(rn, "http://unused.invalid", m))
	if err != nil {
		t.Fatal(err)
	}
	err = rep.applyFrame(Frame{Type: FrameHeartbeat, Epoch: 4, Body: []byte{0}})
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("applyFrame(epoch 4 under fence 5) = %v, want ErrStaleEpoch", err)
	}
	if !isSticky(err) {
		t.Fatal("stale-epoch rejection must be sticky")
	}
	if got := m.epochRejections.Load(); got != 1 {
		t.Fatalf("epochRejections = %d, want 1", got)
	}
	if rep.Status().Epoch != 5 {
		t.Fatalf("fence moved to %d on a rejected frame", rep.Status().Epoch)
	}
}

// TestSplitBrainFenced is the end-to-end regression: two primaries
// share a WAL prefix, the replica follows the one with the higher
// epoch, and when it is later pointed at the demoted one — whose
// divergent tail sits at a byte-for-byte plausible cursor — it parks
// on ErrStaleEpoch without applying anything.
func TestSplitBrainFenced(t *testing.T) {
	// The demoted primary: epoch 1, three shared batches, then a
	// divergent commit made after the split.
	oldP := mustOpenNode(t, vfs.NewErrFS())
	defer oldP.close()
	if _, err := oldP.db.BumpEpoch(); err != nil {
		t.Fatal(err)
	}
	// The promoted primary: the same three batches replayed (identical
	// WAL bytes, so cursors transfer), fenced two bumps ahead.
	newP := mustOpenNode(t, vfs.NewErrFS())
	defer newP.close()
	for _, n := range []*node{oldP, newP} {
		for k := 0; k < 3; k++ {
			if err := n.addBatch(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	var newEpoch uint64
	for i := 0; i < 2; i++ {
		e, err := newP.db.BumpEpoch()
		if err != nil {
			t.Fatal(err)
		}
		newEpoch = e
	}

	oldFeed := fastFeed(oldP.db, nil)
	defer oldFeed.Close()
	oldSrv := newSwappableServer(oldFeed)
	defer oldSrv.Close()
	newFeed := fastFeed(newP.db, nil)
	defer newFeed.Close()
	newSrv := newSwappableServer(newFeed)
	defer newSrv.Close()

	// The replica follows the promoted primary and raises its fence.
	rfs := vfs.NewErrFS()
	if _, err := Bootstrap(nil, newSrv.URL(), testToken, rfs, "db"); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	rn := mustOpenNode(t, rfs)
	defer rn.close()
	rep, err := NewReplica(fastReplicaConfig(rn, newSrv.URL(), nil))
	if err != nil {
		t.Fatal(err)
	}
	go rep.Run()
	if !waitFor(2*time.Second, func() bool { return converged(rep, rn, 3) }) {
		t.Fatalf("replica never converged on the new primary: %+v", rep.Status())
	}
	if s := rep.Status(); s.Epoch != newEpoch {
		t.Fatalf("replica fence = %d, want %d", s.Epoch, newEpoch)
	}
	rep.Stop()

	// Meanwhile the demoted primary keeps taking writes it can never
	// legitimately replicate.
	divergent := pairTriple(100)
	if err := oldP.st.Add(divergent.S, divergent.P, divergent.O); err != nil {
		t.Fatal(err)
	}
	if err := oldP.st.RDF().CommitJournal(); err != nil {
		t.Fatal(err)
	}

	// Misdirect the replica at the demoted primary. Its cursor lands
	// exactly on the divergent batch in the old WAL, so without the
	// fence this would silently apply split-brain data.
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	rep2, err := NewReplica(fastReplicaConfig(rn, oldSrv.URL(), m))
	if err != nil {
		t.Fatal(err)
	}
	go rep2.Run()
	defer rep2.Stop()
	if !waitFor(2*time.Second, func() bool { return rep2.Status().Err != nil }) {
		t.Fatalf("replica never parked on the stale primary: %+v", rep2.Status())
	}
	if s := rep2.Status(); !errors.Is(s.Err, ErrStaleEpoch) {
		t.Fatalf("parked on %v, want ErrStaleEpoch", s.Err)
	}
	if got := m.epochRejections.Load(); got == 0 {
		t.Fatal("stale-primary frames were not counted as epoch rejections")
	}
	if s := rep2.Status(); s.Epoch != newEpoch {
		t.Fatalf("fence regressed to %d after stale reconnect, want %d", s.Epoch, newEpoch)
	}
	for _, tr := range sortedStoreTriples(rn.st) {
		if tr == divergent.String() {
			t.Fatal("divergent split-brain triple leaked into the replica")
		}
	}
	if got := sortedStoreTriples(rn.st); !equalStrings(got, wantPairPrefix(3)) {
		t.Fatalf("replica no longer holds exactly the shared prefix: %d triples", len(got))
	}
}
