package sparql

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/rdf"
)

// This file is the EXPLAIN ANALYZE surface over the instrumented
// executor (rdf.RunStats / rdf.ParallelRunStats): ExecuteAnalyzed and
// ExecuteParallelAnalyzed run a plan with stats collection on and shape
// the counters into a Profile — a JSON-serializable tree the endpoint
// attaches as a query sidecar and the slow-query ring retains — and
// ExplainAnalyze renders the static plan with measured per-step rows,
// matches, filter drops and timings for humans (eequery -analyze).

// StepProfile is one pipeline step's measured runtime joined with the
// planner's static description of it.
type StepProfile struct {
	// Step is the 1-based step number (matching Explain's numbering).
	Step int `json:"step"`
	// Access names the access path (index scan, merge join, or an index
	// probe's label, e.g. the spatial join).
	Access string `json:"access"`
	// Pattern is the triple pattern text ("" for probe steps).
	Pattern string `json:"pattern,omitempty"`
	// Est is the planner's estimated rows per upstream row (omitted for
	// probe steps, where it is unknown).
	Est float64 `json:"est,omitempty"`
	// Filters lists the labels of filters pushed to this step.
	Filters []string `json:"filters,omitempty"`
	// RowsIn counts upstream rows entering the step. On the parallel
	// path the first step's RowsIn is the number of morsels (each morsel
	// is one slice of the single logical first-step invocation).
	RowsIn int64 `json:"rows_in"`
	// RowsOut counts rows the step passed downstream (the next step's
	// RowsIn; for the last step, the emitted row count).
	RowsOut int64 `json:"rows_out"`
	// Matches counts index entries or probe candidates matching the
	// step's pattern, before pushed filters. For spatial-probe steps
	// this is the per-step spatial probe candidate count.
	Matches int64 `json:"matches"`
	// FilterDrops counts matches rejected by this step's pushed filters.
	FilterDrops int64 `json:"filter_drops"`
	// ElapsedNs is inclusive wall time: this step plus everything
	// downstream of it (summed across workers on the parallel path).
	ElapsedNs int64 `json:"elapsed_ns"`
	// SelfNs is ElapsedNs minus the next step's inclusive time: the time
	// attributable to this step alone.
	SelfNs int64 `json:"self_ns"`
}

// WorkerProfile is one parallel worker's share of a profiled run.
type WorkerProfile struct {
	Worker int `json:"worker"`
	// Morsels is the number of morsels this worker claimed.
	Morsels int64 `json:"morsels"`
	// Rows is the number of rows this worker emitted.
	Rows int64 `json:"rows"`
	// BusyNs is the worker's wall time inside the claim loop.
	BusyNs int64 `json:"busy_ns"`
	// Utilization is BusyNs over the run's total elapsed time (0..1).
	Utilization float64 `json:"utilization"`
}

// Profile is the result of one analyzed query execution. It serializes
// to JSON for the endpoint's analyze sidecar and /debug/queries, and
// renders to text via Render for eequery -analyze.
type Profile struct {
	// Query is the canonical query text; Fingerprint its hash.
	Query       string `json:"query,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	// Parallel is the executed worker degree (0 or 1 = sequential).
	Parallel int `json:"parallel,omitempty"`
	// ElapsedNs is the total execution wall time.
	ElapsedNs int64 `json:"elapsed_ns"`
	// Rows is the final result row count (after DISTINCT/ORDER/LIMIT
	// and projection).
	Rows int `json:"rows"`
	// SeedRows / SeedDrops count seed-stage rows entering the pipeline
	// and those rejected by seed-stage filters; SeedFilters labels them.
	SeedRows    int64    `json:"seed_rows"`
	SeedDrops   int64    `json:"seed_drops,omitempty"`
	SeedFilters []string `json:"seed_filters,omitempty"`
	// Emitted counts solution rows that left the pipeline (pre-LIMIT
	// truncation, post pushed filters).
	Emitted int64 `json:"emitted"`
	// Morsels is the number of morsels dispatched (parallel runs only).
	Morsels int64 `json:"morsels,omitempty"`
	// Steps is the per-step profile in execution order.
	Steps []StepProfile `json:"steps"`
	// Workers is the per-worker utilization (parallel runs only).
	Workers []WorkerProfile `json:"workers,omitempty"`
	// Partitions holds per-partition sub-profiles when a partitioned
	// store fanned the query out.
	Partitions []*Profile `json:"partitions,omitempty"`
	// Note carries execution-path remarks (e.g. "naive mode: executor
	// not instrumented").
	Note string `json:"note,omitempty"`
}

// buildSteps joins measured step counters with the plan's static step
// descriptions and derives RowsOut and SelfNs.
func (p *Plan) buildSteps(steps []rdf.StepRuntime, emitted int64) []StepProfile {
	infos := p.bgp.StepInfos()
	out := make([]StepProfile, len(infos))
	for i := range infos {
		sp := StepProfile{
			Step:    i + 1,
			Access:  infos[i].Access,
			Pattern: strings.TrimSuffix(infos[i].Pattern, " ."),
			Filters: infos[i].Filters,
		}
		if infos[i].Est >= 0 {
			sp.Est = infos[i].Est
		}
		// A run that never started (e.g. an unbound GROUP BY variable)
		// leaves the counters unsized; render zeros.
		if i < len(steps) {
			sp.RowsIn = steps[i].RowsIn
			sp.Matches = steps[i].Matches
			sp.FilterDrops = steps[i].FilterDrops
			sp.ElapsedNs = steps[i].ElapsedNs
		}
		out[i] = sp
	}
	for i := range out {
		if i+1 < len(out) {
			out[i].RowsOut = out[i+1].RowsIn
			if self := out[i].ElapsedNs - out[i+1].ElapsedNs; self > 0 {
				out[i].SelfNs = self
			}
		} else {
			out[i].RowsOut = emitted
			out[i].SelfNs = out[i].ElapsedNs
		}
	}
	return out
}

// newProfile fills the profile fields shared by both executors.
func (p *Plan) newProfile(elapsed time.Duration, rows int) *Profile {
	return &Profile{
		Query:       p.q.Canonical(),
		Fingerprint: p.q.Fingerprint(),
		ElapsedNs:   int64(elapsed),
		Rows:        rows,
		SeedFilters: p.bgp.SeedFilterLabels(),
	}
}

// ExecuteAnalyzed is ExecuteSeeded with runtime stats collection: it
// returns the results plus the execution Profile.
func (p *Plan) ExecuteAnalyzed(seeds []rdf.Row) (*Results, *Profile, error) {
	stats := p.bgp.NewRunStats()
	start := time.Now()
	res, err := p.executeSeededStats(seeds, stats)
	elapsed := time.Since(start)
	if err != nil {
		return nil, nil, err
	}
	prof := p.newProfile(elapsed, res.Len())
	prof.SeedRows, prof.SeedDrops = stats.SeedRows, stats.SeedDrops
	prof.Emitted = stats.Emitted
	prof.Steps = p.buildSteps(stats.Steps, stats.Emitted)
	return res, prof, nil
}

// ExecuteParallelAnalyzed is ExecuteParallelSeeded with runtime stats
// collection: per-worker counters are merged into one Profile with
// morsel and worker-utilization detail.
func (p *Plan) ExecuteParallelAnalyzed(seeds []rdf.Row, px ParallelExec) (*Results, *Profile, error) {
	stats := &rdf.ParallelRunStats{}
	px.Stats = stats
	start := time.Now()
	res, err := p.ExecuteParallelSeeded(seeds, px)
	elapsed := time.Since(start)
	if err != nil {
		return nil, nil, err
	}
	prof := p.newProfile(elapsed, res.Len())
	prof.Parallel = len(stats.Workers)
	if prof.Parallel == 0 {
		prof.Parallel = px.Degree
	}
	prof.SeedRows, prof.SeedDrops = stats.SeedRows, stats.SeedDrops
	prof.Emitted = stats.Emitted
	prof.Morsels = stats.Morsels
	prof.Steps = p.buildSteps(stats.Steps, stats.Emitted)
	for w, ws := range stats.Workers {
		wp := WorkerProfile{Worker: w, Morsels: ws.Morsels, Rows: ws.Rows, BusyNs: ws.BusyNs}
		if prof.ElapsedNs > 0 {
			wp.Utilization = float64(ws.BusyNs) / float64(prof.ElapsedNs)
			if wp.Utilization > 1 {
				wp.Utilization = 1
			}
		}
		prof.Workers = append(prof.Workers, wp)
	}
	return res, prof, nil
}

// ExplainAnalyze executes the plan (unseeded) with stats collection and
// renders the static plan followed by the measured per-step profile.
// Plans compiled for seeded evaluation should be executed through
// ExecuteAnalyzed/ExecuteParallelAnalyzed instead, with the profile
// rendered via Profile.Render.
func (p *Plan) ExplainAnalyze() (string, error) {
	_, prof, err := p.ExecuteAnalyzed(nil)
	if err != nil {
		return "", err
	}
	return p.Explain() + prof.Render(), nil
}

// TotalFilterDrops sums pushed-filter and seed-filter drops across the
// profile's steps and partition sub-profiles (the source of the
// endpoint's sparql_filter_drops_total counter).
func (prof *Profile) TotalFilterDrops() int64 {
	n := prof.SeedDrops
	for _, sp := range prof.Steps {
		n += sp.FilterDrops
	}
	for _, sub := range prof.Partitions {
		if sub != nil {
			n += sub.TotalFilterDrops()
		}
	}
	return n
}

// fmtNs renders a nanosecond count as a human duration.
func fmtNs(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// Render renders the profile as indented text (the eequery -analyze
// output format).
func (prof *Profile) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "analyze: %d rows in %s (emitted %d", prof.Rows, fmtNs(prof.ElapsedNs), prof.Emitted)
	if prof.SeedRows > 0 {
		fmt.Fprintf(&b, ", seed rows %d", prof.SeedRows)
	}
	if prof.SeedDrops > 0 {
		fmt.Fprintf(&b, ", seed drops %d", prof.SeedDrops)
	}
	b.WriteString(")\n")
	for _, sp := range prof.Steps {
		fmt.Fprintf(&b, "  step %d: %s", sp.Step, sp.Access)
		if sp.Pattern != "" {
			fmt.Fprintf(&b, "  %s", sp.Pattern)
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "    rows in %d, matches %d, filter drops %d, rows out %d  [incl %s, self %s]\n",
			sp.RowsIn, sp.Matches, sp.FilterDrops, sp.RowsOut, fmtNs(sp.ElapsedNs), fmtNs(sp.SelfNs))
	}
	if prof.Parallel > 1 || len(prof.Workers) > 0 {
		fmt.Fprintf(&b, "  parallel: %d workers, %d morsels\n", prof.Parallel, prof.Morsels)
		for _, wp := range prof.Workers {
			fmt.Fprintf(&b, "    worker %d: %d morsels, %d rows, busy %s (%.0f%% utilized)\n",
				wp.Worker, wp.Morsels, wp.Rows, fmtNs(wp.BusyNs), wp.Utilization*100)
		}
	}
	for i, sub := range prof.Partitions {
		fmt.Fprintf(&b, "  partition %d:\n", i)
		for _, line := range strings.Split(strings.TrimRight(sub.Render(), "\n"), "\n") {
			b.WriteString("  " + line + "\n")
		}
	}
	if prof.Note != "" {
		fmt.Fprintf(&b, "  note: %s\n", prof.Note)
	}
	return b.String()
}
