package replication

import (
	"bytes"
	"os"
	"regexp"
	"testing"

	"repro/internal/telemetry"
)

// TestReplicationMetricsDocumented guards the README metrics table
// against drift on the replication families: every family NewMetrics
// registers (plus the status gauges attached on a replica) must be
// named in README.md. The endpoint package runs the same check for the
// families its servers register.
func TestReplicationMetricsDocumented(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	m.attachReplicaStatus(func() Status { return Status{} })
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	names := regexp.MustCompile(`(?m)^# TYPE (\S+) `).FindAllStringSubmatch(buf.String(), -1)
	if len(names) < 10 {
		t.Fatalf("only %d replication metric families; registration broken?\n%s", len(names), buf.String())
	}
	doc := string(readme)
	for _, fam := range names {
		if !regexp.MustCompile(`\b` + regexp.QuoteMeta(fam[1]) + `\b`).MatchString(doc) {
			t.Errorf("replication metric %s registered but not documented in README.md", fam[1])
		}
	}
}
