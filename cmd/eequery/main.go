// Command eequery loads a synthetic linked-geospatial-data workload into
// the re-engineered geostore and evaluates one stSPARQL query against it.
//
// Usage:
//
//	eequery -n 10000 'SELECT ?f WHERE { ?f a ee:Feature . } LIMIT 5'
//	eequery -mode naive -n 10000 '<query>'   # Strabon-2012 baseline
//	eequery -format json '<query>'           # SPARQL 1.1 JSON results
//	eequery -explain '<query>'               # compiled plan: join order,
//	                                         # access paths, pushed filters
//	eequery -analyze '<query>'               # EXPLAIN ANALYZE: per-step
//	                                         # rows, matches, filter drops
//	                                         # and timings from a real run
//	eequery -parallel 4 '<query>'            # morsel-driven parallel
//	                                         # execution with 4 workers
//
// With no query argument, a default rectangular-selection query runs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/endpoint"
	"repro/internal/geom"
	"repro/internal/geostore"
	"repro/internal/sparql"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eequery:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eequery", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	n := fs.Int("n", 10000, "number of synthetic point features")
	mode := fs.String("mode", "indexed", "store mode: indexed or naive")
	seed := fs.Int64("seed", 42, "workload seed")
	format := fs.String("format", "table", "output format: table, json, csv, tsv or geojson")
	explain := fs.Bool("explain", false, "print the compiled query plan (join order, access paths, pushed filters) before the results")
	analyze := fs.Bool("analyze", false, "execute with per-step runtime stats and print the EXPLAIN ANALYZE profile before the results")
	parallel := fs.Int("parallel", 1, "morsel-driven executor workers (>= 2 enables parallel execution; indexed mode only)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return fmt.Errorf("usage: %w", err)
	}
	if fs.NArg() > 1 {
		fs.Usage()
		return fmt.Errorf("expected at most one query argument, got %v (is the query quoted?)", fs.Args())
	}

	var m geostore.Mode
	switch *mode {
	case "indexed":
		m = geostore.ModeIndexed
	case "naive":
		m = geostore.ModeNaive
	default:
		fs.Usage()
		return fmt.Errorf("unknown mode %q", *mode)
	}
	var outFormat endpoint.Format
	if *format != "table" {
		f, ok := endpoint.ParseFormat(*format)
		if !ok {
			fs.Usage()
			return fmt.Errorf("unknown format %q", *format)
		}
		outFormat = f
	}

	// Validate the query before doing any work, so a typo fails fast with
	// a clean error instead of aborting mid-output.
	query := fs.Arg(0)
	defaulted := query == ""
	if defaulted {
		query = geostore.SelectionQuery(geom.NewRect(1000, 1000, 2000, 2000)) + " LIMIT 10"
	}
	q, err := sparql.Parse(query)
	if err != nil {
		return err
	}

	extent := geom.NewRect(0, 0, 10000, 10000)
	st := geostore.New(m)
	st.SetParallel(*parallel, nil)
	for _, f := range geostore.GeneratePointFeatures(*n, *seed, extent) {
		if err := st.AddFeature(f); err != nil {
			return err
		}
	}
	st.Build()

	// The table format narrates to stdout; machine formats keep stdout
	// pure serialized results and narrate to stderr.
	info := os.Stdout
	if *format != "table" {
		info = os.Stderr
	}
	fmt.Fprintf(info, "loaded %d features (%d triples, %s mode)\n", *n, st.Len(), st.Mode())
	if defaulted {
		fmt.Fprintln(info, "no query given; running default rectangular selection")
	}
	if *explain || *analyze {
		text, err := st.Explain(q)
		if err != nil {
			return err
		}
		fmt.Fprintln(info, "--- plan ---")
		fmt.Fprint(info, text)
		fmt.Fprintln(info, "------------")
	}

	start := time.Now()
	var res *sparql.Results
	if *analyze {
		var prof *sparql.Profile
		res, prof, err = st.QueryAnalyze(context.Background(), q)
		if err != nil {
			return err
		}
		fmt.Fprintln(info, "--- analyze ---")
		fmt.Fprint(info, prof.Render())
		fmt.Fprintln(info, "---------------")
	} else {
		res, err = st.Query(q)
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(info, "%d rows in %v\n", res.Len(), elapsed.Round(time.Microsecond))
	if *format == "table" {
		fmt.Print(res)
		return nil
	}
	return endpoint.WriteResults(os.Stdout, outFormat, res, "")
}
