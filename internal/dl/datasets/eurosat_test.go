package datasets

import (
	"testing"

	"repro/internal/dl"
	"repro/internal/sentinel"
)

func TestEuroSATVectors(t *testing.T) {
	ds := EuroSATVectors(1000, 1)
	if ds.Len() != 1000 || ds.X.Cols != 13 || ds.Classes != 10 {
		t.Fatalf("shape = %d x %d, classes %d", ds.Len(), ds.X.Cols, ds.Classes)
	}
	// balanced labels
	counts := make([]int, 10)
	for _, y := range ds.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n != 100 {
			t.Errorf("class %d count = %d", c, n)
		}
	}
}

func TestEuroSATLearnable(t *testing.T) {
	ds := EuroSATVectors(4000, 2)
	train, test := ds.Split(0.8)

	nc := dl.FitNearestCentroid(train)
	baseAcc := nc.Accuracy(test)
	if baseAcc < 0.5 {
		t.Fatalf("centroid baseline accuracy = %v, classes not separable", baseAcc)
	}

	spec := dl.ModelSpec{Arch: dl.ArchMLP, In: 13, Hidden: 32, Classes: 10, Seed: 5}
	net, _ := dl.SingleWorker{}.Train(spec, train, dl.TrainConfig{
		Epochs: 30, BatchSize: 64, LR: 0.3, Momentum: 0.9, Seed: 5,
	})
	mlpAcc := net.Accuracy(test.X, test.Y)
	if mlpAcc < 0.85 {
		t.Errorf("MLP accuracy = %v, want >= 0.85", mlpAcc)
	}
	// Note: the nearest-centroid baseline is close to Bayes-optimal on
	// this class-conditional Gaussian generator, so the MLP approaching
	// (not necessarily beating) it is the expected outcome on pixel
	// vectors; the CNN/patch variant is where spatial context pays off
	// (see EXPERIMENTS.md, E5).
	if mlpAcc < baseAcc-0.08 {
		t.Errorf("MLP (%v) trails centroid baseline (%v) by too much", mlpAcc, baseAcc)
	}
}

func TestEuroSATPatches(t *testing.T) {
	ds := EuroSATPatches(200, 8, 3)
	if ds.X.Cols != 13*8*8 {
		t.Fatalf("patch cols = %d", ds.X.Cols)
	}
	// CNN forward compatibility
	spec := dl.ModelSpec{Arch: dl.ArchCNN, In: 13, PatchH: 8, PatchW: 8, Hidden: 16, Classes: 10, Seed: 1}
	net := spec.Build()
	x, _ := ds.Batch(0, 4)
	out := net.Forward(x)
	if out.Rows != 4 || out.Cols != 10 {
		t.Errorf("CNN forward = %dx%d", out.Rows, out.Cols)
	}
}

func TestSeaIceVectors(t *testing.T) {
	ds := SeaIceVectors(600, 4, 4)
	if ds.Classes != sentinel.NumIceClasses || ds.X.Cols != 2 {
		t.Fatalf("shape: classes=%d cols=%d", ds.Classes, ds.X.Cols)
	}
	train, test := ds.Split(0.8)
	nc := dl.FitNearestCentroid(train)
	if acc := nc.Accuracy(test); acc < 0.4 {
		t.Errorf("sea-ice centroid accuracy = %v (speckle makes this hard but not random)", acc)
	}
}

func TestCropVectors(t *testing.T) {
	ds, classes := CropVectors(400, 5)
	if len(classes) != 4 || ds.Classes != 4 {
		t.Fatalf("crop classes = %d", len(classes))
	}
	for _, y := range ds.Y {
		if y < 0 || y >= 4 {
			t.Fatalf("label out of range: %d", y)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := EuroSATVectors(100, 9)
	b := EuroSATVectors(100, 9)
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed produced different datasets")
		}
	}
}
