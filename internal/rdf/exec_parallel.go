package rdf

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements morsel-driven parallel execution of a BGPPlan:
// the work feeding the first pipeline step — the first step's index
// range on an unseeded run, or the sorted seed-row stream on a seeded
// one — is split into cache-sized morsels dispatched to a small worker
// pool. Each worker owns its execState and scratch Row, so the hot path
// stays allocation-free and lock-free, and claims morsels off one
// atomic counter, so the morsels a given worker processes are strictly
// increasing in stream order. That claim order is what keeps the
// sequential executor's merge-join machinery valid per worker: a
// worker's merge cursors only ever advance, and every later morsel it
// claims carries equal-or-higher sort keys.
//
// Parallel-aware result handling lives with the caller: workers hand
// rows to a MorselSink, which buffers per morsel and reduces in morsel
// index order, reproducing the sequential executor's output exactly
// (see internal/sparql's parallel sinks).

// WorkerGate bounds executor goroutines across concurrent queries. A
// query's first worker (its own goroutine) never goes through the gate;
// each extra worker must TryAcquire a slot and Release it on exit, so a
// server-wide pool caps total executor parallelism rather than
// parallelism per query.
type WorkerGate interface {
	// TryAcquire claims a worker slot without blocking.
	TryAcquire() bool
	// Release returns a slot claimed by TryAcquire.
	Release()
}

// WorkerPool is the standard WorkerGate: a counting semaphore with a
// busy gauge for /metrics. The zero value is not usable; call
// NewWorkerPool.
type WorkerPool struct {
	sem  chan struct{}
	busy atomic.Int64
}

// NewWorkerPool returns a gate admitting up to n extra workers in total
// across all concurrent queries.
func NewWorkerPool(n int) *WorkerPool {
	if n < 0 {
		n = 0
	}
	return &WorkerPool{sem: make(chan struct{}, n)}
}

// TryAcquire implements WorkerGate.
func (p *WorkerPool) TryAcquire() bool {
	select {
	case p.sem <- struct{}{}:
		p.busy.Add(1)
		return true
	default:
		return false
	}
}

// Release implements WorkerGate.
func (p *WorkerPool) Release() {
	p.busy.Add(-1)
	<-p.sem
}

// Busy returns the number of currently acquired worker slots (the
// sparql_exec_workers_busy gauge).
func (p *WorkerPool) Busy() int64 { return p.busy.Load() }

// Cap returns the pool capacity.
func (p *WorkerPool) Cap() int { return cap(p.sem) }

// Default morsel sizes: first-step triples and seed rows per morsel.
// Both keep a morsel's first-step footprint within L2 while leaving
// enough morsels for load balancing on skewed pipelines.
const (
	DefaultScanMorsel = 4096
	DefaultSeedMorsel = 256
)

// parCancelRows is how many pipeline extensions (scanned triples, probe
// candidates, merge-group bindings) pass between cancellation checks
// inside one morsel, bounding the latency of a timeout even when a
// single morsel explodes — including explosions whose rows are all
// filtered out before the final emit.
const parCancelRows = 4096

// ParallelOpts tunes RunParallel.
type ParallelOpts struct {
	// Workers is the requested parallelism degree; values < 1 mean 1.
	// The effective degree is further capped by the morsel count and by
	// Gate admission.
	Workers int
	// ScanMorsel and SeedMorsel override the morsel sizes (0 = default).
	ScanMorsel, SeedMorsel int
	// Cancel, when non-nil, is polled at every morsel claim and every
	// parCancelRows pipeline extensions; returning true stops all
	// workers promptly and makes RunParallel report cancellation.
	Cancel func() bool
	// Gate admits workers beyond the first; nil admits all requested.
	Gate WorkerGate
	// Morsels, when non-nil, is incremented once per dispatched morsel
	// (the sparql_exec_morsels_total counter).
	Morsels *atomic.Uint64
	// Stats, when non-nil, collects the run's EXPLAIN ANALYZE profile:
	// each worker accumulates into a private RunStats (no atomics, no
	// sharing on the hot path) and the results are merged into Stats
	// before RunParallel returns, along with per-worker utilization.
	Stats *ParallelRunStats
}

// MorselSink consumes the rows of a parallel run. Begin is called once
// before any worker starts; StartMorsel is called from the claiming
// worker's goroutine and returns the emit callback for that morsel's
// rows (nil stops all further morsel claims — the sink has what it
// needs); emitted Rows are reused by the worker and must be copied to
// be retained. FinishMorsel marks the morsel drained (its emit will not
// be called again); FinishWorker marks one worker done (sinks use it to
// run per-worker reduction, e.g. sorting, inside the pool).
//
// Each morsel is started, fed and finished by exactly one worker, so
// per-morsel sink state needs no locking; cross-morsel state does.
type MorselSink interface {
	Begin(morsels, workers int)
	StartMorsel(worker, morsel int) func(Row) bool
	FinishMorsel(worker, morsel int)
	FinishWorker(worker int)
}

// morselSource enumerates the units of first-step work.
type morselSource struct {
	// seeds is the seed-row stream (seeded runs); chunked by seedMorsel.
	seeds []Row
	// seg is the first step's index segment (unseeded runs); chunked by
	// scanMorsel. checkO carries a residual constant object the segment's
	// range prefix does not already enforce (S constant, P unbound).
	seg    []EncTriple
	checkO bool
	co     ID
	// whole marks a run with no splittable first step (an empty BGP):
	// one morsel executes the plan from the single empty row.
	whole bool

	chunk int // rows or triples per morsel
	count int // number of morsels
}

// RunParallel executes the plan with morsel-driven parallelism,
// streaming rows into sink. It returns true when opt.Cancel stopped the
// run early (the sink's contents are then incomplete). seeds follows
// the same contract as Run. Like Run, the store's read lock is held for
// the whole call; emit and filter callbacks must not mutate the store.
func (p *BGPPlan) RunParallel(s *Store, seeds []Row, opt ParallelOpts, sink MorselSink) bool {
	if opt.Stats != nil && len(opt.Stats.Steps) != len(p.steps) {
		opt.Stats.Steps = make([]StepRuntime, len(p.steps))
	}
	if p.empty {
		sink.Begin(0, 0)
		return false
	}
	s.ensureIndexed()
	s.mu.RLock()
	defer s.mu.RUnlock()

	// Seed-stage filters gate the run exactly as in Run: on an unseeded
	// run they are applied once to the single empty row.
	if seeds == nil && len(p.seedFilters) > 0 {
		empty := make(Row, p.numSlots)
		for _, f := range p.seedFilters {
			if !f.Pred(empty) {
				if opt.Stats != nil {
					opt.Stats.SeedRows, opt.Stats.SeedDrops = 1, 1
				}
				sink.Begin(0, 0)
				return false
			}
		}
	}

	src := p.morselSource(s, seeds, opt)
	if src.count == 0 {
		sink.Begin(0, 0)
		return false
	}

	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > src.count {
		workers = src.count
	}
	// Workers beyond the first must win a slot from the server-wide
	// gate; on a saturated server the query degrades gracefully toward
	// sequential execution instead of oversubscribing the host.
	extra := 0
	if workers > 1 && opt.Gate != nil {
		for extra < workers-1 {
			if !opt.Gate.TryAcquire() {
				break
			}
			extra++
		}
		workers = extra + 1
	} else if workers > 1 {
		extra = workers - 1
	}

	sink.Begin(src.count, workers)

	var (
		next     atomic.Int64 // next unclaimed morsel
		canceled atomic.Bool
	)
	segs := p.resolveSegsLocked(s)

	// Profiled runs give each worker a private stats sink; they are merged
	// after the pool drains so the instrumented hot path needs no atomics.
	var wstats []*RunStats
	var winfo []WorkerRunStats
	if opt.Stats != nil {
		wstats = make([]*RunStats, workers)
		for w := range wstats {
			wstats[w] = p.NewRunStats()
		}
		winfo = make([]WorkerRunStats, workers)
	}

	worker := func(w int) {
		st := &execState{s: s, plan: p, segs: segs,
			cancel: opt.Cancel, tick: parCancelRows, aborted: &canceled}
		if wstats != nil {
			st.stats = wstats[w]
		}
		if segs != nil {
			st.cursors = make([]int, len(p.steps))
		}
		var busyStart time.Time
		if winfo != nil {
			busyStart = time.Now()
		}
		row := make(Row, p.numSlots)
		for {
			m := int(next.Add(1)) - 1
			if m >= src.count {
				break
			}
			if opt.Cancel != nil && opt.Cancel() {
				canceled.Store(true)
				break
			}
			emit := sink.StartMorsel(w, m)
			if emit == nil {
				break
			}
			if opt.Morsels != nil {
				opt.Morsels.Add(1)
			}
			if winfo != nil {
				winfo[w].Morsels++
			}
			st.emit = emit
			p.runMorsel(st, src, m, row)
			sink.FinishMorsel(w, m)
			if canceled.Load() {
				break
			}
		}
		if winfo != nil {
			winfo[w].BusyNs = int64(time.Since(busyStart))
			winfo[w].Rows = st.stats.Emitted
		}
		sink.FinishWorker(w)
	}

	if workers == 1 {
		worker(0)
	} else {
		var wg sync.WaitGroup
		for w := 1; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				worker(w)
			}(w)
		}
		worker(0)
		wg.Wait()
	}
	if opt.Gate != nil {
		for i := 0; i < extra; i++ {
			opt.Gate.Release()
		}
	}
	if opt.Stats != nil {
		for _, ws := range wstats {
			opt.Stats.RunStats.add(ws)
		}
		opt.Stats.Workers = winfo
		for _, wi := range winfo {
			opt.Stats.Morsels += wi.Morsels
		}
		if seeds == nil {
			// The unseeded pipeline starts from one empty row, matching
			// the sequential executor's seed accounting.
			opt.Stats.SeedRows = 1
		}
	}
	return canceled.Load()
}

// resolveSegsLocked resolves the merge-join segments of the plan (the
// per-run part of Run's setup); the slices are shared read-only across
// workers, the cursors are per worker.
func (p *BGPPlan) resolveSegsLocked(s *Store) [][]EncTriple {
	var segs [][]EncTriple
	for i := range p.steps {
		step := &p.steps[i]
		if step.merge == mergeNone {
			continue
		}
		if segs == nil {
			segs = make([][]EncTriple, len(p.steps))
		}
		switch step.merge {
		case mergeS:
			segs[i] = s.posRangeLocked(step.segA, step.segB)
		case mergeOConstS:
			segs[i] = s.spoRangeLocked(step.segA, step.segB)
		case mergeONewS:
			segs[i] = s.posRangeLocked(step.segA, NoID)
		}
	}
	return segs
}

// morselSource builds the morsel decomposition for this run. Caller
// holds the read lock with pending writes flushed.
func (p *BGPPlan) morselSource(s *Store, seeds []Row, opt ParallelOpts) morselSource {
	if seeds != nil {
		chunk := opt.SeedMorsel
		if chunk <= 0 {
			chunk = DefaultSeedMorsel
		}
		return morselSource{seeds: seeds, chunk: chunk, count: (len(seeds) + chunk - 1) / chunk}
	}
	if len(p.steps) == 0 || p.steps[0].probe != nil {
		// No splittable first step: the whole plan is one morsel. (An
		// unseeded first step is always a pattern scan; the probe guard
		// is defensive.)
		return morselSource{whole: true, count: 1}
	}
	src := p.firstStepRangeLocked(s)
	chunk := opt.ScanMorsel
	if chunk <= 0 {
		chunk = DefaultScanMorsel
	}
	src.chunk = chunk
	src.count = (len(src.seg) + chunk - 1) / chunk
	return src
}

// firstStepRangeLocked computes the contiguous index segment the first
// step's scan enumerates, mirroring matchLocked's index dispatch so the
// concatenation of morsels visits triples in exactly the sequential
// executor's order. Positions the range prefix does not pin become
// residual per-triple checks.
func (p *BGPPlan) firstStepRangeLocked(s *Store) morselSource {
	step := &p.steps[0]
	// At step 0 of an unseeded run every position is refConst or refNew.
	var cs, cp, co ID = NoID, NoID, NoID
	if step.s.kind == refConst {
		cs = step.s.id
	}
	if step.p.kind == refConst {
		cp = step.p.id
	}
	if step.o.kind == refConst {
		co = step.o.id
	}
	var src morselSource
	switch {
	case cs != NoID:
		// scanSPO order. Tighten the range by P when it is constant; a
		// constant O with unbound P stays a residual check.
		switch {
		case cp != NoID && co != NoID:
			lo, hi := rangeBounds(s.spo, lessSPO, EncTriple{cs, cp, co}, EncTriple{cs, cp, co + 1})
			src.seg = s.spo[lo:hi]
		case cp != NoID:
			lo, hi := rangeBounds(s.spo, lessSPO, EncTriple{S: cs, P: cp}, EncTriple{S: cs, P: cp + 1})
			src.seg = s.spo[lo:hi]
		default:
			lo, hi := rangeBounds(s.spo, lessSPO, EncTriple{S: cs}, EncTriple{S: cs + 1})
			src.seg = s.spo[lo:hi]
			if co != NoID {
				src.checkO, src.co = true, co
			}
		}
	case cp != NoID:
		// scanPOS order.
		if co != NoID {
			lo, hi := rangeBounds(s.pos, lessPOS, EncTriple{P: cp, O: co}, EncTriple{P: cp, O: co + 1})
			src.seg = s.pos[lo:hi]
		} else {
			lo, hi := rangeBounds(s.pos, lessPOS, EncTriple{P: cp}, EncTriple{P: cp + 1})
			src.seg = s.pos[lo:hi]
		}
	case co != NoID:
		// scanOSP order.
		lo, hi := rangeBounds(s.osp, lessOSP, EncTriple{O: co}, EncTriple{O: co + 1})
		src.seg = s.osp[lo:hi]
	default:
		src.seg = s.spo
	}
	return src
}

// runMorsel executes one morsel's slice of first-step work through the
// whole pipeline.
//
//eevet:hotpath
func (p *BGPPlan) runMorsel(st *execState, src morselSource, m int, row Row) {
	switch {
	case src.whole:
		for i := range row {
			row[i] = NoID
		}
		st.run(0, row)
	case src.seeds != nil:
		lo := m * src.chunk
		hi := lo + src.chunk
		if hi > len(src.seeds) {
			hi = len(src.seeds)
		}
	seedLoop:
		for _, seed := range src.seeds[lo:hi] {
			copy(row, seed)
			if st.stats != nil {
				st.stats.SeedRows++
			}
			for _, f := range p.seedFilters {
				if !f.Pred(row) {
					if st.stats != nil {
						st.stats.SeedDrops++
					}
					continue seedLoop
				}
			}
			if !st.run(0, row) {
				return
			}
		}
	default:
		lo := m * src.chunk
		hi := lo + src.chunk
		if hi > len(src.seg) {
			hi = len(src.seg)
		}
		if st.stats != nil {
			st.runScanSliceTimed(&p.steps[0], src, src.seg[lo:hi], row)
			return
		}
		st.runScanSlice(&p.steps[0], src, src.seg[lo:hi], row)
	}
}

// runScanSliceTimed wraps runScanSlice with step 0's profile counters
// (EXPLAIN ANALYZE runs only). The morsel slice bypasses run(0), so
// step 0's accounting is kept here: one rows-in per morsel (each morsel
// is one slice of the single logical first-step invocation), inclusive
// elapsed around the whole slice. Split out of runMorsel so the
// hotpath-marked default path stays clock-free, mirroring
// run/runInstrumented.
func (st *execState) runScanSliceTimed(step *planStep, src morselSource, seg []EncTriple, row Row) {
	sr := &st.stats.Steps[0]
	sr.RowsIn++
	start := time.Now()
	st.runScanSlice(step, src, seg, row)
	sr.ElapsedNs += int64(time.Since(start))
}

// runScanSlice is runScan over an explicit first-step slice: the same
// residual checks, intra-pattern equality constraints, fresh-variable
// bindings and pushed filters, continuing into steps[1:].
func (st *execState) runScanSlice(step *planStep, src morselSource, seg []EncTriple, row Row) bool {
	for i := range seg {
		t := seg[i]
		if st.cancel != nil && st.pollCancel() {
			return false
		}
		if src.checkO && t.O != src.co {
			continue
		}
		if step.eqPS && t.P != t.S {
			continue
		}
		if step.eqOS && t.O != t.S {
			continue
		}
		if step.eqOP && t.O != t.P {
			continue
		}
		if st.stats != nil {
			st.stats.Steps[0].Matches++
		}
		if step.s.kind == refNew {
			row[step.s.slot] = t.S
		}
		if step.p.kind == refNew {
			row[step.p.slot] = t.P
		}
		if step.o.kind == refNew {
			row[step.o.slot] = t.O
		}
		passed := true
		for _, f := range step.filters {
			if !f.Pred(row) {
				passed = false
				break
			}
		}
		if !passed {
			if st.stats != nil {
				st.stats.Steps[0].FilterDrops++
			}
			continue
		}
		if !st.run(1, row) {
			return false
		}
	}
	return true
}

// ParallelSplit names the morsel decomposition RunParallel will use for
// this plan (for Explain): the sorted seed stream on seeded plans, the
// first step's index range otherwise.
func (p *BGPPlan) ParallelSplit(seeded bool) string {
	if p.empty {
		return "none (plan is empty)"
	}
	if seeded {
		return "sorted seed stream"
	}
	if len(p.steps) == 0 {
		return "single empty row"
	}
	return fmt.Sprintf("first-step range [%s]", p.steps[0].access)
}
