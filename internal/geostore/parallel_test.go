package geostore

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// parallelTestQueries exercise every indexed execution path under the
// morsel-driven executor: plain scans and joins, pushed filters,
// DISTINCT, aggregates, ORDER BY/LIMIT/OFFSET, R-tree-seeded spatial
// selection with in-pipeline refiners, and variable-variable spatial
// join probes.
var parallelTestQueries = []string{
	`PREFIX ee: <http://extremeearth.eu/ontology#>
	 SELECT ?f WHERE { ?f a ee:Feature . }`,
	`PREFIX ee: <http://extremeearth.eu/ontology#>
	 SELECT ?f ?wkt WHERE {
		?f a ee:Feature . ?f geo:hasGeometry ?g . ?g geo:asWKT ?wkt .
	 } ORDER BY ?wkt LIMIT 25 OFFSET 5`,
	`SELECT DISTINCT ?p WHERE { ?s ?p ?o . }`,
	`PREFIX ee: <http://extremeearth.eu/ontology#>
	 SELECT (COUNT(*) AS ?n) WHERE { ?f a ee:Feature . ?f geo:hasGeometry ?g . }`,
	`PREFIX ee: <http://extremeearth.eu/ontology#>
	 SELECT ?f WHERE {
		?f a ee:Feature . ?f geo:hasGeometry ?g . ?g geo:asWKT ?wkt .
		FILTER(geof:sfIntersects(?wkt, "POLYGON ((0 0, 600 0, 600 600, 0 600, 0 0))"^^geo:wktLiteral))
	 }`,
	`PREFIX ee: <http://extremeearth.eu/ontology#>
	 SELECT ?a ?b WHERE {
		?a geo:hasGeometry ?ga . ?ga geo:asWKT ?wa .
		?b geo:hasGeometry ?gb . ?gb geo:asWKT ?wb .
		FILTER(geof:distance(?wa, ?wb) < 15)
	 } LIMIT 40`,
}

func rowStrings(r *sparql.Results) []string {
	out := make([]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		var b strings.Builder
		for _, v := range r.Vars {
			b.WriteString(row[v].String())
			b.WriteByte('\x1f')
		}
		out = append(out, b.String())
	}
	return out
}

// TestParallelMatchesSequential runs every query on two identically
// loaded indexed stores — one sequential, one morsel-parallel — and
// requires byte-identical results (the parallel sinks reduce in morsel
// order, which is the sequential stream order).
func TestParallelMatchesSequential(t *testing.T) {
	seq := New(ModeIndexed)
	par := New(ModeIndexed)
	loadPoints(t, seq, 400)
	loadPoints(t, par, 400)
	seq.Build()
	par.Build()
	// An explicit degree: NumCPU can be 1 (which would disable the
	// parallel path); oversubscribing cores only interleaves goroutines.
	par.SetParallel(max(4, runtime.NumCPU()), nil)

	for i, qs := range parallelTestQueries {
		want, err := seq.QueryString(qs)
		if err != nil {
			t.Fatalf("query %d sequential: %v", i, err)
		}
		got, err := par.QueryString(qs)
		if err != nil {
			t.Fatalf("query %d parallel: %v", i, err)
		}
		w, g := rowStrings(want), rowStrings(got)
		if len(w) != len(g) {
			t.Fatalf("query %d: rows = %d, want %d", i, len(g), len(w))
		}
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("query %d row %d:\n got %q\nwant %q", i, j, g[j], w[j])
			}
		}
	}
	if par.ExecStats() == 0 {
		t.Fatal("parallel store dispatched no morsels")
	}
	if seq.ExecStats() != 0 {
		t.Fatal("sequential store dispatched morsels")
	}
}

// TestPartitionedParallelMatches checks the scale-out paths (fan-out,
// broadcast spatial join, merged fallback) produce identical results
// with per-partition morsel parallelism on.
func TestPartitionedParallelMatches(t *testing.T) {
	seq := NewPartitioned(3)
	par := NewPartitioned(3)
	loadPoints(t, seq, 300)
	loadPoints(t, par, 300)
	seq.Build()
	par.Build()
	par.SetParallel(max(4, runtime.NumCPU()), nil)

	queries := append([]string(nil), parallelTestQueries...)
	// Non-decomposable join shape: forces the merged fallback store.
	queries = append(queries, `PREFIX ee: <http://extremeearth.eu/ontology#>
	 SELECT ?a ?b WHERE {
		?a geo:hasGeometry ?ga . ?ga geo:asWKT ?wa .
		?b geo:hasGeometry ?gb . ?gb geo:asWKT ?wb .
		FILTER(geof:sfIntersects(?wa, ?wb) && geof:distance(?wa, ?wb) < 50)
	 } ORDER BY ?a LIMIT 30`)
	for i, qs := range queries {
		want, err := seq.QueryString(qs)
		if err != nil {
			t.Fatalf("query %d sequential: %v", i, err)
		}
		got, err := par.QueryString(qs)
		if err != nil {
			t.Fatalf("query %d parallel: %v", i, err)
		}
		if want.Len() != got.Len() {
			t.Fatalf("query %d: rows = %d, want %d", i, got.Len(), want.Len())
		}
		w, g := rowStrings(want), rowStrings(got)
		for j := range w {
			if w[j] != g[j] {
				t.Fatalf("query %d row %d:\n got %q\nwant %q", i, j, g[j], w[j])
			}
		}
	}
}

// TestParallelQueryTimeout is the regression test for timeout
// cancellation: a cartesian blow-up (millions of pipeline rows) must be
// stopped promptly by a context deadline instead of burning all workers
// to completion, because cancellation is polled at morsel dispatch and
// periodically inside each morsel's pipeline.
func TestParallelQueryTimeout(t *testing.T) {
	st := New(ModeIndexed)
	loadPoints(t, st, 3000)
	st.Build()
	st.SetParallel(2, nil)

	for _, qs := range []string{
		`PREFIX ee: <http://extremeearth.eu/ontology#>
		 SELECT (COUNT(*) AS ?n) WHERE { ?a a ee:Feature . ?b a ee:Feature . ?c geo:asWKT ?w . }`,
		// The same explosion with every row filtered out before the
		// final emit: cancellation must be polled on pipeline
		// extensions, not only on emitted rows.
		`PREFIX ee: <http://extremeearth.eu/ontology#>
		 SELECT ?a WHERE { ?a a ee:Feature . ?b a ee:Feature . ?c geo:asWKT ?w .
			FILTER(?w = "nope") }`,
	} {
		q, err := sparql.Parse(qs)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		start := time.Now()
		_, err = st.QueryContext(ctx, q)
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded", err)
		}
		// The full cross product is billions of rows; finishing anywhere
		// near the deadline proves the workers actually stopped.
		if elapsed > 5*time.Second {
			t.Fatalf("timed-out query ran for %v", elapsed)
		}
	}
}

// TestParallelExplainAnnotation checks Explain reports the degree and
// the chosen split on parallel stores.
func TestParallelExplainAnnotation(t *testing.T) {
	st := New(ModeIndexed)
	loadPoints(t, st, 50)
	st.Build()
	st.SetParallel(4, nil)

	q, err := sparql.Parse(`PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f WHERE { ?f a ee:Feature . }`)
	if err != nil {
		t.Fatal(err)
	}
	text, err := st.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "workers=4") {
		t.Fatalf("Explain missing workers=4:\n%s", text)
	}
	if !strings.Contains(text, "split=first-step range") {
		t.Fatalf("Explain missing split description:\n%s", text)
	}

	spatial, err := sparql.Parse(SelectionQuery(geom.NewRect(0, 0, 500, 500)))
	if err != nil {
		t.Fatal(err)
	}
	text, err = st.Explain(spatial)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "split=sorted seed stream") {
		t.Fatalf("Explain missing seed split:\n%s", text)
	}
}

// TestParallelGateDegradation checks a saturated worker gate degrades
// execution to fewer workers without affecting results.
func TestParallelGateDegradation(t *testing.T) {
	st := New(ModeIndexed)
	loadPoints(t, st, 200)
	st.Build()
	gate := rdf.NewWorkerPool(0) // no extra workers ever admitted
	st.SetParallel(8, gate)

	res, err := st.QueryString(`PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f WHERE { ?f a ee:Feature . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 200 {
		t.Fatalf("rows = %d, want 200", res.Len())
	}
	if gate.Busy() != 0 {
		t.Fatalf("gate busy = %d after query", gate.Busy())
	}
}
