package dl

import (
	"math"
	"math/rand"
)

// Layer is one differentiable stage of a network. Forward consumes a
// batch (rows = samples) and Backward consumes the gradient w.r.t. the
// layer output, returning the gradient w.r.t. the input and accumulating
// parameter gradients.
type Layer interface {
	Forward(x Matrix) Matrix
	Backward(gradOut Matrix) Matrix
	// Infer is Forward without recording backward-pass state, so a
	// trained network can serve concurrent Predict calls (the extraction
	// pipeline fans inference out across scenes).
	Infer(x Matrix) Matrix
	// Params returns the layer's parameter matrices (nil for stateless
	// layers); Grads returns matching gradient accumulators.
	Params() []*Matrix
	Grads() []*Matrix
}

// Dense is a fully connected layer: y = xW + b.
type Dense struct {
	W, B   Matrix
	gW, gB Matrix
	lastX  Matrix
}

// NewDense constructs a Glorot-initialized dense layer.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		W:  NewMatrix(in, out),
		B:  NewMatrix(1, out),
		gW: NewMatrix(in, out),
		gB: NewMatrix(1, out),
	}
	GlorotInit(d.W, in, out, rng)
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x Matrix) Matrix {
	d.lastX = x
	return d.Infer(x)
}

// Infer implements Layer.
func (d *Dense) Infer(x Matrix) Matrix {
	out := MatMul(x, d.W)
	for r := 0; r < out.Rows; r++ {
		row := out.Row(r)
		for c := range row {
			row[c] += d.B.Data[c]
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut Matrix) Matrix {
	// dW = xᵀ * gradOut ; dB = column sums ; dx = gradOut * Wᵀ
	gw := MatMulTransA(d.lastX, gradOut)
	AddInPlace(d.gW, gw)
	for r := 0; r < gradOut.Rows; r++ {
		row := gradOut.Row(r)
		for c := range row {
			d.gB.Data[c] += row[c]
		}
	}
	return MatMulTransB(gradOut, d.W)
}

// Params implements Layer.
func (d *Dense) Params() []*Matrix { return []*Matrix{&d.W, &d.B} }

// Grads implements Layer.
func (d *Dense) Grads() []*Matrix { return []*Matrix{&d.gW, &d.gB} }

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// Forward implements Layer.
func (r *ReLU) Forward(x Matrix) Matrix {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Infer implements Layer.
func (r *ReLU) Infer(x Matrix) Matrix {
	out := x.Clone()
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut Matrix) Matrix {
	out := gradOut.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Matrix { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*Matrix { return nil }

// Conv2D is a valid-padding 2D convolution over multi-channel square
// inputs. Batches are rows of flattened [C][H][W] tensors.
type Conv2D struct {
	InC, InH, InW int
	OutC, K       int    // kernel size K x K
	W, B          Matrix // W: OutC x (InC*K*K); B: 1 x OutC
	gW, gB        Matrix
	lastX         Matrix
}

// NewConv2D constructs a convolution layer.
func NewConv2D(inC, inH, inW, outC, k int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		InC: inC, InH: inH, InW: inW, OutC: outC, K: k,
		W:  NewMatrix(outC, inC*k*k),
		B:  NewMatrix(1, outC),
		gW: NewMatrix(outC, inC*k*k),
		gB: NewMatrix(1, outC),
	}
	GlorotInit(c.W, inC*k*k, outC, rng)
	return c
}

// OutH returns the output height.
func (c *Conv2D) OutH() int { return c.InH - c.K + 1 }

// OutW returns the output width.
func (c *Conv2D) OutW() int { return c.InW - c.K + 1 }

// OutSize returns the flattened output length per sample.
func (c *Conv2D) OutSize() int { return c.OutC * c.OutH() * c.OutW() }

// Forward implements Layer.
func (c *Conv2D) Forward(x Matrix) Matrix {
	c.lastX = x
	return c.Infer(x)
}

// Infer implements Layer.
func (c *Conv2D) Infer(x Matrix) Matrix {
	oh, ow := c.OutH(), c.OutW()
	out := NewMatrix(x.Rows, c.OutSize())
	for n := 0; n < x.Rows; n++ {
		in := x.Row(n)
		o := out.Row(n)
		for oc := 0; oc < c.OutC; oc++ {
			w := c.W.Row(oc)
			bias := c.B.Data[oc]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float32
					wi := 0
					for ic := 0; ic < c.InC; ic++ {
						chOff := ic * c.InH * c.InW
						for ky := 0; ky < c.K; ky++ {
							rowOff := chOff + (oy+ky)*c.InW + ox
							for kx := 0; kx < c.K; kx++ {
								s += w[wi] * in[rowOff+kx]
								wi++
							}
						}
					}
					o[oc*oh*ow+oy*ow+ox] = s + bias
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut Matrix) Matrix {
	oh, ow := c.OutH(), c.OutW()
	gradIn := NewMatrix(gradOut.Rows, c.InC*c.InH*c.InW)
	for n := 0; n < gradOut.Rows; n++ {
		in := c.lastX.Row(n)
		g := gradOut.Row(n)
		gi := gradIn.Row(n)
		for oc := 0; oc < c.OutC; oc++ {
			w := c.W.Row(oc)
			gw := c.gW.Row(oc)
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					gv := g[oc*oh*ow+oy*ow+ox]
					if gv == 0 {
						continue
					}
					c.gB.Data[oc] += gv
					wi := 0
					for ic := 0; ic < c.InC; ic++ {
						chOff := ic * c.InH * c.InW
						for ky := 0; ky < c.K; ky++ {
							rowOff := chOff + (oy+ky)*c.InW + ox
							for kx := 0; kx < c.K; kx++ {
								gw[wi] += gv * in[rowOff+kx]
								gi[rowOff+kx] += gv * w[wi]
								wi++
							}
						}
					}
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (c *Conv2D) Params() []*Matrix { return []*Matrix{&c.W, &c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*Matrix { return []*Matrix{&c.gW, &c.gB} }

// MaxPool2D is a non-overlapping max pooling layer over [C][H][W] inputs.
type MaxPool2D struct {
	C, H, W, Pool int
	argmax        []int
	rows          int
}

// NewMaxPool2D constructs a pooling layer; H and W must divide by pool.
func NewMaxPool2D(c, h, w, pool int) *MaxPool2D {
	return &MaxPool2D{C: c, H: h, W: w, Pool: pool}
}

// OutSize returns the flattened output length per sample.
func (p *MaxPool2D) OutSize() int {
	return p.C * (p.H / p.Pool) * (p.W / p.Pool)
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x Matrix) Matrix {
	p.rows = x.Rows
	if cap(p.argmax) < x.Rows*p.OutSize() {
		p.argmax = make([]int, x.Rows*p.OutSize())
	}
	p.argmax = p.argmax[:x.Rows*p.OutSize()]
	return p.pool(x, p.argmax)
}

// Infer implements Layer.
func (p *MaxPool2D) Infer(x Matrix) Matrix {
	return p.pool(x, nil)
}

// pool runs max pooling; with a non-nil argmax it records the winning
// input index per output cell for the backward pass.
func (p *MaxPool2D) pool(x Matrix, argmax []int) Matrix {
	oh, ow := p.H/p.Pool, p.W/p.Pool
	out := NewMatrix(x.Rows, p.OutSize())
	for n := 0; n < x.Rows; n++ {
		in := x.Row(n)
		o := out.Row(n)
		for c := 0; c < p.C; c++ {
			chOff := c * p.H * p.W
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					bestIdx := 0
					for ky := 0; ky < p.Pool; ky++ {
						for kx := 0; kx < p.Pool; kx++ {
							idx := chOff + (oy*p.Pool+ky)*p.W + ox*p.Pool + kx
							if in[idx] > best {
								best = in[idx]
								bestIdx = idx
							}
						}
					}
					oi := c*oh*ow + oy*ow + ox
					o[oi] = best
					if argmax != nil {
						argmax[n*p.OutSize()+oi] = bestIdx
					}
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(gradOut Matrix) Matrix {
	gradIn := NewMatrix(gradOut.Rows, p.C*p.H*p.W)
	for n := 0; n < gradOut.Rows; n++ {
		g := gradOut.Row(n)
		gi := gradIn.Row(n)
		for oi, gv := range g {
			gi[p.argmax[n*p.OutSize()+oi]] += gv
		}
	}
	return gradIn
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*Matrix { return nil }

// Grads implements Layer.
func (p *MaxPool2D) Grads() []*Matrix { return nil }
