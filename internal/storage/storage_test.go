package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/geostore"
	"repro/internal/rdf"
	"repro/internal/storage/vfs"
)

// writeFileVFS is os.WriteFile through the vfs seam (vfs.FS carries no
// WriteFile; storage tests stay on the seam per the eevet vfsonly
// check, so fault-injection runs see every byte the tests plant).
func writeFileVFS(path string, data []byte, perm os.FileMode) error {
	f, err := vfs.OS.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func tr(i int) rdf.Triple {
	return rdf.NewTriple(
		rdf.NewIRI(fmt.Sprintf("http://example.org/s%d", i)),
		rdf.NewIRI("http://example.org/p"),
		rdf.NewIntLiteral(int64(i)),
	)
}

// sortedTriples canonicalizes a store's contents for comparison.
func sortedTriples(st *rdf.Store) []string {
	var out []string
	for _, t := range st.Triples() {
		out = append(out, t.String())
	}
	sort.Strings(out)
	return out
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := CreateLog(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]rdf.Triple
	k := 0
	for b := 0; b < 7; b++ {
		var batch []rdf.Triple
		for i := 0; i < 3+b; i++ {
			batch = append(batch, tr(k))
			k++
		}
		// Repeat a triple so dictionary reuse across records is exercised.
		batch = append(batch, tr(0))
		for _, x := range batch {
			if err := l.Record(x); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
		want = append(want, batch)
	}
	if got := l.Recorded(); got != uint64(k+7) {
		t.Errorf("Recorded = %d, want %d", got, k+7)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got [][]rdf.Triple
	l2, err := OpenLog(path, Options{}, func(batch []rdf.Triple) error {
		got = append(got, append([]rdf.Triple(nil), batch...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %v\nwant %v", got, want)
	}

	// The reopened log must append with the reconstructed dictionary.
	extra := tr(999)
	if err := l2.Record(extra); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if _, err := ReplayLog(path, func(batch []rdf.Triple) error { n += len(batch); return nil }); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range want {
		total += len(b)
	}
	if n != total+1 {
		t.Fatalf("after append: replayed %d triples, want %d", n, total+1)
	}
}

// TestWALTornTailEveryOffset is the kill(-9)-style crash recovery
// property test: the WAL is truncated at every byte offset of the final
// record (and a couple of offsets into earlier ones) and recovery must
// always succeed, yielding exactly the committed batch prefix that lies
// before the cut.
func TestWALTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := CreateLog(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const batches = 4
	var boundaries []int64 // file size after each commit
	k := 0
	for b := 0; b < batches; b++ {
		for i := 0; i < 5; i++ {
			if err := l.Record(tr(k)); err != nil {
				t.Fatal(err)
			}
			k++
		}
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		fi, err := vfs.OS.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, fi.Size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := vfs.OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != boundaries[batches-1] {
		t.Fatalf("file grew after last sync: %d vs %d", len(full), boundaries[batches-1])
	}

	// batchesBefore(cut) = number of complete records at or before cut.
	batchesBefore := func(cut int64) int {
		n := 0
		for _, b := range boundaries {
			if b <= cut {
				n++
			}
		}
		return n
	}

	lastStart := boundaries[batches-2]
	for cut := lastStart; cut <= int64(len(full)); cut++ {
		truncated := filepath.Join(dir, "cut.log")
		if err := writeFileVFS(truncated, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		gotBatches := 0
		gotTriples := 0
		lg, err := OpenLog(truncated, Options{}, func(batch []rdf.Triple) error {
			gotBatches++
			gotTriples += len(batch)
			return nil
		})
		if err != nil {
			t.Fatalf("cut at %d: recovery errored: %v", cut, err)
		}
		wantB := batchesBefore(cut)
		if gotBatches != wantB {
			lg.Close()
			t.Fatalf("cut at %d: recovered %d batches, want %d", cut, gotBatches, wantB)
		}
		if gotTriples != wantB*5 {
			lg.Close()
			t.Fatalf("cut at %d: recovered %d triples, want %d", cut, gotTriples, wantB*5)
		}
		// Recovery truncates the torn tail and the log must accept and
		// persist a fresh batch afterwards.
		if err := lg.Record(tr(1000)); err != nil {
			t.Fatal(err)
		}
		if err := lg.Close(); err != nil {
			t.Fatalf("cut at %d: close after recovery: %v", cut, err)
		}
		after := 0
		if _, err := ReplayLog(truncated, func(b []rdf.Triple) error { after += len(b); return nil }); err != nil {
			t.Fatal(err)
		}
		if after != wantB*5+1 {
			t.Fatalf("cut at %d: post-recovery append lost data: %d triples, want %d", cut, after, wantB*5+1)
		}
	}
}

// TestWALMidFileCorruption flips one byte in an early record: replay
// must stop at the corruption and still hand back the prefix.
func TestWALMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := CreateLog(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var firstEnd int64
	for b := 0; b < 3; b++ {
		for i := 0; i < 4; i++ {
			if err := l.Record(tr(b*4 + i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if b == 0 {
			fi, _ := vfs.OS.Stat(path)
			firstEnd = fi.Size()
		}
	}
	l.Close()
	raw, _ := vfs.OS.ReadFile(path)
	raw[firstEnd+10] ^= 0xff // inside record 2's payload
	if err := writeFileVFS(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	n := 0
	dropped, err := ReplayLog(path, func(b []rdf.Triple) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d batches past corruption, want 1", n)
	}
	if dropped == 0 {
		t.Fatal("mid-file corruption not reported as dropped bytes")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := rdf.NewStore()
	for i := 0; i < 500; i++ {
		src.AddTriple(tr(i))
	}
	src.Add(rdf.NewIRI("http://g"), rdf.NewIRI(rdf.GeoAsWKT),
		rdf.NewWKTLiteral("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))"))
	src.Add(rdf.NewIRI("http://l"), rdf.NewIRI("http://p"),
		rdf.NewLangLiteral("hostile \"quote\"\nline", "en"))

	path := filepath.Join(t.TempDir(), "s.snap")
	if err := WriteSnapshotFile(path, src); err != nil {
		t.Fatal(err)
	}
	info, err := InspectSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Triples != src.Len() {
		t.Errorf("info.Triples = %d, want %d", info.Triples, src.Len())
	}

	terms, triples, _, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dst := rdf.NewStore()
	if err := dst.InstallSnapshot(terms, triples); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sortedTriples(dst), sortedTriples(src)) {
		t.Fatal("snapshot round trip changed contents")
	}
	if dst.Version() == 0 {
		t.Error("installed store version is 0; caches would never invalidate on the first write")
	}
}

// TestLoadSnapshotFileLargeDictionary pushes the dictionary well past
// one index batch (8192 terms), so the pipelined term→ID builder runs
// its concurrent branch (meaningful under -race).
func TestLoadSnapshotFileLargeDictionary(t *testing.T) {
	src := rdf.NewStore()
	for i := 0; i < 6000; i++ {
		src.Add(
			rdf.NewIRI(fmt.Sprintf("http://example.org/s%d", i)),
			rdf.NewIRI(fmt.Sprintf("http://example.org/p%d", i%7)),
			rdf.NewLiteral(fmt.Sprintf("value-%d", i)),
		)
	}
	if src.Dict().Len() <= 8192 {
		t.Fatalf("test needs > 8192 terms, have %d", src.Dict().Len())
	}
	path := filepath.Join(t.TempDir(), "big.snap")
	if err := WriteSnapshotFile(path, src); err != nil {
		t.Fatal(err)
	}
	dst := rdf.NewStore()
	info, err := LoadSnapshotFile(path, dst)
	if err != nil {
		t.Fatal(err)
	}
	if info.Triples != src.Len() || dst.Len() != src.Len() {
		t.Fatalf("loaded %d/%d triples, want %d", info.Triples, dst.Len(), src.Len())
	}
	// The prepared index must be usable for term-bound lookups.
	got := 0
	dst.MatchTerms(rdf.NewIRI("http://example.org/s123"), rdf.Term{}, rdf.Term{}, func(rdf.Triple) bool {
		got++
		return true
	})
	if got != 1 {
		t.Fatalf("lookup through prepared index found %d triples, want 1", got)
	}
}

// TestWALRecordAutoSplit commits one batch whose payload exceeds the
// writer's soft cap and checks it lands as multiple records that all
// replay — the writer must never emit a record the reader would treat
// as a torn tail.
func TestWALRecordAutoSplit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := CreateLog(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("x", 8<<20) // 8 MiB literal
	const n = 10                      // ~80 MiB total, past the 64 MiB soft cap
	for i := 0; i < n; i++ {
		tr := rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://example.org/big%d", i)),
			rdf.NewIRI("http://example.org/p"),
			rdf.NewLiteral(fmt.Sprintf("%s-%d", big, i)),
		)
		if err := l.Record(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	batches, triples := 0, 0
	if _, err := ReplayLog(path, func(b []rdf.Triple) error {
		batches++
		triples += len(b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if triples != n {
		t.Fatalf("replayed %d triples, want %d", triples, n)
	}
	if batches < 2 {
		t.Fatalf("oversized batch was not split (got %d records)", batches)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	src := rdf.NewStore()
	for i := 0; i < 50; i++ {
		src.AddTriple(tr(i))
	}
	path := filepath.Join(t.TempDir(), "s.snap")
	if err := WriteSnapshotFile(path, src); err != nil {
		t.Fatal(err)
	}
	raw, _ := vfs.OS.ReadFile(path)
	for _, off := range []int{0, len(snapshotMagic) + 3, len(raw) / 2, len(raw) - 1} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x55
		bad := filepath.Join(t.TempDir(), "bad.snap")
		if err := writeFileVFS(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := ReadSnapshotFile(bad); err == nil {
			t.Errorf("corruption at offset %d not detected", off)
		}
	}
	if _, _, _, err := ReadSnapshotFile(filepath.Join(t.TempDir(), "missing.snap")); err == nil {
		t.Error("missing snapshot not an error")
	}
}

// TestDBDirectoryLock ensures two processes (simulated by two DB
// handles) cannot share a data directory, and that Close releases it.
func TestDBDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open on a locked directory succeeded")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after Close: %v", err)
	}
	db2.Close()
}

// TestDBRecoverLifecycle drives the full open → write → snapshot →
// write → reopen cycle and checks contents plus on-disk compaction.
func TestDBRecoverLifecycle(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := rdf.NewStore()
	stats, err := db.Recover(st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotPath != "" || stats.WALTriples != 0 {
		t.Fatalf("fresh dir recovered %+v", stats)
	}
	st.SetJournal(db.Log())

	var batch1 []rdf.Triple
	for i := 0; i < 100; i++ {
		batch1 = append(batch1, tr(i))
	}
	if err := st.AddBatch(batch1); err != nil {
		t.Fatal(err)
	}
	if got := db.SinceSnapshot(); got != 100 {
		t.Errorf("SinceSnapshot = %d, want 100", got)
	}
	snapPath, err := db.Snapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	if db.SinceSnapshot() != 0 {
		t.Errorf("SinceSnapshot after snapshot = %d", db.SinceSnapshot())
	}
	if _, err := vfs.OS.Stat(snapPath); err != nil {
		t.Fatal(err)
	}

	// Post-snapshot writes land in the WAL tail only.
	var batch2 []rdf.Triple
	for i := 100; i < 130; i++ {
		batch2 = append(batch2, tr(i))
	}
	if err := st.AddBatch(batch2); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: snapshot + WAL tail must reconstruct everything.
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st2 := rdf.NewStore()
	stats2, err := db2.Recover(st2)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if stats2.SnapshotTriples != 100 {
		t.Errorf("snapshot triples = %d, want 100", stats2.SnapshotTriples)
	}
	// Segments covered by the newest snapshot stick around until a
	// snapshot two generations later prunes them; replaying them on top
	// of the snapshot is idempotent. 100 (pre-snapshot, retained) + 30.
	if stats2.WALTriples != 130 {
		t.Errorf("WAL triples = %d, want 130", stats2.WALTriples)
	}
	if !reflect.DeepEqual(sortedTriples(st2), sortedTriples(st)) {
		t.Fatal("recovered store differs from original")
	}

	// Retention: two snapshot generations are kept, and segments only
	// fall away once a snapshot two generations newer covers them. Run
	// two more snapshot cycles and check the steady state.
	st2.SetJournal(db2.Log())
	for cycle := 0; cycle < 2; cycle++ {
		var more []rdf.Triple
		for i := 0; i < 10; i++ {
			more = append(more, tr(1000+cycle*10+i))
		}
		if err := st2.AddBatch(more); err != nil {
			t.Fatal(err)
		}
		if _, err := db2.Snapshot(st2); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 2 {
		t.Errorf("snapshots on disk = %v, want 2 generations", snaps)
	}
	if len(segs) == 0 || len(segs) > 3 {
		t.Errorf("wal segments on disk = %v, want 1-3 (pruned up to the older kept snapshot)", segs)
	}
}

// TestDBRecoverFallsBackToOlderSnapshot corrupts the newest snapshot
// and expects recovery to use the previous generation plus the WAL.
func TestDBRecoverFallsBackToOlderSnapshot(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := rdf.NewStore()
	if _, err := db.Recover(st); err != nil {
		t.Fatal(err)
	}
	st.SetJournal(db.Log())
	for i := 0; i < 40; i++ {
		st.AddTriple(tr(i))
	}
	if err := st.CommitJournal(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 60; i++ {
		st.AddTriple(tr(i))
	}
	if err := st.CommitJournal(); err != nil {
		t.Fatal(err)
	}
	snap2, err := db.Snapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Bit-rot the NEWEST snapshot: recovery must fall back to the
	// previous generation and rebuild the full state from the retained
	// WAL segments (this is why two generations are kept).
	raw, err := vfs.OS.ReadFile(snap2)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xff
	if err := writeFileVFS(snap2, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st2 := rdf.NewStore()
	stats, err := db2.Recover(st2)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if stats.SnapshotPath == snap2 || stats.SnapshotPath == "" {
		t.Errorf("recovered from %q, want the older generation", stats.SnapshotPath)
	}
	if st2.Len() != 60 {
		t.Errorf("recovered %d triples, want 60", st2.Len())
	}
}

// TestDBSeededSnapshotNeverShadowsNewer: a hand-seeded snapshot with an
// inflated filename version (the eecat -pack workflow) must not shadow
// runtime snapshots taken after it — Snapshot names strictly above any
// existing file.
func TestDBSeededSnapshotNeverShadowsNewer(t *testing.T) {
	dir := t.TempDir()
	seedStore := rdf.NewStore()
	for i := 0; i < 20; i++ {
		seedStore.AddTriple(tr(i))
	}
	if err := WriteSnapshotFile(filepath.Join(dir, "snap-9000000000.snap"), seedStore); err != nil {
		t.Fatal(err)
	}

	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := rdf.NewStore()
	stats, err := db.Recover(st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotTriples != 20 {
		t.Fatalf("seed snapshot not loaded: %+v", stats)
	}
	st.SetJournal(db.Log())
	for i := 20; i < 50; i++ {
		st.AddTriple(tr(i))
	}
	if err := st.CommitJournal(); err != nil {
		t.Fatal(err)
	}
	snapPath, err := db.Snapshot(st)
	if err != nil {
		t.Fatal(err)
	}
	var v uint64
	if _, err := fmt.Sscanf(filepath.Base(snapPath), "snap-%d.snap", &v); err != nil || v <= 9000000000 {
		t.Fatalf("runtime snapshot %s does not order above the seed", snapPath)
	}
	// A second snapshot prunes the seed's WAL coverage; recovery must
	// still see all 50 triples via the newest snapshot.
	st.AddTriple(tr(50))
	if err := st.CommitJournal(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st2 := rdf.NewStore()
	if _, err := db2.Recover(st2); err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if st2.Len() != 51 {
		t.Fatalf("recovered %d triples, want 51 (seed shadowed newer data?)", st2.Len())
	}
}

// TestDBConcurrentWritersAndSnapshot exercises the group-commit path
// under -race: several writers add journaled batches while snapshots
// run concurrently, then everything must recover.
func TestDBConcurrentWritersAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{SyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	st := rdf.NewStore()
	if _, err := db.Recover(st); err != nil {
		t.Fatal(err)
	}
	st.SetJournal(db.Log())

	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i += 10 {
				var batch []rdf.Triple
				for j := 0; j < 10; j++ {
					batch = append(batch, tr(w*perWriter+i+j))
				}
				if err := st.AddBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for i := 0; i < 5; i++ {
			if _, err := db.Snapshot(st); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-snapDone
	if err := st.JournalErr(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st2 := rdf.NewStore()
	if _, err := db2.Recover(st2); err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if st2.Len() != writers*perWriter {
		t.Fatalf("recovered %d triples, want %d", st2.Len(), writers*perWriter)
	}
	if !reflect.DeepEqual(sortedTriples(st2), sortedTriples(st)) {
		t.Fatal("recovered store differs")
	}
}

// TestGeostoreRecoveryWithGeometries round-trips a geospatial store
// through snapshot + WAL recovery and compares spatial query results.
func TestGeostoreRecoveryWithGeometries(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gst := geostore.New(geostore.ModeIndexed)
	if _, err := db.Recover(gst.RDF()); err != nil {
		t.Fatal(err)
	}
	gst.RDF().SetJournal(db.Log())
	extent := geom.NewRect(0, 0, 1000, 1000)
	for _, f := range geostore.GeneratePointFeatures(300, 7, extent) {
		if err := gst.AddFeature(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := gst.RDF().CommitJournal(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Snapshot(gst.RDF()); err != nil {
		t.Fatal(err)
	}
	db.Close()

	query := geostore.SelectionQuery(geom.NewRect(100, 100, 600, 600))
	want, err := gst.QueryString(query)
	if err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gst2 := geostore.New(geostore.ModeIndexed)
	if _, err := db2.Recover(gst2.RDF()); err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := gst2.RestoreGeometries(); err != nil {
		t.Fatal(err)
	}
	if gst2.NumGeometries() != gst.NumGeometries() {
		t.Fatalf("restored %d geometries, want %d", gst2.NumGeometries(), gst.NumGeometries())
	}
	got, err := gst2.QueryString(query)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 || got.Len() != want.Len() {
		t.Fatalf("recovered store answered %d rows, want %d (nonzero)", got.Len(), want.Len())
	}
}

func TestBulkLoadMatchesSequential(t *testing.T) {
	extent := geom.NewRect(0, 0, 1000, 1000)
	ref := geostore.New(geostore.ModeIndexed)
	for _, f := range geostore.GeneratePointFeatures(500, 9, extent) {
		if err := ref.AddFeature(f); err != nil {
			t.Fatal(err)
		}
	}
	var nt strings.Builder
	for _, tri := range ref.RDF().Triples() {
		nt.WriteString(tri.String())
		nt.WriteByte('\n')
	}

	for _, workers := range []int{1, 4} {
		st := geostore.New(geostore.ModeIndexed)
		n, err := BulkLoad(strings.NewReader(nt.String()), st, workers)
		if err != nil {
			t.Fatal(err)
		}
		if n != ref.Len() {
			t.Errorf("workers=%d: loaded %d triples, want %d", workers, n, ref.Len())
		}
		if st.NumGeometries() != ref.NumGeometries() {
			t.Errorf("workers=%d: %d geometries, want %d", workers, st.NumGeometries(), ref.NumGeometries())
		}
		if !reflect.DeepEqual(sortedTriples(st.RDF()), sortedTriples(ref.RDF())) {
			t.Errorf("workers=%d: contents differ", workers)
		}
		q := geostore.SelectionQuery(geom.NewRect(0, 0, 500, 500))
		want, _ := ref.QueryString(q)
		got, err := st.QueryString(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() {
			t.Errorf("workers=%d: query rows %d, want %d", workers, got.Len(), want.Len())
		}
	}
}

func TestBulkLoadPropagatesParseError(t *testing.T) {
	input := "<http://a> <http://p> \"ok\" .\nthis is not a triple\n"
	st := geostore.New(geostore.ModeIndexed)
	if _, err := BulkLoad(strings.NewReader(input), st, 4); err == nil {
		t.Fatal("malformed input did not error")
	}
	bad := `<http://g> <` + rdf.GeoAsWKT + `> "NOT WKT AT ALL"^^<` + rdf.WKTLiteral + `> .` + "\n"
	if _, err := BulkLoad(strings.NewReader(bad), geostore.New(geostore.ModeIndexed), 2); err == nil {
		t.Fatal("invalid WKT did not error")
	}
}
