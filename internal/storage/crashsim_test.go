package storage

import (
	"errors"
	iofs "io/fs"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/storage/vfs"
	"repro/internal/telemetry"
)

// This file is the crash-simulation property harness: a scripted
// commit/snapshot/rotate workload runs against the fault-injecting
// filesystem, a counting pass establishes the space of injection
// points, and then every point is hit with every fault kind, the plug
// is pulled, and recovery must reconstruct exactly the batches whose
// commits were acknowledged — never a partial batch, never a missing
// acknowledged one.

// crashBatches is the scripted workload: each batch commits as one
// journal record (SyncEvery 1, so an acknowledged commit is durable),
// with snapshot compactions interleaved after batches 2 and 4 to cover
// rotation, snapshot publication, and pruning among the injection
// points.
const (
	crashNumBatches = 6
	crashBatchSize  = 3
)

func crashBatch(k int) []rdf.Triple {
	out := make([]rdf.Triple, crashBatchSize)
	for j := range out {
		out[j] = tr(k*crashBatchSize + j)
	}
	return out
}

func crashSnapshotAfter(k int) bool { return k == 2 || k == 4 }

// runCrashWorkload drives the scripted workload over fsys and reports
// how many batch commits were acknowledged. Failures are expected —
// the injected fault makes the WAL sticky-broken or kills the
// filesystem — so every error just ends the corresponding activity.
func runCrashWorkload(fsys vfs.FS) (acked int) {
	db, err := Open("db", Options{SyncEvery: 1, FS: fsys})
	if err != nil {
		return 0
	}
	st := rdf.NewStore()
	if _, err := db.Recover(st); err != nil {
		return 0
	}
	st.SetJournal(db.Log())
	for k := 0; k < crashNumBatches; k++ {
		if err := st.AddBatch(crashBatch(k)); err != nil {
			break
		}
		acked++
		if crashSnapshotAfter(k) {
			db.Snapshot(st) // failure keeps the store serviceable
		}
	}
	return acked
}

// recoverCrashed reopens the directory after the power cut and returns
// the recovered store.
func recoverCrashed(t *testing.T, fsys vfs.FS) *rdf.Store {
	t.Helper()
	db, err := Open("db", Options{SyncEvery: 1, FS: fsys})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	st := rdf.NewStore()
	if _, err := db.Recover(st); err != nil {
		t.Fatalf("recover after crash: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
	return st
}

// wantPrefix is the canonical triple set of the first k batches.
func wantPrefix(k int) []string {
	var out []string
	for i := 0; i < k; i++ {
		for _, t := range crashBatch(i) {
			out = append(out, t.String())
		}
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCrashSimulation is the property test: for every injection point
// the counting pass finds and every fault kind, the store recovered
// after a power cut holds exactly the acknowledged-batch prefix.
func TestCrashSimulation(t *testing.T) {
	// Counting pass: no faults, full workload, record the op space.
	count := vfs.NewErrFS()
	if acked := runCrashWorkload(count); acked != crashNumBatches {
		t.Fatalf("clean workload acked %d of %d batches", acked, crashNumBatches)
	}
	total := count.Ops()
	if total < 20 {
		t.Fatalf("suspiciously small injection space: %d ops", total)
	}
	// The clean run must also survive a plain power cut at the end.
	count.PowerCut()
	if got := sortedTriples(recoverCrashed(t, count)); !equalStrings(got, wantPrefix(crashNumBatches)) {
		t.Fatalf("clean run lost data: %d triples recovered, want %d",
			len(got), crashNumBatches*crashBatchSize)
	}

	stride := 1
	if testing.Short() {
		stride = 3 // bounded sweep for the -race CI job
	}

	kinds := []struct {
		name  string
		fault func(op vfs.Op) error
	}{
		{"eio", func(vfs.Op) error { return vfs.ErrInjected }},
		{"enospc", func(vfs.Op) error { return vfs.ErrNoSpace }},
		{"powercut", func(vfs.Op) error { return vfs.ErrPowerCut }},
		{"torn", func(op vfs.Op) error {
			if op == vfs.OpWrite {
				return &vfs.TornWrite{Keep: 1, Err: vfs.ErrPowerCut}
			}
			return vfs.ErrPowerCut
		}},
	}

	for _, kind := range kinds {
		kind := kind
		t.Run(kind.name, func(t *testing.T) {
			for point := 0; point < total; point += stride {
				fsys := vfs.NewErrFS()
				fsys.SetFault(func(seq int, op vfs.Op, path string) error {
					if seq == point {
						return kind.fault(op)
					}
					return nil
				})
				acked := runCrashWorkload(fsys)
				fsys.PowerCut()
				got := sortedTriples(recoverCrashed(t, fsys))
				if !equalStrings(got, wantPrefix(acked)) {
					t.Fatalf("point %d: recovered %d triples, want the %d-batch prefix (%d); recovered set diverges",
						point, len(got), acked, acked*crashBatchSize)
				}
			}
		})
	}
}

// TestWALStickyFailure pins the no-silent-retry contract: after one
// fsync failure the log refuses all further writes with the same
// error, the store goes read-only, and the degraded state is visible
// on DB.Degraded and the storage metrics.
func TestWALStickyFailure(t *testing.T) {
	fsys := vfs.NewErrFS()
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	db, err := Open("db", Options{SyncEvery: 1, FS: fsys, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	st := rdf.NewStore()
	if _, err := db.Recover(st); err != nil {
		t.Fatal(err)
	}
	st.SetJournal(db.Log())
	if err := st.AddBatch(crashBatch(0)); err != nil {
		t.Fatal(err)
	}
	if err := db.Degraded(); err != nil {
		t.Fatalf("healthy store reports degraded: %v", err)
	}

	// One fsync failure, then a healthy filesystem again: the log must
	// not try its luck against the same file.
	fsys.SetFault(func(seq int, op vfs.Op, path string) error {
		if op == vfs.OpSync {
			return vfs.ErrInjected
		}
		return nil
	})
	err = st.AddBatch(crashBatch(1))
	if !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("AddBatch under fsync fault = %v, want injected error", err)
	}
	fsys.SetFault(nil)
	opsAfterFailure := fsys.Ops()

	// Sticky: same error back, no new filesystem traffic, store frozen.
	lenBefore := st.Len()
	if err2 := st.AddBatch(crashBatch(2)); !errors.Is(err2, vfs.ErrInjected) {
		t.Fatalf("retry after sticky failure = %v, want the original error", err2)
	}
	if got := fsys.Ops(); got != opsAfterFailure {
		t.Fatalf("sticky-failed WAL touched the filesystem again: %d ops, had %d", got, opsAfterFailure)
	}
	if st.Len() != lenBefore {
		t.Fatalf("read-only store grew from %d to %d triples", lenBefore, st.Len())
	}
	if err := db.Degraded(); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("Degraded = %v, want the sticky failure", err)
	}

	// Reads still serve everything in memory — batch 0 plus the batch
	// whose commit failed (memory may run ahead of the log, never
	// behind; only restart reconciles them).
	if got := len(st.Triples()); got != lenBefore {
		t.Fatalf("degraded store serves %d triples, want %d", got, lenBefore)
	}

	// The failure surface is on the metrics.
	var b strings.Builder
	reg.WritePrometheus(&b)
	expo := b.String()
	for _, want := range []string{
		`storage_degraded 1`,
		`storage_io_errors_total{op="fsync"} 1`,
	} {
		if !containsLine(expo, want) {
			t.Fatalf("exposition missing %q:\n%s", want, expo)
		}
	}

	// A restart recovers everything that was acknowledged.
	fsys.PowerCut()
	if got := sortedTriples(recoverCrashed(t, fsys)); !equalStrings(got, wantPrefix(1)) {
		t.Fatalf("recovery after sticky failure: %d triples, want batch 0 only", len(got))
	}
}

// TestSnapshotENOSPCKeepsPreviousGeneration covers the disk-full
// snapshot: the write fails with a typed *SnapshotWriteError (not a
// corruption error), the .tmp file is cleaned up, and the previous
// generation still recovers the full store.
func TestSnapshotENOSPCKeepsPreviousGeneration(t *testing.T) {
	fsys := vfs.NewErrFS()
	db, err := Open("db", Options{SyncEvery: 1, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	st := rdf.NewStore()
	if _, err := db.Recover(st); err != nil {
		t.Fatal(err)
	}
	st.SetJournal(db.Log())
	if err := st.AddBatch(crashBatch(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	if err := st.AddBatch(crashBatch(1)); err != nil {
		t.Fatal(err)
	}

	// The second snapshot hits a full disk while streaming the new
	// generation's bytes.
	fsys.SetFault(func(seq int, op vfs.Op, path string) error {
		if op == vfs.OpWrite {
			return vfs.ErrNoSpace
		}
		return nil
	})
	_, err = db.Snapshot(st)
	var swe *SnapshotWriteError
	if !errors.As(err, &swe) {
		t.Fatalf("Snapshot under ENOSPC = %v, want *SnapshotWriteError", err)
	}
	if !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("cause not preserved: %v", err)
	}
	if swe.Op != "write" {
		t.Fatalf("failed op = %q, want write", swe.Op)
	}
	fsys.SetFault(nil)

	// No .tmp litter, and the WAL is still healthy (snapshot failure
	// must not degrade the write path).
	if tmps, _ := fsys.Glob("db/*.tmp"); len(tmps) != 0 {
		t.Fatalf(".tmp files left behind: %v", tmps)
	}
	if err := db.Degraded(); err != nil {
		t.Fatalf("snapshot failure degraded the store: %v", err)
	}
	if err := st.AddBatch(crashBatch(2)); err != nil {
		t.Fatalf("write after failed snapshot: %v", err)
	}

	// The previous generation plus retained WAL segments recover
	// everything acknowledged.
	fsys.PowerCut()
	if got := sortedTriples(recoverCrashed(t, fsys)); !equalStrings(got, wantPrefix(3)) {
		t.Fatalf("recovery after failed snapshot: %d triples, want all 3 batches", len(got))
	}
}

// TestSnapshotDirSyncErrorPropagates is the syncDir regression test:
// the directory fsync after the publishing rename used to be silently
// discarded; now it must surface as a dirsync-typed write error.
func TestSnapshotDirSyncErrorPropagates(t *testing.T) {
	fsys := vfs.NewErrFS()
	db, err := Open("db", Options{SyncEvery: 1, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	st := rdf.NewStore()
	if _, err := db.Recover(st); err != nil {
		t.Fatal(err)
	}
	st.SetJournal(db.Log())
	if err := st.AddBatch(crashBatch(0)); err != nil {
		t.Fatal(err)
	}
	fsys.SetFault(func(seq int, op vfs.Op, path string) error {
		if op == vfs.OpSyncDir {
			return vfs.ErrInjected
		}
		return nil
	})
	_, err = db.Snapshot(st)
	var swe *SnapshotWriteError
	if !errors.As(err, &swe) || swe.Op != "dirsync" {
		t.Fatalf("Snapshot under dirsync fault = %v, want *SnapshotWriteError{Op: dirsync}", err)
	}
}

// TestSnapshotCleanupFailureCounted is the regression test for the
// nodroppederr audit: a failed snapshot write triggers best-effort
// cleanup of the .tmp file, and a cleanup failure used to vanish
// without a trace. It must now land on storage_io_errors_total.
func TestSnapshotCleanupFailureCounted(t *testing.T) {
	fsys := vfs.NewErrFS()
	m := NewMetrics(telemetry.NewRegistry())
	db, err := Open("db", Options{SyncEvery: 1, FS: fsys, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	st := rdf.NewStore()
	if _, err := db.Recover(st); err != nil {
		t.Fatal(err)
	}
	st.SetJournal(db.Log())
	if err := st.AddBatch(crashBatch(0)); err != nil {
		t.Fatal(err)
	}
	failedWrite := false
	fsys.SetFault(func(seq int, op vfs.Op, path string) error {
		switch op {
		case vfs.OpWrite:
			failedWrite = true
			return vfs.ErrInjected
		case vfs.OpRemove:
			return vfs.ErrInjected
		}
		return nil
	})
	if _, err := db.Snapshot(st); err == nil {
		t.Fatal("Snapshot under write fault succeeded")
	}
	if !failedWrite {
		t.Fatal("fault hook never saw the snapshot write")
	}
	if got := m.ioErrors["write"].Load(); got != 1 {
		t.Errorf("io_errors{op=write} = %d, want 1", got)
	}
	if got := m.ioErrors["remove"].Load(); got != 1 {
		t.Errorf("io_errors{op=remove} = %d, want 1 (cleanup failure must be counted)", got)
	}
}

// closeFailFS makes Close fail on files whose base name matches; ErrFS
// has no close fault of its own. Wraps any vfs.FS.
type closeFailFS struct {
	vfs.FS
	base string
}

func (f closeFailFS) OpenFile(name string, flag int, perm iofs.FileMode) (vfs.File, error) {
	h, err := f.FS.OpenFile(name, flag, perm)
	if err != nil || filepath.Base(name) != f.base {
		return h, err
	}
	return closeFailFile{h}, nil
}

type closeFailFile struct{ vfs.File }

func (f closeFailFile) Close() error {
	f.File.Close()
	return vfs.ErrInjected
}

// TestDBCloseLockFileError: DB.Close used to discard the LOCK file's
// close error; it must now be returned (the flock may still be held)
// while the WAL close error, when present, stays primary.
func TestDBCloseLockFileError(t *testing.T) {
	fsys := closeFailFS{FS: vfs.NewErrFS(), base: "LOCK"}
	db, err := Open("db", Options{SyncEvery: 1, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	st := rdf.NewStore()
	if _, err := db.Recover(st); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("Close = %v, want LOCK close failure", err)
	}
}

// containsLine reports whether expo has a line starting with want.
func containsLine(expo, want string) bool {
	for _, line := range splitLines(expo) {
		if line == want {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
