package endpoint_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/endpoint"
	"repro/internal/rdf"
	"repro/internal/telemetry"
)

// TestDebugAuthRequiresToken checks the public listener's /debug/*
// routes 401 without the load token and open up with it (either header
// spelling), while the admin mux serves them with no token at all.
func TestDebugAuthRequiresToken(t *testing.T) {
	srv := endpoint.New(testStore(t), endpoint.Config{LoadToken: "s3cret"})
	paths := []string{"/debug/queries", "/debug/store", "/debug/cache"}
	for _, p := range paths {
		if rec := get(t, srv, p, nil); rec.Code != 401 {
			t.Errorf("GET %s without token = %d, want 401", p, rec.Code)
		} else if rec.Header().Get("WWW-Authenticate") == "" {
			t.Errorf("GET %s 401 missing WWW-Authenticate", p)
		}
		if rec := get(t, srv, p, map[string]string{"Authorization": "Bearer wrong"}); rec.Code != 401 {
			t.Errorf("GET %s with wrong token = %d, want 401", p, rec.Code)
		}
		if rec := get(t, srv, p, map[string]string{"Authorization": "Bearer s3cret"}); rec.Code != 200 {
			t.Errorf("GET %s with bearer token = %d, want 200", p, rec.Code)
		}
		if rec := get(t, srv, p, map[string]string{"X-Load-Token": "s3cret"}); rec.Code != 200 {
			t.Errorf("GET %s with X-Load-Token = %d, want 200", p, rec.Code)
		}
	}

	// With no token configured there is nothing a client could present:
	// the public routes stay closed and only the admin mux serves them.
	bare := endpoint.New(testStore(t), endpoint.Config{})
	for _, p := range paths {
		if rec := get(t, bare, p, map[string]string{"Authorization": "Bearer anything"}); rec.Code != 401 {
			t.Errorf("GET %s with no token configured = %d, want 401", p, rec.Code)
		}
		if rec := get(t, bare.AdminMux(), p, nil); rec.Code != 200 {
			t.Errorf("admin GET %s = %d, want 200", p, rec.Code)
		}
	}
}

// TestDebugStoreReport checks the /debug/store JSON: triple count,
// memory accounting from the engine, and the storage listing injected
// via Config.StorageStats.
func TestDebugStoreReport(t *testing.T) {
	srv := endpoint.New(testStore(t), endpoint.Config{
		StorageStats: func() any {
			return map[string]any{"dir": "/tmp/fake", "wal_bytes": 123}
		},
	})
	rec := get(t, srv.AdminMux(), "/debug/store", nil)
	if rec.Code != 200 {
		t.Fatalf("/debug/store = %d (body %q)", rec.Code, rec.Body.String())
	}
	var doc struct {
		Triples      int                    `json:"triples"`
		StoreVersion uint64                 `json:"store_version"`
		Memory       *telemetry.StoreMemory `json:"memory"`
		Storage      struct {
			Dir      string `json:"dir"`
			WALBytes int64  `json:"wal_bytes"`
		} `json:"storage"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/store not JSON: %v\n%s", err, rec.Body.String())
	}
	if doc.Triples == 0 || doc.StoreVersion == 0 {
		t.Errorf("triples = %d, store_version = %d; want both > 0", doc.Triples, doc.StoreVersion)
	}
	if doc.Memory == nil {
		t.Fatalf("missing memory accounting:\n%s", rec.Body.String())
	}
	if doc.Memory.DictTerms == 0 || doc.Memory.DictBytes == 0 {
		t.Errorf("dictionary accounting empty: %+v", doc.Memory)
	}
	// A freshly built store may still hold its triples in the pending
	// run (merged lazily on first query); the total must be live either
	// way.
	var indexed int64
	for _, n := range doc.Memory.IndexTriples {
		indexed += n
	}
	if indexed == 0 {
		t.Errorf("index accounting empty: %+v", doc.Memory.IndexTriples)
	}
	if doc.Memory.Geometries == 0 || doc.Memory.RTreeNodes == 0 {
		t.Errorf("geo accounting empty: %+v", doc.Memory)
	}
	if doc.Storage.Dir != "/tmp/fake" || doc.Storage.WALBytes != 123 {
		t.Errorf("storage listing not passed through: %+v", doc.Storage)
	}
}

// TestDebugCacheReport checks /debug/cache reflects the result cache's
// contents and hit accounting after a miss and a hit.
func TestDebugCacheReport(t *testing.T) {
	srv := endpoint.New(testStore(t), endpoint.Config{})
	for i := 0; i < 2; i++ { // first misses, second hits
		if rec := get(t, srv, sparqlURL(spatialQuery, ""), nil); rec.Code != 200 {
			t.Fatalf("query %d status = %d", i, rec.Code)
		}
	}
	rec := get(t, srv.AdminMux(), "/debug/cache", nil)
	if rec.Code != 200 {
		t.Fatalf("/debug/cache = %d", rec.Code)
	}
	var doc struct {
		Capacity int     `json:"capacity"`
		Entries  int     `json:"entries"`
		Hits     uint64  `json:"hits"`
		Misses   uint64  `json:"misses"`
		HitRatio float64 `json:"hit_ratio"`
		Items    []struct {
			Query        string  `json:"query"`
			Format       string  `json:"format"`
			StoreVersion uint64  `json:"store_version"`
			Rows         int     `json:"rows"`
			Bytes        int     `json:"bytes"`
			AgeSeconds   float64 `json:"age_seconds"`
		} `json:"items"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/cache not JSON: %v\n%s", err, rec.Body.String())
	}
	if doc.Capacity != 256 || doc.Entries != 1 || doc.Hits != 1 || doc.Misses != 1 || doc.HitRatio != 0.5 {
		t.Errorf("cache stats = %+v, want capacity 256, 1 entry, 1 hit, 1 miss, ratio 0.5", doc)
	}
	if len(doc.Items) != 1 {
		t.Fatalf("items = %d, want 1:\n%s", len(doc.Items), rec.Body.String())
	}
	it := doc.Items[0]
	if !strings.Contains(it.Query, "SELECT") || strings.Contains(it.Query, "\x00") {
		t.Errorf("item query = %q, want canonical text without the geom-var suffix", it.Query)
	}
	if it.Format != "json" || it.Rows != 2 || it.Bytes == 0 || it.StoreVersion == 0 || it.AgeSeconds < 0 {
		t.Errorf("item = %+v", it)
	}
}

// preexistingSeries are the exact /metrics lines the pre-registry
// handler emitted for a fresh server (testStore engine + worker pool),
// pinned so migrating to the telemetry registry can never rename a
// series, drop a label, or move a bucket boundary under a scraper.
var preexistingSeries = []string{
	"sparql_queries_total 0",
	"sparql_query_errors_total 0",
	`sparql_query_errors_total{kind="parse"} 0`,
	`sparql_query_errors_total{kind="eval"} 0`,
	`sparql_query_errors_total{kind="serialize"} 0`,
	`sparql_query_errors_total{kind="timeout"} 0`,
	"sparql_cache_hits_total 0",
	"sparql_cache_misses_total 0",
	"sparql_rejected_total 0",
	"sparql_timeouts_total 0",
	"sparql_loads_total 0",
	"sparql_load_errors_total 0",
	"sparql_loaded_triples_total 0",
	"sparql_slow_queries_total 0",
	"sparql_exec_rows_total 0",
	"sparql_filter_drops_total 0",
	"sparql_plan_cache_hits_total 0",
	"sparql_plan_cache_misses_total 0",
	"sparql_spatial_join_probes_total 0",
	"sparql_exec_morsels_total 0",
	"sparql_exec_workers_busy 0",
	"sparql_cache_entries 0",
	`sparql_query_duration_seconds_bucket{le="0.0001"} 0`,
	`sparql_query_duration_seconds_bucket{le="0.0005"} 0`,
	`sparql_query_duration_seconds_bucket{le="0.001"} 0`,
	`sparql_query_duration_seconds_bucket{le="0.005"} 0`,
	`sparql_query_duration_seconds_bucket{le="0.01"} 0`,
	`sparql_query_duration_seconds_bucket{le="0.05"} 0`,
	`sparql_query_duration_seconds_bucket{le="0.1"} 0`,
	`sparql_query_duration_seconds_bucket{le="0.5"} 0`,
	`sparql_query_duration_seconds_bucket{le="1"} 0`,
	`sparql_query_duration_seconds_bucket{le="5"} 0`,
	`sparql_query_duration_seconds_bucket{le="+Inf"} 0`,
	"sparql_query_duration_seconds_sum 0",
	"sparql_query_duration_seconds_count 0",
}

// TestMetricsBackwardCompatible proves the registry-backed /metrics is
// a superset of the hand-rolled exposition: every pre-existing series
// line (names, labels, bucket boundaries) is still emitted verbatim,
// and the new exposition passes the format lint.
func TestMetricsBackwardCompatible(t *testing.T) {
	srv := endpoint.New(testStore(t), endpoint.Config{Workers: rdf.NewWorkerPool(2)})
	body := get(t, srv, "/metrics", nil).Body.String()
	for _, line := range preexistingSeries {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("/metrics lost pre-existing series %q", line)
		}
	}
	for _, name := range []string{
		"store_memory_dict_terms", "store_memory_dict_bytes",
		"store_memory_index_triples", "store_memory_index_bytes",
		"store_memory_dedup_entries", "store_memory_geometries",
		"store_memory_rtree_nodes", "store_memory_rtree_entries",
		"store_memory_plan_cache_entries",
	} {
		if !strings.Contains(body, "# TYPE "+name+" gauge\n") {
			t.Errorf("/metrics missing new gauge family %s", name)
		}
	}
	// The memory gauges must carry live values, not zeros: the prepare
	// hook walks the store once per scrape.
	if !strings.Contains(body, `store_memory_index_triples{index="spo"} `) {
		t.Error("/metrics missing labeled store_memory_index_triples series")
	}
	for _, f := range telemetry.LintExposition(body) {
		t.Errorf("exposition lint: %s", f)
	}
}
