package endpoint_test

import (
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/endpoint"
)

// replicaServer builds an endpoint fronting a replica whose stream
// status is supplied by the test.
func replicaServer(t *testing.T, status endpoint.ReplicaStatus, cfg endpoint.Config) *endpoint.Server {
	t.Helper()
	cfg.Replica = func() endpoint.ReplicaStatus { return status }
	if cfg.ReadOnly == "" {
		cfg.ReadOnly = "this node is a replica; load data on the primary"
	}
	return endpoint.New(testStore(t), cfg)
}

// TestReplicaReadOnly checks a replica refuses POST /load with 403 —
// local writes would fork the replica's state from the stream.
func TestReplicaReadOnly(t *testing.T) {
	srv := replicaServer(t, endpoint.ReplicaStatus{Connected: true}, endpoint.Config{})
	rec := postLoad(srv, "<http://a> <http://b> <http://c> .", nil)
	if rec.Code != http.StatusForbidden {
		t.Fatalf("POST /load on replica: status = %d, want 403", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "read-only") {
		t.Fatalf("POST /load on replica: body = %q, want read-only explanation", rec.Body.String())
	}
}

// TestReplicaLagWarn checks the default lag policy: queries over the
// staleness budget still answer, carrying X-Replica-Lag plus a Warning
// header; fresh replicas get the lag header but no warning.
func TestReplicaLagWarn(t *testing.T) {
	fresh := replicaServer(t, endpoint.ReplicaStatus{Connected: true, LagSeconds: 0.2},
		endpoint.Config{MaxReplicaLag: 5 * time.Second})
	rec := get(t, fresh, sparqlURL(spatialQuery, ""), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("fresh replica query: status = %d", rec.Code)
	}
	if got := rec.Header().Get("X-Replica-Lag"); got != "0.200" {
		t.Fatalf("X-Replica-Lag = %q, want %q", got, "0.200")
	}
	if rec.Header().Get("Warning") != "" {
		t.Fatalf("fresh replica set Warning = %q", rec.Header().Get("Warning"))
	}

	stale := replicaServer(t, endpoint.ReplicaStatus{Connected: true, LagSeconds: 42},
		endpoint.Config{MaxReplicaLag: 5 * time.Second})
	rec = get(t, stale, sparqlURL(spatialQuery, ""), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stale replica query under warn policy: status = %d, want 200", rec.Code)
	}
	if w := rec.Header().Get("Warning"); !strings.Contains(w, "stale") {
		t.Fatalf("stale replica Warning = %q, want staleness warning", w)
	}

	// No budget configured: arbitrarily stale is still silently fine.
	unbounded := replicaServer(t, endpoint.ReplicaStatus{Connected: true, LagSeconds: 9999},
		endpoint.Config{})
	rec = get(t, unbounded, sparqlURL(spatialQuery, ""), nil)
	if rec.Code != http.StatusOK || rec.Header().Get("Warning") != "" {
		t.Fatalf("unbounded replica: status = %d, Warning = %q", rec.Code, rec.Header().Get("Warning"))
	}
}

// TestReplicaLagReject checks the strict policy: over-budget queries
// bounce with 503 + Retry-After so balancers fail over to the primary
// or a healthier replica, and the rejection is counted.
func TestReplicaLagReject(t *testing.T) {
	srv := replicaServer(t, endpoint.ReplicaStatus{Connected: true, LagSeconds: 42},
		endpoint.Config{MaxReplicaLag: 5 * time.Second, LagPolicy: endpoint.LagPolicyReject})
	rec := get(t, srv, sparqlURL(spatialQuery, ""), nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("stale replica query under reject policy: status = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	metrics := get(t, srv, "/metrics", nil).Body.String()
	if !strings.Contains(metrics, "sparql_replica_rejected_total 1") {
		t.Fatalf("metrics missing rejected count:\n%s", metrics)
	}

	// Under budget: same server config admits queries.
	ok := replicaServer(t, endpoint.ReplicaStatus{Connected: true, LagSeconds: 1},
		endpoint.Config{MaxReplicaLag: 5 * time.Second, LagPolicy: endpoint.LagPolicyReject})
	if rec := get(t, ok, sparqlURL(spatialQuery, ""), nil); rec.Code != http.StatusOK {
		t.Fatalf("healthy replica under reject policy: status = %d", rec.Code)
	}
}

// TestReplicaStickyErrorGates checks that a sticky stream failure
// trips the gate regardless of the lag number — the lag measurement
// itself is no longer trustworthy once the stream is parked.
func TestReplicaStickyErrorGates(t *testing.T) {
	status := endpoint.ReplicaStatus{LagSeconds: 0, Err: errors.New("frame CRC mismatch")}
	srv := replicaServer(t, status,
		endpoint.Config{MaxReplicaLag: time.Hour, LagPolicy: endpoint.LagPolicyReject})
	rec := get(t, srv, sparqlURL(spatialQuery, ""), nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded replica query: status = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "degraded") {
		t.Fatalf("degraded replica body = %q", rec.Body.String())
	}
}

// TestReplicaHealthzRole checks /healthz reports the node's role, the
// replica's lag, and surfaces a sticky stream failure as degraded.
func TestReplicaHealthzRole(t *testing.T) {
	rep := replicaServer(t, endpoint.ReplicaStatus{Connected: true, LagSeconds: 1.5},
		endpoint.Config{})
	body := get(t, rep, "/healthz", nil).Body.String()
	if !strings.Contains(body, `"role":"replica"`) || !strings.Contains(body, `"replica_lag_seconds":1.500`) {
		t.Fatalf("replica healthz = %q", body)
	}

	degraded := replicaServer(t, endpoint.ReplicaStatus{Err: errors.New("stale epoch")}, endpoint.Config{})
	rec := get(t, degraded, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded replica healthz status = %d, want 200 (still serving reads)", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, `"status":"degraded"`) ||
		!strings.Contains(body, "stale epoch") {
		t.Fatalf("degraded replica healthz = %q", body)
	}

	primary := endpoint.New(testStore(t), endpoint.Config{
		Replication: http.NotFoundHandler(),
	})
	if body := get(t, primary, "/healthz", nil).Body.String(); !strings.Contains(body, `"role":"primary"`) {
		t.Fatalf("primary healthz = %q", body)
	}

	standalone := endpoint.New(testStore(t), endpoint.Config{})
	if body := get(t, standalone, "/healthz", nil).Body.String(); strings.Contains(body, `"role"`) {
		t.Fatalf("standalone healthz should omit role, got %q", body)
	}
}

// TestReplicationMount checks the configured replication handler is
// reachable under /replication/.
func TestReplicationMount(t *testing.T) {
	hit := false
	srv := endpoint.New(testStore(t), endpoint.Config{
		Replication: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hit = true
			w.WriteHeader(http.StatusTeapot)
		}),
	})
	rec := get(t, srv, "/replication/wal", nil)
	if !hit || rec.Code != http.StatusTeapot {
		t.Fatalf("replication mount: hit = %v, status = %d", hit, rec.Code)
	}
}
