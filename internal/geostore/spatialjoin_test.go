package geostore

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/interlink"
	"repro/internal/sparql"
)

// The spatial-join tests verify that variable-variable geof predicates
// run as index spatial joins (not silent cartesian scans) and agree with
// the legacy oracle and with interlink's ground-truth harness, on both
// the single-node indexed store and the partitioned store.

const (
	classA = "http://example.org/A"
	classB = "http://example.org/B"
)

// joinEntitySets generates two rectangle-entity sets with overlapping
// extents (so joins have hits) using the interlink harness shapes.
func joinEntitySets(n int, seed int64) (a, b []interlink.Entity) {
	rng := rand.New(rand.NewSource(seed))
	gen := func(prefix string) []interlink.Entity {
		out := make([]interlink.Entity, n)
		for i := 0; i < n; i++ {
			x := rng.Float64() * 1000
			y := rng.Float64() * 1000
			s := 20 + rng.Float64()*80
			out[i] = interlink.Entity{
				IRI:      fmt.Sprintf("http://example.org/%s/%d", prefix, i),
				Geometry: geom.NewRect(x, y, x+s, y+s),
			}
		}
		return out
	}
	return gen("a"), gen("b")
}

// loadJoinFeatures loads the two entity sets as typed features into any
// store exposing AddFeature.
func loadJoinFeatures(t *testing.T, add func(Feature) error, a, b []interlink.Entity) {
	t.Helper()
	for _, e := range a {
		if err := add(Feature{IRI: e.IRI, Class: classA, Geometry: e.Geometry}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range b {
		if err := add(Feature{IRI: e.IRI, Class: classB, Geometry: e.Geometry}); err != nil {
			t.Fatal(err)
		}
	}
}

func joinQuery(filter string) string {
	return fmt.Sprintf(`SELECT ?a ?b WHERE {
		?a a <%s> . ?a geo:hasGeometry ?ga . ?ga geo:asWKT ?g1 .
		?b a <%s> . ?b geo:hasGeometry ?gb . ?gb geo:asWKT ?g2 .
		FILTER(%s)
	}`, classA, classB, filter)
}

// pairSet renders ?a/?b result rows as a sorted slice of "a|b" keys.
func pairSet(t *testing.T, res *sparql.Results) []string {
	t.Helper()
	out := make([]string, 0, res.Len())
	for _, row := range res.Rows {
		out = append(out, row["a"].Value+"|"+row["b"].Value)
	}
	sort.Strings(out)
	return out
}

// linkSet renders interlink ground-truth links in the same key space.
func linkSet(links []interlink.Link) []string {
	out := make([]string, 0, len(links))
	for _, l := range links {
		out = append(out, l.Source+"|"+l.Target)
	}
	sort.Strings(out)
	return out
}

func diffSets(t *testing.T, tag string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", tag, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %q, want %q", tag, i, got[i], want[i])
		}
	}
}

// joinCases are (filter, interlink relation) pairs covering the geof
// predicates and both distance-join spellings.
var joinCases = []struct {
	name   string
	filter string
	cfg    interlink.Config
}{
	{"intersects", "geof:sfIntersects(?g1, ?g2)",
		interlink.Config{Relation: interlink.RelIntersects}},
	{"contains", "geof:sfContains(?g1, ?g2)",
		interlink.Config{Relation: interlink.RelContains}},
	{"within", "geof:sfWithin(?g1, ?g2)",
		interlink.Config{Relation: interlink.RelWithin}},
	{"distance_le", "geof:distance(?g1, ?g2) <= 60",
		interlink.Config{Relation: interlink.RelNear, Distance: 60}},
}

// TestSpatialJoinMatchesGroundTruth is the property test: the index
// spatial join must return exactly the naive cross-product link set, on
// the single-node indexed store and on the partitioned store (whose
// pairs span partitions).
func TestSpatialJoinMatchesGroundTruth(t *testing.T) {
	for _, seed := range []int64{3, 7} {
		a, b := joinEntitySets(50, seed)
		single := New(ModeIndexed)
		loadJoinFeatures(t, single.AddFeature, a, b)
		single.Build()
		parted := NewPartitioned(3)
		loadJoinFeatures(t, parted.AddFeature, a, b)
		parted.Build()

		for _, tc := range joinCases {
			truth, _ := interlink.DiscoverNaive(a, b, tc.cfg)
			want := linkSet(truth)
			qs := joinQuery(tc.filter)

			res, err := single.QueryString(qs)
			if err != nil {
				t.Fatalf("seed %d %s: indexed: %v", seed, tc.name, err)
			}
			diffSets(t, fmt.Sprintf("seed %d %s indexed", seed, tc.name), pairSet(t, res), want)

			pres, err := parted.QueryString(qs)
			if err != nil {
				t.Fatalf("seed %d %s: partitioned: %v", seed, tc.name, err)
			}
			diffSets(t, fmt.Sprintf("seed %d %s partitioned", seed, tc.name), pairSet(t, pres), want)
		}
	}
}

// TestSpatialJoinStrictDistance checks the strict (<) distance join
// against the legacy oracle, which evaluates the comparison generically.
func TestSpatialJoinStrictDistance(t *testing.T) {
	a, b := joinEntitySets(40, 11)
	indexed := New(ModeIndexed)
	naive := New(ModeNaive)
	loadJoinFeatures(t, indexed.AddFeature, a, b)
	loadJoinFeatures(t, naive.AddFeature, a, b)
	indexed.Build()

	qs := joinQuery("geof:distance(?g1, ?g2) < 45")
	got, err := indexed.QueryString(qs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := naive.QueryString(qs)
	if err != nil {
		t.Fatal(err)
	}
	diffSets(t, "strict distance", pairSet(t, got), pairSet(t, want))
	if got.Len() == 0 {
		t.Fatal("strict distance join returned no rows; test data too sparse")
	}
}

// TestSpatialJoinModifiers runs join queries with COUNT, DISTINCT,
// ORDER BY, OFFSET and LIMIT through both stores against the naive
// oracle.
func TestSpatialJoinModifiers(t *testing.T) {
	a, b := joinEntitySets(40, 5)
	indexed := New(ModeIndexed)
	naive := New(ModeNaive)
	loadJoinFeatures(t, indexed.AddFeature, a, b)
	loadJoinFeatures(t, naive.AddFeature, a, b)
	indexed.Build()
	parted := NewPartitioned(4)
	loadJoinFeatures(t, parted.AddFeature, a, b)
	parted.Build()

	count := fmt.Sprintf(`SELECT (COUNT(*) AS ?n) WHERE {
		?a a <%s> . ?a geo:hasGeometry ?ga . ?ga geo:asWKT ?g1 .
		?b a <%s> . ?b geo:hasGeometry ?gb . ?gb geo:asWKT ?g2 .
		FILTER(geof:sfIntersects(?g1, ?g2))
	}`, classA, classB)
	wantCount, err := naive.QueryString(count)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []interface {
		QueryString(string) (*sparql.Results, error)
	}{indexed, parted} {
		res, err := st.QueryString(count)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 1 || res.Rows[0]["n"].Value != wantCount.Rows[0]["n"].Value {
			t.Fatalf("COUNT = %v, want %v", res.Rows[0]["n"], wantCount.Rows[0]["n"])
		}
	}

	ordered := joinQuery("geof:sfIntersects(?g1, ?g2)") + " ORDER BY ?a OFFSET 3 LIMIT 5"
	want, err := naive.QueryString(ordered)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []interface {
		QueryString(string) (*sparql.Results, error)
	}{indexed, parted} {
		res, err := st.QueryString(ordered)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != want.Len() {
			t.Fatalf("ORDER/OFFSET/LIMIT rows = %d, want %d", res.Len(), want.Len())
		}
		for i := range res.Rows {
			if res.Rows[i]["a"].Value != want.Rows[i]["a"].Value {
				t.Fatalf("row %d ?a = %s, want %s", i, res.Rows[i]["a"].Value, want.Rows[i]["a"].Value)
			}
		}
	}
}

// TestSpatialJoinPartitionedFallback exercises the merged-store fallback
// for a join query that does not decompose (a filter spans both sides).
func TestSpatialJoinPartitionedFallback(t *testing.T) {
	a, b := joinEntitySets(25, 13)
	naive := New(ModeNaive)
	loadJoinFeatures(t, naive.AddFeature, a, b)
	parted := NewPartitioned(3)
	loadJoinFeatures(t, parted.AddFeature, a, b)
	parted.Build()

	qs := fmt.Sprintf(`SELECT ?a ?b WHERE {
		?a a <%s> . ?a geo:hasGeometry ?ga . ?ga geo:asWKT ?g1 .
		?b a <%s> . ?b geo:hasGeometry ?gb . ?gb geo:asWKT ?g2 .
		FILTER(geof:sfIntersects(?g1, ?g2))
		FILTER(?a != ?b)
	}`, classA, classB)
	// ?a != ?b spans both components, so the broadcast path cannot split
	// the query; the merged fallback must still find every pair.
	want, err := naive.QueryString(qs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parted.QueryString(qs)
	if err != nil {
		t.Fatal(err)
	}
	diffSets(t, "merged fallback", pairSet(t, got), pairSet(t, want))

	// Repeats hit the cached merged store; a mutation invalidates it.
	again, err := parted.QueryString(qs)
	if err != nil {
		t.Fatal(err)
	}
	diffSets(t, "merged fallback (cached)", pairSet(t, again), pairSet(t, want))
	extraA := Feature{IRI: "http://example.org/a/extra", Class: classA,
		Geometry: b[0].Geometry}
	if err := parted.AddFeature(extraA); err != nil {
		t.Fatal(err)
	}
	parted.Build()
	after, err := parted.QueryString(qs)
	if err != nil {
		t.Fatal(err)
	}
	if after.Len() <= want.Len() {
		t.Fatalf("stale merged cache: %d pairs after insert, had %d", after.Len(), want.Len())
	}
}

// TestSpatialJoinCrossPartitionPairs pins the original bug: two features
// that intersect but hash to different partitions must still pair.
func TestSpatialJoinCrossPartitionPairs(t *testing.T) {
	parted := NewPartitioned(4)
	// Two overlapping rectangles with IRIs that land in different
	// partitions (verified below), plus a decoy far away.
	fa := Feature{IRI: "http://example.org/a/0", Class: classA, Geometry: geom.NewRect(0, 0, 10, 10)}
	fb := Feature{IRI: "http://example.org/b/0", Class: classB, Geometry: geom.NewRect(5, 5, 15, 15)}
	decoy := Feature{IRI: "http://example.org/b/far", Class: classB, Geometry: geom.NewRect(500, 500, 510, 510)}
	for _, f := range []Feature{fa, fb, decoy} {
		if err := parted.AddFeature(f); err != nil {
			t.Fatal(err)
		}
	}
	if fnvHash(fa.IRI)%4 == fnvHash(fb.IRI)%4 {
		t.Fatalf("test IRIs hash to the same partition; pick different IRIs")
	}
	parted.Build()
	res, err := parted.QueryString(joinQuery("geof:sfIntersects(?g1, ?g2)"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{fa.IRI + "|" + fb.IRI}
	diffSets(t, "cross-partition", pairSet(t, res), want)
}

// TestSpatialJoinExplain verifies the join strategy is visible: index
// joins announce the probe step, unaccelerable spatial predicates warn
// about the cartesian degradation.
func TestSpatialJoinExplain(t *testing.T) {
	st := New(ModeIndexed)
	a, b := joinEntitySets(5, 1)
	loadJoinFeatures(t, st.AddFeature, a, b)
	st.Build()

	q := sparql.MustParse(joinQuery("geof:sfIntersects(?g1, ?g2)"))
	text, err := st.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"spatial index join", "R-tree probe", "R-tree index spatial join"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Explain missing %q:\n%s", want, text)
		}
	}

	// Under OR the predicate is not extractable: the plan must say so.
	q2 := sparql.MustParse(joinQuery(`geof:sfIntersects(?g1, ?g2) || geof:sfWithin(?g1, ?g2)`))
	text2, err := st.Explain(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text2, "NOT index-accelerated") {
		t.Fatalf("Explain does not flag the cartesian degradation:\n%s", text2)
	}

	// Naive mode names its strategy too.
	naive := New(ModeNaive)
	text3, err := naive.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text3, "cartesian") {
		t.Fatalf("naive Explain does not mention the cartesian strategy:\n%s", text3)
	}
}

// TestSpatialJoinProbeCounter checks the /metrics-backing counter moves.
func TestSpatialJoinProbeCounter(t *testing.T) {
	st := New(ModeIndexed)
	a, b := joinEntitySets(10, 2)
	loadJoinFeatures(t, st.AddFeature, a, b)
	st.Build()
	if _, err := st.QueryString(joinQuery("geof:sfIntersects(?g1, ?g2)")); err != nil {
		t.Fatal(err)
	}
	if st.SpatialJoinStats() == 0 {
		t.Fatal("SpatialJoinStats did not advance after an index spatial join")
	}

	parted := NewPartitioned(3)
	loadJoinFeatures(t, parted.AddFeature, a, b)
	parted.Build()
	if _, err := parted.QueryString(joinQuery("geof:sfIntersects(?g1, ?g2)")); err != nil {
		t.Fatal(err)
	}
	if parted.SpatialJoinStats() == 0 {
		t.Fatal("partitioned SpatialJoinStats did not advance")
	}
}

// TestSpatialJoinWithWindowFilter combines a var-const window seed with
// a var-var join in one query: the seed restricts the left side, the
// probe generates the right side.
func TestSpatialJoinWithWindowFilter(t *testing.T) {
	a, b := joinEntitySets(40, 9)
	indexed := New(ModeIndexed)
	naive := New(ModeNaive)
	loadJoinFeatures(t, indexed.AddFeature, a, b)
	loadJoinFeatures(t, naive.AddFeature, a, b)
	indexed.Build()

	window := geom.NewRect(0, 0, 500, 500)
	qs := fmt.Sprintf(`SELECT ?a ?b WHERE {
		?a a <%s> . ?a geo:hasGeometry ?ga . ?ga geo:asWKT ?g1 .
		?b a <%s> . ?b geo:hasGeometry ?gb . ?gb geo:asWKT ?g2 .
		FILTER(geof:sfIntersects(?g1, "%s"^^geo:wktLiteral))
		FILTER(geof:sfIntersects(?g1, ?g2))
	}`, classA, classB, window.WKT())
	got, err := indexed.QueryString(qs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := naive.QueryString(qs)
	if err != nil {
		t.Fatal(err)
	}
	diffSets(t, "seed+join", pairSet(t, got), pairSet(t, want))
	if got.Len() == 0 {
		t.Fatal("seed+join returned no rows; test data too sparse")
	}
}
