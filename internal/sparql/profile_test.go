package sparql

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestExecuteAnalyzedBGP checks the profile of a plain BGP run: step
// counters chain (rows out of step i = rows into step i+1, last step's
// rows out = emitted), Emitted matches the result set, and identity
// fields are populated.
func TestExecuteAnalyzedBGP(t *testing.T) {
	st := planTestStore()
	q := MustParse(`
		SELECT ?a ?v WHERE {
			?a a <http://example.org/Class1> .
			?a <http://example.org/p/value> ?v .
		}`)
	p, err := CompilePlan(st, q, PlanOpts{})
	if err != nil {
		t.Fatal(err)
	}
	res, prof, err := p.ExecuteAnalyzed(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("expected rows")
	}
	if prof.Query != q.Canonical() || prof.Fingerprint != q.Fingerprint() {
		t.Errorf("profile identity = (%q, %q), want canonical query + fingerprint", prof.Query, prof.Fingerprint)
	}
	if prof.Emitted != int64(res.Len()) {
		t.Errorf("Emitted = %d, want %d", prof.Emitted, res.Len())
	}
	if prof.SeedRows != 1 {
		t.Errorf("SeedRows = %d, want 1 (unseeded run)", prof.SeedRows)
	}
	if len(prof.Steps) != 2 {
		t.Fatalf("len(Steps) = %d, want 2", len(prof.Steps))
	}
	for i, sp := range prof.Steps {
		if sp.Step != i+1 {
			t.Errorf("Steps[%d].Step = %d, want %d", i, sp.Step, i+1)
		}
		if sp.Access == "" {
			t.Errorf("Steps[%d].Access empty", i)
		}
	}
	if prof.Steps[0].RowsOut != prof.Steps[1].RowsIn {
		t.Errorf("step 1 rows out = %d, step 2 rows in = %d; must chain",
			prof.Steps[0].RowsOut, prof.Steps[1].RowsIn)
	}
	if prof.Steps[1].RowsOut != prof.Emitted {
		t.Errorf("last step rows out = %d, want emitted %d", prof.Steps[1].RowsOut, prof.Emitted)
	}
	if prof.Steps[0].RowsIn != 1 {
		t.Errorf("step 1 rows in = %d, want 1 (unseeded)", prof.Steps[0].RowsIn)
	}
}

// TestExecuteAnalyzedFilterDrops checks that pushed-filter rejections
// are counted, per step and in the TotalFilterDrops rollup.
func TestExecuteAnalyzedFilterDrops(t *testing.T) {
	st := planTestStore()
	q := MustParse(`
		SELECT ?a ?v WHERE {
			?a <http://example.org/p/value> ?v .
			FILTER(?v > 50)
		}`)
	p, err := CompilePlan(st, q, PlanOpts{})
	if err != nil {
		t.Fatal(err)
	}
	res, prof, err := p.ExecuteAnalyzed(nil)
	if err != nil {
		t.Fatal(err)
	}
	total := prof.TotalFilterDrops()
	if total <= 0 {
		t.Fatalf("TotalFilterDrops = %d, want > 0 (filter rejects about half the values)", total)
	}
	var stepDrops, matches int64
	for _, sp := range prof.Steps {
		stepDrops += sp.FilterDrops
		matches += sp.Matches
	}
	if stepDrops+prof.SeedDrops != total {
		t.Errorf("step drops %d + seed drops %d != total %d", stepDrops, prof.SeedDrops, total)
	}
	// Matches counts pre-filter candidates, so the books must balance:
	// matches on the filtered step = survivors + drops.
	if prof.Steps[0].Matches != prof.Steps[0].RowsOut+prof.Steps[0].FilterDrops {
		t.Errorf("matches %d != rows out %d + drops %d",
			prof.Steps[0].Matches, prof.Steps[0].RowsOut, prof.Steps[0].FilterDrops)
	}
	if res.Len() == 0 {
		t.Fatal("expected surviving rows")
	}
}

// TestExecuteParallelAnalyzed checks the parallel profile: worker and
// morsel detail present, counters merged across workers, and results
// identical to the sequential run.
func TestExecuteParallelAnalyzed(t *testing.T) {
	st := diffStore(13, 400)
	q := MustParse(`
		SELECT ?a ?v WHERE {
			?a <http://example.org/p/value> ?v .
			?a <http://example.org/p/link> ?b .
		}`)
	p, err := CompilePlan(st, q, PlanOpts{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	res, prof, err := p.ExecuteParallelAnalyzed(nil, ParallelExec{Degree: 2, ScanMorsel: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != seq.Len() {
		t.Fatalf("parallel rows = %d, sequential = %d", res.Len(), seq.Len())
	}
	if prof.Parallel < 1 {
		t.Errorf("Parallel = %d, want >= 1", prof.Parallel)
	}
	if len(prof.Workers) == 0 {
		t.Fatal("expected per-worker stats")
	}
	if prof.Morsels <= 0 {
		t.Errorf("Morsels = %d, want > 0", prof.Morsels)
	}
	var workerMorsels, workerRows int64
	for _, wp := range prof.Workers {
		workerMorsels += wp.Morsels
		workerRows += wp.Rows
		if wp.Utilization < 0 || wp.Utilization > 1 {
			t.Errorf("worker %d utilization = %g, want [0,1]", wp.Worker, wp.Utilization)
		}
	}
	if workerMorsels != prof.Morsels {
		t.Errorf("sum of worker morsels = %d, profile Morsels = %d", workerMorsels, prof.Morsels)
	}
	if workerRows != prof.Emitted {
		t.Errorf("sum of worker rows = %d, profile Emitted = %d", workerRows, prof.Emitted)
	}
	if prof.Emitted != int64(res.Len()) {
		t.Errorf("Emitted = %d, want %d", prof.Emitted, res.Len())
	}
}

// TestExplainAnalyzeRender checks the human rendering: the static plan
// followed by measured per-step lines.
func TestExplainAnalyzeRender(t *testing.T) {
	st := planTestStore()
	q := MustParse(`SELECT ?a WHERE { ?a a <http://example.org/Class1> . }`)
	p, err := CompilePlan(st, q, PlanOpts{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.ExplainAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"query:", "analyze:", "step 1:", "rows in ", "matches ", "filter drops ", "rows out "} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainAnalyze output missing %q:\n%s", want, out)
		}
	}
}

// TestProfileJSONRoundTrip checks the profile serializes with its
// documented field names (the endpoint sidecar / /debug/queries
// contract).
func TestProfileJSONRoundTrip(t *testing.T) {
	st := planTestStore()
	q := MustParse(`SELECT ?a WHERE { ?a a <http://example.org/Class1> . }`)
	p, err := CompilePlan(st, q, PlanOpts{})
	if err != nil {
		t.Fatal(err)
	}
	_, prof, err := p.ExecuteAnalyzed(nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(prof)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"fingerprint"`, `"elapsed_ns"`, `"rows"`, `"steps"`, `"rows_in"`, `"rows_out"`, `"matches"`, `"filter_drops"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("profile JSON missing %s:\n%s", key, data)
		}
	}
	var back Profile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint != prof.Fingerprint || len(back.Steps) != len(prof.Steps) {
		t.Error("profile did not round-trip")
	}
}
