// Package hopsfs implements the HopsFS-style hierarchical filesystem
// metadata layer of Challenge C5: inodes and directory entries stored as
// rows of a sharded NewSQL store (internal/kvstore), with multi-row
// transactional operations, partition-pruned directory listings, and
// inline storage for small files (the "Size Matters" optimisation of
// Niazi et al., Middleware 2018).
//
// Key layout (partition key before '|'):
//
//	inode:<id>            -> encoded inode           (partitioned by id)
//	dir:<parent>|<name>   -> child inode id          (partitioned by parent)
//	sys|nextid            -> id allocator counter
//
// Directory entries of one directory share a partition so List is a
// single-shard range scan, exactly the application-defined partitioning
// HopsFS uses on NDB.
package hopsfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/kvstore"
)

// Errors returned by filesystem operations.
var (
	ErrNotFound   = errors.New("hopsfs: no such file or directory")
	ErrExists     = errors.New("hopsfs: file exists")
	ErrNotDir     = errors.New("hopsfs: not a directory")
	ErrIsDir      = errors.New("hopsfs: is a directory")
	ErrNotEmpty   = errors.New("hopsfs: directory not empty")
	ErrInvalidArg = errors.New("hopsfs: invalid argument")
)

// DefaultInlineThreshold is the small-file cutoff: files at or below this
// size store their data inline in the inode row.
const DefaultInlineThreshold = 4096

const rootID uint64 = 1

// Inode is the metadata record of a file or directory.
type Inode struct {
	ID       uint64
	ParentID uint64
	Name     string
	IsDir    bool
	Size     int64
	ModTime  time.Time
	// Inline holds small-file data (nil for directories and large files).
	Inline []byte
	// BlockID references the block store for large files (0 if none).
	BlockID uint64
}

// FS is the filesystem metadata service.
type FS struct {
	kv        *kvstore.Store
	blocks    *BlockStore
	inlineMax int
	retries   int

	mu     sync.Mutex
	nextID uint64 // next cached inode ID (backed by sys|nextid)
	idCeil uint64 // exclusive upper bound of the cached ID batch
}

// idBatch is how many inode IDs one allocator transaction reserves.
// Batching keeps the sys|nextid row out of every create/mkdir
// transaction, exactly like HopsFS's batched ID allocation on NDB (the
// row would otherwise be a store-wide conflict hot spot).
const idBatch = 128

// Option configures the filesystem.
type Option func(*FS)

// WithInlineThreshold sets the small-file inline cutoff; zero disables
// inlining entirely (the pre-"Size Matters" baseline of experiment E11).
func WithInlineThreshold(n int) Option {
	return func(f *FS) { f.inlineMax = n }
}

// WithBlockStore replaces the default block store (to tune the simulated
// DataNode access cost).
func WithBlockStore(bs *BlockStore) Option {
	return func(f *FS) { f.blocks = bs }
}

// New creates a filesystem on the given KV store.
func New(kv *kvstore.Store, opts ...Option) *FS {
	fs := &FS{
		kv:        kv,
		blocks:    NewBlockStore(DefaultBlockAccessCost),
		inlineMax: DefaultInlineThreshold,
		retries:   64,
	}
	for _, o := range opts {
		o(fs)
	}
	// Install the root directory if absent.
	root := Inode{ID: rootID, Name: "/", IsDir: true, ModTime: time.Unix(0, 0)}
	_ = kv.RunTxn(fs.retries, func(t *kvstore.Txn) error {
		if _, ok := t.Get(inodeKey(rootID)); !ok {
			t.Put(inodeKey(rootID), encodeInode(root))
			t.Put("sys|nextid", encodeUint64(rootID+1))
		}
		return nil
	})
	return fs
}

func inodeKey(id uint64) string { return "inode:" + strconv.FormatUint(id, 10) }

func direntKey(parent uint64, name string) string {
	return "dir:" + strconv.FormatUint(parent, 10) + "|" + name
}

func direntPrefix(parent uint64) string {
	return "dir:" + strconv.FormatUint(parent, 10) + "|"
}

// allocID returns a fresh inode ID from the batched allocator: IDs are
// reserved from sys|nextid in chunks of idBatch so individual namespace
// transactions never touch the counter row. IDs of failed operations are
// simply skipped, as in HopsFS.
func (f *FS) allocID() (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.nextID < f.idCeil {
		id := f.nextID
		f.nextID++
		return id, nil
	}
	var lo uint64
	err := f.kv.RunTxn(f.retries, func(t *kvstore.Txn) error {
		raw, ok := t.Get("sys|nextid")
		if !ok {
			return fmt.Errorf("hopsfs: id allocator missing")
		}
		lo = decodeUint64(raw)
		t.Put("sys|nextid", encodeUint64(lo+idBatch))
		return nil
	})
	if err != nil {
		return 0, err
	}
	f.nextID = lo + 1
	f.idCeil = lo + idBatch
	return lo, nil
}

// splitPath normalizes and splits an absolute path.
func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("%w: path %q is not absolute", ErrInvalidArg, path)
	}
	var parts []string
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
		case "..":
			return nil, fmt.Errorf("%w: path %q contains ..", ErrInvalidArg, path)
		default:
			parts = append(parts, p)
		}
	}
	return parts, nil
}

// resolve walks the path inside the transaction, returning the inode.
func (f *FS) resolve(t *kvstore.Txn, path string) (Inode, error) {
	parts, err := splitPath(path)
	if err != nil {
		return Inode{}, err
	}
	cur, err := f.loadInode(t, rootID)
	if err != nil {
		return Inode{}, err
	}
	for _, name := range parts {
		if !cur.IsDir {
			return Inode{}, fmt.Errorf("%w: %s", ErrNotDir, path)
		}
		raw, ok := t.Get(direntKey(cur.ID, name))
		if !ok {
			return Inode{}, fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		cur, err = f.loadInode(t, decodeUint64(raw))
		if err != nil {
			return Inode{}, err
		}
	}
	return cur, nil
}

func (f *FS) loadInode(t *kvstore.Txn, id uint64) (Inode, error) {
	raw, ok := t.Get(inodeKey(id))
	if !ok {
		return Inode{}, fmt.Errorf("%w: inode %d", ErrNotFound, id)
	}
	return decodeInode(raw), nil
}

// Mkdir creates a directory; parents must exist.
func (f *FS) Mkdir(path string) error {
	return f.kv.RunTxn(f.retries, func(t *kvstore.Txn) error {
		dir, name, err := f.resolveParent(t, path)
		if err != nil {
			return err
		}
		if _, ok := t.Get(direntKey(dir.ID, name)); ok {
			return fmt.Errorf("%w: %s", ErrExists, path)
		}
		id, err := f.allocID()
		if err != nil {
			return err
		}
		node := Inode{ID: id, ParentID: dir.ID, Name: name, IsDir: true, ModTime: time.Now()}
		t.Put(inodeKey(id), encodeInode(node))
		t.Put(direntKey(dir.ID, name), encodeUint64(id))
		return nil
	})
}

// MkdirAll creates the directory and any missing parents.
func (f *FS) MkdirAll(path string) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	cur := ""
	for _, p := range parts {
		cur += "/" + p
		if err := f.Mkdir(cur); err != nil && !errors.Is(err, ErrExists) {
			return err
		}
	}
	return nil
}

// resolveParent resolves the parent directory of path and returns it with
// the final path component.
func (f *FS) resolveParent(t *kvstore.Txn, path string) (Inode, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return Inode{}, "", err
	}
	if len(parts) == 0 {
		return Inode{}, "", fmt.Errorf("%w: cannot operate on /", ErrInvalidArg)
	}
	parentPath := "/" + strings.Join(parts[:len(parts)-1], "/")
	dir, err := f.resolve(t, parentPath)
	if err != nil {
		return Inode{}, "", err
	}
	if !dir.IsDir {
		return Inode{}, "", fmt.Errorf("%w: %s", ErrNotDir, parentPath)
	}
	return dir, parts[len(parts)-1], nil
}

// Create writes a file with the given contents, failing if it exists.
// Data at or below the inline threshold is stored in the inode row; larger
// data goes to the block store ("Size Matters" experiment axis).
func (f *FS) Create(path string, data []byte) error {
	return f.kv.RunTxn(f.retries, func(t *kvstore.Txn) error {
		dir, name, err := f.resolveParent(t, path)
		if err != nil {
			return err
		}
		if _, ok := t.Get(direntKey(dir.ID, name)); ok {
			return fmt.Errorf("%w: %s", ErrExists, path)
		}
		id, err := f.allocID()
		if err != nil {
			return err
		}
		node := Inode{ID: id, ParentID: dir.ID, Name: name, Size: int64(len(data)), ModTime: time.Now()}
		if f.inlineMax > 0 && len(data) <= f.inlineMax {
			node.Inline = data
		} else {
			node.BlockID = f.blocks.Put(data)
		}
		t.Put(inodeKey(id), encodeInode(node))
		t.Put(direntKey(dir.ID, name), encodeUint64(id))
		return nil
	})
}

// Read returns a file's contents.
func (f *FS) Read(path string) ([]byte, error) {
	var out []byte
	err := f.kv.RunTxn(f.retries, func(t *kvstore.Txn) error {
		node, err := f.resolve(t, path)
		if err != nil {
			return err
		}
		if node.IsDir {
			return fmt.Errorf("%w: %s", ErrIsDir, path)
		}
		if node.BlockID != 0 {
			data, ok := f.blocks.Get(node.BlockID)
			if !ok {
				return fmt.Errorf("hopsfs: dangling block %d for %s", node.BlockID, path)
			}
			out = data
			return nil
		}
		out = append([]byte(nil), node.Inline...)
		return nil
	})
	return out, err
}

// Stat returns the inode for a path.
func (f *FS) Stat(path string) (Inode, error) {
	var node Inode
	err := f.kv.RunTxn(f.retries, func(t *kvstore.Txn) error {
		var err error
		node, err = f.resolve(t, path)
		return err
	})
	return node, err
}

// List returns the sorted child names of a directory via a single
// partition-pruned range scan.
func (f *FS) List(path string) ([]string, error) {
	var dir Inode
	err := f.kv.RunTxn(f.retries, func(t *kvstore.Txn) error {
		var err error
		dir, err = f.resolve(t, path)
		if err != nil {
			return err
		}
		if !dir.IsDir {
			return fmt.Errorf("%w: %s", ErrNotDir, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	prefix := direntPrefix(dir.ID)
	var names []string
	f.kv.Scan(prefix, func(key string, _ []byte) bool {
		names = append(names, key[len(prefix):])
		return true
	})
	return names, nil
}

// Delete removes a file or an empty directory.
func (f *FS) Delete(path string) error {
	var blockID uint64
	err := f.kv.RunTxn(f.retries, func(t *kvstore.Txn) error {
		blockID = 0
		node, err := f.resolve(t, path)
		if err != nil {
			return err
		}
		if node.ID == rootID {
			return fmt.Errorf("%w: cannot delete /", ErrInvalidArg)
		}
		if node.IsDir {
			empty := true
			f.kv.Scan(direntPrefix(node.ID), func(string, []byte) bool {
				empty = false
				return false
			})
			if !empty {
				return fmt.Errorf("%w: %s", ErrNotEmpty, path)
			}
		}
		t.Delete(inodeKey(node.ID))
		t.Delete(direntKey(node.ParentID, node.Name))
		blockID = node.BlockID
		return nil
	})
	if err == nil && blockID != 0 {
		f.blocks.Delete(blockID)
	}
	return err
}

// DeleteRecursive removes a path and, for directories, its whole
// subtree. Like HopsFS subtree operations it proceeds depth-first in
// batched transactions rather than one giant transaction, so very large
// subtrees do not monopolize the store; concurrent creates inside the
// subtree during the operation may survive it (the documented HopsFS
// semantics for subtree deletes).
func (f *FS) DeleteRecursive(path string) error {
	node, err := f.Stat(path)
	if err != nil {
		return err
	}
	if node.IsDir {
		names, err := f.List(path)
		if err != nil {
			return err
		}
		for _, name := range names {
			if err := f.DeleteRecursive(path + "/" + name); err != nil {
				return err
			}
		}
	}
	return f.Delete(path)
}

// Rename atomically moves a file or directory to a new path. This is the
// flagship multi-partition transaction of HopsFS (subtree operations):
// it touches the source dirent, the destination dirent and the inode in
// one commit.
func (f *FS) Rename(oldPath, newPath string) error {
	return f.kv.RunTxn(f.retries, func(t *kvstore.Txn) error {
		node, err := f.resolve(t, oldPath)
		if err != nil {
			return err
		}
		if node.ID == rootID {
			return fmt.Errorf("%w: cannot rename /", ErrInvalidArg)
		}
		newDir, newName, err := f.resolveParent(t, newPath)
		if err != nil {
			return err
		}
		if _, ok := t.Get(direntKey(newDir.ID, newName)); ok {
			return fmt.Errorf("%w: %s", ErrExists, newPath)
		}
		t.Delete(direntKey(node.ParentID, node.Name))
		node.ParentID = newDir.ID
		node.Name = newName
		node.ModTime = time.Now()
		t.Put(inodeKey(node.ID), encodeInode(node))
		t.Put(direntKey(newDir.ID, newName), encodeUint64(node.ID))
		return nil
	})
}

// KV exposes the underlying store (for stats in benchmarks).
func (f *FS) KV() *kvstore.Store { return f.kv }

// Blocks exposes the block store (for stats in benchmarks).
func (f *FS) Blocks() *BlockStore { return f.blocks }

// --- encoding ---

func encodeUint64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func decodeUint64(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// encodeInode serializes an inode with a simple length-prefixed binary
// layout (no reflection; metadata rows are hot).
func encodeInode(n Inode) []byte {
	name := []byte(n.Name)
	buf := make([]byte, 0, 8*5+1+4+len(name)+4+len(n.Inline))
	buf = binary.BigEndian.AppendUint64(buf, n.ID)
	buf = binary.BigEndian.AppendUint64(buf, n.ParentID)
	buf = binary.BigEndian.AppendUint64(buf, uint64(n.Size))
	buf = binary.BigEndian.AppendUint64(buf, uint64(n.ModTime.UnixNano()))
	buf = binary.BigEndian.AppendUint64(buf, n.BlockID)
	if n.IsDir {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(name)))
	buf = append(buf, name...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(n.Inline)))
	buf = append(buf, n.Inline...)
	return buf
}

func decodeInode(b []byte) Inode {
	var n Inode
	if len(b) < 8*5+1+4 {
		return n
	}
	n.ID = binary.BigEndian.Uint64(b[0:])
	n.ParentID = binary.BigEndian.Uint64(b[8:])
	n.Size = int64(binary.BigEndian.Uint64(b[16:]))
	n.ModTime = time.Unix(0, int64(binary.BigEndian.Uint64(b[24:])))
	n.BlockID = binary.BigEndian.Uint64(b[32:])
	n.IsDir = b[40] == 1
	nameLen := binary.BigEndian.Uint32(b[41:])
	off := 45 + int(nameLen)
	if off > len(b) {
		return n
	}
	n.Name = string(b[45:off])
	if off+4 > len(b) {
		return n
	}
	inlineLen := binary.BigEndian.Uint32(b[off:])
	off += 4
	if inlineLen > 0 && off+int(inlineLen) <= len(b) {
		n.Inline = append([]byte(nil), b[off:off+int(inlineLen)]...)
	}
	return n
}
