// Command eeserve runs the SPARQL Protocol endpoint over the
// re-engineered geostore: it loads a workload (synthetic features and/or
// an N-Triples file), then serves GET/POST /sparql with content-negotiated
// results plus /metrics and /healthz.
//
// Usage:
//
//	eeserve -addr :8080 -n 100000
//	eeserve -mode partitioned -parts 4 -n 1000000
//	eeserve -load data.nt -n 0
//
// Example queries:
//
//	curl 'localhost:8080/sparql?query=SELECT+?f+WHERE+{+?f+a+ee:Feature+}+LIMIT+3'
//	curl -H 'Accept: text/csv' --data-urlencode 'query=...' localhost:8080/sparql
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/endpoint"
	"repro/internal/geom"
	"repro/internal/geostore"
	"repro/internal/rdf"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eeserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eeserve", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", ":8080", "listen address")
	n := fs.Int("n", 10000, "synthetic point features to load (0 for none)")
	mode := fs.String("mode", "indexed", "store mode: indexed, naive or partitioned")
	parts := fs.Int("parts", 4, "partition count for -mode partitioned")
	seed := fs.Int64("seed", 42, "workload seed")
	load := fs.String("load", "", "N-Triples file to load (indexed/naive modes)")
	cacheSize := fs.Int("cache", 256, "result cache entries (negative disables)")
	maxInFlight := fs.Int("max-inflight", 16, "max concurrently evaluating queries")
	timeout := fs.Duration("timeout", 30*time.Second, "per-query timeout")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return fmt.Errorf("usage: %w", err)
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	extent := geom.NewRect(0, 0, 10000, 10000)
	var engine endpoint.Engine
	switch *mode {
	case "indexed", "naive":
		m := geostore.ModeIndexed
		if *mode == "naive" {
			m = geostore.ModeNaive
		}
		st := geostore.New(m)
		for _, f := range geostore.GeneratePointFeatures(*n, *seed, extent) {
			if err := st.AddFeature(f); err != nil {
				return err
			}
		}
		if *load != "" {
			if err := loadNTriples(st, *load); err != nil {
				return err
			}
		}
		st.Build()
		engine = st
	case "partitioned":
		if *load != "" {
			return fmt.Errorf("-load is only supported with indexed/naive modes")
		}
		ps := geostore.NewPartitioned(*parts)
		for _, f := range geostore.GeneratePointFeatures(*n, *seed, extent) {
			if err := ps.AddFeature(f); err != nil {
				return err
			}
		}
		ps.Build()
		engine = ps
	default:
		fs.Usage()
		return fmt.Errorf("unknown mode %q", *mode)
	}

	srv := endpoint.New(engine, endpoint.Config{
		MaxInFlight:  *maxInFlight,
		QueryTimeout: *timeout,
		CacheSize:    *cacheSize,
	})
	fmt.Printf("eeserve: %d triples (store version %d, %s mode); listening on %s\n",
		engine.Len(), engine.Version(), *mode, *addr)
	return http.ListenAndServe(*addr, srv)
}

// loadNTriples streams an N-Triples file into the store, registering
// geometry literals as it goes.
func loadNTriples(st *geostore.Store, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	triples, skipped, err := rdf.ReadNTriples(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for _, t := range triples {
		if err := st.Add(t.S, t.P, t.O); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "eeserve: skipped %d malformed lines in %s\n", skipped, path)
	}
	return nil
}
