package sparql

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestParseOffset(t *testing.T) {
	cases := []struct {
		in            string
		limit, offset int
	}{
		{`SELECT ?x WHERE { ?s ?p ?x . } LIMIT 10 OFFSET 20`, 10, 20},
		{`SELECT ?x WHERE { ?s ?p ?x . } OFFSET 20 LIMIT 10`, 10, 20},
		{`SELECT ?x WHERE { ?s ?p ?x . } OFFSET 7`, 0, 7},
		{`SELECT ?x WHERE { ?s ?p ?x . } ORDER BY ?x OFFSET 3 LIMIT 2`, 2, 3},
		{`SELECT ?x WHERE { ?s ?p ?x . } offset 4`, 0, 4}, // keywords are case-insensitive
	}
	for _, c := range cases {
		q, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if q.Limit != c.limit || q.Offset != c.offset {
			t.Errorf("Parse(%q): limit=%d offset=%d, want %d/%d",
				c.in, q.Limit, q.Offset, c.limit, c.offset)
		}
	}
	bad := []string{
		`SELECT ?x WHERE { ?s ?p ?x . } OFFSET`,
		`SELECT ?x WHERE { ?s ?p ?x . } OFFSET abc`,
		`SELECT ?x WHERE { ?s ?p ?x . } OFFSET -3`,
		`SELECT ?x WHERE { ?s ?p ?x . } LIMIT 2 LIMIT 3`,
		`SELECT ?x WHERE { ?s ?p ?x . } OFFSET 2 OFFSET 3`,
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestCanonicalIncludesOffset(t *testing.T) {
	page1 := MustParse(`SELECT ?x WHERE { ?s ?p ?x . } LIMIT 10`)
	page2 := MustParse(`SELECT ?x WHERE { ?s ?p ?x . } LIMIT 10 OFFSET 10`)
	if page1.Canonical() == page2.Canonical() {
		t.Fatalf("canonical form conflates pages: %s", page1.Canonical())
	}
	if page1.Fingerprint() == page2.Fingerprint() {
		t.Fatal("fingerprint conflates pages")
	}
	if !strings.Contains(page2.Canonical(), "OFFSET 10") {
		t.Fatalf("canonical missing OFFSET: %s", page2.Canonical())
	}
	// Both LIMIT/OFFSET orders share one canonical spelling.
	alt := MustParse(`SELECT ?x WHERE { ?s ?p ?x . } OFFSET 10 LIMIT 10`)
	if alt.Canonical() != page2.Canonical() {
		t.Fatalf("order-sensitive canonical: %q vs %q", alt.Canonical(), page2.Canonical())
	}
}

func TestExtractSpatialJoins(t *testing.T) {
	q := MustParse(`SELECT ?a ?b WHERE {
		?a geo:asWKT ?g1 . ?b geo:asWKT ?g2 .
		FILTER(geof:sfIntersects(?g1, ?g2))
	}`)
	joins := ExtractSpatialJoins(q)
	if len(joins) != 1 {
		t.Fatalf("joins = %d, want 1", len(joins))
	}
	j := joins[0]
	if j.VarA != "g1" || j.VarB != "g2" || j.Fn != FnSfIntersects || !j.Exclusive {
		t.Fatalf("join = %+v", j)
	}
	if j.Relation() != geom.JoinIntersects {
		t.Fatalf("relation = %v", j.Relation())
	}

	// AND conjuncts extract non-exclusively.
	q2 := MustParse(`SELECT ?a WHERE { ?a geo:asWKT ?g1 . ?b geo:asWKT ?g2 .
		FILTER(geof:sfWithin(?g1, ?g2) && ?a != ?b) }`)
	j2 := ExtractSpatialJoins(q2)
	if len(j2) != 1 || j2[0].Exclusive || j2[0].Fn != FnSfWithin {
		t.Fatalf("AND join = %+v", j2)
	}

	// Under OR nothing extracts.
	q3 := MustParse(`SELECT ?a WHERE { ?a geo:asWKT ?g1 . ?b geo:asWKT ?g2 .
		FILTER(geof:sfWithin(?g1, ?g2) || geof:sfContains(?g1, ?g2)) }`)
	if got := ExtractSpatialJoins(q3); len(got) != 0 {
		t.Fatalf("OR join extracted: %+v", got)
	}

	// Same variable twice is not a join.
	q4 := MustParse(`SELECT ?a WHERE { ?a geo:asWKT ?g1 .
		FILTER(geof:sfIntersects(?g1, ?g1)) }`)
	if got := ExtractSpatialJoins(q4); len(got) != 0 {
		t.Fatalf("self join extracted: %+v", got)
	}
}

func TestExtractDistanceJoins(t *testing.T) {
	cases := []struct {
		filter string
		dist   float64
		strict bool
	}{
		{`geof:distance(?g1, ?g2) < 5`, 5, true},
		{`geof:distance(?g1, ?g2) <= 5.5`, 5.5, false},
		{`7 > geof:distance(?g1, ?g2)`, 7, true},
		{`7 >= geof:distance(?g1, ?g2)`, 7, false},
	}
	for _, c := range cases {
		q := MustParse(`SELECT ?a WHERE { ?a geo:asWKT ?g1 . ?b geo:asWKT ?g2 .
			FILTER(` + c.filter + `) }`)
		joins := ExtractSpatialJoins(q)
		if len(joins) != 1 {
			t.Fatalf("%s: joins = %d, want 1", c.filter, len(joins))
		}
		j := joins[0]
		if j.Fn != FnDistance || j.Distance != c.dist || j.StrictLess != c.strict {
			t.Fatalf("%s: join = %+v", c.filter, j)
		}
		wantRel := geom.JoinNearerEq
		if c.strict {
			wantRel = geom.JoinNearer
		}
		if j.Relation() != wantRel {
			t.Fatalf("%s: relation = %v", c.filter, j.Relation())
		}
	}
	// The wrong comparison direction (distance must be LARGE) is not a
	// window-expandable join.
	q := MustParse(`SELECT ?a WHERE { ?a geo:asWKT ?g1 . ?b geo:asWKT ?g2 .
		FILTER(geof:distance(?g1, ?g2) > 5) }`)
	if got := ExtractSpatialJoins(q); len(got) != 0 {
		t.Fatalf("far-join extracted: %+v", got)
	}
}

func TestSpatialReport(t *testing.T) {
	q := MustParse(`SELECT ?a ?b WHERE {
		?a geo:asWKT ?g1 . ?b geo:asWKT ?g2 .
		FILTER(geof:sfIntersects(?g1, ?g2))
		FILTER(geof:sfWithin(?g1, "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))"^^geo:wktLiteral))
		FILTER(geof:sfContains(?g1, ?g2) || ?a = ?b)
		FILTER(geof:distance(?g1, ?g2) < 4)
	}`)
	rep := strings.Join(SpatialReport(q), "\n")
	for _, want := range []string{
		"geof:sfIntersects(?g1, ?g2) — R-tree index spatial join",
		"geof:sfWithin(?g1, ",
		"index filter-and-refine",
		"geof:sfContains(?g1, ?g2) — NOT index-accelerated: cartesian scan",
		"geof:distance(?g1, ?g2) < 4 — R-tree index distance join",
	} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	if got := SpatialReport(MustParse(`SELECT ?x WHERE { ?s ?p ?x . }`)); len(got) != 0 {
		t.Fatalf("non-spatial query reported: %v", got)
	}

	// A join variable outside the pattern group is not an index join —
	// the plan rejects every row, and the report must say so (not claim
	// acceleration).
	unbound := MustParse(`SELECT ?a WHERE { ?a geo:asWKT ?g1 .
		FILTER(geof:sfIntersects(?g1, ?zz)) FILTER(geof:distance(?g1, ?zz) < 2)
		FILTER(geof:sfWithin(?none, "POINT (1 2)"^^geo:wktLiteral)) }`)
	urep := strings.Join(SpatialReport(unbound), "\n")
	if strings.Contains(urep, "index spatial join") || strings.Contains(urep, "index distance join") ||
		strings.Contains(urep, "filter-and-refine") {
		t.Fatalf("report claims acceleration for unbound variables:\n%s", urep)
	}
	for _, want := range []string{"(?zz is outside the pattern group)", "(?none is outside the pattern group)"} {
		if !strings.Contains(urep, want) {
			t.Fatalf("report missing %q:\n%s", want, urep)
		}
	}
}

func TestExprVars(t *testing.T) {
	q := MustParse(`SELECT ?a WHERE { ?a ?p ?b .
		FILTER(geof:distance(?g1, ?g2) < 4 || !(?a = ?b && ?c > 1)) }`)
	got := ExprVars(q.Filters[0])
	want := []string{"g1", "g2", "a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vars = %v, want %v", got, want)
		}
	}
}
