package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/geom"
	"repro/internal/geostore"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// This file implements the parallel-executor benchmark group behind
// `eebench -bench-group parallel -bench-out BENCH_parallel.json`: the
// morsel-driven executor measured against the sequential slot executor
// at degrees 1, 2, 4 and NumCPU, recorded as machine-readable JSON so
// successive PRs can compare runs. The workload list is the single
// source of truth shared with the repository-root
// BenchmarkParallelQuery_* benchmarks.

// ParallelWorkload is one workload of the parallel benchmark group.
type ParallelWorkload struct {
	Name  string
	Query string
	// Spatial marks workloads that must run through the geostore
	// (R-tree seeding and in-pipeline spatial refiners); the rest run
	// compiled plans against the raw RDF store.
	Spatial bool
	// MinRows guards against silently empty measurements at the
	// 10k-feature dataset scale.
	MinRows int
}

// ParallelWorkloads span the shapes the morsel executor parallelizes:
// a large scan, a filter-heavy pipeline, R-tree-seeded spatial
// refinement, an aggregate fold, and ORDER BY + LIMIT.
var ParallelWorkloads = []ParallelWorkload{
	{Name: "large_scan", Query: `
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f ?v0 WHERE {
			?f a ee:Feature .
			?f ee:band0 ?v0 .
		}`, MinRows: 1000},
	{Name: "filter_heavy", Query: `
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f ?v0 ?v1 ?v2 WHERE {
			?f ee:band0 ?v0 .
			?f ee:band1 ?v1 .
			?f ee:band2 ?v2 .
			FILTER(?v0 > 32 && ?v1 < 224 && (?v2 > 64 || ?v0 < 128))
		}`, MinRows: 100},
	{Name: "spatial_refine", Query: `
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f ?wkt WHERE {
			?f a ee:Feature .
			?f geo:hasGeometry ?g .
			?g geo:asWKT ?wkt .
			FILTER(geof:sfIntersects(?wkt, "POLYGON ((0 0, 9000 0, 9000 9000, 0 9000, 0 0))"^^geo:wktLiteral))
			FILTER(geof:sfWithin(?wkt, "POLYGON ((100 100, 8900 100, 8900 8900, 100 8900, 100 100))"^^geo:wktLiteral))
		}`, Spatial: true, MinRows: 100},
	{Name: "count_group", Query: `
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?v0 (COUNT(*) AS ?n) WHERE {
			?f ee:band0 ?v0 .
			?f ee:band1 ?v1 .
		} GROUP BY ?v0`, MinRows: 100},
	{Name: "order_by_limit", Query: `
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f ?v0 WHERE {
			?f a ee:Feature .
			?f ee:band0 ?v0 .
		} ORDER BY DESC ?v0 LIMIT 10`, MinRows: 10},
}

// ParallelDegrees are the measured worker counts: 1 isolates the morsel
// machinery's overhead against the sequential baseline, NumCPU is the
// saturation point.
func ParallelDegrees() []int {
	ds := []int{1, 2, 4}
	n := runtime.NumCPU()
	for _, d := range ds {
		if d == n {
			return ds
		}
	}
	return append(ds, n)
}

// ParallelBenchResult is one measured (workload, engine) cell.
type ParallelBenchResult struct {
	Name    string `json:"name"`    // workload name
	Engine  string `json:"engine"`  // "seq" or "parN"
	Degree  int    `json:"degree"`  // 0 for the sequential baseline
	Triples int    `json:"triples"` // dataset size
	Rows    int    `json:"rows"`    // result rows per evaluation
	Iters   int    `json:"iters"`
	NsPerOp int64  `json:"ns_per_op"`
}

// ParallelBenchReport is the BENCH_parallel.json schema.
type ParallelBenchReport struct {
	Group     string                `json:"group"`
	Generated string                `json:"generated"`
	Triples   int                   `json:"triples"`
	CPUs      int                   `json:"cpus"`
	Results   []ParallelBenchResult `json:"results"`
}

// ParallelBenchDataset builds the band-observation geostore shared by
// the parallel group and the root BenchmarkParallelQuery_* benchmarks.
func ParallelBenchDataset(features int) *geostore.Store {
	gst := geostore.New(geostore.ModeIndexed)
	rng := rand.New(rand.NewSource(43))
	extent := geom.NewRect(0, 0, 10000, 10000)
	for _, f := range geostore.GeneratePointFeatures(features, 42, extent) {
		for band := 0; band < 6; band++ {
			f.Props[fmt.Sprintf("http://extremeearth.eu/ontology#band%d", band)] =
				rdf.NewIntLiteral(int64(rng.Intn(256)))
		}
		if err := gst.AddFeature(f); err != nil {
			panic(err)
		}
	}
	gst.Build()
	return gst
}

// ParallelBench runs the parallel-executor group and returns a
// printable table plus the JSON report. Non-spatial workloads execute
// one compiled plan directly (sequential vs ExecuteParallel at each
// degree); spatial workloads run through the geostore so R-tree seeding
// and in-pipeline refiners are part of the measurement.
func ParallelBench(cfg Config) (*Table, *ParallelBenchReport) {
	features := cfg.scale(10000, 1000)
	iters := cfg.scale(5, 2)
	gst := ParallelBenchDataset(features)
	st := gst.RDF()
	degrees := ParallelDegrees()

	t := &Table{
		ID:     "PARALLEL",
		Title:  "Parallel executor: morsel-driven worker pool vs sequential slot pipeline",
		Header: []string{"workload", "engine", "rows", "wall_ms", "speedup_vs_seq"},
		Notes: fmt.Sprintf("GOMAXPROCS=%d; par1 isolates morsel-machinery overhead (spatial workloads fall back to the sequential path below degree 2); byte-identical results enforced by tests",
			runtime.GOMAXPROCS(0)),
	}
	rep := &ParallelBenchReport{
		Group:     "parallel",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Triples:   st.Len(),
		CPUs:      runtime.NumCPU(),
	}

	measure := func(eval func() (*sparql.Results, error), min int) (int, time.Duration) {
		res, err := eval()
		if err != nil {
			panic(err)
		}
		if res.Len() < min {
			panic(fmt.Sprintf("parallel bench workload returned %d rows, want >= %d", res.Len(), min))
		}
		rows := res.Len()
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := eval(); err != nil {
				panic(err)
			}
		}
		return rows, time.Since(start) / time.Duration(iters)
	}

	for _, w := range ParallelWorkloads {
		q := sparql.MustParse(w.Query)
		var evals []struct {
			name   string
			degree int
			eval   func() (*sparql.Results, error)
		}
		add := func(name string, degree int, eval func() (*sparql.Results, error)) {
			evals = append(evals, struct {
				name   string
				degree int
				eval   func() (*sparql.Results, error)
			}{name, degree, eval})
		}
		if w.Spatial {
			add("seq", 0, func() (*sparql.Results, error) {
				gst.SetParallel(1, nil)
				return gst.Query(q)
			})
			for _, d := range degrees {
				d := d
				add(fmt.Sprintf("par%d", d), d, func() (*sparql.Results, error) {
					return ParallelSpatialQuery(gst, q, d)
				})
			}
		} else {
			plan, err := sparql.CompilePlan(st, q, sparql.PlanOpts{})
			if err != nil {
				panic(err)
			}
			add("seq", 0, plan.Execute)
			for _, d := range degrees {
				d := d
				add(fmt.Sprintf("par%d", d), d, func() (*sparql.Results, error) {
					return plan.ExecuteParallel(sparql.ParallelExec{Degree: d})
				})
			}
		}

		var seqNs int64
		for _, e := range evals {
			rows, dur := measure(e.eval, w.MinRows)
			if e.name == "seq" {
				seqNs = dur.Nanoseconds()
			}
			speedup := "1.00"
			if dur > 0 && e.name != "seq" {
				speedup = f2(float64(seqNs) / float64(dur.Nanoseconds()))
			}
			t.Rows = append(t.Rows, []string{w.Name, e.name, i0(rows), ms(dur), speedup})
			rep.Results = append(rep.Results, ParallelBenchResult{
				Name: w.Name, Engine: e.name, Degree: e.degree, Triples: st.Len(),
				Rows: rows, Iters: iters, NsPerOp: dur.Nanoseconds(),
			})
		}
	}
	gst.SetParallel(1, nil)
	return t, rep
}

// ParallelSpatialQuery evaluates q on gst with the morsel executor at
// the given degree (helper shared with the root benchmarks; it flips
// the store's degree for the duration of the call, so it must not race
// with other queries).
func ParallelSpatialQuery(gst *geostore.Store, q *sparql.Query, degree int) (*sparql.Results, error) {
	gst.SetParallel(degree, nil)
	return gst.Query(q)
}

// WriteParallelBenchJSON writes the report to path (the conventional
// name is BENCH_parallel.json).
func WriteParallelBenchJSON(path string, rep *ParallelBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
