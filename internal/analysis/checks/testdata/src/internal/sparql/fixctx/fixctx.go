// Package fixctx is the ctxthread fixture: root contexts minted below
// the handler layer (flagged) and the sanctioned shim shape (clean).
package fixctx

import "context"

func run(ctx context.Context, q string) error { return ctx.Err() }

// evalCtx already receives a context and must forward it; the test
// asserts the suggested fix rewrites the call to the parameter.
func evalCtx(ctx context.Context, q string) error {
	c := context.Background() // want `context\.Background\(\) drops the caller's context; forward the ctx parameter`
	_ = c
	return run(ctx, q)
}

// Query is the sanctioned no-ctx shim: exported, mints the root
// context only to hand it straight to its *Context sibling.
func Query(q string) error {
	return QueryContext(context.Background(), q)
}

// QueryContext is a conforming *Context entry point.
func QueryContext(ctx context.Context, q string) error { return run(ctx, q) }

// helper sits below the handler layer without a context at all.
func helper(q string) error {
	return run(context.TODO(), q) // want `context\.TODO\(\) below the handler layer: accept a context\.Context and forward it`
}

// Rebuild is exported but squirrels the root context away instead of
// delegating to a *Context sibling — still flagged.
func Rebuild(q string) error {
	ctx := context.Background() // want `context\.Background\(\) below the handler layer`
	return run(ctx, q)
}

// BadContext is a *Context entry point missing the context-first
// parameter.
func BadContext(q string) error { // want `BadContext is a \*Context entry point but does not take context\.Context as its first parameter`
	return nil
}
