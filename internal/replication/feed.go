package replication

import (
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/storage"
)

// FeedConfig configures the primary-side shipping service.
type FeedConfig struct {
	// DB is the primary's storage; the feed only ever reads from it
	// (segment files, the durable cursor, the epoch), so a slow or
	// stuck replica can never backpressure the commit path.
	DB *storage.DB
	// Token authenticates replicas (Bearer or X-Replication-Token).
	// Required: NewFeed panics on an empty token rather than shipping
	// the whole dataset to anyone who asks.
	Token string
	// PollInterval is how often a caught-up stream re-checks the
	// durable end for new records. Default 250ms.
	PollInterval time.Duration
	// HeartbeatEvery is the cadence of heartbeat frames on a caught-up
	// stream (they carry the replica's lag and prove liveness through
	// idle periods). Default 2s.
	HeartbeatEvery time.Duration
	// Metrics instruments shipping; nil disables.
	Metrics *Metrics
	// Logger receives per-connection lifecycle events; nil discards.
	Logger *slog.Logger
}

// Feed is the primary-side replication service: an http.Handler
// serving /replication/wal and /replication/snapshot. Close terminates
// every open stream with a Sealed frame so replicas persist their
// cursors and reconnect instead of re-bootstrapping.
type Feed struct {
	cfg    FeedConfig
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// NewFeed builds the shipping service over cfg.DB.
func NewFeed(cfg FeedConfig) *Feed {
	if cfg.DB == nil {
		panic("replication: FeedConfig.DB is required")
	}
	if cfg.Token == "" {
		panic("replication: FeedConfig.Token is required")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 2 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Feed{cfg: cfg, closed: make(chan struct{})}
}

// Close seals every open stream (each gets a final Sealed frame) and
// waits for the handlers to drain. Safe to call more than once.
func (f *Feed) Close() {
	f.once.Do(func() { close(f.closed) })
	f.wg.Wait()
}

// ServeHTTP routes the feed's two endpoints. Mount under /replication/.
func (f *Feed) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !f.authorized(r) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="replication"`)
		http.Error(w, "missing or invalid replication token", http.StatusUnauthorized)
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	switch {
	case strings.HasSuffix(r.URL.Path, "/wal"):
		f.handleWAL(w, r)
	case strings.HasSuffix(r.URL.Path, "/snapshot"):
		f.handleSnapshot(w, r)
	default:
		http.NotFound(w, r)
	}
}

// authorized checks the replication token (constant-time, like the
// endpoint's load token).
func (f *Feed) authorized(r *http.Request) bool {
	token := r.Header.Get("X-Replication-Token")
	if auth := r.Header.Get("Authorization"); token == "" && strings.HasPrefix(auth, "Bearer ") {
		token = strings.TrimPrefix(auth, "Bearer ")
	}
	return subtle.ConstantTimeCompare([]byte(token), []byte(f.cfg.Token)) == 1
}

// handleSnapshot serves the newest snapshot file for replica
// bootstrap, with the epoch and the post-install resume cursor in
// headers. 204 when the primary has not snapshotted yet (the replica
// starts empty from the stream's beginning).
func (f *Feed) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	db := f.cfg.DB
	info, resume, ok, err := db.LatestSnapshot()
	if err != nil {
		http.Error(w, "snapshot listing failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("X-Replication-Epoch", u64str(db.Epoch()))
	w.Header().Set("X-Replication-Cursor", resume.String())
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("X-Snapshot-Version", u64str(info.Version))
	w.Header().Set("Content-Type", "application/octet-stream")
	sf, err := db.FS().Open(info.Path)
	if err != nil {
		http.Error(w, "snapshot unreadable", http.StatusInternalServerError)
		return
	}
	defer sf.Close()
	if _, err := io.Copy(w, sf); err != nil {
		// Mid-body failure: the client sees a short/broken download and
		// retries; nothing to send at this point.
		f.cfg.Logger.Warn("replication: snapshot download aborted", "err", err)
	}
}

// handleWAL streams frames from the requested cursor until the client
// disconnects or the feed closes. All flow control is pull-from-disk:
// the handler holds no references into the commit path.
func (f *Feed) handleWAL(w http.ResponseWriter, r *http.Request) {
	db := f.cfg.DB
	cursor, err := db.StartCursor()
	if err != nil {
		http.Error(w, "WAL listing failed", http.StatusInternalServerError)
		return
	}
	if s := r.URL.Query().Get("cursor"); s != "" {
		cursor, err = storage.ParseCursor(s)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	select {
	case <-f.closed:
		http.Error(w, "feed is shutting down", http.StatusServiceUnavailable)
		return
	default:
	}

	sr, err := db.OpenSegmentReader(cursor)
	if errors.Is(err, storage.ErrCursorTruncated) {
		// Pre-stream detection of a pruned cursor: 410 tells the replica
		// the position is gone for good (sticky, re-bootstrap), unlike a
		// 5xx it would retry forever.
		http.Error(w, "cursor pruned by compaction; re-bootstrap from /replication/snapshot", http.StatusGone)
		return
	}
	if err != nil {
		http.Error(w, "cannot open WAL stream", http.StatusInternalServerError)
		return
	}
	defer sr.Close()

	f.wg.Add(1)
	defer f.wg.Done()
	f.cfg.Metrics.connection(1)
	defer f.cfg.Metrics.connection(-1)
	log := f.cfg.Logger.With("remote", r.RemoteAddr, "cursor", cursor.String())
	log.Info("replication: stream opened")

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Replication-Epoch", u64str(db.Epoch()))
	flusher, _ := w.(http.Flusher)
	send := func(fr Frame) bool {
		fr.Epoch = db.Epoch()
		buf := appendFrame(nil, fr)
		if _, err := w.Write(buf); err != nil {
			return false // client went away; it will reconnect
		}
		if flusher != nil {
			flusher.Flush()
		}
		f.cfg.Metrics.shipped(fr.Type, len(buf))
		return true
	}

	var lastHeartbeat time.Time
	ctx := r.Context()
	for {
		select {
		case <-f.closed:
			send(Frame{Type: FrameSealed, Cursor: sr.Cursor()})
			log.Info("replication: stream sealed by shutdown")
			return
		case <-ctx.Done():
			return
		default:
		}
		batch, next, err := sr.Next()
		switch {
		case err == nil:
			if !send(Frame{Type: FrameBatch, Cursor: next, Body: storage.EncodeBatch(batch)}) {
				return
			}
		case errors.Is(err, storage.ErrCaughtUp):
			if time.Since(lastHeartbeat) >= f.cfg.HeartbeatEvery {
				lag, lagErr := db.LagBytes(sr.Cursor())
				if lagErr != nil {
					lag = 0
				}
				if !send(Frame{Type: FrameHeartbeat, Cursor: sr.Cursor(), Body: uvarint(uint64(lag))}) {
					return
				}
				lastHeartbeat = time.Now()
			}
			select {
			case <-f.closed:
				send(Frame{Type: FrameSealed, Cursor: sr.Cursor()})
				log.Info("replication: stream sealed by shutdown")
				return
			case <-ctx.Done():
				return
			case <-time.After(f.cfg.PollInterval):
			}
		case errors.Is(err, storage.ErrCursorTruncated):
			// Compaction pruned the reader's position mid-stream (the
			// replica lagged across two snapshots). Tell it explicitly:
			// this is sticky on its side.
			send(Frame{Type: FrameGone, Cursor: sr.Cursor()})
			log.Warn("replication: stream cursor pruned; replica must re-bootstrap")
			return
		default:
			// Real I/O trouble on the primary (reads failing). Drop the
			// connection; the replica reconnects with backoff while the
			// operator deals with the disk.
			log.Warn("replication: stream read failed", "err", err)
			return
		}
	}
}

func u64str(v uint64) string { return strconv.FormatUint(v, 10) }

// uvarint encodes v as a standalone varint (heartbeat body).
func uvarint(v uint64) []byte { return binary.AppendUvarint(nil, v) }
