package storage

import (
	"time"

	"repro/internal/telemetry"
)

// walLatencyBuckets are the upper bounds (seconds) for the WAL
// append/fsync histograms: appends are buffered writes in the tens of
// microseconds, fsyncs range from sub-millisecond (NVMe) through tens
// of milliseconds (contended spinning disks).
var walLatencyBuckets = []float64{0.00001, 0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5}

// snapshotLatencyBuckets cover snapshot write/load durations: small
// test stores finish in microseconds, multi-million-triple stores take
// seconds.
var snapshotLatencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60}

// batchSizeBuckets are upper bounds on triples per committed WAL record
// (group-commit batch size distribution).
var batchSizeBuckets = []float64{1, 8, 64, 512, 4096, 32768, 262144}

// Metrics instruments the storage engine's durability points. Create
// with NewMetrics and pass via Options.Metrics; a nil *Metrics disables
// all instrumentation at the cost of one pointer test per commit (never
// per Record — the triple hot path is untouched).
type Metrics struct {
	// WAL commit path.
	appendSeconds *telemetry.Histogram // commitLocked: frame+CRC+write+flush
	fsyncSeconds  *telemetry.Histogram // group-commit fsync
	batchTriples  *telemetry.Histogram // triples per committed record
	commits       *telemetry.Counter
	syncs         *telemetry.Counter
	rotations     *telemetry.Counter
	recorded      *telemetry.Counter

	// Snapshot/compaction path.
	snapshotWrite  *telemetry.Histogram // write + rename + dir sync
	snapshotLoad   *telemetry.Histogram // decode + index build at recovery
	snapshotWrites *telemetry.Counter
	compactions    *telemetry.Counter
	segmentsPruned *telemetry.Counter
	snapshotBytes  *telemetry.Gauge // size of the newest snapshot file

	// Failure surface (see README "Failure modes & degraded operation"):
	// degraded flips to 1 when the WAL takes its sticky write failure and
	// the store stops accepting writes; ioErrors counts every failed
	// filesystem operation by op label, snapshot failures included.
	degraded      *telemetry.Gauge
	ioErrors      map[string]*telemetry.Counter
	ioErrorsOther *telemetry.Counter
}

// ioErrorOps is the fixed label space of storage_io_errors_total: the
// vfs operations the WAL and snapshot writers perform. Failures outside
// the set land on op="other" rather than minting unbounded labels.
var ioErrorOps = []string{"create", "write", "fsync", "close", "rename", "remove", "dirsync", "rotate"}

// Metric family names, one const per family so the namespace is
// greppable and the eevet metricsreg check can verify registrations.
const (
	metricWALAppendSeconds   = "storage_wal_append_duration_seconds"
	metricWALFsyncSeconds    = "storage_wal_fsync_duration_seconds"
	metricWALBatchTriples    = "storage_wal_batch_triples"
	metricWALCommits         = "storage_wal_commits_total"
	metricWALSyncs           = "storage_wal_syncs_total"
	metricWALRotations       = "storage_wal_rotations_total"
	metricWALRecordedTriples = "storage_wal_recorded_triples_total"
	metricSnapshotSeconds    = "storage_snapshot_duration_seconds"
	metricSnapshotWrites     = "storage_snapshot_writes_total"
	metricCompactions        = "storage_snapshot_compactions_total"
	metricSegmentsPruned     = "storage_wal_segments_pruned_total"
	metricSnapshotBytes      = "storage_snapshot_last_bytes"
	metricDegraded           = "storage_degraded"
	metricIOErrors           = "storage_io_errors_total"
)

// NewMetrics registers the storage metric families on reg and returns
// the instrument set.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	m := &Metrics{}
	m.appendSeconds = reg.DurationHistogram(metricWALAppendSeconds,
		"WAL record commit latency: encode, CRC, buffered write and flush (excludes fsync).", walLatencyBuckets)
	m.fsyncSeconds = reg.DurationHistogram(metricWALFsyncSeconds,
		"WAL fsync latency (group commit; see -wal-sync-every).", walLatencyBuckets)
	m.batchTriples = reg.ValueHistogram(metricWALBatchTriples,
		"Triples per committed WAL record (group-commit batch size).", batchSizeBuckets)
	m.commits = reg.Counter(metricWALCommits, "WAL records committed.")
	m.syncs = reg.Counter(metricWALSyncs, "WAL fsync calls.")
	m.rotations = reg.Counter(metricWALRotations, "WAL segment rotations.")
	m.recorded = reg.Counter(metricWALRecordedTriples, "Triples sealed into committed WAL records.")
	hf := reg.DurationHistogramFamily(metricSnapshotSeconds,
		"Snapshot file operation durations by op (write = capture to disk, load = recovery decode).", snapshotLatencyBuckets)
	m.snapshotWrite = hf.Histogram("op", "write")
	m.snapshotLoad = hf.Histogram("op", "load")
	m.snapshotWrites = reg.Counter(metricSnapshotWrites, "Snapshot files written.")
	m.compactions = reg.Counter(metricCompactions, "WAL compaction runs (snapshot + prune).")
	m.segmentsPruned = reg.Counter(metricSegmentsPruned, "WAL segment files deleted by compaction.")
	m.snapshotBytes = reg.Gauge(metricSnapshotBytes, "Size in bytes of the newest snapshot file.")
	m.degraded = reg.Gauge(metricDegraded,
		"1 once the WAL has taken its sticky write failure and the store refuses writes; restart to recover.")
	ef := reg.CounterFamily(metricIOErrors,
		"Filesystem operation failures in the WAL and snapshot paths, by operation.")
	m.ioErrors = make(map[string]*telemetry.Counter, len(ioErrorOps))
	for _, op := range ioErrorOps {
		m.ioErrors[op] = ef.Counter("op", op)
	}
	m.ioErrorsOther = ef.Counter("op", "other")
	return m
}

// ioError counts one failed filesystem operation. Safe on a nil
// receiver so error paths need no metrics guard.
func (m *Metrics) ioError(op string) {
	if m == nil {
		return
	}
	if c, ok := m.ioErrors[op]; ok {
		c.Inc()
		return
	}
	m.ioErrorsOther.Inc()
}

// setDegraded flips the degraded gauge; nil-safe like ioError.
func (m *Metrics) setDegraded() {
	if m == nil {
		return
	}
	m.degraded.Set(1)
}

// observeCommit records one sealed WAL record. Called with the log's
// mutex held; everything here is atomic adds.
func (m *Metrics) observeCommit(d time.Duration, triples uint64) {
	m.appendSeconds.ObserveDuration(d)
	m.batchTriples.ObserveValue(triples)
	m.commits.Inc()
	m.recorded.Add(triples)
}

// observeFsync records one group-commit fsync.
func (m *Metrics) observeFsync(d time.Duration) {
	m.fsyncSeconds.ObserveDuration(d)
	m.syncs.Inc()
}
