// Package compute implements the parallel-processing substrate of
// Challenge C5: the role Apache Spark plays on the HOPS platform. It
// provides lazy, partitioned datasets with map/filter/reduce
// transformations, hash-shuffled reduceByKey, and a worker-pool engine
// that executes each stage's partitions concurrently.
//
// Transformations compose lazily (each wraps its parent's thunk); actions
// (Collect, Count, Reduce) trigger execution. Narrow transformations
// (Map, Filter, FlatMap) preserve partitioning; ReduceByKey performs a
// hash shuffle into the engine's default partition count, like a Spark
// wide dependency.
package compute

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
)

// Engine schedules partition tasks onto a bounded worker pool.
type Engine struct {
	workers    int
	partitions int
}

// NewEngine returns an engine with the given worker count and default
// partition count; non-positive values default to GOMAXPROCS.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers, partitions: workers}
}

// Workers returns the configured worker count.
func (e *Engine) Workers() int { return e.workers }

// runStage executes fn for every partition index concurrently, bounded by
// the worker pool.
func (e *Engine) runStage(n int, fn func(p int)) {
	sem := make(chan struct{}, e.workers)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(p int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(p)
		}(p)
	}
	wg.Wait()
}

// Dataset is a lazy, partitioned collection of T.
type Dataset[T any] struct {
	eng *Engine
	// compute materializes all partitions.
	compute func() [][]T
}

// Parallelize distributes items over the engine's default partition count.
func Parallelize[T any](e *Engine, items []T) *Dataset[T] {
	n := e.partitions
	if n > len(items) && len(items) > 0 {
		n = len(items)
	}
	if n == 0 {
		n = 1
	}
	return &Dataset[T]{
		eng: e,
		compute: func() [][]T {
			parts := make([][]T, n)
			chunk := (len(items) + n - 1) / n
			for p := 0; p < n; p++ {
				lo := p * chunk
				hi := lo + chunk
				if lo > len(items) {
					lo = len(items)
				}
				if hi > len(items) {
					hi = len(items)
				}
				parts[p] = items[lo:hi]
			}
			return parts
		},
	}
}

// FromPartitions wraps pre-partitioned data.
func FromPartitions[T any](e *Engine, parts [][]T) *Dataset[T] {
	return &Dataset[T]{eng: e, compute: func() [][]T { return parts }}
}

// Map applies f to every element (narrow transformation).
func Map[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] {
	return &Dataset[U]{
		eng: d.eng,
		compute: func() [][]U {
			in := d.compute()
			out := make([][]U, len(in))
			d.eng.runStage(len(in), func(p int) {
				part := make([]U, len(in[p]))
				for i, v := range in[p] {
					part[i] = f(v)
				}
				out[p] = part
			})
			return out
		},
	}
}

// Filter keeps elements where pred is true (narrow transformation).
func Filter[T any](d *Dataset[T], pred func(T) bool) *Dataset[T] {
	return &Dataset[T]{
		eng: d.eng,
		compute: func() [][]T {
			in := d.compute()
			out := make([][]T, len(in))
			d.eng.runStage(len(in), func(p int) {
				var part []T
				for _, v := range in[p] {
					if pred(v) {
						part = append(part, v)
					}
				}
				out[p] = part
			})
			return out
		},
	}
}

// FlatMap applies f and concatenates the results (narrow transformation).
func FlatMap[T, U any](d *Dataset[T], f func(T) []U) *Dataset[U] {
	return &Dataset[U]{
		eng: d.eng,
		compute: func() [][]U {
			in := d.compute()
			out := make([][]U, len(in))
			d.eng.runStage(len(in), func(p int) {
				var part []U
				for _, v := range in[p] {
					part = append(part, f(v)...)
				}
				out[p] = part
			})
			return out
		},
	}
}

// KV is a key-value pair for shuffle operations.
type KV[K comparable, V any] struct {
	K K
	V V
}

// ReduceByKey hash-shuffles pairs by key and reduces values per key with
// the associative function f (wide transformation).
func ReduceByKey[K comparable, V any](d *Dataset[KV[K, V]], f func(a, b V) V) *Dataset[KV[K, V]] {
	return &Dataset[KV[K, V]]{
		eng: d.eng,
		compute: func() [][]KV[K, V] {
			in := d.compute()
			n := d.eng.partitions
			// Shuffle write: each input partition buckets its pairs.
			buckets := make([][]map[K]V, len(in)) // [inPart][outPart]
			d.eng.runStage(len(in), func(p int) {
				local := make([]map[K]V, n)
				for i := range local {
					local[i] = make(map[K]V)
				}
				for _, kv := range in[p] {
					b := int(hashKey(kv.K)) % n
					if cur, ok := local[b][kv.K]; ok {
						local[b][kv.K] = f(cur, kv.V)
					} else {
						local[b][kv.K] = kv.V
					}
				}
				buckets[p] = local
			})
			// Shuffle read: merge each output partition's buckets.
			out := make([][]KV[K, V], n)
			d.eng.runStage(n, func(b int) {
				merged := make(map[K]V)
				for p := range buckets {
					for k, v := range buckets[p][b] {
						if cur, ok := merged[k]; ok {
							merged[k] = f(cur, v)
						} else {
							merged[k] = v
						}
					}
				}
				part := make([]KV[K, V], 0, len(merged))
				for k, v := range merged {
					part = append(part, KV[K, V]{k, v})
				}
				out[b] = part
			})
			return out
		},
	}
}

func hashKey[K comparable](k K) uint32 {
	h := fnv.New32a()
	fmt.Fprintf(h, "%v", k)
	return h.Sum32()
}

// Collect materializes the dataset into one slice (action).
func (d *Dataset[T]) Collect() []T {
	parts := d.compute()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Count returns the element count (action).
func (d *Dataset[T]) Count() int {
	parts := d.compute()
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	return n
}

// NumPartitions reports the partition count after materialization.
func (d *Dataset[T]) NumPartitions() int { return len(d.compute()) }

// Reduce folds all elements with the associative function f (action).
// ok is false for an empty dataset.
func Reduce[T any](d *Dataset[T], f func(a, b T) T) (T, bool) {
	parts := d.compute()
	partials := make([]T, 0, len(parts))
	var mu sync.Mutex
	d.eng.runStage(len(parts), func(p int) {
		if len(parts[p]) == 0 {
			return
		}
		acc := parts[p][0]
		for _, v := range parts[p][1:] {
			acc = f(acc, v)
		}
		mu.Lock()
		partials = append(partials, acc)
		mu.Unlock()
	})
	if len(partials) == 0 {
		var zero T
		return zero, false
	}
	acc := partials[0]
	for _, v := range partials[1:] {
		acc = f(acc, v)
	}
	return acc, true
}

// Foreach applies f to every element in parallel (action with side
// effects; f must be safe for concurrent use across partitions).
func (d *Dataset[T]) Foreach(f func(T)) {
	parts := d.compute()
	d.eng.runStage(len(parts), func(p int) {
		for _, v := range parts[p] {
			f(v)
		}
	})
}
