package endpoint_test

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/endpoint"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// ridEngine records the request ID its evaluation context carried, so
// the end-to-end test can prove the ID seen by the engine, the response
// header, and the access-log line are one and the same.
type ridEngine struct{ got chan string }

func (e *ridEngine) Query(*sparql.Query) (*sparql.Results, error) {
	return &sparql.Results{Vars: []string{"x"}}, nil
}
func (e *ridEngine) QueryContext(ctx context.Context, _ *sparql.Query) (*sparql.Results, error) {
	e.got <- sparql.RequestIDFrom(ctx)
	return &sparql.Results{Vars: []string{"x"}}, nil
}
func (e *ridEngine) Version() uint64 { return 1 }
func (e *ridEngine) Len() int        { return 0 }

// TestRequestIDEndToEnd sends a request with an explicit X-Request-ID
// and asserts the same ID shows up (a) in the evaluation context inside
// the engine, (b) on the response header, and (c) in the structured
// access-log line.
func TestRequestIDEndToEnd(t *testing.T) {
	var logBuf bytes.Buffer
	eng := &ridEngine{got: make(chan string, 1)}
	srv := endpoint.New(eng, endpoint.Config{
		Logger:    slog.New(slog.NewJSONHandler(&logBuf, nil)),
		CacheSize: -1,
	})

	const id = "e2e-trace-42"
	rec := get(t, srv, sparqlURL("SELECT ?x WHERE { ?x ?p ?o . }", ""), map[string]string{"X-Request-ID": id})
	if rec.Code != 200 {
		t.Fatalf("status = %d (body %q)", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Request-ID"); got != id {
		t.Errorf("response X-Request-ID = %q, want %q", got, id)
	}
	if got := <-eng.got; got != id {
		t.Errorf("engine saw request ID %q, want %q", got, id)
	}
	var line struct {
		Msg       string  `json:"msg"`
		RequestID string  `json:"request_id"`
		Method    string  `json:"method"`
		Path      string  `json:"path"`
		Status    int     `json:"status"`
		Bytes     int64   `json:"bytes"`
		Duration  float64 `json:"duration"`
	}
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatalf("access log line not JSON: %v\n%s", err, logBuf.String())
	}
	if line.Msg != "request" || line.RequestID != id || line.Path != "/sparql" || line.Status != 200 || line.Bytes <= 0 {
		t.Errorf("access log line = %+v, want request_id %q on /sparql with a body", line, id)
	}
}

// TestRequestIDGenerated checks requests without an inbound ID get a
// fresh 16-hex-char one.
func TestRequestIDGenerated(t *testing.T) {
	srv := endpoint.New(testStore(t), endpoint.Config{})
	rec := get(t, srv, "/healthz", nil)
	id := rec.Header().Get("X-Request-ID")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Errorf("generated X-Request-ID = %q, want 16 hex chars", id)
	}
	// A second request must get a different ID.
	if id2 := get(t, srv, "/healthz", nil).Header().Get("X-Request-ID"); id2 == id {
		t.Errorf("two requests got the same generated ID %q", id)
	}
}

// TestAnalyzeSidecar checks ?analyze=1: a JSON envelope carrying the
// per-step profile alongside the SPARQL JSON results, bypassing the
// result cache.
func TestAnalyzeSidecar(t *testing.T) {
	srv := endpoint.New(testStore(t), endpoint.Config{})

	// Warm the cache with a plain request, then prove analyze bypasses it.
	if rec := get(t, srv, sparqlURL(spatialQuery, ""), nil); rec.Code != 200 {
		t.Fatalf("warmup status = %d", rec.Code)
	}
	rec := get(t, srv, sparqlURL(spatialQuery, "analyze=1"), nil)
	if rec.Code != 200 {
		t.Fatalf("status = %d (body %q)", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != "BYPASS" {
		t.Errorf("X-Cache = %q, want BYPASS", got)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var env struct {
		Profile *sparql.Profile `json:"profile"`
		Results struct {
			Head struct {
				Vars []string `json:"vars"`
			} `json:"head"`
		} `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("envelope not JSON: %v\n%s", err, rec.Body.String())
	}
	if env.Profile == nil || len(env.Profile.Steps) == 0 {
		t.Fatalf("envelope missing profile steps:\n%s", rec.Body.String())
	}
	if env.Profile.Rows != 2 || env.Profile.Emitted == 0 {
		t.Errorf("profile rows = %d, emitted = %d; want 2 rows", env.Profile.Rows, env.Profile.Emitted)
	}
	if len(env.Results.Head.Vars) == 0 {
		t.Errorf("envelope missing results:\n%s", rec.Body.String())
	}

	// The header spelling works too.
	hrec := get(t, srv, sparqlURL(spatialQuery, ""), map[string]string{"SPARQL-Analyze": "1"})
	if hrec.Code != 200 || !strings.Contains(hrec.Body.String(), `"profile"`) {
		t.Errorf("SPARQL-Analyze header: status %d, body %q", hrec.Code, hrec.Body.String())
	}
}

// TestDebugQueriesSlowCapture checks that queries over the threshold
// land in GET /debug/queries with their profile attached, and bump
// sparql_slow_queries_total.
func TestDebugQueriesSlowCapture(t *testing.T) {
	srv := endpoint.New(testStore(t), endpoint.Config{
		SlowQueryThreshold: time.Nanosecond, // everything is slow
		CacheSize:          -1,
	})
	if rec := get(t, srv, sparqlURL(spatialQuery, ""), map[string]string{"X-Request-ID": "slow-1"}); rec.Code != 200 {
		t.Fatalf("query status = %d", rec.Code)
	}

	// The public route requires the load token (see TestDebugAuth); the
	// admin mux serves the ring without auth.
	rec := get(t, srv.AdminMux(), "/debug/queries", nil)
	if rec.Code != 200 {
		t.Fatalf("/debug/queries status = %d", rec.Code)
	}
	var doc struct {
		ThresholdMs float64 `json:"slow_query_threshold_ms"`
		Running     []json.RawMessage
		Recent      []struct {
			RequestID   string          `json:"request_id"`
			Fingerprint string          `json:"fingerprint"`
			Status      string          `json:"status"`
			DurationMs  float64         `json:"duration_ms"`
			Rows        int             `json:"rows"`
			Profile     *sparql.Profile `json:"profile"`
		} `json:"recent"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/queries not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(doc.Recent) != 1 {
		t.Fatalf("recent = %d entries, want 1:\n%s", len(doc.Recent), rec.Body.String())
	}
	e := doc.Recent[0]
	if e.RequestID != "slow-1" || e.Status != "slow" || e.Fingerprint == "" || e.Rows != 2 {
		t.Errorf("captured entry = %+v", e)
	}
	if e.Profile == nil || len(e.Profile.Steps) == 0 {
		t.Errorf("captured entry missing executor profile:\n%s", rec.Body.String())
	}
	if !strings.Contains(get(t, srv, "/metrics", nil).Body.String(), "sparql_slow_queries_total 1") {
		t.Error("/metrics missing sparql_slow_queries_total 1")
	}

}

// TestHealthzOverloaded checks /healthz flips to 503 "overloaded" while
// admission control is saturated and recovers afterwards.
func TestHealthzOverloaded(t *testing.T) {
	eng := &blockingEngine{started: make(chan struct{}, 1), release: make(chan struct{})}
	srv := endpoint.New(eng, endpoint.Config{MaxInFlight: 1, CacheSize: -1})

	done := make(chan struct{})
	go func() {
		get(t, srv, sparqlURL("SELECT ?x WHERE { ?x ?p ?o . }", ""), nil)
		close(done)
	}()
	<-eng.started

	rec := get(t, srv, "/healthz", nil)
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), `"status":"overloaded"`) {
		t.Fatalf("saturated healthz = %d %q, want 503 overloaded", rec.Code, rec.Body.String())
	}

	close(eng.release)
	<-done
	// The admission slot is released asynchronously by the eval
	// goroutine; wait for healthz to recover.
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec = get(t, srv, "/healthz", nil)
		if rec.Code == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz still %d after release", rec.Code)
		}
		time.Sleep(time.Millisecond)
	}
	if !strings.Contains(rec.Body.String(), `"status":"ok"`) {
		t.Fatalf("recovered healthz body = %q", rec.Body.String())
	}
}

// TestErrorKindMetrics checks the labeled error breakdown stays in sync
// with the unlabeled total.
func TestErrorKindMetrics(t *testing.T) {
	srv := endpoint.New(testStore(t), endpoint.Config{})
	if rec := get(t, srv, sparqlURL("NOT A QUERY", ""), nil); rec.Code != 400 {
		t.Fatalf("parse error status = %d", rec.Code)
	}
	body := get(t, srv, "/metrics", nil).Body.String()
	for _, want := range []string{
		"sparql_query_errors_total 1",
		`sparql_query_errors_total{kind="parse"} 1`,
		`sparql_query_errors_total{kind="eval"} 0`,
		`sparql_query_errors_total{kind="serialize"} 0`,
		`sparql_query_errors_total{kind="timeout"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestAdminMux checks the admin surface exposes pprof, /metrics and
// the debug routes without token auth.
func TestAdminMux(t *testing.T) {
	srv := endpoint.New(testStore(t), endpoint.Config{})
	admin := srv.AdminMux()
	for path, wantSub := range map[string]string{
		"/debug/pprof/":     "profiles",
		"/metrics":          "sparql_queries_total",
		"/debug/queries":    `"recent"`,
		"/debug/store":      `"memory"`,
		"/debug/cache":      `"hit_ratio"`,
		"/debug/pprof/heap": "",
	} {
		rec := get(t, admin, path, nil)
		if rec.Code != 200 {
			t.Errorf("GET %s = %d", path, rec.Code)
			continue
		}
		if wantSub != "" && !strings.Contains(rec.Body.String(), wantSub) {
			t.Errorf("GET %s body missing %q", path, wantSub)
		}
	}
}

// TestUptimeAndRuntimeGauges checks the runtime gauges render sane
// values.
func TestUptimeAndRuntimeGauges(t *testing.T) {
	srv := endpoint.New(testStore(t), endpoint.Config{Workers: rdf.NewWorkerPool(2)})
	body := get(t, srv, "/metrics", nil).Body.String()
	for _, want := range []string{
		"sparql_build_info{go_version=\"go",
		"sparql_uptime_seconds ",
		"sparql_goroutines ",
		"sparql_heap_bytes ",
		"sparql_exec_workers_busy ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
