package geom

import "math"

// Intersects reports whether the two geometries share at least one point.
// It dispatches on the concrete types; unsupported combinations fall back
// to a bounding-box test combined with exact tests where available.
func Intersects(a, b Geometry) bool {
	if !a.Bounds().Intersects(b.Bounds()) {
		return false
	}
	switch ga := a.(type) {
	case Point:
		return containsPoint(b, ga)
	case Rect:
		return rectIntersects(ga, b)
	case LineString:
		return lineIntersects(ga, b)
	case Polygon:
		return polygonIntersects(ga, b)
	case MultiPolygon:
		for _, p := range ga.Polygons {
			if Intersects(p, b) {
				return true
			}
		}
		return false
	}
	return true // bounding boxes intersect and we know nothing more
}

// Contains reports whether geometry a completely contains geometry b.
// Supported containers are Rect, Polygon and MultiPolygon; all geometry
// types can be containees (tested via their vertices plus, for areal
// containees, absence of boundary crossings).
func Contains(a, b Geometry) bool {
	if !a.Bounds().ContainsRect(b.Bounds()) {
		return false
	}
	switch ga := a.(type) {
	case Rect:
		return true // bounds containment is exact for rectangles
	case Polygon:
		return polygonContains(ga, b)
	case MultiPolygon:
		// Every vertex of b must be inside some member and no member
		// boundary may cross b. For the synthetic workloads members are
		// disjoint, so testing "one member contains b" suffices.
		for _, p := range ga.Polygons {
			if Contains(p, b) {
				return true
			}
		}
		return false
	case Point:
		q, ok := b.(Point)
		return ok && ga == q
	}
	return false
}

// Within reports whether a is completely inside b (the converse of
// Contains).
func Within(a, b Geometry) bool { return Contains(b, a) }

// Distance returns the minimum distance between the two geometries, zero
// when they intersect. Exact for point/rect/segment combinations; for
// areal-areal pairs it is the minimum over boundary segments.
func Distance(a, b Geometry) float64 {
	if Intersects(a, b) {
		return 0
	}
	sa, pa := boundary(a)
	sb, pb := boundary(b)
	best := math.Inf(1)
	// point-to-point and point-to-segment distances
	for _, p := range pa {
		for _, q := range pb {
			if d := p.DistanceTo(q); d < best {
				best = d
			}
		}
		for _, s := range sb {
			if d := pointSegmentDistance(p, s[0], s[1]); d < best {
				best = d
			}
		}
	}
	for _, q := range pb {
		for _, s := range sa {
			if d := pointSegmentDistance(q, s[0], s[1]); d < best {
				best = d
			}
		}
	}
	for _, s := range sa {
		for _, t := range sb {
			if d := segmentSegmentDistance(s, t); d < best {
				best = d
			}
		}
	}
	return best
}

// boundary decomposes a geometry into its boundary segments and isolated
// vertices for distance computation.
func boundary(g Geometry) (segs [][2]Point, pts []Point) {
	switch gg := g.(type) {
	case Point:
		return nil, []Point{gg}
	case Rect:
		c := []Point{
			gg.Min, {gg.Max.X, gg.Min.Y}, gg.Max, {gg.Min.X, gg.Max.Y},
		}
		for i := range c {
			segs = append(segs, [2]Point{c[i], c[(i+1)%4]})
		}
		return segs, c
	case LineString:
		for i := 1; i < len(gg.Points); i++ {
			segs = append(segs, [2]Point{gg.Points[i-1], gg.Points[i]})
		}
		return segs, gg.Points
	case Polygon:
		segs = append(segs, ringSegments(gg.Shell)...)
		pts = append(pts, gg.Shell...)
		for _, h := range gg.Holes {
			segs = append(segs, ringSegments(h)...)
			pts = append(pts, h...)
		}
		return segs, pts
	case MultiPolygon:
		for _, p := range gg.Polygons {
			s, q := boundary(p)
			segs = append(segs, s...)
			pts = append(pts, q...)
		}
		return segs, pts
	}
	return nil, nil
}

func ringSegments(r Ring) [][2]Point {
	if len(r) < 2 {
		return nil
	}
	segs := make([][2]Point, 0, len(r))
	for i := 0; i < len(r); i++ {
		segs = append(segs, [2]Point{r[i], r[(i+1)%len(r)]})
	}
	return segs
}

// containsPoint reports whether geometry g contains the point p (boundary
// inclusive).
func containsPoint(g Geometry, p Point) bool {
	switch gg := g.(type) {
	case Point:
		return gg == p
	case Rect:
		return gg.ContainsPoint(p)
	case LineString:
		for i := 1; i < len(gg.Points); i++ {
			if pointSegmentDistance(p, gg.Points[i-1], gg.Points[i]) == 0 {
				return true
			}
		}
		return false
	case Polygon:
		return polygonContainsPoint(gg, p)
	case MultiPolygon:
		for _, poly := range gg.Polygons {
			if polygonContainsPoint(poly, p) {
				return true
			}
		}
		return false
	}
	return false
}

// polygonContainsPoint uses the even-odd ray casting rule with an explicit
// on-boundary check so that boundary points count as contained.
func polygonContainsPoint(poly Polygon, p Point) bool {
	if !inRing(poly.Shell, p) {
		return false
	}
	for _, h := range poly.Holes {
		if inRingStrict(h, p) {
			return false
		}
	}
	return true
}

// inRing reports p inside-or-on the ring.
func inRing(r Ring, p Point) bool {
	for _, s := range ringSegments(r) {
		if pointSegmentDistance(p, s[0], s[1]) < 1e-12 {
			return true
		}
	}
	return rayCast(r, p)
}

// inRingStrict reports p strictly inside the ring (boundary excluded).
func inRingStrict(r Ring, p Point) bool {
	for _, s := range ringSegments(r) {
		if pointSegmentDistance(p, s[0], s[1]) < 1e-12 {
			return false
		}
	}
	return rayCast(r, p)
}

// rayCast implements the even-odd rule with a ray towards +X.
func rayCast(r Ring, p Point) bool {
	inside := false
	n := len(r)
	for i := 0; i < n; i++ {
		a, b := r[i], r[(i+1)%n]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			x := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if x > p.X {
				inside = !inside
			}
		}
	}
	return inside
}

func rectIntersects(r Rect, b Geometry) bool {
	switch gb := b.(type) {
	case Point:
		return r.ContainsPoint(gb)
	case Rect:
		return r.Intersects(gb)
	case LineString:
		return lineIntersects(gb, r)
	case Polygon:
		return polygonIntersects(gb, r)
	case MultiPolygon:
		for _, p := range gb.Polygons {
			if polygonIntersects(p, r) {
				return true
			}
		}
		return false
	}
	return true
}

func lineIntersects(l LineString, b Geometry) bool {
	switch gb := b.(type) {
	case Point:
		return containsPoint(l, gb)
	case Rect:
		// any vertex inside, or any segment crossing the rect boundary
		for _, p := range l.Points {
			if gb.ContainsPoint(p) {
				return true
			}
		}
		rsegs, _ := boundary(gb)
		for i := 1; i < len(l.Points); i++ {
			for _, s := range rsegs {
				if segmentsIntersect(l.Points[i-1], l.Points[i], s[0], s[1]) {
					return true
				}
			}
		}
		return false
	case LineString:
		for i := 1; i < len(l.Points); i++ {
			for j := 1; j < len(gb.Points); j++ {
				if segmentsIntersect(l.Points[i-1], l.Points[i], gb.Points[j-1], gb.Points[j]) {
					return true
				}
			}
		}
		return false
	case Polygon:
		for _, p := range l.Points {
			if polygonContainsPoint(gb, p) {
				return true
			}
		}
		psegs, _ := boundary(gb)
		for i := 1; i < len(l.Points); i++ {
			for _, s := range psegs {
				if segmentsIntersect(l.Points[i-1], l.Points[i], s[0], s[1]) {
					return true
				}
			}
		}
		return false
	case MultiPolygon:
		for _, p := range gb.Polygons {
			if lineIntersects(l, p) {
				return true
			}
		}
		return false
	}
	return true
}

func polygonIntersects(poly Polygon, b Geometry) bool {
	switch gb := b.(type) {
	case Point:
		return polygonContainsPoint(poly, gb)
	case Rect:
		// corner of rect inside polygon, vertex of polygon inside rect,
		// or boundary crossing
		if polygonContainsPoint(poly, gb.Min) || polygonContainsPoint(poly, gb.Max) ||
			polygonContainsPoint(poly, Point{gb.Min.X, gb.Max.Y}) ||
			polygonContainsPoint(poly, Point{gb.Max.X, gb.Min.Y}) {
			return true
		}
		for _, p := range poly.Shell {
			if gb.ContainsPoint(p) {
				return true
			}
		}
		rsegs, _ := boundary(gb)
		for _, s := range ringSegments(poly.Shell) {
			for _, t := range rsegs {
				if segmentsIntersect(s[0], s[1], t[0], t[1]) {
					return true
				}
			}
		}
		return false
	case LineString:
		return lineIntersects(gb, poly)
	case Polygon:
		// vertex containment either way, then boundary crossing
		for _, p := range gb.Shell {
			if polygonContainsPoint(poly, p) {
				return true
			}
		}
		for _, p := range poly.Shell {
			if polygonContainsPoint(gb, p) {
				return true
			}
		}
		for _, s := range ringSegments(poly.Shell) {
			for _, t := range ringSegments(gb.Shell) {
				if segmentsIntersect(s[0], s[1], t[0], t[1]) {
					return true
				}
			}
		}
		return false
	case MultiPolygon:
		for _, p := range gb.Polygons {
			if polygonIntersects(poly, p) {
				return true
			}
		}
		return false
	}
	return true
}

// polygonContains reports whether poly completely contains geometry b.
func polygonContains(poly Polygon, b Geometry) bool {
	switch gb := b.(type) {
	case Point:
		return polygonContainsPoint(poly, gb)
	case Rect:
		corners := []Point{
			gb.Min, gb.Max, {gb.Min.X, gb.Max.Y}, {gb.Max.X, gb.Min.Y},
		}
		for _, c := range corners {
			if !polygonContainsPoint(poly, c) {
				return false
			}
		}
		return !boundariesCross(poly, gb)
	case LineString:
		for _, p := range gb.Points {
			if !polygonContainsPoint(poly, p) {
				return false
			}
		}
		return !boundariesCross(poly, gb)
	case Polygon:
		for _, p := range gb.Shell {
			if !polygonContainsPoint(poly, p) {
				return false
			}
		}
		return !boundariesCross(poly, gb)
	case MultiPolygon:
		for _, p := range gb.Polygons {
			if !polygonContains(poly, p) {
				return false
			}
		}
		return true
	}
	return false
}

// boundariesCross reports whether the boundary of poly properly crosses any
// boundary segment of b (shared endpoints do not count as crossings).
func boundariesCross(poly Polygon, b Geometry) bool {
	bsegs, _ := boundary(b)
	psegs, _ := boundary(poly)
	for _, s := range psegs {
		for _, t := range bsegs {
			if segmentsProperlyIntersect(s[0], s[1], t[0], t[1]) {
				return true
			}
		}
	}
	return false
}

// cross returns the z-component of (b-a) x (c-a).
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// onSegment reports whether c (known collinear with a-b) lies on segment ab.
func onSegment(a, b, c Point) bool {
	return math.Min(a.X, b.X) <= c.X && c.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= c.Y && c.Y <= math.Max(a.Y, b.Y)
}

// segmentsIntersect reports whether segments ab and cd share any point,
// including touching endpoints and collinear overlap.
func segmentsIntersect(a, b, c, d Point) bool {
	d1 := cross(c, d, a)
	d2 := cross(c, d, b)
	d3 := cross(a, b, c)
	d4 := cross(a, b, d)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	if d1 == 0 && onSegment(c, d, a) {
		return true
	}
	if d2 == 0 && onSegment(c, d, b) {
		return true
	}
	if d3 == 0 && onSegment(a, b, c) {
		return true
	}
	if d4 == 0 && onSegment(a, b, d) {
		return true
	}
	return false
}

// segmentsProperlyIntersect reports a crossing in the interiors of both
// segments (touching at endpoints excluded).
func segmentsProperlyIntersect(a, b, c, d Point) bool {
	d1 := cross(c, d, a)
	d2 := cross(c, d, b)
	d3 := cross(a, b, c)
	d4 := cross(a, b, d)
	return ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))
}

// pointSegmentDistance returns the distance from p to segment ab.
func pointSegmentDistance(p, a, b Point) float64 {
	abx, aby := b.X-a.X, b.Y-a.Y
	apx, apy := p.X-a.X, p.Y-a.Y
	den := abx*abx + aby*aby
	if den == 0 {
		return p.DistanceTo(a)
	}
	t := (apx*abx + apy*aby) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	proj := Point{a.X + t*abx, a.Y + t*aby}
	return p.DistanceTo(proj)
}

// segmentSegmentDistance returns the minimum distance between two segments.
func segmentSegmentDistance(s, t [2]Point) float64 {
	if segmentsIntersect(s[0], s[1], t[0], t[1]) {
		return 0
	}
	d := pointSegmentDistance(s[0], t[0], t[1])
	if v := pointSegmentDistance(s[1], t[0], t[1]); v < d {
		d = v
	}
	if v := pointSegmentDistance(t[0], s[0], s[1]); v < d {
		d = v
	}
	if v := pointSegmentDistance(t[1], s[0], s[1]); v < d {
		d = v
	}
	return d
}
