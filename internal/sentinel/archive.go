package sentinel

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/geom"
)

// Mission identifies the satellite family of a product.
type Mission int

const (
	// Sentinel1 is the C-band SAR constellation.
	Sentinel1 Mission = iota + 1
	// Sentinel2 is the MSI optical constellation.
	Sentinel2
	// Sentinel3 is the OLCI/SLSTR ocean-land constellation.
	Sentinel3
)

// String returns the mission name.
func (m Mission) String() string {
	switch m {
	case Sentinel1:
		return "Sentinel-1"
	case Sentinel2:
		return "Sentinel-2"
	case Sentinel3:
		return "Sentinel-3"
	default:
		return fmt.Sprintf("Mission(%d)", int(m))
	}
}

// Product is one archive entry: the catalogue-level metadata of a scene.
type Product struct {
	ID          string
	Mission     Mission
	Level       string // processing level, e.g. "L1C", "GRD"
	Footprint   geom.Rect
	SensingTime time.Time
	SizeBytes   int64
}

// Archive is the Sentinel product repository simulator: it stores product
// metadata with spatial and temporal indexes and accounts ingestion and
// dissemination volume, the quantities behind the paper's Volume and
// Velocity figures (5M+ products, 6 TB/day produced, 100 TB/day
// disseminated).
type Archive struct {
	mu       sync.RWMutex
	products map[string]Product
	order    []string // insertion order for iteration
	rtree    *geom.RTree
	ids      []string // rtree payload: index -> product ID
	dirty    bool

	bytesIngested     int64
	bytesDisseminated int64
	downloads         int64
}

// NewArchive returns an empty archive.
func NewArchive() *Archive {
	return &Archive{products: make(map[string]Product), rtree: geom.NewRTree()}
}

// Ingest adds a product; re-ingesting an existing ID is an error (the hub
// deduplicates by product identifier).
func (a *Archive) Ingest(p Product) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.products[p.ID]; dup {
		return fmt.Errorf("sentinel: duplicate product %s", p.ID)
	}
	a.products[p.ID] = p
	a.order = append(a.order, p.ID)
	a.bytesIngested += p.SizeBytes
	a.dirty = true
	return nil
}

// Len returns the product count.
func (a *Archive) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.products)
}

// BytesIngested returns cumulative ingested volume.
func (a *Archive) BytesIngested() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.bytesIngested
}

// BytesDisseminated returns cumulative downloaded volume.
func (a *Archive) BytesDisseminated() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.bytesDisseminated
}

// Downloads returns the download count.
func (a *Archive) Downloads() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.downloads
}

// Get returns a product by ID.
func (a *Archive) Get(id string) (Product, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	p, ok := a.products[id]
	return p, ok
}

// Download records a dissemination of the product and returns it.
func (a *Archive) Download(id string) (Product, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.products[id]
	if !ok {
		return Product{}, fmt.Errorf("sentinel: product %s not found", id)
	}
	a.bytesDisseminated += p.SizeBytes
	a.downloads++
	return p, nil
}

// rebuildLocked refreshes the spatial index.
func (a *Archive) rebuildLocked() {
	if !a.dirty {
		return
	}
	bounds := make([]geom.Rect, 0, len(a.order))
	data := make([]int64, 0, len(a.order))
	a.ids = a.ids[:0]
	for i, id := range a.order {
		p := a.products[id]
		bounds = append(bounds, p.Footprint)
		data = append(data, int64(i))
		a.ids = append(a.ids, id)
	}
	a.rtree = geom.NewRTree()
	a.rtree.BulkLoad(bounds, data)
	a.dirty = false
}

// Query returns products whose footprint intersects the window and whose
// sensing time falls in [from, to] (zero times disable the bound). This
// is the classic area+date catalogue search the paper's Challenge C4
// starts from.
func (a *Archive) Query(window geom.Rect, from, to time.Time) []Product {
	a.mu.Lock()
	a.rebuildLocked()
	a.mu.Unlock()

	a.mu.RLock()
	defer a.mu.RUnlock()
	var out []Product
	a.rtree.Search(window, func(_ geom.Rect, data int64) bool {
		p := a.products[a.ids[data]]
		if !from.IsZero() && p.SensingTime.Before(from) {
			return true
		}
		if !to.IsZero() && p.SensingTime.After(to) {
			return true
		}
		out = append(out, p)
		return true
	})
	return out
}

// All returns products in ingestion order (for pipeline iteration).
func (a *Archive) All() []Product {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]Product, 0, len(a.order))
	for _, id := range a.order {
		out = append(out, a.products[id])
	}
	return out
}

// GenerateProducts synthesizes n product metadata records spread over the
// extent and a one-year sensing window, with realistic size distribution
// (S1 GRD ~1 GB, S2 L1C ~600 MB, S3 ~400 MB).
func GenerateProducts(n int, seed int64, extent geom.Rect) []Product {
	rng := rand.New(rand.NewSource(seed))
	start := time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	out := make([]Product, n)
	for i := 0; i < n; i++ {
		var mission Mission
		var level string
		var size int64
		switch i % 3 {
		case 0:
			mission, level, size = Sentinel1, "GRD", 1_000_000_000
		case 1:
			mission, level, size = Sentinel2, "L1C", 600_000_000
		default:
			mission, level, size = Sentinel3, "L2", 400_000_000
		}
		// footprint: ~100km swath squares scattered over the extent
		w := extent.Width() * 0.05
		x := extent.Min.X + rng.Float64()*(extent.Width()-w)
		y := extent.Min.Y + rng.Float64()*(extent.Height()-w)
		out[i] = Product{
			ID:          fmt.Sprintf("%s_%s_%06d", mission, level, i),
			Mission:     mission,
			Level:       level,
			Footprint:   geom.NewRect(x, y, x+w, y+w),
			SensingTime: start.Add(time.Duration(rng.Int63n(int64(365 * 24 * time.Hour)))),
			SizeBytes:   size + rng.Int63n(size/4),
		}
	}
	return out
}
