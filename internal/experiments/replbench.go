package experiments

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"repro/internal/geostore"
	"repro/internal/rdf"
	"repro/internal/replication"
	"repro/internal/storage"
	"repro/internal/storage/vfs"
)

// This file implements the replication group behind
// `eebench -bench-group repl -bench-out BENCH_repl.json`: WAL shipping
// must not tax the primary's commit path (the feed reads the durable
// WAL asynchronously), and a replica must both catch up faster than
// the primary ingests and answer queries at parity once caught up.
// Three measurements pin that: synchronized ingest (primary committing
// while a live replica follows) against solo ingest, cold-start
// catch-up throughput over a pre-written WAL, and a full-store scan on
// each node.

// ReplBenchResult is one measured (workload, mode) cell.
type ReplBenchResult struct {
	Name    string `json:"name"` // workload name
	Mode    string `json:"mode"` // "direct", "replicated", "replica", "primary"
	Triples int    `json:"triples"`
	NsPerOp int64  `json:"ns_per_op"` // per triple
	// TriplesPerSec is the derived throughput.
	TriplesPerSec float64 `json:"triples_per_sec"`
	// OverheadPct is the replicated-vs-direct slowdown in percent
	// (replicated rows only).
	OverheadPct float64 `json:"overhead_pct,omitempty"`
}

// ReplBenchReport is the BENCH_repl.json schema.
type ReplBenchReport struct {
	Group     string            `json:"group"`
	Generated string            `json:"generated"`
	CPUs      int               `json:"cpus"`
	Results   []ReplBenchResult `json:"results"`
}

const replBenchToken = "eebench-repl"

// replBenchNode is one side of the benchmarked pair on a real temp
// directory (the bench measures production I/O, not the in-memory
// fault filesystem).
type replBenchNode struct {
	dir string
	db  *storage.DB
	st  *geostore.Store
}

func openReplBenchNode(dir string) (*replBenchNode, error) {
	db, err := storage.Open(dir, storage.Options{SyncEvery: 1, FS: vfs.OS})
	if err != nil {
		return nil, err
	}
	st := geostore.New(geostore.ModeIndexed)
	if _, err := db.Recover(st.RDF()); err != nil {
		if cerr := db.Close(); cerr != nil {
			return nil, fmt.Errorf("%w (and closing: %v)", err, cerr)
		}
		return nil, err
	}
	st.RDF().SetJournal(db.Log())
	return &replBenchNode{dir: dir, db: db, st: st}, nil
}

func (n *replBenchNode) close() {
	if err := n.db.Close(); err != nil {
		panic(err)
	}
}

// commitBatches ingests numBatches batches of batchSize triples each,
// one journal commit per batch — the primary's production write shape.
func (n *replBenchNode) commitBatches(numBatches, batchSize int) error {
	for k := 0; k < numBatches; k++ {
		for j := 0; j < batchSize; j++ {
			i := k*batchSize + j
			if err := n.st.Add(
				rdf.NewIRI(fmt.Sprintf("http://extremeearth.eu/feature/%d", i)),
				rdf.NewIRI("http://extremeearth.eu/ontology#value"),
				rdf.NewIntLiteral(int64(i))); err != nil {
				return err
			}
		}
		if err := n.st.RDF().CommitJournal(); err != nil {
			return err
		}
	}
	return nil
}

// replBenchFeed builds a feed at bench cadence: aggressive polling so
// the measured lag is shipping cost, not timer granularity.
func replBenchFeed(db *storage.DB) *replication.Feed {
	return replication.NewFeed(replication.FeedConfig{
		DB:             db,
		Token:          replBenchToken,
		PollInterval:   time.Millisecond,
		HeartbeatEvery: 5 * time.Millisecond,
	})
}

// waitReplConverged blocks until the replica has applied exactly want
// triples and reports itself caught up, or the deadline passes.
func waitReplConverged(rep *replication.Replica, st *geostore.Store, want int, deadline time.Duration) bool {
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		s := rep.Status()
		if s.Err == nil && s.Connected && s.LagBytes == 0 && st.RDF().Len() == want {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// ReplBench runs the replication group and returns a printable table
// plus the JSON report.
func ReplBench(cfg Config) (*Table, *ReplBenchReport) {
	numBatches := cfg.scale(1000, 100)
	batchSize := 8
	triples := numBatches * batchSize
	scanIters := cfg.scale(20, 5)

	t := &Table{
		ID:     "REPL",
		Title:  "WAL-shipping replication: ingest overhead, catch-up throughput, read parity",
		Header: []string{"workload", "mode", "triples", "wall_ms", "triples_per_sec", "overhead_pct"},
		Notes:  "replicated ingest waits for the replica to confirm zero lag; catchup streams a cold WAL into a bootstrapped replica",
	}
	rep := &ReplBenchReport{
		Group:     "repl",
		Generated: time.Now().UTC().Format(time.RFC3339),
		CPUs:      runtime.NumCPU(),
	}

	record := func(name, mode string, n int, dur time.Duration, base time.Duration) {
		overhead := 0.0
		cell := ""
		if base > 0 {
			overhead = (float64(dur)/float64(base) - 1) * 100
			cell = f2(overhead)
		}
		perSec := float64(n) / dur.Seconds()
		t.Rows = append(t.Rows, []string{name, mode, i0(n), ms(dur), f1(perSec), cell})
		rep.Results = append(rep.Results, ReplBenchResult{
			Name: name, Mode: mode, Triples: n,
			NsPerOp: dur.Nanoseconds() / int64(max(n, 1)), TriplesPerSec: perSec,
			OverheadPct: overhead,
		})
	}

	root, err := os.MkdirTemp("", "eebench-repl-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(root)

	// Solo ingest: the baseline commit path with no feed attached.
	solo, err := openReplBenchNode(root + "/solo")
	if err != nil {
		panic(err)
	}
	start := time.Now()
	if err := solo.commitBatches(numBatches, batchSize); err != nil {
		panic(err)
	}
	directDur := time.Since(start)
	soloStore := solo.st
	solo.close()
	record("ingest", "direct", triples, directDur, 0)

	// Replicated ingest: the same workload while a live replica follows
	// over a real socket; the clock stops when the replica confirms it
	// holds everything. The delta over direct is the full cost of
	// synchronous visibility on a replica, an upper bound on what the
	// async feed can ever add to the commit path itself.
	primary, err := openReplBenchNode(root + "/primary")
	if err != nil {
		panic(err)
	}
	defer primary.close()
	if _, err := primary.db.BumpEpoch(); err != nil {
		panic(err)
	}
	feed := replBenchFeed(primary.db)
	defer feed.Close()
	srv := httptest.NewServer(feed)
	defer srv.Close()

	rdir := root + "/replica"
	if _, err := replication.Bootstrap(srv.Client(), srv.URL, replBenchToken, vfs.OS, rdir); err != nil {
		panic(err)
	}
	replicaNode, err := openReplBenchNode(rdir)
	if err != nil {
		panic(err)
	}
	defer replicaNode.close()
	follower, err := replication.NewReplica(replication.ReplicaConfig{
		PrimaryURL: srv.URL,
		Token:      replBenchToken,
		Store:      replicaNode.st,
		DB:         replicaNode.db,
	})
	if err != nil {
		panic(err)
	}
	go follower.Run()
	defer follower.Stop()

	start = time.Now()
	if err := primary.commitBatches(numBatches, batchSize); err != nil {
		panic(err)
	}
	if !waitReplConverged(follower, replicaNode.st, triples, 2*time.Minute) {
		panic(fmt.Sprintf("replica never converged: %+v", follower.Status()))
	}
	record("ingest", "replicated", triples, time.Since(start), directDur)

	// Cold catch-up: a second, freshly bootstrapped replica streams the
	// primary's whole WAL from its start cursor — the failover-rebuild
	// rate an operator waits on.
	cdir := root + "/catchup"
	if _, err := replication.Bootstrap(srv.Client(), srv.URL, replBenchToken, vfs.OS, cdir); err != nil {
		panic(err)
	}
	catchNode, err := openReplBenchNode(cdir)
	if err != nil {
		panic(err)
	}
	defer catchNode.close()
	catcher, err := replication.NewReplica(replication.ReplicaConfig{
		PrimaryURL: srv.URL,
		Token:      replBenchToken,
		Store:      catchNode.st,
		DB:         catchNode.db,
	})
	if err != nil {
		panic(err)
	}
	start = time.Now()
	go catcher.Run()
	defer catcher.Stop()
	if !waitReplConverged(catcher, catchNode.st, triples, 2*time.Minute) {
		panic(fmt.Sprintf("catch-up replica never converged: %+v", catcher.Status()))
	}
	record("catchup", "replica", triples, time.Since(start), 0)

	// Read parity: a full-store scan on the primary and on the caught-up
	// replica — the replica serves from the same in-memory structures,
	// so anything beyond noise here would mean the apply path built a
	// degraded store.
	scan := func(st *geostore.Store) time.Duration {
		best := time.Duration(0)
		for i := 0; i < scanIters; i++ {
			s := time.Now()
			n := 0
			for range st.RDF().Triples() {
				n++
			}
			d := time.Since(s)
			if n != triples {
				panic(fmt.Sprintf("scan saw %d triples, want %d", n, triples))
			}
			if i == 0 || d < best {
				best = d
			}
		}
		return best
	}
	primaryScan := scan(soloStore)
	record("scan", "primary", triples, primaryScan, 0)
	record("scan", "replica", triples, scan(replicaNode.st), primaryScan)

	return t, rep
}

// WriteReplBenchJSON writes the report to path (the conventional name
// is BENCH_repl.json).
func WriteReplBenchJSON(path string, rep *ReplBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
