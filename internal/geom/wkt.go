package geom

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseWKT parses a Well-Known Text geometry. Supported types: POINT,
// LINESTRING, POLYGON, MULTIPOLYGON and the Strabon-style ENVELOPE
// extension ENVELOPE(minX, maxX, maxY, minY).
func ParseWKT(s string) (Geometry, error) {
	p := &wktParser{in: s}
	g, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("geom: parsing WKT %q: %w", truncate(s, 60), err)
	}
	return g, nil
}

// MustParseWKT is ParseWKT that panics on error; for tests and literals.
func MustParseWKT(s string) Geometry {
	g, err := ParseWKT(s)
	if err != nil {
		panic(err)
	}
	return g
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

type wktParser struct {
	in  string
	pos int
}

func (p *wktParser) parse() (Geometry, error) {
	kw := strings.ToUpper(p.ident())
	switch kw {
	case "POINT":
		pts, err := p.coordList()
		if err != nil {
			return nil, err
		}
		if len(pts) != 1 {
			return nil, fmt.Errorf("POINT needs exactly 1 coordinate, got %d", len(pts))
		}
		return pts[0], p.expectEnd()
	case "LINESTRING":
		pts, err := p.coordList()
		if err != nil {
			return nil, err
		}
		if len(pts) < 2 {
			return nil, fmt.Errorf("LINESTRING needs >=2 coordinates, got %d", len(pts))
		}
		return LineString{Points: pts}, p.expectEnd()
	case "POLYGON":
		poly, err := p.polygonBody()
		if err != nil {
			return nil, err
		}
		return poly, p.expectEnd()
	case "MULTIPOLYGON":
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var mp MultiPolygon
		for {
			poly, err := p.polygonBody()
			if err != nil {
				return nil, err
			}
			mp.Polygons = append(mp.Polygons, poly)
			if !p.accept(',') {
				break
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return mp, p.expectEnd()
	case "ENVELOPE":
		// ENVELOPE (minX, maxX, maxY, minY) — the OGC/Spatial4J convention
		// used by Strabon and GeoSPARQL tooling.
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var v [4]float64
		for i := 0; i < 4; i++ {
			f, err := p.number()
			if err != nil {
				return nil, err
			}
			v[i] = f
			if i < 3 {
				if err := p.expect(','); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return NewRect(v[0], v[3], v[1], v[2]), p.expectEnd()
	default:
		return nil, fmt.Errorf("unsupported WKT type %q", kw)
	}
}

// polygonBody parses "((ring), (ring)...)" returning a Polygon whose first
// ring is the shell and the rest are holes.
func (p *wktParser) polygonBody() (Polygon, error) {
	if err := p.expect('('); err != nil {
		return Polygon{}, err
	}
	var poly Polygon
	first := true
	for {
		pts, err := p.coordList()
		if err != nil {
			return Polygon{}, err
		}
		ring := closeRing(pts)
		if len(ring) < 3 {
			return Polygon{}, fmt.Errorf("polygon ring needs >=3 distinct points, got %d", len(ring))
		}
		if first {
			poly.Shell = ring
			first = false
		} else {
			poly.Holes = append(poly.Holes, ring)
		}
		if !p.accept(',') {
			break
		}
	}
	if err := p.expect(')'); err != nil {
		return Polygon{}, err
	}
	return poly, nil
}

// closeRing removes a duplicated closing point (WKT rings repeat the first
// point at the end; our Ring representation keeps it implicit).
func closeRing(pts []Point) Ring {
	if len(pts) > 1 && pts[0] == pts[len(pts)-1] {
		pts = pts[:len(pts)-1]
	}
	return Ring(pts)
}

// coordList parses "(x y, x y, ...)".
func (p *wktParser) coordList() ([]Point, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var pts []Point
	for {
		x, err := p.number()
		if err != nil {
			return nil, err
		}
		y, err := p.number()
		if err != nil {
			return nil, err
		}
		pts = append(pts, Point{x, y})
		if !p.accept(',') {
			break
		}
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return pts, nil
}

func (p *wktParser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n' || p.in[p.pos] == '\r') {
		p.pos++
	}
}

func (p *wktParser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			p.pos++
		} else {
			break
		}
	}
	return p.in[start:p.pos]
}

func (p *wktParser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			p.pos++
		} else {
			break
		}
	}
	if start == p.pos {
		return 0, fmt.Errorf("expected number at offset %d", p.pos)
	}
	f, err := strconv.ParseFloat(p.in[start:p.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q at offset %d", p.in[start:p.pos], start)
	}
	return f, nil
}

func (p *wktParser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.in) || p.in[p.pos] != c {
		return fmt.Errorf("expected %q at offset %d", string(c), p.pos)
	}
	p.pos++
	return nil
}

func (p *wktParser) accept(c byte) bool {
	p.skipSpace()
	if p.pos < len(p.in) && p.in[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *wktParser) expectEnd() error {
	p.skipSpace()
	if p.pos != len(p.in) {
		return fmt.Errorf("trailing input at offset %d", p.pos)
	}
	return nil
}
