// Package promet implements a hydro-agroecological land-surface model in
// the role of PROMET (Hank, Bach & Mauser 2015 [10]) for the Food
// Security application (A1): a daily FAO-56-style soil-water balance with
// crop-specific evapotranspiration, run per 10 m cell of a watershed to
// produce high-resolution water-availability and irrigation-need maps.
//
// Substitution note (DESIGN.md): PROMET proper is a closed-source coupled
// model; this implementation keeps the ingredients the paper's claim
// depends on — crop-type-specific parameters at 10 m change the water
// balance, so a DL-derived crop map yields more accurate per-field water
// availability than a crop-agnostic baseline (experiment E12).
package promet

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/raster"
	"repro/internal/sentinel"
)

// CropParams are the water-balance-relevant properties of a crop type.
type CropParams struct {
	// KcMid is the mid-season crop coefficient (scales reference ET).
	KcMid float64
	// RootDepthM is the effective rooting depth in metres.
	RootDepthM float64
	// DepletionFrac is the allowed soil-water depletion before stress.
	DepletionFrac float64
}

// DefaultCropParams maps the land-cover classes used in A1 to FAO-56
// style parameters.
func DefaultCropParams() map[uint8]CropParams {
	return map[uint8]CropParams{
		sentinel.ClassAnnualCrop:    {KcMid: 1.15, RootDepthM: 0.9, DepletionFrac: 0.55},
		sentinel.ClassPermanentCrop: {KcMid: 0.95, RootDepthM: 1.5, DepletionFrac: 0.5},
		sentinel.ClassPasture:       {KcMid: 0.85, RootDepthM: 0.6, DepletionFrac: 0.6},
		sentinel.ClassForest:        {KcMid: 1.0, RootDepthM: 2.0, DepletionFrac: 0.7},
		sentinel.ClassHerbVegetation: {
			KcMid: 0.9, RootDepthM: 0.7, DepletionFrac: 0.6,
		},
	}
}

// UniformCrop returns the crop-agnostic baseline parameterization (the
// pre-ExtremeEarth situation where crop type is unknown at field scale).
func UniformCrop() CropParams {
	return CropParams{KcMid: 1.0, RootDepthM: 1.0, DepletionFrac: 0.55}
}

// Weather is a daily series of precipitation and reference
// evapotranspiration (mm/day).
type Weather struct {
	PrecipMM []float64
	ET0MM    []float64
}

// Days returns the series length.
func (w Weather) Days() int { return len(w.PrecipMM) }

// GenerateWeather synthesizes one growing season: sinusoidal ET0 peaking
// mid-season and stochastic precipitation events.
func GenerateWeather(days int, seed int64) Weather {
	rng := rand.New(rand.NewSource(seed))
	w := Weather{PrecipMM: make([]float64, days), ET0MM: make([]float64, days)}
	for d := 0; d < days; d++ {
		season := math.Sin(math.Pi * float64(d) / float64(days)) // 0..1..0
		w.ET0MM[d] = 2 + 4*season + rng.Float64()
		if rng.Float64() < 0.25 { // rain day
			w.PrecipMM[d] = rng.ExpFloat64() * 6
		}
	}
	return w
}

// Config configures a model run.
type Config struct {
	// AWCPerMetre is the available water capacity of the soil per metre
	// of root depth (mm/m); typical loam ~140.
	AWCPerMetre float64
	// Params maps crop class to parameters; classes not present fall
	// back to Uniform.
	Params map[uint8]CropParams
	// Uniform is the fallback parameterization.
	Uniform CropParams
}

// DefaultConfig returns a loam-soil configuration with the default crop
// table.
func DefaultConfig() Config {
	return Config{AWCPerMetre: 140, Params: DefaultCropParams(), Uniform: UniformCrop()}
}

// Result holds the output maps of a run, on the crop map's grid.
type Result struct {
	// AvailableWater is the season-mean plant-available soil water (mm).
	AvailableWater raster.Band
	// IrrigationNeed is the cumulative irrigation requirement (mm).
	IrrigationNeed raster.Band
	Grid           raster.Grid
}

// Run executes the daily water balance per cell of the crop map.
//
// Per cell: total available water TAW = AWC * root depth; daily balance
// D(t+1) = clamp(D(t) + Kc*ET0 - P, 0, TAW) with D the root-zone
// depletion; when depletion exceeds the allowed fraction, the deficit
// counts as irrigation need (and is assumed supplied, as in irrigation
// scheduling mode). Season-mean available water = TAW - mean depletion.
func Run(cropMap *raster.ClassMap, weather Weather, cfg Config) (*Result, error) {
	if weather.Days() == 0 {
		return nil, fmt.Errorf("promet: empty weather series")
	}
	if cfg.AWCPerMetre <= 0 {
		return nil, fmt.Errorf("promet: AWCPerMetre must be positive")
	}
	n := cropMap.Grid.NumCells()
	res := &Result{
		AvailableWater: raster.Band{Name: "available_water_mm", Data: make([]float32, n)},
		IrrigationNeed: raster.Band{Name: "irrigation_need_mm", Data: make([]float32, n)},
		Grid:           cropMap.Grid,
	}
	days := weather.Days()
	for i := 0; i < n; i++ {
		p, ok := cfg.Params[cropMap.Classes[i]]
		if !ok {
			p = cfg.Uniform
		}
		taw := cfg.AWCPerMetre * p.RootDepthM
		allowed := taw * p.DepletionFrac
		depletion := taw * 0.3 // initial moderate dryness
		var sumAvailable, irrigation float64
		for d := 0; d < days; d++ {
			et := p.KcMid * weather.ET0MM[d]
			depletion += et - weather.PrecipMM[d]
			if depletion < 0 {
				depletion = 0 // excess drains
			}
			if depletion > allowed {
				// Irrigate back to the allowed threshold.
				irrigation += depletion - allowed
				depletion = allowed
			}
			sumAvailable += taw - depletion
		}
		res.AvailableWater.Data[i] = float32(sumAvailable / float64(days))
		res.IrrigationNeed.Data[i] = float32(irrigation)
	}
	return res, nil
}

// FieldError summarizes per-field water-availability error between a
// model run and the reference run (E12's accuracy metric): fields are the
// connected regions of the true crop map.
type FieldError struct {
	Fields  int
	MeanAbs float64
	MaxAbs  float64
}

// CompareByField computes, for each crop class region in truthMap, the
// absolute difference of mean available water between got and want,
// aggregated over fields. Both results must share the truth grid.
func CompareByField(truthMap *raster.ClassMap, got, want *Result) FieldError {
	type acc struct {
		sumG, sumW float64
		n          int
	}
	// Approximate "fields" as class-uniform patches via a coarse tiling:
	// each 16x16 tile with a dominant class is one field.
	const tile = 16
	var fe FieldError
	w, h := truthMap.Grid.Width, truthMap.Grid.Height
	for ty := 0; ty < h; ty += tile {
		for tx := 0; tx < w; tx += tile {
			var a acc
			counts := map[uint8]int{}
			for dy := 0; dy < tile && ty+dy < h; dy++ {
				for dx := 0; dx < tile && tx+dx < w; dx++ {
					idx := (ty+dy)*w + tx + dx
					counts[truthMap.Classes[idx]]++
					a.sumG += float64(got.AvailableWater.Data[idx])
					a.sumW += float64(want.AvailableWater.Data[idx])
					a.n++
				}
			}
			// require a dominant class (a coherent field)
			dom := 0
			for _, c := range counts {
				if c > dom {
					dom = c
				}
			}
			if a.n == 0 || float64(dom) < 0.8*float64(a.n) {
				continue
			}
			diff := math.Abs(a.sumG/float64(a.n) - a.sumW/float64(a.n))
			fe.Fields++
			fe.MeanAbs += diff
			if diff > fe.MaxAbs {
				fe.MaxAbs = diff
			}
		}
	}
	if fe.Fields > 0 {
		fe.MeanAbs /= float64(fe.Fields)
	}
	return fe
}
