// Package federate implements the federation engine of Challenge C3: the
// Semagrow system extended to manage federations of big geospatial data
// sources and answer geospatial analytical queries across them.
//
// A Federation holds endpoints (each a geospatial RDF store wrapped with
// source metadata and a simulated network profile). Query answering has
// the classic three phases:
//
//  1. Source selection — prune endpoints whose predicate vocabulary
//     cannot satisfy the query or whose spatial extent is disjoint from
//     the query's spatial filters (the E9 ablation toggles this off).
//  2. Parallel sub-query execution against surviving endpoints.
//  3. Merge with global ORDER BY / LIMIT.
//
// Data is horizontally partitioned (every feature lives wholly in one
// source), so merging is union, as in the paper's TEP-federation scenario
// (Challenge A1: the Food Security and Polar platforms are federated,
// each holding its own thematic layers).
package federate

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/geostore"
	"repro/internal/sparql"
)

// SourceMeta describes an endpoint's content for source selection.
type SourceMeta struct {
	// Extent is the spatial bounding box of all geometries at the source.
	Extent geom.Rect
	// Predicates is the set of predicate IRIs present.
	Predicates map[string]bool
	// TripleCount is the source size (used for cost ranking in logs).
	TripleCount int
}

// Endpoint is a queryable federation member.
type Endpoint interface {
	// Name identifies the endpoint in plans and logs.
	Name() string
	// Metadata returns the source description used for selection.
	Metadata() SourceMeta
	// Query evaluates the query at the source.
	Query(q *sparql.Query) (*sparql.Results, error)
}

// StoreEndpoint wraps a geostore.Store as an endpoint with a simulated
// per-request network latency (the DIAS/TEP links of the paper).
type StoreEndpoint struct {
	name    string
	store   *geostore.Store
	latency time.Duration
}

// NewStoreEndpoint wraps store; latency is added to every Query call.
func NewStoreEndpoint(name string, store *geostore.Store, latency time.Duration) *StoreEndpoint {
	return &StoreEndpoint{name: name, store: store, latency: latency}
}

// Name implements Endpoint.
func (e *StoreEndpoint) Name() string { return e.name }

// Store exposes the wrapped store (for loading).
func (e *StoreEndpoint) Store() *geostore.Store { return e.store }

// Metadata implements Endpoint by scanning the store's triples once.
func (e *StoreEndpoint) Metadata() SourceMeta {
	meta := SourceMeta{Predicates: make(map[string]bool)}
	first := true
	for _, t := range e.store.RDF().Triples() {
		meta.TripleCount++
		meta.Predicates[t.P.Value] = true
		if t.O.IsGeometry() {
			g, err := geom.ParseWKT(t.O.Value)
			if err != nil {
				continue
			}
			if first {
				meta.Extent = g.Bounds()
				first = false
			} else {
				meta.Extent = meta.Extent.Union(g.Bounds())
			}
		}
	}
	return meta
}

// Query implements Endpoint.
func (e *StoreEndpoint) Query(q *sparql.Query) (*sparql.Results, error) {
	if e.latency > 0 {
		time.Sleep(e.latency)
	}
	return e.store.Query(q)
}

// member caches an endpoint with its metadata.
type member struct {
	ep   Endpoint
	meta SourceMeta
}

// Federation is a set of endpoints queried as one virtual store.
type Federation struct {
	mu      sync.RWMutex
	members []member
}

// New returns an empty federation.
func New() *Federation { return &Federation{} }

// Register adds an endpoint, snapshotting its metadata. Register after
// loading the endpoint's data (metadata is not refreshed).
func (f *Federation) Register(ep Endpoint) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.members = append(f.members, member{ep: ep, meta: ep.Metadata()})
}

// Size returns the number of registered endpoints.
func (f *Federation) Size() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.members)
}

// Options tunes query execution.
type Options struct {
	// DisableSourceSelection sends every sub-query to every endpoint (the
	// E9 baseline).
	DisableSourceSelection bool
}

// Stats reports how a federated query executed.
type Stats struct {
	// Candidates is the number of registered endpoints.
	Candidates int
	// Queried is how many endpoints received the sub-query.
	Queried int
	// PrunedByPredicate and PrunedBySpace count selection decisions.
	PrunedByPredicate int
	PrunedBySpace     int
}

// QueryString parses and runs a federated query with default options.
func (f *Federation) QueryString(qs string) (*sparql.Results, Stats, error) {
	q, err := sparql.Parse(qs)
	if err != nil {
		return nil, Stats{}, err
	}
	return f.Query(q, Options{})
}

// Query runs the query across the federation.
func (f *Federation) Query(q *sparql.Query, opts Options) (*sparql.Results, Stats, error) {
	f.mu.RLock()
	members := append([]member(nil), f.members...)
	f.mu.RUnlock()

	stats := Stats{Candidates: len(members)}
	selected := make([]member, 0, len(members))
	if opts.DisableSourceSelection {
		selected = members
	} else {
		preds := constantPredicates(q)
		spatial := sparql.ExtractSpatialFilters(q)
		for _, m := range members {
			if !hasAllPredicates(m.meta, preds) {
				stats.PrunedByPredicate++
				continue
			}
			if pruneBySpace(m.meta, spatial) {
				stats.PrunedBySpace++
				continue
			}
			selected = append(selected, m)
		}
	}
	stats.Queried = len(selected)

	type subResult struct {
		res *sparql.Results
		err error
	}
	results := make([]subResult, len(selected))
	var wg sync.WaitGroup
	for i, m := range selected {
		wg.Add(1)
		go func(i int, m member) {
			defer wg.Done()
			local := *q
			local.Limit = 0 // global modifiers applied at the mediator
			r, err := m.ep.Query(&local)
			if err != nil {
				err = fmt.Errorf("federate: endpoint %s: %w", m.ep.Name(), err)
			}
			results[i] = subResult{r, err}
		}(i, m)
	}
	wg.Wait()

	merged := &sparql.Results{Vars: q.Vars}
	for _, sr := range results {
		if sr.err != nil {
			return nil, stats, sr.err
		}
		if len(merged.Vars) == 0 {
			merged.Vars = sr.res.Vars
		}
		merged.Rows = append(merged.Rows, sr.res.Rows...)
	}
	if q.OrderBy != "" {
		by, desc := q.OrderBy, q.OrderDesc
		sort.SliceStable(merged.Rows, func(i, j int) bool {
			a, b := merged.Rows[i][by], merged.Rows[j][by]
			fa, errA := a.Float()
			fb, errB := b.Float()
			if errA == nil && errB == nil {
				if desc {
					return fa > fb
				}
				return fa < fb
			}
			if desc {
				return a.Value > b.Value
			}
			return a.Value < b.Value
		})
	}
	if q.Limit > 0 && len(merged.Rows) > q.Limit {
		merged.Rows = merged.Rows[:q.Limit]
	}
	return merged, stats, nil
}

// constantPredicates collects the concrete predicate IRIs of the query's
// patterns; a source lacking any of them cannot contribute complete BGP
// solutions under horizontal partitioning.
func constantPredicates(q *sparql.Query) []string {
	var out []string
	for _, p := range q.Patterns {
		if !p.P.IsVar() {
			out = append(out, p.P.Term.Value)
		}
	}
	return out
}

func hasAllPredicates(meta SourceMeta, preds []string) bool {
	for _, p := range preds {
		if !meta.Predicates[p] {
			return false
		}
	}
	return true
}

// pruneBySpace reports whether every spatial filter window is disjoint
// from the source extent (then the source cannot contribute).
func pruneBySpace(meta SourceMeta, spatial []sparql.SpatialFilter) bool {
	if len(spatial) == 0 {
		return false
	}
	for _, sf := range spatial {
		// A filter that must intersect/within the window needs extent
		// overlap; sfContains(?g, const) also implies overlap.
		if meta.Extent.Intersects(sf.Window) {
			return false
		}
	}
	return true
}
