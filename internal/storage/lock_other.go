//go:build !unix

package storage

import "os"

// flockExclusive is a no-op on platforms without flock; the LOCK file
// still exists as documentation but offers no mutual exclusion there.
func flockExclusive(*os.File) error { return nil }
