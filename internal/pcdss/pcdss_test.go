package pcdss

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geom"
	"repro/internal/raster"
	"repro/internal/sentinel"
)

func testChart(t *testing.T, w, h int, seed int64) *raster.ClassMap {
	t.Helper()
	grid := raster.NewGrid(geom.Point{}, 1000, w, h)
	return sentinel.GenerateIceChart(grid, 5, seed)
}

func TestRawRoundTrip(t *testing.T) {
	cm := testChart(t, 64, 48, 1)
	data := EncodeRaw(cm)
	if len(data) != 8+64*48 {
		t.Fatalf("raw size = %d", len(data))
	}
	got, err := DecodeRaw(data, cm.Grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cm.Classes {
		if got.Classes[i] != cm.Classes[i] {
			t.Fatal("raw round trip mismatch")
		}
	}
}

func TestRLERoundTrip(t *testing.T) {
	cm := testChart(t, 64, 64, 2)
	data := EncodeRLE(cm)
	got, err := DecodeRLE(data, cm.Grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cm.Classes {
		if got.Classes[i] != cm.Classes[i] {
			t.Fatal("RLE round trip mismatch")
		}
	}
	if len(data) >= len(EncodeRaw(cm)) {
		t.Errorf("RLE (%d) did not compress vs raw (%d)", len(data), len(EncodeRaw(cm)))
	}
}

func TestQuadtreeRoundTrip(t *testing.T) {
	for _, dims := range [][2]int{{64, 64}, {50, 30}, {33, 65}, {1, 1}} {
		cm := testChart(t, dims[0], dims[1], 3)
		data := EncodeQuadtree(cm)
		got, err := DecodeQuadtree(data, cm.Grid)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		for i := range cm.Classes {
			if got.Classes[i] != cm.Classes[i] {
				t.Fatalf("%v: quadtree round trip mismatch at %d", dims, i)
			}
		}
	}
}

func TestQuadtreeCompressesUniformChart(t *testing.T) {
	grid := raster.NewGrid(geom.Point{}, 1000, 128, 128)
	cm := raster.NewClassMap(grid) // all open water
	data := EncodeQuadtree(cm)
	if len(data) > 16 {
		t.Errorf("uniform chart quadtree = %d bytes", len(data))
	}
	rle := EncodeRLE(cm)
	if len(rle) > 16 {
		t.Errorf("uniform chart RLE = %d bytes", len(rle))
	}
}

func TestDecodeErrors(t *testing.T) {
	cm := testChart(t, 16, 16, 4)
	grid := cm.Grid
	if _, err := DecodeRaw([]byte{1, 2}, grid); err == nil {
		t.Error("short raw accepted")
	}
	if _, err := DecodeRLE([]byte{1, 2}, grid); err == nil {
		t.Error("short RLE accepted")
	}
	if _, err := DecodeQuadtree([]byte{1, 2}, grid); err == nil {
		t.Error("short quadtree accepted")
	}
	// Shape mismatch.
	other := raster.NewGrid(geom.Point{}, 1000, 8, 8)
	if _, err := DecodeRaw(EncodeRaw(cm), other); err == nil {
		t.Error("shape mismatch accepted")
	}
	// Truncated quadtree payload.
	qt := EncodeQuadtree(cm)
	if _, err := DecodeQuadtree(qt[:len(qt)-2], grid); err == nil {
		t.Error("truncated quadtree accepted")
	}
	// Bad marker.
	bad := append([]byte(nil), qt...)
	bad[8] = 0x01
	if _, err := DecodeQuadtree(bad, grid); err == nil {
		t.Error("bad marker accepted")
	}
}

func TestLinkTransferTime(t *testing.T) {
	iridium := Link{BitsPerSecond: 64_000, RTT: 500 * time.Millisecond}
	// 64 kbit payload = 8000 bytes -> 1s + RTT
	got := iridium.TransferTime(8000)
	want := 1500 * time.Millisecond
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
	if (Link{}).TransferTime(1000) != 0 {
		t.Error("zero-bandwidth link should return just RTT")
	}
}

func TestCompressionShortenDelivery(t *testing.T) {
	cm := testChart(t, 128, 128, 5)
	link := Link{BitsPerSecond: 64_000, RTT: time.Second}
	raw := link.TransferTime(len(EncodeRaw(cm)))
	rle := link.TransferTime(len(EncodeRLE(cm)))
	if rle >= raw {
		t.Errorf("RLE delivery (%v) not faster than raw (%v)", rle, raw)
	}
}

func TestSchedulePrioritization(t *testing.T) {
	link := Link{BitsPerSecond: 64_000}
	products := []ProductPriority{
		{Name: "old-big", AgeHours: 24, SizeBytes: 100_000},
		{Name: "critical", SafetyCritical: true, AgeHours: 48, SizeBytes: 50_000},
		{Name: "fresh-small", AgeHours: 1, SizeBytes: 10_000},
	}
	deliveries := Schedule(link, products)
	if deliveries[0].Product.Name != "critical" {
		t.Fatalf("first delivery = %s", deliveries[0].Product.Name)
	}
	if deliveries[1].Product.Name != "fresh-small" {
		t.Fatalf("second delivery = %s", deliveries[1].Product.Name)
	}
	// Cumulative times increase.
	for i := 1; i < len(deliveries); i++ {
		if deliveries[i].CompletesAfter <= deliveries[i-1].CompletesAfter {
			t.Fatal("delivery times not cumulative")
		}
	}
}

func TestScheduleDoesNotMutateInput(t *testing.T) {
	link := Link{BitsPerSecond: 1000}
	products := []ProductPriority{
		{Name: "b", AgeHours: 2, SizeBytes: 10},
		{Name: "a", AgeHours: 1, SizeBytes: 10},
	}
	Schedule(link, products)
	if products[0].Name != "b" {
		t.Error("Schedule mutated its input")
	}
}

func TestCodecsQuickProperty(t *testing.T) {
	// Property: all three codecs round-trip arbitrary class maps exactly.
	f := func(seed int64, wRaw, hRaw uint8) bool {
		w := int(wRaw%60) + 1
		h := int(hRaw%60) + 1
		grid := raster.NewGrid(geom.Point{}, 100, w, h)
		cm := raster.NewClassMap(grid)
		rng := rand.New(rand.NewSource(seed))
		for i := range cm.Classes {
			cm.Classes[i] = uint8(rng.Intn(int(sentinel.NumIceClasses)))
		}
		r1, err1 := DecodeRaw(EncodeRaw(cm), grid)
		r2, err2 := DecodeRLE(EncodeRLE(cm), grid)
		r3, err3 := DecodeQuadtree(EncodeQuadtree(cm), grid)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range cm.Classes {
			if r1.Classes[i] != cm.Classes[i] ||
				r2.Classes[i] != cm.Classes[i] ||
				r3.Classes[i] != cm.Classes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
