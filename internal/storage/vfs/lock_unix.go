//go:build unix

package vfs

import "syscall"

// Lock takes a non-blocking exclusive advisory flock on the file. The
// kernel releases it automatically when the holding process exits, so a
// crash never leaves a stale lock behind.
func (f *osFile) Lock() error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}
