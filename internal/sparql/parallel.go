package sparql

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/rdf"
)

// This file implements parallel-aware result sinks over the
// morsel-driven executor (rdf.BGPPlan.RunParallel). The contract is
// strict determinism: every query's parallel output is byte-identical
// to the sequential executor's at any degree. The sinks get there by
// buffering per morsel and reducing in morsel index order — which is
// exactly the sequential stream order — so DISTINCT keeps the same
// first occurrences, LIMIT/OFFSET cut the same prefix, ORDER BY breaks
// ties in the same arrival order, and aggregate groups form in the same
// first-seen order.

// ErrCanceled is returned by the parallel execution paths when the
// caller's Cancel hook (typically a per-query timeout) stopped the run.
var ErrCanceled = errors.New("sparql: query canceled")

// ParallelExec configures one parallel execution of a compiled plan.
type ParallelExec struct {
	// Degree is the requested worker count; values < 2 still run the
	// morsel machinery with a single worker (useful for testing and the
	// degree-1 baseline), callers wanting the plain sequential path use
	// Execute/ExecuteSeeded instead.
	Degree int
	// Cancel, when non-nil, is polled at morsel dispatch (and
	// periodically inside exploding morsels); returning true stops all
	// workers promptly and fails the query with ErrCanceled.
	Cancel func() bool
	// Gate bounds executor goroutines server-wide (see rdf.WorkerGate).
	Gate rdf.WorkerGate
	// Morsels, when non-nil, counts dispatched morsels (the
	// sparql_exec_morsels_total counter).
	Morsels *atomic.Uint64
	// ScanMorsel and SeedMorsel override morsel sizes (0 = defaults);
	// tests shrink them to force many morsels on small data.
	ScanMorsel, SeedMorsel int
	// Stats, when non-nil, collects the run's executor profile (per-step
	// counters, morsels, per-worker utilization); see ExecuteParallelAnalyzed
	// for the high-level entry point.
	Stats *rdf.ParallelRunStats
}

func (px ParallelExec) runOpts() rdf.ParallelOpts {
	return rdf.ParallelOpts{
		Workers:    px.Degree,
		Cancel:     px.Cancel,
		Gate:       px.Gate,
		Morsels:    px.Morsels,
		ScanMorsel: px.ScanMorsel,
		SeedMorsel: px.SeedMorsel,
		Stats:      px.Stats,
	}
}

// ExecuteParallel evaluates the plan from the single empty row with
// morsel-driven parallelism.
func (p *Plan) ExecuteParallel(px ParallelExec) (*Results, error) {
	return p.ExecuteParallelSeeded(nil, px)
}

// ExecuteParallelSeeded is ExecuteSeeded on the parallel executor:
// the seed stream (or the first step's index range) is split into
// morsels run by a worker pool, and parallel-aware sinks reduce
// per-worker results into output byte-identical to the sequential
// executor's.
func (p *Plan) ExecuteParallelSeeded(seeds []rdf.Row, px ParallelExec) (*Results, error) {
	if p.aggregate {
		return p.executeAggregatesParallel(seeds, px)
	}
	q := p.q
	sink := &parSelect{
		p:        p,
		needSort: p.orderSlot >= 0 && q.OrderBy != "",
		distinct: q.Distinct,
	}
	if !sink.needSort && q.Limit > 0 {
		sink.needed = q.Offset + q.Limit
	}
	if p.bgp.RunParallel(p.st, seeds, px.runOpts(), sink) {
		return nil, ErrCanceled
	}
	return sink.finalize()
}

// EvalParallel evaluates q against st with the parallel executor at the
// given degree; it is Eval's parallel twin and must agree with it
// byte-for-byte (see diff_test.go).
func EvalParallel(st *rdf.Store, q *Query, degree int) (*Results, error) {
	p, err := CompilePlan(st, q, PlanOpts{Parallel: degree})
	if err != nil {
		return nil, err
	}
	return p.ExecuteParallel(ParallelExec{Degree: degree})
}

// projKey encodes the projected slot tuple of a row into buf (the
// DISTINCT deduplication key, same encoding as the sequential path).
func (p *Plan) projKey(buf []byte, row rdf.Row) []byte {
	buf = buf[:0]
	for _, sl := range p.projSlots {
		var id rdf.ID
		if sl >= 0 {
			id = row[sl]
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
	}
	return buf
}

// --- SELECT sink ---

// morselBuf holds one morsel's surviving rows (and their precomputed
// ORDER BY keys). Each buf is written by exactly one worker.
type morselBuf struct {
	rows []rdf.Row
	keys []sortKey
}

// selWorker is the per-worker emit state: a private arena and a local
// DISTINCT shard. The local shard only ever discards a row whose key
// already appeared in an earlier morsel of the same worker — never a
// global first occurrence — so it is a pure volume reducer; exact
// deduplication happens at commit time in morsel order.
type selWorker struct {
	arena  *rdf.RowArena
	seen   map[string]bool
	keyBuf []byte
}

// parSelect reduces parallel SELECT output deterministically: sharded
// per-worker DISTINCT sets, per-morsel buffers committed in morsel
// index order, an atomic row budget that cancels remaining morsels once
// the LIMIT/OFFSET prefix is fully committed, and per-morsel sorted
// runs k-way merged for ORDER BY.
type parSelect struct {
	p        *Plan
	needSort bool
	distinct bool
	needed   int // offset+limit prefix target; 0 = unbounded

	stopped atomic.Bool

	mu       sync.Mutex
	bufs     []morselBuf
	done     []bool
	prefix   int       // next morsel index to commit
	ordered  []rdf.Row // committed stream (unsorted path)
	dedup    map[string]bool
	dedupBuf []byte

	workers []selWorker
}

func (s *parSelect) Begin(morsels, workers int) {
	s.bufs = make([]morselBuf, morsels)
	s.done = make([]bool, morsels)
	s.workers = make([]selWorker, workers)
	for w := range s.workers {
		s.workers[w].arena = rdf.NewRowArena(s.p.width)
		if s.distinct {
			s.workers[w].seen = make(map[string]bool)
			s.workers[w].keyBuf = make([]byte, 0, 8*len(s.p.projSlots))
		}
	}
	if s.distinct {
		s.dedup = make(map[string]bool)
		s.dedupBuf = make([]byte, 0, 8*len(s.p.projSlots))
	}
}

func (s *parSelect) StartMorsel(worker, morsel int) func(rdf.Row) bool {
	if s.stopped.Load() {
		return nil
	}
	ws := &s.workers[worker]
	buf := &s.bufs[morsel]
	dict := s.p.st.Dict()
	return func(row rdf.Row) bool {
		if s.distinct {
			ws.keyBuf = s.p.projKey(ws.keyBuf, row)
			k := string(ws.keyBuf)
			if ws.seen[k] {
				return true
			}
			ws.seen[k] = true
		}
		buf.rows = append(buf.rows, ws.arena.Copy(row))
		if s.needSort {
			var t rdf.Term
			if id := row[s.p.orderSlot]; id != rdf.NoID {
				t = dict.MustDecode(id)
			}
			buf.keys = append(buf.keys, makeSortKey(t))
		}
		// A single morsel never needs more than the whole LIMIT/OFFSET
		// prefix: emitting is capped per morsel, and the pipeline aborts
		// once the cap is hit. This holds under DISTINCT too, even
		// though some appended rows are cross-worker duplicates that
		// commit-time dedup will discard: a row dropped past the cap is
		// preceded, within its own morsel, by `needed` distinct values
		// whose global first occurrences all lie before it, so it cannot
		// be among the first `needed` distinct rows of the stream; and
		// conversely a needed value's first occurrence has fewer than
		// `needed` distinct values anywhere before it, so its morsel
		// cannot have capped out yet (nor can a worker's shard have
		// suppressed it — that would require an earlier occurrence).
		// TestParallelDistinctLimitBudget pins this.
		if s.needed > 0 && len(buf.rows) >= s.needed {
			return false
		}
		return !s.stopped.Load()
	}
}

func (s *parSelect) FinishMorsel(worker, morsel int) {
	if s.needSort {
		// Sort this morsel's run inside the worker (outside the lock),
		// stably so equal keys keep arrival order; the k-way merge then
		// reproduces the sequential stable sort exactly.
		buf := &s.bufs[morsel]
		if len(buf.rows) > 1 {
			sortRun(buf, s.p.q.OrderDesc)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done[morsel] = true
	for s.prefix < len(s.done) && s.done[s.prefix] {
		s.commitLocked(s.prefix)
		s.prefix++
	}
	if s.needed > 0 && !s.needSort && len(s.ordered) >= s.needed && !s.stopped.Load() {
		// The whole LIMIT/OFFSET prefix is committed: cancel remaining
		// morsels.
		s.stopped.Store(true)
	}
}

// commitLocked folds morsel m into the committed stream. On the
// unsorted path rows are appended to the flat ordered stream; on the
// ORDER BY path the per-morsel sorted run is kept for the final k-way
// merge. DISTINCT deduplicates here, in morsel order — global first
// occurrences win, like the sequential stream.
func (s *parSelect) commitLocked(m int) {
	buf := &s.bufs[m]
	if s.distinct {
		w := 0
		for i, row := range buf.rows {
			s.dedupBuf = s.p.projKey(s.dedupBuf, row)
			k := string(s.dedupBuf)
			if s.dedup[k] {
				continue
			}
			s.dedup[k] = true
			buf.rows[w] = row
			if s.needSort {
				buf.keys[w] = buf.keys[i]
			}
			w++
		}
		buf.rows = buf.rows[:w]
		if s.needSort {
			buf.keys = buf.keys[:w]
		}
	}
	if !s.needSort {
		s.ordered = append(s.ordered, buf.rows...)
		buf.rows = nil // committed: release the buffer
	}
}

func (s *parSelect) FinishWorker(int) {}

// sortRun stably sorts one morsel's rows by sort key.
func sortRun(buf *morselBuf, desc bool) {
	perm := make([]int, len(buf.rows))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(i, j int) bool {
		if desc {
			return sortKeyLess(buf.keys[perm[j]], buf.keys[perm[i]])
		}
		return sortKeyLess(buf.keys[perm[i]], buf.keys[perm[j]])
	})
	rows := make([]rdf.Row, len(buf.rows))
	keys := make([]sortKey, len(buf.keys))
	for i, pi := range perm {
		rows[i], keys[i] = buf.rows[pi], buf.keys[pi]
	}
	buf.rows, buf.keys = rows, keys
}

// runHeap is the k-way merge frontier over per-morsel sorted runs:
// ordered by sort key, ties broken by morsel index (sequential arrival
// order — within a run, stable per-morsel sorting already preserves
// it).
type runHeap struct {
	s       *parSelect
	morsels []int // morsel index of each live run
	pos     []int // cursor into each live run
	desc    bool
}

func (h *runHeap) Len() int { return len(h.morsels) }
func (h *runHeap) Less(i, j int) bool {
	bi, bj := &h.s.bufs[h.morsels[i]], &h.s.bufs[h.morsels[j]]
	ki, kj := bi.keys[h.pos[i]], bj.keys[h.pos[j]]
	if h.desc {
		if sortKeyLess(kj, ki) {
			return true
		}
		if sortKeyLess(ki, kj) {
			return false
		}
	} else {
		if sortKeyLess(ki, kj) {
			return true
		}
		if sortKeyLess(kj, ki) {
			return false
		}
	}
	return h.morsels[i] < h.morsels[j]
}
func (h *runHeap) Swap(i, j int) {
	h.morsels[i], h.morsels[j] = h.morsels[j], h.morsels[i]
	h.pos[i], h.pos[j] = h.pos[j], h.pos[i]
}
func (h *runHeap) Push(x any) { panic("runHeap: push after init") }
func (h *runHeap) Pop() any {
	n := len(h.morsels) - 1
	h.morsels = h.morsels[:n]
	h.pos = h.pos[:n]
	return nil
}

// finalize assembles the committed stream into decoded Results,
// replicating the sequential projection tail (sort, OFFSET, LIMIT,
// decode) exactly.
func (s *parSelect) finalize() (*Results, error) {
	q := s.p.q
	rows := s.ordered
	if s.needSort {
		total := 0
		h := &runHeap{s: s, desc: q.OrderDesc}
		for m := range s.bufs {
			if n := len(s.bufs[m].rows); n > 0 {
				total += n
				h.morsels = append(h.morsels, m)
				h.pos = append(h.pos, 0)
			}
		}
		heap.Init(h)
		rows = make([]rdf.Row, 0, total)
		for h.Len() > 0 {
			m, p := h.morsels[0], h.pos[0]
			rows = append(rows, s.bufs[m].rows[p])
			if p+1 < len(s.bufs[m].rows) {
				h.pos[0] = p + 1
				heap.Fix(h, 0)
			} else {
				heap.Pop(h)
			}
		}
	}
	// Unlike the sequential path's streaming skip, every sink buffers
	// the full stream prefix; OFFSET therefore always applies here.
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = rows[:0]
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}

	res := &Results{Vars: s.p.vars}
	dict := s.p.st.Dict()
	res.Rows = make([]map[string]rdf.Term, 0, len(rows))
	for _, row := range rows {
		m := make(map[string]rdf.Term, len(s.p.vars))
		for i, v := range s.p.vars {
			if sl := s.p.projSlots[i]; sl >= 0 && row[sl] != rdf.NoID {
				m[v] = dict.MustDecode(row[sl])
			}
		}
		res.Rows = append(res.Rows, m)
	}
	return res, nil
}

// --- aggregate sink ---

// parGroup is one worker-local aggregate group with its global
// first-seen position (morsel, row-in-morsel) for deterministic group
// ordering.
type parGroup struct {
	counts []int
	m, i   int
}

// countWorker folds rows into per-worker partial aggregates — no locks,
// no cross-worker sharing on the hot path.
type countWorker struct {
	groups map[rdf.ID]*parGroup
	order  []rdf.ID
	morsel int
	idx    int
}

// parCount reduces parallel aggregate queries: per-worker partial
// COUNT folds merged at the barrier, groups ordered by global
// first-seen position to match the sequential stream.
type parCount struct {
	p       *Plan
	grouped bool
	workers []countWorker
}

func (s *parCount) Begin(morsels, workers int) {
	s.workers = make([]countWorker, workers)
	for w := range s.workers {
		s.workers[w].groups = make(map[rdf.ID]*parGroup)
	}
}

func (s *parCount) StartMorsel(worker, morsel int) func(rdf.Row) bool {
	ws := &s.workers[worker]
	ws.morsel, ws.idx = morsel, 0
	q := s.p.q
	return func(row rdf.Row) bool {
		i := ws.idx
		ws.idx++
		var key rdf.ID
		if s.grouped {
			key = row[s.p.groupSlot]
			if key == rdf.NoID {
				return true
			}
		}
		g := ws.groups[key]
		if g == nil {
			g = &parGroup{counts: make([]int, len(q.Aggregates)), m: morsel, i: i}
			ws.groups[key] = g
			ws.order = append(ws.order, key)
		}
		for ai, sl := range s.p.aggSlots {
			switch {
			case sl == countStar:
				g.counts[ai]++
			case sl == countNever:
				// COUNT(?v) with ?v never bound: contributes nothing.
			case row[sl] != rdf.NoID:
				g.counts[ai]++
			}
		}
		return true
	}
}

func (s *parCount) FinishMorsel(int, int) {}
func (s *parCount) FinishWorker(int)      {}

// executeAggregatesParallel is executeAggregates on the parallel
// executor: per-worker partial folds merged by global first-seen order.
func (p *Plan) executeAggregatesParallel(seeds []rdf.Row, px ParallelExec) (*Results, error) {
	q := p.q
	grouped := q.GroupBy != ""
	sink := &parCount{p: p, grouped: grouped}

	// A GROUP BY variable outside the BGP never binds; no groups form
	// (mirroring the sequential path, the pipeline is not run at all).
	if !grouped || p.groupSlot >= 0 {
		if p.bgp.RunParallel(p.st, seeds, px.runOpts(), sink) {
			return nil, ErrCanceled
		}
	}

	// Barrier merge: sum partial counts, order groups by the earliest
	// (morsel, row) that saw them — the sequential first-seen order.
	merged := map[rdf.ID]*parGroup{}
	var order []rdf.ID
	for w := range sink.workers {
		ws := &sink.workers[w]
		for _, key := range ws.order {
			g := ws.groups[key]
			mg := merged[key]
			if mg == nil {
				merged[key] = g
				order = append(order, key)
				continue
			}
			for i := range mg.counts {
				mg.counts[i] += g.counts[i]
			}
			if g.m < mg.m || (g.m == mg.m && g.i < mg.i) {
				mg.m, mg.i = g.m, g.i
			}
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		ga, gb := merged[order[a]], merged[order[b]]
		if ga.m != gb.m {
			return ga.m < gb.m
		}
		return ga.i < gb.i
	})

	return p.renderAggregates(order, func(k rdf.ID) []int { return merged[k].counts })
}
