package sparql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/rdf"
)

// Parse parses a SELECT query in the supported stSPARQL subset.
//
// Grammar (informal):
//
//	query    := prefix* "SELECT" "DISTINCT"? (var+ | "*") "WHERE" "{" block "}" modifiers
//	prefix   := "PREFIX" NAME ":" IRIREF
//	block    := (triple "." | filter)*
//	triple   := term term term
//	filter   := "FILTER" "(" orExpr ")"
//	modifiers := ("ORDER" "BY" ("ASC"|"DESC")? var)?
//	             ("LIMIT" INT | "OFFSET" INT)*   (each at most once)
func Parse(input string) (*Query, error) {
	p := &parser{lex: newLexer(input), prefixes: map[string]string{}}
	for k, v := range builtinPrefixes {
		p.prefixes[k] = v
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("sparql: %w", err)
	}
	return q, nil
}

// MustParse is Parse that panics on error, for tests and fixed queries.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	lex      *lexer
	prefixes map[string]string
}

func (p *parser) parseQuery() (*Query, error) {
	for p.lex.peekKeyword("PREFIX") {
		p.lex.next() // PREFIX
		name, err := p.lex.expectPNameNS()
		if err != nil {
			return nil, err
		}
		iri, err := p.lex.expectIRIRef()
		if err != nil {
			return nil, err
		}
		p.prefixes[name] = iri
	}
	if !p.lex.acceptKeyword("SELECT") {
		return nil, fmt.Errorf("expected SELECT at %s", p.lex.where())
	}
	q := &Query{}
	if p.lex.acceptKeyword("DISTINCT") {
		q.Distinct = true
	}
	if p.lex.accept("*") {
		q.Star = true
	} else {
		for {
			if v, ok := p.lex.acceptVar(); ok {
				q.Vars = append(q.Vars, v)
				continue
			}
			agg, ok, err := p.parseAggregate()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			q.Aggregates = append(q.Aggregates, agg)
		}
		if len(q.Vars) == 0 && len(q.Aggregates) == 0 {
			return nil, fmt.Errorf("SELECT needs variables, aggregates or * at %s", p.lex.where())
		}
	}
	if !p.lex.acceptKeyword("WHERE") {
		return nil, fmt.Errorf("expected WHERE at %s", p.lex.where())
	}
	if !p.lex.accept("{") {
		return nil, fmt.Errorf("expected { at %s", p.lex.where())
	}
	for !p.lex.accept("}") {
		if p.lex.atEOF() {
			return nil, fmt.Errorf("unterminated WHERE block")
		}
		if p.lex.acceptKeyword("FILTER") {
			if !p.lex.accept("(") {
				return nil, fmt.Errorf("expected ( after FILTER at %s", p.lex.where())
			}
			e, err := p.parseOrExpr()
			if err != nil {
				return nil, err
			}
			if !p.lex.accept(")") {
				return nil, fmt.Errorf("expected ) after FILTER expression at %s", p.lex.where())
			}
			q.Filters = append(q.Filters, e)
			p.lex.accept(".") // optional separator
			continue
		}
		s, err := p.parsePatternTerm()
		if err != nil {
			return nil, err
		}
		pr, err := p.parsePatternTerm()
		if err != nil {
			return nil, err
		}
		o, err := p.parsePatternTerm()
		if err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, rdf.TriplePattern{S: s, P: pr, O: o})
		if !p.lex.accept(".") && !p.lex.peek("}") {
			return nil, fmt.Errorf("expected . after triple pattern at %s", p.lex.where())
		}
	}
	if p.lex.acceptKeyword("GROUP") {
		if !p.lex.acceptKeyword("BY") {
			return nil, fmt.Errorf("expected BY after GROUP at %s", p.lex.where())
		}
		v, ok := p.lex.acceptVar()
		if !ok {
			return nil, fmt.Errorf("expected variable after GROUP BY at %s", p.lex.where())
		}
		q.GroupBy = v
	}
	if p.lex.acceptKeyword("ORDER") {
		if !p.lex.acceptKeyword("BY") {
			return nil, fmt.Errorf("expected BY after ORDER at %s", p.lex.where())
		}
		if p.lex.acceptKeyword("DESC") {
			q.OrderDesc = true
		} else {
			p.lex.acceptKeyword("ASC")
		}
		v, ok := p.lex.acceptVar()
		if !ok {
			return nil, fmt.Errorf("expected variable after ORDER BY at %s", p.lex.where())
		}
		q.OrderBy = v
	}
	// LIMIT and OFFSET accept either order (SPARQL's LimitOffsetClauses),
	// at most once each.
	sawLimit, sawOffset := false, false
	for {
		switch {
		case !sawLimit && p.lex.peekKeyword("LIMIT"):
			p.lex.acceptKeyword("LIMIT")
			n, err := p.lex.expectInt()
			if err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, fmt.Errorf("negative LIMIT %d", n)
			}
			q.Limit = n
			sawLimit = true
			continue
		case !sawOffset && p.lex.peekKeyword("OFFSET"):
			p.lex.acceptKeyword("OFFSET")
			n, err := p.lex.expectInt()
			if err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, fmt.Errorf("negative OFFSET %d", n)
			}
			q.Offset = n
			sawOffset = true
			continue
		}
		break
	}
	if !p.lex.atEOF() {
		return nil, fmt.Errorf("trailing input at %s", p.lex.where())
	}
	return q, nil
}

// parseAggregate parses "(COUNT(?v|*) AS ?name)"; ok is false when the
// next token does not open an aggregate.
func (p *parser) parseAggregate() (Aggregate, bool, error) {
	if !p.lex.accept("(") {
		return Aggregate{}, false, nil
	}
	if !p.lex.acceptKeyword("COUNT") {
		return Aggregate{}, false, fmt.Errorf("only COUNT aggregates are supported at %s", p.lex.where())
	}
	if !p.lex.accept("(") {
		return Aggregate{}, false, fmt.Errorf("expected ( after COUNT at %s", p.lex.where())
	}
	var agg Aggregate
	agg.Fn = "COUNT"
	if !p.lex.accept("*") {
		v, ok := p.lex.acceptVar()
		if !ok {
			return Aggregate{}, false, fmt.Errorf("expected ?var or * in COUNT at %s", p.lex.where())
		}
		agg.Var = v
	}
	if !p.lex.accept(")") {
		return Aggregate{}, false, fmt.Errorf("expected ) after COUNT argument at %s", p.lex.where())
	}
	if !p.lex.acceptKeyword("AS") {
		return Aggregate{}, false, fmt.Errorf("expected AS in aggregate at %s", p.lex.where())
	}
	name, ok := p.lex.acceptVar()
	if !ok {
		return Aggregate{}, false, fmt.Errorf("expected output variable after AS at %s", p.lex.where())
	}
	agg.As = name
	if !p.lex.accept(")") {
		return Aggregate{}, false, fmt.Errorf("expected ) closing aggregate at %s", p.lex.where())
	}
	return agg, true, nil
}

// parsePatternTerm parses a subject/predicate/object position.
func (p *parser) parsePatternTerm() (rdf.PatternTerm, error) {
	if v, ok := p.lex.acceptVar(); ok {
		return rdf.V(v), nil
	}
	if p.lex.accept("a") { // rdf:type shorthand
		return rdf.T(rdf.NewIRI(rdf.RDFType)), nil
	}
	t, err := p.parseTerm()
	if err != nil {
		return rdf.PatternTerm{}, err
	}
	return rdf.T(t), nil
}

// parseTerm parses an IRI (absolute or prefixed), literal, or blank node.
func (p *parser) parseTerm() (rdf.Term, error) {
	if iri, ok := p.lex.acceptIRIRef(); ok {
		return rdf.NewIRI(iri), nil
	}
	if lit, ok, err := p.lex.acceptLiteral(); err != nil {
		return rdf.Term{}, err
	} else if ok {
		return p.finishLiteral(lit)
	}
	if num, ok := p.lex.acceptNumber(); ok {
		if strings.ContainsAny(num, ".eE") {
			return rdf.NewTypedLiteral(num, rdf.XSDDouble), nil
		}
		return rdf.NewTypedLiteral(num, rdf.XSDInteger), nil
	}
	if b, ok := p.lex.acceptBlank(); ok {
		return rdf.NewBlank(b), nil
	}
	if pn, ok := p.lex.acceptPrefixedName(); ok {
		iri, err := p.expandPrefixed(pn)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), nil
	}
	return rdf.Term{}, fmt.Errorf("expected term at %s", p.lex.where())
}

// finishLiteral attaches an optional language tag or datatype.
func (p *parser) finishLiteral(lex string) (rdf.Term, error) {
	if tag, ok := p.lex.acceptLangTag(); ok {
		return rdf.NewLangLiteral(lex, tag), nil
	}
	if p.lex.accept("^^") {
		if iri, ok := p.lex.acceptIRIRef(); ok {
			return rdf.NewTypedLiteral(lex, iri), nil
		}
		if pn, ok := p.lex.acceptPrefixedName(); ok {
			iri, err := p.expandPrefixed(pn)
			if err != nil {
				return rdf.Term{}, err
			}
			return rdf.NewTypedLiteral(lex, iri), nil
		}
		return rdf.Term{}, fmt.Errorf("expected datatype after ^^ at %s", p.lex.where())
	}
	return rdf.NewLiteral(lex), nil
}

func (p *parser) expandPrefixed(pn string) (string, error) {
	i := strings.IndexByte(pn, ':')
	if i < 0 {
		return "", fmt.Errorf("bad prefixed name %q", pn)
	}
	ns, ok := p.prefixes[pn[:i]]
	if !ok {
		return "", fmt.Errorf("unknown prefix %q", pn[:i])
	}
	return ns + pn[i+1:], nil
}

// parseOrExpr := andExpr ("||" andExpr)*
func (p *parser) parseOrExpr() (Expr, error) {
	l, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for p.lex.accept("||") {
		r, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		l = OrExpr{L: l, R: r}
	}
	return l, nil
}

// parseAndExpr := cmpExpr ("&&" cmpExpr)*
func (p *parser) parseAndExpr() (Expr, error) {
	l, err := p.parseCmpExpr()
	if err != nil {
		return nil, err
	}
	for p.lex.accept("&&") {
		r, err := p.parseCmpExpr()
		if err != nil {
			return nil, err
		}
		l = AndExpr{L: l, R: r}
	}
	return l, nil
}

// parseCmpExpr := primary (cmpOp primary)?
func (p *parser) parseCmpExpr() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for _, op := range []struct {
		tok string
		op  CmpOp
	}{
		{"<=", OpLe}, {">=", OpGe}, {"!=", OpNe}, {"=", OpEq}, {"<", OpLt}, {">", OpGt},
	} {
		if p.lex.accept(op.tok) {
			r, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return CmpExpr{Op: op.op, L: l, R: r}, nil
		}
	}
	return l, nil
}

// parsePrimary := "!" primary | "(" orExpr ")" | var | literal | funcCall
func (p *parser) parsePrimary() (Expr, error) {
	if p.lex.accept("!") {
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	}
	if p.lex.accept("(") {
		e, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		if !p.lex.accept(")") {
			return nil, fmt.Errorf("expected ) at %s", p.lex.where())
		}
		return e, nil
	}
	if v, ok := p.lex.acceptVar(); ok {
		return VarExpr{Name: v}, nil
	}
	if lit, ok, err := p.lex.acceptLiteral(); err != nil {
		return nil, err
	} else if ok {
		t, err := p.finishLiteral(lit)
		if err != nil {
			return nil, err
		}
		return ConstExpr{Term: t}, nil
	}
	if num, ok := p.lex.acceptNumber(); ok {
		if strings.ContainsAny(num, ".eE") {
			return ConstExpr{Term: rdf.NewTypedLiteral(num, rdf.XSDDouble)}, nil
		}
		return ConstExpr{Term: rdf.NewTypedLiteral(num, rdf.XSDInteger)}, nil
	}
	if iri, ok := p.lex.acceptIRIRef(); ok {
		return p.maybeCall(iri)
	}
	if pn, ok := p.lex.acceptPrefixedName(); ok {
		iri, err := p.expandPrefixed(pn)
		if err != nil {
			return nil, err
		}
		return p.maybeCall(iri)
	}
	return nil, fmt.Errorf("expected expression at %s", p.lex.where())
}

// maybeCall parses a function call argument list if present, otherwise an
// IRI constant.
func (p *parser) maybeCall(iri string) (Expr, error) {
	if !p.lex.accept("(") {
		return ConstExpr{Term: rdf.NewIRI(iri)}, nil
	}
	var args []Expr
	if !p.lex.accept(")") {
		for {
			a, err := p.parseOrExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.lex.accept(")") {
				break
			}
			if !p.lex.accept(",") {
				return nil, fmt.Errorf("expected , or ) in arguments at %s", p.lex.where())
			}
		}
	}
	return FuncExpr{Name: iri, Args: args}, nil
}

// lexer tokenizes enough of SPARQL for the subset above. It works
// directly on the input string with single-token lookahead implemented by
// save/restore of the cursor.
type lexer struct {
	in  string
	pos int
}

func newLexer(in string) *lexer { return &lexer{in: in} }

func (l *lexer) where() string {
	start := l.pos
	end := start + 20
	if end > len(l.in) {
		end = len(l.in)
	}
	return fmt.Sprintf("offset %d (%q)", l.pos, l.in[start:end])
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '#' { // comment to end of line
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
}

func (l *lexer) atEOF() bool {
	l.skipSpace()
	return l.pos >= len(l.in)
}

// accept consumes the exact token string if it is next.
func (l *lexer) accept(tok string) bool {
	l.skipSpace()
	if strings.HasPrefix(l.in[l.pos:], tok) {
		// "a" must be a standalone word, not a prefix of an identifier;
		// same for any alphabetic token.
		if isWordy(tok) {
			end := l.pos + len(tok)
			if end < len(l.in) && isNameChar(rune(l.in[end])) {
				return false
			}
		}
		l.pos += len(tok)
		return true
	}
	return false
}

func (l *lexer) peek(tok string) bool {
	l.skipSpace()
	return strings.HasPrefix(l.in[l.pos:], tok)
}

func isWordy(tok string) bool {
	for _, r := range tok {
		if !unicode.IsLetter(r) {
			return false
		}
	}
	return len(tok) > 0
}

// acceptKeyword consumes a case-insensitive keyword.
func (l *lexer) acceptKeyword(kw string) bool {
	l.skipSpace()
	if len(l.in)-l.pos < len(kw) {
		return false
	}
	if !strings.EqualFold(l.in[l.pos:l.pos+len(kw)], kw) {
		return false
	}
	end := l.pos + len(kw)
	if end < len(l.in) && isNameChar(rune(l.in[end])) {
		return false
	}
	l.pos = end
	return true
}

func (l *lexer) peekKeyword(kw string) bool {
	save := l.pos
	ok := l.acceptKeyword(kw)
	l.pos = save
	return ok
}

func isNameChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

// acceptVar consumes ?name.
func (l *lexer) acceptVar() (string, bool) {
	l.skipSpace()
	if l.pos >= len(l.in) || (l.in[l.pos] != '?' && l.in[l.pos] != '$') {
		return "", false
	}
	start := l.pos + 1
	i := start
	for i < len(l.in) && isNameChar(rune(l.in[i])) {
		i++
	}
	if i == start {
		return "", false
	}
	l.pos = i
	return l.in[start:i], true
}

// acceptIRIRef consumes <iri>.
func (l *lexer) acceptIRIRef() (string, bool) {
	l.skipSpace()
	if l.pos >= len(l.in) || l.in[l.pos] != '<' {
		return "", false
	}
	end := strings.IndexByte(l.in[l.pos:], '>')
	if end < 0 {
		return "", false
	}
	iri := l.in[l.pos+1 : l.pos+end]
	l.pos += end + 1
	return iri, true
}

func (l *lexer) expectIRIRef() (string, error) {
	if iri, ok := l.acceptIRIRef(); ok {
		return iri, nil
	}
	return "", fmt.Errorf("expected <IRI> at %s", l.where())
}

// expectPNameNS consumes "name:" returning name.
func (l *lexer) expectPNameNS() (string, error) {
	l.skipSpace()
	i := l.pos
	for i < len(l.in) && isNameChar(rune(l.in[i])) {
		i++
	}
	if i >= len(l.in) || l.in[i] != ':' {
		return "", fmt.Errorf("expected prefix name at %s", l.where())
	}
	name := l.in[l.pos:i]
	l.pos = i + 1
	return name, nil
}

// acceptPrefixedName consumes "prefix:local".
func (l *lexer) acceptPrefixedName() (string, bool) {
	l.skipSpace()
	save := l.pos
	i := l.pos
	for i < len(l.in) && isNameChar(rune(l.in[i])) {
		i++
	}
	if i >= len(l.in) || l.in[i] != ':' {
		l.pos = save
		return "", false
	}
	j := i + 1
	for j < len(l.in) && (isNameChar(rune(l.in[j])) || l.in[j] == '.') {
		j++
	}
	// local part must not end with '.'
	for j > i+1 && l.in[j-1] == '.' {
		j--
	}
	if j == i+1 {
		l.pos = save
		return "", false
	}
	out := l.in[l.pos:j]
	l.pos = j
	return out, true
}

// acceptBlank consumes _:label.
func (l *lexer) acceptBlank() (string, bool) {
	l.skipSpace()
	if !strings.HasPrefix(l.in[l.pos:], "_:") {
		return "", false
	}
	start := l.pos + 2
	i := start
	for i < len(l.in) && isNameChar(rune(l.in[i])) {
		i++
	}
	if i == start {
		return "", false
	}
	l.pos = i
	return l.in[start:i], true
}

// acceptLiteral consumes a double-quoted string, handling backslash
// escapes. Returns the unescaped lexical value.
func (l *lexer) acceptLiteral() (string, bool, error) {
	l.skipSpace()
	if l.pos >= len(l.in) || l.in[l.pos] != '"' {
		return "", false, nil
	}
	i := l.pos + 1
	var b strings.Builder
	for i < len(l.in) {
		c := l.in[i]
		if c == '\\' && i+1 < len(l.in) {
			switch l.in[i+1] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				b.WriteByte(l.in[i+1])
			}
			i += 2
			continue
		}
		if c == '"' {
			l.pos = i + 1
			return b.String(), true, nil
		}
		b.WriteByte(c)
		i++
	}
	return "", false, fmt.Errorf("unterminated string literal at %s", l.where())
}

// acceptLangTag consumes @tag.
func (l *lexer) acceptLangTag() (string, bool) {
	if l.pos >= len(l.in) || l.in[l.pos] != '@' {
		return "", false
	}
	start := l.pos + 1
	i := start
	for i < len(l.in) && (isNameChar(rune(l.in[i]))) {
		i++
	}
	if i == start {
		return "", false
	}
	l.pos = i
	return l.in[start:i], true
}

// acceptNumber consumes an integer or decimal numeric literal.
func (l *lexer) acceptNumber() (string, bool) {
	l.skipSpace()
	i := l.pos
	if i < len(l.in) && (l.in[i] == '-' || l.in[i] == '+') {
		i++
	}
	start := i
	for i < len(l.in) && (l.in[i] >= '0' && l.in[i] <= '9') {
		i++
	}
	if i == start {
		return "", false
	}
	if i < len(l.in) && l.in[i] == '.' {
		i++
		for i < len(l.in) && (l.in[i] >= '0' && l.in[i] <= '9') {
			i++
		}
	}
	if i < len(l.in) && (l.in[i] == 'e' || l.in[i] == 'E') {
		j := i + 1
		if j < len(l.in) && (l.in[j] == '-' || l.in[j] == '+') {
			j++
		}
		k := j
		for k < len(l.in) && (l.in[k] >= '0' && l.in[k] <= '9') {
			k++
		}
		if k > j {
			i = k
		}
	}
	out := l.in[l.pos:i]
	l.pos = i
	return out, true
}

func (l *lexer) expectInt() (int, error) {
	s, ok := l.acceptNumber()
	if !ok {
		return 0, fmt.Errorf("expected integer at %s", l.where())
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	return n, nil
}

// next consumes and discards the next whitespace-delimited token; used only
// after peekKeyword.
func (l *lexer) next() {
	l.skipSpace()
	for l.pos < len(l.in) && !unicode.IsSpace(rune(l.in[l.pos])) {
		l.pos++
	}
}
