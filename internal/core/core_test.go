package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dl"
	"repro/internal/dl/datasets"
	"repro/internal/geom"
	"repro/internal/raster"
	"repro/internal/seaice"
	"repro/internal/sentinel"
)

func TestPlatformIngestAndCatalogue(t *testing.T) {
	p := NewPlatform(4, 4)
	products := sentinel.GenerateProducts(50, 1, geom.NewRect(0, 0, 1000, 1000))
	if err := p.IngestAndCatalogue(products); err != nil {
		t.Fatal(err)
	}
	if p.Archive.Len() != 50 {
		t.Errorf("archive = %d", p.Archive.Len())
	}
	names, err := p.FS.List("/products")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 50 {
		t.Errorf("fs products = %d", len(names))
	}
	data, err := p.FS.Read("/products/" + products[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), products[0].ID) {
		t.Error("product metadata file content wrong")
	}
	// Catalogue answers the semantic search.
	n, err := p.Catalogue.ProductsInYearOverArea(2018, geom.NewRect(0, 0, 1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Errorf("catalogue products = %d", n)
	}
}

func TestGenerateSceneProducts(t *testing.T) {
	scenes := GenerateSceneProducts(3, 32, 2, geom.NewRect(0, 0, 1000, 1000))
	if len(scenes) != 3 {
		t.Fatalf("scenes = %d", len(scenes))
	}
	for _, s := range scenes {
		if len(s.Image.Bands) != 13 {
			t.Errorf("bands = %d", len(s.Image.Bands))
		}
		if s.Image.Grid.NumCells() != 32*32 {
			t.Errorf("cells = %d", s.Image.Grid.NumCells())
		}
		if s.Product.SizeBytes != s.Image.SizeBytes() {
			t.Errorf("size mismatch")
		}
	}
}

func trainTestNet(t *testing.T) *dl.Network {
	t.Helper()
	ds := datasets.EuroSATVectors(4000, 3)
	net, _ := TrainLandCoverClassifier(dl.SingleWorker{}, ds, 10, 1, 3)
	return net
}

func TestExtractScene(t *testing.T) {
	net := trainTestNet(t)
	scenes := GenerateSceneProducts(1, 48, 4, geom.NewRect(0, 0, 1000, 1000))
	k := ExtractScene(scenes[0], net)
	if k.Accuracy < 0.6 {
		t.Errorf("scene classification accuracy = %v", k.Accuracy)
	}
	if len(k.NDVI.Data) != 48*48 {
		t.Errorf("NDVI cells = %d", len(k.NDVI.Data))
	}
	if k.SizeBytes() <= 0 {
		t.Error("knowledge size = 0")
	}
}

func TestExtractInformationRatio(t *testing.T) {
	// E3's shape: knowledge/data ratio near the paper's implied 0.45
	// (our knowledge products: 1B class + 20B confidence + 4B NDVI per
	// pixel over 52B of 13-band float32 data = 25/52 ~ 0.48).
	p := NewPlatform(4, 4)
	net := trainTestNet(t)
	scenes := GenerateSceneProducts(4, 32, 5, geom.NewRect(0, 0, 1000, 1000))
	res := p.ExtractInformation(scenes, net)
	if res.Products != 4 {
		t.Fatalf("products = %d", res.Products)
	}
	if res.Ratio < 0.4 || res.Ratio > 0.6 {
		t.Errorf("knowledge/data ratio = %v, want ~0.48", res.Ratio)
	}
	if res.MeanAccuracy < 0.6 {
		t.Errorf("mean accuracy = %v", res.MeanAccuracy)
	}
}

func TestTrainLandCoverClassifierStrategies(t *testing.T) {
	ds := datasets.EuroSATVectors(2000, 6)
	for _, s := range []dl.Strategy{dl.SingleWorker{}, dl.AllReduce{}} {
		dsCopy := &dl.Dataset{X: ds.X.Clone(), Y: append([]int(nil), ds.Y...), Classes: ds.Classes}
		net, stats := TrainLandCoverClassifier(s, dsCopy, 5, 4, 6)
		if stats.Steps == 0 {
			t.Errorf("%s: no steps", s.Name())
		}
		if acc := net.Accuracy(ds.X, ds.Y); acc < 0.7 {
			t.Errorf("%s accuracy = %v", s.Name(), acc)
		}
	}
}

// TestEndToEndPolarIntegration drives the full A2 chain through the
// platform: synthetic SAR -> classifier -> ice chart -> iceberg
// knowledge into the catalogue -> semantic COUNT query.
func TestEndToEndPolarIntegration(t *testing.T) {
	p := NewPlatform(4, 4)
	grid := raster.NewGrid(geom.Point{X: 1000, Y: 1000}, 100, 64, 64)
	truth := sentinel.GenerateIceChart(grid, 6, 51)
	scene := sentinel.GenerateS1Scene(truth, 8, 52)

	clf, acc := seaice.TrainClassifier(4000, 8, 10, 53)
	if acc < 0.6 {
		t.Fatalf("classifier accuracy = %v", acc)
	}
	classified := seaice.ClassifyScene(scene, clf)

	barrier := geom.NewRect(1000, 1000, 7400, 7400) // covers the whole scene
	if err := p.Catalogue.AddIceBarrier("TestBarrier", 2017, barrier); err != nil {
		t.Fatal(err)
	}
	obs := seaice.IcebergLocations(classified)
	for i, o := range obs {
		if err := p.Catalogue.AddIceberg(fmt.Sprintf("o%d", i), 2017,
			geom.Point{X: o.X, Y: o.Y}); err != nil {
			t.Fatal(err)
		}
	}
	p.Catalogue.Build()
	count, err := p.Catalogue.IcebergsEmbedded("TestBarrier", 2017)
	if err != nil {
		t.Fatal(err)
	}
	if count != len(obs) {
		t.Fatalf("catalogue counted %d of %d observed bergs inside covering barrier",
			count, len(obs))
	}
}
