package analysis

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// RunTestdata loads the fixture package at <testdata>/src/<pkgRel>,
// runs the analyzer over it, and matches the findings against the
// fixture's "// want" expectations, x/tools analysistest style:
//
//	os.Create("x") // want `direct os\.Create`
//
// Each expectation is a back-quoted or double-quoted regular expression
// on the line the diagnostic must land on; several expectations on one
// line must all be matched, in any order. Unmatched diagnostics and
// unsatisfied expectations both fail the test. moduleDir is the
// repository root (fixture imports resolve against its go.mod). The
// loaded package is returned for follow-up assertions (suggested-fix
// tests).
func RunTestdata(t *testing.T, moduleDir, testdata, pkgRel string, a *Analyzer) (*Package, []Finding) {
	t.Helper()
	pkg, err := LoadTestdata(moduleDir, testdata, pkgRel)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunPackage(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	expects := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pats, perr := parseWant(c.Text)
				if perr != nil {
					t.Fatalf("%s: %v", pkg.Fset.Position(c.Pos()), perr)
				}
				if len(pats) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				expects[k] = append(expects[k], pats...)
			}
		}
	}

	for _, f := range findings {
		k := key{f.Position.Filename, f.Position.Line}
		matched := -1
		for i, re := range expects[k] {
			if re != nil && re.MatchString(f.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", f.Position, f.Message)
			continue
		}
		expects[k][matched] = nil // consumed
	}
	for k, res := range expects {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
	return pkg, findings
}

// parseWant extracts the regexp expectations from a "// want" comment.
func parseWant(comment string) ([]*regexp.Regexp, error) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "want ") {
		return nil, nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
	var pats []*regexp.Regexp
	for rest != "" {
		var quote byte
		switch rest[0] {
		case '`', '"':
			quote = rest[0]
		default:
			return nil, fmt.Errorf("malformed want expectation %q", rest)
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want expectation %q", rest)
		}
		re, err := regexp.Compile(rest[1 : 1+end])
		if err != nil {
			return nil, fmt.Errorf("bad want pattern: %v", err)
		}
		pats = append(pats, re)
		rest = strings.TrimSpace(rest[2+end:])
	}
	return pats, nil
}

// FindingAt returns the first finding whose position matches file
// suffix and line, for fix assertions in analyzer tests.
func FindingAt(findings []Finding, fileSuffix string, line int) (Finding, bool) {
	for _, f := range findings {
		if f.Position.Line == line && strings.HasSuffix(f.Position.Filename, fileSuffix) {
			return f, true
		}
	}
	return Finding{}, false
}

// EditText renders a suggested fix's first edit as "old -> new" against
// the package source, so tests can assert mechanical rewrites without
// golden files.
func EditText(pkg *Package, f Finding) (string, error) {
	if len(f.SuggestedFixes) == 0 || len(f.SuggestedFixes[0].TextEdits) == 0 {
		return "", fmt.Errorf("finding %s has no suggested fix", f)
	}
	te := f.SuggestedFixes[0].TextEdits[0]
	file := pkg.Fset.File(te.Pos)
	if file == nil {
		return "", fmt.Errorf("fix position outside package")
	}
	return te.NewText, nil
}
