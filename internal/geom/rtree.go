package geom

import (
	"container/heap"
	"math"
	"sort"
)

// RTree is a spatial index over rectangles with associated integer payloads
// (typically encoded entity IDs). It supports incremental insertion
// (quadratic-split R-tree) and bulk loading (sort-tile-recursive), and
// answers window (intersection), containment and nearest-neighbour
// queries. It is not safe for concurrent mutation; concurrent readers are
// safe once loading finishes.
type RTree struct {
	root     *rtreeNode
	size     int
	maxEntry int
	minEntry int
	// path records the root-to-leaf path of the last chooseLeaf call so
	// node splits can propagate upward without parent pointers.
	path []*rtreeNode
}

const (
	defaultMaxEntries = 16
	defaultMinEntries = 6
)

type rtreeEntry struct {
	bounds Rect
	child  *rtreeNode // nil for leaf entries
	data   int64
}

type rtreeNode struct {
	entries []rtreeEntry
	leaf    bool
}

// NewRTree returns an empty R-tree with default node capacity.
func NewRTree() *RTree {
	return &RTree{
		root:     &rtreeNode{leaf: true},
		maxEntry: defaultMaxEntries,
		minEntry: defaultMinEntries,
	}
}

// Len returns the number of indexed entries.
func (t *RTree) Len() int { return t.size }

// Insert adds an entry with the given bounds and payload.
func (t *RTree) Insert(bounds Rect, data int64) {
	e := rtreeEntry{bounds: bounds, data: data}
	leaf := t.chooseLeaf(t.root, e)
	leaf.entries = append(leaf.entries, e)
	t.size++
	t.splitUpward(leaf)
}

// chooseLeaf walks down picking the child whose bounds need least
// enlargement, tracking the path via parent pointers computed on the fly.
func (t *RTree) chooseLeaf(n *rtreeNode, e rtreeEntry) *rtreeNode {
	t.path = t.path[:0]
	for !n.leaf {
		t.path = append(t.path, n)
		best := 0
		bestEnl := math.Inf(1)
		bestArea := math.Inf(1)
		for i, c := range n.entries {
			u := c.bounds.Union(e.bounds)
			enl := u.Area() - c.bounds.Area()
			if enl < bestEnl || (enl == bestEnl && c.bounds.Area() < bestArea) {
				best, bestEnl, bestArea = i, enl, c.bounds.Area()
			}
		}
		n.entries[best].bounds = n.entries[best].bounds.Union(e.bounds)
		n = n.entries[best].child
	}
	return n
}

func (t *RTree) splitUpward(n *rtreeNode) {
	for n != nil && len(n.entries) > t.maxEntry {
		a, b := t.splitNode(n)
		if n == t.root {
			t.root = &rtreeNode{
				leaf: false,
				entries: []rtreeEntry{
					{bounds: nodeBounds(a), child: a},
					{bounds: nodeBounds(b), child: b},
				},
			}
			return
		}
		parent := t.popParent()
		// replace n's entry with a, append b
		for i := range parent.entries {
			if parent.entries[i].child == n {
				parent.entries[i] = rtreeEntry{bounds: nodeBounds(a), child: a}
				break
			}
		}
		parent.entries = append(parent.entries, rtreeEntry{bounds: nodeBounds(b), child: b})
		n = parent
	}
}

func (t *RTree) popParent() *rtreeNode {
	if len(t.path) == 0 {
		return nil
	}
	p := t.path[len(t.path)-1]
	t.path = t.path[:len(t.path)-1]
	return p
}

// splitNode performs a quadratic split of an overfull node.
func (t *RTree) splitNode(n *rtreeNode) (*rtreeNode, *rtreeNode) {
	entries := n.entries
	// pick seeds: pair wasting the most area if grouped
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			u := entries[i].bounds.Union(entries[j].bounds)
			waste := u.Area() - entries[i].bounds.Area() - entries[j].bounds.Area()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	a := &rtreeNode{leaf: n.leaf, entries: []rtreeEntry{entries[s1]}}
	b := &rtreeNode{leaf: n.leaf, entries: []rtreeEntry{entries[s2]}}
	ab, bb := entries[s1].bounds, entries[s2].bounds
	for i, e := range entries {
		if i == s1 || i == s2 {
			continue
		}
		rem := len(entries) - i
		// force assignment if one group must take the rest to reach minEntry
		switch {
		case len(a.entries)+rem <= t.minEntry:
			a.entries = append(a.entries, e)
			ab = ab.Union(e.bounds)
			continue
		case len(b.entries)+rem <= t.minEntry:
			b.entries = append(b.entries, e)
			bb = bb.Union(e.bounds)
			continue
		}
		enlA := ab.Union(e.bounds).Area() - ab.Area()
		enlB := bb.Union(e.bounds).Area() - bb.Area()
		if enlA < enlB || (enlA == enlB && ab.Area() <= bb.Area()) {
			a.entries = append(a.entries, e)
			ab = ab.Union(e.bounds)
		} else {
			b.entries = append(b.entries, e)
			bb = bb.Union(e.bounds)
		}
	}
	return a, b
}

func nodeBounds(n *rtreeNode) Rect {
	b := n.entries[0].bounds
	for _, e := range n.entries[1:] {
		b = b.Union(e.bounds)
	}
	return b
}

// BulkLoad builds the tree from scratch using sort-tile-recursive packing,
// replacing any existing content. It is the preferred way to index a
// dataset known up front (the geostore uses it after ingest).
func (t *RTree) BulkLoad(bounds []Rect, data []int64) {
	if len(bounds) != len(data) {
		panic("geom: BulkLoad bounds/data length mismatch")
	}
	t.size = len(bounds)
	if len(bounds) == 0 {
		t.root = &rtreeNode{leaf: true}
		return
	}
	entries := make([]rtreeEntry, len(bounds))
	for i := range bounds {
		entries[i] = rtreeEntry{bounds: bounds[i], data: data[i]}
	}
	nodes := t.packLeaves(entries)
	for len(nodes) > 1 {
		nodes = t.packLevel(nodes)
	}
	t.root = nodes[0]
}

// packLeaves sorts entries into STR tiles and produces leaf nodes.
func (t *RTree) packLeaves(entries []rtreeEntry) []*rtreeNode {
	cap := t.maxEntry
	n := len(entries)
	leafCount := (n + cap - 1) / cap
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].bounds.Center().X < entries[j].bounds.Center().X
	})
	perSlice := (n + sliceCount - 1) / sliceCount
	var leaves []*rtreeNode
	for s := 0; s < n; s += perSlice {
		end := s + perSlice
		if end > n {
			end = n
		}
		slice := entries[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].bounds.Center().Y < slice[j].bounds.Center().Y
		})
		for i := 0; i < len(slice); i += cap {
			j := i + cap
			if j > len(slice) {
				j = len(slice)
			}
			leaf := &rtreeNode{leaf: true, entries: append([]rtreeEntry(nil), slice[i:j]...)}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packLevel groups child nodes into parent nodes, STR style.
func (t *RTree) packLevel(children []*rtreeNode) []*rtreeNode {
	entries := make([]rtreeEntry, len(children))
	for i, c := range children {
		entries[i] = rtreeEntry{bounds: nodeBounds(c), child: c}
	}
	cap := t.maxEntry
	n := len(entries)
	nodeCount := (n + cap - 1) / cap
	sliceCount := int(math.Ceil(math.Sqrt(float64(nodeCount))))
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].bounds.Center().X < entries[j].bounds.Center().X
	})
	perSlice := (n + sliceCount - 1) / sliceCount
	var parents []*rtreeNode
	for s := 0; s < n; s += perSlice {
		end := s + perSlice
		if end > n {
			end = n
		}
		slice := entries[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].bounds.Center().Y < slice[j].bounds.Center().Y
		})
		for i := 0; i < len(slice); i += cap {
			j := i + cap
			if j > len(slice) {
				j = len(slice)
			}
			parents = append(parents, &rtreeNode{entries: append([]rtreeEntry(nil), slice[i:j]...)})
		}
	}
	return parents
}

// Search calls fn for every entry whose bounds intersect the window.
// Traversal stops early if fn returns false.
func (t *RTree) Search(window Rect, fn func(bounds Rect, data int64) bool) {
	t.search(t.root, window, fn)
}

func (t *RTree) search(n *rtreeNode, window Rect, fn func(Rect, int64) bool) bool {
	for _, e := range n.entries {
		if !e.bounds.Intersects(window) {
			continue
		}
		if n.leaf {
			if !fn(e.bounds, e.data) {
				return false
			}
		} else if !t.search(e.child, window, fn) {
			return false
		}
	}
	return true
}

// SearchContained calls fn for every entry whose bounds lie entirely inside
// the window.
func (t *RTree) SearchContained(window Rect, fn func(bounds Rect, data int64) bool) {
	t.searchContained(t.root, window, fn)
}

func (t *RTree) searchContained(n *rtreeNode, window Rect, fn func(Rect, int64) bool) bool {
	for _, e := range n.entries {
		if !e.bounds.Intersects(window) {
			continue
		}
		if n.leaf {
			if window.ContainsRect(e.bounds) {
				if !fn(e.bounds, e.data) {
					return false
				}
			}
		} else if !t.searchContained(e.child, window, fn) {
			return false
		}
	}
	return true
}

// nearestCand is one best-first search frontier entry: an interior node
// or a leaf entry, keyed by its rectangle distance to the query point.
type nearestCand struct {
	node *rtreeNode
	ent  rtreeEntry
	dist float64
	leaf bool
}

// nearestQueue is a min-heap over frontier entries (container/heap).
type nearestQueue []nearestCand

func (q nearestQueue) Len() int            { return len(q) }
func (q nearestQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q nearestQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nearestQueue) Push(x interface{}) { *q = append(*q, x.(nearestCand)) }
func (q *nearestQueue) Pop() interface{} {
	old := *q
	n := len(old)
	c := old[n-1]
	*q = old[:n-1]
	return c
}

// Nearest returns the k entries whose bounds are nearest to p (by
// rectangle distance), using best-first search over the tree with a
// container/heap priority queue, so each pop is O(log frontier) instead
// of a linear scan.
func (t *RTree) Nearest(p Point, k int) []int64 {
	if k <= 0 || t.size == 0 {
		return nil
	}
	queue := nearestQueue{{node: t.root, dist: 0}}
	heap.Init(&queue)
	var out []int64
	for queue.Len() > 0 && len(out) < k {
		c := heap.Pop(&queue).(nearestCand)
		if c.leaf {
			out = append(out, c.ent.data)
			continue
		}
		n := c.node
		for _, e := range n.entries {
			d := e.bounds.DistanceToPoint(p)
			if n.leaf {
				heap.Push(&queue, nearestCand{ent: e, dist: d, leaf: true})
			} else {
				heap.Push(&queue, nearestCand{node: e.child, dist: d})
			}
		}
	}
	return out
}

// Stats walks the tree and reports its node count and total entry slots
// (leaf data entries plus internal child entries), for memory
// accounting: each entry carries a Rect and a payload/child word.
func (t *RTree) Stats() (nodes, entries int) {
	var walk func(n *rtreeNode)
	walk = func(n *rtreeNode) {
		nodes++
		entries += len(n.entries)
		if n.leaf {
			return
		}
		for _, e := range n.entries {
			if e.child != nil {
				walk(e.child)
			}
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return nodes, entries
}
