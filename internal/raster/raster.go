// Package raster provides the multiband raster substrate for synthetic
// Sentinel imagery: geo-referenced grids, float32 band stacks, spectral
// indices, speckle filtering and resampling. It underlies the synthetic
// scene generator (internal/sentinel), the training-set tooling
// (internal/trainingset), the PROMET water model (internal/promet) and
// sea-ice mapping (internal/seaice).
package raster

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Grid geo-references a raster: Origin is the outer corner of cell (0,0)
// (minimum X, minimum Y), CellSize the square cell edge length, and
// Width x Height the dimensions in cells. Row index grows with Y.
type Grid struct {
	Origin   geom.Point
	CellSize float64
	Width    int
	Height   int
}

// NewGrid constructs a grid; it panics on non-positive dimensions (a
// programming error in workload setup).
func NewGrid(origin geom.Point, cellSize float64, width, height int) Grid {
	if cellSize <= 0 || width <= 0 || height <= 0 {
		panic(fmt.Sprintf("raster: invalid grid %vx%v cell %v", width, height, cellSize))
	}
	return Grid{Origin: origin, CellSize: cellSize, Width: width, Height: height}
}

// Bounds returns the grid's spatial extent.
func (g Grid) Bounds() geom.Rect {
	return geom.NewRect(g.Origin.X, g.Origin.Y,
		g.Origin.X+float64(g.Width)*g.CellSize,
		g.Origin.Y+float64(g.Height)*g.CellSize)
}

// CellCenter returns the centre coordinate of cell (col, row).
func (g Grid) CellCenter(col, row int) geom.Point {
	return geom.Point{
		X: g.Origin.X + (float64(col)+0.5)*g.CellSize,
		Y: g.Origin.Y + (float64(row)+0.5)*g.CellSize,
	}
}

// CellAt maps a point to its cell; ok is false outside the grid.
func (g Grid) CellAt(p geom.Point) (col, row int, ok bool) {
	col = int(math.Floor((p.X - g.Origin.X) / g.CellSize))
	row = int(math.Floor((p.Y - g.Origin.Y) / g.CellSize))
	if col < 0 || col >= g.Width || row < 0 || row >= g.Height {
		return 0, 0, false
	}
	return col, row, true
}

// NumCells returns Width*Height.
func (g Grid) NumCells() int { return g.Width * g.Height }

// Band is one named raster layer.
type Band struct {
	Name string
	Data []float32 // row-major, len == Width*Height
}

// Image is a band stack over one grid.
type Image struct {
	Grid  Grid
	Bands []Band
}

// NewImage allocates an image with zeroed bands of the given names.
func NewImage(grid Grid, bandNames ...string) *Image {
	img := &Image{Grid: grid, Bands: make([]Band, len(bandNames))}
	for i, n := range bandNames {
		img.Bands[i] = Band{Name: n, Data: make([]float32, grid.NumCells())}
	}
	return img
}

// BandIndex returns the index of the named band, or -1.
func (im *Image) BandIndex(name string) int {
	for i, b := range im.Bands {
		if b.Name == name {
			return i
		}
	}
	return -1
}

// At returns the value of band b at (col, row).
func (im *Image) At(b, col, row int) float32 {
	return im.Bands[b].Data[row*im.Grid.Width+col]
}

// Set assigns the value of band b at (col, row).
func (im *Image) Set(b, col, row int, v float32) {
	im.Bands[b].Data[row*im.Grid.Width+col] = v
}

// Pixel returns the band vector at (col, row).
func (im *Image) Pixel(col, row int) []float32 {
	out := make([]float32, len(im.Bands))
	idx := row*im.Grid.Width + col
	for i := range im.Bands {
		out[i] = im.Bands[i].Data[idx]
	}
	return out
}

// SizeBytes returns the in-memory payload size (the 5V volume metric).
func (im *Image) SizeBytes() int64 {
	return int64(len(im.Bands)) * int64(im.Grid.NumCells()) * 4
}

// BandStats summarizes one band.
type BandStats struct {
	Min, Max, Mean, StdDev float64
}

// Stats computes summary statistics of band b.
func (im *Image) Stats(b int) BandStats {
	data := im.Bands[b].Data
	if len(data) == 0 {
		return BandStats{}
	}
	st := BandStats{Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sumSq float64
	for _, v := range data {
		f := float64(v)
		sum += f
		sumSq += f * f
		if f < st.Min {
			st.Min = f
		}
		if f > st.Max {
			st.Max = f
		}
	}
	n := float64(len(data))
	st.Mean = sum / n
	variance := sumSq/n - st.Mean*st.Mean
	if variance > 0 {
		st.StdDev = math.Sqrt(variance)
	}
	return st
}

// NDVI computes the normalized difference vegetation index
// (nir-red)/(nir+red) into a new band; zero where the denominator is 0.
func NDVI(im *Image, redBand, nirBand int) Band {
	out := Band{Name: "NDVI", Data: make([]float32, im.Grid.NumCells())}
	red := im.Bands[redBand].Data
	nir := im.Bands[nirBand].Data
	for i := range out.Data {
		den := nir[i] + red[i]
		if den != 0 {
			out.Data[i] = (nir[i] - red[i]) / den
		}
	}
	return out
}

// NDWI computes the normalized difference water index
// (green-nir)/(green+nir) into a new band.
func NDWI(im *Image, greenBand, nirBand int) Band {
	out := Band{Name: "NDWI", Data: make([]float32, im.Grid.NumCells())}
	green := im.Bands[greenBand].Data
	nir := im.Bands[nirBand].Data
	for i := range out.Data {
		den := green[i] + nir[i]
		if den != 0 {
			out.Data[i] = (green[i] - nir[i]) / den
		}
	}
	return out
}

// BoxFilter returns band b smoothed with a (2r+1)^2 mean window, the
// simple multiplicative-noise (speckle) suppressor used on SAR
// backscatter before classification.
func BoxFilter(im *Image, b, r int) Band {
	w, h := im.Grid.Width, im.Grid.Height
	src := im.Bands[b].Data
	out := Band{Name: im.Bands[b].Name + "_filtered", Data: make([]float32, len(src))}
	for row := 0; row < h; row++ {
		for col := 0; col < w; col++ {
			var sum float32
			n := 0
			for dr := -r; dr <= r; dr++ {
				rr := row + dr
				if rr < 0 || rr >= h {
					continue
				}
				for dc := -r; dc <= r; dc++ {
					cc := col + dc
					if cc < 0 || cc >= w {
						continue
					}
					sum += src[rr*w+cc]
					n++
				}
			}
			out.Data[row*w+col] = sum / float32(n)
		}
	}
	return out
}

// LeeFilter applies the Lee adaptive speckle filter to band b with a
// (2r+1)^2 window: pixels in homogeneous areas approach the local mean,
// heterogeneous areas keep detail. sigma2 is the noise variance estimate.
func LeeFilter(im *Image, b, r int, sigma2 float64) Band {
	w, h := im.Grid.Width, im.Grid.Height
	src := im.Bands[b].Data
	out := Band{Name: im.Bands[b].Name + "_lee", Data: make([]float32, len(src))}
	for row := 0; row < h; row++ {
		for col := 0; col < w; col++ {
			var sum, sumSq float64
			n := 0
			for dr := -r; dr <= r; dr++ {
				rr := row + dr
				if rr < 0 || rr >= h {
					continue
				}
				for dc := -r; dc <= r; dc++ {
					cc := col + dc
					if cc < 0 || cc >= w {
						continue
					}
					v := float64(src[rr*w+cc])
					sum += v
					sumSq += v * v
					n++
				}
			}
			mean := sum / float64(n)
			variance := sumSq/float64(n) - mean*mean
			k := 0.0
			if variance > 0 {
				k = math.Max(0, (variance-sigma2)/variance)
			}
			center := float64(src[row*w+col])
			out.Data[row*w+col] = float32(mean + k*(center-mean))
		}
	}
	return out
}

// Resample produces a new image on a grid with the given cell size over
// the same extent, using nearest-neighbour sampling (adequate for the
// categorical and simulation rasters in this repository).
func Resample(im *Image, cellSize float64) *Image {
	b := im.Grid.Bounds()
	w := int(math.Ceil(b.Width() / cellSize))
	h := int(math.Ceil(b.Height() / cellSize))
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	grid := NewGrid(im.Grid.Origin, cellSize, w, h)
	names := make([]string, len(im.Bands))
	for i := range im.Bands {
		names[i] = im.Bands[i].Name
	}
	out := NewImage(grid, names...)
	for row := 0; row < h; row++ {
		for col := 0; col < w; col++ {
			p := grid.CellCenter(col, row)
			sc, sr, ok := im.Grid.CellAt(p)
			if !ok {
				// Clamp edge cells that fall just outside due to ceil.
				sc = clampInt(int((p.X-im.Grid.Origin.X)/im.Grid.CellSize), 0, im.Grid.Width-1)
				sr = clampInt(int((p.Y-im.Grid.Origin.Y)/im.Grid.CellSize), 0, im.Grid.Height-1)
			}
			for bi := range im.Bands {
				out.Set(bi, col, row, im.At(bi, sc, sr))
			}
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClassMap is a categorical raster (land-cover classes, ice types).
type ClassMap struct {
	Grid    Grid
	Classes []uint8 // row-major
}

// NewClassMap allocates a zeroed class map.
func NewClassMap(grid Grid) *ClassMap {
	return &ClassMap{Grid: grid, Classes: make([]uint8, grid.NumCells())}
}

// At returns the class at (col, row).
func (c *ClassMap) At(col, row int) uint8 { return c.Classes[row*c.Grid.Width+col] }

// Set assigns the class at (col, row).
func (c *ClassMap) Set(col, row int, v uint8) { c.Classes[row*c.Grid.Width+col] = v }

// Histogram counts cells per class.
func (c *ClassMap) Histogram() map[uint8]int {
	h := make(map[uint8]int)
	for _, v := range c.Classes {
		h[v]++
	}
	return h
}

// Agreement returns the fraction of cells where the two maps agree (the
// classification accuracy metric of E13/E12).
func Agreement(a, b *ClassMap) float64 {
	if len(a.Classes) != len(b.Classes) || len(a.Classes) == 0 {
		return 0
	}
	same := 0
	for i := range a.Classes {
		if a.Classes[i] == b.Classes[i] {
			same++
		}
	}
	return float64(same) / float64(len(a.Classes))
}

// ModeFilter replaces each cell with the majority class of its
// (2r+1)^2 neighbourhood — the standard post-classification cleanup that
// suppresses isolated speckle-induced misclassifications.
func ModeFilter(c *ClassMap, r int) *ClassMap {
	w, h := c.Grid.Width, c.Grid.Height
	out := NewClassMap(c.Grid)
	var counts [256]int
	for row := 0; row < h; row++ {
		for col := 0; col < w; col++ {
			var seen []uint8
			for dr := -r; dr <= r; dr++ {
				rr := row + dr
				if rr < 0 || rr >= h {
					continue
				}
				for dc := -r; dc <= r; dc++ {
					cc := col + dc
					if cc < 0 || cc >= w {
						continue
					}
					v := c.Classes[rr*w+cc]
					if counts[v] == 0 {
						seen = append(seen, v)
					}
					counts[v]++
				}
			}
			best := c.Classes[row*w+col]
			bestN := counts[best]
			for _, v := range seen {
				if counts[v] > bestN || (counts[v] == bestN && v < best) {
					best, bestN = v, counts[v]
				}
			}
			out.Classes[row*w+col] = best
			for _, v := range seen {
				counts[v] = 0
			}
		}
	}
	return out
}

// ConnectedComponents labels 4-connected regions of cells whose class
// equals target, returning the component count and per-component sizes.
// It is the iceberg detector's core (experiment E10/E13).
func ConnectedComponents(c *ClassMap, target uint8) (count int, sizes []int) {
	w, h := c.Grid.Width, c.Grid.Height
	visited := make([]bool, len(c.Classes))
	var stack []int
	for start := range c.Classes {
		if visited[start] || c.Classes[start] != target {
			continue
		}
		count++
		size := 0
		stack = stack[:0]
		stack = append(stack, start)
		visited[start] = true
		for len(stack) > 0 {
			idx := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			row, col := idx/w, idx%w
			for _, d := range [4][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}} {
				nr, nc := row+d[0], col+d[1]
				if nr < 0 || nr >= h || nc < 0 || nc >= w {
					continue
				}
				nidx := nr*w + nc
				if !visited[nidx] && c.Classes[nidx] == target {
					visited[nidx] = true
					stack = append(stack, nidx)
				}
			}
		}
		sizes = append(sizes, size)
	}
	return count, sizes
}
