package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// registryNameMethods are the telemetry.Registry methods whose first
// argument is a new metric family name.
var registryNameMethods = map[string]bool{
	"Counter": true, "CounterFunc": true, "CounterFamily": true,
	"Gauge": true, "GaugeFunc": true, "IntGaugeFunc": true, "GaugeFamily": true,
	"DurationHistogram": true, "ValueHistogram": true, "DurationHistogramFamily": true,
}

// familyLabelMethods maps the telemetry family methods that attach a
// labeled series to the index of their first label argument.
var familyLabelMethods = map[string]int{
	"Counter":    0, // CounterFamily.Counter(labels...)
	"Attach":     1, // CounterFamily.Attach(c, labels...)
	"AttachFunc": 1, // CounterFamily.AttachFunc(fn, labels...)
	"Const":      1, // GaugeFamily.Const(v, labels...)
	"IntFunc":    1, // GaugeFamily.IntFunc(fn, labels...)
	"Histogram":  0, // HistogramFamily.Histogram(labels...)
}

// Metricsreg keeps the metric namespace auditable: every family name
// handed to the telemetry registry must be (or be built from) a
// package-level constant, so the README metrics table, dashboards, and
// grep can enumerate the namespace without executing code; and every
// label value attached to a family must be closed at registration —
// a constant, or a range over a fixed all-constant list — so a request
// field can never mint unbounded label cardinality (the static
// complement of the runtime TestMetricsDocumentedInReadme). The
// telemetry package itself and _test.go files are exempt: test
// registries are never scraped.
var Metricsreg = &analysis.Analyzer{
	Name: "metricsreg",
	Doc: "metric names are package-level constants registered via\n" +
		"internal/telemetry; label sets are closed at registration",
	Run: runMetricsreg,
}

func runMetricsreg(pass *analysis.Pass) error {
	if pathHasDir(pass.PkgPath, "internal/telemetry") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.TestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeObj(pass.TypesInfo, call)
				if obj == nil || objPkgPath(obj) != "repro/internal/telemetry" {
					return true
				}
				recv := methodRecvName(obj)
				switch {
				case recv == "Registry" && registryNameMethods[obj.Name()]:
					if len(call.Args) > 0 && !isPkgLevelConstExpr(pass, call.Args[0]) {
						pass.Reportf(call.Args[0].Pos(),
							"metric name for %s must be a package-level constant (inline literals make the namespace ungreppable)",
							obj.Name())
					}
				default:
					start, ok := familyLabelMethods[obj.Name()]
					if !ok || !isFamilyRecv(recv) {
						return true
					}
					for i := start; i < len(call.Args); i++ {
						if !labelClosed(pass, fn, call.Args[i]) {
							pass.Reportf(call.Args[i].Pos(),
								"label value for %s.%s is not closed at registration: use a constant or range over a fixed list",
								recv, obj.Name())
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

func isFamilyRecv(recv string) bool {
	return recv == "CounterFamily" || recv == "GaugeFamily" || recv == "HistogramFamily"
}

// methodRecvName returns the receiver type name of a method object, ""
// for plain functions.
func methodRecvName(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isPkgLevelConstExpr reports whether e is a reference to (or constant
// expression built only from) package-level string constants.
func isPkgLevelConstExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return isPkgLevelConstObj(pass.TypesInfo.Uses[e])
	case *ast.SelectorExpr:
		return isPkgLevelConstObj(pass.TypesInfo.Uses[e.Sel])
	case *ast.BinaryExpr:
		return isPkgLevelConstExpr(pass, e.X) || isPkgLevelConstExpr(pass, e.Y)
	default:
		return false // inline literal
	}
}

func isPkgLevelConstObj(obj types.Object) bool {
	c, ok := obj.(*types.Const)
	if !ok || c.Pkg() == nil {
		return false
	}
	return c.Parent() == c.Pkg().Scope()
}

// labelClosed reports whether a label argument's value space is fixed
// at registration: a constant expression, or an identifier fed by a
// range over an all-constant string list (possibly via a package-level
// var), the idiom the storage io-error and store-memory families use.
func labelClosed(pass *analysis.Pass, fn *ast.FuncDecl, arg ast.Expr) bool {
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
		return true
	}
	id, ok := unparen(arg).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	for hops := 0; obj != nil && hops < 4; hops++ {
		src := definingExpr(pass, fn, obj)
		switch src := src.(type) {
		case *ast.Ident:
			obj = pass.TypesInfo.Uses[src]
		case *ast.CompositeLit: // range over literal resolved below
			return constStringList(pass, src)
		case ast.Expr:
			return false
		default:
			return false
		}
	}
	return false
}

// definingExpr finds, within fn, the expression that feeds obj: the
// range expression when obj is a range variable, or the matching RHS of
// a := / var declaration. Package-level vars resolve to their
// initializer.
func definingExpr(pass *analysis.Pass, fn *ast.FuncDecl, obj types.Object) ast.Expr {
	var out ast.Expr
	ast.Inspect(fn, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			for _, v := range []ast.Expr{n.Key, n.Value} {
				if id, ok := v.(*ast.Ident); ok && pass.TypesInfo.Defs[id] == obj {
					out = rangeSource(pass, n.X)
					return false
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Defs[id] == obj && i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
					out = n.Rhs[i]
					return false
				}
			}
		}
		return true
	})
	if out != nil {
		return out
	}
	return pkgVarInit(pass, obj)
}

// rangeSource resolves the ranged expression to a composite literal,
// following one identifier hop to a package-level var initializer.
func rangeSource(pass *analysis.Pass, x ast.Expr) ast.Expr {
	switch x := unparen(x).(type) {
	case *ast.CompositeLit:
		return x
	case *ast.Ident:
		return pkgVarInit(pass, pass.TypesInfo.Uses[x])
	case *ast.SelectorExpr:
		return pkgVarInit(pass, pass.TypesInfo.Uses[x.Sel])
	}
	return nil
}

// pkgVarInit returns the initializer expression of a package-level var.
func pkgVarInit(pass *analysis.Pass, obj types.Object) ast.Expr {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if pass.TypesInfo.Defs[name] == obj && i < len(vs.Values) {
						return vs.Values[i]
					}
				}
			}
		}
	}
	return nil
}

// constStringList reports whether lit is a slice/array literal whose
// elements are all constant strings.
func constStringList(pass *analysis.Pass, lit *ast.CompositeLit) bool {
	if len(lit.Elts) == 0 {
		return false
	}
	for _, el := range lit.Elts {
		tv, ok := pass.TypesInfo.Types[el]
		if !ok || tv.Value == nil {
			return false
		}
	}
	return true
}
