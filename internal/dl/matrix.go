// Package dl implements the scale-out deep learning substrate of
// Challenge C1: dense and convolutional neural networks trained with
// mini-batch SGD, and the two data-parallel distribution strategies the
// paper names (TensorFlow-style collective allreduce and parameter
// server), plus the HOPS-style parallel hyperparameter search of
// Challenge C5.
//
// Substitution note (DESIGN.md): workers are goroutines with model
// replicas instead of GPUs. The scale-out shape measured in experiment E4
// (near-linear speedup for allreduce, coordinator contention for the
// parameter server) is a property of the synchronization structure, which
// is faithfully reproduced; absolute throughput is not comparable.
package dl

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float32 matrix; rows are samples in batch
// tensors.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) Matrix {
	return Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// At returns element (r, c).
func (m Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r (shared storage).
func (m Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m Matrix) Clone() Matrix {
	out := Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]float32, len(m.Data))}
	copy(out.Data, m.Data)
	return out
}

// Zero sets all elements to 0 in place.
func (m Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul returns a*b.
func MatMul(a, b Matrix) Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("dl: matmul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransA returns aᵀ*b.
func MatMulTransA(a, b Matrix) Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("dl: matmulTransA shape mismatch %dx%d ᵀ* %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Cols, b.Cols)
	for r := 0; r < a.Rows; r++ {
		arow := a.Row(r)
		brow := b.Row(r)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB returns a*bᵀ.
func MatMulTransB(a, b Matrix) Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("dl: matmulTransB shape mismatch %dx%d * %dx%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float32
			for k := range arow {
				s += arow[k] * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// AddInPlace adds b into a element-wise.
func AddInPlace(a, b Matrix) {
	if len(a.Data) != len(b.Data) {
		panic("dl: add shape mismatch")
	}
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// ScaleInPlace multiplies all elements by s.
func ScaleInPlace(a Matrix, s float32) {
	for i := range a.Data {
		a.Data[i] *= s
	}
}

// GlorotInit fills m with Glorot-uniform values for a layer with the
// given fan-in and fan-out.
func GlorotInit(m Matrix, fanIn, fanOut int, rng *rand.Rand) {
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * limit
	}
}

// Argmax returns the index of the maximum element of v.
func Argmax(v []float32) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}
