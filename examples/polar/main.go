// Command polar runs the A2 application: sea-ice mapping from synthetic
// Sentinel-1 SAR, WMO-coded ice charts at 1 km, iceberg detection
// published into the semantic catalogue, and PCDSS delivery of the chart
// over a restricted 64 kbps link.
//
// Run: go run ./examples/polar
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/catalogue"
	"repro/internal/geom"
	"repro/internal/pcdss"
	"repro/internal/raster"
	"repro/internal/seaice"
	"repro/internal/sentinel"
	"repro/internal/sextant"
)

func main() {
	log.SetFlags(0)
	fmt.Println("== Polar TEP (A2): sea-ice mapping and delivery ==")

	// Scene: 12.8 km x 12.8 km at 100 m (S1 GRD-ish resolution).
	grid := raster.NewGrid(geom.Point{}, 100, 128, 128)
	truth := sentinel.GenerateIceChart(grid, 10, 31)
	scene := sentinel.GenerateS1Scene(truth, 8, 32)
	fmt.Printf("SAR scene: %dx%d px at %.0f m, true ice concentration %.2f\n",
		grid.Width, grid.Height, grid.CellSize, sentinel.IceConcentration(truth))

	// Train and apply the C1 sea-ice classifier.
	clf, acc := seaice.TrainClassifier(6000, 8, 12, 33)
	fmt.Printf("sea-ice classifier held-out accuracy: %.2f\n", acc)
	classified := seaice.ClassifyScene(scene, clf)
	fmt.Printf("scene classification agreement with truth: %.2f\n",
		raster.Agreement(truth, classified))

	// 1 km WMO product.
	chart, err := seaice.MakeChart(classified, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1 km ice chart: concentration %.2f, %d icebergs detected\n",
		chart.Concentration, chart.Icebergs)
	for class := uint8(0); class < sentinel.NumIceClasses; class++ {
		if f := chart.StageFractions[class]; f > 0 {
			fmt.Printf("  %-14s %5.1f%%\n", sentinel.IceClassName(class), f*100)
		}
	}

	// Publish iceberg observations into the semantic catalogue (C4).
	cat := catalogue.New()
	barrier := geom.Polygon{Shell: geom.Ring{
		{X: 2000, Y: 2000}, {X: 10000, Y: 2300}, {X: 10500, Y: 10500}, {X: 1800, Y: 9800},
	}}
	if err := cat.AddIceBarrier("NorskeOer", 2017, barrier); err != nil {
		log.Fatal(err)
	}
	for i, obs := range seaice.IcebergLocations(classified) {
		if err := cat.AddIceberg(fmt.Sprintf("obs%d", i), 2017,
			geom.Point{X: obs.X, Y: obs.Y}); err != nil {
			log.Fatal(err)
		}
	}
	cat.Build()
	embedded, err := cat.IcebergsEmbedded("NorskeOer", 2017)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("semantic catalogue: %d icebergs embedded in the barrier's 2017 maximum extent\n", embedded)

	// Sextant: publish the iceberg observations as a GeoJSON map layer.
	layer := sextant.Layer{Name: "icebergs-2017"}
	for i, obs := range seaice.IcebergLocations(classified) {
		layer.Features = append(layer.Features, sextant.Feature{
			ID:       fmt.Sprintf("berg%d", i),
			Geometry: geom.Point{X: obs.X, Y: obs.Y},
			Properties: map[string]any{
				"cells": obs.Cells,
			},
		})
	}
	var geojson bytes.Buffer
	if err := sextant.WriteGeoJSON(&geojson, layer); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Sextant layer %q: %d features, %d bytes of GeoJSON\n",
		layer.Name, len(layer.Features), geojson.Len())

	// PCDSS delivery over a restricted link (E14's scenario).
	raw := pcdss.EncodeRaw(chart.Map)
	rle := pcdss.EncodeRLE(chart.Map)
	qt := pcdss.EncodeQuadtree(chart.Map)
	link := pcdss.Link{BitsPerSecond: 64_000, RTT: 700 * time.Millisecond}
	fmt.Println("PCDSS delivery over 64 kbps satellite link:")
	fmt.Printf("  raw      %6d B  %8v\n", len(raw), link.TransferTime(len(raw)).Round(time.Millisecond))
	fmt.Printf("  RLE      %6d B  %8v\n", len(rle), link.TransferTime(len(rle)).Round(time.Millisecond))
	fmt.Printf("  quadtree %6d B  %8v\n", len(qt), link.TransferTime(len(qt)).Round(time.Millisecond))

	// Prioritized delivery schedule for a vessel.
	deliveries := pcdss.Schedule(link, []pcdss.ProductPriority{
		{Name: "ice-edge-chart", SafetyCritical: true, AgeHours: 2, SizeBytes: len(rle)},
		{Name: "weekly-overview", AgeHours: 96, SizeBytes: len(raw)},
		{Name: "iceberg-bulletin", SafetyCritical: true, AgeHours: 1, SizeBytes: 2048},
	})
	fmt.Println("delivery schedule:")
	for _, d := range deliveries {
		fmt.Printf("  %-16s completes after %v\n", d.Product.Name, d.CompletesAfter.Round(time.Millisecond))
	}
}
