package rdf

import (
	"strings"
	"testing"
)

func TestReadNTriplesRoundTrip(t *testing.T) {
	triples := []Triple{
		NewTriple(ex("a"), ex("p"), ex("b")),
		NewTriple(ex("a"), ex("name"), NewLiteral("Alice In Chains")),
		NewTriple(ex("a"), ex("age"), NewIntLiteral(30)),
		NewTriple(ex("a"), ex("label"), NewLangLiteral("hallo welt", "de")),
		NewTriple(ex("g"), NewIRI(GeoAsWKT), NewWKTLiteral("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))")),
		NewTriple(NewBlank("b0"), ex("p"), NewLiteral(`with "quotes" inside`)),
	}
	var sb strings.Builder
	for _, tr := range triples {
		sb.WriteString(tr.String() + "\n")
	}
	sb.WriteString("# a comment line\n\n")

	got, lines, err := ReadNTriples(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if lines != len(triples)+2 {
		t.Errorf("lines = %d", lines)
	}
	if len(got) != len(triples) {
		t.Fatalf("parsed %d triples, want %d", len(got), len(triples))
	}
	for i := range triples {
		if got[i] != triples[i] {
			t.Errorf("triple %d: %v != %v", i, got[i], triples[i])
		}
	}
}

func TestReadNTriplesErrors(t *testing.T) {
	bad := []string{
		`<http://a> <http://p> <http://b>`,              // no dot
		`<http://a> <http://p> .`,                       // missing object
		`<http://a> <http://p> "unterminated .`,         // bad literal
		`<http://a <http://p> <http://b> .`,             // unterminated IRI
		`<http://a> <http://p> <http://b> <http://c> .`, // 4 terms
		`plain words here .`,
	}
	for _, in := range bad {
		if _, _, err := ReadNTriples(strings.NewReader(in)); err == nil {
			t.Errorf("ReadNTriples(%q) succeeded, want error", in)
		}
	}
}

func TestLoadNTriples(t *testing.T) {
	st := NewStore()
	input := `<http://example.org/a> <http://example.org/p> "v1" .
<http://example.org/b> <http://example.org/p> "v2"^^<http://www.w3.org/2001/XMLSchema#integer> .
`
	n, err := st.LoadNTriples(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || st.Len() != 2 {
		t.Fatalf("loaded %d, store has %d", n, st.Len())
	}
}

func TestNTriplesGeoTriplesInterop(t *testing.T) {
	// Triples exported with Triple.String (as geotriples.WriteNTriples
	// does) must load back identically through the store.
	src := NewStore()
	src.Add(ex("f1"), NewIRI(GeoHasGeometry), ex("f1/geom"))
	src.Add(ex("f1/geom"), NewIRI(GeoAsWKT), NewWKTLiteral("POINT (3 4)"))
	var sb strings.Builder
	for _, tr := range src.Triples() {
		sb.WriteString(tr.String() + "\n")
	}
	dst := NewStore()
	if _, err := dst.LoadNTriples(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("round trip lost triples: %d -> %d", src.Len(), dst.Len())
	}
}
