// Package pcdss implements the Polar Code Decision Support System
// delivery layer of application A2: encoding ice charts compactly and
// delivering them to vessels over restricted communication links
// (experiment E14).
//
// Two codecs exploit the spatial coherence of WMO-coded charts: run
// length encoding of the row-major class stream, and a region quadtree
// that collapses uniform quadrants. A token-bucket link simulator models
// the Iridium-class connections the paper describes ("designed to be
// used over restricted communication links").
package pcdss

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/raster"
)

// EncodeRaw serializes a chart without compression: a 12-byte header
// (width, height, cell size omitted — carried out of band) plus one byte
// per cell.
func EncodeRaw(cm *raster.ClassMap) []byte {
	out := make([]byte, 8+len(cm.Classes))
	binary.BigEndian.PutUint32(out[0:], uint32(cm.Grid.Width))
	binary.BigEndian.PutUint32(out[4:], uint32(cm.Grid.Height))
	copy(out[8:], cm.Classes)
	return out
}

// DecodeRaw reverses EncodeRaw onto the given grid template.
func DecodeRaw(data []byte, grid raster.Grid) (*raster.ClassMap, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("pcdss: raw payload too short")
	}
	w := int(binary.BigEndian.Uint32(data[0:]))
	h := int(binary.BigEndian.Uint32(data[4:]))
	if w != grid.Width || h != grid.Height || len(data)-8 != w*h {
		return nil, fmt.Errorf("pcdss: raw payload shape mismatch")
	}
	cm := raster.NewClassMap(grid)
	copy(cm.Classes, data[8:])
	return cm, nil
}

// EncodeRLE run-length-encodes the row-major class stream as
// (class, count varint) pairs after the same 8-byte header.
func EncodeRLE(cm *raster.ClassMap) []byte {
	out := make([]byte, 8, 8+len(cm.Classes)/8)
	binary.BigEndian.PutUint32(out[0:], uint32(cm.Grid.Width))
	binary.BigEndian.PutUint32(out[4:], uint32(cm.Grid.Height))
	i := 0
	var varint [binary.MaxVarintLen64]byte
	for i < len(cm.Classes) {
		c := cm.Classes[i]
		j := i
		for j < len(cm.Classes) && cm.Classes[j] == c {
			j++
		}
		out = append(out, c)
		n := binary.PutUvarint(varint[:], uint64(j-i))
		out = append(out, varint[:n]...)
		i = j
	}
	return out
}

// DecodeRLE reverses EncodeRLE.
func DecodeRLE(data []byte, grid raster.Grid) (*raster.ClassMap, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("pcdss: RLE payload too short")
	}
	w := int(binary.BigEndian.Uint32(data[0:]))
	h := int(binary.BigEndian.Uint32(data[4:]))
	if w != grid.Width || h != grid.Height {
		return nil, fmt.Errorf("pcdss: RLE payload shape mismatch")
	}
	cm := raster.NewClassMap(grid)
	pos := 8
	idx := 0
	for pos < len(data) {
		c := data[pos]
		pos++
		run, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("pcdss: bad RLE varint at %d", pos)
		}
		pos += n
		for k := uint64(0); k < run; k++ {
			if idx >= len(cm.Classes) {
				return nil, fmt.Errorf("pcdss: RLE overflow")
			}
			cm.Classes[idx] = c
			idx++
		}
	}
	if idx != len(cm.Classes) {
		return nil, fmt.Errorf("pcdss: RLE underflow: %d of %d cells", idx, len(cm.Classes))
	}
	return cm, nil
}

// EncodeQuadtree encodes the chart as a region quadtree over the padded
// power-of-two square: a uniform quadrant stores 1 marker byte + class;
// a mixed quadrant stores a marker and recurses into 4 children. Out-of-
// bounds area is treated as class 0.
func EncodeQuadtree(cm *raster.ClassMap) []byte {
	out := make([]byte, 8, 64)
	binary.BigEndian.PutUint32(out[0:], uint32(cm.Grid.Width))
	binary.BigEndian.PutUint32(out[4:], uint32(cm.Grid.Height))
	size := 1
	for size < cm.Grid.Width || size < cm.Grid.Height {
		size <<= 1
	}
	var enc func(x, y, s int)
	enc = func(x, y, s int) {
		uniform, class := quadUniform(cm, x, y, s)
		if uniform {
			out = append(out, 0xFF, class)
			return
		}
		out = append(out, 0xFE)
		half := s / 2
		enc(x, y, half)
		enc(x+half, y, half)
		enc(x, y+half, half)
		enc(x+half, y+half, half)
	}
	enc(0, 0, size)
	return out
}

// quadUniform reports whether the s x s quadrant at (x, y) holds a single
// class (cells outside the grid count as class 0).
func quadUniform(cm *raster.ClassMap, x, y, s int) (bool, uint8) {
	var first uint8
	got := false
	for dy := 0; dy < s; dy++ {
		row := y + dy
		for dx := 0; dx < s; dx++ {
			col := x + dx
			var c uint8
			if col < cm.Grid.Width && row < cm.Grid.Height {
				c = cm.At(col, row)
			}
			if !got {
				first = c
				got = true
			} else if c != first {
				return false, 0
			}
		}
	}
	return true, first
}

// DecodeQuadtree reverses EncodeQuadtree.
func DecodeQuadtree(data []byte, grid raster.Grid) (*raster.ClassMap, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("pcdss: quadtree payload too short")
	}
	w := int(binary.BigEndian.Uint32(data[0:]))
	h := int(binary.BigEndian.Uint32(data[4:]))
	if w != grid.Width || h != grid.Height {
		return nil, fmt.Errorf("pcdss: quadtree payload shape mismatch")
	}
	cm := raster.NewClassMap(grid)
	size := 1
	for size < w || size < h {
		size <<= 1
	}
	pos := 8
	var dec func(x, y, s int) error
	dec = func(x, y, s int) error {
		if pos >= len(data) {
			return fmt.Errorf("pcdss: quadtree truncated at %d", pos)
		}
		marker := data[pos]
		pos++
		switch marker {
		case 0xFF:
			if pos >= len(data) {
				return fmt.Errorf("pcdss: quadtree missing class byte")
			}
			class := data[pos]
			pos++
			for dy := 0; dy < s; dy++ {
				row := y + dy
				if row >= h {
					break
				}
				for dx := 0; dx < s; dx++ {
					col := x + dx
					if col >= w {
						break
					}
					cm.Set(col, row, class)
				}
			}
			return nil
		case 0xFE:
			half := s / 2
			for _, q := range [4][2]int{{x, y}, {x + half, y}, {x, y + half}, {x + half, y + half}} {
				if err := dec(q[0], q[1], half); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("pcdss: bad quadtree marker 0x%02x", marker)
		}
	}
	if err := dec(0, 0, size); err != nil {
		return nil, err
	}
	return cm, nil
}

// Link models a restricted communication channel with fixed bandwidth
// and per-message latency.
type Link struct {
	// BitsPerSecond is the sustained throughput (e.g. 64_000 for an
	// Iridium Certus class link).
	BitsPerSecond float64
	// RTT is the per-message round-trip latency.
	RTT time.Duration
}

// TransferTime returns the modeled time to deliver a payload.
func (l Link) TransferTime(bytes int) time.Duration {
	if l.BitsPerSecond <= 0 {
		return l.RTT
	}
	secs := float64(bytes*8) / l.BitsPerSecond
	return l.RTT + time.Duration(secs*float64(time.Second))
}

// ProductPriority ranks deliverable products for a constrained link: the
// PCDSS bridging function. Smaller payloads of fresher, more
// safety-critical products go first.
type ProductPriority struct {
	Name string
	// SafetyCritical products (ice edge near route) outrank others.
	SafetyCritical bool
	AgeHours       float64
	SizeBytes      int
}

// Less orders p before q when p should be delivered first.
func (p ProductPriority) Less(q ProductPriority) bool {
	if p.SafetyCritical != q.SafetyCritical {
		return p.SafetyCritical
	}
	if p.AgeHours != q.AgeHours {
		return p.AgeHours < q.AgeHours
	}
	return p.SizeBytes < q.SizeBytes
}

// Schedule returns the delivery order and the cumulative time at which
// each product completes over the link.
func Schedule(link Link, products []ProductPriority) []Delivery {
	sorted := append([]ProductPriority(nil), products...)
	// insertion sort by priority (lists are short)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Less(sorted[j-1]); j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := make([]Delivery, len(sorted))
	var elapsed time.Duration
	for i, p := range sorted {
		elapsed += link.TransferTime(p.SizeBytes)
		out[i] = Delivery{Product: p, CompletesAfter: elapsed}
	}
	return out
}

// Delivery is one scheduled product delivery.
type Delivery struct {
	Product        ProductPriority
	CompletesAfter time.Duration
}
