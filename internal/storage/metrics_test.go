package storage

import (
	"bytes"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/storage/vfs"
	"repro/internal/telemetry"
)

// TestStorageMetricsExposition drives a full durability lifecycle with
// an instrumented DB and checks the storage_* families land on the
// registry with sane values and a lint-clean exposition.
func TestStorageMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	db, err := Open(dir, Options{NoSync: false, SyncEvery: 2, Metrics: NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	st := rdf.NewStore()
	if _, err := db.Recover(st); err != nil {
		t.Fatal(err)
	}
	st.SetJournal(db.Log())

	var batch []rdf.Triple
	for i := 0; i < 50; i++ {
		batch = append(batch, tr(i))
	}
	if err := st.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	body := buf.String()
	for _, want := range []string{
		"storage_wal_commits_total 1",
		"storage_wal_recorded_triples_total 50",
		"storage_snapshot_writes_total 1",
		"storage_snapshot_compactions_total 1",
		"storage_wal_rotations_total 1", // snapshot rotates the WAL
		"storage_wal_append_duration_seconds_count 1",
		"storage_wal_batch_triples_count 1",
		`storage_snapshot_duration_seconds_count{op="write"} 1`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
	if !strings.Contains(body, "storage_snapshot_last_bytes ") ||
		strings.Contains(body, "storage_snapshot_last_bytes 0\n") {
		t.Error("storage_snapshot_last_bytes not set to the snapshot size")
	}
	if findings := telemetry.LintExposition(body); len(findings) != 0 {
		t.Errorf("exposition lint: %v", findings)
	}

	// Recovery on a second instrumented registry observes the snapshot
	// load and the same gauge.
	reg2 := telemetry.NewRegistry()
	db2, err := Open(dir, Options{Metrics: NewMetrics(reg2)})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st2 := rdf.NewStore()
	stats, err := db2.Recover(st2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SnapshotTriples != 50 {
		t.Fatalf("recovered %d snapshot triples, want 50", stats.SnapshotTriples)
	}
	buf.Reset()
	reg2.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `storage_snapshot_duration_seconds_count{op="load"} 1`) {
		t.Errorf("recovery did not observe snapshot load:\n%s", buf.String())
	}
}

// TestRecoveryStatsTimeline checks the recovery report carries the
// phase durations, the snapshot version, and the torn-tail accounting
// after a simulated crash, and that it renders as a structured slog
// group.
func TestRecoveryStatsTimeline(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := rdf.NewStore()
	if _, err := db.Recover(st); err != nil {
		t.Fatal(err)
	}
	st.SetJournal(db.Log())
	var batch []rdf.Triple
	for i := 0; i < 20; i++ {
		batch = append(batch, tr(i))
	}
	if err := st.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: garbage after the last sealed record.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (err %v)", err)
	}
	f, err := vfs.OS.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st2 := rdf.NewStore()
	stats, err := db2.Recover(st2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WALTriples != 20 {
		t.Errorf("replayed %d triples, want 20", stats.WALTriples)
	}
	if stats.TornTailBytes != 3 {
		t.Errorf("TornTailBytes = %d, want 3", stats.TornTailBytes)
	}
	if stats.Duration <= 0 || stats.WALReplayDuration <= 0 {
		t.Errorf("timeline not populated: total %v, replay %v", stats.Duration, stats.WALReplayDuration)
	}
	if stats.Duration < stats.SnapshotLoadDuration+stats.WALReplayDuration {
		t.Errorf("total %v < load %v + replay %v", stats.Duration, stats.SnapshotLoadDuration, stats.WALReplayDuration)
	}

	// The stats log as one structured group, with damage fields present
	// only when there was damage.
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	logger.Info("recovered", "recovery", stats)
	line := logBuf.String()
	for _, want := range []string{`"wal_triples":20`, `"torn_tail_bytes":3`, `"wal_replay"`, `"total"`} {
		if !strings.Contains(line, want) {
			t.Errorf("slog line missing %s: %s", want, line)
		}
	}
	if strings.Contains(line, "corrupt_segments") {
		t.Errorf("undamaged recovery should omit corrupt_segments: %s", line)
	}
}

// TestInspectDirListing checks the offline directory inspection lists
// segments and snapshots with sizes, and that an open DB's Stats
// overlays live compaction state.
func TestInspectDirListing(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := rdf.NewStore()
	if _, err := db.Recover(st); err != nil {
		t.Fatal(err)
	}
	st.SetJournal(db.Log())
	var batch []rdf.Triple
	for i := 0; i < 30; i++ {
		batch = append(batch, tr(i))
	}
	if err := st.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Snapshot(st); err != nil {
		t.Fatal(err)
	}
	var more []rdf.Triple
	for i := 30; i < 40; i++ {
		more = append(more, tr(i))
	}
	if err := st.AddBatch(more); err != nil {
		t.Fatal(err)
	}

	live, err := db.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if live.SinceSnapshot != 10 {
		t.Errorf("SinceSnapshot = %d, want 10", live.SinceSnapshot)
	}
	if len(live.Snapshots) != 1 || live.Snapshots[0].Bytes == 0 || live.Snapshots[0].Version == 0 {
		t.Errorf("snapshots = %+v", live.Snapshots)
	}
	activeSeen := false
	for _, s := range live.Segments {
		if s.Active {
			activeSeen = true
			if s.Seq != 2 {
				t.Errorf("active segment seq = %d, want 2 (post-snapshot rotation)", s.Seq)
			}
		}
	}
	if !activeSeen {
		t.Error("no active segment marked")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Offline inspection of the closed directory.
	offline, err := InspectDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if offline.WALBytes == 0 || offline.SnapshotBytes == 0 {
		t.Errorf("offline sizes: wal %d, snap %d", offline.WALBytes, offline.SnapshotBytes)
	}
	if offline.SinceSnapshot != 0 {
		t.Errorf("offline SinceSnapshot = %d, want 0 (unknown)", offline.SinceSnapshot)
	}
	if n := len(offline.Segments); n == 0 || !offline.Segments[n-1].Active {
		t.Errorf("offline segments = %+v, want youngest marked active", offline.Segments)
	}

	if _, err := InspectDir(filepath.Join(dir, "nope")); err == nil {
		t.Error("InspectDir on a missing path should fail")
	}
}
