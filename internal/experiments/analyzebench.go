package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

// This file implements the analyze-overhead benchmark group behind
// `eebench -bench-group analyze -bench-out BENCH_analyze.json`: the
// EXPLAIN ANALYZE instrumentation measured against the plain executor
// on the two workload shapes that stress it most — a large scan (one
// counter bump per row per step) and R-tree-seeded spatial refinement
// (probe counters inside the refine loop). The plain rows double as the
// regression guard for the disabled-path cost: stats collection is a
// nil-check on the hot path, so plain ns/op must stay level with
// earlier BENCH_parallel.json large_scan/spatial_refine numbers. The
// workload list is shared with the repository-root
// BenchmarkAnalyzeOverhead_* benchmarks. A wal_append disabled/enabled
// pair (mirroring BenchmarkTelemetryOverhead_*) extends the same
// discipline to the storage telemetry: journaling with an instrumented
// log must stay level with the uninstrumented path.

// AnalyzeWorkloadNames selects the ParallelWorkloads entries measured
// by the analyze group.
var AnalyzeWorkloadNames = []string{"large_scan", "spatial_refine"}

// AnalyzeWorkloads resolves AnalyzeWorkloadNames against
// ParallelWorkloads.
func AnalyzeWorkloads() []ParallelWorkload {
	var out []ParallelWorkload
	for _, name := range AnalyzeWorkloadNames {
		for _, w := range ParallelWorkloads {
			if w.Name == name {
				out = append(out, w)
			}
		}
	}
	return out
}

// AnalyzeBenchResult is one measured (workload, mode) cell.
type AnalyzeBenchResult struct {
	Name    string `json:"name"` // workload name
	Mode    string `json:"mode"` // "plain" or "analyzed"
	Triples int    `json:"triples"`
	Rows    int    `json:"rows"`
	Iters   int    `json:"iters"`
	NsPerOp int64  `json:"ns_per_op"`
	// OverheadPct is the analyzed-vs-plain slowdown in percent (set on
	// analyzed rows only).
	OverheadPct float64 `json:"overhead_pct,omitempty"`
}

// AnalyzeBenchReport is the BENCH_analyze.json schema.
type AnalyzeBenchReport struct {
	Group     string               `json:"group"`
	Generated string               `json:"generated"`
	Triples   int                  `json:"triples"`
	CPUs      int                  `json:"cpus"`
	Results   []AnalyzeBenchResult `json:"results"`
}

// AnalyzeBench runs the analyze-overhead group and returns a printable
// table plus the JSON report. Both modes run the sequential executor:
// the comparison isolates what stats collection itself costs, not
// parallelism.
func AnalyzeBench(cfg Config) (*Table, *AnalyzeBenchReport) {
	features := cfg.scale(10000, 1000)
	iters := cfg.scale(5, 2)
	gst := ParallelBenchDataset(features)
	st := gst.RDF()

	t := &Table{
		ID:     "ANALYZE",
		Title:  "EXPLAIN ANALYZE overhead: instrumented executor vs plain",
		Header: []string{"workload", "mode", "rows", "wall_ms", "overhead_pct"},
		Notes:  "plain = stats sink nil (the production path); analyzed = per-step counters + timings collected",
	}
	rep := &AnalyzeBenchReport{
		Group:     "analyze",
		Generated: time.Now().UTC().Format(time.RFC3339),
		Triples:   st.Len(),
		CPUs:      runtime.NumCPU(),
	}

	measure := func(eval func() (*sparql.Results, error), min int) (int, time.Duration) {
		res, err := eval()
		if err != nil {
			panic(err)
		}
		if res.Len() < min {
			panic("analyze bench workload returned too few rows")
		}
		rows := res.Len()
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := eval(); err != nil {
				panic(err)
			}
		}
		return rows, time.Since(start) / time.Duration(iters)
	}

	for _, w := range AnalyzeWorkloads() {
		q := sparql.MustParse(w.Query)
		var plain, analyzed func() (*sparql.Results, error)
		if w.Spatial {
			plain = func() (*sparql.Results, error) { return gst.Query(q) }
			analyzed = func() (*sparql.Results, error) {
				res, _, err := gst.QueryAnalyze(context.Background(), q)
				return res, err
			}
		} else {
			plan, err := sparql.CompilePlan(st, q, sparql.PlanOpts{})
			if err != nil {
				panic(err)
			}
			plain = plan.Execute
			analyzed = func() (*sparql.Results, error) {
				res, _, err := plan.ExecuteAnalyzed(nil)
				return res, err
			}
		}

		rows, plainDur := measure(plain, w.MinRows)
		_, analyzedDur := measure(analyzed, w.MinRows)
		overhead := 0.0
		if plainDur > 0 {
			overhead = (float64(analyzedDur)/float64(plainDur) - 1) * 100
		}
		t.Rows = append(t.Rows,
			[]string{w.Name, "plain", i0(rows), ms(plainDur), ""},
			[]string{w.Name, "analyzed", i0(rows), ms(analyzedDur), f2(overhead)})
		rep.Results = append(rep.Results,
			AnalyzeBenchResult{Name: w.Name, Mode: "plain", Triples: st.Len(),
				Rows: rows, Iters: iters, NsPerOp: plainDur.Nanoseconds()},
			AnalyzeBenchResult{Name: w.Name, Mode: "analyzed", Triples: st.Len(),
				Rows: rows, Iters: iters, NsPerOp: analyzedDur.Nanoseconds(), OverheadPct: overhead})
	}

	// The storage-telemetry pair rides in the same group: WAL appends
	// with and without an instrumented log, mirroring the repository-root
	// BenchmarkTelemetryOverhead_* pair. The disabled path is the
	// production default (nil checks only); the enabled delta bounds what
	// attaching a registry costs.
	walTriples := cfg.scale(200000, 20000)
	baseTriples, baseDur := measureWALAppend(walTriples, nil)
	_, instDur := measureWALAppend(walTriples, storage.NewMetrics(telemetry.NewRegistry()))
	walOverhead := 0.0
	if baseDur > 0 {
		walOverhead = (float64(instDur)/float64(baseDur) - 1) * 100
	}
	t.Rows = append(t.Rows,
		[]string{"wal_append", "disabled", i0(baseTriples), ms(baseDur), ""},
		[]string{"wal_append", "enabled", i0(baseTriples), ms(instDur), f2(walOverhead)})
	rep.Results = append(rep.Results,
		AnalyzeBenchResult{Name: "wal_append", Mode: "disabled", Triples: walTriples,
			Rows: baseTriples, Iters: 1, NsPerOp: baseDur.Nanoseconds()},
		AnalyzeBenchResult{Name: "wal_append", Mode: "enabled", Triples: walTriples,
			Rows: baseTriples, Iters: 1, NsPerOp: instDur.Nanoseconds(), OverheadPct: walOverhead})
	return t, rep
}

// measureWALAppend journals n triples (group commits of 100, no fsync
// so the cost measured is CPU) into a throwaway log and returns the
// triple count and total wall time.
func measureWALAppend(n int, m *storage.Metrics) (int, time.Duration) {
	dir, err := os.MkdirTemp("", "eebench-wal-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	l, err := storage.CreateLog(filepath.Join(dir, "wal.log"), storage.Options{NoSync: true, Metrics: m})
	if err != nil {
		panic(err)
	}
	defer l.Close()
	pred := rdf.NewIRI("http://extremeearth.eu/ontology#value")
	start := time.Now()
	for i := 0; i < n; i++ {
		t := rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://extremeearth.eu/feature/%d", i)),
			pred, rdf.NewIntLiteral(int64(i)))
		if err := l.Record(t); err != nil {
			panic(err)
		}
		if i%100 == 99 {
			if err := l.Commit(); err != nil {
				panic(err)
			}
		}
	}
	if err := l.Commit(); err != nil {
		panic(err)
	}
	return n, time.Since(start)
}

// WriteAnalyzeBenchJSON writes the report to path (the conventional
// name is BENCH_analyze.json).
func WriteAnalyzeBenchJSON(path string, rep *AnalyzeBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
