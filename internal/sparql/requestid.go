package sparql

import "context"

// Request-ID context plumbing: the endpoint assigns (or propagates) an
// X-Request-ID per HTTP request and carries it down through the engine
// via context, so log lines emitted anywhere along endpoint → sparql →
// geostore correlate. It lives in this package because both layers
// already depend on sparql.

type requestIDKey struct{}

// WithRequestID returns a context carrying the request's trace ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the trace ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
