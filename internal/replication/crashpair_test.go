package replication

import (
	"errors"
	"testing"
	"time"

	"repro/internal/storage/vfs"
)

// This file is the pair crash-convergence property harness, the
// replication counterpart of storage's single-node crash simulation: a
// primary ships its WAL to a live replica while the scripted workload
// commits and compacts, a counting pass establishes each side's
// injection space, and then every point is hit with every fault kind
// on either node, the plug is pulled on both, and the recovered pair
// must reconverge to exactly the primary's acknowledged-batch prefix —
// with the epoch fence never regressing, and the replica re-seeding
// itself via Bootstrap when compaction pruned its cursor.

// runPairPhase drives one live phase over the two filesystems and
// reports how many batch commits the primary acknowledged. Failures
// are expected — the injected fault kills one side — so every error
// just ends that side's participation; convergence is asserted only
// after recovery.
func runPairPhase(pfs, rfs *vfs.ErrFS) (acked int) {
	pn, err := openNode(pfs)
	if err != nil {
		return 0
	}
	defer pn.close()
	if _, err := pn.db.BumpEpoch(); err != nil {
		return 0
	}
	feed := fastFeed(pn.db, nil)
	srv := newSwappableServer(feed)
	defer srv.Close()
	defer feed.Close()

	// The replica boots the way eeserve does: Bootstrap seeds the state
	// file (204 + start cursor here — no snapshot exists yet), then the
	// node opens and the applier runs. A fault anywhere in that sequence
	// just means the replica sits this phase out.
	var rep *Replica
	var rn *node
	if _, err := Bootstrap(srv.srv.Client(), srv.URL(), testToken, rfs, "db"); err == nil {
		if rn, err = openNode(rfs); err == nil {
			defer rn.close()
			if r, err := NewReplica(fastReplicaConfig(rn, srv.URL(), nil)); err == nil {
				rep = r
				go rep.Run()
				defer rep.Stop()
			}
		}
	}

	for k := 0; k < pairNumBatches; k++ {
		if err := pn.addBatch(k); err != nil {
			break
		}
		acked++
		// Pace the workload so shipping interleaves with commits and
		// compaction: an unpaced loop outruns the feed's first poll, and
		// the k==2 snapshot would prune the replica's start segment
		// before it ever fetched a frame. The wait is bounded so a
		// faulted side can't stall the phase.
		if rep != nil {
			k := k
			waitFor(20*time.Millisecond, func() bool {
				return rep.Status().Err != nil || rn.st.RDF().Len() >= (k+1)*pairBatchSize
			})
		}
		if k == 2 || k == 4 {
			pn.db.Snapshot(pn.st.RDF()) // failure keeps the store serviceable
		}
	}
	// Give shipping a moment so faults land mid-stream too, but don't
	// insist: a dead side just times the window out.
	if rep != nil {
		deadline := time.Now().Add(50 * time.Millisecond)
		for time.Now().Before(deadline) {
			if rep.Status().Err != nil || converged(rep, rn, acked) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	return acked
}

// recoverPair reboots both sides after the double power cut and
// asserts the pair reconverges to exactly the acked prefix without the
// epoch regressing. Returns with everything shut down.
func recoverPair(t *testing.T, pfs, rfs *vfs.ErrFS, acked int) {
	t.Helper()
	pn, err := openNode(pfs)
	if err != nil {
		t.Fatalf("primary reopen: %v", err)
	}
	defer pn.close()
	// The primary's own crash guarantee (pinned by the storage harness)
	// is the baseline the replica must match.
	if got := sortedStoreTriples(pn.st); !equalStrings(got, wantPairPrefix(acked)) {
		t.Fatalf("primary recovered %d triples, want the %d-batch prefix", len(got), acked)
	}
	epochBefore := pn.db.Epoch()
	epoch, err := pn.db.BumpEpoch()
	if err != nil {
		t.Fatalf("primary epoch bump: %v", err)
	}
	if epoch <= epochBefore {
		t.Fatalf("primary epoch regressed: %d after %d", epoch, epochBefore)
	}
	feed := fastFeed(pn.db, nil)
	srv := newSwappableServer(feed)
	defer srv.Close()
	defer feed.Close()

	rn, err := openNode(rfs)
	if err != nil {
		t.Fatalf("replica reopen: %v", err)
	}
	var rep *Replica
	var fenceBefore uint64
	if rep, err = NewReplica(fastReplicaConfig(rn, srv.URL(), nil)); err == nil {
		fenceBefore = rep.Status().Epoch
		go rep.Run()
	} else if !errors.Is(err, ErrReBootstrap) {
		// A fault that killed Bootstrap before the first state write
		// leaves a dir with no REPLICA file; anything else is a bug.
		rn.close()
		t.Fatalf("replica restart: %v", err)
	}

	settle := func() {
		waitFor(3*time.Second, func() bool {
			return rep.Status().Err != nil || converged(rep, rn, acked)
		})
	}
	if rep != nil {
		settle()
	}
	if rep == nil || errors.Is(rep.Status().Err, ErrReBootstrap) {
		// Either the replica never got far enough to have a stream
		// position, or compaction pruned its cursor while it was down:
		// the documented recovery for both is a wipe and a fresh
		// Bootstrap.
		if rep != nil {
			rep.Stop()
		}
		rn.close()
		fresh := vfs.NewErrFS()
		if _, err := Bootstrap(srv.srv.Client(), srv.URL(), testToken, fresh, "db"); err != nil {
			t.Fatalf("re-bootstrap: %v", err)
		}
		if rn, err = openNode(fresh); err != nil {
			t.Fatalf("re-bootstrap reopen: %v", err)
		}
		if rep, err = NewReplica(fastReplicaConfig(rn, srv.URL(), nil)); err != nil {
			rn.close()
			t.Fatalf("re-bootstrap replica: %v", err)
		}
		fenceBefore = 0 // a wiped replica starts a fresh fence
		go rep.Run()
		settle()
	}
	defer rn.close()
	defer rep.Stop()

	if s := rep.Status(); s.Err != nil {
		t.Fatalf("replica parked after recovery: %v", s.Err)
	}
	if !converged(rep, rn, acked) {
		t.Fatalf("pair never reconverged: %+v, replica %d triples, want %d batches",
			rep.Status(), rn.st.RDF().Len(), acked)
	}
	if got := sortedStoreTriples(rn.st); !equalStrings(got, wantPairPrefix(acked)) {
		t.Fatalf("replica converged to the wrong set: %d triples", len(got))
	}
	if s := rep.Status(); s.Epoch < fenceBefore || s.Epoch != epoch {
		t.Fatalf("epoch fence wrong after recovery: %d (had %d, primary %d)",
			s.Epoch, fenceBefore, epoch)
	}
}

// TestPairCrashConvergence is the property test: for every injection
// point on either node and every fault kind, the pair recovered after
// a double power cut reconverges to exactly the primary's
// acknowledged-batch prefix.
func TestPairCrashConvergence(t *testing.T) {
	// Counting pass: no faults, record each side's op space, and the
	// clean pair must also survive a plain double power cut.
	countP, countR := vfs.NewErrFS(), vfs.NewErrFS()
	if acked := runPairPhase(countP, countR); acked != pairNumBatches {
		t.Fatalf("clean pair acked %d of %d batches", acked, pairNumBatches)
	}
	primaryOps, replicaOps := countP.Ops(), countR.Ops()
	if primaryOps < 20 || replicaOps < 20 {
		t.Fatalf("suspiciously small injection space: primary %d, replica %d ops",
			primaryOps, replicaOps)
	}
	countP.PowerCut()
	countR.PowerCut()
	recoverPair(t, countP, countR, pairNumBatches)

	// The live phase is concurrent, so each side's op count varies a
	// little run to run; the recorded counts bound the sweep, and any
	// point past a given run's activity is simply a fault that never
	// fired — still a valid (if redundant) case.
	stride := 2
	if testing.Short() {
		stride = 7 // bounded sweep for the -race CI job
	}

	kinds := []struct {
		name  string
		fault func(op vfs.Op) error
	}{
		{"eio", func(vfs.Op) error { return vfs.ErrInjected }},
		{"enospc", func(vfs.Op) error { return vfs.ErrNoSpace }},
		{"powercut", func(vfs.Op) error { return vfs.ErrPowerCut }},
		{"torn", func(op vfs.Op) error {
			if op == vfs.OpWrite {
				return &vfs.TornWrite{Keep: 1, Err: vfs.ErrPowerCut}
			}
			return vfs.ErrPowerCut
		}},
	}
	sides := []struct {
		name string
		ops  int
	}{
		{"primary", primaryOps},
		{"replica", replicaOps},
	}

	for _, side := range sides {
		side := side
		for _, kind := range kinds {
			kind := kind
			t.Run(side.name+"/"+kind.name, func(t *testing.T) {
				for point := 0; point < side.ops; point += stride {
					pfs, rfs := vfs.NewErrFS(), vfs.NewErrFS()
					target := pfs
					if side.name == "replica" {
						target = rfs
					}
					target.SetFault(func(seq int, op vfs.Op, path string) error {
						if seq == point {
							return kind.fault(op)
						}
						return nil
					})
					acked := runPairPhase(pfs, rfs)
					target.SetFault(nil)
					pfs.PowerCut()
					rfs.PowerCut()
					recoverPair(t, pfs, rfs, acked)
				}
			})
		}
	}
}
