package storage

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/rdf"
	"repro/internal/storage/vfs"
)

// DB manages one durable data directory:
//
//	<dir>/snap-<version>.snap   compacted snapshots (dictionary + triples)
//	<dir>/wal-<seq>.log         append-only WAL segments
//
// Lifecycle: Open the directory, Recover into an empty store (loads the
// latest valid snapshot, replays every WAL segment in order), attach
// db.Log() to the store with rdf.Store.SetJournal, and periodically call
// Snapshot to compact. Replay is idempotent — the store deduplicates —
// so a crash between publishing a snapshot and pruning the WAL only
// costs redundant replay work, never data.
type DB struct {
	mu       sync.Mutex
	dir      string
	opts     Options
	fsys     vfs.FS   // opts.fsys(), resolved once at Open
	lockFile vfs.File // holds the flock guarding the directory
	log      *Log
	seq      int // active WAL segment sequence number
	// prevSnapSeq is the rotation boundary of the previous (second
	// newest) snapshot still on disk; segments at or before it are
	// covered by that snapshot and safe to prune.
	prevSnapSeq int
	mark        uint64 // log.Recorded() at the last snapshot (or recovery)
	recovered   bool
	epoch       uint64 // replication fencing epoch, mirrored from MANIFEST
}

// RecoveryStats is the structured timeline of what Recover found on
// disk and did about it. It implements slog.LogValuer so serving layers
// can log the whole report as one structured attribute.
type RecoveryStats struct {
	// SnapshotPath is the snapshot that seeded the store ("" if none);
	// SnapshotVersion is the store version it captured.
	SnapshotPath    string
	SnapshotVersion uint64
	// SnapshotTriples is the triple count loaded from the snapshot.
	SnapshotTriples int
	// SnapshotsSkipped counts newer snapshot generations that failed
	// verification and were skipped in favour of an older fallback;
	// UnparsableSnapshots counts snap-*.snap files whose name carries no
	// numeric version (invisible to recovery and pruning).
	SnapshotsSkipped    int
	UnparsableSnapshots int
	// WALSegments is the number of WAL segment files replayed or opened.
	WALSegments int
	// WALBatches and WALTriples count the replayed log records. Replayed
	// triples already present in the snapshot deduplicate silently.
	WALBatches int
	WALTriples int
	// CorruptSegments counts sealed (non-final) segments with damage
	// before their end; DroppedBytes sums the bytes skipped after the
	// damage. TornTailBytes is what OpenLog truncated from the youngest
	// segment (an expected crash artifact, not corruption).
	CorruptSegments int
	DroppedBytes    int64
	TornTailBytes   int64
	// SnapshotLoadDuration and WALReplayDuration split Duration, the
	// whole Recover wall time, into its two phases.
	SnapshotLoadDuration time.Duration
	WALReplayDuration    time.Duration
	Duration             time.Duration
}

// LogValue renders the recovery timeline as one slog group, so
// `slog.Any("recovery", stats)` produces structured fields in both text
// and JSON handlers.
func (s RecoveryStats) LogValue() slog.Value {
	attrs := []slog.Attr{
		slog.String("snapshot", s.SnapshotPath),
		slog.Uint64("snapshot_version", s.SnapshotVersion),
		slog.Int("snapshot_triples", s.SnapshotTriples),
		slog.Int("wal_segments", s.WALSegments),
		slog.Int("wal_batches", s.WALBatches),
		slog.Int("wal_triples", s.WALTriples),
		slog.Duration("snapshot_load", s.SnapshotLoadDuration),
		slog.Duration("wal_replay", s.WALReplayDuration),
		slog.Duration("total", s.Duration),
	}
	// Damage fields appear only when there was damage, keeping the
	// healthy-boot line short.
	if s.SnapshotsSkipped > 0 {
		attrs = append(attrs, slog.Int("snapshots_skipped", s.SnapshotsSkipped))
	}
	if s.UnparsableSnapshots > 0 {
		attrs = append(attrs, slog.Int("unparsable_snapshots", s.UnparsableSnapshots))
	}
	if s.CorruptSegments > 0 {
		attrs = append(attrs, slog.Int("corrupt_segments", s.CorruptSegments),
			slog.Int64("dropped_bytes", s.DroppedBytes))
	}
	if s.TornTailBytes > 0 {
		attrs = append(attrs, slog.Int64("torn_tail_bytes", s.TornTailBytes))
	}
	return slog.GroupValue(attrs...)
}

// Open prepares a DB over dir, creating the directory if needed, and
// takes an exclusive flock on <dir>/LOCK so two processes cannot append
// to the same WAL (the kernel releases the lock if the holder dies, so
// a crashed process never blocks recovery). Data files are not touched
// until Recover.
func Open(dir string, opts Options) (*DB, error) {
	fsys := opts.fsys()
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", dir, err)
	}
	lf, err := fsys.OpenFile(filepath.Join(dir, "LOCK"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", dir, err)
	}
	if err := lf.Lock(); err != nil {
		closeDiscard(opts.Metrics, lf)
		return nil, fmt.Errorf("storage: %s is in use by another process: %w", dir, err)
	}
	epoch, err := readManifestFS(fsys, dir)
	if err != nil {
		// A manifest that exists but cannot be trusted must stop the
		// boot: guessing an epoch would undermine the fencing it exists
		// to provide.
		closeDiscard(opts.Metrics, lf)
		return nil, err
	}
	return &DB{dir: dir, opts: opts, fsys: fsys, lockFile: lf, epoch: epoch}, nil
}

// FS returns the filesystem the DB runs against (vfs.OS unless the
// Options injected another). The replication layer uses it so feed-side
// snapshot serving and replica-side state files live behind the same
// fault-injection seam as the rest of storage.
func (db *DB) FS() vfs.FS { return db.fsys }

// Dir returns the managed directory.
func (db *DB) Dir() string { return db.dir }

func (db *DB) snapPath(version uint64) string {
	return filepath.Join(db.dir, fmt.Sprintf("snap-%016d.snap", version))
}

func (db *DB) segPath(seq int) string {
	return filepath.Join(db.dir, fmt.Sprintf("wal-%06d.log", seq))
}

// listSnapshots returns (path, version) pairs sorted newest first.
// Files matching snap-*.snap whose name does not carry a numeric
// version are returned separately so Recover can warn about them —
// they would otherwise be silently invisible to recovery and pruning.
func (db *DB) listSnapshots() (snaps []SnapshotInfo, unparsable []string, err error) {
	paths, err := db.fsys.Glob(filepath.Join(db.dir, "snap-*.snap"))
	if err != nil {
		return nil, nil, err
	}
	for _, p := range paths {
		var v uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "snap-%d.snap", &v); err != nil {
			unparsable = append(unparsable, p)
			continue
		}
		snaps = append(snaps, SnapshotInfo{Path: p, Version: v})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Version > snaps[j].Version })
	return snaps, unparsable, nil
}

// listSegments returns (path, seq) pairs sorted oldest first.
func (db *DB) listSegments() ([]struct {
	Path string
	Seq  int
}, error) {
	paths, err := db.fsys.Glob(filepath.Join(db.dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	var out []struct {
		Path string
		Seq  int
	}
	for _, p := range paths {
		var s int
		if _, err := fmt.Sscanf(filepath.Base(p), "wal-%d.log", &s); err != nil {
			continue
		}
		out = append(out, struct {
			Path string
			Seq  int
		}{p, s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// Recover loads the directory's state into st (which must be empty):
// the newest snapshot that passes verification seeds the store, older
// generations are fallbacks for a corrupt newest, and every WAL segment
// then replays in sequence order with torn tails tolerated. Afterwards
// the youngest segment is open for appending and Log() is usable.
// Recover does not attach the journal to st — do that after it returns,
// so replayed triples are not re-journaled.
func (db *DB) Recover(st *rdf.Store) (RecoveryStats, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	var stats RecoveryStats
	if db.recovered {
		return stats, fmt.Errorf("storage: Recover called twice")
	}
	recoverStart := time.Now()

	snaps, unparsable, err := db.listSnapshots()
	if err != nil {
		return stats, err
	}
	stats.UnparsableSnapshots = len(unparsable)
	for _, p := range unparsable {
		fmt.Fprintf(os.Stderr, "storage: ignoring %s: snapshots must be named snap-<version>.snap to be recovered\n", p)
	}
	for _, s := range snaps {
		loadStart := time.Now()
		info, err := loadSnapshotFileFS(db.fsys, s.Path, st)
		if err != nil {
			fmt.Fprintf(os.Stderr, "storage: skipping unreadable snapshot %s: %v\n", s.Path, err)
			stats.SnapshotsSkipped++
			continue
		}
		stats.SnapshotPath = s.Path
		stats.SnapshotVersion = info.Version
		stats.SnapshotTriples = info.Triples
		stats.SnapshotLoadDuration = time.Since(loadStart)
		if m := db.opts.Metrics; m != nil {
			m.snapshotLoad.ObserveDuration(stats.SnapshotLoadDuration)
			if fi, statErr := db.fsys.Stat(s.Path); statErr == nil {
				m.snapshotBytes.Set(fi.Size())
			}
		}
		break
	}

	replayStart := time.Now()
	replay := func(batch []rdf.Triple) error {
		for _, t := range batch {
			st.AddTriple(t)
		}
		stats.WALBatches++
		stats.WALTriples += len(batch)
		return nil
	}
	segs, err := db.listSegments()
	if err != nil {
		return stats, err
	}
	stats.WALSegments = len(segs)
	if len(segs) == 0 {
		db.seq = 1
		db.log, err = CreateLog(db.segPath(db.seq), db.opts)
		if err != nil {
			return stats, err
		}
		stats.WALSegments = 1
	} else {
		for _, s := range segs[:len(segs)-1] {
			dropped, err := replayLogFS(db.fsys, s.Path, replay)
			if err != nil {
				return stats, err
			}
			if dropped > 0 {
				// A sealed (non-final) segment ending in damage is real
				// corruption, not a crash-torn tail; recovery proceeds
				// with what is readable, but loudly.
				stats.CorruptSegments++
				stats.DroppedBytes += dropped
				fmt.Fprintf(os.Stderr,
					"storage: WARNING: sealed WAL segment %s is corrupt %d bytes before its end; records after the damage were skipped\n",
					s.Path, dropped)
			}
		}
		last := segs[len(segs)-1]
		db.log, err = OpenLog(last.Path, db.opts, replay)
		if err != nil {
			return stats, err
		}
		db.seq = last.Seq
		stats.TornTailBytes = db.log.TornBytes()
	}
	stats.WALReplayDuration = time.Since(replayStart)
	stats.Duration = time.Since(recoverStart)
	db.mark = db.log.Recorded()
	db.recovered = true
	return stats, nil
}

// Log returns the active WAL, ready to attach as the store's journal.
// Only valid after Recover.
func (db *DB) Log() *Log { return db.log }

// Degraded reports the WAL's sticky failure, nil while healthy. Once
// non-nil the store is read-only: queries keep working against the
// in-memory state, writes are refused, and the only way back is a
// restart (Recover replays what was durably committed). Serving layers
// poll this to gate write endpoints and report health.
func (db *DB) Degraded() error {
	db.mu.Lock()
	log := db.log
	db.mu.Unlock()
	if log == nil {
		return nil
	}
	return log.Err()
}

// SinceSnapshot returns the number of triples journaled since the last
// snapshot (or since recovery). Serving layers use it to trigger
// background compaction.
func (db *DB) SinceSnapshot() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.log == nil {
		return 0
	}
	return db.log.Recorded() - db.mark
}

// Snapshot captures st into a new snapshot file and compacts the WAL:
//
//  1. the WAL rotates to a fresh segment (a cheap barrier — every triple
//     journaled before rotation is durable in the old segments and,
//     because Record runs under the store's write lock, also applied);
//  2. the store is captured (a superset of those segments) and written
//     to snap-<version>.snap via tmp-file + rename;
//  3. pre-rotation segments and older snapshots are pruned.
//
// A crash at any point leaves a directory Recover handles: before the
// rename the old snapshot + all segments reconstruct everything, after
// it redundant segments merely replay into deduplicating adds.
// Concurrent writes are never blocked for longer than the rotation.
func (db *DB) Snapshot(st *rdf.Store) (string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.recovered || db.log == nil {
		return "", fmt.Errorf("storage: Snapshot before Recover or after Close")
	}
	if err := st.JournalErr(); err != nil {
		return "", err
	}
	newSeq := db.seq + 1
	if err := db.log.Rotate(db.segPath(newSeq)); err != nil {
		return "", err
	}
	oldSeq := db.seq
	db.seq = newSeq
	// Sample the compaction mark at rotation: everything recorded before
	// it will be in this snapshot. Triples journaled while the snapshot
	// file is being written stay counted in SinceSnapshot even if the
	// capture happens to include them — over-triggering compaction is
	// safe, never compacting a WAL tail is not.
	mark := db.log.Recorded()

	terms, triples, version := st.SnapshotData()
	// The file name must order strictly above every snapshot already on
	// disk, whatever its number: a hand-seeded snapshot with an inflated
	// name (eecat -pack users pick their own) must never shadow newer
	// runtime snapshots on the next recovery.
	nameVer := version
	if snaps, _, err := db.listSnapshots(); err == nil && len(snaps) > 0 && snaps[0].Version >= nameVer {
		nameVer = snaps[0].Version + 1
	}
	path := db.snapPath(nameVer)
	writeStart := time.Now()
	if err := writeSnapshotData(db.fsys, db.opts.Metrics, path, terms, triples, version); err != nil {
		// The write path cleaned up its .tmp; the previous snapshot
		// generation and every WAL segment are untouched, so the store is
		// fully recoverable — the caller just retries later. The rotation
		// above stands (harmless: an extra small segment).
		return "", err
	}
	if m := db.opts.Metrics; m != nil {
		m.snapshotWrite.ObserveDuration(time.Since(writeStart))
		m.snapshotWrites.Inc()
		m.compactions.Inc()
		if fi, err := db.fsys.Stat(path); err == nil {
			m.snapshotBytes.Set(fi.Size())
		}
	}

	// Prune, keeping TWO snapshot generations so a later CRC failure in
	// the newest can still fall back to the previous one — which needs
	// the segments recorded after *its* rotation boundary, so only
	// segments at or before the previous snapshot's boundary go.
	if segs, err := db.listSegments(); err == nil {
		for _, s := range segs {
			if s.Seq <= db.prevSnapSeq {
				if db.fsys.Remove(s.Path) == nil && db.opts.Metrics != nil {
					db.opts.Metrics.segmentsPruned.Inc()
				}
			}
		}
	}
	if snaps, _, err := db.listSnapshots(); err == nil {
		kept := 0
		for _, s := range snaps { // newest first
			if s.Version >= nameVer {
				continue // the generation just written
			}
			kept++
			if kept > 1 {
				// Pruning is best-effort — a stale snapshot is harmless for
				// correctness (recovery picks the newest) — but a failed
				// delete still counts, or the directory grows unseen.
				if err := db.fsys.Remove(s.Path); err != nil {
					db.opts.Metrics.ioError("remove")
				}
			}
		}
	}
	db.prevSnapSeq = oldSeq
	db.mark = mark
	return path, nil
}

// Close seals and closes the WAL and releases the directory lock. The
// DB is unusable afterwards.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	var err error
	if db.log != nil {
		err = db.log.Close()
		db.log = nil
	}
	if db.lockFile != nil {
		// Dropping the fd releases the flock; the WAL close error stays
		// primary, but a LOCK-file close failure is still worth returning
		// (and counting) rather than losing — the flock may linger.
		if cerr := db.lockFile.Close(); cerr != nil {
			db.opts.Metrics.ioError("close")
			if err == nil {
				err = fmt.Errorf("storage: close LOCK: %w", cerr)
			}
		}
		db.lockFile = nil
	}
	return err
}
