package interlink

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// makeEntities returns n entities with small square geometries scattered
// over a 1000x1000 extent.
func makeEntities(n int, seed int64, prefix string) []Entity {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entity, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 1000
		y := rng.Float64() * 1000
		size := 1 + rng.Float64()*4
		out[i] = Entity{
			IRI: fmt.Sprintf("http://ex/%s/%d", prefix, i),
			Geometry: geom.Polygon{Shell: geom.Ring{
				{X: x, Y: y}, {X: x + size, Y: y},
				{X: x + size, Y: y + size}, {X: x, Y: y + size},
			}},
		}
	}
	return out
}

func linkSet(links []Link) map[Link]bool {
	m := make(map[Link]bool, len(links))
	for _, l := range links {
		m[l] = true
	}
	return m
}

func TestBlockedMatchesNaive(t *testing.T) {
	a := makeEntities(150, 1, "a")
	b := makeEntities(150, 2, "b")
	cfg := Config{Relation: RelIntersects}
	truth, stNaive := DiscoverNaive(a, b, cfg)
	got, stBlocked := DiscoverBlocked(a, b, cfg)

	if len(got) != len(truth) {
		t.Fatalf("blocked found %d links, naive %d", len(got), len(truth))
	}
	gotSet := linkSet(got)
	for _, l := range truth {
		if !gotSet[l] {
			t.Errorf("blocked missed link %v", l)
		}
	}
	if Recall(got, truth) != 1.0 {
		t.Error("recall < 1.0")
	}
	if stBlocked.Comparisons >= stNaive.Comparisons {
		t.Errorf("blocking did not reduce comparisons: %d vs %d",
			stBlocked.Comparisons, stNaive.Comparisons)
	}
}

func TestIndexedMatchesNaive(t *testing.T) {
	a := makeEntities(150, 5, "a")
	b := makeEntities(150, 6, "b")
	for _, rel := range []Relation{RelIntersects, RelWithin, RelContains, RelNear} {
		cfg := Config{Relation: rel, Distance: 12}
		truth, stNaive := DiscoverNaive(a, b, cfg)
		got, st := DiscoverIndexed(a, b, cfg)
		if len(got) != len(truth) {
			t.Fatalf("%v: indexed found %d links, naive %d", rel, len(got), len(truth))
		}
		gotSet := linkSet(got)
		for _, l := range truth {
			if !gotSet[l] {
				t.Errorf("%v: indexed missed link %v", rel, l)
			}
		}
		if Recall(got, truth) != 1.0 {
			t.Errorf("%v: recall < 1.0", rel)
		}
		if st.Comparisons >= stNaive.Comparisons {
			t.Errorf("%v: index join did not reduce comparisons: %d vs %d",
				rel, st.Comparisons, stNaive.Comparisons)
		}
	}
}

func TestMetaBlockedMatchesNaive(t *testing.T) {
	a := makeEntities(150, 3, "a")
	b := makeEntities(150, 4, "b")
	for _, rel := range []Relation{RelIntersects, RelWithin, RelContains} {
		cfg := Config{Relation: rel, Workers: 4}
		truth, _ := DiscoverNaive(a, b, cfg)
		got, st := DiscoverMetaBlocked(a, b, cfg)
		if len(got) != len(truth) {
			t.Fatalf("%v: meta-blocked %d links, naive %d", rel, len(got), len(truth))
		}
		gotSet := linkSet(got)
		for _, l := range truth {
			if !gotSet[l] {
				t.Errorf("%v: missed link %v", rel, l)
			}
		}
		if st.Blocks == 0 && len(truth) > 0 {
			t.Errorf("%v: no blocks processed", rel)
		}
	}
}

func TestMetaBlockedNoDuplicates(t *testing.T) {
	// Entities spanning multiple cells must not produce duplicate links.
	a := []Entity{{IRI: "a0", Geometry: geom.NewRect(0, 0, 50, 50)}}
	b := []Entity{{IRI: "b0", Geometry: geom.NewRect(10, 10, 60, 60)}}
	cfg := Config{Relation: RelIntersects, CellSize: 10, Workers: 2}
	links, _ := DiscoverMetaBlocked(a, b, cfg)
	if len(links) != 1 {
		t.Fatalf("links = %d, want 1 (no duplicates): %v", len(links), links)
	}
}

func TestMetaBlockedFewerComparisonsThanBlocked(t *testing.T) {
	// Large geometries that span many cells: plain blocking repeats the
	// pair per shared cell, meta-blocking compares once.
	rng := rand.New(rand.NewSource(5))
	var a, b []Entity
	for i := 0; i < 60; i++ {
		x, y := rng.Float64()*500, rng.Float64()*500
		a = append(a, Entity{IRI: fmt.Sprintf("a%d", i), Geometry: geom.NewRect(x, y, x+80, y+80)})
		x, y = rng.Float64()*500, rng.Float64()*500
		b = append(b, Entity{IRI: fmt.Sprintf("b%d", i), Geometry: geom.NewRect(x, y, x+80, y+80)})
	}
	cfg := Config{Relation: RelIntersects, CellSize: 20}
	_, stB := DiscoverBlocked(a, b, cfg)
	_, stM := DiscoverMetaBlocked(a, b, cfg)
	if stM.Comparisons >= stB.Comparisons {
		t.Errorf("meta-blocking comparisons %d >= blocked %d", stM.Comparisons, stB.Comparisons)
	}
	// And both must still find the same links as naive.
	truth, _ := DiscoverNaive(a, b, cfg)
	gotB, _ := DiscoverBlocked(a, b, cfg)
	gotM, _ := DiscoverMetaBlocked(a, b, cfg)
	if len(gotB) != len(truth) || len(gotM) != len(truth) {
		t.Errorf("links: naive=%d blocked=%d meta=%d", len(truth), len(gotB), len(gotM))
	}
}

func TestNearRelation(t *testing.T) {
	a := []Entity{{IRI: "a0", Geometry: geom.Point{X: 0, Y: 0}}}
	b := []Entity{
		{IRI: "near", Geometry: geom.Point{X: 3, Y: 4}},    // distance 5
		{IRI: "far", Geometry: geom.Point{X: 100, Y: 100}}, // distance ~141
	}
	cfg := Config{Relation: RelNear, Distance: 10}
	truth, _ := DiscoverNaive(a, b, cfg)
	if len(truth) != 1 || truth[0].Target != "near" {
		t.Fatalf("naive near links: %v", truth)
	}
	got, _ := DiscoverMetaBlocked(a, b, cfg)
	if len(got) != 1 || got[0].Target != "near" {
		t.Fatalf("meta-blocked near links: %v", got)
	}
	gotB, _ := DiscoverBlocked(a, b, cfg)
	if len(gotB) != 1 {
		t.Fatalf("blocked near links: %v", gotB)
	}
}

func TestNearPaddingCoversDistance(t *testing.T) {
	// Points exactly Distance apart in different cells must be found.
	a := []Entity{{IRI: "a0", Geometry: geom.Point{X: 0, Y: 0}}}
	b := []Entity{{IRI: "b0", Geometry: geom.Point{X: 9.9, Y: 0}}}
	cfg := Config{Relation: RelNear, Distance: 10, CellSize: 2}
	got, _ := DiscoverMetaBlocked(a, b, cfg)
	if len(got) != 1 {
		t.Fatalf("padded blocking missed a near pair: %v", got)
	}
}

func TestContainsDirectionality(t *testing.T) {
	big := Entity{IRI: "big", Geometry: geom.NewRect(0, 0, 100, 100)}
	small := Entity{IRI: "small", Geometry: geom.NewRect(10, 10, 20, 20)}
	links, _ := DiscoverNaive([]Entity{big}, []Entity{small}, Config{Relation: RelContains})
	if len(links) != 1 {
		t.Fatalf("contains links = %v", links)
	}
	links, _ = DiscoverNaive([]Entity{big}, []Entity{small}, Config{Relation: RelWithin})
	if len(links) != 0 {
		t.Fatalf("within links = %v, want none", links)
	}
	links, _ = DiscoverNaive([]Entity{small}, []Entity{big}, Config{Relation: RelWithin})
	if len(links) != 1 {
		t.Fatalf("within (reversed) links = %v", links)
	}
}

func TestEmptyInputs(t *testing.T) {
	cfg := Config{Relation: RelIntersects}
	if links, st := DiscoverNaive(nil, nil, cfg); len(links) != 0 || st.Comparisons != 0 {
		t.Error("naive on empty inputs")
	}
	if links, _ := DiscoverBlocked(nil, nil, cfg); len(links) != 0 {
		t.Error("blocked on empty inputs")
	}
	if links, _ := DiscoverMetaBlocked(nil, nil, cfg); len(links) != 0 {
		t.Error("meta-blocked on empty inputs")
	}
}

func TestRecallMetric(t *testing.T) {
	truth := []Link{{Source: "a", Target: "b"}, {Source: "c", Target: "d"}}
	found := []Link{{Source: "a", Target: "b"}}
	if got := Recall(found, truth); got != 0.5 {
		t.Errorf("Recall = %v, want 0.5", got)
	}
	if got := Recall(nil, nil); got != 1 {
		t.Errorf("Recall(empty) = %v, want 1", got)
	}
}

func TestRelationString(t *testing.T) {
	if RelIntersects.String() != "sfIntersects" || RelNear.String() != "near" {
		t.Error("Relation.String mismatch")
	}
}

func TestDeterministicOutputOrder(t *testing.T) {
	a := makeEntities(80, 6, "a")
	b := makeEntities(80, 7, "b")
	cfg := Config{Relation: RelIntersects, Workers: 8}
	l1, _ := DiscoverMetaBlocked(a, b, cfg)
	l2, _ := DiscoverMetaBlocked(a, b, cfg)
	if len(l1) != len(l2) {
		t.Fatalf("non-deterministic link count: %d vs %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("non-deterministic order at %d: %v vs %v", i, l1[i], l2[i])
		}
	}
}
