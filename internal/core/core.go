// Package core is the ExtremeEarth platform facade (Challenge C5): it
// wires the substrates — Sentinel archive, HopsFS-style storage,
// Spark-like compute, deep learning, the geospatial RDF store and the
// semantic catalogue — into the end-to-end pipelines the paper's two
// applications use, and implements the information-extraction pipeline
// behind the paper's Variety figure (experiment E3: 1 PB of data ->
// ~750 000 datasets -> ~450 TB of information and knowledge).
package core

import (
	"fmt"

	"repro/internal/catalogue"
	"repro/internal/compute"
	"repro/internal/dl"
	"repro/internal/geom"
	"repro/internal/hopsfs"
	"repro/internal/kvstore"
	"repro/internal/raster"
	"repro/internal/sentinel"
)

// Platform aggregates the ExtremeEarth services.
type Platform struct {
	Archive   *sentinel.Archive
	Catalogue *catalogue.Catalogue
	Engine    *compute.Engine
	FS        *hopsfs.FS
}

// NewPlatform assembles a platform with the given compute parallelism and
// metadata shard count.
func NewPlatform(workers, metadataShards int) *Platform {
	return &Platform{
		Archive:   sentinel.NewArchive(),
		Catalogue: catalogue.New(),
		Engine:    compute.NewEngine(workers),
		FS:        hopsfs.New(kvstore.New(metadataShards)),
	}
}

// SceneProduct couples product metadata with its pixels and ground truth
// (the truth exists because the substrate is synthetic; it feeds accuracy
// accounting, never the classifiers).
type SceneProduct struct {
	Product sentinel.Product
	Image   *raster.Image
	Truth   *raster.ClassMap
}

// GenerateSceneProducts synthesizes n Sentinel-2 scene products of
// size x size pixels over the extent.
func GenerateSceneProducts(n, size int, seed int64, extent geom.Rect) []SceneProduct {
	metas := sentinel.GenerateProducts(n, seed, extent)
	out := make([]SceneProduct, n)
	for i := 0; i < n; i++ {
		grid := raster.NewGrid(metas[i].Footprint.Min, metas[i].Footprint.Width()/float64(size), size, size)
		truth := sentinel.GenerateLandCover(grid, 12, seed+int64(i))
		img := sentinel.GenerateS2Scene(truth, seed+int64(i)*7)
		metas[i].Mission = sentinel.Sentinel2
		metas[i].Level = "L1C"
		metas[i].SizeBytes = img.SizeBytes()
		out[i] = SceneProduct{Product: metas[i], Image: img, Truth: truth}
	}
	return out
}

// KnowledgeProduct is what information extraction derives from one scene:
// the classified map, a quantized per-class confidence stack and an NDVI
// layer — the "content information and knowledge" of the paper's Variety
// discussion.
type KnowledgeProduct struct {
	ProductID string
	ClassMap  *raster.ClassMap
	// NDVI is the derived vegetation-index layer.
	NDVI raster.Band
	// ConfidenceBytes is the size of the uint16-quantized per-class
	// probability stack.
	ConfidenceBytes int64
	// NDVIBytes is the size of the float32 NDVI layer.
	NDVIBytes int64
	// Accuracy against ground truth (available on synthetic data).
	Accuracy float64
}

// SizeBytes returns the knowledge product's total payload.
func (k *KnowledgeProduct) SizeBytes() int64 {
	return int64(len(k.ClassMap.Classes)) + k.ConfidenceBytes + k.NDVIBytes
}

// ExtractionResult aggregates an extraction run (the E3 table).
type ExtractionResult struct {
	Products       int
	DataBytes      int64
	KnowledgeBytes int64
	// Ratio is KnowledgeBytes/DataBytes; the paper's figures imply ~0.45
	// (450 TB from 1 PB).
	Ratio float64
	// MeanAccuracy is the mean classification accuracy over products.
	MeanAccuracy float64
}

// ExtractInformation runs the extraction pipeline over scene products on
// the platform's compute engine: classify every pixel, derive confidence
// and NDVI layers, and account data vs knowledge volume.
func (p *Platform) ExtractInformation(scenes []SceneProduct, net *dl.Network) ExtractionResult {
	type extracted struct {
		dataBytes int64
		knowBytes int64
		accuracy  float64
	}
	ds := compute.Parallelize(p.Engine, scenes)
	results := compute.Map(ds, func(sp SceneProduct) extracted {
		k := ExtractScene(sp, net)
		return extracted{
			dataBytes: sp.Image.SizeBytes(),
			knowBytes: k.SizeBytes(),
			accuracy:  k.Accuracy,
		}
	}).Collect()

	var out ExtractionResult
	out.Products = len(results)
	for _, r := range results {
		out.DataBytes += r.dataBytes
		out.KnowledgeBytes += r.knowBytes
		out.MeanAccuracy += r.accuracy
	}
	if out.Products > 0 {
		out.MeanAccuracy /= float64(out.Products)
	}
	if out.DataBytes > 0 {
		out.Ratio = float64(out.KnowledgeBytes) / float64(out.DataBytes)
	}
	return out
}

// ExtractScene classifies one scene with the network and derives the
// knowledge layers.
func ExtractScene(sp SceneProduct, net *dl.Network) *KnowledgeProduct {
	grid := sp.Image.Grid
	cm := raster.NewClassMap(grid)
	n := grid.NumCells()
	bands := len(sp.Image.Bands)

	// Batch pixels through the network.
	const batch = 512
	x := dl.NewMatrix(batch, bands)
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		rows := hi - lo
		for r := 0; r < rows; r++ {
			row := x.Row(r)
			for b := 0; b < bands; b++ {
				row[b] = sp.Image.Bands[b].Data[lo+r]
			}
		}
		sub := dl.Matrix{Rows: rows, Cols: bands, Data: x.Data[:rows*bands]}
		pred := net.Predict(sub)
		for r := 0; r < rows; r++ {
			cm.Classes[lo+r] = uint8(pred[r])
		}
	}

	k := &KnowledgeProduct{
		ProductID: sp.Product.ID,
		ClassMap:  cm,
		// uint16-quantized probability per class per pixel
		ConfidenceBytes: int64(n) * int64(sentinel.NumLandCoverClasses) * 2,
		NDVIBytes:       int64(n) * 4,
	}
	if sp.Truth != nil {
		k.Accuracy = raster.Agreement(sp.Truth, cm)
	}
	// red = B04 (index 3), nir = B08 (index 7)
	k.NDVI = raster.NDVI(sp.Image, 3, 7)
	return k
}

// IngestAndCatalogue ingests products into the archive, mirrors their
// metadata into the semantic catalogue, and records each product in the
// platform filesystem (one metadata file per product under /products).
func (p *Platform) IngestAndCatalogue(products []sentinel.Product) error {
	if err := p.FS.MkdirAll("/products"); err != nil {
		return err
	}
	for _, prod := range products {
		if err := p.Archive.Ingest(prod); err != nil {
			return err
		}
		if err := p.Catalogue.AddProduct(prod); err != nil {
			return err
		}
		meta := fmt.Sprintf("%s %s %s %d", prod.ID, prod.Mission, prod.Level, prod.SizeBytes)
		if err := p.FS.Create("/products/"+prod.ID, []byte(meta)); err != nil {
			return err
		}
	}
	p.Catalogue.Build()
	return nil
}

// TrainLandCoverClassifier trains the platform's land-cover model (an
// MLP over 13-band spectra) with the requested strategy and returns it.
func TrainLandCoverClassifier(strategy dl.Strategy, ds *dl.Dataset, epochs, workers int, seed int64) (*dl.Network, dl.TrainStats) {
	spec := dl.ModelSpec{
		Arch: dl.ArchMLP, In: ds.X.Cols, Hidden: 32,
		Classes: ds.Classes, Seed: seed,
	}
	return strategy.Train(spec, ds, dl.TrainConfig{
		Epochs: epochs, BatchSize: 64, LR: 0.3, Momentum: 0.9,
		Workers: workers, Seed: seed,
	})
}
