package endpoint

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/telemetry"
)

// latencyBuckets are the upper bounds (seconds) of the query latency
// histogram, chosen to straddle in-memory query times through slow
// analytic queries.
var latencyBuckets = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}

// Metric family names. One const per family keeps the namespace
// greppable and lets the eevet metricsreg check verify that every
// registration uses a name the README table can enumerate.
const (
	metricQueries        = "sparql_queries_total"
	metricQueryErrors    = "sparql_query_errors_total"
	metricCacheHits      = "sparql_cache_hits_total"
	metricCacheMisses    = "sparql_cache_misses_total"
	metricRejected       = "sparql_rejected_total"
	metricReplicaLagGate = "sparql_replica_rejected_total"
	metricTimeouts       = "sparql_timeouts_total"
	metricLoads          = "sparql_loads_total"
	metricLoadErrors     = "sparql_load_errors_total"
	metricLoadedTriples  = "sparql_loaded_triples_total"
	metricSlowQueries    = "sparql_slow_queries_total"
	metricExecRows       = "sparql_exec_rows_total"
	metricFilterDrops    = "sparql_filter_drops_total"
	metricQuerySeconds   = "sparql_query_duration_seconds"
	metricPlanCacheHits  = "sparql_plan_cache_hits_total"
	metricPlanCacheMiss  = "sparql_plan_cache_misses_total"
	metricSpatialProbes  = "sparql_spatial_join_probes_total"
	metricExecMorsels    = "sparql_exec_morsels_total"
	metricWorkersBusy    = "sparql_exec_workers_busy"
	metricCacheEntries   = "sparql_cache_entries"
	metricBuildInfo      = "sparql_build_info"
	metricUptimeSeconds  = "sparql_uptime_seconds"
	metricGoroutines     = "sparql_goroutines"
	metricHeapBytes      = "sparql_heap_bytes"
	metricMemDictTerms   = "store_memory_dict_terms"
	metricMemDictBytes   = "store_memory_dict_bytes"
	metricMemIdxTriples  = "store_memory_index_triples"
	metricMemIdxBytes    = "store_memory_index_bytes"
	metricMemDedup       = "store_memory_dedup_entries"
	metricMemGeometries  = "store_memory_geometries"
	metricMemRTreeNodes  = "store_memory_rtree_nodes"
	metricMemRTreeSlots  = "store_memory_rtree_entries"
	metricMemPlanEntries = "store_memory_plan_cache_entries"
)

// metrics holds the endpoint's operational counters, registered on the
// server's telemetry registry so /metrics renders them alongside the
// storage and memory families. Construct with newMetrics; the handlers
// mutate the counters directly on the hot path (atomic increments, no
// registry involvement).
type metrics struct {
	queries     *telemetry.Counter // completed queries (any outcome)
	errors      *telemetry.Counter // parse, evaluation, or serialize failures
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	rejected    *telemetry.Counter // admission-control 503s
	timeouts    *telemetry.Counter // per-query deadline expirations

	// replicaRejected counts queries bounced by the replica lag gate
	// (LagPolicyReject only). Registered in registerRuntimeMetrics when
	// the server fronts a replica; nil elsewhere, where admitReplicaQuery
	// returns before touching it.
	replicaRejected *telemetry.Counter

	// Per-kind breakdown of errors; timeouts above is the fifth kind.
	errParse     *telemetry.Counter
	errEval      *telemetry.Counter
	errSerialize *telemetry.Counter
	errPanic     *telemetry.Counter // recovered handler/engine panics

	slowQueries *telemetry.Counter // queries captured by the slow-query ring
	execRows    *telemetry.Counter // result rows produced by evaluations
	filterDrops *telemetry.Counter // rows dropped by pushed filters (profiled runs)

	loads         *telemetry.Counter // successful POST /load requests
	loadErrors    *telemetry.Counter // failed POST /load requests
	loadedTriples *telemetry.Counter // triples read by POST /load (incl. partial loads)

	latency *telemetry.Histogram // sparql_query_duration_seconds
}

// newMetrics registers the endpoint counter families on reg in the
// order the hand-rolled /metrics handler historically printed them, so
// the exposition stays byte-stable for scrapers and the README drift
// test.
func newMetrics(reg *telemetry.Registry) metrics {
	var m metrics
	m.queries = reg.Counter(metricQueries, "Completed SPARQL protocol requests.")
	// One family, five samples: the unlabeled total (kept for dashboards
	// predating the split) plus the per-kind breakdown. The timeout kind
	// mirrors sparql_timeouts_total — one shared counter attached to both
	// families, so the two series can never drift apart.
	m.errors = telemetry.NewCounter()
	m.timeouts = telemetry.NewCounter()
	errs := reg.CounterFamily(metricQueryErrors, "Requests that failed to parse, evaluate, or serialize.")
	errs.Attach(m.errors)
	m.errParse = errs.Counter("kind", "parse")
	m.errEval = errs.Counter("kind", "eval")
	m.errSerialize = errs.Counter("kind", "serialize")
	m.errPanic = errs.Counter("kind", "panic")
	errs.Attach(m.timeouts, "kind", "timeout")
	m.cacheHits = reg.Counter(metricCacheHits, "Requests served from the result cache.")
	m.cacheMisses = reg.Counter(metricCacheMisses, "Requests that missed the result cache.")
	m.rejected = reg.Counter(metricRejected, "Requests rejected by admission control.")
	reg.CounterFamily(metricTimeouts, "Requests cancelled by the per-query timeout.").Attach(m.timeouts)
	m.loads = reg.Counter(metricLoads, "Successful POST /load ingestions.")
	m.loadErrors = reg.Counter(metricLoadErrors, "Failed POST /load ingestions.")
	m.loadedTriples = reg.Counter(metricLoadedTriples, "Triples read by POST /load.")
	m.slowQueries = reg.Counter(metricSlowQueries, "Queries captured by the slow-query ring.")
	m.execRows = reg.Counter(metricExecRows, "Result rows produced by query evaluations.")
	m.filterDrops = reg.Counter(metricFilterDrops, "Rows dropped by pushed filters in profiled evaluations.")
	m.latency = reg.DurationHistogram(metricQuerySeconds, "Query latency histogram.", latencyBuckets)
	return m
}

// errKind labels the per-kind error counters.
type errKind int

const (
	errKindParse errKind = iota
	errKindEval
	errKindSerialize
	errKindPanic
)

// countError bumps the unlabeled error total plus the matching kind
// counter, so sparql_query_errors_total stays the sum dashboards built
// on the unlabeled series expect.
func (m *metrics) countError(k errKind) {
	m.errors.Inc()
	switch k {
	case errKindParse:
		m.errParse.Inc()
	case errKindEval:
		m.errEval.Inc()
	case errKindSerialize:
		m.errSerialize.Inc()
	case errKindPanic:
		m.errPanic.Inc()
	}
}

// observe records one query latency in the histogram.
func (m *metrics) observe(d time.Duration) { m.latency.ObserveDuration(d) }

// CacheHits returns the number of queries answered from the result cache.
func (s *Server) CacheHits() uint64 { return s.metrics.cacheHits.Load() }

// PlanCacheStatser is the optional engine capability behind the plan
// cache metrics: engines that compile and cache slot-based query plans
// (geostore single-node and partitioned stores) report their counters.
type PlanCacheStatser interface {
	PlanCacheStats() (hits, misses uint64)
}

// SpatialJoinStatser is the optional engine capability behind the
// spatial-join metric: engines that answer variable-variable spatial
// predicates with R-tree index joins report how many probes they issued.
type SpatialJoinStatser interface {
	SpatialJoinStats() (probes uint64)
}

// ExecStatser is the optional engine capability behind the parallel
// executor metric: engines running morsel-driven execution report how
// many morsels they dispatched (sparql_exec_morsels_total).
type ExecStatser interface {
	ExecStats() (morsels uint64)
}

// MemoryStatser is the optional engine capability behind the
// store_memory_* gauges and GET /debug/store: engines that can account
// for their in-memory footprint (dictionary, index, R-tree, plan cache)
// report it as a telemetry.StoreMemory. Both geostore store flavours
// implement it.
type MemoryStatser interface {
	MemoryStats() telemetry.StoreMemory
}

// registerRuntimeMetrics adds the engine-capability counters, runtime
// gauges, and store-memory gauges to the registry. Called once from
// New, after newMetrics, preserving the historical family order.
func (s *Server) registerRuntimeMetrics() {
	reg := s.reg
	if s.cfg.Replica != nil {
		s.metrics.replicaRejected = reg.Counter(metricReplicaLagGate,
			"Queries rejected because this replica exceeded its staleness budget (lag-policy reject).")
	}
	if pc, ok := s.engine.(PlanCacheStatser); ok {
		reg.CounterFunc(metricPlanCacheHits, "Queries evaluated with a cached compiled plan.",
			func() uint64 { hits, _ := pc.PlanCacheStats(); return hits })
		reg.CounterFunc(metricPlanCacheMiss, "Queries that compiled a fresh plan.",
			func() uint64 { _, misses := pc.PlanCacheStats(); return misses })
	}
	if sj, ok := s.engine.(SpatialJoinStatser); ok {
		reg.CounterFunc(metricSpatialProbes, "R-tree probes issued by index spatial joins.", sj.SpatialJoinStats)
	}
	if es, ok := s.engine.(ExecStatser); ok {
		reg.CounterFunc(metricExecMorsels, "Morsels dispatched by the parallel query executor.", es.ExecStats)
	}
	if s.cfg.Workers != nil {
		reg.IntGaugeFunc(metricWorkersBusy, "Executor worker slots currently in use.", s.cfg.Workers.Busy)
	}
	reg.IntGaugeFunc(metricCacheEntries, "Live result cache entries.", func() int64 { return int64(s.cache.len()) })

	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	reg.GaugeFamily(metricBuildInfo, "Build metadata; the value is always 1.").
		// The build-info labels are process-constant but only known at
		// runtime; one series per process, so no cardinality risk.
		//eevet:ignore metricsreg go_version/version are process-constant runtime values
		Const(1, "go_version", runtime.Version(), "version", version)
	reg.GaugeFunc(metricUptimeSeconds, "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })
	reg.IntGaugeFunc(metricGoroutines, "Current goroutine count.",
		func() int64 { return int64(runtime.NumGoroutine()) })
	reg.IntGaugeFunc(metricHeapBytes, "Bytes of allocated heap objects.", func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.HeapAlloc)
	})

	if ms, ok := s.engine.(MemoryStatser); ok {
		// Walking the store's memory accounting takes the store locks and
		// is O(dictionary terms), so a prepare hook caches one walk per
		// scrape and the nine gauge families below read the cached copy.
		reg.AddPrepare(func() {
			mem := ms.MemoryStats()
			s.storeMem.Store(&mem)
		})
		read := func(f func(*telemetry.StoreMemory) int64) func() int64 {
			return func() int64 {
				if m := s.storeMem.Load(); m != nil {
					return f(m)
				}
				return 0
			}
		}
		reg.IntGaugeFunc(metricMemDictTerms, "Interned RDF dictionary terms.",
			read(func(m *telemetry.StoreMemory) int64 { return m.DictTerms }))
		reg.IntGaugeFunc(metricMemDictBytes, "Bytes of interned term text (values, datatypes, language tags).",
			read(func(m *telemetry.StoreMemory) int64 { return m.DictBytes }))
		triples := reg.GaugeFamily(metricMemIdxTriples, "Encoded triples held per index ordering.")
		for _, idx := range []string{"spo", "pos", "osp", "pending"} {
			idx := idx
			triples.IntFunc(read(func(m *telemetry.StoreMemory) int64 { return m.IndexTriples[idx] }), "index", idx)
		}
		reg.IntGaugeFunc(metricMemIdxBytes, "Bytes of encoded triples across the sorted indexes and pending runs.",
			read(func(m *telemetry.StoreMemory) int64 { return m.IndexBytes }))
		reg.IntGaugeFunc(metricMemDedup, "Entries in the ingestion dedup set.",
			read(func(m *telemetry.StoreMemory) int64 { return m.DedupEntries }))
		reg.IntGaugeFunc(metricMemGeometries, "Parsed geometries held by the geo store.",
			read(func(m *telemetry.StoreMemory) int64 { return m.Geometries }))
		reg.IntGaugeFunc(metricMemRTreeNodes, "Nodes in the spatial R-tree.",
			read(func(m *telemetry.StoreMemory) int64 { return m.RTreeNodes }))
		reg.IntGaugeFunc(metricMemRTreeSlots, "Entry slots across all R-tree nodes.",
			read(func(m *telemetry.StoreMemory) int64 { return m.RTreeEntries }))
		reg.IntGaugeFunc(metricMemPlanEntries, "Compiled query plans held by the plan cache.",
			read(func(m *telemetry.StoreMemory) int64 { return m.PlanCacheEntries }))
	}
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// handleHealthz reports liveness plus basic store facts, so load balancers
// and Sextant deployments can gate traffic on it. When admission control
// is saturated it answers 503 "overloaded", letting balancers drain
// traffic away before requests start bouncing off the semaphore. A
// degraded (read-only) store reports status "degraded" with the cause
// but stays 200: queries still serve, and draining read traffic away
// from a store that can answer it would turn a partial failure into a
// full one.
// Replication adds a role field ("primary" or "replica"); a replica
// additionally reports its lag, and a sticky stream failure surfaces
// as status "degraded" with the cause — still 200, same reasoning as a
// degraded store: the replica keeps answering from its last applied
// state, and the lag-policy gate (not liveness) decides whether that
// is acceptable per query.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	status, cause := "ok", ""
	if s.cfg.Degraded != nil {
		if derr := s.cfg.Degraded(); derr != nil {
			status, cause = "degraded", derr.Error()
		}
	}
	role, lagField := "", ""
	if s.cfg.Replica != nil {
		role = "replica"
		rs := s.cfg.Replica()
		lagField = fmt.Sprintf(",\"replica_lag_seconds\":%.3f", rs.LagSeconds)
		if rs.Err != nil && status == "ok" {
			status, cause = "degraded", rs.Err.Error()
		}
	} else if s.cfg.Replication != nil {
		role = "primary"
	}
	if cap(s.sem) > 0 && len(s.sem) >= cap(s.sem) {
		status = "overloaded"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	doc := fmt.Sprintf("{\"status\":%q", status)
	if cause != "" {
		doc += fmt.Sprintf(",\"cause\":%q", cause)
	}
	if role != "" {
		doc += fmt.Sprintf(",\"role\":%q", role) + lagField
	}
	doc += fmt.Sprintf(",\"triples\":%d,\"store_version\":%d}\n", s.engine.Len(), s.engine.Version())
	io.WriteString(w, doc)
}
