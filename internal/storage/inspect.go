package storage

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/storage/vfs"
)

// This file is the storage engine's introspection surface: a lock-free
// listing of a data directory's WAL segments and snapshot generations
// with sizes and ages, served by eecat -inspect <dir> and by the
// endpoint's GET /debug/store (via DB.Stats).

// SegmentStat describes one WAL segment file.
type SegmentStat struct {
	Path       string  `json:"path"`
	Seq        int     `json:"seq"`
	Bytes      int64   `json:"bytes"`
	AgeSeconds float64 `json:"age_seconds"` // since last modification
	// Active marks the youngest segment — the one an open DB appends to.
	Active bool `json:"active,omitempty"`
}

// SnapshotFileStat describes one snapshot generation on disk. Version
// is parsed from the file name (the recovery ordering key); use
// InspectSnapshot for a verified deep read of the contents.
type SnapshotFileStat struct {
	Path       string  `json:"path"`
	Version    uint64  `json:"version"`
	Bytes      int64   `json:"bytes"`
	AgeSeconds float64 `json:"age_seconds"`
}

// DirStats summarizes a storage data directory.
type DirStats struct {
	Dir           string             `json:"dir"`
	Segments      []SegmentStat      `json:"wal_segments"` // oldest first
	WALBytes      int64              `json:"wal_bytes"`
	Snapshots     []SnapshotFileStat `json:"snapshots"` // newest first
	SnapshotBytes int64              `json:"snapshot_bytes"`
	// SinceSnapshot is the number of triples journaled since the last
	// compaction; only an open DB knows it, so InspectDir leaves it 0.
	SinceSnapshot uint64 `json:"since_snapshot,omitempty"`
}

// InspectDir lists the WAL segments and snapshot generations of a data
// directory without opening or locking it, so it is safe against a
// directory another process is serving from (sizes and ages are a
// point-in-time read).
func InspectDir(dir string) (*DirStats, error) {
	return inspectDirFS(vfs.OS, dir)
}

func inspectDirFS(fsys vfs.FS, dir string) (*DirStats, error) {
	fi, err := fsys.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: inspect %s: %w", dir, err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("storage: inspect %s: not a directory", dir)
	}
	now := time.Now()
	st := &DirStats{Dir: dir}

	segPaths, err := fsys.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	for _, p := range segPaths {
		var seq int
		if _, err := fmt.Sscanf(filepath.Base(p), "wal-%d.log", &seq); err != nil {
			continue
		}
		info, err := fsys.Stat(p)
		if err != nil {
			continue // raced with pruning
		}
		st.Segments = append(st.Segments, SegmentStat{
			Path:       p,
			Seq:        seq,
			Bytes:      info.Size(),
			AgeSeconds: now.Sub(info.ModTime()).Seconds(),
		})
		st.WALBytes += info.Size()
	}
	sort.Slice(st.Segments, func(i, j int) bool { return st.Segments[i].Seq < st.Segments[j].Seq })
	if n := len(st.Segments); n > 0 {
		st.Segments[n-1].Active = true
	}

	snapPaths, err := fsys.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		return nil, err
	}
	for _, p := range snapPaths {
		var v uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "snap-%d.snap", &v); err != nil {
			continue
		}
		info, err := fsys.Stat(p)
		if err != nil {
			continue
		}
		st.Snapshots = append(st.Snapshots, SnapshotFileStat{
			Path:       p,
			Version:    v,
			Bytes:      info.Size(),
			AgeSeconds: now.Sub(info.ModTime()).Seconds(),
		})
		st.SnapshotBytes += info.Size()
	}
	sort.Slice(st.Snapshots, func(i, j int) bool { return st.Snapshots[i].Version > st.Snapshots[j].Version })
	return st, nil
}

// Stats returns the directory listing plus the open DB's live
// compaction state (SinceSnapshot, active segment marking by sequence
// rather than by youngest file).
func (db *DB) Stats() (*DirStats, error) {
	st, err := inspectDirFS(db.fsys, db.dir)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.log != nil {
		st.SinceSnapshot = db.log.Recorded() - db.mark
		for i := range st.Segments {
			st.Segments[i].Active = st.Segments[i].Seq == db.seq
		}
	}
	return st, nil
}
