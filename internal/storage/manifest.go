package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/storage/vfs"
)

// The MANIFEST file persists the directory's replication epoch: a
// monotonically increasing fencing token. A primary bumps it durably at
// boot before serving its WAL feed; a replica raises its own copy to
// every higher epoch it observes on the stream. Frames carrying an
// epoch below the highest a node has persisted are rejected, so a
// demoted primary that comes back with an old epoch can never feed a
// replica that has already followed a newer one (split-brain fencing).
//
// Layout: 8-byte magic, u64 little-endian epoch, u32 CRC over the
// epoch bytes. Written via tmp + rename + dirsync like snapshots, so a
// crash leaves either the old or the new epoch, never a torn one.
const (
	manifestName  = "MANIFEST"
	manifestMagic = "EEMANIF1"
)

// readManifestFS returns the epoch persisted in dir, 0 when the file
// does not exist yet. A corrupt manifest is an error: epochs are
// fencing tokens, and silently restarting from 0 could let a stale
// primary's stream back in.
func readManifestFS(fsys vfs.FS, dir string) (uint64, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("storage: read manifest: %w", err)
	}
	if len(data) != len(manifestMagic)+12 || string(data[:len(manifestMagic)]) != manifestMagic {
		return 0, fmt.Errorf("storage: manifest %s is malformed", filepath.Join(dir, manifestName))
	}
	body := data[len(manifestMagic):]
	epoch := binary.LittleEndian.Uint64(body[:8])
	if crc32.ChecksumIEEE(body[:8]) != binary.LittleEndian.Uint32(body[8:12]) {
		return 0, fmt.Errorf("storage: manifest %s fails its checksum", filepath.Join(dir, manifestName))
	}
	return epoch, nil
}

// writeManifestFS durably persists epoch into dir's MANIFEST via
// tmp-file + rename + dirsync. I/O failures are counted on
// storage_io_errors_total like every other storage write path.
func writeManifestFS(fsys vfs.FS, m *Metrics, dir string, epoch uint64) error {
	buf := make([]byte, 0, len(manifestMagic)+12)
	buf = append(buf, manifestMagic...)
	var num [12]byte
	binary.LittleEndian.PutUint64(num[:8], epoch)
	binary.LittleEndian.PutUint32(num[8:12], crc32.ChecksumIEEE(num[:8]))
	buf = append(buf, num[:]...)

	path := filepath.Join(dir, manifestName)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		m.ioError("create")
		return fmt.Errorf("storage: write manifest: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		m.ioError("write")
		discardTemp(fsys, m, f, tmp)
		return fmt.Errorf("storage: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		m.ioError("fsync")
		discardTemp(fsys, m, f, tmp)
		return fmt.Errorf("storage: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		m.ioError("close")
		return fmt.Errorf("storage: close manifest: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		m.ioError("rename")
		return fmt.Errorf("storage: publish manifest: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		m.ioError("dirsync")
		return fmt.Errorf("storage: sync manifest directory: %w", err)
	}
	return nil
}

// Epoch returns the directory's persisted replication epoch (0 until a
// primary has ever bumped it or a replica has followed one).
func (db *DB) Epoch() uint64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.epoch
}

// BumpEpoch durably increments the epoch and returns the new value. A
// node serving as primary calls it once at boot, before opening its
// replication feed: any replica that follows this node then rejects
// frames from every earlier primary. The bump is persisted before it is
// visible, so a crash can repeat an epoch number only if it was never
// served.
func (db *DB) BumpEpoch() (uint64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	next := db.epoch + 1
	if err := writeManifestFS(db.fsys, db.opts.Metrics, db.dir, next); err != nil {
		return db.epoch, err
	}
	db.epoch = next
	return next, nil
}

// EnsureEpoch raises the persisted epoch to at least e; it never
// lowers it. Replicas call it when the stream presents a higher epoch,
// so a later promotion (BumpEpoch) fences everything the replica ever
// followed.
func (db *DB) EnsureEpoch(e uint64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if e <= db.epoch {
		return nil
	}
	if err := writeManifestFS(db.fsys, db.opts.Metrics, db.dir, e); err != nil {
		return err
	}
	db.epoch = e
	return nil
}
