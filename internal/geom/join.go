package geom

// This file is the shared spatial-join core: the filter-and-refine
// primitive behind the geostore's SPARQL spatial-join operator
// (variable-variable geof predicates answered by R-tree probes) and the
// interlink package's index-join discovery strategy. Both layers share
// the same window derivation (JoinWindow) and the same exact predicate
// (JoinHolds), so the query engine and the link-discovery engine cannot
// drift apart on join semantics.

// JoinRelation enumerates the spatial predicates the index join core
// accelerates.
type JoinRelation int

const (
	// JoinIntersects holds when the geometries share any point.
	JoinIntersects JoinRelation = iota
	// JoinContains holds when the left geometry contains the right.
	JoinContains
	// JoinWithin holds when the left geometry is within the right.
	JoinWithin
	// JoinNearer holds when the geometries are strictly nearer than the
	// distance threshold.
	JoinNearer
	// JoinNearerEq is JoinNearer with a closed (<=) threshold.
	JoinNearerEq
)

// String returns a GeoSPARQL-flavoured name for the relation.
func (r JoinRelation) String() string {
	switch r {
	case JoinIntersects:
		return "sfIntersects"
	case JoinContains:
		return "sfContains"
	case JoinWithin:
		return "sfWithin"
	case JoinNearer:
		return "distance<"
	case JoinNearerEq:
		return "distance<="
	default:
		return "joinRelation(?)"
	}
}

// JoinHolds tests the relation between two geometries exactly; d is the
// threshold for the distance relations and ignored otherwise.
func JoinHolds(rel JoinRelation, a, b Geometry, d float64) bool {
	switch rel {
	case JoinIntersects:
		return Intersects(a, b)
	case JoinContains:
		return Contains(a, b)
	case JoinWithin:
		return Within(a, b)
	case JoinNearer:
		return Distance(a, b) < d
	case JoinNearerEq:
		return Distance(a, b) <= d
	default:
		return false
	}
}

// JoinWindow returns the R-tree search window that makes an MBR probe a
// complete filter for the relation with g on the probe side: the MBR
// itself for the topological predicates (two geometries can only relate
// when their MBRs intersect), expanded by the distance threshold for the
// distance relations.
func JoinWindow(rel JoinRelation, g Geometry, d float64) Rect {
	w := g.Bounds()
	if rel == JoinNearer || rel == JoinNearerEq {
		w = w.Expand(d)
	}
	return w
}

// IndexJoin streams every (left[i], right[j]) pair satisfying rel to
// emit, using filter-and-refine over a bulk-loaded R-tree on the right
// side: each left geometry's JoinWindow prunes candidates, survivors are
// tested exactly with JoinHolds. It returns the number of exact
// geometry tests performed (the E8 comparison metric). Complete by
// construction: the window is a superset filter for every relation.
func IndexJoin(left, right []Geometry, rel JoinRelation, d float64, emit func(i, j int)) int {
	if len(left) == 0 || len(right) == 0 {
		return 0
	}
	tree := NewRTree()
	bounds := make([]Rect, len(right))
	data := make([]int64, len(right))
	for j, g := range right {
		bounds[j] = g.Bounds()
		data[j] = int64(j)
	}
	tree.BulkLoad(bounds, data)
	comparisons := 0
	for i, g := range left {
		tree.Search(JoinWindow(rel, g, d), func(_ Rect, dj int64) bool {
			j := int(dj)
			comparisons++
			if JoinHolds(rel, g, right[j], d) {
				emit(i, j)
			}
			return true
		})
	}
	return comparisons
}
