package endpoint_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/endpoint"
	"repro/internal/rdf"
)

func postLoad(srv http.Handler, body string, header map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/load", strings.NewReader(body))
	for k, v := range header {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// ntFeature renders the GeoSPARQL triple shape for one point feature,
// matching what AddFeature produces.
func ntFeature(i int, x, y float64) string {
	iri := fmt.Sprintf("http://extremeearth.eu/feature/new%d", i)
	return fmt.Sprintf("<%s> <%s> <http://extremeearth.eu/ontology#Feature> .\n", iri, rdf.RDFType) +
		fmt.Sprintf("<%s> <%s> <%s/geom> .\n", iri, rdf.GeoHasGeometry, iri) +
		fmt.Sprintf("<%s/geom> <%s> \"POINT (%g %g)\"^^<%s> .\n", iri, rdf.GeoAsWKT, x, y, rdf.WKTLiteral)
}

func TestLoadDisabledWithoutToken(t *testing.T) {
	st := testStore(t)
	// Loader set but no token: still disabled.
	srv := endpoint.New(st, endpoint.Config{Loader: st})
	if rec := postLoad(srv, ntFeature(0, 1, 1), nil); rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	// Token set but no loader: disabled too.
	srv = endpoint.New(st, endpoint.Config{LoadToken: "s3cret"})
	if rec := postLoad(srv, ntFeature(0, 1, 1), map[string]string{"Authorization": "Bearer s3cret"}); rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
}

func TestLoadAuth(t *testing.T) {
	st := testStore(t)
	srv := endpoint.New(st, endpoint.Config{Loader: st, LoadToken: "s3cret"})

	if rec := postLoad(srv, ntFeature(0, 1, 1), nil); rec.Code != http.StatusUnauthorized {
		t.Fatalf("no token: status = %d, want 401", rec.Code)
	}
	if rec := postLoad(srv, ntFeature(0, 1, 1), map[string]string{"Authorization": "Bearer wrong"}); rec.Code != http.StatusUnauthorized {
		t.Fatalf("bad token: status = %d, want 401", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/load", nil)
	req.Header.Set("Authorization", "Bearer s3cret")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status = %d, want 405", rec.Code)
	}
	if rec := postLoad(srv, ntFeature(0, 1, 1), map[string]string{"X-Load-Token": "s3cret"}); rec.Code != http.StatusOK {
		t.Fatalf("X-Load-Token: status = %d: %s", rec.Code, rec.Body.String())
	}
}

// TestLoadIngestsAndInvalidatesCache is the end-to-end ingestion story:
// query (cached) → load → the same query must see the new data.
func TestLoadIngestsAndInvalidatesCache(t *testing.T) {
	st := testStore(t)
	srv := endpoint.New(st, endpoint.Config{Loader: st, LoadToken: "s3cret"})

	countRows := func() int {
		rec := get(t, srv, sparqlURL(spatialQuery, "format=csv"), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("query status %d: %s", rec.Code, rec.Body.String())
		}
		return len(strings.Split(strings.TrimSpace(rec.Body.String()), "\n")) - 1
	}
	before := countRows()
	if before != 2 {
		t.Fatalf("seed store answered %d rows, want 2", before)
	}
	// Warm the cache and confirm a hit.
	get(t, srv, sparqlURL(spatialQuery, "format=csv"), nil)
	if srv.CacheHits() == 0 {
		t.Fatal("expected a cache hit before the load")
	}

	// Two features inside the query window, one outside.
	body := ntFeature(1, 2, 2) + ntFeature(2, 3, 3) + ntFeature(3, 5000, 5000)
	rec := postLoad(srv, body, map[string]string{"Authorization": "Bearer s3cret"})
	if rec.Code != http.StatusOK {
		t.Fatalf("load status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Loaded       int    `json:"loaded"`
		Triples      int    `json:"triples"`
		StoreVersion uint64 `json:"store_version"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("load response %q: %v", rec.Body.String(), err)
	}
	if resp.Loaded != 9 {
		t.Errorf("loaded = %d, want 9", resp.Loaded)
	}
	if resp.Triples != st.Len() || resp.StoreVersion != st.Version() {
		t.Errorf("response %+v disagrees with store (%d triples, v%d)", resp, st.Len(), st.Version())
	}

	if after := countRows(); after != before+2 {
		t.Errorf("after load query answered %d rows, want %d (stale cache?)", after, before+2)
	}

	// Malformed payload: partial load reported as 400, prior data intact.
	rec = postLoad(srv, ntFeature(4, 4, 4)+"garbage line\n", map[string]string{"Authorization": "Bearer s3cret"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed load status = %d, want 400", rec.Code)
	}
	if got := countRows(); got != before+3 {
		t.Errorf("after partial load: %d rows, want %d", got, before+3)
	}
}

func TestMetricsExposeLoads(t *testing.T) {
	st := testStore(t)
	srv := endpoint.New(st, endpoint.Config{Loader: st, LoadToken: "tok"})
	postLoad(srv, ntFeature(0, 1, 1), map[string]string{"Authorization": "Bearer tok"})
	rec := get(t, srv, "/metrics", nil)
	body := rec.Body.String()
	for _, want := range []string{"sparql_loads_total 1", "sparql_loaded_triples_total 3"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
