package sparql

import "testing"

func TestFingerprintNormalization(t *testing.T) {
	a := MustParse(`
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f WHERE {
			?f a ee:Feature .
			FILTER(geof:sfIntersects(?wkt, "POINT(1 2)"^^geo:wktLiteral))
		} LIMIT 5`)
	b := MustParse(`prefix ee: <http://extremeearth.eu/ontology#>  select ?f ` +
		`where { ?f a ee:Feature . filter(geof:sfIntersects(?wkt, "POINT(1 2)"^^geo:wktLiteral)) } limit 5`)
	if a.Canonical() != b.Canonical() {
		t.Fatalf("canonical forms differ:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := `SELECT ?f WHERE { ?f a <http://example.org/C> . }`
	variants := []string{
		`SELECT ?f WHERE { ?f a <http://example.org/C> . } LIMIT 5`,
		`SELECT DISTINCT ?f WHERE { ?f a <http://example.org/C> . }`,
		`SELECT ?f WHERE { ?f a <http://example.org/C> . } ORDER BY ?f`,
		`SELECT ?f WHERE { ?f a <http://example.org/C> . } ORDER BY DESC ?f`,
		`SELECT ?f WHERE { ?f a <http://example.org/D> . }`,
		`SELECT (COUNT(?f) AS ?n) WHERE { ?f a <http://example.org/C> . }`,
	}
	seen := map[string]string{MustParse(base).Fingerprint(): base}
	for _, v := range variants {
		fp := MustParse(v).Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision between %q and %q", prev, v)
		}
		seen[fp] = v
	}
}

func TestFingerprintFilterGrouping(t *testing.T) {
	// Different parenthesizations are different queries; the canonical
	// form must keep them apart or the result cache would cross-serve.
	a := MustParse(`SELECT ?x WHERE { ?x ?p ?y . FILTER((?x < 1 || ?x > 5) && ?y < 3) }`)
	b := MustParse(`SELECT ?x WHERE { ?x ?p ?y . FILTER(?x < 1 || (?x > 5 && ?y < 3)) }`)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatalf("grouping collision: %s == %s (%s)", a.Canonical(), b.Canonical(), a.Fingerprint())
	}
}

func TestNormalize(t *testing.T) {
	got, err := Normalize(`SELECT   ?x WHERE { ?x ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT ?x WHERE { ?x ?p ?o . }"
	if got != want {
		t.Fatalf("Normalize = %q, want %q", got, want)
	}
	if _, err := Normalize("not sparql"); err == nil {
		t.Fatal("expected parse error")
	}
}
