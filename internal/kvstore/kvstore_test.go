package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicPutGet(t *testing.T) {
	s := New(4)
	err := s.RunTxn(1, func(tx *Txn) error {
		tx.Put("a|1", []byte("hello"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ver, ok := s.Get("a|1")
	if !ok || string(v) != "hello" || ver != 1 {
		t.Fatalf("Get = %q, %d, %v", v, ver, ok)
	}
	if _, _, ok := s.Get("absent"); ok {
		t.Error("absent key found")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestVersionsIncrement(t *testing.T) {
	s := New(2)
	for i := 1; i <= 3; i++ {
		if err := s.RunTxn(1, func(tx *Txn) error {
			tx.Put("k", []byte(fmt.Sprintf("v%d", i)))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		_, ver, _ := s.Get("k")
		if ver != uint64(i) {
			t.Fatalf("after write %d version = %d", i, ver)
		}
	}
}

func TestTxnReadsOwnWrites(t *testing.T) {
	s := New(2)
	tx := s.Begin()
	tx.Put("k", []byte("v"))
	if v, ok := tx.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("txn did not read own write: %q %v", v, ok)
	}
	tx.Delete("k")
	if _, ok := tx.Get("k"); ok {
		t.Fatal("txn read deleted key")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Get("k"); ok {
		t.Fatal("deleted key persisted")
	}
}

func TestConflictDetection(t *testing.T) {
	s := New(2)
	if err := s.RunTxn(1, func(tx *Txn) error {
		tx.Put("x", []byte("0"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	t1 := s.Begin()
	t1.Get("x")
	t1.Put("x", []byte("1"))

	t2 := s.Begin()
	t2.Get("x")
	t2.Put("x", []byte("2"))

	if err := t1.Commit(); err != nil {
		t.Fatalf("first commit failed: %v", err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second commit = %v, want ErrConflict", err)
	}
	if s.Stats().Conflicts != 1 {
		t.Errorf("Conflicts = %d", s.Stats().Conflicts)
	}
}

func TestConflictOnAbsentKeyCreation(t *testing.T) {
	s := New(2)
	t1 := s.Begin()
	t1.Get("new") // observes absence (version 0)
	t1.Put("new", []byte("a"))

	t2 := s.Begin()
	t2.Get("new")
	t2.Put("new", []byte("b"))

	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("create/create race not detected: %v", err)
	}
}

func TestTxnReuseFails(t *testing.T) {
	s := New(1)
	tx := s.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("recommit = %v", err)
	}
}

func TestRunTxnRetries(t *testing.T) {
	s := New(4)
	if err := s.RunTxn(1, func(tx *Txn) error {
		tx.Put("counter", []byte{0})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Concurrent increments: all must eventually apply thanks to retry.
	const workers, increments = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				err := s.RunTxn(1000, func(tx *Txn) error {
					v, _ := tx.Get("counter")
					tx.Put("counter", []byte{v[0] + 1})
					return nil
				})
				if err != nil {
					t.Errorf("increment failed: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	v, _, _ := s.Get("counter")
	if int(v[0]) != workers*increments {
		t.Fatalf("counter = %d, want %d", v[0], workers*increments)
	}
}

func TestRunTxnPropagatesUserError(t *testing.T) {
	s := New(1)
	sentinel := errors.New("boom")
	err := s.RunTxn(5, func(tx *Txn) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestScanPartitionLocal(t *testing.T) {
	s := New(8)
	err := s.RunTxn(1, func(tx *Txn) error {
		tx.Put("dir:7|a", []byte("1"))
		tx.Put("dir:7|b", []byte("2"))
		tx.Put("dir:7|c", []byte("3"))
		tx.Put("dir:8|zzz", []byte("other partition"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	s.Scan("dir:7|", func(k string, v []byte) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 3 {
		t.Fatalf("scan keys = %v", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("scan not ordered: %v", keys)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := New(2)
	_ = s.RunTxn(1, func(tx *Txn) error {
		for i := 0; i < 10; i++ {
			tx.Put(fmt.Sprintf("p|%02d", i), []byte("x"))
		}
		return nil
	})
	n := 0
	s.Scan("p|", func(string, []byte) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestScanSeesDeletes(t *testing.T) {
	s := New(2)
	_ = s.RunTxn(1, func(tx *Txn) error {
		tx.Put("p|a", []byte("1"))
		tx.Put("p|b", []byte("2"))
		return nil
	})
	_ = s.RunTxn(1, func(tx *Txn) error {
		tx.Delete("p|a")
		return nil
	})
	var keys []string
	s.Scan("p|", func(k string, _ []byte) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 1 || keys[0] != "p|b" {
		t.Fatalf("scan after delete = %v", keys)
	}
}

func TestCrossShardTransaction(t *testing.T) {
	s := New(8)
	// Keys in different partitions land on different shards; the txn must
	// still be atomic.
	err := s.RunTxn(1, func(tx *Txn) error {
		for i := 0; i < 20; i++ {
			tx.Put(fmt.Sprintf("part%d|k", i), []byte{byte(i)})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 20 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestPartitionKey(t *testing.T) {
	if PartitionKey("dir:7|name") != "dir:7" {
		t.Error("partition key with separator")
	}
	if PartitionKey("plain") != "plain" {
		t.Error("partition key without separator")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New(1)
	_ = s.RunTxn(1, func(tx *Txn) error {
		tx.Put("k", []byte("abc"))
		return nil
	})
	v, _, _ := s.Get("k")
	v[0] = 'X'
	v2, _, _ := s.Get("k")
	if string(v2) != "abc" {
		t.Error("Get exposed internal buffer")
	}
}

func TestQuickAtomicity(t *testing.T) {
	// Property: a txn writing n keys either applies all or none (here:
	// conflicting txns that retry still leave consistent multi-key state).
	f := func(seed uint8) bool {
		s := New(4)
		n := int(seed%5) + 2
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				_ = s.RunTxn(100, func(tx *Txn) error {
					for i := 0; i < n; i++ {
						tx.Get(fmt.Sprintf("set|%d", i))
					}
					for i := 0; i < n; i++ {
						tx.Put(fmt.Sprintf("set|%d", i), []byte{byte(w)})
					}
					return nil
				})
			}(w)
		}
		wg.Wait()
		// All keys must hold the same writer's value.
		first, _, ok := s.Get("set|0")
		if !ok {
			return false
		}
		for i := 1; i < n; i++ {
			v, _, ok := s.Get(fmt.Sprintf("set|%d", i))
			if !ok || v[0] != first[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestStatsCounters(t *testing.T) {
	s := New(2)
	_ = s.RunTxn(1, func(tx *Txn) error {
		tx.Put("a", []byte("1"))
		return nil
	})
	s.Get("a")
	s.Scan("a", func(string, []byte) bool { return true })
	st := s.Stats()
	if st.Commits != 1 || st.Gets == 0 || st.Scans != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNumShardsClamped(t *testing.T) {
	if New(0).NumShards() != 1 {
		t.Error("zero shards not clamped")
	}
	if New(16).NumShards() != 16 {
		t.Error("shard count not respected")
	}
}
