package sparql

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"repro/internal/rdf"
)

// This file differentially tests the compiled slot-based executor (Eval)
// against the legacy map-based evaluator (EvalLegacy): randomized BGPs
// with filters, DISTINCT, ORDER BY, LIMIT and aggregates over a seeded
// dataset must produce the same solution multiset. Every query is
// additionally run through the morsel-driven parallel executor at
// degrees 1, 2 and NumCPU (with tiny morsels, so even this small corpus
// spans many morsels) and compared against the sequential executor:
// order-insensitive for unordered queries, byte-identical under ORDER
// BY, LIMIT and OFFSET.

const (
	diffNS   = "http://example.org/"
	diffProp = diffNS + "p/"
)

// diffStore builds a seeded synthetic graph: typed entities with numeric
// and string properties, inter-entity links, and point geometries.
func diffStore(seed int64, entities int) *rdf.Store {
	rng := rand.New(rand.NewSource(seed))
	st := rdf.NewStore()
	iri := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%se%d", diffNS, i)) }
	for i := 0; i < entities; i++ {
		e := iri(i)
		st.Add(e, rdf.NewIRI(rdf.RDFType), rdf.NewIRI(fmt.Sprintf("%sClass%d", diffNS, rng.Intn(4))))
		if rng.Float64() < 0.9 {
			st.Add(e, rdf.NewIRI(diffProp+"value"), rdf.NewIntLiteral(int64(rng.Intn(100))))
		}
		if rng.Float64() < 0.6 {
			st.Add(e, rdf.NewIRI(diffProp+"score"), rdf.NewFloatLiteral(rng.Float64()*10))
		}
		if rng.Float64() < 0.7 {
			st.Add(e, rdf.NewIRI(diffProp+"name"), rdf.NewLiteral(fmt.Sprintf("name%d", rng.Intn(20))))
		}
		for l := rng.Intn(3); l > 0; l-- {
			st.Add(e, rdf.NewIRI(diffProp+"link"), iri(rng.Intn(entities)))
		}
		if rng.Float64() < 0.5 {
			wkt := fmt.Sprintf("POINT (%d %d)", rng.Intn(100), rng.Intn(100))
			st.Add(e, rdf.NewIRI(diffProp+"wkt"), rdf.NewWKTLiteral(wkt))
		}
	}
	return st
}

// randomQuery generates a query over the diffStore vocabulary.
func randomQuery(rng *rand.Rand) *Query {
	q := &Query{}
	vars := []string{"a", "b", "c", "d"}
	used := []string{}
	pick := func() string {
		// Prefer connecting to an already-used variable.
		if len(used) > 0 && rng.Float64() < 0.75 {
			return used[rng.Intn(len(used))]
		}
		v := vars[rng.Intn(len(vars))]
		return v
	}
	use := func(v string) string {
		for _, u := range used {
			if u == v {
				return v
			}
		}
		used = append(used, v)
		return v
	}
	npat := 1 + rng.Intn(4)
	for i := 0; i < npat; i++ {
		s := rdf.V(use(pick()))
		var p, o rdf.PatternTerm
		switch rng.Intn(8) {
		case 0:
			p = rdf.T(rdf.NewIRI(rdf.RDFType))
			o = rdf.T(rdf.NewIRI(fmt.Sprintf("%sClass%d", diffNS, rng.Intn(5))))
		case 1:
			p = rdf.T(rdf.NewIRI(diffProp + "value"))
			o = rdf.T(rdf.NewIntLiteral(int64(rng.Intn(100))))
		case 2:
			p = rdf.T(rdf.NewIRI(diffProp + "value"))
			o = rdf.V(use(pick()))
		case 3:
			p = rdf.T(rdf.NewIRI(diffProp + "score"))
			o = rdf.V(use(pick()))
		case 4:
			p = rdf.T(rdf.NewIRI(diffProp + "name"))
			o = rdf.V(use(pick()))
		case 5:
			p = rdf.T(rdf.NewIRI(diffProp + "link"))
			o = rdf.V(use(pick()))
		case 6:
			p = rdf.T(rdf.NewIRI(diffProp + "wkt"))
			o = rdf.V(use(pick()))
		default:
			p = rdf.V(use(pick()))
			o = rdf.V(use(pick()))
		}
		q.Patterns = append(q.Patterns, rdf.TriplePattern{S: s, P: p, O: o})
	}

	nfil := rng.Intn(3)
	for i := 0; i < nfil; i++ {
		v := used[rng.Intn(len(used))]
		var e Expr
		switch rng.Intn(7) {
		case 0:
			e = CmpExpr{Op: CmpOp(rng.Intn(6)), L: VarExpr{Name: v},
				R: ConstExpr{Term: rdf.NewIntLiteral(int64(rng.Intn(100)))}}
		case 1:
			e = CmpExpr{Op: OpEq, L: VarExpr{Name: v},
				R: ConstExpr{Term: rdf.NewLiteral(fmt.Sprintf("name%d", rng.Intn(20)))}}
		case 2:
			e = OrExpr{
				L: CmpExpr{Op: OpGt, L: VarExpr{Name: v}, R: ConstExpr{Term: rdf.NewIntLiteral(int64(rng.Intn(100)))}},
				R: NotExpr{E: CmpExpr{Op: OpLe, L: VarExpr{Name: v}, R: ConstExpr{Term: rdf.NewIntLiteral(int64(rng.Intn(100)))}}},
			}
		case 3:
			// Sometimes references a variable outside the BGP, which must
			// reject every row in both evaluators.
			name := v
			if rng.Float64() < 0.3 {
				name = "zz"
			}
			e = AndExpr{
				L: CmpExpr{Op: OpGe, L: VarExpr{Name: name}, R: ConstExpr{Term: rdf.NewIntLiteral(0)}},
				R: CmpExpr{Op: OpNe, L: VarExpr{Name: v}, R: ConstExpr{Term: rdf.NewLiteral("nope")}},
			}
		case 4:
			// Variable-variable geof predicate: a spatial join (or a
			// type-error rejection when the vars bind non-geometries).
			fns := []string{FnSfIntersects, FnSfContains, FnSfWithin}
			e = FuncExpr{Name: fns[rng.Intn(len(fns))], Args: []Expr{
				VarExpr{Name: v},
				VarExpr{Name: used[rng.Intn(len(used))]},
			}}
		case 5:
			// Distance join, both comparison spellings.
			call := FuncExpr{Name: FnDistance, Args: []Expr{
				VarExpr{Name: v},
				VarExpr{Name: used[rng.Intn(len(used))]},
			}}
			d := ConstExpr{Term: rdf.NewFloatLiteral(rng.Float64() * 80)}
			if rng.Float64() < 0.5 {
				e = CmpExpr{Op: OpLt, L: call, R: d}
			} else {
				e = CmpExpr{Op: OpGe, L: d, R: call}
			}
		default:
			win := fmt.Sprintf("POLYGON ((%d %d, %d %d, %d %d, %d %d, %d %d))",
				0, 0, 60, 0, 60, 60, 0, 60, 0, 0)
			e = FuncExpr{Name: FnSfIntersects, Args: []Expr{
				VarExpr{Name: v},
				ConstExpr{Term: rdf.NewWKTLiteral(win)},
			}}
		}
		q.Filters = append(q.Filters, e)
	}

	if rng.Float64() < 0.15 {
		// Aggregate query: COUNT(*) or COUNT(?v), optionally grouped.
		if rng.Float64() < 0.5 {
			q.Aggregates = []Aggregate{{Fn: "COUNT", As: "n"}}
		} else {
			q.Aggregates = []Aggregate{{Fn: "COUNT", Var: used[rng.Intn(len(used))], As: "n"}}
		}
		if rng.Float64() < 0.6 {
			q.GroupBy = used[rng.Intn(len(used))]
		}
		if rng.Float64() < 0.4 {
			q.OrderBy = "n"
			q.OrderDesc = rng.Float64() < 0.5
		}
	} else {
		if rng.Float64() < 0.3 {
			q.Star = true
		} else {
			n := 1 + rng.Intn(len(used))
			seen := map[string]bool{}
			for _, v := range used[:n] {
				if !seen[v] {
					seen[v] = true
					q.Vars = append(q.Vars, v)
				}
			}
		}
		q.Distinct = rng.Float64() < 0.3
		if rng.Float64() < 0.4 {
			q.OrderBy = used[rng.Intn(len(used))]
			q.OrderDesc = rng.Float64() < 0.5
		}
	}
	if rng.Float64() < 0.4 {
		q.Limit = 1 + rng.Intn(10)
	}
	if rng.Float64() < 0.3 {
		q.Offset = 1 + rng.Intn(8)
	}
	return q
}

// rowKey renders one result row deterministically.
func rowKey(vars []string, row map[string]rdf.Term) string {
	var b strings.Builder
	for _, v := range vars {
		if t, ok := row[v]; ok {
			b.WriteString(t.String())
		}
		b.WriteByte('\x1f')
	}
	return b.String()
}

func multiset(r *Results) map[string]int {
	m := make(map[string]int, len(r.Rows))
	for _, row := range r.Rows {
		m[rowKey(r.Vars, row)]++
	}
	return m
}

func sameMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// checkEquivalent asserts the slot executor and the legacy oracle agree
// on q: same row count, same multiset where order/limit make results
// deterministic, and — under ORDER BY with ties or LIMIT truncation —
// rows drawn from the oracle's full solution set with identical sort-key
// sequences.
func checkEquivalent(t *testing.T, st *rdf.Store, q *Query, tag string) {
	t.Helper()
	got, err := Eval(st, q)
	if err != nil {
		t.Fatalf("%s: Eval: %v", tag, err)
	}
	want, err := EvalLegacy(st, q)
	if err != nil {
		t.Fatalf("%s: EvalLegacy: %v", tag, err)
	}
	if strings.Join(got.Vars, ",") != strings.Join(want.Vars, ",") {
		t.Fatalf("%s: vars = %v, want %v", tag, got.Vars, want.Vars)
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: rows = %d, want %d\nquery: %s", tag, got.Len(), want.Len(), q.Canonical())
	}
	if q.Limit == 0 && q.Offset == 0 {
		// Without truncation the full multisets must match regardless of
		// row order.
		if !sameMultiset(multiset(got), multiset(want)) {
			t.Fatalf("%s: multiset mismatch\nquery: %s\ngot:\n%swant:\n%s",
				tag, q.Canonical(), got, want)
		}
	} else {
		// LIMIT truncation and OFFSET skipping can cut ties differently;
		// every returned row must exist in the oracle's unmodified
		// solution set (with multiplicity).
		full := *q
		full.Limit = 0
		full.Offset = 0
		wantFull, err := EvalLegacy(st, &full)
		if err != nil {
			t.Fatalf("%s: EvalLegacy(no limit): %v", tag, err)
		}
		pool := multiset(wantFull)
		for _, row := range got.Rows {
			k := rowKey(got.Vars, row)
			if pool[k] == 0 {
				t.Fatalf("%s: row %q not in oracle solutions\nquery: %s", tag, k, q.Canonical())
			}
			pool[k]--
		}
	}
	if q.OrderBy != "" {
		// The ORDER BY key sequences must agree even when ties were
		// broken differently.
		for i := range got.Rows {
			gk := got.Rows[i][q.OrderBy]
			wk := want.Rows[i][q.OrderBy]
			if gk.String() != wk.String() {
				t.Fatalf("%s: order key %d = %s, want %s\nquery: %s",
					tag, i, gk, wk, q.Canonical())
			}
		}
	}
	checkParallel(t, st, q, got, tag)
}

// parallelDegrees are the morsel-executor degrees every differential
// query runs at.
var parallelDegrees = []int{1, 2, runtime.NumCPU()}

// checkParallel asserts the parallel executor agrees with the
// sequential slot executor's output seq at several degrees. Morsels are
// shrunk so the small test corpus still splits into many morsels.
func checkParallel(t *testing.T, st *rdf.Store, q *Query, seq *Results, tag string) {
	t.Helper()
	plan, err := CompilePlan(st, q, PlanOpts{})
	if err != nil {
		t.Fatalf("%s: CompilePlan: %v", tag, err)
	}
	for _, d := range parallelDegrees {
		// Run analyzed: differential coverage doubles as proof that stats
		// collection never perturbs results (and is race-clean under -race).
		got, prof, err := plan.ExecuteParallelAnalyzed(nil, ParallelExec{Degree: d, ScanMorsel: 16, SeedMorsel: 8})
		if err != nil {
			t.Fatalf("%s: ExecuteParallelAnalyzed(%d): %v", tag, d, err)
		}
		if prof == nil {
			t.Fatalf("%s: ExecuteParallelAnalyzed(%d): nil profile", tag, d)
		}
		// Emitted counts pipeline solutions pre-truncation/aggregation, so
		// it can only undercount the final rows when a LIMIT short-circuits
		// or aggregation folds; it must never be below a full result set.
		if q.OrderBy == "" && q.Limit == 0 && q.Offset == 0 && !q.Distinct && len(q.Aggregates) == 0 {
			if prof.Emitted != int64(got.Len()) {
				t.Fatalf("%s: parallel(%d) profile emitted = %d, want %d", tag, d, prof.Emitted, got.Len())
			}
		}
		if strings.Join(got.Vars, ",") != strings.Join(seq.Vars, ",") {
			t.Fatalf("%s: parallel(%d) vars = %v, want %v", tag, d, got.Vars, seq.Vars)
		}
		if got.Len() != seq.Len() {
			t.Fatalf("%s: parallel(%d) rows = %d, want %d\nquery: %s",
				tag, d, got.Len(), seq.Len(), q.Canonical())
		}
		if q.OrderBy != "" || q.Limit > 0 || q.Offset > 0 {
			// Truncation and ordering must be byte-identical to the
			// sequential executor: same rows, same order.
			for i := range got.Rows {
				gk := rowKey(got.Vars, got.Rows[i])
				sk := rowKey(seq.Vars, seq.Rows[i])
				if gk != sk {
					t.Fatalf("%s: parallel(%d) row %d = %q, want %q\nquery: %s",
						tag, d, i, gk, sk, q.Canonical())
				}
			}
		} else if !sameMultiset(multiset(got), multiset(seq)) {
			t.Fatalf("%s: parallel(%d) multiset mismatch\nquery: %s\ngot:\n%swant:\n%s",
				tag, d, q.Canonical(), got, seq)
		}
	}
}

// TestParallelDistinctLimitBudget pins the DISTINCT+LIMIT interaction
// on the parallel executor: a morsel's locally-distinct rows can be
// cross-worker duplicates, so the per-morsel row budget must not cut
// morsels early under DISTINCT (it would starve the global prefix and
// return fewer rows than the sequential executor).
func TestParallelDistinctLimitBudget(t *testing.T) {
	st := rdf.NewStore()
	// 400 subjects over 12 values: every morsel is packed with
	// duplicates, and only a handful of globally distinct rows exist.
	for i := 0; i < 400; i++ {
		st.Add(
			rdf.NewIRI(fmt.Sprintf("%sdup%d", diffNS, i)),
			rdf.NewIRI(diffProp+"value"),
			rdf.NewIntLiteral(int64(i%12)),
		)
	}
	for _, limit := range []int{3, 11, 12, 13} {
		q, err := Parse(fmt.Sprintf(
			`SELECT DISTINCT ?v WHERE { ?s <%svalue> ?v . } LIMIT %d`, diffProp, limit))
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Eval(st, q)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := CompilePlan(st, q, PlanOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []int{2, 3, 4} {
			got, err := plan.ExecuteParallel(ParallelExec{Degree: d, ScanMorsel: 8})
			if err != nil {
				t.Fatal(err)
			}
			if got.Len() != seq.Len() {
				t.Fatalf("limit %d degree %d: rows = %d, want %d", limit, d, got.Len(), seq.Len())
			}
			for i := range got.Rows {
				if g, w := rowKey(got.Vars, got.Rows[i]), rowKey(seq.Vars, seq.Rows[i]); g != w {
					t.Fatalf("limit %d degree %d row %d = %q, want %q", limit, d, i, g, w)
				}
			}
		}
	}
}

func TestDifferentialRandomQueries(t *testing.T) {
	const perSeed = 400
	for _, seed := range []int64{1, 2, 3} {
		st := diffStore(seed, 60)
		rng := rand.New(rand.NewSource(seed * 1000))
		for i := 0; i < perSeed; i++ {
			q := randomQuery(rng)
			checkEquivalent(t, st, q, fmt.Sprintf("seed %d query %d", seed, i))
		}
	}
}

// TestDifferentialParsedQueries runs hand-written corner cases through
// the same equivalence check.
func TestDifferentialParsedQueries(t *testing.T) {
	st := diffStore(7, 80)
	queries := []string{
		`SELECT ?a WHERE { ?a a <http://example.org/Class1> . }`,
		`SELECT * WHERE { ?a <http://example.org/p/link> ?b . ?b <http://example.org/p/link> ?c . }`,
		`SELECT DISTINCT ?b WHERE { ?a <http://example.org/p/link> ?b . }`,
		`SELECT ?a ?v WHERE { ?a <http://example.org/p/value> ?v . FILTER(?v > 50) } ORDER BY ?v LIMIT 5`,
		`SELECT ?a ?v WHERE { ?a <http://example.org/p/value> ?v . FILTER(?v > 20 && ?v <= 80) } ORDER BY DESC ?v`,
		`SELECT (COUNT(*) AS ?n) WHERE { ?a <http://example.org/p/link> ?b . }`,
		`SELECT (COUNT(?b) AS ?n) WHERE { ?a a ?t . ?a <http://example.org/p/link> ?b . } GROUP BY ?t ORDER BY ?n`,
		`SELECT ?a WHERE { ?a ?p ?a . }`,
		`SELECT ?a WHERE { ?a <http://example.org/p/value> ?v . FILTER(?unbound > 3) }`,
		`SELECT ?a WHERE { ?a a <http://example.org/NoSuchClass> . }`,
		`SELECT ?n WHERE { ?a <http://example.org/p/name> ?n . ?a <http://example.org/p/value> ?v . } ORDER BY ?n LIMIT 7`,
		`SELECT DISTINCT ?t WHERE { ?a a ?t . ?a <http://example.org/p/value> ?v . FILTER(?v >= 10) } ORDER BY ?t`,
		`SELECT ?a ?v WHERE { ?a <http://example.org/p/value> ?v . } ORDER BY ?v OFFSET 5`,
		`SELECT ?a ?v WHERE { ?a <http://example.org/p/value> ?v . } ORDER BY ?v LIMIT 4 OFFSET 3`,
		`SELECT ?a ?v WHERE { ?a <http://example.org/p/value> ?v . } OFFSET 6 LIMIT 4`,
		`SELECT DISTINCT ?v WHERE { ?a <http://example.org/p/value> ?v . } OFFSET 10`,
		`SELECT ?a WHERE { ?a <http://example.org/p/value> ?v . } OFFSET 100000`,
		`SELECT ?a ?b WHERE { ?a <http://example.org/p/wkt> ?wa . ?b <http://example.org/p/wkt> ?wb . FILTER(geof:sfIntersects(?wa, ?wb)) }`,
		`SELECT ?a ?b WHERE { ?a <http://example.org/p/wkt> ?wa . ?b <http://example.org/p/wkt> ?wb . FILTER(geof:distance(?wa, ?wb) < 25) } ORDER BY ?a LIMIT 20`,
		`SELECT ?a WHERE { ?a <http://example.org/p/wkt> ?wa . ?a <http://example.org/p/name> ?n . FILTER(geof:sfWithin(?wa, ?n)) }`,
	}
	for i, qs := range queries {
		q, err := Parse(qs)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		checkEquivalent(t, st, q, fmt.Sprintf("parsed %d", i))
	}
}
