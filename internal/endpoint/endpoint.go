// Package endpoint is the network-facing serving layer of the
// re-engineered store: a W3C SPARQL-Protocol-style HTTP endpoint over
// internal/geostore. GET/POST /sparql parses stSPARQL with
// internal/sparql, evaluates against any Engine (single-node or
// partitioned store), and streams results in content-negotiated formats
// (SPARQL 1.1 JSON, CSV, TSV, GeoJSON via internal/sextant).
//
// Around the core handler sit the production concerns of the ROADMAP
// north star: an LRU result cache keyed on (normalized query fingerprint,
// store version, format) that invalidates itself when the store mutates;
// admission control bounding in-flight queries (503 + Retry-After on
// saturation) with a per-query timeout; and /metrics + /healthz exposing
// query counts, latency histograms and cache hit rates.
package endpoint

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/telemetry"
)

// Engine is the query-evaluation capability the endpoint serves. Both
// *geostore.Store and *geostore.PartitionedStore implement it.
type Engine interface {
	// Query evaluates a parsed query.
	Query(q *sparql.Query) (*sparql.Results, error)
	// Version is a monotonic mutation counter used for cache invalidation.
	Version() uint64
	// Len returns the triple count (served by /healthz).
	Len() int
}

// ContextEngine is the optional cancellation capability of an Engine:
// engines running the morsel-driven parallel executor poll ctx at every
// morsel dispatch, so the per-query timeout (and a vanished client)
// stops all executor workers promptly instead of letting an abandoned
// query burn CPU to completion. Both geostore store flavours implement
// it.
type ContextEngine interface {
	QueryContext(ctx context.Context, q *sparql.Query) (*sparql.Results, error)
}

// Loader is the optional live-ingestion capability behind POST /load:
// it streams N-Triples into the store (journaled when a WAL is
// attached) and returns the number of triples read. *geostore.Store
// implements it.
type Loader interface {
	LoadNTriples(r io.Reader) (int, error)
}

// Config tunes the serving layer. The zero value gets sensible defaults
// from New.
type Config struct {
	// MaxInFlight bounds concurrently evaluating queries; requests beyond
	// it receive 503 + Retry-After. Default 16.
	MaxInFlight int
	// QueryTimeout is the per-query evaluation deadline. Default 30s.
	QueryTimeout time.Duration
	// CacheSize is the result cache capacity in entries; 0 selects the
	// default of 256, negative disables caching.
	CacheSize int
	// MaxQueryLen bounds accepted query text bytes. Default 1 MiB.
	MaxQueryLen int
	// Loader, when non-nil together with a non-empty LoadToken, enables
	// the POST /load N-Triples ingestion route.
	Loader Loader
	// LoadToken is the bearer token POST /load requires. Ingestion stays
	// disabled (404) while it is empty, so a write path is never exposed
	// by accident.
	LoadToken string
	// Workers is the server-wide executor worker pool shared with the
	// engine (see rdf.NewWorkerPool and geostore's SetParallel): morsel
	// workers beyond each query's first must win a slot here, so
	// admission control bounds total executor goroutines — MaxInFlight
	// queries plus Workers.Cap() extra workers — not just concurrent
	// queries. Nil when parallel execution is off; /metrics exports the
	// pool's busy gauge as sparql_exec_workers_busy.
	Workers *rdf.WorkerPool
	// Logger, when non-nil, enables the structured access log: one line
	// per request carrying the request's trace ID (see ServeHTTP). The
	// same logger should be attached to the engine (geostore SetLogger)
	// so store-level lines correlate.
	Logger *slog.Logger
	// SlowQueryThreshold, when > 0, enables slow-query capture: uncached
	// queries run with EXPLAIN ANALYZE instrumentation, and any whose
	// evaluation exceeds the threshold (or times out) records its
	// profile in the bounded ring served by GET /debug/queries.
	SlowQueryThreshold time.Duration
	// DebugRingSize bounds the slow-query ring (default 64 entries).
	DebugRingSize int
	// Registry, when non-nil, is the telemetry registry /metrics serves.
	// eeserve passes the registry its storage metrics are already on, so
	// one scrape covers the whole process. Nil creates a private one.
	// Each registry supports at most one Server (family names collide).
	Registry *telemetry.Registry
	// StorageStats, when non-nil, supplies the durability-layer listing
	// GET /debug/store embeds under "storage" (eeserve passes a closure
	// over storage.DB.Stats). The value is marshaled as JSON verbatim.
	StorageStats func() any
	// Degraded, when non-nil, reports the storage layer's sticky failure
	// (eeserve passes a closure over storage.DB.Degraded). While it
	// returns non-nil the server keeps answering queries from memory but
	// refuses POST /load with 503 + Retry-After, and /healthz reports
	// status "degraded" with the cause.
	Degraded func() error
	// Replication, when non-nil, is the primary-side WAL-shipping
	// service mounted under /replication/ (the handler enforces its own
	// token auth). /healthz then reports role "primary".
	Replication http.Handler
	// Replica, when non-nil, marks this server a streaming read replica
	// and supplies its live status (eeserve passes a closure over
	// replication.Replica.Status). Query responses carry X-Replica-Lag,
	// /healthz reports role "replica" with the stream health, and lag
	// gating below applies.
	Replica func() ReplicaStatus
	// MaxReplicaLag is the staleness budget for a replica's answers:
	// once the replica has not been caught up for longer than this (or
	// its stream has parked on a sticky failure), responses degrade per
	// LagPolicy. 0 disables the lag threshold (sticky failures still
	// degrade).
	MaxReplicaLag time.Duration
	// LagPolicy selects what an over-budget replica does with queries:
	// LagPolicyWarn (default) answers them with a Warning header,
	// LagPolicyReject answers 503 + Retry-After so balancers move the
	// traffic to fresher nodes.
	LagPolicy string
	// ReadOnly, when non-empty, refuses POST /load with 403 and this
	// reason — replicas only apply writes from their primary's stream.
	ReadOnly string
}

// Lag-gating policies for replicas beyond MaxReplicaLag.
const (
	LagPolicyWarn   = "warn"
	LagPolicyReject = "reject"
)

// ReplicaStatus is the slice of a replica's health the serving layer
// consumes; the replication package's Status converts to it in eeserve.
type ReplicaStatus struct {
	// Primary is the upstream base URL.
	Primary string
	// Connected reports whether the WAL stream is currently open.
	Connected bool
	// LagBytes is the last observed durable-bytes-behind figure.
	LagBytes int64
	// LagSeconds is how long the replica has not been fully caught up.
	LagSeconds float64
	// Err is the sticky failure that parked replication, nil otherwise.
	Err error
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 16
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxQueryLen == 0 {
		c.MaxQueryLen = 1 << 20
	}
	if c.DebugRingSize <= 0 {
		c.DebugRingSize = 64
	}
	if c.LagPolicy != LagPolicyReject {
		c.LagPolicy = LagPolicyWarn
	}
	return c
}

// Server is the HTTP SPARQL endpoint. Create with New; it implements
// http.Handler.
type Server struct {
	engine  Engine
	cfg     Config
	cache   *resultCache
	sem     chan struct{}
	reg     *telemetry.Registry
	metrics metrics
	mux     *http.ServeMux

	logger  *slog.Logger
	started time.Time
	slow    *queryRing
	running *runningSet

	// storeMem caches the engine's memory accounting for one scrape; a
	// registry prepare hook refreshes it (see registerRuntimeMetrics).
	storeMem atomic.Pointer[telemetry.StoreMemory]
}

// New returns a server over engine.
func New(engine Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		engine:  engine,
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheSize),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		reg:     reg,
		mux:     http.NewServeMux(),
		logger:  cfg.Logger,
		started: time.Now(),
		slow:    newQueryRing(cfg.DebugRingSize),
		running: newRunningSet(),
	}
	s.metrics = newMetrics(reg)
	s.registerRuntimeMetrics()
	s.mux.HandleFunc("/sparql", s.recoverPanics(s.handleSPARQL))
	s.mux.HandleFunc("/load", s.recoverPanics(s.handleLoad))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	// The /debug/* routes expose query text and store internals, so the
	// public listener requires the load token; the admin mux (a separate,
	// non-public bind) serves them unauthenticated.
	s.mux.HandleFunc("/debug/queries", s.debugAuth(s.handleDebugQueries))
	s.mux.HandleFunc("/debug/store", s.debugAuth(s.handleDebugStore))
	s.mux.HandleFunc("/debug/cache", s.debugAuth(s.handleDebugCache))
	if cfg.Replication != nil {
		// The feed does its own (replication-token) auth and streaming;
		// it never shares the query semaphore — shipping must not compete
		// with queries for admission.
		s.mux.Handle("/replication/", cfg.Replication)
	}
	return s
}

// Registry returns the telemetry registry /metrics serves, so embedders
// can register process-level families on the same exposition.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// AdminMux returns an http.Handler serving the runtime introspection
// routes — net/http/pprof under /debug/pprof/ plus this server's
// /metrics, /debug/queries, /debug/store, and /debug/cache — for
// binding to a separate, non-public address (eeserve -pprof-addr).
// Unlike the public mux, the debug routes here skip token auth: the
// bind address is the access control.
func (s *Server) AdminMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	mux.HandleFunc("/debug/store", s.handleDebugStore)
	mux.HandleFunc("/debug/cache", s.handleDebugCache)
	return mux
}

// handleLoad is the live ingestion route: an authenticated POST whose
// body is an N-Triples stream. Loaded triples advance the store
// version, so every cached result keyed on the old version stops being
// addressable the moment the load lands (the result cache needs no
// explicit flush).
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if s.cfg.ReadOnly != "" {
		// Replicas take writes only from their primary's stream; a 403
		// (not 404) tells the operator the route exists but this node is
		// the wrong place for it.
		http.Error(w, "read-only: "+s.cfg.ReadOnly, http.StatusForbidden)
		return
	}
	if s.cfg.Loader == nil || s.cfg.LoadToken == "" {
		http.Error(w, "ingestion not enabled", http.StatusNotFound)
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !s.authorizedLoad(r) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="load"`)
		http.Error(w, "missing or invalid load token", http.StatusUnauthorized)
		return
	}
	// A degraded store is read-only: the WAL took a sticky failure, so
	// accepting triples would lose them on restart. Queries keep being
	// served; only this write path closes.
	if s.cfg.Degraded != nil {
		if derr := s.cfg.Degraded(); derr != nil {
			s.metrics.loadErrors.Add(1)
			w.Header().Set("Retry-After", "30")
			http.Error(w, fmt.Sprintf("store is degraded (read-only): %v; restart the server to recover", derr),
				http.StatusServiceUnavailable)
			return
		}
	}
	start := time.Now()
	n, err := s.cfg.Loader.LoadNTriples(r.Body)
	s.metrics.loadedTriples.Add(uint64(n))
	if err != nil {
		// Triples before the offending line are already in (and
		// journaled); report both the failure and the partial count.
		// A journal (disk) failure is the server's fault, not the
		// client's — distinguish 500 from 400 so monitoring does too.
		// Matching against the loader's sticky journal error (rather
		// than its mere presence) keeps a later client's parse error
		// from being blamed on an old server fault.
		s.metrics.loadErrors.Add(1)
		status := http.StatusBadRequest
		if je, ok := s.cfg.Loader.(interface{ JournalErr() error }); ok {
			if jerr := je.JournalErr(); jerr != nil && errors.Is(err, jerr) {
				status = http.StatusInternalServerError
			}
		}
		http.Error(w, fmt.Sprintf("load failed after %d triples: %v", n, err), status)
		return
	}
	s.metrics.loads.Add(1)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"loaded\":%d,\"triples\":%d,\"store_version\":%d,\"elapsed_ms\":%d}\n",
		n, s.engine.Len(), s.engine.Version(), time.Since(start).Milliseconds())
}

// admitReplicaQuery applies replica lag gating: every query response
// from a replica carries X-Replica-Lag (seconds), and once the replica
// is over its staleness budget — lag beyond MaxReplicaLag, or the
// stream parked on a sticky failure — the answer degrades per
// LagPolicy: a Warning header ("serve stale, say so", the default) or
// a 503 with Retry-After so balancers move on. Returns false when the
// request was rejected.
func (s *Server) admitReplicaQuery(w http.ResponseWriter) bool {
	if s.cfg.Replica == nil {
		return true
	}
	rs := s.cfg.Replica()
	w.Header().Set("X-Replica-Lag", strconv.FormatFloat(rs.LagSeconds, 'f', 3, 64))
	over := rs.Err != nil ||
		(s.cfg.MaxReplicaLag > 0 && rs.LagSeconds > s.cfg.MaxReplicaLag.Seconds())
	if !over {
		return true
	}
	if s.cfg.LagPolicy == LagPolicyReject {
		s.metrics.replicaRejected.Inc()
		w.Header().Set("Retry-After", "5")
		reason := fmt.Sprintf("replica is %.1fs behind its primary", rs.LagSeconds)
		if rs.Err != nil {
			reason = "replication is degraded: " + rs.Err.Error()
		}
		http.Error(w, reason+"; query the primary or another replica", http.StatusServiceUnavailable)
		return false
	}
	w.Header().Set("Warning", `199 - "replica results may be stale"`)
	return true
}

// authorizedLoad accepts the configured token via "Authorization:
// Bearer <token>" or an X-Load-Token header, compared in constant time.
func (s *Server) authorizedLoad(r *http.Request) bool {
	tok := ""
	if h := r.Header.Get("Authorization"); strings.HasPrefix(h, "Bearer ") {
		tok = strings.TrimSpace(strings.TrimPrefix(h, "Bearer "))
	}
	if tok == "" {
		tok = r.Header.Get("X-Load-Token")
	}
	return tok != "" && subtle.ConstantTimeCompare([]byte(tok), []byte(s.cfg.LoadToken)) == 1
}

// queryText extracts the query string per the SPARQL Protocol: the
// `query` parameter on GET or form POST, or the raw body for
// application/sparql-query POSTs.
func (s *Server) queryText(r *http.Request) (string, error) {
	switch r.Method {
	case http.MethodGet:
		return r.URL.Query().Get("query"), nil
	case http.MethodPost:
		ct := strings.TrimSpace(strings.SplitN(r.Header.Get("Content-Type"), ";", 2)[0])
		if strings.EqualFold(ct, "application/sparql-query") {
			body, err := io.ReadAll(io.LimitReader(r.Body, int64(s.cfg.MaxQueryLen)+1))
			if err != nil {
				return "", err
			}
			if len(body) > s.cfg.MaxQueryLen {
				return "", fmt.Errorf("query exceeds %d bytes", s.cfg.MaxQueryLen)
			}
			return string(body), nil
		}
		return r.FormValue("query"), nil
	default:
		return "", fmt.Errorf("method %s not allowed", r.Method)
	}
}

func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !s.admitReplicaQuery(w) {
		return
	}

	qs, err := s.queryText(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if strings.TrimSpace(qs) == "" {
		http.Error(w, "missing query parameter", http.StatusBadRequest)
		return
	}
	if len(qs) > s.cfg.MaxQueryLen {
		http.Error(w, fmt.Sprintf("query exceeds %d bytes", s.cfg.MaxQueryLen), http.StatusBadRequest)
		return
	}

	// Resolve the output format: an explicit format parameter (URL query
	// or form body — FormValue covers both) beats Accept negotiation.
	var format Format
	if fp := r.FormValue("format"); fp != "" {
		f, ok := ParseFormat(fp)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown format %q", fp), http.StatusBadRequest)
			return
		}
		format = f
	} else {
		f, ok := NegotiateFormat(r.Header.Get("Accept"))
		if !ok {
			http.Error(w, "no supported media type in Accept", http.StatusNotAcceptable)
			return
		}
		format = f
	}

	start := time.Now()
	q, err := sparql.Parse(qs)
	if err != nil {
		s.metrics.countError(errKindParse)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	geomVar := r.FormValue("geom")

	// ?analyze=1 (or the SPARQL-Analyze: 1 header) attaches the EXPLAIN
	// ANALYZE profile as a JSON sidecar; such requests bypass the result
	// cache because a cached body has no fresh execution to profile.
	analyze := r.FormValue("analyze") == "1" || r.Header.Get("SPARQL-Analyze") == "1"

	// The key uses the full canonical text rather than its hash: exact,
	// and the cacheKey is a string anyway.
	key := cacheKey{query: q.Canonical() + "\x00" + geomVar, version: s.engine.Version(), format: format}
	if !analyze {
		if entry, ok := s.cache.get(key); ok {
			s.metrics.cacheHits.Add(1)
			s.finish(w, format, entry.body, true, start)
			return
		}
	}

	// Admission control guards the expensive part — evaluation. Reject
	// rather than queue when saturated, so overload sheds load instead of
	// stacking latency. The slot is released when evaluation completes,
	// even if the request has already timed out, so abandoned queries
	// still count against MaxInFlight while they burn CPU.
	select {
	case s.sem <- struct{}{}:
	default:
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server at capacity", http.StatusServiceUnavailable)
		return
	}
	if !analyze {
		s.metrics.cacheMisses.Add(1)
	}

	// Slow-query capture needs a profile for any query that might turn
	// out slow, so when the threshold is set every evaluated query runs
	// instrumented (the enabled-path cost; the disabled path stays free).
	evalStart := time.Now()
	res, prof, err := s.evalWithTimeout(r.Context(), q, analyze || s.cfg.SlowQueryThreshold > 0)
	evalElapsed := time.Since(evalStart)
	if err != nil {
		switch err {
		case context.DeadlineExceeded:
			s.metrics.timeouts.Add(1)
			s.recordSlow(r.Context(), q, "timeout", evalStart, evalElapsed, 0, nil)
			http.Error(w, "query timed out", http.StatusGatewayTimeout)
		case context.Canceled:
			// Client went away mid-evaluation; nobody is listening, and it
			// was not a server-side deadline, so don't count it as one.
		default:
			var pe *panicError
			if errors.As(err, &pe) {
				// The engine panicked inside the evaluation goroutine; the
				// recover happened there (a handler-level recover cannot
				// reach another goroutine) and the panic arrived here as an
				// error. The panic value never leaks to the client — only
				// the request ID, which correlates with the logged stack.
				s.serverError(w, r, pe)
				return
			}
			s.metrics.countError(errKindEval)
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	s.metrics.execRows.Add(uint64(res.Len()))
	if prof != nil {
		s.metrics.filterDrops.Add(uint64(prof.TotalFilterDrops()))
		s.recordSlow(r.Context(), q, "slow", evalStart, evalElapsed, res.Len(), prof)
	}

	if analyze {
		s.writeAnalyzed(w, res, prof, geomVar, start)
		return
	}
	var buf bytes.Buffer
	if err := WriteResults(&buf, format, res, geomVar); err != nil {
		s.metrics.countError(errKindSerialize)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.cache.put(key, buf.Bytes(), res.Len())
	s.finish(w, format, buf.Bytes(), false, start)
}

// writeAnalyzed writes the ?analyze=1 response: a JSON envelope with
// the execution profile and the SPARQL JSON results side by side.
func (s *Server) writeAnalyzed(w http.ResponseWriter, res *sparql.Results, prof *sparql.Profile, geomVar string, start time.Time) {
	var rbuf bytes.Buffer
	if err := WriteResults(&rbuf, FormatJSON, res, geomVar); err != nil {
		s.metrics.countError(errKindSerialize)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	env := struct {
		Profile *sparql.Profile `json:"profile"`
		Results json.RawMessage `json:"results"`
	}{Profile: prof, Results: json.RawMessage(rbuf.Bytes())}
	body, err := json.Marshal(env)
	if err != nil {
		s.metrics.countError(errKindSerialize)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.metrics.queries.Add(1)
	s.metrics.observe(time.Since(start))
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "BYPASS")
	w.Write(append(body, '\n'))
}

// finish writes a successful response body and records metrics.
func (s *Server) finish(w http.ResponseWriter, format Format, body []byte, hit bool, start time.Time) {
	s.metrics.queries.Add(1)
	s.metrics.observe(time.Since(start))
	w.Header().Set("Content-Type", format.ContentType())
	if hit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	w.Write(body)
}

// panicError carries a recovered panic out of the evaluation goroutine
// as an ordinary error.
type panicError struct {
	val   any
	stack []byte
}

func (e *panicError) Error() string { return fmt.Sprintf("panic: %v", e.val) }

// recoverPanics wraps a handler so a panic in it answers 500 (with the
// request ID for log correlation) instead of killing the connection —
// and, since http.Server would only recover per-connection anyway,
// keeps the behavior uniform with the evaluation-goroutine recovery,
// where a panic would otherwise crash the whole process.
func (s *Server) recoverPanics(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.serverError(w, r, &panicError{val: p, stack: debug.Stack()})
			}
		}()
		h(w, r)
	}
}

// serverError reports a recovered panic: counts it under
// sparql_query_errors_total{kind="panic"}, logs the stack with the
// request ID, and answers 500 carrying only the request ID.
func (s *Server) serverError(w http.ResponseWriter, r *http.Request, pe *panicError) {
	s.metrics.countError(errKindPanic)
	rid := w.Header().Get("X-Request-ID")
	if s.logger != nil {
		s.logger.Error("panic serving request",
			"request_id", rid, "path", r.URL.Path,
			"panic", fmt.Sprint(pe.val), "stack", string(pe.stack))
	}
	// If the handler already streamed a response body this write is a
	// no-op on the status line; the client sees a truncated body, which
	// is the best an HTTP/1 server can do mid-stream.
	http.Error(w, fmt.Sprintf("internal server error (request %s)", rid), http.StatusInternalServerError)
}

// evalWithTimeout evaluates q, abandoning the wait when the per-query
// deadline or the client connection expires. Engines implementing
// ContextEngine receive the deadline context and stop their executor
// workers promptly on expiry; plain Engine evaluation is not
// preemptible, so a timed-out query finishes in the background. Either
// way the admission slot is held until evaluation actually ends, which
// is what bounds runaway load. The caller must have acquired s.sem.
func (s *Server) evalWithTimeout(ctx context.Context, q *sparql.Query, analyze bool) (*sparql.Results, *sparql.Profile, error) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.QueryTimeout)
	defer cancel()
	type evalResult struct {
		res  *sparql.Results
		prof *sparql.Profile
		err  error
	}
	ch := make(chan evalResult, 1)
	go func() {
		defer func() { <-s.sem }()
		// Register in the running-query set for the goroutine's whole
		// lifetime: a query whose client timed out keeps showing in
		// /debug/queries while its executor drains.
		rid := s.running.add(sparql.RequestIDFrom(ctx), q)
		defer s.running.remove(rid)
		var res *sparql.Results
		var prof *sparql.Profile
		var err error
		// Evaluation runs on this goroutine, out of reach of any
		// handler-level recover: a panicking engine would kill the whole
		// process. Recover here and deliver the panic as an error.
		func() {
			defer func() {
				if p := recover(); p != nil {
					err = &panicError{val: p, stack: debug.Stack()}
				}
			}()
			if ae, ok := s.engine.(AnalyzeEngine); ok && analyze {
				res, prof, err = ae.QueryAnalyze(ctx, q)
			} else if ce, ok := s.engine.(ContextEngine); ok {
				// A timed-out engine reports ctx.Err() itself, which the
				// handler's error switch already maps to 504.
				res, err = ce.QueryContext(ctx, q)
			} else {
				res, err = s.engine.Query(q)
			}
		}()
		ch <- evalResult{res, prof, err}
	}()
	select {
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	case ev := <-ch:
		return ev.res, ev.prof, ev.err
	}
}
