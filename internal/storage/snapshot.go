package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/rdf"
	"repro/internal/storage/vfs"
)

// snapshotMagic identifies format version 02 snapshot files:
//
//	magic | payload | u64 tripleOff | u32 crc32(payload + tripleOff)
//
// tripleOff is the byte offset (within the payload) of the encoded
// triple segment, letting recovery decode the dictionary segment and
// the triple segment on two cores; it sits in the trailer because the
// writer only knows it after streaming the dictionary.
const snapshotMagic = "EESNAP02"

// SnapshotInfo summarizes a snapshot file for inspection tools.
type SnapshotInfo struct {
	Path    string
	Version uint64 // store mutation version at capture
	Terms   int    // dictionary segment size
	Triples int    // encoded-triple segment size
	Bytes   int64  // file size
}

// WriteSnapshotTo encodes a snapshot of (terms, triples, version) to w.
func WriteSnapshotTo(w *bufio.Writer, terms []rdf.Term, triples []rdf.EncTriple, version uint64) error {
	if _, err := w.WriteString(snapshotMagic); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	payloadLen := uint64(0)
	// Every payload byte goes through both the file writer and the CRC.
	emit := func(buf []byte) error {
		crc.Write(buf)
		payloadLen += uint64(len(buf))
		_, err := w.Write(buf)
		return err
	}
	var scratch []byte
	scratch = binary.AppendUvarint(scratch, version)
	scratch = binary.AppendUvarint(scratch, uint64(len(terms)))
	if err := emit(scratch); err != nil {
		return err
	}
	for _, t := range terms {
		scratch = appendTerm(scratch[:0], t)
		if err := emit(scratch); err != nil {
			return err
		}
	}
	tripleOff := payloadLen
	scratch = binary.AppendUvarint(scratch[:0], uint64(len(triples)))
	if err := emit(scratch); err != nil {
		return err
	}
	for _, t := range triples {
		scratch = binary.AppendUvarint(scratch[:0], uint64(t.S))
		scratch = binary.AppendUvarint(scratch, uint64(t.P))
		scratch = binary.AppendUvarint(scratch, uint64(t.O))
		if err := emit(scratch); err != nil {
			return err
		}
	}
	var trailer [12]byte
	binary.LittleEndian.PutUint64(trailer[0:8], tripleOff)
	crc.Write(trailer[0:8]) // the offset is CRC-protected too
	binary.LittleEndian.PutUint32(trailer[8:12], crc.Sum32())
	if _, err := w.Write(trailer[:]); err != nil {
		return err
	}
	return w.Flush()
}

// SnapshotWriteError reports a failed snapshot capture: which
// filesystem operation failed while writing which file. It is
// distinguishable (by errors.As) from the corruption errors the read
// path returns, so callers can tell "the disk refused the new
// generation" — previous generation intact, retry later — from "the
// bytes on disk are damaged". Unwrap exposes the underlying cause, so
// errors.Is still sees ENOSPC and friends through it.
type SnapshotWriteError struct {
	Op   string // create | write | fsync | close | rename | dirsync
	Path string // the file the operation ran against
	Err  error
}

func (e *SnapshotWriteError) Error() string {
	return fmt.Sprintf("storage: snapshot %s %s: %v", e.Op, e.Path, e.Err)
}

func (e *SnapshotWriteError) Unwrap() error { return e.Err }

// WriteSnapshotFile captures st and writes it atomically to path: the
// bytes go to path+".tmp", are fsynced, and then renamed over path.
func WriteSnapshotFile(path string, st *rdf.Store) error {
	terms, triples, version := st.SnapshotData()
	return writeSnapshotData(vfs.OS, nil, path, terms, triples, version)
}

// writeSnapshotData writes one snapshot generation through fsys. Every
// failure path removes the .tmp file and leaves whatever was at path
// before untouched — the rename is the only operation that can change
// it, and a failed rename changes nothing. Failures count on
// storage_io_errors_total (m may be nil) and come back as
// *SnapshotWriteError.
// discardTemp abandons a half-written snapshot temp file on a failure
// path. The write error being returned to the caller stays primary;
// close/remove failures here are best-effort cleanup, but they still
// count on storage_io_errors_total so a directory slowly filling with
// orphaned .tmp files is visible to operators. Pass f nil when the
// handle is already closed.
func discardTemp(fsys vfs.FS, m *Metrics, f vfs.File, tmp string) {
	if f != nil {
		if err := f.Close(); err != nil {
			m.ioError("close")
		}
	}
	if err := fsys.Remove(tmp); err != nil {
		m.ioError("remove")
	}
}

func writeSnapshotData(fsys vfs.FS, m *Metrics, path string, terms []rdf.Term, triples []rdf.EncTriple, version uint64) error {
	tmp := path + ".tmp"
	fail := func(op, p string, err error) error {
		m.ioError(op)
		return &SnapshotWriteError{Op: op, Path: p, Err: err}
	}
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fail("create", tmp, err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if err := WriteSnapshotTo(w, terms, triples, version); err != nil {
		discardTemp(fsys, m, f, tmp)
		return fail("write", tmp, err)
	}
	if err := f.Sync(); err != nil {
		discardTemp(fsys, m, f, tmp)
		return fail("fsync", tmp, err)
	}
	if err := f.Close(); err != nil {
		discardTemp(fsys, m, nil, tmp)
		return fail("close", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		discardTemp(fsys, m, nil, tmp)
		return fail("rename", tmp, err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		// The rename happened but its durability is unknown: a crash now
		// could resurrect the old directory entry. Report it — recovery
		// falls back to the previous generation plus its WAL segments, but
		// callers must not prune those segments believing this snapshot is
		// on disk.
		return fail("dirsync", filepath.Dir(path), err)
	}
	return nil
}

// ReadSnapshotFile loads and verifies a snapshot file, returning the
// dictionary segment, encoded triple segment, and capture version. Any
// framing, CRC, or decoding failure is an error — callers fall back to
// an older snapshot generation.
func ReadSnapshotFile(path string) (terms []rdf.Term, triples []rdf.EncTriple, version uint64, err error) {
	terms, _, triples, version, err = readSnapshot(vfs.OS, path, false)
	return terms, triples, version, err
}

// LoadSnapshotFile reads, verifies, and installs a snapshot into an
// empty store. This is the cold-restart fast path: the dictionary
// segment, the triple segment, and the term→ID index all build on
// separate cores. On error the store is untouched.
func LoadSnapshotFile(path string, st *rdf.Store) (SnapshotInfo, error) {
	return loadSnapshotFileFS(vfs.OS, path, st)
}

func loadSnapshotFileFS(fsys vfs.FS, path string, st *rdf.Store) (SnapshotInfo, error) {
	terms, byTerm, triples, version, err := readSnapshot(fsys, path, true)
	if err != nil {
		return SnapshotInfo{}, err
	}
	if err := st.InstallSnapshotPrepared(terms, byTerm, triples); err != nil {
		return SnapshotInfo{}, err
	}
	return SnapshotInfo{Path: path, Version: version, Terms: len(terms), Triples: len(triples)}, nil
}

// readSnapshot decodes a snapshot file; with buildIndex it additionally
// constructs the term→ID map on a third goroutine, pipelined behind the
// dictionary decode.
func readSnapshot(fsys vfs.FS, path string, buildIndex bool) (terms []rdf.Term, byTerm map[rdf.Term]rdf.ID, triples []rdf.EncTriple, version uint64, err error) {
	raw, err := fsys.ReadFile(path)
	if err != nil {
		return nil, nil, nil, 0, fmt.Errorf("storage: read snapshot: %w", err)
	}
	if len(raw) < len(snapshotMagic)+12 || string(raw[:len(snapshotMagic)]) != snapshotMagic {
		return nil, nil, nil, 0, fmt.Errorf("storage: %s is not a snapshot file", path)
	}
	checked := raw[len(snapshotMagic) : len(raw)-4] // payload + offset trailer
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(checked) != want {
		return nil, nil, nil, 0, fmt.Errorf("storage: snapshot %s failed CRC check", path)
	}
	tripleOff := binary.LittleEndian.Uint64(checked[len(checked)-8:])
	// One conversion for the whole payload; every decoded term value is
	// a zero-copy substring of it.
	payload := string(checked[:len(checked)-8])
	if tripleOff > uint64(len(payload)) {
		return nil, nil, nil, 0, fmt.Errorf("storage: snapshot triple segment offset %d beyond payload", tripleOff)
	}
	d := &decoder{buf: payload}
	if version, err = d.uvarint(); err != nil {
		return nil, nil, nil, 0, err
	}
	nTerms, err := d.uvarint()
	if err != nil {
		return nil, nil, nil, 0, err
	}
	if nTerms > uint64(len(payload)) { // each term costs ≥ 2 bytes
		return nil, nil, nil, 0, fmt.Errorf("storage: snapshot term count %d exceeds payload", nTerms)
	}

	// The trailer offset lets the triple segment decode concurrently
	// with the dictionary segment.
	type tripleResult struct {
		triples []rdf.EncTriple
		err     error
	}
	tripleCh := make(chan tripleResult, 1)
	go func() {
		td := &decoder{buf: payload, off: int(tripleOff)}
		nTriples, err := td.uvarint()
		if err != nil {
			tripleCh <- tripleResult{nil, err}
			return
		}
		if nTriples > uint64(len(payload)) { // each triple costs ≥ 3 bytes
			tripleCh <- tripleResult{nil, fmt.Errorf("storage: snapshot triple count %d exceeds payload", nTriples)}
			return
		}
		out := make([]rdf.EncTriple, 0, nTriples)
		for i := uint64(0); i < nTriples; i++ {
			var ids [3]uint64
			for j := range ids {
				v, err := td.uvarint()
				if err != nil {
					tripleCh <- tripleResult{nil, err}
					return
				}
				if v == 0 || v > nTerms {
					tripleCh <- tripleResult{nil, fmt.Errorf("storage: snapshot triple references term ID %d of %d", v, nTerms)}
					return
				}
				ids[j] = v
			}
			out = append(out, rdf.EncTriple{
				S: rdf.ID(ids[0]), P: rdf.ID(ids[1]), O: rdf.ID(ids[2]),
			})
		}
		if td.remaining() != 0 {
			tripleCh <- tripleResult{nil, fmt.Errorf("storage: %d trailing bytes in snapshot payload", td.remaining())}
			return
		}
		tripleCh <- tripleResult{out, nil}
	}()

	// With buildIndex, a third goroutine constructs the term→ID map,
	// pipelined one batch behind the decode loop. Each send carries its
	// own subslice header (terms is preallocated to full capacity, so
	// the backing array never moves and sent elements are never written
	// again); the builder must not touch the `terms` variable itself,
	// which the decode loop keeps reassigning.
	type indexBatchMsg struct {
		base  int // ID of batch[0] is base+1
		batch []rdf.Term
	}
	type indexResult struct {
		byTerm map[rdf.Term]rdf.ID
		err    error
	}
	var rangeCh chan indexBatchMsg
	var indexCh chan indexResult
	if buildIndex {
		rangeCh = make(chan indexBatchMsg, 64)
		indexCh = make(chan indexResult, 1)
		go func() {
			m := make(map[rdf.Term]rdf.ID, nTerms)
			var dupErr error
			for r := range rangeCh {
				if dupErr != nil {
					continue // drain so the decoder never blocks
				}
				for i, t := range r.batch {
					m[t] = rdf.ID(r.base + i + 1)
					if len(m) != r.base+i+1 {
						dupErr = fmt.Errorf("storage: duplicate term %s in dictionary segment", t)
						break
					}
				}
			}
			indexCh <- indexResult{m, dupErr}
		}()
	}

	const indexBatch = 8192
	terms = make([]rdf.Term, 0, nTerms)
	sent := 0
	var termErr error
	for i := uint64(0); i < nTerms; i++ {
		t, err := d.term()
		if err != nil {
			termErr = err
			break
		}
		terms = append(terms, t)
		if buildIndex && len(terms)-sent >= indexBatch {
			rangeCh <- indexBatchMsg{sent, terms[sent:len(terms):len(terms)]}
			sent = len(terms)
		}
	}
	if buildIndex {
		if sent < len(terms) {
			rangeCh <- indexBatchMsg{sent, terms[sent:len(terms):len(terms)]}
		}
		close(rangeCh)
	}
	if termErr == nil && d.off != int(tripleOff) {
		termErr = fmt.Errorf("storage: dictionary segment ends at %d, triple segment starts at %d", d.off, tripleOff)
	}
	tr := <-tripleCh
	var idx indexResult
	if buildIndex {
		idx = <-indexCh
	}
	if termErr != nil {
		return nil, nil, nil, 0, termErr
	}
	if tr.err != nil {
		return nil, nil, nil, 0, tr.err
	}
	if buildIndex && idx.err != nil {
		return nil, nil, nil, 0, idx.err
	}
	return terms, idx.byTerm, tr.triples, version, nil
}

// InspectSnapshot reads only enough of a snapshot to describe it (the
// whole file is still CRC-verified).
func InspectSnapshot(path string) (SnapshotInfo, error) {
	return inspectSnapshotFS(vfs.OS, path)
}

// InspectSnapshotFS is InspectSnapshot over an injected filesystem;
// the replication bootstrap uses it to verify a downloaded snapshot
// before trusting it as the replica's seed.
func InspectSnapshotFS(fsys vfs.FS, path string) (SnapshotInfo, error) {
	return inspectSnapshotFS(fsys, path)
}

func inspectSnapshotFS(fsys vfs.FS, path string) (SnapshotInfo, error) {
	terms, _, triples, version, err := readSnapshot(fsys, path, false)
	if err != nil {
		return SnapshotInfo{}, err
	}
	fi, err := fsys.Stat(path)
	if err != nil {
		return SnapshotInfo{}, err
	}
	return SnapshotInfo{
		Path:    path,
		Version: version,
		Terms:   len(terms),
		Triples: len(triples),
		Bytes:   fi.Size(),
	}, nil
}
