package telemetry

import (
	"strings"
	"testing"
)

// TestLintClean checks a well-formed exposition passes.
func TestLintClean(t *testing.T) {
	clean := `# HELP reqs_total Requests.
# TYPE reqs_total counter
reqs_total 4
reqs_total{kind="parse"} 1
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="+Inf"} 2
lat_seconds_sum 1.5
lat_seconds_count 2
`
	if findings := LintExposition(clean); len(findings) != 0 {
		t.Errorf("clean exposition flagged: %v", findings)
	}
}

// TestLintFindings checks each rule fires on a minimal violation.
func TestLintFindings(t *testing.T) {
	cases := []struct {
		name, text, wantSub string
	}{
		{
			"missing TYPE",
			"orphan_total 1\n",
			"no preceding # TYPE",
		},
		{
			"missing HELP",
			"# TYPE x_total counter\nx_total 1\n",
			"no # HELP",
		},
		{
			"duplicate series",
			"# HELP x_total X.\n# TYPE x_total counter\nx_total 1\nx_total 2\n",
			"duplicate series",
		},
		{
			"counter not _total",
			"# HELP x X.\n# TYPE x counter\nx 1\n",
			"should end in _total",
		},
		{
			"non-cumulative buckets",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"must be cumulative",
		},
		{
			"missing +Inf",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
			"do not end in le=\"+Inf\"",
		},
		{
			"count mismatch",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 4\n",
			"_count 4 != +Inf bucket 5",
		},
		{
			"missing sum",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
			"missing _sum",
		},
		{
			"bad value",
			"# HELP x_total X.\n# TYPE x_total counter\nx_total banana\n",
			"not a number",
		},
		{
			"malformed labels",
			"# HELP x_total X.\n# TYPE x_total counter\nx_total{kind=parse} 1\n",
			"malformed sample",
		},
	}
	for _, tc := range cases {
		findings := LintExposition(tc.text)
		found := false
		for _, f := range findings {
			if strings.Contains(f, tc.wantSub) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: findings %v do not mention %q", tc.name, findings, tc.wantSub)
		}
	}
}
