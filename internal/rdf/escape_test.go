package rdf

import (
	"strings"
	"testing"
)

// TestLiteralEscapeRoundTrip pushes hostile lexical forms through the
// full serialize → parse pipeline (Triple.String → ParseTripleLine) and
// demands exact round-tripping, per the N-Triples ECHAR/UCHAR grammar.
func TestLiteralEscapeRoundTrip(t *testing.T) {
	hostile := []string{
		`plain`,
		`with "double quotes"`,
		`backslash \ in the middle`,
		`trailing backslash \`,
		"\\",
		`\\`,
		`\" already-escaped-looking`,
		"newline\nand\r\nCRLF",
		"tab\tseparated\tcells",
		"bell\x07 backspace\b formfeed\f vertical\x0b",
		"null\x00byte",
		"unicode: héllo wörld — ελληνικά 中文 🚀",
		"del\x7fchar",
		`POLYGON ((0 0, 1 "0", 1 1))`,
		`a \n that is literal text, not a newline`,
		"mixed \\ \" \n \t \\u0041 soup",
	}
	for _, lex := range hostile {
		for _, term := range []Term{
			NewLiteral(lex),
			NewLangLiteral(lex, "en"),
			NewTypedLiteral(lex, WKTLiteral),
		} {
			orig := NewTriple(NewIRI("http://example.org/s"), NewIRI("http://example.org/p"), term)
			line := orig.String()
			got, err := ParseTripleLine(line)
			if err != nil {
				t.Fatalf("ParseTripleLine(%q): %v", line, err)
			}
			if got != orig {
				t.Errorf("round trip %q:\n  wrote %q\n  got   %#v\n  want  %#v", lex, line, got.O, orig.O)
			}
		}
	}
}

// TestUnescapeLiteralSpecForms checks that spec escape forms written by
// other tools (\uXXXX, \UXXXXXXXX, \') decode, and that non-N-Triples
// escapes are rejected rather than silently mangled.
func TestUnescapeLiteralSpecForms(t *testing.T) {
	ok := map[string]string{
		`"\u0041"`:         "A",
		`"\U0001F680"`:     "🚀",
		`"\'"`:             "'",
		`"\t\b\n\r\f\"\\"`: "\t\b\n\r\f\"\\",
		`"\u00e9t\u00e9"`:  "été",
	}
	for in, want := range ok {
		got, err := unescapeLiteral(in)
		if err != nil {
			t.Errorf("unescapeLiteral(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("unescapeLiteral(%q) = %q, want %q", in, got, want)
		}
	}

	bad := []string{
		`"\x41"`,       // Go hex escape, not N-Triples
		`"\a"`,         // Go bell escape
		`"\q"`,         // unknown
		`"\u12"`,       // truncated
		`"\U1234"`,     // truncated
		`"\uZZZZ"`,     // bad hex
		`"\"`,          // bare trailing backslash
		`"\UFFFFFFFF"`, // not a valid code point
	}
	for _, in := range bad {
		if got, err := unescapeLiteral(in); err == nil {
			t.Errorf("unescapeLiteral(%q) = %q, want error", in, got)
		}
	}
}

// TestScanNTriplesStreaming exercises the streaming API: per-triple
// callbacks, callback error propagation, and agreement with the
// materializing wrapper.
func TestScanNTriplesStreaming(t *testing.T) {
	input := `<http://a> <http://p> "v1" .
# comment

<http://b> <http://p> "line\nbreak" .
<http://c> <http://p> "v3" .
`
	var seen []Triple
	lines, err := ScanNTriples(strings.NewReader(input), func(tr Triple) error {
		seen = append(seen, tr)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if lines != 5 || len(seen) != 3 {
		t.Fatalf("lines=%d triples=%d, want 5/3", lines, len(seen))
	}
	if seen[1].O.Value != "line\nbreak" {
		t.Errorf("escaped literal = %q", seen[1].O.Value)
	}

	read, _, err := ReadNTriples(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(read) != len(seen) {
		t.Fatalf("ReadNTriples disagrees with ScanNTriples: %d vs %d", len(read), len(seen))
	}

	wantErr := strings.NewReader(`<http://a> <http://p> "v" .`)
	if _, err := ScanNTriples(wantErr, func(Triple) error { return errStop }); err != errStop {
		t.Errorf("callback error not propagated: %v", err)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }
