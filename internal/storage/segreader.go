package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/rdf"
	"repro/internal/storage/vfs"
)

// This file is the storage half of WAL shipping: a cursor type naming a
// durable position in the segment sequence, and a SegmentReader that
// streams committed records from any cursor forward — across sealed
// segments and into the live tail — without ever touching the writer's
// lock for longer than a field read. The replication feed drives it;
// nothing here can block or fail the commit path.

// Cursor identifies a position in the WAL stream: the byte offset just
// past the last consumed record of segment Seq. The zero Cursor is
// "before everything".
type Cursor struct {
	Seq    int   // WAL segment sequence number (wal-<seq>.log)
	Offset int64 // byte offset just past the last consumed record
}

// String renders the cursor in the "seq:offset" wire form used by the
// replication protocol's query parameter and state files.
func (c Cursor) String() string { return fmt.Sprintf("%d:%d", c.Seq, c.Offset) }

// ParseCursor parses the "seq:offset" form produced by String.
func ParseCursor(s string) (Cursor, error) {
	var c Cursor
	if _, err := fmt.Sscanf(s, "%d:%d", &c.Seq, &c.Offset); err != nil {
		return Cursor{}, fmt.Errorf("storage: malformed cursor %q: %w", s, err)
	}
	if c.Seq < 0 || c.Offset < 0 {
		return Cursor{}, fmt.Errorf("storage: malformed cursor %q: negative component", s)
	}
	return c, nil
}

// Before reports whether c is strictly earlier in the stream than o.
func (c Cursor) Before(o Cursor) bool {
	return c.Seq < o.Seq || (c.Seq == o.Seq && c.Offset < o.Offset)
}

// ErrCursorTruncated reports that the segment a cursor points into has
// been pruned by compaction: the stream cannot resume from there and
// the consumer must re-bootstrap from a snapshot.
var ErrCursorTruncated = errors.New("storage: cursor position pruned by compaction")

// ErrCaughtUp is returned by SegmentReader.Next when every durable
// record at or before the end cursor has been delivered. The consumer
// polls again later; more may have become durable.
var ErrCaughtUp = errors.New("storage: caught up with durable WAL end")

// StartCursor returns the earliest position still on disk: offset 0 of
// the oldest retained WAL segment. A consumer with no state starts
// here (after installing the snapshot that compaction left covering
// everything earlier).
func (db *DB) StartCursor() (Cursor, error) {
	segs, err := db.listSegments()
	if err != nil {
		return Cursor{}, err
	}
	if len(segs) == 0 {
		// Before Recover creates the first segment; position at the
		// segment it will create.
		return Cursor{Seq: 1}, nil
	}
	return Cursor{Seq: segs[0].Seq}, nil
}

// EndCursor returns the durable end of the stream: the active segment's
// sequence number and its fsynced byte length. Everything before this
// cursor survives a primary power cut, so it is the exact prefix a
// replica is allowed to see.
func (db *DB) EndCursor() Cursor {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.log == nil {
		return Cursor{Seq: db.seq}
	}
	return Cursor{Seq: db.seq, Offset: db.log.DurableOffset()}
}

// LagBytes returns how many durable WAL bytes lie past c — the
// replication lag of a consumer positioned there. Segments already
// pruned under the cursor contribute nothing (the consumer is beyond
// them if it read them, or needs a re-bootstrap which lag cannot
// express anyway).
func (db *DB) LagBytes(c Cursor) (int64, error) {
	end := db.EndCursor()
	segs, err := db.listSegments()
	if err != nil {
		return 0, err
	}
	var lag int64
	for _, s := range segs {
		if s.Seq < c.Seq || s.Seq > end.Seq {
			continue
		}
		var size int64
		if s.Seq == end.Seq {
			size = end.Offset
		} else {
			fi, err := db.fsys.Stat(s.Path)
			if err != nil {
				return 0, err
			}
			size = fi.Size()
		}
		if s.Seq == c.Seq {
			size -= c.Offset
		}
		if size > 0 {
			lag += size
		}
	}
	return lag, nil
}

// LatestSnapshot returns the newest snapshot on disk together with the
// cursor a consumer should resume from after installing it (the oldest
// retained segment — every pruned segment is covered by the snapshot).
// ok is false when no snapshot exists yet; the returned cursor is then
// simply the start of the stream.
func (db *DB) LatestSnapshot() (info SnapshotInfo, resume Cursor, ok bool, err error) {
	resume, err = db.StartCursor()
	if err != nil {
		return SnapshotInfo{}, Cursor{}, false, err
	}
	snaps, _, err := db.listSnapshots()
	if err != nil {
		return SnapshotInfo{}, Cursor{}, false, err
	}
	if len(snaps) == 0 {
		return SnapshotInfo{}, resume, false, nil
	}
	return snaps[0], resume, true, nil
}

// SegmentReader streams committed WAL records from a cursor forward at
// record granularity. It re-reads segment files independently of the
// writer (reads are never blocked by, and never block, commits) and
// refuses to cross the durable end returned by EndCursor, so a
// consumer can apply everything it is handed without waiting for the
// primary's next fsync. Not safe for concurrent use; each feed
// connection owns one.
type SegmentReader struct {
	db    *DB
	f     vfs.File
	terms []rdf.Term // segment-local dictionary built while scanning
	cur   Cursor     // position just past the last returned record
}

// OpenSegmentReader positions a reader at from. The segment holding
// the cursor must still exist (ErrCursorTruncated otherwise), and the
// reader re-scans it from the start to rebuild the segment-local term
// dictionary, tolerating a cursor that lands inside a record by
// rounding down to the previous record boundary (re-delivery is safe:
// the apply path deduplicates).
func (db *DB) OpenSegmentReader(from Cursor) (*SegmentReader, error) {
	segs, err := db.listSegments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("storage: no WAL segments to read")
	}
	idx := -1
	for i, s := range segs {
		if s.Seq == from.Seq {
			idx = i
			break
		}
	}
	if idx == -1 {
		if from.Seq < segs[0].Seq || (from.Seq == 0 && from.Offset == 0) {
			// Zero cursor means "from the beginning"; if that beginning
			// has been compacted away the consumer needs the snapshot
			// first, which is the same re-bootstrap signal.
			if from.Seq == 0 && from.Offset == 0 {
				return db.OpenSegmentReader(Cursor{Seq: segs[0].Seq})
			}
			return nil, ErrCursorTruncated
		}
		return nil, fmt.Errorf("storage: cursor %s points past the newest segment", from)
	}
	r := &SegmentReader{db: db, cur: Cursor{Seq: from.Seq}}
	if err := r.open(segs[idx].Path); err != nil {
		return nil, err
	}
	// Skip forward to the cursor, rebuilding the dictionary as we go.
	// If the cursor lands mid-record (or past the decodable prefix),
	// the loop stops at the last record boundary below it.
	for r.cur.Offset < from.Offset {
		_, fits, err := r.readRecord(from.Offset)
		if err != nil {
			r.closeFile()
			return nil, err
		}
		if !fits {
			break
		}
	}
	return r, nil
}

func (r *SegmentReader) open(path string) error {
	f, err := r.db.fsys.Open(path)
	if err != nil {
		return fmt.Errorf("storage: open WAL segment for shipping: %w", err)
	}
	r.f = f
	r.terms = r.terms[:0]
	return nil
}

func (r *SegmentReader) closeFile() {
	if r.f != nil {
		// Read-only handle; a close error leaks nothing durable.
		if err := r.f.Close(); err != nil {
			r.db.opts.Metrics.ioError("close")
		}
		r.f = nil
	}
}

// Cursor returns the position just past the last record Next returned.
func (r *SegmentReader) Cursor() Cursor { return r.cur }

// Close releases the reader's file handle.
func (r *SegmentReader) Close() error {
	r.closeFile()
	return nil
}

// Next returns the next committed batch and the cursor just past it.
// It returns ErrCaughtUp once every durable record has been delivered
// (poll again later), ErrCursorTruncated if compaction pruned the
// reader's position between polls, and other errors for real I/O
// failures (the connection should drop; the consumer reconnects).
func (r *SegmentReader) Next() ([]rdf.Triple, Cursor, error) {
	end := r.db.EndCursor()
	for {
		if r.cur.Seq > end.Seq {
			// Rotation raced our EndCursor sample; simply not caught up
			// yet from the sample's point of view.
			return nil, r.cur, ErrCaughtUp
		}
		limit := int64(-1) // sealed segment: every byte is durable
		if r.cur.Seq == end.Seq {
			limit = end.Offset
		}
		batch, fits, err := r.readRecord(limit)
		if err != nil {
			return nil, r.cur, err
		}
		if fits {
			if len(batch) == 0 {
				continue // defs-only record: nothing to ship
			}
			return batch, r.cur, nil
		}
		if r.cur.Seq == end.Seq {
			return nil, r.cur, ErrCaughtUp
		}
		// A sealed segment ended (or is damaged past this point — the
		// same bytes recovery would skip); move to the next segment.
		if err := r.advanceSegment(); err != nil {
			return nil, r.cur, err
		}
	}
}

// advanceSegment closes the current segment file and opens the
// immediately following segment, resetting the dictionary. Segment
// numbers are contiguous (Rotate always allocates seq+1), so a missing
// successor below the active segment means compaction pruned the
// reader's position: skipping ahead would silently drop records, so
// that is ErrCursorTruncated and the consumer re-bootstraps.
func (r *SegmentReader) advanceSegment() error {
	segs, err := r.db.listSegments()
	if err != nil {
		return err
	}
	want := r.cur.Seq + 1
	for _, s := range segs {
		if s.Seq == want {
			r.closeFile()
			r.cur = Cursor{Seq: want}
			return r.open(s.Path)
		}
	}
	for _, s := range segs {
		if s.Seq > want {
			return ErrCursorTruncated
		}
	}
	return ErrCaughtUp
}

// readRecord attempts to decode one record at cur.Offset, refusing to
// read past limit (limit < 0 means the whole file). It returns
// fits=false — without advancing — when no complete valid record lies
// below the limit: in the live tail that means "not durable yet", in a
// sealed segment "end of segment or damage". Real read errors (a dead
// filesystem, a vanished file) are returned as err.
func (r *SegmentReader) readRecord(limit int64) (batch []rdf.Triple, fits bool, err error) {
	if limit >= 0 && r.cur.Offset+8 > limit {
		return nil, false, nil
	}
	var header [8]byte
	if ok, err := r.readFull(header[:], r.cur.Offset); err != nil || !ok {
		return nil, false, err
	}
	plen := binary.LittleEndian.Uint32(header[0:4])
	want := binary.LittleEndian.Uint32(header[4:8])
	if plen == 0 || plen > maxRecordLen {
		return nil, false, nil // torn or damaged length prefix
	}
	end := r.cur.Offset + 8 + int64(plen)
	if limit >= 0 && end > limit {
		return nil, false, nil
	}
	payload := make([]byte, plen)
	if ok, err := r.readFull(payload, r.cur.Offset+8); err != nil || !ok {
		return nil, false, err
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, false, nil
	}
	terms, batch, derr := decodeRecord(payload, r.terms)
	if derr != nil {
		return nil, false, nil // same treatment recovery gives it
	}
	r.terms = terms
	r.cur.Offset = end
	return batch, true, nil
}

// readFull reads len(p) bytes at off, reporting ok=false on a clean
// short read (EOF before the bytes exist) and err only for real I/O
// failures.
func (r *SegmentReader) readFull(p []byte, off int64) (ok bool, err error) {
	if _, err := r.f.Seek(off, io.SeekStart); err != nil {
		return false, fmt.Errorf("storage: seek WAL segment: %w", err)
	}
	n, err := io.ReadFull(r.f, p)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("storage: read WAL segment: %w", err)
	}
	return n == len(p), nil
}
