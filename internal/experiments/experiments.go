// Package experiments implements the E1–E15 experiment suite derived
// from the paper's quantitative claims (see DESIGN.md and
// EXPERIMENTS.md). Each experiment builds its workload, runs every
// configuration, and returns a printable table. cmd/eebench prints the
// tables; the repository-root benchmarks reuse the same kernels.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/storage/vfs"
)

// Table is one experiment's result table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Notes)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Config scales the experiment workloads.
type Config struct {
	// Quick shrinks workloads for tests and smoke runs.
	Quick bool
	// FS is the filesystem the seam-mode arms of FaultBench run
	// through; nil means vfs.OS, the production default. Injecting a
	// fault-injecting vfs implementation runs the same workloads over
	// it without touching the direct-os baseline arms.
	FS vfs.FS
}

func (c Config) scale(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// All runs every experiment in order.
func All(cfg Config) []*Table {
	return []*Table{
		E1(cfg), E2(cfg), E3(cfg), E4(cfg), E5(cfg),
		E6(cfg), E7(cfg), E8(cfg), E9(cfg), E10(cfg),
		E11(cfg), E12(cfg), E13(cfg), E14(cfg), E15(cfg),
	}
}

// ByID returns the experiment runner for an ID like "E4".
func ByID(id string) (func(Config) *Table, bool) {
	m := map[string]func(Config) *Table{
		"E1": E1, "E2": E2, "E3": E3, "E4": E4, "E5": E5,
		"E6": E6, "E7": E7, "E8": E8, "E9": E9, "E10": E10,
		"E11": E11, "E12": E12, "E13": E13, "E14": E14, "E15": E15,
	}
	f, ok := m[strings.ToUpper(id)]
	return f, ok
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func i0(v int) string     { return fmt.Sprintf("%d", v) }
