// Command eeserve runs the SPARQL Protocol endpoint over the
// re-engineered geostore: it loads a workload (synthetic features and/or
// an N-Triples file), then serves GET/POST /sparql with content-negotiated
// results plus /metrics and /healthz. With -data-dir it becomes durable:
// boot loads the latest snapshot and replays the WAL tail, every write
// is journaled, and a background trigger compacts the WAL into fresh
// snapshots. With -load-token it additionally accepts live N-Triples
// ingestion on POST /load.
//
// Usage:
//
//	eeserve -addr :8080 -n 100000
//	eeserve -mode partitioned -parts 4 -n 1000000
//	eeserve -load data.nt -n 0
//	eeserve -data-dir /var/lib/eeserve -load-token s3cret
//	eeserve -query-workers 8            # morsel-parallel execution: up to 8
//	                                    # workers per query, and at most 8
//	                                    # extra executor goroutines in total
//	eeserve -log-format json            # structured access log (one line
//	                                    # per request, with X-Request-ID)
//	eeserve -slow-query-threshold 100ms # capture EXPLAIN ANALYZE profiles
//	                                    # of slow queries at /debug/queries
//	eeserve -pprof-addr localhost:6060  # admin mux: net/http/pprof +
//	                                    # /metrics + /debug/{queries,store,cache}
//
// Replication (requires -data-dir on both sides):
//
//	eeserve -data-dir /var/lib/primary -replication-token s3cret
//	                                    # primary: bumps the epoch fence and
//	                                    # serves /replication/{wal,snapshot}
//	eeserve -data-dir /var/lib/replica -replica-of http://primary:8080 \
//	        -replication-token s3cret -max-replica-lag 30s
//	                                    # read-only replica: bootstraps from
//	                                    # the primary's snapshot, streams its
//	                                    # WAL, serves queries with lag gating
//
// Example queries:
//
//	curl 'localhost:8080/sparql?query=SELECT+?f+WHERE+{+?f+a+ee:Feature+}+LIMIT+3'
//	curl -H 'Accept: text/csv' --data-urlencode 'query=...' localhost:8080/sparql
//	curl -X POST -H 'Authorization: Bearer s3cret' --data-binary @more.nt localhost:8080/load
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/endpoint"
	"repro/internal/geom"
	"repro/internal/geostore"
	"repro/internal/rdf"
	"repro/internal/replication"
	"repro/internal/retry"
	"repro/internal/storage"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eeserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eeserve", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	addr := fs.String("addr", ":8080", "listen address")
	n := fs.Int("n", 10000, "synthetic point features to load (0 for none)")
	mode := fs.String("mode", "indexed", "store mode: indexed, naive or partitioned")
	parts := fs.Int("parts", 4, "partition count for -mode partitioned")
	seed := fs.Int64("seed", 42, "workload seed")
	load := fs.String("load", "", "N-Triples file to load (indexed/naive modes)")
	cacheSize := fs.Int("cache", 256, "result cache entries (negative disables)")
	maxInFlight := fs.Int("max-inflight", 16, "max concurrently evaluating queries")
	timeout := fs.Duration("timeout", 30*time.Second, "per-query timeout")
	dataDir := fs.String("data-dir", "", "durable storage directory (WAL + snapshots); empty = ephemeral")
	loadToken := fs.String("load-token", "", "bearer token enabling POST /load ingestion (empty disables)")
	snapshotEvery := fs.Int("snapshot-every", 100000, "journaled triples that trigger a background snapshot (0 disables)")
	walSyncEvery := fs.Int("wal-sync-every", 8, "WAL commits between fsyncs (group commit; 1 = sync every commit)")
	queryWorkers := fs.Int("query-workers", 0,
		"morsel-driven executor workers: per-query degree and the server-wide cap on extra executor goroutines (0 disables parallel execution)")
	logFormat := fs.String("log-format", "", "structured access log format: text, json or empty (no access log)")
	slowThreshold := fs.Duration("slow-query-threshold", 0, "capture EXPLAIN ANALYZE profiles of queries slower than this at /debug/queries (0 disables)")
	pprofAddr := fs.String("pprof-addr", "", "listen address for the admin mux (net/http/pprof, /metrics, /debug/queries); empty disables")
	replicaOf := fs.String("replica-of", "", "primary base URL to replicate from; turns this node into a read-only streaming replica (requires -data-dir and -replication-token)")
	replToken := fs.String("replication-token", "", "shared secret for /replication endpoints; on a primary with -data-dir it enables WAL shipping, on a replica it authenticates to the primary")
	maxReplicaLag := fs.Duration("max-replica-lag", 0, "replica staleness budget; queries on a replica lagging beyond this trigger -replica-lag-policy (0 = serve any lag silently)")
	lagPolicy := fs.String("replica-lag-policy", "warn", "what an over-budget replica does with queries: warn (serve with a Warning header) or reject (503 + Retry-After)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return fmt.Errorf("usage: %w", err)
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *lagPolicy != endpoint.LagPolicyWarn && *lagPolicy != endpoint.LagPolicyReject {
		fs.Usage()
		return fmt.Errorf("unknown replica lag policy %q (want warn or reject)", *lagPolicy)
	}
	isReplica := *replicaOf != ""
	if isReplica {
		if *dataDir == "" || *replToken == "" {
			return fmt.Errorf("-replica-of requires -data-dir and -replication-token")
		}
		if *mode == "partitioned" {
			return fmt.Errorf("-replica-of is only supported with indexed/naive modes")
		}
		if *load != "" || *loadToken != "" {
			return fmt.Errorf("a replica is read-only; drop -load/-load-token and ingest on the primary")
		}
		// The stream is a replica's only data source: local synthetic
		// loads would fork its state from the primary's.
		*n = 0
	}

	var logger *slog.Logger
	switch *logFormat {
	case "":
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		fs.Usage()
		return fmt.Errorf("unknown log format %q", *logFormat)
	}
	// Boot events always log; -log-format picks their encoding (the
	// access log stays opt-in). JSON keeps machine-parsed boot reports —
	// notably the recovery timeline — on one self-describing line.
	boot := logger
	if boot == nil {
		boot = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	// One registry for the whole process: endpoint counters, storage
	// durability metrics, and store memory gauges share the /metrics
	// exposition.
	reg := telemetry.NewRegistry()

	extent := geom.NewRect(0, 0, 10000, 10000)
	var engine endpoint.Engine
	var loader endpoint.Loader
	var db *storage.DB
	// One server-wide pool bounds executor goroutines across concurrent
	// queries: admission control caps queries, the pool caps the extra
	// workers those queries may fan out to.
	var pool *rdf.WorkerPool
	if *queryWorkers >= 2 {
		pool = rdf.NewWorkerPool(*queryWorkers)
	}
	var feed *replication.Feed
	var rep *replication.Replica
	switch *mode {
	case "indexed", "naive":
		m := geostore.ModeIndexed
		if *mode == "naive" {
			m = geostore.ModeNaive
		}
		st := geostore.New(m)
		if pool != nil {
			st.SetParallel(*queryWorkers, pool)
		}
		st.SetLogger(logger)

		if *dataDir != "" {
			if isReplica {
				// A fresh replica seeds its directory from the primary's
				// newest snapshot before opening storage, so Recover below
				// boots from exactly the primary's compacted prefix.
				fetched, err := replication.Bootstrap(nil, *replicaOf, *replToken, nil, *dataDir)
				if err != nil {
					return fmt.Errorf("replica bootstrap: %w", err)
				}
				if fetched {
					boot.Info("replica bootstrapped from primary snapshot",
						slog.String("primary", *replicaOf), slog.String("dir", *dataDir))
				}
			}
			var err error
			db, err = storage.Open(*dataDir, storage.Options{SyncEvery: *walSyncEvery, Metrics: storage.NewMetrics(reg)})
			if err != nil {
				return err
			}
			stats, err := db.Recover(st.RDF())
			if err != nil {
				return err
			}
			if err := st.RestoreGeometries(); err != nil {
				return err
			}
			// The recovery timeline (phase durations, torn-tail and corrupt
			// segment accounting) logs as one structured group.
			boot.Info("recovered", slog.String("dir", *dataDir), slog.Any("recovery", stats))
			// Attach the journal only now, so replayed triples were not
			// re-journaled; everything below is durable.
			st.RDF().SetJournal(db.Log())
		}

		// Synthetic and file loads are idempotent against a recovered
		// directory: already-present triples deduplicate and are not
		// re-journaled.
		for _, f := range geostore.GeneratePointFeatures(*n, *seed, extent) {
			if err := st.AddFeature(f); err != nil {
				return err
			}
		}
		if *load != "" {
			if err := loadNTriplesFile(st, *load); err != nil {
				return err
			}
		}
		if err := st.RDF().CommitJournal(); err != nil {
			return err
		}
		st.Build()
		engine, loader = st, st

		if db != nil {
			if db.SinceSnapshot() > 0 {
				// Boot-time loads went to the WAL only; compact them away.
				if path, err := db.Snapshot(st.RDF()); err != nil {
					return err
				} else {
					boot.Info("boot snapshot", slog.String("path", path))
				}
			}
			switch {
			case isReplica:
				r, rerr := replication.NewReplica(replication.ReplicaConfig{
					PrimaryURL: *replicaOf,
					Token:      *replToken,
					Store:      st,
					DB:         db,
					Metrics:    replication.NewMetrics(reg),
					Logger:     boot,
				})
				if rerr != nil {
					return rerr
				}
				rep = r
				go rep.Run()
			case *replToken != "":
				// Every primary incarnation takes a fresh epoch before
				// serving, so a revived predecessor's frames are fenced off
				// by replicas (no split-brain).
				epoch, eerr := db.BumpEpoch()
				if eerr != nil {
					return eerr
				}
				feed = replication.NewFeed(replication.FeedConfig{
					DB:      db,
					Token:   *replToken,
					Metrics: replication.NewMetrics(reg),
					Logger:  boot,
				})
				boot.Info("replication feed enabled", slog.Uint64("epoch", epoch))
			}
			if *snapshotEvery > 0 {
				go snapshotLoop(db, st, *snapshotEvery, boot)
			}
			shutdownOnSignal(db, feed, rep, boot)
		}
	case "partitioned":
		if *load != "" {
			return fmt.Errorf("-load is only supported with indexed/naive modes")
		}
		if *dataDir != "" {
			return fmt.Errorf("-data-dir is only supported with indexed/naive modes")
		}
		ps := geostore.NewPartitioned(*parts)
		if pool != nil {
			ps.SetParallel(*queryWorkers, pool)
		}
		ps.SetLogger(logger)
		for _, f := range geostore.GeneratePointFeatures(*n, *seed, extent) {
			if err := ps.AddFeature(f); err != nil {
				return err
			}
		}
		ps.Build()
		engine = ps
	default:
		fs.Usage()
		return fmt.Errorf("unknown mode %q", *mode)
	}

	cfg := endpoint.Config{
		MaxInFlight:        *maxInFlight,
		QueryTimeout:       *timeout,
		CacheSize:          *cacheSize,
		Loader:             loader,
		LoadToken:          *loadToken,
		Workers:            pool,
		Logger:             logger,
		SlowQueryThreshold: *slowThreshold,
		Registry:           reg,
	}
	if db != nil {
		// GET /debug/store embeds the live WAL/snapshot listing.
		cfg.StorageStats = func() any {
			stats, err := db.Stats()
			if err != nil {
				return map[string]string{"error": err.Error()}
			}
			return stats
		}
		// After a sticky WAL failure the endpoint keeps serving queries
		// but refuses ingestion and reports degraded health.
		cfg.Degraded = db.Degraded
	}
	if feed != nil {
		cfg.Replication = feed
	}
	if rep != nil {
		cfg.Replica = func() endpoint.ReplicaStatus {
			rs := rep.Status()
			return endpoint.ReplicaStatus{
				Primary:    rs.Primary,
				Connected:  rs.Connected,
				LagBytes:   rs.LagBytes,
				LagSeconds: rs.LagSeconds,
				Err:        rs.Err,
			}
		}
		cfg.MaxReplicaLag = *maxReplicaLag
		cfg.LagPolicy = *lagPolicy
		cfg.ReadOnly = "this node replicates " + *replicaOf + "; ingest on the primary"
	}
	srv := endpoint.New(engine, cfg)
	if *pprofAddr != "" {
		// The admin mux (pprof, metrics, debug routes) binds separately so
		// profiling endpoints are never exposed on the public address.
		go func() {
			boot.Info("admin mux listening", slog.String("addr", *pprofAddr),
				slog.String("routes", "/debug/pprof/, /metrics, /debug/queries, /debug/store, /debug/cache"))
			if err := http.ListenAndServe(*pprofAddr, srv.AdminMux()); err != nil {
				fmt.Fprintln(os.Stderr, "eeserve: admin mux:", err)
			}
		}()
	}
	durable := "ephemeral"
	if db != nil {
		durable = "durable:" + *dataDir
	}
	role := "standalone"
	switch {
	case rep != nil:
		role = "replica:" + *replicaOf
	case feed != nil:
		role = "primary"
	}
	boot.Info("listening", slog.String("addr", *addr),
		slog.Int("triples", engine.Len()),
		slog.Uint64("store_version", engine.Version()),
		slog.String("mode", *mode),
		slog.String("storage", durable),
		slog.String("role", role))
	return http.ListenAndServe(*addr, srv)
}

// loadNTriplesFile streams an N-Triples file into the store (journaled
// when a WAL is attached).
func loadNTriplesFile(st *geostore.Store, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := st.LoadNTriples(f)
	if err != nil {
		return fmt.Errorf("%s: after %d triples: %w", path, n, err)
	}
	fmt.Printf("eeserve: loaded %d triples from %s\n", n, path)
	return nil
}

// snapshotLoop periodically compacts the WAL into a fresh snapshot once
// enough triples have been journaled since the last one. Snapshot
// failures (a full disk, most likely) back off exponentially with
// jitter via retry.Backoff instead of retrying at the full poll rate:
// each failed attempt rewrites the entire store to disk, so hammering
// a sick disk every five seconds makes the outage worse. The first
// retry waits 2× the poll interval (the historical spacing), doubling
// up to snapshotBackoffCap, and the backoff resets on success.
const (
	snapshotPollInterval = 5 * time.Second
	snapshotBackoffCap   = 5 * time.Minute
)

func snapshotLoop(db *storage.DB, st *geostore.Store, every int, log *slog.Logger) {
	bo := retry.Backoff{Base: 2 * snapshotPollInterval, Cap: snapshotBackoffCap, Jitter: 0.2}
	delay := snapshotPollInterval
	for {
		time.Sleep(delay)
		if err := st.RDF().JournalErr(); err != nil {
			log.Error("journal failed, snapshots suspended", slog.Any("err", err))
			return
		}
		if db.SinceSnapshot() < uint64(every) {
			delay = snapshotPollInterval
			continue
		}
		start := time.Now()
		path, err := db.Snapshot(st.RDF())
		if err != nil {
			delay = bo.Next()
			log.Error("background snapshot failed", slog.Any("err", err),
				slog.Duration("retry_in", delay.Round(time.Second)))
			continue
		}
		bo.Reset()
		delay = snapshotPollInterval
		log.Info("snapshot", slog.String("path", path),
			slog.Duration("elapsed", time.Since(start).Round(time.Millisecond)))
	}
}

// shutdownOnSignal runs the orderly stop on SIGINT/SIGTERM: the feed
// (if primary) seals its streams so replicas persist their cursors and
// resume after the restart, the replica applier (if replica) stops and
// persists its position, and finally the WAL flushes and closes so the
// last group-commit window is not lost. This ordering is what makes a
// rolling restart of either role resume mid-stream instead of forcing
// a re-bootstrap.
func shutdownOnSignal(db *storage.DB, feed *replication.Feed, rep *replication.Replica, log *slog.Logger) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		log.Info("shutting down, sealing WAL")
		if feed != nil {
			feed.Close()
		}
		if rep != nil {
			rep.Stop()
		}
		if err := db.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "eeserve:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}()
}
