// Command linkeddata exercises the Challenge C3 stack end to end:
// GeoTriples transforms tabular geospatial data into RDF, the interlink
// framework discovers spatial relations between two sources, and the
// Semagrow-style federation answers one query across multiple geospatial
// stores with source selection.
//
// Run: go run ./examples/linkeddata
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/federate"
	"repro/internal/geom"
	"repro/internal/geostore"
	"repro/internal/geotriples"
	"repro/internal/interlink"
	"repro/internal/rdf"
)

func main() {
	log.SetFlags(0)
	fmt.Println("== Linked geospatial data (C3): GeoTriples -> interlink -> federate ==")

	// 1. GeoTriples: CSV of field parcels -> RDF.
	csv := `id,crop,area_ha,wkt
1,wheat,12.5,"POLYGON ((0 0, 40 0, 40 40, 0 40, 0 0))"
2,maize,7.2,"POLYGON ((60 0, 100 0, 100 35, 60 35, 60 0))"
3,barley,3.1,"POLYGON ((0 60, 30 60, 30 100, 0 100, 0 60))"
4,wheat,9.9,"POLYGON ((55 55, 95 55, 95 95, 55 95, 55 55))"
`
	src, err := geotriples.ParseCSV(strings.NewReader(csv), "fields")
	if err != nil {
		log.Fatal(err)
	}
	mapping := &geotriples.Mapping{
		SubjectTemplate: "http://extremeearth.eu/field/{id}",
		Class:           "http://extremeearth.eu/ontology#Field",
		POMs: []geotriples.PredicateObjectMap{
			{Predicate: "http://extremeearth.eu/ontology#crop",
				Kind: geotriples.ObjectLiteral, Column: "crop"},
			{Predicate: "http://extremeearth.eu/ontology#areaHa",
				Kind: geotriples.ObjectTyped, Column: "area_ha", Datatype: rdf.XSDDouble},
		},
		GeometryColumn: "wkt",
	}
	triples, stats, err := geotriples.Transform(src, mapping)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GeoTriples: %d records -> %d triples (%d errors)\n",
		stats.Records, stats.Triples, stats.Errors)

	// 2. Interlink: discover which irrigation zones intersect which
	// fields (two independent sources).
	fields := []interlink.Entity{
		{IRI: "http://extremeearth.eu/field/1", Geometry: geom.NewRect(0, 0, 40, 40)},
		{IRI: "http://extremeearth.eu/field/2", Geometry: geom.NewRect(60, 0, 100, 35)},
		{IRI: "http://extremeearth.eu/field/3", Geometry: geom.NewRect(0, 60, 30, 100)},
		{IRI: "http://extremeearth.eu/field/4", Geometry: geom.NewRect(55, 55, 95, 95)},
	}
	zones := []interlink.Entity{
		{IRI: "http://extremeearth.eu/zone/west", Geometry: geom.NewRect(0, 0, 45, 100)},
		{IRI: "http://extremeearth.eu/zone/east", Geometry: geom.NewRect(50, 0, 100, 100)},
	}
	links, lstats := interlink.DiscoverMetaBlocked(zones, fields,
		interlink.Config{Relation: interlink.RelIntersects, Workers: 4})
	fmt.Printf("interlink: %d links from %d comparisons (%d blocks)\n",
		lstats.Links, lstats.Comparisons, lstats.Blocks)
	for _, l := range links {
		fmt.Printf("  %s %s %s\n", short(l.Source), l.Relation, short(l.Target))
	}

	// 3. Federation: two endpoints (fields west/east of x=50) answer one
	// spatial query with source selection.
	west := geostore.New(geostore.ModeIndexed)
	east := geostore.New(geostore.ModeIndexed)
	for _, tr := range triples {
		// route by geometry: parse the field id out of the subject
		if err := west.Add(tr.S, tr.P, tr.O); err != nil {
			log.Fatal(err)
		}
	}
	// Rebuild as a proper horizontal partition: field 1,3 west; 2,4 east.
	west = geostore.New(geostore.ModeIndexed)
	for _, tr := range triples {
		store := east
		if strings.Contains(tr.S.Value, "/field/1") || strings.Contains(tr.S.Value, "/field/3") {
			store = west
		}
		if err := store.Add(tr.S, tr.P, tr.O); err != nil {
			log.Fatal(err)
		}
	}
	west.Build()
	east.Build()
	fed := federate.New()
	fed.Register(federate.NewStoreEndpoint("west-tep", west, 0))
	fed.Register(federate.NewStoreEndpoint("east-tep", east, 0))

	query := `
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f ?crop WHERE {
			?f a ee:Field .
			?f ee:crop ?crop .
			?f geo:hasGeometry ?g .
			?g geo:asWKT ?wkt .
			FILTER(geof:sfIntersects(?wkt, "POLYGON ((0 0, 45 0, 45 100, 0 100, 0 0))"^^geo:wktLiteral))
		}`
	res, fstats, err := fed.QueryString(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federation: queried %d of %d endpoints (%d pruned spatially)\n",
		fstats.Queried, fstats.Candidates, fstats.PrunedBySpace)
	fmt.Printf("fields intersecting the western window:\n%s", res)
}

func short(iri string) string {
	if i := strings.LastIndexByte(iri, '/'); i >= 0 {
		return iri[i+1:]
	}
	return iri
}
