package checks_test

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/checks"
)

// roots locates the module root and this package's testdata tree from
// the test file's own position.
func roots(t *testing.T) (moduleRoot, testdata string) {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate caller")
	}
	dir := filepath.Dir(file) // internal/analysis/checks
	return filepath.Dir(filepath.Dir(filepath.Dir(dir))), filepath.Join(dir, "testdata")
}

// findingWith returns the first finding whose message contains substr.
func findingWith(t *testing.T, findings []analysis.Finding, substr string) analysis.Finding {
	t.Helper()
	for _, f := range findings {
		if strings.Contains(f.Message, substr) {
			return f
		}
	}
	t.Fatalf("no finding containing %q (have %d findings)", substr, len(findings))
	return analysis.Finding{}
}

// TestVfsonlyFixture runs vfsonly over a storage-pathed fixture; the
// seeded raw os.Create is among the wants, and the os.Stat finding
// must carry the mechanical vfs.OS rewrite.
func TestVfsonlyFixture(t *testing.T) {
	root, testdata := roots(t)
	pkg, findings := analysis.RunTestdata(t, root, testdata, "internal/storage/fixwal", checks.Vfsonly)
	stat := findingWith(t, findings, "os.Stat")
	text, err := analysis.EditText(pkg, stat)
	if err != nil {
		t.Fatalf("os.Stat finding: %v", err)
	}
	if text != "vfs.OS.Stat" {
		t.Errorf("os.Stat suggested fix = %q, want %q", text, "vfs.OS.Stat")
	}
	// os.Create has no identically-shaped vfs.FS method, so no fix.
	create := findingWith(t, findings, "os.Create")
	if len(create.SuggestedFixes) != 0 {
		t.Errorf("os.Create finding should have no suggested fix, has %d", len(create.SuggestedFixes))
	}
}

// TestNodroppederrFixture covers the seeded discarded-fsync class:
// bare durability calls and blanked error results.
func TestNodroppederrFixture(t *testing.T) {
	root, testdata := roots(t)
	_, findings := analysis.RunTestdata(t, root, testdata, "internal/storage/fixerr", checks.Nodroppederr)
	findingWith(t, findings, "result of Sync is a durability error")
}

// TestHotpathallocFixture covers the seeded fmt.Sprintf-in-hot-loop
// class plus clock, allocation, and mutex sites; unmarked siblings and
// //eevet:ignore-carrying lines stay silent (enforced by the fixture's
// want annotations).
func TestHotpathallocFixture(t *testing.T) {
	root, testdata := roots(t)
	_, findings := analysis.RunTestdata(t, root, testdata, "internal/rdf/fixhot", checks.Hotpathalloc)
	findingWith(t, findings, "fmt.Sprintf allocates in a hot path")
}

// TestCtxthreadFixture checks the suggested fix forwards the context
// parameter by name.
func TestCtxthreadFixture(t *testing.T) {
	root, testdata := roots(t)
	pkg, findings := analysis.RunTestdata(t, root, testdata, "internal/sparql/fixctx", checks.Ctxthread)
	drop := findingWith(t, findings, "drops the caller's context")
	text, err := analysis.EditText(pkg, drop)
	if err != nil {
		t.Fatalf("Background finding: %v", err)
	}
	if text != "ctx" {
		t.Errorf("Background suggested fix = %q, want %q", text, "ctx")
	}
}

func TestMetricsregFixture(t *testing.T) {
	root, testdata := roots(t)
	_, findings := analysis.RunTestdata(t, root, testdata, "internal/endpoint/fixmet", checks.Metricsreg)
	findingWith(t, findings, "must be a package-level constant")
	findingWith(t, findings, "not closed at registration")
}

func TestLocksafeFixture(t *testing.T) {
	root, testdata := roots(t)
	_, findings := analysis.RunTestdata(t, root, testdata, "internal/rdf/fixlock", checks.Locksafe)
	findingWith(t, findings, "re-acquires the Store lock")
	findingWith(t, findings, "goroutine launched while holding the Store write lock")
}

// TestOutOfScopePackageClean runs every path-scoped analyzer over a
// package holding the exact shapes they flag, but outside their
// directories: zero findings (the fixture has no want annotations, so
// any diagnostic fails the run).
func TestOutOfScopePackageClean(t *testing.T) {
	root, testdata := roots(t)
	for _, a := range []*analysis.Analyzer{checks.Vfsonly, checks.Ctxthread, checks.Locksafe, checks.Nodroppederr} {
		_, findings := analysis.RunTestdata(t, root, testdata, "internal/other/fixscope", a)
		if len(findings) != 0 {
			t.Errorf("%s: %d findings in out-of-scope package", a.Name, len(findings))
		}
	}
}

// TestRepoClean is the meta-check behind CI's lint-eevet job: the full
// suite over the whole module must report nothing — every invariant
// the analyzers encode holds in the tree that ships them.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks every package in the module")
	}
	root, _ := roots(t)
	findings, err := analysis.Check(root, []string{"./..."}, checks.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
