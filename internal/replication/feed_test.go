package replication

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/storage/vfs"
	"repro/internal/telemetry"
)

// TestFrameRoundTrip pins the wire format: frames survive the encode →
// decode trip, and any flipped byte surfaces as ErrFrameCorrupt rather
// than a misparsed frame.
func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameBatch, Epoch: 3, Cursor: storage.Cursor{Seq: 2, Offset: 999}, Body: []byte("payload")},
		{Type: FrameHeartbeat, Epoch: 3, Cursor: storage.Cursor{Seq: 2, Offset: 999}, Body: []byte{0}},
		{Type: FrameSealed, Epoch: 4, Cursor: storage.Cursor{Seq: 5}},
	}
	var wire []byte
	for _, f := range frames {
		wire = appendFrame(wire, f)
	}
	br := bufio.NewReader(bytes.NewReader(wire))
	for i, want := range frames {
		got, err := readFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Epoch != want.Epoch || got.Cursor != want.Cursor ||
			!bytes.Equal(got.Body, want.Body) {
			t.Fatalf("frame %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := readFrame(br); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}

	for flip := 0; flip < len(wire); flip++ {
		bad := append([]byte(nil), wire...)
		bad[flip] ^= 0x40
		br := bufio.NewReader(bytes.NewReader(bad))
		for {
			_, err := readFrame(br)
			if err == nil {
				continue
			}
			if !errors.Is(err, ErrFrameCorrupt) && !errors.Is(err, io.EOF) &&
				!errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("flip %d: error %v, want corruption or EOF", flip, err)
			}
			break
		}
	}
}

// TestPairStreamsAndConverges is the happy-path pair: the replica
// follows the primary through commits and a compaction, a rolling
// replica restart resumes from the persisted cursor, and both stores
// end identical.
func TestPairStreamsAndConverges(t *testing.T) {
	pn := mustOpenNode(t, vfs.NewErrFS())
	defer pn.close()
	epoch, err := pn.db.BumpEpoch()
	if err != nil {
		t.Fatal(err)
	}
	feed := fastFeed(pn.db, nil)
	defer feed.Close()
	srv := newSwappableServer(feed)
	defer srv.Close()

	rfs := vfs.NewErrFS()
	if _, err := Bootstrap(nil, srv.URL(), testToken, rfs, "db"); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	rn := mustOpenNode(t, rfs)
	defer rn.close()
	rep, err := NewReplica(fastReplicaConfig(rn, srv.URL(), nil))
	if err != nil {
		t.Fatal(err)
	}
	go rep.Run()

	for k := 0; k < pairNumBatches; k++ {
		if err := pn.addBatch(k); err != nil {
			t.Fatalf("batch %d: %v", k, err)
		}
		if k == 2 {
			// Compaction mid-stream: rotation must not break the cursor.
			if _, err := pn.db.Snapshot(pn.st.RDF()); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
		}
	}
	if !waitFor(2*time.Second, func() bool { return converged(rep, rn, pairNumBatches) }) {
		t.Fatalf("replica never converged: %+v, %d triples", rep.Status(), rn.st.RDF().Len())
	}
	if got := sortedStoreTriples(rn.st); !equalStrings(got, wantPairPrefix(pairNumBatches)) {
		t.Fatalf("replica diverged: %d triples", len(got))
	}
	if s := rep.Status(); s.Epoch != epoch {
		t.Fatalf("replica epoch = %d, want %d", s.Epoch, epoch)
	}

	// Rolling replica restart: the persisted cursor resumes mid-stream.
	rep.Stop()
	st, ok, err := loadState(rn.fsys, "db")
	if err != nil || !ok {
		t.Fatalf("loadState after stop: %v, %v", ok, err)
	}
	if st.Cursor == (storage.Cursor{}) {
		t.Fatal("stopped replica persisted a zero cursor")
	}
	for k := pairNumBatches; k < pairNumBatches+2; k++ {
		if err := pn.addBatch(k); err != nil {
			t.Fatal(err)
		}
	}
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	rep2, err := NewReplica(fastReplicaConfig(rn, srv.URL(), m))
	if err != nil {
		t.Fatal(err)
	}
	go rep2.Run()
	defer rep2.Stop()
	if !waitFor(2*time.Second, func() bool { return converged(rep2, rn, pairNumBatches+2) }) {
		t.Fatalf("restarted replica never converged: %+v", rep2.Status())
	}
	if got := sortedStoreTriples(rn.st); !equalStrings(got, wantPairPrefix(pairNumBatches+2)) {
		t.Fatalf("restarted replica diverged")
	}
	// Resume means the restart applied only the two new batches, not a
	// replay of the whole stream.
	if applied := m.framesApplied.Load(); applied != 2 {
		t.Fatalf("restart applied %d batch frames, want 2 (cursor resume)", applied)
	}
}

// TestFeedAuth locks the feed down: no token and wrong token get 401
// on both endpoints, and a replica with a bad token parks sticky
// instead of hammering the primary.
func TestFeedAuth(t *testing.T) {
	pn := mustOpenNode(t, vfs.NewErrFS())
	defer pn.close()
	feed := fastFeed(pn.db, nil)
	defer feed.Close()
	srv := newSwappableServer(feed)
	defer srv.Close()

	for _, path := range []string{"/replication/wal", "/replication/snapshot"} {
		for name, header := range map[string]http.Header{
			"no token":  {},
			"bad token": {"X-Replication-Token": []string{"wrong"}},
		} {
			req, _ := http.NewRequest(http.MethodGet, srv.URL()+path, nil)
			req.Header = header
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusUnauthorized {
				t.Fatalf("%s %s: status = %d, want 401", path, name, resp.StatusCode)
			}
		}
	}

	rn := mustOpenNode(t, vfs.NewErrFS())
	defer rn.close()
	// Bootstrap itself would be rejected with the bad token, so seed the
	// state file by hand — this test is about the streaming credential.
	if err := saveState(rn.fsys, "db", State{Cursor: storage.Cursor{Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	cfg := fastReplicaConfig(rn, srv.URL(), nil)
	cfg.Token = "wrong"
	rep, err := NewReplica(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go rep.Run()
	defer rep.Stop()
	if !waitFor(2*time.Second, func() bool { return rep.Status().Err != nil }) {
		t.Fatal("replica with bad token never parked")
	}
	if s := rep.Status(); !errors.Is(s.Err, errAuth) {
		t.Fatalf("parked on %v, want auth failure", s.Err)
	}

	if _, err := Bootstrap(nil, srv.URL(), "wrong", vfs.NewErrFS(), "db"); !errors.Is(err, errAuth) {
		t.Fatalf("Bootstrap with bad token = %v, want auth failure", err)
	}
}

// TestFeedSealedOnShutdown pins the rolling-restart contract: closing
// the feed sends a final Sealed frame, the replica persists its cursor
// and keeps retrying (not sticky), and a restarted feed lets it resume
// without re-bootstrapping.
func TestFeedSealedOnShutdown(t *testing.T) {
	pn := mustOpenNode(t, vfs.NewErrFS())
	defer pn.close()
	if _, err := pn.db.BumpEpoch(); err != nil {
		t.Fatal(err)
	}
	feed := fastFeed(pn.db, nil)
	srv := newSwappableServer(feed)
	defer srv.Close()

	rfs := vfs.NewErrFS()
	if _, err := Bootstrap(nil, srv.URL(), testToken, rfs, "db"); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	rn := mustOpenNode(t, rfs)
	defer rn.close()
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	rep, err := NewReplica(fastReplicaConfig(rn, srv.URL(), m))
	if err != nil {
		t.Fatal(err)
	}
	go rep.Run()
	defer rep.Stop()

	for k := 0; k < 3; k++ {
		if err := pn.addBatch(k); err != nil {
			t.Fatal(err)
		}
	}
	if !waitFor(2*time.Second, func() bool { return converged(rep, rn, 3) }) {
		t.Fatalf("replica never converged before shutdown: %+v", rep.Status())
	}

	// Primary shutdown: streams seal, the replica must not go sticky.
	feed.Close()
	srv.Swap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "restarting", http.StatusServiceUnavailable)
	}))
	if !waitFor(time.Second, func() bool { return !rep.Status().Connected }) {
		t.Fatal("replica still connected after feed close")
	}
	if err := rep.Status().Err; err != nil {
		t.Fatalf("sealed shutdown parked the replica: %v", err)
	}
	st, ok, err := loadState(rn.fsys, "db")
	if err != nil || !ok || st.Cursor == (storage.Cursor{}) {
		t.Fatalf("sealed shutdown did not persist the cursor: %+v, %v, %v", st, ok, err)
	}

	// Primary restart behind the same URL: the replica reconnects and
	// picks up a batch committed while it was away.
	if err := pn.addBatch(3); err != nil {
		t.Fatal(err)
	}
	feed2 := fastFeed(pn.db, nil)
	defer feed2.Close()
	srv.Swap(feed2)
	if !waitFor(2*time.Second, func() bool { return converged(rep, rn, 4) }) {
		t.Fatalf("replica never resumed after primary restart: %+v", rep.Status())
	}
	if m.reconnects.Load() == 0 {
		t.Fatal("resume happened without any counted reconnect")
	}
	if got := sortedStoreTriples(rn.st); !equalStrings(got, wantPairPrefix(4)) {
		t.Fatal("replica diverged across the primary restart")
	}
}

// TestReplicaBootstrap covers the snapshot seeding path: a fresh
// replica downloads the primary's snapshot, verifies it, resumes the
// stream from the post-snapshot cursor, and a second Bootstrap is a
// no-op on the now-populated directory.
func TestReplicaBootstrap(t *testing.T) {
	pn := mustOpenNode(t, vfs.NewErrFS())
	defer pn.close()
	for k := 0; k < 4; k++ {
		if err := pn.addBatch(k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pn.db.Snapshot(pn.st.RDF()); err != nil {
		t.Fatal(err)
	}
	feed := fastFeed(pn.db, nil)
	defer feed.Close()
	srv := newSwappableServer(feed)
	defer srv.Close()

	rfs := vfs.NewErrFS()
	fetched, err := Bootstrap(nil, srv.URL(), testToken, rfs, "db")
	if err != nil || !fetched {
		t.Fatalf("Bootstrap = %v, %v; want fetched", fetched, err)
	}
	if again, err := Bootstrap(nil, srv.URL(), testToken, rfs, "db"); err != nil || again {
		t.Fatalf("second Bootstrap = %v, %v; want no-op", again, err)
	}

	rn := mustOpenNode(t, rfs)
	defer rn.close()
	if got := sortedStoreTriples(rn.st); !equalStrings(got, wantPairPrefix(4)) {
		t.Fatalf("bootstrap seeded %d triples, want the 4-batch prefix", len(got))
	}
	rep, err := NewReplica(fastReplicaConfig(rn, srv.URL(), nil))
	if err != nil {
		t.Fatal(err)
	}
	go rep.Run()
	defer rep.Stop()
	for k := 4; k < pairNumBatches; k++ {
		if err := pn.addBatch(k); err != nil {
			t.Fatal(err)
		}
	}
	if !waitFor(2*time.Second, func() bool { return converged(rep, rn, pairNumBatches) }) {
		t.Fatalf("bootstrapped replica never converged: %+v", rep.Status())
	}
	if got := sortedStoreTriples(rn.st); !equalStrings(got, wantPairPrefix(pairNumBatches)) {
		t.Fatal("bootstrapped replica diverged")
	}
}

// TestPrunedCursorGoesSticky covers the 410/Gone contract: a replica
// whose cursor compaction has pruned parks on ErrReBootstrap instead
// of retrying forever.
func TestPrunedCursorGoesSticky(t *testing.T) {
	pn := mustOpenNode(t, vfs.NewErrFS())
	defer pn.close()
	feed := fastFeed(pn.db, nil)
	defer feed.Close()
	srv := newSwappableServer(feed)
	defer srv.Close()

	// Fabricate a replica whose durable cursor points at a segment the
	// primary has long since pruned.
	rn := mustOpenNode(t, vfs.NewErrFS())
	defer rn.close()
	if err := saveState(rn.fsys, "db", State{Cursor: storage.Cursor{Seq: 1, Offset: 64}}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if err := pn.addBatch(k); err != nil {
			t.Fatal(err)
		}
		if k == 1 || k == 2 {
			if _, err := pn.db.Snapshot(pn.st.RDF()); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep, err := NewReplica(fastReplicaConfig(rn, srv.URL(), nil))
	if err != nil {
		t.Fatal(err)
	}
	go rep.Run()
	defer rep.Stop()
	if !waitFor(2*time.Second, func() bool { return rep.Status().Err != nil }) {
		t.Fatalf("pruned-cursor replica never parked: %+v", rep.Status())
	}
	if s := rep.Status(); !errors.Is(s.Err, ErrReBootstrap) {
		t.Fatalf("parked on %v, want ErrReBootstrap", s.Err)
	}
}
