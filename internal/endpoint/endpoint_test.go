package endpoint_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/endpoint"
	"repro/internal/geom"
	"repro/internal/geostore"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// testStore builds an indexed store with three point features at known
// coordinates, two of them inside the (0,0)-(10,10) query window.
func testStore(t *testing.T) *geostore.Store {
	t.Helper()
	st := geostore.New(geostore.ModeIndexed)
	for i, p := range []geom.Point{{X: 1, Y: 1}, {X: 5, Y: 5}, {X: 100, Y: 100}} {
		f := geostore.Feature{
			IRI:      fmt.Sprintf("http://extremeearth.eu/feature/t%d", i),
			Class:    geostore.FeatureClass,
			Geometry: p,
		}
		if err := st.AddFeature(f); err != nil {
			t.Fatal(err)
		}
	}
	st.Build()
	return st
}

const spatialQuery = `
	PREFIX ee: <http://extremeearth.eu/ontology#>
	SELECT ?f ?wkt WHERE {
		?f a ee:Feature .
		?f geo:hasGeometry ?g .
		?g geo:asWKT ?wkt .
		FILTER(geof:sfIntersects(?wkt, "POLYGON((0 0, 10 0, 10 10, 0 10, 0 0))"^^geo:wktLiteral))
	}`

func get(t *testing.T, srv http.Handler, target string, header map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, target, nil)
	for k, v := range header {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func sparqlURL(query string, extra string) string {
	u := "/sparql?query=" + url.QueryEscape(query)
	if extra != "" {
		u += "&" + extra
	}
	return u
}

func TestContentNegotiation(t *testing.T) {
	srv := endpoint.New(testStore(t), endpoint.Config{})
	cases := []struct {
		name        string
		accept      string
		extra       string
		wantStatus  int
		wantCT      string
		wantBodySub string
	}{
		{"default json", "", "", 200, "application/sparql-results+json", `"head"`},
		{"sparql json", "application/sparql-results+json", "", 200, "application/sparql-results+json", `"bindings"`},
		{"plain json", "application/json", "", 200, "application/sparql-results+json", `"head"`},
		{"csv", "text/csv", "", 200, "text/csv; charset=utf-8", "f,wkt"},
		{"tsv", "text/tab-separated-values", "", 200, "text/tab-separated-values; charset=utf-8", "f\twkt"},
		{"geojson", "application/geo+json", "", 200, "application/geo+json", `"FeatureCollection"`},
		{"browser-style list", "text/html, application/json;q=0.9, */*;q=0.1", "", 200, "application/sparql-results+json", `"head"`},
		{"wildcard", "*/*", "", 200, "application/sparql-results+json", `"head"`},
		{"unsupported", "application/rdf+xml", "", 406, "", ""},
		{"format param beats accept", "text/csv", "format=geojson", 200, "application/geo+json", `"FeatureCollection"`},
		{"bad format param", "", "format=parquet", 400, "", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hdr := map[string]string{}
			if tc.accept != "" {
				hdr["Accept"] = tc.accept
			}
			rec := get(t, srv, sparqlURL(spatialQuery, tc.extra), hdr)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %q)", rec.Code, tc.wantStatus, rec.Body.String())
			}
			if tc.wantCT != "" && rec.Header().Get("Content-Type") != tc.wantCT {
				t.Fatalf("content-type = %q, want %q", rec.Header().Get("Content-Type"), tc.wantCT)
			}
			if tc.wantBodySub != "" && !strings.Contains(rec.Body.String(), tc.wantBodySub) {
				t.Fatalf("body %q missing %q", rec.Body.String(), tc.wantBodySub)
			}
		})
	}
}

func TestSpatialSelectAllFormats(t *testing.T) {
	srv := endpoint.New(testStore(t), endpoint.Config{})

	t.Run("json", func(t *testing.T) {
		rec := get(t, srv, sparqlURL(spatialQuery, "format=json"), nil)
		var doc struct {
			Head struct {
				Vars []string `json:"vars"`
			} `json:"head"`
			Results struct {
				Bindings []map[string]struct {
					Type     string `json:"type"`
					Value    string `json:"value"`
					Datatype string `json:"datatype"`
				} `json:"bindings"`
			} `json:"results"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatalf("invalid JSON: %v", err)
		}
		if len(doc.Head.Vars) != 2 || len(doc.Results.Bindings) != 2 {
			t.Fatalf("vars %v bindings %d, want 2 vars 2 bindings", doc.Head.Vars, len(doc.Results.Bindings))
		}
		b := doc.Results.Bindings[0]
		if b["f"].Type != "uri" || b["wkt"].Type != "literal" || !strings.Contains(b["wkt"].Datatype, "wktLiteral") {
			t.Fatalf("unexpected binding %+v", b)
		}
	})

	t.Run("csv", func(t *testing.T) {
		rec := get(t, srv, sparqlURL(spatialQuery, "format=csv"), nil)
		lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
		if len(lines) != 3 { // header + 2 rows
			t.Fatalf("lines = %d: %q", len(lines), rec.Body.String())
		}
		if strings.TrimSpace(lines[0]) != "f,wkt" {
			t.Fatalf("header = %q", lines[0])
		}
	})

	t.Run("geojson", func(t *testing.T) {
		rec := get(t, srv, sparqlURL(spatialQuery, "format=geojson"), nil)
		var doc struct {
			Type     string `json:"type"`
			Features []struct {
				ID       string `json:"id"`
				Geometry struct {
					Type        string    `json:"type"`
					Coordinates []float64 `json:"coordinates"`
				} `json:"geometry"`
			} `json:"features"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatalf("invalid GeoJSON: %v", err)
		}
		if doc.Type != "FeatureCollection" || len(doc.Features) != 2 {
			t.Fatalf("type %q features %d", doc.Type, len(doc.Features))
		}
		f := doc.Features[0]
		if f.Geometry.Type != "Point" || len(f.Geometry.Coordinates) != 2 {
			t.Fatalf("geometry %+v", f.Geometry)
		}
		if !strings.HasPrefix(f.ID, "http://extremeearth.eu/feature/") {
			t.Fatalf("feature id %q", f.ID)
		}
	})
}

func TestCacheHitMissInvalidation(t *testing.T) {
	st := testStore(t)
	srv := endpoint.New(st, endpoint.Config{})
	target := sparqlURL(spatialQuery, "")

	rec := get(t, srv, target, nil)
	if rec.Code != 200 || rec.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("first request: status %d cache %q", rec.Code, rec.Header().Get("X-Cache"))
	}
	first := rec.Body.String()

	// Identical query text: cache hit, identical bytes.
	rec = get(t, srv, target, nil)
	if rec.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("second request: cache %q", rec.Header().Get("X-Cache"))
	}
	if rec.Body.String() != first {
		t.Fatal("cached body differs from original")
	}
	if srv.CacheHits() != 1 {
		t.Fatalf("CacheHits = %d, want 1", srv.CacheHits())
	}

	// Same query modulo whitespace/case: normalization still hits.
	squashed := strings.Join(strings.Fields(strings.Replace(spatialQuery, "SELECT", "select", 1)), " ")
	rec = get(t, srv, sparqlURL(squashed, ""), nil)
	if rec.Header().Get("X-Cache") != "HIT" {
		t.Fatalf("normalized request: cache %q", rec.Header().Get("X-Cache"))
	}

	// Reloading the store advances its version: cached entry is stale.
	if err := st.AddFeature(geostore.Feature{
		IRI:      "http://extremeearth.eu/feature/new",
		Class:    geostore.FeatureClass,
		Geometry: geom.Point{X: 2, Y: 2},
	}); err != nil {
		t.Fatal(err)
	}
	st.Build()
	rec = get(t, srv, target, nil)
	if rec.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("post-reload request: cache %q", rec.Header().Get("X-Cache"))
	}
	if rec.Body.String() == first {
		t.Fatal("post-reload body should include the new feature")
	}

	// /metrics exports the counters.
	mrec := get(t, srv, "/metrics", nil)
	for _, want := range []string{"sparql_cache_hits_total 2", "sparql_cache_misses_total 2", "sparql_queries_total 4"} {
		if !strings.Contains(mrec.Body.String(), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, mrec.Body.String())
		}
	}
}

// TestSpatialJoinMetricAndOffsetPaging drives a variable-variable
// spatial join through the protocol (the probe counter must move) and
// pages a query with OFFSET (pages must not share cache entries).
func TestSpatialJoinMetricAndOffsetPaging(t *testing.T) {
	st := testStore(t)
	srv := endpoint.New(st, endpoint.Config{CacheSize: 16, Loader: st})

	joinQuery := `
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?a ?b WHERE {
			?a geo:hasGeometry ?ga . ?ga geo:asWKT ?g1 .
			?b geo:hasGeometry ?gb . ?gb geo:asWKT ?g2 .
			FILTER(geof:sfIntersects(?g1, ?g2))
		}`
	rec := get(t, srv, sparqlURL(joinQuery, ""), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("join query status %d: %s", rec.Code, rec.Body.String())
	}
	mrec := get(t, srv, "/metrics", nil)
	if !strings.Contains(mrec.Body.String(), "sparql_spatial_join_probes_total") {
		t.Fatalf("/metrics missing sparql_spatial_join_probes_total:\n%s", mrec.Body.String())
	}
	if strings.Contains(mrec.Body.String(), "sparql_spatial_join_probes_total 0\n") {
		t.Fatalf("spatial join probes did not advance:\n%s", mrec.Body.String())
	}

	// OFFSET pagination: page 2 must be a cache miss with different rows.
	base := `
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?f WHERE { ?f a ee:Feature . } ORDER BY ?f LIMIT 1`
	p1 := get(t, srv, sparqlURL(base, ""), nil)
	p2 := get(t, srv, sparqlURL(base+" OFFSET 1", ""), nil)
	if p1.Code != http.StatusOK || p2.Code != http.StatusOK {
		t.Fatalf("paging status %d/%d", p1.Code, p2.Code)
	}
	if p2.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("page 2 served from page 1's cache entry")
	}
	if p1.Body.String() == p2.Body.String() {
		t.Fatalf("pages returned identical rows:\n%s", p1.Body.String())
	}
}

// blockingEngine parks every Query until released, signalling entry.
type blockingEngine struct {
	started chan struct{}
	release chan struct{}
}

func (e *blockingEngine) Query(*sparql.Query) (*sparql.Results, error) {
	e.started <- struct{}{}
	<-e.release
	return &sparql.Results{Vars: []string{"x"}}, nil
}
func (e *blockingEngine) Version() uint64 { return 1 }
func (e *blockingEngine) Len() int        { return 0 }

func TestQueryTimeout(t *testing.T) {
	eng := &blockingEngine{started: make(chan struct{}, 1), release: make(chan struct{})}
	srv := endpoint.New(eng, endpoint.Config{QueryTimeout: 20 * time.Millisecond})
	rec := get(t, srv, sparqlURL("SELECT ?x WHERE { ?x ?p ?o . }", ""), nil)
	close(eng.release)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %q)", rec.Code, rec.Body.String())
	}
	mrec := get(t, srv, "/metrics", nil)
	if !strings.Contains(mrec.Body.String(), "sparql_timeouts_total 1") {
		t.Fatalf("/metrics missing timeout count:\n%s", mrec.Body.String())
	}
}

func TestAdmissionControl(t *testing.T) {
	eng := &blockingEngine{started: make(chan struct{}, 1), release: make(chan struct{})}
	srv := endpoint.New(eng, endpoint.Config{MaxInFlight: 1, CacheSize: -1})

	// First request occupies the only slot.
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- get(t, srv, sparqlURL("SELECT ?x WHERE { ?x ?p ?o . }", ""), nil) }()
	<-eng.started

	// Second request must be shed, not queued.
	rec := get(t, srv, sparqlURL("SELECT ?y WHERE { ?y ?p ?o . }", ""), nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %q)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 response missing Retry-After")
	}

	close(eng.release)
	first := <-done
	if first.Code != 200 {
		t.Fatalf("first request status = %d", first.Code)
	}
	mrec := get(t, srv, "/metrics", nil)
	if !strings.Contains(mrec.Body.String(), "sparql_rejected_total 1") {
		t.Fatalf("/metrics missing rejected count:\n%s", mrec.Body.String())
	}
}

func TestBadRequests(t *testing.T) {
	srv := endpoint.New(testStore(t), endpoint.Config{})
	cases := []struct {
		name   string
		method string
		target string
		want   int
	}{
		{"missing query", http.MethodGet, "/sparql", 400},
		{"parse error", http.MethodGet, sparqlURL("SELECT WHERE", ""), 400},
		{"bad method", http.MethodDelete, sparqlURL("SELECT ?x WHERE { ?x ?p ?o . }", ""), 405},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.target, nil)
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != tc.want {
				t.Fatalf("status = %d, want %d", rec.Code, tc.want)
			}
		})
	}
}

func TestPostForms(t *testing.T) {
	srv := endpoint.New(testStore(t), endpoint.Config{})

	t.Run("form", func(t *testing.T) {
		body := "query=" + url.QueryEscape(spatialQuery)
		req := httptest.NewRequest(http.MethodPost, "/sparql", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"bindings"`) {
			t.Fatalf("status %d body %q", rec.Code, rec.Body.String())
		}
	})

	t.Run("form with body format", func(t *testing.T) {
		body := "query=" + url.QueryEscape(spatialQuery) + "&format=csv"
		req := httptest.NewRequest(http.MethodPost, "/sparql", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != 200 || !strings.HasPrefix(rec.Header().Get("Content-Type"), "text/csv") {
			t.Fatalf("status %d content-type %q", rec.Code, rec.Header().Get("Content-Type"))
		}
	})

	t.Run("raw sparql-query body", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodPost, "/sparql", strings.NewReader(spatialQuery))
		req.Header.Set("Content-Type", "application/sparql-query")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"bindings"`) {
			t.Fatalf("status %d body %q", rec.Code, rec.Body.String())
		}
	})
}

func TestHealthz(t *testing.T) {
	srv := endpoint.New(testStore(t), endpoint.Config{})
	rec := get(t, srv, "/healthz", nil)
	var doc struct {
		Status  string `json:"status"`
		Triples int    `json:"triples"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "ok" || doc.Triples == 0 {
		t.Fatalf("healthz = %+v", doc)
	}
}

func TestPartitionedEngine(t *testing.T) {
	ps := geostore.NewPartitioned(3)
	for i := 0; i < 50; i++ {
		f := geostore.Feature{
			IRI:      fmt.Sprintf("http://extremeearth.eu/feature/p%d", i),
			Class:    geostore.FeatureClass,
			Geometry: geom.Point{X: float64(i), Y: float64(i)},
		}
		if err := ps.AddFeature(f); err != nil {
			t.Fatal(err)
		}
	}
	ps.Build()
	direct, err := ps.QueryString(spatialQuery)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Len() == 0 {
		t.Fatal("expected rows from direct query")
	}
	srv := endpoint.New(ps, endpoint.Config{})
	rec := get(t, srv, sparqlURL(spatialQuery, "format=csv"), nil)
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != direct.Len()+1 { // header + one line per row
		t.Fatalf("lines = %d, want %d: %q", len(lines), direct.Len()+1, rec.Body.String())
	}
}

// TestParallelExecMetrics drives a morsel-parallel engine through the
// endpoint and checks /metrics exports the executor counter and the
// worker-pool gauge.
func TestParallelExecMetrics(t *testing.T) {
	st := testStore(t)
	pool := rdf.NewWorkerPool(8)
	st.SetParallel(4, pool)
	srv := endpoint.New(st, endpoint.Config{CacheSize: -1, Workers: pool})

	rec := get(t, srv, sparqlURL(`SELECT ?s WHERE { ?s ?p ?o . }`, ""), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	body := get(t, srv, "/metrics", nil).Body.String()
	if !strings.Contains(body, "sparql_exec_morsels_total") {
		t.Fatalf("/metrics missing sparql_exec_morsels_total:\n%s", body)
	}
	if strings.Contains(body, "sparql_exec_morsels_total 0\n") {
		t.Fatalf("morsel counter did not advance:\n%s", body)
	}
	if !strings.Contains(body, "sparql_exec_workers_busy 0") {
		t.Fatalf("/metrics missing idle sparql_exec_workers_busy gauge:\n%s", body)
	}
}

// ctxEngine blocks until its context is canceled, proving the endpoint
// threads the per-query deadline into ContextEngine implementations.
type ctxEngine struct{ sawCancel chan struct{} }

func (e *ctxEngine) Query(q *sparql.Query) (*sparql.Results, error) {
	return nil, fmt.Errorf("plain Query must not be used on a ContextEngine")
}
func (e *ctxEngine) QueryContext(ctx context.Context, q *sparql.Query) (*sparql.Results, error) {
	<-ctx.Done()
	close(e.sawCancel)
	return nil, ctx.Err()
}
func (e *ctxEngine) Version() uint64 { return 1 }
func (e *ctxEngine) Len() int        { return 0 }

// TestTimeoutCancelsContextEngine is the endpoint half of the timeout
// regression: the deadline must reach the engine (stopping its morsel
// workers) rather than merely abandoning the goroutine.
func TestTimeoutCancelsContextEngine(t *testing.T) {
	eng := &ctxEngine{sawCancel: make(chan struct{})}
	srv := endpoint.New(eng, endpoint.Config{QueryTimeout: 15 * time.Millisecond, CacheSize: -1})
	rec := get(t, srv, sparqlURL("SELECT ?x WHERE { ?x ?p ?o . }", ""), nil)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %q)", rec.Code, rec.Body.String())
	}
	select {
	case <-eng.sawCancel:
	case <-time.After(2 * time.Second):
		t.Fatal("engine never saw the cancellation")
	}
}
