package replication

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/geostore"
	"repro/internal/retry"
	"repro/internal/storage"
	"repro/internal/storage/vfs"
)

// ErrReBootstrap is the sticky failure a replica parks on when its
// cursor no longer exists on the primary (compaction pruned it while
// the replica was down or degraded). Recovery is operational: wipe the
// replica's data directory and restart, so Bootstrap pulls a fresh
// snapshot.
var ErrReBootstrap = errors.New("replication: cursor pruned on primary; wipe the replica data directory and restart to re-bootstrap")

// ErrStaleEpoch is the sticky failure for split-brain fencing: the
// stream presented an epoch below the highest this replica has durably
// observed, meaning the node on the other end is a demoted primary.
var ErrStaleEpoch = errors.New("replication: stream epoch below local fence (stale primary rejected)")

// errSealed marks a graceful primary shutdown (retryable).
var errSealed = errors.New("replication: stream sealed by primary shutdown")

// ReplicaConfig configures the replica-side applier.
type ReplicaConfig struct {
	// PrimaryURL is the primary's base URL (scheme://host:port).
	PrimaryURL string
	// Token is the shared replication token.
	Token string
	// Store is the replica's geo store; batches apply through its
	// normal Add path so geometries index and the attached journal
	// makes them locally durable.
	Store *geostore.Store
	// DB is the replica's own storage (already Recovered, journal
	// attached to Store). The applier syncs it before persisting the
	// cursor, so the cursor never claims more than local disk holds.
	DB *storage.DB
	// FS is the filesystem for the REPLICA state file; nil means
	// DB.FS(), keeping state behind the same fault-injection seam.
	FS vfs.FS
	// Client issues the streaming requests; nil uses a client without
	// timeouts (the stream is endless by design).
	Client *http.Client
	// Backoff paces reconnects after retryable failures. Zero-valued
	// fields get the standard 1s→5min ±20% schedule.
	Backoff retry.Backoff
	// CursorSyncEvery persists the applied cursor every n batch frames
	// (default 64). Epoch changes, sealed frames, and Stop always
	// persist immediately.
	CursorSyncEvery int
	// Metrics instruments the apply side; nil disables.
	Metrics *Metrics
	// Logger receives lifecycle events; nil discards.
	Logger *slog.Logger
}

// Status is the replica's health snapshot, served on /healthz and used
// for lag gating.
type Status struct {
	Primary    string
	Connected  bool
	Epoch      uint64
	Cursor     storage.Cursor
	LagBytes   int64
	LagSeconds float64
	// Err is the sticky failure that parked replication, nil while
	// streaming (or retrying a retryable failure).
	Err error
}

// Replica follows a primary's WAL stream and applies it to the local
// store. Create with NewReplica, drive with Run (blocking), stop with
// Stop. The replica serves reads the whole time — staleness is
// reported, never a reason to refuse a query.
type Replica struct {
	cfg  ReplicaConfig
	fsys vfs.FS

	mu           sync.Mutex
	state        State
	sinceSave    int
	connected    bool
	sticky       error
	lagBytes     int64
	lastCaughtUp time.Time
	started      time.Time
	body         io.Closer // current stream body, closed by Stop

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewReplica loads the replica's persisted stream state and prepares
// the applier. The DB must already be recovered with the journal
// attached to Store.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Store == nil || cfg.DB == nil {
		panic("replication: ReplicaConfig.Store and DB are required")
	}
	if cfg.PrimaryURL == "" {
		return nil, fmt.Errorf("replication: ReplicaConfig.PrimaryURL is required")
	}
	if cfg.FS == nil {
		cfg.FS = cfg.DB.FS()
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.CursorSyncEvery <= 0 {
		cfg.CursorSyncEvery = 64
	}
	if cfg.Backoff.Base == 0 {
		cfg.Backoff = retry.Backoff{Base: time.Second, Cap: 5 * time.Minute, Jitter: 0.2}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	r := &Replica{
		cfg:     cfg,
		fsys:    cfg.FS,
		started: time.Now(),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	st, ok, err := loadState(cfg.FS, cfg.DB.Dir())
	if err != nil {
		return nil, err
	}
	if !ok {
		// No usable stream position. Streaming "from the beginning"
		// instead would silently miss whatever prefix the primary has
		// compacted into its snapshot — the beginning of the WAL moves.
		// Every legitimate replica has a state file (Bootstrap writes the
		// first one), so a missing or corrupt one means the directory
		// must be re-seeded.
		return nil, fmt.Errorf("replication: no usable REPLICA state in %s (bootstrap a fresh directory first): %w",
			cfg.DB.Dir(), ErrReBootstrap)
	}
	r.state = st
	// The MANIFEST and the state file double-book the epoch fence; take
	// the higher of the two and make both agree, so neither a lost
	// state file nor a lost manifest lowers the fence alone.
	if r.state.Epoch < cfg.DB.Epoch() {
		r.state.Epoch = cfg.DB.Epoch()
	} else if err := cfg.DB.EnsureEpoch(r.state.Epoch); err != nil {
		return nil, err
	}
	cfg.Metrics.attachReplicaStatus(r.Status)
	return r, nil
}

// Status returns the replica's current health snapshot.
func (r *Replica) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Status{
		Primary:   r.cfg.PrimaryURL,
		Connected: r.connected,
		Epoch:     r.state.Epoch,
		Cursor:    r.state.Cursor,
		LagBytes:  r.lagBytes,
		Err:       r.sticky,
	}
	since := r.lastCaughtUp
	if since.IsZero() {
		since = r.started
	}
	s.LagSeconds = time.Since(since).Seconds()
	return s
}

// Run streams from the primary until Stop is called or a sticky
// failure parks replication. It blocks; run it in a goroutine. After
// Run returns the replica keeps serving (stale) reads — Status
// explains why the stream stopped.
func (r *Replica) Run() {
	defer close(r.done)
	defer r.persist() // crash-consistent cursor even on sticky exits
	bo := r.cfg.Backoff
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		err := r.streamOnce()
		r.mu.Lock()
		r.connected = false
		r.body = nil
		r.mu.Unlock()
		switch {
		case err == nil:
			return // Stop closed the stream
		case isSticky(err):
			r.mu.Lock()
			if r.sticky == nil {
				r.sticky = err
			}
			r.mu.Unlock()
			r.cfg.Logger.Error("replication: sticky failure; replica degraded", "err", err)
			return
		}
		delay := bo.Next()
		r.cfg.Metrics.reconnect()
		r.cfg.Logger.Warn("replication: stream lost; reconnecting",
			"err", err, "attempt", bo.Attempts(), "backoff", delay)
		select {
		case <-r.stop:
			return
		case <-time.After(delay):
		}
	}
}

// Stop terminates the stream, waits for Run to return, and persists
// the applied cursor so a restart resumes instead of re-applying.
func (r *Replica) Stop() {
	r.once.Do(func() {
		close(r.stop)
		r.mu.Lock()
		body := r.body
		r.mu.Unlock()
		if body != nil {
			// Unblock the frame read; the error it surfaces is routed to
			// the stop path, not classified.
			if err := body.Close(); err != nil {
				r.cfg.Logger.Debug("replication: closing stream body", "err", err)
			}
		}
	})
	<-r.done
}

// isSticky classifies failures: sticky ones park the replica (frame
// corruption, split-brain, pruned cursor, auth, local storage);
// everything else is a transient transport problem worth retrying.
func isSticky(err error) bool {
	return errors.Is(err, ErrFrameCorrupt) ||
		errors.Is(err, ErrStaleEpoch) ||
		errors.Is(err, ErrReBootstrap) ||
		errors.Is(err, errAuth) ||
		errors.Is(err, errLocalApply)
}

var (
	errAuth       = errors.New("replication: primary rejected the replication token")
	errLocalApply = errors.New("replication: applying the stream to local storage failed")
)

// streamOnce opens one stream at the current cursor and applies frames
// until it ends. A nil return means Stop ended it.
func (r *Replica) streamOnce() error {
	r.mu.Lock()
	cur := r.state.Cursor
	r.mu.Unlock()

	url := r.cfg.PrimaryURL + "/replication/wal"
	if cur != (storage.Cursor{}) {
		url += "?cursor=" + cur.String()
	}
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("X-Replication-Token", r.cfg.Token)
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		if r.stopped() {
			return nil
		}
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusUnauthorized, http.StatusForbidden:
		return errAuth
	case http.StatusGone:
		return ErrReBootstrap
	default:
		return fmt.Errorf("replication: primary answered %s", resp.Status)
	}

	r.mu.Lock()
	r.body = resp.Body
	r.connected = true
	r.mu.Unlock()
	r.cfg.Logger.Info("replication: stream connected", "cursor", cur.String())

	br := bufio.NewReaderSize(resp.Body, 1<<16)
	for {
		fr, err := readFrame(br)
		if err != nil {
			if r.stopped() {
				return nil
			}
			if errors.Is(err, ErrFrameCorrupt) {
				return err
			}
			return fmt.Errorf("replication: stream read: %w", err)
		}
		if err := r.applyFrame(fr); err != nil {
			if errors.Is(err, errSealed) {
				r.cfg.Logger.Info("replication: primary sealed the stream (shutdown)")
				return errSealed
			}
			return err
		}
		if r.stopped() {
			return nil
		}
	}
}

func (r *Replica) stopped() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

// applyFrame fences, applies, and acknowledges one frame.
func (r *Replica) applyFrame(fr Frame) error {
	r.mu.Lock()
	fence := r.state.Epoch
	r.mu.Unlock()
	if fr.Epoch < fence {
		r.cfg.Metrics.epochRejected()
		return fmt.Errorf("%w: stream epoch %d, local fence %d", ErrStaleEpoch, fr.Epoch, fence)
	}
	if fr.Epoch > fence {
		// A new primary generation: raise the fence durably (manifest +
		// state file) before applying anything it sent, so a crash
		// cannot forget we followed it.
		if err := r.cfg.DB.EnsureEpoch(fr.Epoch); err != nil {
			return fmt.Errorf("%w: %w", errLocalApply, err)
		}
		r.mu.Lock()
		r.state.Epoch = fr.Epoch
		r.mu.Unlock()
		if err := r.persist(); err != nil {
			return fmt.Errorf("%w: %w", errLocalApply, err)
		}
		r.cfg.Logger.Info("replication: following new primary epoch", "epoch", fr.Epoch)
	}

	switch fr.Type {
	case FrameBatch:
		batch, err := storage.DecodeBatch(fr.Body)
		if err != nil {
			return fmt.Errorf("%w: batch payload: %w", ErrFrameCorrupt, err)
		}
		for _, t := range batch {
			if err := r.cfg.Store.Add(t.S, t.P, t.O); err != nil {
				return fmt.Errorf("%w: %w", errLocalApply, err)
			}
		}
		if err := r.cfg.Store.RDF().CommitJournal(); err != nil {
			// The local WAL refused the batch; advancing the cursor now
			// would drop it forever (the journal silently discards writes
			// once broken). Park sticky instead.
			return fmt.Errorf("%w: %w", errLocalApply, err)
		}
		r.mu.Lock()
		r.state.Cursor = fr.Cursor
		r.sinceSave++
		save := r.sinceSave >= r.cfg.CursorSyncEvery
		r.mu.Unlock()
		r.cfg.Metrics.applied(len(batch))
		if save {
			if err := r.persist(); err != nil {
				return fmt.Errorf("%w: %w", errLocalApply, err)
			}
		}
	case FrameHeartbeat:
		lag, n := uvarintFrom(fr.Body)
		r.mu.Lock()
		if n > 0 {
			r.lagBytes = int64(lag)
			if lag == 0 {
				r.lastCaughtUp = time.Now()
			}
		}
		dirty := r.sinceSave > 0
		r.mu.Unlock()
		if dirty {
			// The stream is idle; use the pause to make the cursor durable.
			if err := r.persist(); err != nil {
				return fmt.Errorf("%w: %w", errLocalApply, err)
			}
		}
	case FrameSealed:
		if err := r.persist(); err != nil {
			return fmt.Errorf("%w: %w", errLocalApply, err)
		}
		return errSealed
	case FrameGone:
		return ErrReBootstrap
	default:
		return fmt.Errorf("%w: unknown frame type %d", ErrFrameCorrupt, fr.Type)
	}
	return nil
}

// persist makes the applied prefix durable, then the cursor claiming
// it — in that order, so the REPLICA file never points past what the
// replica's own disk holds.
func (r *Replica) persist() error {
	r.mu.Lock()
	st := r.state
	dirty := r.sinceSave > 0 || st != (State{})
	r.mu.Unlock()
	if !dirty {
		return nil
	}
	if log := r.cfg.DB.Log(); log != nil {
		if err := log.Sync(); err != nil {
			return err
		}
	}
	if err := saveState(r.fsys, r.cfg.DB.Dir(), st); err != nil {
		return err
	}
	r.mu.Lock()
	r.sinceSave = 0
	r.mu.Unlock()
	return nil
}

// uvarintFrom decodes a standalone varint (0, 0 on damage).
func uvarintFrom(b []byte) (uint64, int) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0
	}
	return v, n
}

// Bootstrap initializes a fresh replica data directory from the
// primary's newest snapshot: it downloads the file, verifies it, and
// writes the REPLICA state (epoch + resume cursor) so the subsequent
// storage.Open/Recover boots from exactly the primary's compacted
// prefix. It is a no-op (false, nil) when dir already holds snapshots
// or WAL segments — an existing replica resumes from its own state.
func Bootstrap(client *http.Client, primaryURL, token string, fsys vfs.FS, dir string) (bool, error) {
	if fsys == nil {
		fsys = vfs.OS
	}
	if client == nil {
		client = http.DefaultClient
	}
	for _, pat := range []string{"snap-*.snap", "wal-*.log"} {
		matches, err := fsys.Glob(filepath.Join(dir, pat))
		if err != nil {
			return false, err
		}
		if len(matches) > 0 {
			return false, nil
		}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return false, err
	}

	req, err := http.NewRequest(http.MethodGet, primaryURL+"/replication/snapshot", nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("X-Replication-Token", token)
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusUnauthorized || resp.StatusCode == http.StatusForbidden {
		return false, errAuth
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return false, fmt.Errorf("replication: bootstrap: primary answered %s", resp.Status)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get("X-Replication-Epoch"), 10, 64)
	if err != nil {
		return false, fmt.Errorf("replication: bootstrap: bad epoch header: %w", err)
	}
	cursor, err := storage.ParseCursor(resp.Header.Get("X-Replication-Cursor"))
	if err != nil {
		return false, fmt.Errorf("replication: bootstrap: bad cursor header: %w", err)
	}

	if resp.StatusCode == http.StatusOK {
		version, err := strconv.ParseUint(resp.Header.Get("X-Snapshot-Version"), 10, 64)
		if err != nil {
			return false, fmt.Errorf("replication: bootstrap: bad version header: %w", err)
		}
		path := filepath.Join(dir, fmt.Sprintf("snap-%016d.snap", version))
		if err := downloadTo(fsys, dir, path, resp.Body); err != nil {
			return false, err
		}
		if _, err := storage.InspectSnapshotFS(fsys, path); err != nil {
			// A short or damaged download must not become the replica's
			// seed; drop it and let the caller retry.
			if rerr := fsys.Remove(path); rerr != nil {
				return false, fmt.Errorf("replication: bootstrap: %w (and removing the bad file: %v)", err, rerr)
			}
			return false, fmt.Errorf("replication: bootstrap: downloaded snapshot fails verification: %w", err)
		}
	}
	if err := saveState(fsys, dir, State{Epoch: epoch, Cursor: cursor}); err != nil {
		return false, err
	}
	return true, nil
}

// downloadTo streams body into path via tmp + fsync + rename +
// dirsync.
func downloadTo(fsys vfs.FS, dir, path string, body io.Reader) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("replication: bootstrap download: %w", err)
	}
	if _, err := io.Copy(f, body); err != nil {
		closeRemove(fsys, f, tmp)
		return fmt.Errorf("replication: bootstrap download: %w", err)
	}
	if err := f.Sync(); err != nil {
		closeRemove(fsys, f, tmp)
		return fmt.Errorf("replication: bootstrap download: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("replication: bootstrap download: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("replication: bootstrap download: %w", err)
	}
	return fsys.SyncDir(dir)
}
