package experiments

import (
	"encoding/json"
	"os"
	"time"

	"repro/internal/geostore"
	"repro/internal/interlink"
	"repro/internal/sparql"
)

// This file implements the spatial-join benchmark group behind
// `eebench -bench-group spatial -bench-out BENCH_spatial.json`: the perf
// trajectory of the R-tree index spatial join against the naive
// cross-product, at the join-kernel level (interlink entities) and at
// the query level (variable-variable geof filters through the store).

// SpatialBenchResult is one measured (workload, engine) cell.
type SpatialBenchResult struct {
	Name        string `json:"name"`   // workload name
	Engine      string `json:"engine"` // "naive-cross" / "index-join" / ...
	LeftN       int    `json:"left_n"`
	RightN      int    `json:"right_n"`
	Links       int    `json:"links"`       // result pairs
	Comparisons int    `json:"comparisons"` // exact geometry tests (0 = not tracked)
	NsPerOp     int64  `json:"ns_per_op"`
}

// SpatialBenchReport is the BENCH_spatial.json schema.
type SpatialBenchReport struct {
	Group     string               `json:"group"`
	Generated string               `json:"generated"`
	Results   []SpatialBenchResult `json:"results"`
}

// SpatialJoinBench runs the spatial-join group and returns a printable
// table plus the JSON report. Full scale joins 10k x 10k geometries (the
// acceptance point for the >=10x index-join speedup); -quick drops to
// 1k x 1k.
func SpatialJoinBench(cfg Config) (*Table, *SpatialBenchReport) {
	kernelN := cfg.scale(10000, 1000)
	queryN := cfg.scale(2000, 300)

	t := &Table{
		ID:     "SPATIAL",
		Title:  "Spatial join: R-tree index join vs naive cross-product",
		Header: []string{"workload", "engine", "left", "right", "links", "comparisons", "wall_ms", "speedup"},
		Notes:  "kernel = interlink entities through the shared geom join core; query = var-var geof:sfIntersects through the store",
	}
	rep := &SpatialBenchReport{
		Group:     "spatial-join",
		Generated: time.Now().UTC().Format(time.RFC3339),
	}

	record := func(name, engine string, leftN, rightN, links, comparisons int, d time.Duration, base time.Duration) time.Duration {
		speedup := "1.00"
		if base > 0 && d > 0 {
			speedup = f2(float64(base.Nanoseconds()) / float64(d.Nanoseconds()))
		}
		t.Rows = append(t.Rows, []string{
			name, engine, i0(leftN), i0(rightN), i0(links), i0(comparisons), ms(d), speedup,
		})
		rep.Results = append(rep.Results, SpatialBenchResult{
			Name: name, Engine: engine, LeftN: leftN, RightN: rightN,
			Links: links, Comparisons: comparisons, NsPerOp: d.Nanoseconds(),
		})
		return d
	}

	// --- join kernel: naive cross-product vs shared R-tree index join ---
	a := linkEntities(kernelN, 61, "a")
	b := linkEntities(kernelN, 62, "b")
	lcfg := interlink.Config{Relation: interlink.RelIntersects}

	start := time.Now()
	links, st := interlink.DiscoverNaive(a, b, lcfg)
	naiveT := record("kernel_intersects", "naive-cross", kernelN, kernelN,
		len(links), st.Comparisons, time.Since(start), 0)

	start = time.Now()
	links, st = interlink.DiscoverIndexed(a, b, lcfg)
	record("kernel_intersects", "index-join", kernelN, kernelN,
		len(links), st.Comparisons, time.Since(start), naiveT)

	// --- query level: var-var geof filter through the store ---
	gstNaive := geostore.New(geostore.ModeNaive)
	gstIndexed := geostore.New(geostore.ModeIndexed)
	qa := linkEntities(queryN, 63, "qa")
	qb := linkEntities(queryN, 64, "qb")
	for _, set := range []struct {
		class    string
		entities []interlink.Entity
	}{
		{"http://extremeearth.eu/ontology#Left", qa},
		{"http://extremeearth.eu/ontology#Right", qb},
	} {
		for _, e := range set.entities {
			f := geostore.Feature{IRI: e.IRI, Class: set.class, Geometry: e.Geometry}
			if err := gstNaive.AddFeature(f); err != nil {
				panic(err)
			}
			if err := gstIndexed.AddFeature(f); err != nil {
				panic(err)
			}
		}
	}
	gstIndexed.Build()
	query := `
		PREFIX ee: <http://extremeearth.eu/ontology#>
		SELECT ?a ?b WHERE {
			?a a ee:Left . ?a geo:hasGeometry ?ga . ?ga geo:asWKT ?g1 .
			?b a ee:Right . ?b geo:hasGeometry ?gb . ?gb geo:asWKT ?g2 .
			FILTER(geof:sfIntersects(?g1, ?g2))
		}`
	q := sparql.MustParse(query)

	run := func(st interface {
		Query(*sparql.Query) (*sparql.Results, error)
	}) (int, time.Duration) {
		start := time.Now()
		res, err := st.Query(q)
		if err != nil {
			panic(err)
		}
		return res.Len(), time.Since(start)
	}
	rows, d := run(gstNaive)
	queryNaiveT := record("query_intersects", "naive-cartesian", queryN, queryN, rows, 0, d, 0)
	rows, d = run(gstIndexed)
	record("query_intersects", "index-join", queryN, queryN, rows, 0, d, queryNaiveT)

	ps := geostore.NewPartitioned(4)
	for _, e := range qa {
		mustAdd(ps.AddFeature(geostore.Feature{IRI: e.IRI, Class: "http://extremeearth.eu/ontology#Left", Geometry: e.Geometry}))
	}
	for _, e := range qb {
		mustAdd(ps.AddFeature(geostore.Feature{IRI: e.IRI, Class: "http://extremeearth.eu/ontology#Right", Geometry: e.Geometry}))
	}
	ps.Build()
	rows, d = run(ps)
	record("query_intersects", "partitioned-broadcast-4", queryN, queryN, rows, 0, d, queryNaiveT)

	return t, rep
}

// WriteSpatialBenchJSON writes the report to path (the conventional name
// is BENCH_spatial.json).
func WriteSpatialBenchJSON(path string, rep *SpatialBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
