// Package kvstore implements the NewSQL storage substrate that HopsFS
// metadata lives on (the role MySQL Cluster / NDB plays in the HopsFS
// papers [9,13,17] the paper builds on): a sharded, transactional,
// in-memory key-value store with per-row versioning, optimistic
// multi-key transactions and two-phase commit across shards.
//
// Keys are strings with an optional partition prefix: everything before
// the first '|' is the partition key, and all keys of one partition live
// in one shard, so partition-local range scans (directory listings in
// HopsFS) touch a single shard — the application-defined partitioning
// HopsFS relies on for its metadata scalability.
package kvstore

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrConflict is returned by Txn.Commit when a read row changed since it
// was read (optimistic concurrency violation). Callers retry.
var ErrConflict = errors.New("kvstore: transaction conflict")

// ErrTxnDone is returned when a finished transaction is reused.
var ErrTxnDone = errors.New("kvstore: transaction already finished")

type row struct {
	value   []byte
	version uint64
}

type shard struct {
	mu   sync.RWMutex
	rows map[string]row
	// sorted caches the sorted key list for range scans; rebuilt lazily.
	sorted []string
	dirty  bool
}

func (sh *shard) ensureSortedLocked() {
	if !sh.dirty && sh.sorted != nil {
		return
	}
	sh.sorted = sh.sorted[:0]
	for k := range sh.rows {
		sh.sorted = append(sh.sorted, k)
	}
	sort.Strings(sh.sorted)
	sh.dirty = false
}

// Stats counts store-level events.
type Stats struct {
	Commits   uint64
	Conflicts uint64
	Gets      uint64
	Scans     uint64
}

// Store is the sharded transactional store.
type Store struct {
	shards []*shard
	stats  struct {
		commits   atomic.Uint64
		conflicts atomic.Uint64
		gets      atomic.Uint64
		scans     atomic.Uint64
	}
}

// New returns a store with the given number of shards (the E11 scaling
// axis; the HopsFS papers scale NDB data nodes the same way).
func New(numShards int) *Store {
	if numShards < 1 {
		numShards = 1
	}
	s := &Store{shards: make([]*shard, numShards)}
	for i := range s.shards {
		s.shards[i] = &shard{rows: make(map[string]row)}
	}
	return s
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	return Stats{
		Commits:   s.stats.commits.Load(),
		Conflicts: s.stats.conflicts.Load(),
		Gets:      s.stats.gets.Load(),
		Scans:     s.stats.scans.Load(),
	}
}

// PartitionKey returns the partition prefix of a key (up to the first
// '|', or the whole key).
func PartitionKey(key string) string {
	if i := strings.IndexByte(key, '|'); i >= 0 {
		return key[:i]
	}
	return key
}

func (s *Store) shardFor(key string) *shard {
	return s.shards[int(fnv32(PartitionKey(key)))%len(s.shards)]
}

func (s *Store) shardIndex(key string) int {
	return int(fnv32(PartitionKey(key))) % len(s.shards)
}

func fnv32(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

// Get reads a row outside any transaction, returning its value and
// version. ok is false if the key is absent.
func (s *Store) Get(key string) (value []byte, version uint64, ok bool) {
	s.stats.gets.Add(1)
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r, ok := sh.rows[key]
	if !ok {
		return nil, 0, false
	}
	return append([]byte(nil), r.value...), r.version, true
}

// Scan calls fn for every key with the given prefix in key order. The
// prefix must include the partition key (scans are partition-local, as in
// NDB partition-pruned index scans). Iteration stops if fn returns false.
func (s *Store) Scan(prefix string, fn func(key string, value []byte) bool) {
	s.stats.scans.Add(1)
	sh := s.shardFor(prefix)
	sh.mu.Lock()
	sh.ensureSortedLocked()
	// Copy the in-range keys so fn runs without the lock held.
	lo := sort.SearchStrings(sh.sorted, prefix)
	type kv struct {
		k string
		v []byte
	}
	var out []kv
	for i := lo; i < len(sh.sorted); i++ {
		k := sh.sorted[i]
		if !strings.HasPrefix(k, prefix) {
			break
		}
		out = append(out, kv{k, append([]byte(nil), sh.rows[k].value...)})
	}
	sh.mu.Unlock()
	for _, e := range out {
		if !fn(e.k, e.v) {
			return
		}
	}
}

// Txn is an optimistic transaction: reads record versions, writes buffer
// locally, Commit validates and applies atomically across shards.
type Txn struct {
	st     *Store
	reads  map[string]uint64 // key -> version observed (0 = absent)
	writes map[string][]byte // key -> new value (nil = delete)
	done   bool
}

// Begin starts a transaction.
func (s *Store) Begin() *Txn {
	return &Txn{
		st:     s,
		reads:  make(map[string]uint64),
		writes: make(map[string][]byte),
	}
}

// Get reads a key within the transaction (observing its own writes).
func (t *Txn) Get(key string) ([]byte, bool) {
	if t.done {
		return nil, false
	}
	if v, ok := t.writes[key]; ok {
		if v == nil {
			return nil, false
		}
		return v, true
	}
	val, ver, ok := t.st.Get(key)
	if ok {
		t.reads[key] = ver
	} else {
		t.reads[key] = 0
	}
	return val, ok
}

// Put buffers a write.
func (t *Txn) Put(key string, value []byte) {
	if t.done {
		return
	}
	t.writes[key] = append([]byte(nil), value...)
}

// Delete buffers a deletion.
func (t *Txn) Delete(key string) {
	if t.done {
		return
	}
	t.writes[key] = nil
}

// Commit runs two-phase commit: lock all involved shards in index order
// (prepare), validate every read version, apply all writes, bump
// versions, unlock. Returns ErrConflict if validation fails.
func (t *Txn) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	if len(t.writes) == 0 && len(t.reads) == 0 {
		return nil
	}

	// Phase 1 (prepare): determine involved shards, lock in global order.
	involved := map[int]bool{}
	for k := range t.reads {
		involved[t.st.shardIndex(k)] = true
	}
	for k := range t.writes {
		involved[t.st.shardIndex(k)] = true
	}
	order := make([]int, 0, len(involved))
	for i := range involved {
		order = append(order, i)
	}
	sort.Ints(order)
	for _, i := range order {
		t.st.shards[i].mu.Lock()
	}
	unlock := func() {
		for j := len(order) - 1; j >= 0; j-- {
			t.st.shards[order[j]].mu.Unlock()
		}
	}

	// Validate read versions.
	for k, ver := range t.reads {
		sh := t.st.shardFor(k)
		cur, ok := sh.rows[k]
		curVer := uint64(0)
		if ok {
			curVer = cur.version
		}
		if curVer != ver {
			unlock()
			t.st.stats.conflicts.Add(1)
			return ErrConflict
		}
	}

	// Phase 2 (apply).
	for k, v := range t.writes {
		sh := t.st.shardFor(k)
		if v == nil {
			if _, ok := sh.rows[k]; ok {
				delete(sh.rows, k)
				sh.dirty = true
			}
			continue
		}
		prev := sh.rows[k]
		sh.rows[k] = row{value: v, version: prev.version + 1}
		if prev.version == 0 {
			sh.dirty = true // new key affects the sorted index
		}
	}
	unlock()
	t.st.stats.commits.Add(1)
	return nil
}

// Abort discards the transaction.
func (t *Txn) Abort() { t.done = true }

// RunTxn executes fn in a transaction, retrying on ErrConflict up to
// maxRetries times. fn must be idempotent (it re-executes on retry).
func (s *Store) RunTxn(maxRetries int, fn func(t *Txn) error) error {
	if maxRetries < 1 {
		maxRetries = 1
	}
	var err error
	for attempt := 0; attempt < maxRetries; attempt++ {
		t := s.Begin()
		if err = fn(t); err != nil {
			t.Abort()
			return err
		}
		if err = t.Commit(); err == nil {
			return nil
		}
		if !errors.Is(err, ErrConflict) {
			return err
		}
	}
	return err
}

// Len returns the total number of rows across all shards.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.rows)
		sh.mu.RUnlock()
	}
	return n
}
