// Command quickstart walks the ExtremeEarth platform end to end on a
// small synthetic workload: generate Sentinel products, ingest them into
// the archive + semantic catalogue + HopsFS metadata layer, train a
// land-cover classifier with distributed SGD, extract information from
// scenes, and ask the catalogue a semantic question.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dl"
	"repro/internal/dl/datasets"
	"repro/internal/geom"
	"repro/internal/sentinel"
)

func main() {
	log.SetFlags(0)
	extent := geom.NewRect(0, 0, 1000, 1000)

	// 1. Platform with 4 compute workers and 4 metadata shards.
	platform := core.NewPlatform(4, 4)
	fmt.Println("== ExtremeEarth quickstart ==")

	// 2. Ingest a small product archive.
	products := sentinel.GenerateProducts(200, 42, extent)
	if err := platform.IngestAndCatalogue(products); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d products (%.1f GB) into archive, catalogue and HopsFS\n",
		platform.Archive.Len(), float64(platform.Archive.BytesIngested())/1e9)

	// 3. Train the C1 land-cover classifier with collective allreduce.
	train := datasets.EuroSATVectors(8000, 7)
	trainCopy := train // Shuffle mutates; quickstart reuses train for eval
	net, stats := core.TrainLandCoverClassifier(dl.AllReduce{}, trainCopy, 8, 4, 7)
	fmt.Printf("trained land-cover MLP: strategy=%s workers=%d steps=%d loss=%.3f (%.0f samples/s)\n",
		stats.Strategy, stats.Workers, stats.Steps, stats.FinalLoss, stats.SamplesPerSec)

	// 4. Extract information and knowledge from scene products.
	scenes := core.GenerateSceneProducts(4, 64, 13, extent)
	res := platform.ExtractInformation(scenes, net)
	fmt.Printf("extracted knowledge from %d scenes: %.2f MB data -> %.2f MB knowledge (ratio %.2f, accuracy %.2f)\n",
		res.Products, float64(res.DataBytes)/1e6, float64(res.KnowledgeBytes)/1e6,
		res.Ratio, res.MeanAccuracy)

	// 5. Ask the semantic catalogue a question a conventional catalogue
	// can answer (area+year)...
	window := geom.NewRect(100, 100, 500, 500)
	n, err := platform.Catalogue.ProductsInYearOverArea(2018, window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalogue: %d products over the window in 2018\n", n)

	// ...and one it cannot: a content question over extracted knowledge.
	barrier := geom.Polygon{Shell: geom.Ring{
		{X: 200, Y: 200}, {X: 600, Y: 220}, {X: 620, Y: 580}, {X: 190, Y: 560},
	}}
	if err := platform.Catalogue.AddIceBarrier("NorskeOer", 2017, barrier); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		loc := geom.Point{X: 150 + float64(i)*45, Y: 250 + float64(i%5)*60}
		if err := platform.Catalogue.AddIceberg(fmt.Sprintf("berg%d", i), 2017, loc); err != nil {
			log.Fatal(err)
		}
	}
	platform.Catalogue.Build()
	count, err := platform.Catalogue.IcebergsEmbedded("NorskeOer", 2017)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("semantic query: %d icebergs embedded in the Norske Oer Ice Barrier in 2017\n", count)
}
