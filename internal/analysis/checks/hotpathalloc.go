package checks

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Hotpathalloc keeps //eevet:hotpath bodies allocation- and
// syscall-free. The executor's per-row closures and step loops (see
// internal/rdf/exec.go) run hundreds of millions of times per query;
// the invariant behind the PR 3/5 benchmark numbers is that they never
// allocate, never read the clock, and never touch a mutex. Inside a
// marked function (nested function literals inherit the mark) the
// analyzer reports:
//
//   - calls into package fmt (Sprintf and friends allocate and reflect)
//   - time.Now / time.Since (vDSO clock reads on the per-row path)
//   - map and slice composite literals, and make()
//   - explicit conversions of concrete values to interface types
//   - sync.Mutex / sync.RWMutex acquisition
//
// Instrumented slow paths live in unmarked siblings (runInstrumented);
// the rare deliberate exception carries //eevet:ignore with a reason.
var Hotpathalloc = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "no fmt, time.Now, map/slice literals, make, interface conversions,\n" +
		"or mutex acquisition inside //eevet:hotpath-marked functions",
	Run: runHotpathalloc,
}

func runHotpathalloc(pass *analysis.Pass) error {
	marks := analysis.CollectMarkers(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if marks.HotpathMarked(fn) && fn.Body != nil {
					checkHotBody(pass, fn.Body)
					return false // nested literals already covered
				}
			case *ast.FuncLit:
				if marks.HotpathMarked(fn) {
					checkHotBody(pass, fn.Body)
					return false
				}
			}
			return true
		})
	}
	return nil
}

func checkHotBody(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, e)
		case *ast.CompositeLit:
			if tv, ok := info.Types[e]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					pass.Reportf(e.Pos(), "map literal allocates in a hot path")
				case *types.Slice:
					pass.Reportf(e.Pos(), "slice literal allocates in a hot path")
				}
			}
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo

	// Explicit conversion to an interface type boxes the operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			if atv, ok := info.Types[call.Args[0]]; ok {
				if _, argIface := atv.Type.Underlying().(*types.Interface); !argIface {
					pass.Reportf(call.Pos(), "conversion to interface type %s allocates in a hot path", tv.Type)
				}
			}
		}
		return
	}

	obj := calleeObj(info, call)
	if obj == nil {
		return
	}
	if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
		if obj.Name() == "make" {
			pass.Reportf(call.Pos(), "make allocates in a hot path")
		}
		return
	}
	switch objPkgPath(obj) {
	case "fmt":
		pass.Reportf(call.Pos(), "fmt.%s allocates in a hot path", obj.Name())
	case "time":
		if obj.Name() == "Now" || obj.Name() == "Since" {
			pass.Reportf(call.Pos(), "time.%s reads the clock in a hot path", obj.Name())
		}
	case "sync":
		switch obj.Name() {
		case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
			pass.Reportf(call.Pos(), "mutex %s in a hot path", obj.Name())
		}
	}
}
