package dl

import (
	"math"
	"math/rand"
)

// Network is a sequential stack of layers trained with softmax
// cross-entropy.
type Network struct {
	Layers []Layer
}

// NewNetwork builds a network from layers.
func NewNetwork(layers ...Layer) *Network { return &Network{Layers: layers} }

// Forward runs the full stack.
func (n *Network) Forward(x Matrix) Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Params returns all parameter matrices in layer order.
func (n *Network) Params() []*Matrix {
	var out []*Matrix
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Grads returns all gradient matrices in layer order.
func (n *Network) Grads() []*Matrix {
	var out []*Matrix
	for _, l := range n.Layers {
		out = append(out, l.Grads()...)
	}
	return out
}

// ZeroGrads clears all gradient accumulators.
func (n *Network) ZeroGrads() {
	for _, g := range n.Grads() {
		g.Zero()
	}
}

// NumParams returns the total scalar parameter count (the communication
// volume unit of the E4 cost model).
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.Data)
	}
	return total
}

// CopyParamsFrom copies parameter values from src (same architecture).
func (n *Network) CopyParamsFrom(src *Network) {
	dst := n.Params()
	s := src.Params()
	for i := range dst {
		copy(dst[i].Data, s[i].Data)
	}
}

// Softmax returns row-wise softmax probabilities of logits.
func Softmax(logits Matrix) Matrix {
	out := NewMatrix(logits.Rows, logits.Cols)
	for r := 0; r < logits.Rows; r++ {
		row := logits.Row(r)
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		orow := out.Row(r)
		for c, v := range row {
			e := math.Exp(float64(v - max))
			orow[c] = float32(e)
			sum += e
		}
		for c := range orow {
			orow[c] = float32(float64(orow[c]) / sum)
		}
	}
	return out
}

// LossAndGrad computes mean softmax cross-entropy loss over the batch and
// the gradient w.r.t. the logits.
func LossAndGrad(logits Matrix, labels []int) (float64, Matrix) {
	probs := Softmax(logits)
	grad := probs.Clone()
	var loss float64
	inv := 1 / float32(logits.Rows)
	for r := 0; r < logits.Rows; r++ {
		p := probs.At(r, labels[r])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(float64(p))
		grad.Set(r, labels[r], grad.At(r, labels[r])-1)
	}
	ScaleInPlace(grad, inv)
	return loss / float64(logits.Rows), grad
}

// TrainStep runs forward+backward on one batch, leaving gradients in the
// network's accumulators, and returns the batch loss.
func (n *Network) TrainStep(x Matrix, labels []int) float64 {
	n.ZeroGrads()
	logits := n.Forward(x)
	loss, grad := LossAndGrad(logits, labels)
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return loss
}

// Infer runs the full stack without recording backward-pass state, so
// it is safe for concurrent callers sharing one trained network.
func (n *Network) Infer(x Matrix) Matrix {
	for _, l := range n.Layers {
		x = l.Infer(x)
	}
	return x
}

// Predict returns the argmax class per sample. It uses the stateless
// inference path and may be called concurrently.
func (n *Network) Predict(x Matrix) []int {
	logits := n.Infer(x)
	out := make([]int, logits.Rows)
	for r := 0; r < logits.Rows; r++ {
		out[r] = Argmax(logits.Row(r))
	}
	return out
}

// Accuracy evaluates classification accuracy on a dataset.
func (n *Network) Accuracy(x Matrix, labels []int) float64 {
	if x.Rows == 0 {
		return 0
	}
	pred := n.Predict(x)
	hit := 0
	for i, p := range pred {
		if p == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(labels))
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float32
	Momentum float32
	velocity [][]float32
}

// NewSGD constructs the optimizer.
func NewSGD(lr, momentum float32) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step applies the accumulated gradients to the parameters.
func (o *SGD) Step(params, grads []*Matrix) {
	if o.velocity == nil {
		o.velocity = make([][]float32, len(params))
		for i, p := range params {
			o.velocity[i] = make([]float32, len(p.Data))
		}
	}
	for i, p := range params {
		v := o.velocity[i]
		g := grads[i].Data
		for j := range p.Data {
			v[j] = o.Momentum*v[j] - o.LR*g[j]
			p.Data[j] += v[j]
		}
	}
}

// Architecture names the two C1 model families.
type Architecture int

const (
	// ArchMLP is the dense pixel-spectrum classifier.
	ArchMLP Architecture = iota
	// ArchCNN is the small convolutional patch classifier.
	ArchCNN
)

// ModelSpec describes a model to build; Build is deterministic given Seed.
type ModelSpec struct {
	Arch    Architecture
	In      int // MLP: input features; CNN: channels
	PatchH  int // CNN only
	PatchW  int // CNN only
	Hidden  int
	Classes int
	Seed    int64
}

// Build constructs the network.
func (s ModelSpec) Build() *Network {
	rng := rand.New(rand.NewSource(s.Seed))
	switch s.Arch {
	case ArchCNN:
		conv := NewConv2D(s.In, s.PatchH, s.PatchW, 8, 3, rng)
		pool := NewMaxPool2D(8, conv.OutH(), conv.OutW(), 2)
		return NewNetwork(
			conv,
			&ReLU{},
			pool,
			NewDense(pool.OutSize(), s.Hidden, rng),
			&ReLU{},
			NewDense(s.Hidden, s.Classes, rng),
		)
	default:
		return NewNetwork(
			NewDense(s.In, s.Hidden, rng),
			&ReLU{},
			NewDense(s.Hidden, s.Classes, rng),
		)
	}
}
