// Command eequery loads a synthetic linked-geospatial-data workload into
// the re-engineered geostore and evaluates one stSPARQL query against it.
//
// Usage:
//
//	eequery -n 10000 'SELECT ?f WHERE { ?f a ee:Feature . } LIMIT 5'
//	eequery -mode naive -n 10000 '<query>'   # Strabon-2012 baseline
//
// With no query argument, a default rectangular-selection query runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/geom"
	"repro/internal/geostore"
)

func main() {
	log.SetFlags(0)
	n := flag.Int("n", 10000, "number of synthetic point features")
	mode := flag.String("mode", "indexed", "store mode: indexed or naive")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	var m geostore.Mode
	switch *mode {
	case "indexed":
		m = geostore.ModeIndexed
	case "naive":
		m = geostore.ModeNaive
	default:
		log.Fatalf("eequery: unknown mode %q", *mode)
	}

	extent := geom.NewRect(0, 0, 10000, 10000)
	st := geostore.New(m)
	for _, f := range geostore.GeneratePointFeatures(*n, *seed, extent) {
		if err := st.AddFeature(f); err != nil {
			log.Fatal(err)
		}
	}
	st.Build()
	fmt.Printf("loaded %d features (%d triples, %s mode)\n", *n, st.Len(), st.Mode())

	query := flag.Arg(0)
	if query == "" {
		query = geostore.SelectionQuery(geom.NewRect(1000, 1000, 2000, 2000)) + " LIMIT 10"
		fmt.Println("no query given; running default rectangular selection")
	}
	start := time.Now()
	res, err := st.QueryString(query)
	elapsed := time.Since(start)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d rows in %v\n%s", res.Len(), elapsed.Round(time.Microsecond), res)
}
