package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// PatternTerm is one position of a triple pattern: either a concrete term
// or a named variable.
type PatternTerm struct {
	// Var is the variable name (without the leading '?'); empty for a
	// concrete term.
	Var  string
	Term Term
}

// V returns a variable pattern term.
func V(name string) PatternTerm { return PatternTerm{Var: name} }

// T returns a concrete pattern term.
func T(t Term) PatternTerm { return PatternTerm{Term: t} }

// IsVar reports whether the position is a variable.
func (p PatternTerm) IsVar() bool { return p.Var != "" }

func (p PatternTerm) String() string {
	if p.IsVar() {
		return "?" + p.Var
	}
	return p.Term.String()
}

// TriplePattern is a triple with variables allowed in any position.
type TriplePattern struct {
	S, P, O PatternTerm
}

func (tp TriplePattern) String() string {
	return fmt.Sprintf("%s %s %s .", tp.S, tp.P, tp.O)
}

// Vars returns the distinct variable names in the pattern.
func (tp TriplePattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range []PatternTerm{tp.S, tp.P, tp.O} {
		if p.IsVar() && !seen[p.Var] {
			seen[p.Var] = true
			out = append(out, p.Var)
		}
	}
	return out
}

// Binding maps variable names to dictionary IDs.
type Binding map[string]ID

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	c := make(Binding, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Filter restricts the solutions of a basic graph pattern. It receives the
// store (for decoding) and the candidate binding and reports whether the
// binding survives.
type Filter func(st *Store, b Binding) bool

// Solve evaluates the basic graph pattern (a conjunction of triple
// patterns) and returns all solutions, applying the optional filters.
//
// Evaluation is index nested-loop join: patterns are greedily reordered by
// estimated selectivity (most-bound-first, using store counts), then each
// pattern extends the current bindings via a Match range scan.
//
// Solve is the legacy map-based evaluator. The serving path uses the
// compiled slot-based executor (PlanBGP/Run in exec.go); Solve is kept
// as the reference oracle for differential testing and as the naive-mode
// baseline of the E1/E2 experiments.
func (s *Store) Solve(patterns []TriplePattern, filters ...Filter) []Binding {
	return s.SolveSeeded([]Binding{{}}, patterns, filters...)
}

// SolveSeeded is Solve starting from the given initial bindings rather than
// the single empty binding. Spatially indexed stores use it to drive BGP
// evaluation from R-tree candidate sets.
func (s *Store) SolveSeeded(seeds []Binding, patterns []TriplePattern, filters ...Filter) []Binding {
	results := seeds
	remaining := append([]TriplePattern(nil), patterns...)

	for len(remaining) > 0 {
		// Pick the most selective remaining pattern given the variables
		// already bound by previous patterns.
		bound := map[string]bool{}
		if len(results) > 0 {
			for v := range results[0] {
				bound[v] = true
			}
		}
		best, bestCost := 0, int(^uint(0)>>1)
		for i, tp := range remaining {
			c := s.estimateCost(tp, bound)
			if c < bestCost {
				best, bestCost = i, c
			}
		}
		tp := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)

		var next []Binding
		for _, b := range results {
			s.extend(tp, b, func(nb Binding) {
				next = append(next, nb)
			})
		}
		results = next
		if len(results) == 0 {
			return nil
		}
	}

	if len(filters) == 0 {
		return results
	}
	out := make([]Binding, 0, len(results))
	for _, b := range results {
		keep := true
		for _, f := range filters {
			if !f(s, b) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, b)
		}
	}
	return out
}

// estimateCost estimates the result cardinality of a pattern assuming the
// given variables are already bound (bound variables count as constants).
func (s *Store) estimateCost(tp TriplePattern, bound map[string]bool) int {
	hasBoundVar := false
	id := func(p PatternTerm) ID {
		if p.IsVar() {
			if bound[p.Var] {
				hasBoundVar = true
				return ID(1) // stand-in: will be a constant at execution
			}
			return NoID
		}
		lid, ok := s.dict.Lookup(p.Term)
		if !ok {
			return ID(-1)
		}
		return lid
	}
	es, ep, eo := id(tp.S), id(tp.P), id(tp.O)
	if es < 0 || ep < 0 || eo < 0 {
		return 0 // unmatchable: evaluating it first prunes everything
	}
	// Heuristic: fewer free positions first (fully bound < two bound <
	// one bound < none), with two tie-breakers: patterns joined to
	// already-bound variables are per-binding selective and win over
	// constant-only patterns of equal arity (which repeat their full
	// result for every current binding), and subject-bound beats
	// object-bound beats predicate-bound access paths.
	n := 3
	if es != NoID {
		n--
	}
	if ep != NoID {
		n--
	}
	if eo != NoID {
		n--
	}
	cost := n*1000 + boundOrderBias(es, ep, eo)
	if hasBoundVar {
		cost -= 500
	}
	return cost
}

func boundOrderBias(es, ep, eo ID) int {
	switch {
	case es != NoID:
		return 0
	case eo != NoID:
		return 1
	case ep != NoID:
		return 2
	default:
		return 3
	}
}

// extend emits every extension of binding b that satisfies tp.
func (s *Store) extend(tp TriplePattern, b Binding, emit func(Binding)) {
	resolve := func(p PatternTerm) (ID, bool) {
		if p.IsVar() {
			if id, ok := b[p.Var]; ok {
				return id, true
			}
			return NoID, true
		}
		id, ok := s.dict.Lookup(p.Term)
		if !ok {
			return NoID, false // concrete term absent: no solutions
		}
		return id, true
	}
	es, okS := resolve(tp.S)
	ep, okP := resolve(tp.P)
	eo, okO := resolve(tp.O)
	if !okS || !okP || !okO {
		return
	}
	s.Match(es, ep, eo, func(t EncTriple) bool {
		nb := b.Clone()
		if tp.S.IsVar() {
			if id, ok := nb[tp.S.Var]; ok && id != t.S {
				return true
			}
			nb[tp.S.Var] = t.S
		}
		if tp.P.IsVar() {
			if id, ok := nb[tp.P.Var]; ok && id != t.P {
				return true
			}
			nb[tp.P.Var] = t.P
		}
		if tp.O.IsVar() {
			if id, ok := nb[tp.O.Var]; ok && id != t.O {
				return true
			}
			// same-variable repeated inside one pattern, e.g. ?x ?p ?x
			if tp.S.IsVar() && tp.S.Var == tp.O.Var && t.S != t.O {
				return true
			}
			nb[tp.O.Var] = t.O
		}
		emit(nb)
		return true
	})
}

// DecodeBinding converts a binding's IDs back to terms.
func (s *Store) DecodeBinding(b Binding) map[string]Term {
	out := make(map[string]Term, len(b))
	for k, v := range b {
		out[k] = s.dict.MustDecode(v)
	}
	return out
}

// BindingString formats a binding deterministically for tests and logs.
func (s *Store) BindingString(b Binding) string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, "?"+k+"="+s.dict.MustDecode(b[k]).String())
	}
	return strings.Join(parts, " ")
}
