// Command eecat builds a synthetic Copernicus archive, mirrors it into
// the semantic catalogue, and answers both a conventional area+year
// search and the paper's flagship iceberg query from the command line.
// It doubles as the snapshot tool for the durable storage engine:
// -inspect summarizes a snapshot file or a whole data directory (WAL
// segments and snapshot generations with sizes and ages), -convert
// dumps a snapshot back to N-Triples, and -pack bulk-loads an
// N-Triples file (sharded parsing) into a fresh snapshot.
//
// Usage:
//
//	eecat -products 5000 -bergs 500 -year 2017
//	eecat -inspect data/                                # directory listing
//	eecat -inspect data/snap-0000000000030000.snap
//	eecat -convert data/snap-0000000000030000.snap > dump.nt
//	eecat -pack dump.nt -o snap-1.snap -workers 8
//
// To seed an eeserve -data-dir with a packed snapshot, name it
// snap-<version>.snap (numeric version) — recovery ignores other names.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/catalogue"
	"repro/internal/geom"
	"repro/internal/geostore"
	"repro/internal/rdf"
	"repro/internal/sentinel"
	"repro/internal/storage"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eecat:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eecat", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	nProducts := fs.Int("products", 5000, "synthetic products to catalogue")
	nBergs := fs.Int("bergs", 500, "synthetic iceberg observations")
	year := fs.Int("year", 2017, "observation year for the iceberg query")
	inspect := fs.String("inspect", "", "snapshot file or data directory: print a summary and exit")
	convert := fs.String("convert", "", "snapshot file: dump as N-Triples on stdout and exit")
	pack := fs.String("pack", "", "N-Triples file: bulk-load and write a snapshot (-o) and exit")
	out := fs.String("o", "", "output snapshot path for -pack")
	workers := fs.Int("workers", runtime.NumCPU(), "parser shards for -pack")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return fmt.Errorf("usage: %w", err)
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	switch {
	case *inspect != "":
		return inspectSnapshot(*inspect)
	case *convert != "":
		return convertSnapshot(*convert)
	case *pack != "":
		if *out == "" {
			return fmt.Errorf("-pack requires -o <snapshot path>")
		}
		return packSnapshot(*pack, *out, *workers)
	}

	extent := geom.NewRect(0, 0, 10000, 10000)
	cat := catalogue.New()

	start := time.Now()
	for _, p := range sentinel.GenerateProducts(*nProducts, 1, extent) {
		if err := cat.AddProduct(p); err != nil {
			return err
		}
	}
	barrier := geom.Polygon{Shell: geom.Ring{
		{X: 2000, Y: 2000}, {X: 6000, Y: 2200}, {X: 6200, Y: 5800}, {X: 1900, Y: 5600},
	}}
	if err := cat.AddIceBarrier("NorskeOer", *year, barrier); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < *nBergs; i++ {
		p := geom.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		if err := cat.AddIceberg(fmt.Sprintf("b%d", i), *year-1+rng.Intn(3), p); err != nil {
			return err
		}
	}
	cat.Build()
	fmt.Printf("catalogued %d products, %d iceberg observations, 1 barrier (%d triples) in %v\n",
		*nProducts, *nBergs, cat.Len(), time.Since(start).Round(time.Millisecond))

	window := geom.NewRect(1000, 1000, 4000, 4000)
	start = time.Now()
	count, err := cat.ProductsInYearOverArea(2018, window)
	if err != nil {
		return err
	}
	fmt.Printf("conventional search: %d products over the window in 2018 (%v)\n",
		count, time.Since(start).Round(time.Microsecond))

	start = time.Now()
	bergs, err := cat.IcebergsEmbedded("NorskeOer", *year)
	if err != nil {
		return err
	}
	fmt.Printf("semantic search: %d icebergs embedded in the Norske Oer Ice Barrier "+
		"at its maximum extent in %d (%v)\n",
		bergs, *year, time.Since(start).Round(time.Microsecond))
	return nil
}

// inspectSnapshot prints a verified summary of a snapshot file, or —
// given a data directory — the directory's WAL segment and snapshot
// generation listing (sizes, ages, the active segment).
func inspectSnapshot(path string) error {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return inspectDataDir(path)
	}
	info, err := storage.InspectSnapshot(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d triples, %d dictionary terms, store version %d, %d bytes (%.1f B/triple)\n",
		info.Path, info.Triples, info.Terms, info.Version, info.Bytes,
		float64(info.Bytes)/float64(max(info.Triples, 1)))
	return nil
}

// inspectDataDir prints an eeserve data directory's durability state
// without opening or locking it (safe against a live server).
func inspectDataDir(dir string) error {
	st, err := storage.InspectDir(dir)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d WAL segments (%d bytes), %d snapshot generations (%d bytes)\n",
		st.Dir, len(st.Segments), st.WALBytes, len(st.Snapshots), st.SnapshotBytes)
	for _, s := range st.Segments {
		active := ""
		if s.Active {
			active = "  [active]"
		}
		fmt.Printf("  wal seq %d: %d bytes, modified %s ago%s\n",
			s.Seq, s.Bytes, age(s.AgeSeconds), active)
	}
	for _, s := range st.Snapshots {
		fmt.Printf("  snapshot generation %d: %d bytes, written %s ago\n",
			s.Version, s.Bytes, age(s.AgeSeconds))
	}
	return nil
}

// age renders seconds with sub-minute precision dropped once it stops
// mattering.
func age(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Second).String()
}

// convertSnapshot streams a snapshot's triples to stdout as N-Triples,
// decoding against the dictionary segment without building a store.
func convertSnapshot(path string) error {
	terms, triples, _, err := storage.ReadSnapshotFile(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(os.Stdout, 1<<16)
	for _, t := range triples {
		tr := rdf.Triple{S: terms[t.S-1], P: terms[t.P-1], O: terms[t.O-1]}
		if _, err := w.WriteString(tr.String()); err != nil {
			return err
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return w.Flush()
}

// packSnapshot bulk-loads an N-Triples file through the parallel loader
// (sharded statement + WKT parsing) and writes a compacted snapshot.
func packSnapshot(ntPath, outPath string, workers int) error {
	f, err := os.Open(ntPath)
	if err != nil {
		return err
	}
	defer f.Close()
	st := geostore.New(geostore.ModeIndexed)
	start := time.Now()
	n, err := storage.BulkLoad(f, st, workers)
	if err != nil {
		return fmt.Errorf("%s: after %d triples: %w", ntPath, n, err)
	}
	loadDur := time.Since(start)
	start = time.Now()
	if err := storage.WriteSnapshotFile(outPath, st.RDF()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "packed %d triples (%d geometries) into %s: load %v (%d workers), write %v\n",
		n, st.NumGeometries(), outPath, loadDur.Round(time.Millisecond), workers,
		time.Since(start).Round(time.Millisecond))
	return nil
}
